(* Command-line driver for the ARU/LLD reproduction. *)

module Geometry = Lld_disk.Geometry
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk
module Backend = Lld_disk.Backend
module Errors = Lld_core.Errors
module Clock = Lld_sim.Clock
module Config = Lld_core.Config
module Lld = Lld_core.Lld
module Recovery = Lld_core.Recovery
module Counters = Lld_core.Counters
module Fs = Lld_minixfs.Fs
module Fsck = Lld_minixfs.Fsck
module Setup = Lld_workload.Setup
module Smallfile = Lld_workload.Smallfile
module Largefile = Lld_workload.Largefile
module Aru_churn = Lld_workload.Aru_churn
module Torture = Lld_workload.Torture
module Experiment = Lld_harness.Experiment
module Crashcheck = Lld_crashcheck.Crashcheck
module Model = Lld_model.Model
module Differ = Lld_model.Differ
module Op = Lld_core.Op
module Engine = Lld_core.Engine
module Summary = Lld_core.Summary
module Forensics = Lld_obs.Forensics
module Obs = Lld_obs.Obs
module Trace = Lld_obs.Trace
module Metrics = Lld_obs.Metrics
module Histogram = Lld_sim.Stats.Histogram

open Cmdliner

let variant_conv =
  let parse = function
    | "old" -> Ok Setup.Old
    | "new" -> Ok Setup.New
    | "new-delete" -> Ok Setup.New_delete
    | s -> Error (`Msg (Printf.sprintf "unknown variant %S" s))
  in
  let print ppf v = Format.fprintf ppf "%s" (Setup.variant_label v) in
  Arg.conv (parse, print)

let variant_arg =
  Arg.(
    value
    & opt variant_conv Setup.New
    & info [ "variant" ] ~docv:"VARIANT"
        ~doc:"LLD variant: $(b,old), $(b,new), or $(b,new-delete) (paper Table 1).")

let segments_arg =
  Arg.(
    value
    & opt int 200
    & info [ "segments" ] ~docv:"N"
        ~doc:"Partition size in 0.5 MB segments (paper: 800 = 400 MB).")

let geom_of segments = Geometry.v ~num_segments:segments ()

(* ------------------------------------------------- persistent images *)

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file" ] ~docv:"PATH"
        ~doc:"Back the partition with a real on-disk image instead of memory.")

let default_segment_bytes = (geom_of 1).Geometry.segment_bytes

(* Deterministic seed-file contents, shared by mkfs (writer) and mount
   (verifier) so the round-trip check needs no side channel. *)
let seed_file_path i = Printf.sprintf "/f%05d" i

let seed_file_body i =
  Bytes.init 1024 (fun j -> Char.chr (33 + (((i * 31) + j) mod 94)))

let fail_invalid msg =
  Printf.eprintf "%s\n" msg;
  exit 2

(* Open an existing image, inferring the segment count from its size
   (segment size is the default 0.5 MB). *)
let open_image path =
  let size =
    match (Unix.stat path).Unix.st_size with
    | size -> size
    | exception Unix.Unix_error (e, _, _) ->
      fail_invalid
        (Printf.sprintf "cannot open image %s: %s" path (Unix.error_message e))
  in
  if size <= 0 || size mod default_segment_bytes <> 0 then
    fail_invalid
      (Printf.sprintf
         "%s is not an LLD image: %d bytes is not a whole number of %d KB \
          segments"
         path size (default_segment_bytes / 1024));
  let geom = Geometry.v ~num_segments:(size / default_segment_bytes) () in
  match Backend.file ~size path with
  | backend -> (geom, backend)
  | exception Invalid_argument msg -> fail_invalid msg

let mkfs_run file segments variant files =
  let geom = geom_of segments in
  let backend =
    match Backend.file ~create:true ~size:(Geometry.total_bytes geom) file with
    | backend -> backend
    | exception Invalid_argument msg -> fail_invalid msg
  in
  let clock = Clock.create () in
  let disk = Disk.create ~backend ~clock geom in
  let lld = Lld.create ~config:(Setup.lld_config variant) disk in
  let fs = Fs.mkfs ~config:(Setup.fs_config variant) lld in
  for i = 0 to files - 1 do
    Fs.create fs (seed_file_path i);
    Fs.write_file fs (seed_file_path i) ~off:0 (seed_file_body i)
  done;
  Fs.flush fs;
  Lld.checkpoint lld;
  Disk.barrier disk;
  Printf.printf
    "formatted %s: %d segments x %d KB (%d MB), variant %s, %d seed file(s)\n"
    file geom.Geometry.num_segments
    (geom.Geometry.segment_bytes / 1024)
    (Geometry.total_bytes geom / 1024 / 1024)
    (Setup.variant_label variant) files;
  Disk.close disk

let mkfs_cmd =
  let file =
    Arg.(
      required
      & opt (some string) None
      & info [ "file" ] ~docv:"PATH" ~doc:"Image file to create (required).")
  in
  let files =
    Arg.(
      value & opt int 10
      & info [ "files" ] ~docv:"N"
          ~doc:"Deterministic seed files to write (verified by $(b,mount)).")
  in
  Cmd.v
    (Cmd.info "mkfs"
       ~doc:
         "Format a persistent on-disk image: create it, build the Minix file \
          system on the logical disk, write deterministic seed files, \
          checkpoint, and fsync.  A separate process can then $(b,lld mount \
          --file) the same image.")
    Term.(const mkfs_run $ file $ segments_arg $ variant_arg $ files)

let mount_run file variant scrub =
  let geom, backend = open_image file in
  let clock = Clock.create () in
  let disk = Disk.create ~backend ~clock geom in
  let config =
    let c = Setup.lld_config variant in
    if scrub then { c with Config.scrub_on_mount = true } else c
  in
  match Lld.recover ~config disk with
  | exception Errors.Corrupt msg ->
    Printf.eprintf "mount failed: corrupt or unformatted image %s (%s)\n" file
      msg;
    Disk.close disk;
    exit 1
  | lld, report -> (
    Format.printf "recovery: %a@." Recovery.pp_report report;
    match Fs.mount ~config:(Setup.fs_config variant) lld with
    | exception Errors.Corrupt msg ->
      Printf.eprintf "mount failed: no valid file system on %s (%s)\n" file msg;
      Disk.close disk;
      exit 1
    | fs ->
      let check = Fsck.run fs in
      Format.printf "fsck: %a@." Fsck.pp_report check;
      let entries = Fs.readdir fs "/" in
      let verified = ref 0 and corrupt = ref 0 in
      List.iter
        (fun name ->
          if String.length name = 6 && name.[0] = 'f' then
            match int_of_string_opt (String.sub name 1 5) with
            | None -> ()
            | Some i ->
              let expect = seed_file_body i in
              let got =
                Fs.read_file fs ("/" ^ name) ~off:0 ~len:(Bytes.length expect)
              in
              if Bytes.equal got expect then incr verified else incr corrupt)
        entries;
      Printf.printf "mounted %s: %d entries in /, %d seed file(s) verified%s\n"
        file (List.length entries) !verified
        (if !corrupt > 0 then Printf.sprintf ", %d CORRUPT" !corrupt else "");
      Disk.close disk;
      if (not (Fsck.ok check)) || !corrupt > 0 then exit 1)

let mount_cmd =
  let file =
    Arg.(
      required
      & opt (some string) None
      & info [ "file" ] ~docv:"PATH" ~doc:"Image file to mount (required).")
  in
  let scrub =
    Arg.(
      value & flag
      & info [ "scrub" ]
          ~doc:
            "Scrub the image as part of recovery: verify every checksum \
             guarding live data and repair what redundancy allows before \
             serving reads (also: LLD_SCRUB_ON_MOUNT=1).")
  in
  Cmd.v
    (Cmd.info "mount"
       ~doc:
         "Mount a persistent image written by $(b,lld mkfs --file): recover \
          the logical disk, mount the file system, run fsck, and verify the \
          deterministic seed files.  Exits non-zero on any inconsistency.")
    Term.(const mount_run $ file $ variant_arg $ scrub)

(* ------------------------------------------------------------- scrub *)

let scrub_run file variant =
  let geom, backend = open_image file in
  let clock = Clock.create () in
  let disk = Disk.create ~backend ~clock geom in
  match Lld.recover ~config:(Setup.lld_config variant) disk with
  | exception Errors.Corrupt msg ->
    Printf.eprintf "scrub failed: corrupt or unformatted image %s (%s)\n" file
      msg;
    Disk.close disk;
    exit 1
  | exception Errors.Corruption c ->
    Format.eprintf "scrub failed: %s: %a@." file Errors.pp_corruption c;
    Disk.close disk;
    exit 1
  | lld, report ->
    Format.printf "recovery: %a@." Recovery.pp_report report;
    let r = Lld.scrub lld in
    Format.printf "scrub: %a@." Lld.pp_scrub_report r;
    Disk.barrier disk;
    Disk.close disk;
    if r.Lld.scrub_lost > 0 then begin
      Printf.eprintf "%d block(s) unrepairable — restore from backup\n"
        r.Lld.scrub_lost;
      exit 1
    end

let scrub_cmd =
  let file =
    Arg.(
      required
      & opt (some string) None
      & info [ "file" ] ~docv:"PATH" ~doc:"Image file to scrub (required).")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Verify every checksum guarding live data on a persistent image — \
          per-slot CRCs of sealed segments and the generational superblock — \
          and repair what redundancy allows (cached copies, salvageable \
          slots, the surviving superblock generation).  Unrepairable damage \
          is reported and exits non-zero.")
    Term.(const scrub_run $ file $ variant_arg)

(* ------------------------------------------------------------- repro *)

let repro full scale =
  let s =
    if full then Experiment.full
    else
      match scale with
      | None -> Experiment.quick
      | Some f ->
        { Experiment.full with Experiment.files = f; bytes = f; arus = f /. 5. }
  in
  Experiment.run_all Format.std_formatter s

let repro_cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Paper-sized workloads.")
  in
  let scale =
    Arg.(
      value
      & opt (some float) None
      & info [ "scale" ] ~docv:"F" ~doc:"Workload multiplier (default quick).")
  in
  Cmd.v
    (Cmd.info "repro" ~doc:"Reproduce every table and figure of the paper.")
    Term.(const repro $ full $ scale)

(* --------------------------------------------------------- smallfile *)

let smallfile variant segments files bytes =
  let inst = Setup.make ~geom:(geom_of segments) variant in
  let r =
    Smallfile.run inst { Smallfile.file_count = files; file_bytes = bytes; dirs = 1 }
  in
  Printf.printf "variant: %s, %d files x %d bytes\n"
    (Setup.variant_label variant) files bytes;
  let phase name (p : Smallfile.phase) =
    Printf.printf "  %-14s %10.1f files/s  (%.3f s virtual)\n" name
      p.Smallfile.files_per_sec
      (float_of_int p.Smallfile.elapsed_ns /. 1e9)
  in
  phase "create+write" r.Smallfile.create_write;
  phase "read" r.Smallfile.read;
  phase "delete" r.Smallfile.delete

let smallfile_cmd =
  let files =
    Arg.(value & opt int 1000 & info [ "files" ] ~docv:"N" ~doc:"File count.")
  in
  let bytes =
    Arg.(value & opt int 1024 & info [ "bytes" ] ~docv:"N" ~doc:"File size.")
  in
  Cmd.v
    (Cmd.info "smallfile" ~doc:"Run the small-file benchmark (Figure 5).")
    Term.(const smallfile $ variant_arg $ segments_arg $ files $ bytes)

(* --------------------------------------------------------- largefile *)

let largefile variant segments mbytes =
  let inst = Setup.make ~geom:(geom_of segments) variant in
  let r =
    Largefile.run inst
      { Largefile.paper with Largefile.file_bytes = mbytes * 1024 * 1024 }
  in
  Printf.printf "variant: %s, %d MB file\n" (Setup.variant_label variant) mbytes;
  List.iter
    (fun (p : Largefile.phase) ->
      Printf.printf "  %-8s %8.2f MB/s\n" p.Largefile.label p.Largefile.mb_per_sec)
    (Largefile.phases r)

let largefile_cmd =
  let mbytes =
    Arg.(value & opt int 16 & info [ "mbytes" ] ~docv:"N" ~doc:"File size in MB.")
  in
  Cmd.v
    (Cmd.info "largefile" ~doc:"Run the large-file benchmark (Figure 6).")
    Term.(const largefile $ variant_arg $ segments_arg $ mbytes)

(* --------------------------------------------------------- aru-bench *)

let aru_bench variant segments count =
  let _, lld = Setup.make_raw ~geom:(geom_of segments) variant in
  let r = Aru_churn.run lld { Aru_churn.count } in
  Printf.printf
    "%d ARUs on %s LLD: %.2f us/ARU, %d segments written\n" r.Aru_churn.count
    (Setup.variant_label variant) r.Aru_churn.latency_us
    r.Aru_churn.segments_written

let aru_bench_cmd =
  let count =
    Arg.(
      value & opt int 100_000
      & info [ "count" ] ~docv:"N" ~doc:"Begin/End pairs (paper: 500000).")
  in
  Cmd.v
    (Cmd.info "aru-bench" ~doc:"Measure Begin/End ARU latency (paper 5.3).")
    Term.(const aru_bench $ variant_arg $ segments_arg $ count)

(* -------------------------------------------------------- crash-demo *)

let crash_demo no_arus segments crash_after =
  let variant = if no_arus then Setup.Old else Setup.New in
  let geom =
    Geometry.v ~segment_bytes:(32 * 1024)
      ~num_segments:(max 64 (segments * 4)) ()
  in
  let inst = Setup.make ~geom variant in
  Printf.printf "configuration: %s (%s)\n"
    (Setup.variant_label variant)
    (if no_arus then "creates NOT bracketed in ARUs" else "one ARU per create");
  Fault.schedule_crash (Disk.fault inst.Setup.disk)
    (Fault.After_writes crash_after);
  let created = ref 0 in
  (try
     for i = 0 to 499 do
       Fs.mkdir inst.Setup.fs (Printf.sprintf "/d%03d" i);
       Fs.create inst.Setup.fs (Printf.sprintf "/d%03d/file" i);
       incr created
     done;
     Fs.flush inst.Setup.fs
   with Fault.Crashed -> ());
  Printf.printf "crash injected after %d segment writes (%d creates started)\n"
    crash_after !created;
  let lld, report = Lld.recover ~config:(Setup.lld_config variant) inst.Setup.disk in
  Format.printf "recovery: %a@." Recovery.pp_report report;
  let fs = Fs.mount ~config:(Setup.fs_config variant) lld in
  let check = Fsck.run fs in
  Format.printf "fsck: %a@." Fsck.pp_report check;
  if not (Fsck.ok check) then begin
    let repaired = Fsck.run ~repair:true fs in
    Format.printf "fsck --repair: fixed %d problem(s)@." repaired.Fsck.repaired;
    Format.printf "fsck again: %a@." Fsck.pp_report (Fsck.run fs)
  end

let crash_demo_cmd =
  let no_arus =
    Arg.(
      value & flag
      & info [ "no-arus" ]
          ~doc:"Run the old configuration (no ARU bracketing) to show the \
                inconsistencies ARUs prevent.")
  in
  let crash_after =
    Arg.(
      value & opt int 7
      & info [ "crash-after" ] ~docv:"N"
          ~doc:"Crash after this many segment writes.")
  in
  Cmd.v
    (Cmd.info "crash-demo"
       ~doc:"Crash mid-workload, recover, and run fsck (paper 5.1).")
    Term.(const crash_demo $ no_arus $ segments_arg $ crash_after)

(* ----------------------------------------------------------- torture *)

let torture no_arus seeds operations crash_points =
  let with_arus = not no_arus in
  let failures = ref 0 in
  for seed = 1 to seeds do
    let r =
      Torture.run ~with_arus { Torture.seed; operations; crash_points }
    in
    List.iter
      (fun (o : Torture.outcome) ->
        if not o.Torture.consistent then begin
          incr failures;
          Printf.printf "seed %d, crash@%d: %d problem(s), e.g. %s\n" seed
            o.Torture.crash_after
            (List.length o.Torture.problems)
            (match o.Torture.problems with
            | p :: _ -> Format.asprintf "%a" Lld_minixfs.Fsck.pp_problem p
            | [] -> "?")
        end)
      r.Torture.outcomes;
    Printf.printf "seed %d: %s (%d crash points)\n%!" seed
      (if r.Torture.all_consistent then "consistent at every crash point"
       else "INCONSISTENCIES FOUND")
      crash_points
  done;
  if with_arus && !failures > 0 then exit 1;
  if (not with_arus) && !failures > 0 then
    Printf.printf
      "(inconsistencies are expected without ARUs: that is the point)\n"

let torture_cmd =
  let no_arus =
    Arg.(value & flag & info [ "no-arus" ] ~doc:"Use the old configuration.")
  in
  let seeds =
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc:"Workload seeds.")
  in
  let operations =
    Arg.(
      value & opt int 300
      & info [ "operations" ] ~docv:"N" ~doc:"Operations per workload.")
  in
  let crash_points =
    Arg.(
      value & opt int 24
      & info [ "crash-points" ] ~docv:"N" ~doc:"Crash points per seed.")
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Crash-consistency torture: random FS workloads x crash points, \
          fsck after every recovery.")
    Term.(const torture $ no_arus $ seeds $ operations $ crash_points)

(* -------------------------------------------------------- crashcheck *)

let point_conv =
  let parse s =
    let fail () =
      Error (`Msg (Printf.sprintf "expected INDEX or INDEX:KEEP, got %S" s))
    in
    match String.split_on_char ':' s with
    | [ i ] -> (
      match int_of_string_opt i with
      | Some i -> Ok { Crashcheck.pt_index = i; pt_keep = None }
      | None -> fail ())
    | [ i; k ] -> (
      match (int_of_string_opt i, int_of_string_opt k) with
      | Some i, Some k -> Ok { Crashcheck.pt_index = i; pt_keep = Some k }
      | _ -> fail ())
    | _ -> fail ()
  in
  Arg.conv (parse, Crashcheck.pp_point)

let crashcheck workload shards budget granularity seed at broken_sweep
    trace_dir differential during_recovery inner_budget corruption =
  if workload = Some "cross-shard" then begin
    (* the sharded checker: S disks, one interleaved global write
       trace, recovery through the facade's cross-shard decision scan *)
    if differential || corruption || during_recovery || broken_sweep then begin
      Printf.eprintf
        "--workload cross-shard supports plain enumeration and --at only\n";
      exit 2
    end;
    if shards < 2 then begin
      Printf.eprintf "--shards must be at least 2 for cross-shard ARUs\n";
      exit 2
    end;
    let spec = Crashcheck.cross_shard_spec ~shards () in
    Printf.printf "recording cross-shard trace (%d shards)...\n%!" shards;
    let trace = Crashcheck.record_sharded spec in
    Printf.printf "cross-shard: %d disk writes, %d oracle units\n%!"
      (Crashcheck.sharded_trace_writes trace)
      (Crashcheck.sharded_trace_oracle_units trace);
    match at with
    | Some point ->
      let problems =
        try Crashcheck.check_sharded_point trace point
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
      in
      if problems = [] then
        Format.printf "crash %a: consistent@." Crashcheck.pp_point point
      else begin
        Format.printf "crash %a: %d violation(s)@." Crashcheck.pp_point point
          (List.length problems);
        List.iter (fun p -> Printf.printf "  %s\n" p) problems;
        exit 1
      end
    | None ->
      let progress ~checked ~selected =
        if checked mod 200 = 0 || checked = selected then
          Printf.printf "  cross-shard: %d/%d crash points checked\n%!" checked
            selected
      in
      let r = Crashcheck.run_sharded ~granularity ?budget ~seed ~progress trace in
      Format.printf "%a@." Crashcheck.pp_result r;
      if not (Crashcheck.ok r) then exit 1
  end
  else
  let selected =
    match workload with
    | None -> Crashcheck.specs
    | Some name -> (
      match List.assoc_opt name Crashcheck.specs with
      | Some mk -> [ (name, mk) ]
      | None ->
        Printf.eprintf "unknown workload %S (known: %s)\n" name
          (String.concat ", " (List.map fst Crashcheck.specs));
        exit 2)
  in
  let recover_config spec =
    if broken_sweep then
      Some { spec.Crashcheck.sc_config with Config.recovery_sweep = false }
    else None
  in
  if differential then begin
    let failed = ref false in
    List.iter
      (fun (name, mk) ->
        let spec = mk () in
        Printf.printf "differential %s: mem vs file backend...\n%!" name;
        let d = Crashcheck.differential spec in
        Format.printf "%a@." Crashcheck.pp_differential d;
        if not (Crashcheck.differential_ok d) then failed := true)
      selected;
    if !failed then exit 1
  end
  else if corruption then begin
    let failed = ref false in
    List.iter
      (fun (name, mk) ->
        let spec = mk () in
        Printf.printf "corruption %s: injecting rot, scrubbing...\n%!" name;
        let r = Crashcheck.corruption_check spec in
        Format.printf "%a@." Crashcheck.pp_corruption_result r;
        if not (Crashcheck.corruption_ok r) then failed := true)
      selected;
    if !failed then exit 1
  end
  else if during_recovery then begin
    let failed = ref false in
    List.iter
      (fun (name, mk) ->
        let spec = mk () in
        Printf.printf "recording %s trace...\n%!" name;
        let trace = Crashcheck.record spec in
        let progress ~outer ~total =
          Printf.printf "  %s: recovery crashed from %d/%d workload points\n%!"
            name outer total
        in
        let r =
          Crashcheck.run_during_recovery ~granularity
            ?budget ?inner_budget ~seed
            ?recover_config:(recover_config spec) ?trace_dir ~progress trace
        in
        Format.printf "%a@." Crashcheck.pp_recovery_result r;
        if not (Crashcheck.recovery_ok r) then failed := true)
      selected;
    if !failed then exit 1
  end
  else
    match at with
    | Some point ->
      let name, mk =
      match selected with
      | [ one ] -> one
      | _ ->
        Printf.eprintf "--at requires --workload\n";
        exit 2
    in
    let spec = mk () in
    let trace = Crashcheck.record spec in
    Printf.printf "workload %s: %d disk writes recorded\n" name
      (Crashcheck.trace_writes trace);
    let problems =
      try
        Crashcheck.check_point ?recover_config:(recover_config spec) trace
          point
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    in
    if problems = [] then
      Format.printf "crash %a: consistent@." Crashcheck.pp_point point
    else begin
      Format.printf "crash %a: %d violation(s)@." Crashcheck.pp_point point
        (List.length problems);
      List.iter (fun p -> Printf.printf "  %s\n" p) problems;
      exit 1
    end
  | None ->
    let caught_broken = ref false in
    let failed = ref false in
    List.iter
      (fun (name, mk) ->
        let spec = mk () in
        Printf.printf "recording %s trace...\n%!" name;
        let trace = Crashcheck.record spec in
        let progress ~checked ~selected =
          if checked mod 200 = 0 || checked = selected then
            Printf.printf "  %s: %d/%d crash points checked\n%!" name checked
              selected
        in
        let r =
          Crashcheck.run ~granularity ?budget ~seed
            ?recover_config:(recover_config spec) ?trace_dir ~progress trace
        in
        Format.printf "%a@." Crashcheck.pp_result r;
        if Crashcheck.ok r then () else failed := true;
        if broken_sweep && not (Crashcheck.ok r) then caught_broken := true)
      selected;
    if broken_sweep then
      if !caught_broken then
        print_endline
          "broken recovery (sweep disabled) detected, as intended: the \
           checker works"
      else begin
        print_endline
          "ERROR: recovery sweep was disabled but no violation was detected";
        exit 1
      end
    else if !failed then exit 1

let crashcheck_cmd =
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Workload to check: $(b,smallfile), $(b,aru-churn) or \
             $(b,cleaning) (default: all), or $(b,cross-shard) — the \
             sharded facade's two-phase-commit workload, enumerated over \
             the interleaved multi-disk write trace (see $(b,--shards)).")
  in
  let shards =
    Arg.(
      value & opt int 3
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "With $(b,--workload cross-shard): number of independent \
             segment logs behind the facade (default 3).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Check at most N crash points per workload, sampled \
             deterministically (default: exhaustive).")
  in
  let granularity =
    Arg.(
      value & opt int 512
      & info [ "granularity" ] ~docv:"BYTES"
          ~doc:"Torn-write boundary spacing in bytes.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Sampling seed for budgeted mode.")
  in
  let at =
    Arg.(
      value
      & opt (some point_conv) None
      & info [ "at" ] ~docv:"INDEX[:KEEP]"
          ~doc:
            "Replay a single crash point (as printed by a minimal \
             reproducer) instead of enumerating; requires $(b,--workload).")
  in
  let broken_sweep =
    Arg.(
      value & flag
      & info [ "test-broken-sweep" ]
          ~doc:
            "Self-test: recover with the consistency sweep disabled and \
             verify the checker flags the leak (exits non-zero if it \
             doesn't).")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "When a violation is found, replay the minimal reproducer's \
             recovery under live tracing and write the Chrome trace into \
             $(docv), next to the reproducer command line.")
  in
  let differential =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:
            "Instead of enumerating crash points, run each workload once on \
             the in-memory backend and once on a file backend and verify the \
             final images are byte-identical, the device counters equal, and \
             the virtual clocks equal (paper 2: transparent implementation \
             exchange).")
  in
  let during_recovery =
    Arg.(
      value & flag
      & info [ "during-recovery" ]
          ~doc:
            "Crash the recovery itself: for a sample of workload crash \
             points ($(b,--budget), default 24), recover with early open, \
             verify the oracle through on-demand reads while the replay is \
             pending, then enumerate crash points over recovery's own \
             writes (including torn checkpoint chunks) and verify a second \
             recovery from each.")
  in
  let inner_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "inner-budget" ] ~docv:"N"
          ~doc:
            "With $(b,--during-recovery): sample at most N crash points \
             within each recovery's write sequence (default: exhaustive).")
  in
  let corruption =
    Arg.(
      value & flag
      & info [ "corruption" ]
          ~doc:
            "Instead of enumerating crash points, inject silent media rot \
             into each workload's final image — a sealed segment's header, a \
             generational-superblock slot, and a live data slot under a warm \
             instance — then scrub and verify every oracle unit survives \
             with zero data loss (including after a remount).")
  in
  Cmd.v
    (Cmd.info "crashcheck"
       ~doc:
         "Enumerate every crash point of a traced workload (including torn \
          writes), recover at each, and verify ARU atomicity, fsck \
          cleanliness, sweep completeness, and recovery idempotency.")
    Term.(
      const crashcheck $ workload $ shards $ budget $ granularity $ seed $ at
      $ broken_sweep $ trace_dir $ differential $ during_recovery
      $ inner_budget $ corruption)

(* ------------------------------------------------ traced workloads *)

(* With LLD_FORENSICS_DIR set, any Errors.panic (a live-instance
   invariant violation) dumps the black box of the handle we are
   tracing with before the exception propagates. *)
let arm_panic_forensics obs =
  match Sys.getenv_opt "LLD_FORENSICS_DIR" with
  | None -> ()
  | Some dir ->
    Errors.on_panic (fun e ->
        let paths = Forensics.dump ~dir ~label:"panic" obs in
        Printf.eprintf "panic (%s): forensics bundle written:\n"
          (Printexc.to_string e);
        List.iter (fun p -> Printf.eprintf "  %s\n" p) paths)

(* One group-commit engine client: begin, populate a private list with
   [writes] written blocks, commit (translated to a queued submission
   by the engine).  Used by the traced workload so the trace carries
   complete submit -> batch -> seal barrier -> wake flow chains. *)
let engine_commit_client ~block_bytes ~writes tag =
  let aru = ref None in
  let list = ref None in
  let last = ref None in
  let written = ref 0 in
  let state = ref `Begin in
  fun (r : Op.result option) ->
    match !state with
    | `Begin ->
      state := `List;
      Some Op.Begin_aru
    | `List ->
      (match r with Some (Op.R_aru a) -> aru := Some a | _ -> ());
      state := `Block;
      Some (Op.New_list !aru)
    | `Block ->
      (match r with Some (Op.R_list l) -> list := Some l | _ -> ());
      if !written < writes then begin
        state := `Write;
        let pred =
          match !last with
          | None -> Summary.Head
          | Some b -> Summary.After b
        in
        Some (Op.New_block { aru = !aru; list = Option.get !list; pred })
      end
      else begin
        state := `Done;
        Some (Op.End_aru (Option.get !aru))
      end
    | `Write ->
      (match r with
      | Some (Op.R_block b) ->
        last := Some b;
        incr written
      | _ -> ());
      state := `Block;
      Some
        (Op.Write
           {
             aru = !aru;
             block = Option.get !last;
             data = Bytes.make block_bytes (Char.chr (Char.code 'a' + tag));
           })
    | `Done -> None

(* Shared runner for `lld trace` and `lld stats`: a small-file workload
   through the Minix FS (create/write/overwrite/delete), then a forced
   cleaner pass, then an injected crash and a recovery on the same disk
   and clock, then a group-commit engine phase on the recovered
   instance — one virtual timeline covering the op, fs, disk, aru,
   checkpoint, clean, recovery and commit-stage span categories. *)
let run_traced_workload ~variant ~segments ~files ~file =
  let geom = geom_of segments in
  let backend =
    match file with
    | None -> None
    | Some path -> (
      match Backend.file ~create:true ~size:(Geometry.total_bytes geom) path with
      | backend -> Some backend
      | exception Invalid_argument msg -> fail_invalid msg)
  in
  let clock = Clock.create () in
  let obs = Obs.create ~clock () in
  arm_panic_forensics obs;
  let inst = Setup.make ~geom ~clock ~obs ?backend variant in
  let body = Bytes.make 1024 'x' in
  let path i = Printf.sprintf "/f%05d" i in
  for i = 0 to files - 1 do
    Fs.create inst.Setup.fs (path i);
    Fs.write_file inst.Setup.fs (path i) ~off:0 body
  done;
  (* overwrites and deletions leave dead space for the cleaner *)
  for i = 0 to files - 1 do
    if i mod 2 = 0 then Fs.write_file inst.Setup.fs (path i) ~off:0 body
    else Fs.unlink inst.Setup.fs (path i)
  done;
  Fs.flush inst.Setup.fs;
  Lld.clean inst.Setup.lld
    ~target_free:(Lld.free_segments inst.Setup.lld + 2);
  Fs.flush inst.Setup.fs;
  Fault.schedule_crash (Disk.fault inst.Setup.disk) (Fault.After_writes 0);
  (try Disk.write inst.Setup.disk ~offset:0 (Bytes.make 1 'x')
   with Fault.Crashed -> ());
  let config =
    let c = Setup.lld_config variant in
    if c.Config.mode = Config.Concurrent then
      (* pinned (never from the environment) so the traced batches are
         deterministic: four clients, batch of 4, one shared barrier *)
      { c with Config.group_commit_window = 50_000; group_commit_batch = 4 }
    else c
  in
  let lld, _report = Lld.recover ~config ~obs inst.Setup.disk in
  if config.Config.mode = Config.Concurrent then
    ignore
      (Engine.run lld
         (List.init 4 (fun i ->
              engine_commit_client ~block_bytes:(Lld.block_bytes lld)
                ~writes:(1 + i) i)));
  (lld, obs)

let traced_files_arg =
  Arg.(
    value & opt int 300
    & info [ "files" ] ~docv:"N" ~doc:"Files in the traced workload.")

(* --------------------------------------------------------------- trace *)

let trace_run variant segments files file out jsonl =
  let _lld, obs = run_traced_workload ~variant ~segments ~files ~file in
  let tr = Obs.trace obs in
  Trace.write_chrome_file tr out;
  Printf.printf
    "wrote %s: %d events (%d dropped), %.3f ms of virtual time\n" out
    (Trace.count tr - Trace.dropped tr)
    (Trace.dropped tr)
    (float_of_int (Trace.now_ns tr) /. 1e6);
  match jsonl with
  | None -> ()
  | Some path ->
    Trace.write_jsonl_file tr path;
    Printf.printf "wrote %s (exact-nanosecond JSONL sidecar)\n" path

let trace_cmd =
  let out =
    Arg.(
      value
      & opt string "lld.trace.json"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Chrome trace-event JSON output (Perfetto-loadable).")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Also write a JSONL sidecar with exact nanosecond stamps.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a traced workload (small files, forced cleaning, injected \
          crash, recovery) and export the span trace as Chrome trace-event \
          JSON.")
    Term.(
      const trace_run $ variant_arg $ segments_arg $ traced_files_arg
      $ file_arg $ out $ jsonl)

(* --------------------------------------------------------------- stats *)

let stats_run variant segments files file json openmetrics =
  let _lld, obs = run_traced_workload ~variant ~segments ~files ~file in
  let m = Obs.metrics obs in
  if openmetrics then print_string (Metrics.to_openmetrics_string m)
  else if json then print_endline (Metrics.to_json_string m)
  else begin
    let hists =
      List.filter
        (fun (_, h) -> Histogram.count h > 0)
        (List.sort compare (Metrics.histograms m))
    in
    Printf.printf "%-28s %8s %12s %10s %10s %10s\n" "span" "count" "mean (us)"
      "p50" "p95" "p99";
    List.iter
      (fun (name, h) ->
        let us ns = float_of_int ns /. 1e3 in
        Printf.printf "%-28s %8d %12.2f %10.2f %10.2f %10.2f\n" name
          (Histogram.count h)
          (Histogram.mean h /. 1e3)
          (us (Histogram.p50 h))
          (us (Histogram.p95 h))
          (us (Histogram.p99 h)))
      hists;
    Printf.printf "\ngauges (sampled after recovery):\n";
    List.iter
      (fun (name, v, help) -> Printf.printf "  %-20s %10d  %s\n" name v help)
      (Metrics.sample_gauges m)
  end

let stats_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the metrics registry as JSON instead.")
  in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:
            "Emit the metrics registry in OpenMetrics/Prometheus text \
             exposition format (counters as $(b,_total), histograms with \
             cumulative $(b,le) buckets) instead.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a traced workload and report per-operation latency \
          percentiles (p50/p95/p99 on the virtual clock), the commit-stage \
          breakdown, and live gauges.")
    Term.(
      const stats_run $ variant_arg $ segments_arg $ traced_files_arg
      $ file_arg $ json $ openmetrics)

(* -------------------------------------------------------------- info *)

let print_layout geom =
  let module L = Lld_core.Disk_layout in
  Printf.printf "partition: %d segments x %d KB = %d MB\n"
    geom.Geometry.num_segments
    (geom.Geometry.segment_bytes / 1024)
    (Geometry.total_bytes geom / 1024 / 1024);
  Printf.printf "checkpoint regions: 2 x %d segments\n" (L.region_segments geom);
  Printf.printf "log segments: %d (first at %d)\n" (L.log_count geom)
    (L.log_first geom);
  Printf.printf "logical block capacity: %d x 4 KB\n" (L.block_capacity geom)

let print_gauges ~header obs =
  Printf.printf "%s:\n" header;
  List.iter
    (fun (name, v, help) -> Printf.printf "  %-20s %10d  %s\n" name v help)
    (Metrics.sample_gauges (Obs.metrics obs))

let print_counters ~header lld =
  Printf.printf "%s:\n" header;
  let c = Lld.counters lld in
  List.iter
    (fun (name, get, _set) -> Printf.printf "  %-24s %10d\n" name (get c))
    Counters.fields

let show_info segments file =
  match file with
  | None ->
    let geom = geom_of segments in
    print_layout geom;
    (* live gauges of a freshly formatted logical disk on this geometry *)
    let clock = Clock.create () in
    let obs = Obs.create ~clock () in
    let _, lld = Setup.make_raw ~geom ~clock ~obs Setup.New in
    print_gauges ~header:"gauges (freshly formatted)" obs;
    print_counters ~header:"operation counters (freshly formatted)" lld
  | Some path -> (
    let geom, backend = open_image path in
    Printf.printf "image: %s (backend %s)\n" path backend.Backend.label;
    print_layout geom;
    let clock = Clock.create () in
    let obs = Obs.create ~clock () in
    let disk = Disk.create ~backend ~clock geom in
    match Lld.recover ~obs disk with
    | exception Errors.Corrupt msg ->
      Printf.eprintf "corrupt or unformatted image: %s\n" msg;
      Disk.close disk;
      exit 1
    | lld, report ->
      Format.printf "recovery: %a@." Recovery.pp_report report;
      print_gauges ~header:"gauges (after recovery)" obs;
      print_counters ~header:"operation counters (after recovery)" lld;
      Disk.close disk)

let info_cmd =
  Cmd.v
    (Cmd.info "info"
       ~doc:
         "Show partition layout, live gauges, and the full operation-counter \
          table — of a freshly formatted logical disk, or of a persistent \
          image ($(b,--file)) after recovering it.")
    Term.(const show_info $ segments_arg $ file_arg)

(* --------------------------------------------------------------- bench *)

(* G1: group-commit throughput scaling with concurrent clients.  The
   engine runs N synchronous-commit client loops; the flusher packs the
   in-flight commits into batched commit records, one barrier each. *)
let bench_run clients segments =
  if clients = [] then fail_invalid "--clients needs at least one count";
  List.iter
    (fun n -> if n < 1 then fail_invalid "--clients counts must be positive")
    clients;
  let scale = { Experiment.quick with Experiment.geom = geom_of segments } in
  let rows = Experiment.group_commit ~clients scale in
  Experiment.print_group_commit Format.std_formatter rows;
  let row n =
    List.find_opt (fun r -> r.Experiment.g1_clients = n) rows
  in
  match (row 1, row 8) with
  | Some one, Some eight ->
    let ratio =
      eight.Experiment.g1_commits_per_sec /. one.Experiment.g1_commits_per_sec
    in
    Printf.printf
      "scaling: %.2fx at 8 clients (gate: >= 3x); %.3f barriers/commit \
       (gate: < 0.5)\n"
      ratio eight.Experiment.g1_barriers_per_commit;
    if ratio < 3.0 || eight.Experiment.g1_barriers_per_commit >= 0.5 then
      exit 1
  | _ -> ()

let bench_cmd =
  let clients =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "clients" ] ~docv:"N,..."
          ~doc:
            "Concurrent client counts to run (comma-separated).  When the \
             list includes 1 and 8 the scaling gates are evaluated and a \
             failure exits non-zero.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "G1: group-commit scaling — run N concurrent synchronous-commit \
          clients through the engine's event loop and report commits/s, \
          batch sizes and barriers per commit for each N.")
    Term.(const bench_run $ clients $ segments_arg)

(* ---------------------------------------------------------------- *)
(* model: differential fuzzing against the executable specification   *)

let model_fuzz seed budget clients ops option backend crash_every crash_points
    group_commit shards inject expect_divergence out_dir =
  let visibility =
    match option with
    | 1 -> Config.Any_shadow
    | 2 -> Config.Committed_only
    | 3 -> Config.Own_shadow
    | n ->
      fail_invalid
        (Printf.sprintf
           "unknown read-visibility option %d (the paper defines 1, 2 and 3)"
           n)
  in
  let mutation =
    match inject with
    | None -> None
    | Some name -> (
      match Model.mutation_of_string name with
      | Some m -> Some m
      | None ->
        fail_invalid
          (Printf.sprintf "unknown injected bug %S (known: %s)" name
             (String.concat ", "
                (List.map Model.mutation_label Model.mutations))))
  in
  if clients < 1 then fail_invalid "--clients must be at least 1";
  if ops < 1 then fail_invalid "--ops must be at least 1";
  if budget < 1 then fail_invalid "--budget must be at least 1";
  if shards < 1 then fail_invalid "--shards must be at least 1";
  let cfg =
    {
      Differ.default_config with
      Differ.visibility;
      mutation;
      backend = (match backend with `Mem -> Differ.Mem | `File -> Differ.File);
      clients;
      ops;
      crash_every;
      crash_points;
      group_commit;
      shards;
    }
  in
  let progress ~case =
    if case mod 100 = 0 then Printf.printf "  case %d/%d...\n%!" case budget
  in
  let report = Differ.fuzz ~progress ~seed ~budget cfg in
  Format.printf "%a@." Differ.pp_report report;
  (match (out_dir, report.Differ.rp_failure) with
  | Some dir, Some f ->
    (try
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       let path =
         Filename.concat dir (Printf.sprintf "model-divergence-seed%d.txt" seed)
       in
       let oc = open_out path in
       let ppf = Format.formatter_of_out_channel oc in
       Format.fprintf ppf "%a@." Differ.pp_report report;
       close_out oc;
       Printf.printf "divergence report written to %s\n" path;
       (* re-run the shrunk program with the flight recorder and tracer
          live and drop the black-box bundle next to the report *)
       let crash =
         cfg.Differ.crash_every > 0
         && f.Differ.fl_case_index mod cfg.Differ.crash_every = 0
       in
       let _div, paths =
         Differ.dump_forensics ~crash ~dir
           ~label:(Printf.sprintf "model-divergence-seed%d" seed)
           cfg ~seed:f.Differ.fl_case_seed f.Differ.fl_shrunk
       in
       List.iter (fun p -> Printf.printf "forensics: %s\n" p) paths
     with Sys_error msg -> Printf.eprintf "cannot write report: %s\n" msg)
  | _ -> ());
  let diverged = not (Differ.ok report) in
  if expect_divergence || mutation <> None then
    if diverged then
      print_endline
        "divergence found and shrunk, as intended: the differ works"
    else begin
      print_endline "ERROR: a divergence was expected but none was found";
      exit 1
    end
  else if diverged then exit 1

let model_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Master seed; equal seeds reproduce bit-for-bit.")
  in
  let budget =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~docv:"N" ~doc:"Number of generated programs.")
  in
  let clients =
    Arg.(
      value & opt int 2
      & info [ "clients" ] ~docv:"N"
          ~doc:"Concurrent clients interleaved per program.")
  in
  let ops =
    Arg.(
      value & opt int 40
      & info [ "ops" ] ~docv:"N" ~doc:"Commands per client per program.")
  in
  let option =
    Arg.(
      value & opt int 3
      & info [ "option" ] ~docv:"1|2|3"
          ~doc:
            "Read-visibility option (paper 3.3): $(b,1) any shadow, $(b,2) \
             committed only, $(b,3) own shadow (default).")
  in
  let backend =
    Arg.(
      value
      & opt (enum [ ("mem", `Mem); ("file", `File) ]) `Mem
      & info [ "backend" ] ~docv:"mem|file" ~doc:"Storage backend.")
  in
  let crash_every =
    Arg.(
      value & opt int 4
      & info [ "crash-every" ] ~docv:"N"
          ~doc:
            "Replay crash points on every N-th case ($(b,0) disables the \
             crash-composition phase).")
  in
  let crash_points =
    Arg.(
      value & opt int 12
      & info [ "crash-points" ] ~docv:"N"
          ~doc:"Crash-point sample budget per crash case.")
  in
  let group_commit =
    Arg.(
      value & flag
      & info [ "group-commit" ]
          ~doc:
            "Schedule commits through the group-commit engine: $(b,Commit) \
             commands become queued submissions, both sides drain in \
             lockstep when a batch is due, and the crash frontier includes \
             every per-ARU boundary inside a batched commit record.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Run both sides behind the sharded facade with $(docv) \
             independent segment logs: operations route by placement, \
             multi-shard ARUs commit via two-phase commit, and each crash \
             point checks every shard's recovered projection against that \
             shard's own frontier chain ($(b,1), the default, is the plain \
             single-instance path).")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"BUG"
          ~doc:
            "Self-test: run the model with a deliberate semantic bug \
             ($(b,read-committed) or $(b,commit-drops-data)) and verify the \
             differ finds and shrinks the divergence (exits non-zero if it \
             doesn't).")
  in
  let expect_divergence =
    Arg.(
      value & flag
      & info [ "expect-divergence" ]
          ~doc:"Exit zero exactly when a divergence is found.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Write the divergence report into $(docv) when a case fails.")
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:
         "Differential fuzzing: run generated multi-client programs against \
          the pure executable specification and the real log-structured \
          implementation, compare every observable result and the final \
          committed state, replay sampled crash points against the model's \
          crash frontier, and shrink any divergence to a minimal program.")
    Term.(
      const model_fuzz $ seed $ budget $ clients $ ops $ option $ backend
      $ crash_every $ crash_points $ group_commit $ shards $ inject
      $ expect_divergence $ out_dir)

let () =
  let doc = "Atomic Recovery Units / log-structured Logical Disk reproduction" in
  let cmd =
    Cmd.group
      (Cmd.info "lld" ~version:"1.0.0" ~doc)
      [
        repro_cmd; smallfile_cmd; largefile_cmd; aru_bench_cmd; bench_cmd;
        crash_demo_cmd; torture_cmd; crashcheck_cmd; model_cmd; trace_cmd;
        stats_cmd; info_cmd; mkfs_cmd; mount_cmd; scrub_cmd;
      ]
  in
  exit (Cmd.eval cmd)
