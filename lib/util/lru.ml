(* Doubly-linked list threaded through a hash table: O(1) find/add/remove.
   The list head is the most-recently-used entry. *)

type 'a node = {
  key : int;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (int, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create 64; head = None; tail = None; evictions = 0 }

let detach t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
    detach t node;
    push_front t node;
    Some node.value

let mem t k = Hashtbl.mem t.table k

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    detach t node;
    Hashtbl.remove t.table k

let remove_range t ~lo ~hi =
  if hi >= lo then
    if hi - lo + 1 <= Hashtbl.length t.table then
      for k = lo to hi do
        remove t k
      done
    else begin
      (* fewer entries than keys: one walk of the recency list, capturing
         each successor before the node is detached *)
      let cur = ref t.head in
      while !cur <> None do
        match !cur with
        | None -> ()
        | Some node ->
          cur := node.next;
          if node.key >= lo && node.key <= hi then begin
            detach t node;
            Hashtbl.remove t.table node.key
          end
      done
    end

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some node ->
    detach t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    detach t node;
    push_front t node
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_tail t;
    let node = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k node;
    push_front t node

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let length t = Hashtbl.length t.table
let capacity t = t.capacity
let evictions t = t.evictions
