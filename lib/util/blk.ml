(* Zero-copy block views (DESIGN.md §5.13).

   A [Blk.t] is a window into a [Bigarray] buffer: [sub] and the codec
   [Reader] hand out O(1) aliases instead of copies, and only [copy] /
   [to_bytes] materialise fresh storage.  The data path (backend, shim
   stack, segment images, LRU cache, record mesh) passes these views
   across layer boundaries; ownership rules — who may retain a view and
   for how long — are documented per producer in DESIGN.md §5.13. *)

type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { buf : buf; off : int; len : int }

exception Truncated

let length t = t.len

let create len =
  if len < 0 then invalid_arg "Blk.create: negative length";
  let buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout len in
  Bigarray.Array1.fill buf '\000';
  { buf; off = 0; len }

let of_buffer buf =
  { buf; off = 0; len = Bigarray.Array1.dim buf }

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Blk.sub";
  { buf = t.buf; off = t.off + pos; len }

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Blk.get";
  Bigarray.Array1.unsafe_get t.buf (t.off + i)

let set t i c =
  if i < 0 || i >= t.len then invalid_arg "Blk.set";
  Bigarray.Array1.unsafe_set t.buf (t.off + i) c

let fill t c =
  Bigarray.Array1.fill (Bigarray.Array1.sub t.buf t.off t.len) c

let blit src src_off dst dst_off len =
  if
    len < 0 || src_off < 0 || dst_off < 0
    || src_off + len > src.len
    || dst_off + len > dst.len
  then invalid_arg "Blk.blit";
  Bigarray.Array1.blit
    (Bigarray.Array1.sub src.buf (src.off + src_off) len)
    (Bigarray.Array1.sub dst.buf (dst.off + dst_off) len)

let blit_from_bytes src src_off dst dst_off len =
  if
    len < 0 || src_off < 0 || dst_off < 0
    || src_off + len > Bytes.length src
    || dst_off + len > dst.len
  then invalid_arg "Blk.blit_from_bytes";
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set dst.buf
      (dst.off + dst_off + i)
      (Bytes.unsafe_get src (src_off + i))
  done

let blit_to_bytes src src_off dst dst_off len =
  if
    len < 0 || src_off < 0 || dst_off < 0
    || src_off + len > src.len
    || dst_off + len > Bytes.length dst
  then invalid_arg "Blk.blit_to_bytes";
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_off + i)
      (Bigarray.Array1.unsafe_get src.buf (src.off + src_off + i))
  done

let of_bytes b =
  let t = create (Bytes.length b) in
  blit_from_bytes b 0 t 0 (Bytes.length b);
  t

let of_string s = of_bytes (Bytes.unsafe_of_string s)

let to_bytes t =
  let b = Bytes.create t.len in
  blit_to_bytes t 0 b 0 t.len;
  b

let to_string t = Bytes.unsafe_to_string (to_bytes t)

let copy t =
  let c = create t.len in
  blit t 0 c 0 t.len;
  c

let equal a b =
  a.len = b.len
  &&
  let rec go i =
    i >= a.len
    || Bigarray.Array1.unsafe_get a.buf (a.off + i)
       = Bigarray.Array1.unsafe_get b.buf (b.off + i)
       && go (i + 1)
  in
  go 0

let compare a b =
  let n = min a.len b.len in
  let rec go i =
    if i >= n then Stdlib.compare a.len b.len
    else
      let c =
        Char.compare
          (Bigarray.Array1.unsafe_get a.buf (a.off + i))
          (Bigarray.Array1.unsafe_get b.buf (b.off + i))
      in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* -------------------------------------------------- scalar accessors *)

let get_u8 t i = Char.code (get t i)
let set_u8 t i v = set t i (Char.chr (v land 0xff))
let get_u16 t i = get_u8 t i lor (get_u8 t (i + 1) lsl 8)

let set_u16 t i v =
  set_u8 t i v;
  set_u8 t (i + 1) (v lsr 8)

let get_u32 t i = get_u16 t i lor (get_u16 t (i + 2) lsl 16)

let set_u32 t i v =
  set_u16 t i (v land 0xffff);
  set_u16 t (i + 2) ((v lsr 16) land 0xffff)

let get_u64 t i =
  Int64.logor
    (Int64.of_int (get_u32 t i))
    (Int64.shift_left (Int64.of_int (get_u32 t (i + 4))) 32)

let set_u64 t i v =
  set_u32 t i (Int64.to_int (Int64.logand v 0xffffffffL));
  set_u32 t (i + 4)
    (Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xffffffffL))

(* ------------------------------------------------------------ hashes *)

(* FNV-1a over 8-byte LE words with a byte tail, bit-identical to
   [Bytes_codec.hash64] (checkpoint chunk trailers keep their on-disk
   format across the Blk conversion). *)
let hash64 ?(pos = 0) ?len t =
  let len = match len with None -> t.len - pos | Some l -> l in
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Blk.hash64";
  let h = ref 0xcbf29ce484222325L in
  let words = len / 8 in
  for i = 0 to words - 1 do
    h := Int64.logxor !h (get_u64 t (pos + (i * 8)));
    h := Int64.mul !h 0x100000001b3L
  done;
  for i = pos + (words * 8) to pos + len - 1 do
    h :=
      Int64.logxor !h
        (Int64.of_int (Char.code (Bigarray.Array1.unsafe_get t.buf (t.off + i))));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

(* CRC32c (Castagnoli), reflected polynomial 0x82f63b78 — the checksum
   notafs-style self-healing formats use.  Software table; computed
   once at module initialisation. *)
let crc32c_table =
  lazy
    (let table = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 <> 0 then c := 0x82f63b78 lxor (!c lsr 1)
         else c := !c lsr 1
       done;
       table.(n) <- !c
     done;
     table)

let crc32c ?(init = 0) ?(pos = 0) ?len t =
  let len = match len with None -> t.len - pos | Some l -> l in
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Blk.crc32c";
  let table = Lazy.force crc32c_table in
  let crc = ref (lnot init land 0xffffffff) in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bigarray.Array1.unsafe_get t.buf (t.off + i)) in
    crc := (!crc lsr 8) lxor table.((!crc lxor byte) land 0xff)
  done;
  lnot !crc land 0xffffffff

let crc32c_bytes ?(init = 0) ?(pos = 0) ?len b =
  let len = match len with None -> Bytes.length b - pos | Some l -> l in
  let table = Lazy.force crc32c_table in
  let crc = ref (lnot init land 0xffffffff) in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get b i) in
    crc := (!crc lsr 8) lxor table.((!crc lxor byte) land 0xff)
  done;
  lnot !crc land 0xffffffff

(* ------------------------------------------------------------ codecs *)

module Writer = struct
  type view = t

  type t = {
    mutable w_buf : buf;
    mutable w_pos : int;  (* next write offset, relative to w_off *)
    w_off : int;
    w_limit : int;  (* max bytes writable; max_int when growable *)
    w_grow : bool;
  }

  let create ?(capacity = 256) () =
    let capacity = max capacity 16 in
    {
      w_buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout capacity;
      w_pos = 0;
      w_off = 0;
      w_limit = max_int;
      w_grow = true;
    }

  let of_view (v : view) =
    { w_buf = v.buf; w_pos = 0; w_off = v.off; w_limit = v.len; w_grow = false }

  let length t = t.w_pos

  let ensure t n =
    if t.w_pos + n > t.w_limit then invalid_arg "Blk.Writer: view overflow";
    if t.w_grow && t.w_off + t.w_pos + n > Bigarray.Array1.dim t.w_buf then begin
      let cap = ref (Bigarray.Array1.dim t.w_buf) in
      while t.w_off + t.w_pos + n > !cap do
        cap := !cap * 2
      done;
      let bigger =
        Bigarray.Array1.create Bigarray.char Bigarray.c_layout !cap
      in
      Bigarray.Array1.blit
        (Bigarray.Array1.sub t.w_buf 0 (t.w_off + t.w_pos))
        (Bigarray.Array1.sub bigger 0 (t.w_off + t.w_pos));
      t.w_buf <- bigger
    end

  let u8 t v =
    ensure t 1;
    Bigarray.Array1.unsafe_set t.w_buf (t.w_off + t.w_pos)
      (Char.unsafe_chr (v land 0xff));
    t.w_pos <- t.w_pos + 1

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t (v land 0xffff);
    u16 t ((v lsr 16) land 0xffff)

  let u64 t v =
    u32 t (Int64.to_int (Int64.logand v 0xffffffffL));
    u32 t
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xffffffffL))

  let raw t (v : view) =
    ensure t v.len;
    Bigarray.Array1.blit
      (Bigarray.Array1.sub v.buf v.off v.len)
      (Bigarray.Array1.sub t.w_buf (t.w_off + t.w_pos) v.len);
    t.w_pos <- t.w_pos + v.len

  let raw_bytes t b =
    let n = Bytes.length b in
    ensure t n;
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set t.w_buf
        (t.w_off + t.w_pos + i)
        (Bytes.unsafe_get b i)
    done;
    t.w_pos <- t.w_pos + n

  let string t s =
    u16 t (String.length s);
    raw_bytes t (Bytes.unsafe_of_string s)

  let contents t : view = { buf = t.w_buf; off = t.w_off; len = t.w_pos }
end

module Reader = struct
  type view = t
  type t = { r_view : view; mutable r_pos : int; r_limit : int }

  let of_view ?(pos = 0) ?len (v : view) =
    let limit = match len with None -> v.len | Some l -> pos + l in
    if pos < 0 || limit > v.len then invalid_arg "Blk.Reader.of_view";
    { r_view = v; r_pos = pos; r_limit = limit }

  let pos t = t.r_pos
  let remaining t = t.r_limit - t.r_pos
  let need t n = if t.r_limit - t.r_pos < n then raise Truncated

  let u8 t =
    need t 1;
    let v = get_u8 t.r_view t.r_pos in
    t.r_pos <- t.r_pos + 1;
    v

  let u16 t =
    let lo = u8 t in
    let hi = u8 t in
    lo lor (hi lsl 8)

  let u32 t =
    let lo = u16 t in
    let hi = u16 t in
    lo lor (hi lsl 16)

  let u64 t =
    let lo = u32 t in
    let hi = u32 t in
    Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

  let raw t n : view =
    need t n;
    let v = sub t.r_view t.r_pos n in
    t.r_pos <- t.r_pos + n;
    v

  let raw_bytes t n =
    need t n;
    let b = Bytes.create n in
    blit_to_bytes t.r_view t.r_pos b 0 n;
    t.r_pos <- t.r_pos + n;
    b

  let string t =
    let n = u16 t in
    Bytes.unsafe_to_string (raw_bytes t n)
end

let pp ppf t =
  Format.fprintf ppf "<blk len=%d off=%d>" t.len t.off
