(** A small, generic LRU cache keyed by integers, used for the logical
    disk's persistent-block read cache. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] holds at most [capacity] entries; inserting into a
    full cache evicts the least-recently-used entry. [capacity] must be
    positive. *)

val find : 'a t -> int -> 'a option
(** [find t k] returns the cached value and marks it most-recently used. *)

val mem : 'a t -> int -> bool
(** Membership test that does not change recency. *)

val add : 'a t -> int -> 'a -> unit
(** Insert or replace; the entry becomes most-recently used. *)

val remove : 'a t -> int -> unit

val remove_range : 'a t -> lo:int -> hi:int -> unit
(** [remove_range t ~lo ~hi] removes every key in [lo..hi] (inclusive);
    other entries keep their relative recency.  Costs
    O(min(hi-lo+1, length t)). *)

val clear : 'a t -> unit

val length : 'a t -> int

val capacity : 'a t -> int

val evictions : 'a t -> int
(** Number of entries evicted due to capacity since creation. *)
