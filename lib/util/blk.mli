(** Zero-copy block views over [Bigarray] buffers (DESIGN.md §5.13).

    A [Blk.t] is an (buffer, offset, length) window.  [sub] and the
    {!Reader} alias the underlying buffer in O(1); only {!copy},
    {!to_bytes} and {!of_bytes} allocate and copy.

    {b Ownership rules} (the view contract every producer documents):
    a view handed out by a layer is valid until that layer's next
    mutating operation, unless the producer promises immutability
    (sealed segment images, snapshots).  Callers that retain a view
    beyond that window must {!copy} it. *)

type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

exception Truncated
(** Raised by {!Reader} on reads past the view's end. *)

val create : int -> t
(** A fresh zero-filled view owning its whole buffer. *)

val of_buffer : buf -> t
(** View of an entire existing buffer — aliases, does not copy. *)

val length : t -> int

val sub : t -> int -> int -> t
(** [sub t pos len] — O(1) alias of the window, like [Bytes.sub] but
    without the copy. *)

val get : t -> int -> char
val set : t -> int -> char -> unit
val fill : t -> char -> unit

val blit : t -> int -> t -> int -> int -> unit
(** [blit src src_off dst dst_off len], in [Bytes.blit] argument
    order. *)

val blit_from_bytes : bytes -> int -> t -> int -> int -> unit
val blit_to_bytes : t -> int -> bytes -> int -> int -> unit

val of_bytes : bytes -> t
(** Copying conversion (the explicit boundary copy). *)

val of_string : string -> t
val to_bytes : t -> bytes
val to_string : t -> string

val copy : t -> t
(** A fresh view with its own buffer — the only way to detach from the
    producer's lifetime. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Little-endian scalar accessors} *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_u64 : t -> int -> int64
val set_u64 : t -> int -> int64 -> unit

(** {1 Checksums} *)

val hash64 : ?pos:int -> ?len:int -> t -> int64
(** FNV-1a, bit-identical to {!Bytes_codec.hash64} (checkpoint chunks
    keep their trailer format across the view conversion). *)

val crc32c : ?init:int -> ?pos:int -> ?len:int -> t -> int
(** CRC32c (Castagnoli, reflected 0x82f63b78) of the window; the
    per-slot and header checksum of segment format v3 and the
    superblock.  [crc32c "123456789" = 0xe3069283]. *)

val crc32c_bytes : ?init:int -> ?pos:int -> ?len:int -> bytes -> int

(** {1 Codecs}

    Mirror {!Bytes_codec.Writer}/{!Bytes_codec.Reader}, but the writer
    can serialise straight into an existing view ({!Writer.of_view} —
    the single-pass segment seal) and the reader's {!Reader.raw} hands
    back an alias instead of a copy. *)

module Writer : sig
  type view = t
  type t

  val create : ?capacity:int -> unit -> t
  (** Growable writer backed by its own buffer. *)

  val of_view : view -> t
  (** Fixed-capacity writer serialising directly into [view]; raises
      [Invalid_argument] on overflow. *)

  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val raw : t -> view -> unit
  val raw_bytes : t -> bytes -> unit
  val string : t -> string -> unit

  val contents : t -> view
  (** View of the written prefix (aliases the writer's buffer). *)
end

module Reader : sig
  type view = t
  type t

  val of_view : ?pos:int -> ?len:int -> view -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64

  val raw : t -> int -> view
  (** O(1) alias into the underlying view. *)

  val raw_bytes : t -> int -> bytes
  val string : t -> string
end

val pp : Format.formatter -> t -> unit
