(* Fixed-size slot arena for the record mesh's block payloads
   (DESIGN.md §5.13).

   Shadow and committed data versions churn with every write and
   commit; allocating each as a fresh 4 KB [Bytes] made the GC pay for
   the hot path.  The arena carves slot views out of larger chunks and
   recycles freed slots through a free list.  Slots are NOT zeroed on
   [alloc] — every user writes the full slot (block writes are
   whole-block by contract).

   Ownership: a slot belongs to exactly one record-mesh version at a
   time; [free] recycles it, so any view retained past the free (a
   [read_view] of shadow data after its ARU aborts) observes the next
   owner's bytes — the documented view lifetime ends at the next
   mutating operation. *)

type t = {
  slot_bytes : int;
  chunk_slots : int;
  mutable head : Blk.t;  (* chunk currently being carved *)
  mutable next_slot : int;  (* next unused slot index in [head] *)
  mutable free : Blk.t list;  (* recycled slots *)
  mutable chunks : int;
  mutable live : int;  (* slots allocated and not freed *)
  mutable recycled : int;  (* allocs served from the free list *)
}

let create ?(chunk_slots = 64) ~slot_bytes () =
  if slot_bytes <= 0 then invalid_arg "Arena.create: slot_bytes";
  if chunk_slots <= 0 then invalid_arg "Arena.create: chunk_slots";
  {
    slot_bytes;
    chunk_slots;
    head = Blk.create (slot_bytes * chunk_slots);
    next_slot = 0;
    free = [];
    chunks = 1;
    live = 0;
    recycled = 0;
  }

let slot_bytes t = t.slot_bytes

let alloc t =
  t.live <- t.live + 1;
  match t.free with
  | slot :: rest ->
    t.free <- rest;
    t.recycled <- t.recycled + 1;
    slot
  | [] ->
    if t.next_slot >= t.chunk_slots then begin
      t.head <- Blk.create (t.slot_bytes * t.chunk_slots);
      t.next_slot <- 0;
      t.chunks <- t.chunks + 1
    end;
    let slot = Blk.sub t.head (t.next_slot * t.slot_bytes) t.slot_bytes in
    t.next_slot <- t.next_slot + 1;
    slot

let free t slot =
  if Blk.length slot <> t.slot_bytes then invalid_arg "Arena.free: wrong size";
  t.live <- t.live - 1;
  t.free <- slot :: t.free

let live t = t.live
let chunks t = t.chunks
let recycled t = t.recycled
