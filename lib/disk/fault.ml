type crash =
  | After_writes of int
  | During_write of { write_index : int; keep_bytes : int }

exception Crashed
exception Media_error of { offset : int }

type t = {
  mutable crash : crash option;
  mutable writes_until_crash : int;
      (* writes remaining before the crash point; meaningful when crash <> None *)
  mutable crashed : bool;
  mutable bad : (int * int) list; (* (offset, length) *)
  mutable pending_corruption : (int * int) list;
      (* (offset, length) ranges queued by [corrupt_sector], oldest
         first; {!Disk} drains them onto the raw store *)
}

let none () =
  {
    crash = None;
    writes_until_crash = 0;
    crashed = false;
    bad = [];
    pending_corruption = [];
  }

let schedule_crash t crash =
  t.crash <- Some crash;
  t.writes_until_crash <-
    (match crash with
    | After_writes n -> n
    | During_write { write_index; _ } -> write_index)

let create ?crash () =
  let t = none () in
  (match crash with None -> () | Some c -> schedule_crash t c);
  t

let mark_bad t ~offset ~length =
  if length <= 0 then invalid_arg "Fault.mark_bad: non-positive length";
  t.bad <- (offset, length) :: t.bad

let clear_bad t = t.bad <- []

let corrupt_sector t ~offset ~length =
  if length <= 0 then invalid_arg "Fault.corrupt_sector: non-positive length";
  t.pending_corruption <- t.pending_corruption @ [ (offset, length) ]

let take_corruption t =
  let pending = t.pending_corruption in
  t.pending_corruption <- [];
  pending

let corruption_pending t = t.pending_corruption <> []
let crashed t = t.crashed

let reset_after_recovery t =
  t.crashed <- false;
  t.crash <- None

let on_write t ~length =
  if t.crashed then raise Crashed;
  match t.crash with
  | None -> `Ok
  | Some (After_writes _) ->
    if t.writes_until_crash <= 0 then begin
      t.crashed <- true;
      raise Crashed
    end
    else begin
      t.writes_until_crash <- t.writes_until_crash - 1;
      `Ok
    end
  | Some (During_write { keep_bytes; _ }) ->
    if t.writes_until_crash > 0 then begin
      t.writes_until_crash <- t.writes_until_crash - 1;
      `Ok
    end
    else begin
      t.crashed <- true;
      `Torn (min keep_bytes length)
    end

let pp_crash ppf = function
  | After_writes n -> Format.fprintf ppf "after %d write(s)" n
  | During_write { write_index; keep_bytes } ->
    Format.fprintf ppf "during write %d (first %d byte(s) persisted)"
      write_index keep_bytes

let overlaps (boff, blen) ~offset ~length =
  offset < boff + blen && boff < offset + length

let check_read t ~offset ~length =
  List.iter
    (fun range ->
      if overlaps range ~offset ~length then
        raise (Media_error { offset = fst range }))
    t.bad
