module Blk = Lld_util.Blk

let tap ?on_read ?on_write (inner : Backend.t) =
  {
    inner with
    Backend.read =
      (fun ~offset ~length ->
        let data = inner.Backend.read ~offset ~length in
        (match on_read with None -> () | Some f -> f ~offset ~length);
        data);
    write =
      (fun ~offset data ->
        inner.Backend.write ~offset data;
        match on_write with None -> () | Some f -> f ~offset ~data);
  }

let timing ~charge (inner : Backend.t) =
  {
    inner with
    Backend.read =
      (fun ~offset ~length ->
        charge ~op:`Read ~offset ~length;
        inner.Backend.read ~offset ~length);
    write =
      (fun ~offset data ->
        charge ~op:`Write ~offset ~length:(Blk.length data);
        inner.Backend.write ~offset data);
  }

let fault plan (inner : Backend.t) =
  {
    inner with
    Backend.read =
      (fun ~offset ~length ->
        if Fault.crashed plan then raise Fault.Crashed;
        Fault.check_read plan ~offset ~length;
        inner.Backend.read ~offset ~length);
    write =
      (fun ~offset data ->
        match Fault.on_write plan ~length:(Blk.length data) with
        | `Ok -> inner.Backend.write ~offset data
        | `Torn keep ->
          (* the prefix reached the medium before power was lost; the
             slice is a view — no copy on the crash path either *)
          inner.Backend.write ~offset (Blk.sub data 0 keep);
          raise Fault.Crashed);
  }
