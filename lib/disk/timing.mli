(** Mechanical timing model of the evaluation disk.

    Approximates the HP C3010 used in the paper: SCSI-II, 5400 rpm
    (11.1 ms revolution), 11.5 ms average seek, a sustained media rate
    of ~2.35 MB/s at the partition.  Request cost is
    [seek(distance) + rotational latency + transfer], where sequential
    requests (next byte after the previous request) pay no seek and only
    a small settle delay. *)

type t = {
  min_seek_ns : int;  (** track-to-track seek *)
  avg_seek_ns : int;  (** average (random) seek; the curve is scaled to hit this *)
  rotation_ns : int;  (** one full revolution *)
  settle_ns : int;  (** head settle on sequential continuation *)
  transfer_bytes_per_sec : int;
}

val hp_c3010 : t

val instant : t
(** Zero-latency model for pure-correctness tests. *)

val request_ns :
  t -> Geometry.t -> last_end:int -> offset:int -> length:int -> int
(** Virtual duration of a request of [length] bytes at byte [offset],
    when the previous request ended at byte [last_end].  [last_end < 0]
    means cold start (full average positioning cost). *)

(** {2 Cost breakdown}

    The same model, decomposed for tracing: how the head got into
    position and how the total splits between positioning (seek +
    rotation/settle) and media transfer. *)

type position_kind =
  | Cold  (** first request: average seek + half rotation *)
  | Sequential  (** continues the previous request: settle only *)
  | Same_cylinder  (** head switch on the cylinder: settle + rotation/4 *)
  | Seek  (** cylinder move: distance-scaled seek + half rotation *)

val position_kind_label : position_kind -> string

type breakdown = {
  position_ns : int;
  xfer_ns : int;
  kind : position_kind;
}

val request_breakdown :
  t -> Geometry.t -> last_end:int -> offset:int -> length:int -> breakdown
(** Same inputs and total cost as {!request_ns}:
    [request_ns = position_ns + xfer_ns]. *)
