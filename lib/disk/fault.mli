(** Failure injection for the simulated disk.

    Reproduces the failure classes the paper protects against (§3):
    whole-system crashes (power outage — modelled as a crash schedule
    that stops the disk, possibly mid-write) and partial media failures
    (unreadable block ranges). *)

type crash =
  | After_writes of int
      (** Crash when this many further writes have completed; the next
          write raises. *)
  | During_write of { write_index : int; keep_bytes : int }
      (** Crash during the [write_index]-th write (0-based, counting
          from now): only the first [keep_bytes] bytes reach the medium
          — a torn segment write. *)

val pp_crash : Format.formatter -> crash -> unit
(** Human-readable crash point (used by crash-checker reproducers). *)

exception Crashed
(** Raised by disk writes once the crash point is reached. The disk
    contents remain readable for recovery. *)

exception Media_error of { offset : int }
(** Raised by reads touching a byte range marked bad. *)

type t

val none : unit -> t
(** No faults scheduled (fresh, mutable plan). *)

val create : ?crash:crash -> unit -> t

val schedule_crash : t -> crash -> unit
(** Replace the crash schedule (counting from the current write count). *)

val mark_bad : t -> offset:int -> length:int -> unit
(** Mark a byte range as a media failure: subsequent reads overlapping
    it raise {!Media_error}. *)

val clear_bad : t -> unit

val corrupt_sector : t -> offset:int -> length:int -> unit
(** Queue silent bit-rot over the byte range: unlike {!mark_bad} the
    range stays readable, but its bytes come back flipped — the media
    decayed without telling anyone.  {!Disk} drains the queue onto the
    raw store (below the shim stack, so no clock charge and no write
    counted) before the next request; detection is the checksum layer's
    job ([lld scrub], segment CRCs, the superblock generations). *)

val take_corruption : t -> (int * int) list
(** Drain the queued [(offset, length)] corruption ranges, oldest
    first (used by {!Disk}). *)

val corruption_pending : t -> bool

val crashed : t -> bool

val reset_after_recovery : t -> unit
(** Clear the crashed state and schedule (the machine "rebooted"); media
    errors persist. *)

(* Interface used by the disk implementation. *)

val on_write : t -> length:int -> [ `Ok | `Torn of int ]
(** Account one write; returns [`Torn n] when only [n] bytes must be
    persisted before raising {!Crashed}, and raises {!Crashed} directly
    when the crash point was already reached. *)

val check_read : t -> offset:int -> length:int -> unit
(** Raises {!Media_error} if the range overlaps a bad range. *)
