(** The simulated block device.

    A byte store standing in for the paper's HP C3010 partition accessed
    through the SunOS raw-disk interface.  The store itself is a
    pluggable {!Backend} (in-memory by default, file-backed for real
    persistence); the device wraps it in the canonical {!Shim} stack —
    fault plan, timing, write observer — exactly once, so every request
    charges mechanical latency from {!Timing} to the shared virtual
    {!Lld_sim.Clock} and passes through the {!Fault} plan identically on
    every backend, and crash and media-failure behaviour stays
    deterministic.

    The data plane is {!Lld_util.Blk.t} views ({!read_view} /
    {!write_view}); the [bytes] entry points remain as converting
    wrappers for clients that still live in copy-land. *)

module Blk = Lld_util.Blk

type t

val create :
  ?timing:Timing.t ->
  ?fault:Fault.t ->
  ?backend:Backend.t ->
  clock:Lld_sim.Clock.t ->
  Geometry.t ->
  t
(** A partition on the given backend (default: a zero-filled
    {!Backend.mem}).  Default timing is {!Timing.hp_c3010}; default
    fault plan is {!Fault.none}.  Raises [Invalid_argument] when the
    backend size does not match the geometry. *)

val load :
  ?timing:Timing.t ->
  ?fault:Fault.t ->
  clock:Lld_sim.Clock.t ->
  Geometry.t ->
  bytes ->
  t
(** A partition whose initial contents are (a copy of) the given image.
    Raises [Invalid_argument] when the image size does not match the
    geometry.  Used by the crash-consistency checker to reconstruct the
    medium as of an arbitrary crash point. *)

val geometry : t -> Geometry.t
val fault : t -> Fault.t
val clock : t -> Lld_sim.Clock.t

val write_view : t -> offset:int -> Blk.t -> unit
(** Write the view's bytes at the byte offset — one blit into the
    store, no intermediate copy.  Raises [Fault.Crashed] at a scheduled
    crash point; on a torn write the scheduled prefix reaches the
    medium before the exception.  Raises [Invalid_argument] when the
    range exceeds the partition. *)

val read_view : t -> offset:int -> length:int -> Blk.t
(** A fresh view of the range — owned by the caller, never an alias of
    the store.  Raises [Fault.Media_error] when the range overlaps an
    injected media failure; raises [Fault.Crashed] while the device is
    crashed. *)

val write : t -> offset:int -> bytes -> unit
(** {!write_view} through a converting copy. *)

val read : t -> offset:int -> length:int -> bytes
(** {!read_view} through a converting copy. *)

(** {2 Tracing and imaging}

    Hooks for the crash-consistency checker ([lib/crashcheck]): an
    observer sees every byte that reaches the medium, and whole-device
    images can be captured and restored to replay write prefixes. *)

type observer = index:int -> offset:int -> data:Blk.t -> unit
(** Called after the bytes land: [index] is the device-lifetime write
    sequence number (0-based), [data] is a view of exactly what reached
    the medium — on a torn write only the persisted prefix.  The view
    aliases the writer's buffer: copy it ({!Blk.to_bytes}) before
    retaining it past the callback. *)

val set_observer : t -> observer option -> unit
(** Install (or remove) the single write observer.  The observer runs
    inside {!write_view}, after the store is updated and before a torn
    write raises {!Fault.Crashed}. *)

val set_obs : t -> Lld_obs.Obs.t -> unit
(** Attach an observability handle (default {!Lld_obs.Obs.null}).  When
    active, every request records a [disk] span whose duration equals
    the charged mechanical cost, with the positioning/transfer
    breakdown from {!Timing.request_breakdown} as arguments, and feeds
    the ["disk.read"]/["disk.write"] latency histograms. *)

val snapshot_view : t -> Blk.t
(** Fresh copy of the entire device image. *)

val snapshot : t -> bytes

val restore_view : t -> Blk.t -> unit
(** Overwrite the entire device image.  Raises [Invalid_argument] when
    the image size does not match the partition. *)

val restore : t -> bytes -> unit

(** {2 Media corruption}

    {!Fault.corrupt_sector} queues silent bit-rot; the device drains the
    queue onto the raw store below the shim stack before the next
    request — no clock charge, no write counted, no observer callback.
    Only the checksum layer ([lld scrub], segment CRCs, superblock
    generations) can tell. *)

val apply_corruption : t -> unit
(** Drain any queued corruption now (also happens automatically before
    the next read/write/snapshot). *)

(** {2 Durability}

    Real persistence boundary, exposed from the backend. *)

val barrier : t -> unit
(** Make every preceding write durable ({!Backend.t.barrier}: [fsync]
    on a file backend, a no-op in memory).  Called by the logical-disk
    layer at the paper's §4 ordering points — after sealing a log
    segment and after writing a checkpoint region — instead of assuming
    writes are synchronous.  Charges nothing to the virtual clock, so
    traced and untraced runs and all backends stay cost-identical. *)

val close : t -> unit
(** Release the backend's resources (idempotent). *)

val backend_label : t -> string
(** ["mem"] or ["file:<path>"] — for reports and benchmarks. *)

(** {2 Statistics} *)

type counters = {
  writes : int;
  reads : int;
  bytes_written : int;
  bytes_read : int;
}

val counters : t -> counters
val reset_counters : t -> unit
