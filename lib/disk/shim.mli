(** Composable backend shims.

    Each combinator wraps a {!Backend.t} into another {!Backend.t},
    intercepting only [read]/[write] — [snapshot]/[restore]/[barrier]/
    [close] pass straight through to the store.  {!Disk} assembles the
    canonical stack exactly once per device, outermost first:

    {v fault → timing → tap(observer) → store v}

    The fault plan sits {e above} timing so the virtual clock charges
    exactly the bytes that reach the medium — nothing when the device is
    already crashed, only the persisted prefix on a torn write — which
    keeps the cost model bit-identical to the pre-backend device on
    every store (DESIGN.md §5.8). *)

val tap :
  ?on_read:(offset:int -> length:int -> unit) ->
  ?on_write:(offset:int -> data:Lld_util.Blk.t -> unit) ->
  Backend.t ->
  Backend.t
(** Observe requests after the inner backend completed them: [on_write]
    sees exactly the bytes that reached the store (on a torn write, the
    persisted prefix — the {!fault} shim above already sliced it).  The
    view is the writer's own buffer: copy it ({!Lld_util.Blk.to_bytes})
    before retaining it past the callback. *)

val timing :
  charge:(op:[ `Read | `Write ] -> offset:int -> length:int -> unit) ->
  Backend.t ->
  Backend.t
(** Invoke [charge] before forwarding each request (the mechanical cost
    of a request does not depend on its outcome). *)

val fault : Fault.t -> Backend.t -> Backend.t
(** Apply the fault plan: reads raise {!Fault.Crashed} while the device
    is down and {!Fault.Media_error} on injected bad ranges; a write at
    the scheduled crash point forwards only the surviving prefix to the
    inner backend and then raises {!Fault.Crashed}. *)
