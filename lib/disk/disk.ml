type counters = {
  writes : int;
  reads : int;
  bytes_written : int;
  bytes_read : int;
}

type observer = index:int -> offset:int -> data:bytes -> unit

type t = {
  geom : Geometry.t;
  timing : Timing.t;
  fault : Fault.t;
  clock : Lld_sim.Clock.t;
  store : bytes;
  mutable last_end : int; (* byte position after the previous request; -1 = cold *)
  mutable observer : observer option;
  mutable obs : Lld_obs.Obs.t;
  mutable writes : int;
  mutable reads : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
}

let make ?(timing = Timing.hp_c3010) ?fault ~clock geom store =
  let fault = match fault with Some f -> f | None -> Fault.none () in
  {
    geom;
    timing;
    fault;
    clock;
    store;
    last_end = -1;
    observer = None;
    obs = Lld_obs.Obs.null;
    writes = 0;
    reads = 0;
    bytes_written = 0;
    bytes_read = 0;
  }

let create ?timing ?fault ~clock geom =
  make ?timing ?fault ~clock geom (Bytes.make (Geometry.total_bytes geom) '\000')

let load ?timing ?fault ~clock geom image =
  if Bytes.length image <> Geometry.total_bytes geom then
    invalid_arg "Disk.load: image size does not match the geometry";
  make ?timing ?fault ~clock geom image

let snapshot t = Bytes.copy t.store

let restore t image =
  if Bytes.length image <> Bytes.length t.store then
    invalid_arg "Disk.restore: image size does not match the partition";
  Bytes.blit image 0 t.store 0 (Bytes.length image)

let set_observer t obs = t.observer <- obs
let set_obs t obs = t.obs <- obs

let geometry t = t.geom
let fault t = t.fault
let clock t = t.clock

let check_range t ~offset ~length =
  if offset < 0 || length < 0 || offset + length > Bytes.length t.store then
    invalid_arg "Disk: request outside the partition"

(* Charge the mechanical cost of a request and, when an observability
   handle is attached, record a [disk] span with the seek/transfer
   breakdown.  The span brackets exactly the charged interval, so trace
   durations equal the cost-model charge. *)
let charge t ~op ~offset ~length =
  let b =
    Timing.request_breakdown t.timing t.geom ~last_end:t.last_end ~offset
      ~length
  in
  let ns = b.Timing.position_ns + b.Timing.xfer_ns in
  let module Obs = Lld_obs.Obs in
  if Obs.active t.obs then begin
    let ts = Lld_sim.Clock.now_ns t.clock in
    Lld_sim.Clock.charge t.clock Lld_sim.Clock.Io ns;
    Obs.observe t.obs ("disk." ^ op) ns;
    Obs.observe t.obs ("disk." ^ op ^ ".position") b.Timing.position_ns;
    Lld_obs.Trace.complete (Obs.trace t.obs) Lld_obs.Trace.Disk op ~ts_ns:ts
      ~dur_ns:ns
      [
        ("offset", Lld_obs.Trace.I offset);
        ("length", Lld_obs.Trace.I length);
        ("position_ns", Lld_obs.Trace.I b.Timing.position_ns);
        ("transfer_ns", Lld_obs.Trace.I b.Timing.xfer_ns);
        ( "position",
          Lld_obs.Trace.S (Timing.position_kind_label b.Timing.kind) );
      ]
  end
  else Lld_sim.Clock.charge t.clock Lld_sim.Clock.Io ns;
  t.last_end <- offset + length

let write t ~offset data =
  let length = Bytes.length data in
  check_range t ~offset ~length;
  let observe ~kept =
    match t.observer with
    | None -> ()
    | Some f -> f ~index:(t.writes - 1) ~offset ~data:(Bytes.sub data 0 kept)
  in
  match Fault.on_write t.fault ~length with
  | `Ok ->
    charge t ~op:"write" ~offset ~length;
    Bytes.blit data 0 t.store offset length;
    t.writes <- t.writes + 1;
    t.bytes_written <- t.bytes_written + length;
    observe ~kept:length
  | `Torn keep ->
    (* the prefix reached the medium before power was lost *)
    charge t ~op:"write" ~offset ~length:keep;
    Bytes.blit data 0 t.store offset keep;
    t.writes <- t.writes + 1;
    t.bytes_written <- t.bytes_written + keep;
    observe ~kept:keep;
    raise Fault.Crashed

let read t ~offset ~length =
  check_range t ~offset ~length;
  if Fault.crashed t.fault then raise Fault.Crashed;
  Fault.check_read t.fault ~offset ~length;
  charge t ~op:"read" ~offset ~length;
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + length;
  Bytes.sub t.store offset length

let counters t =
  {
    writes = t.writes;
    reads = t.reads;
    bytes_written = t.bytes_written;
    bytes_read = t.bytes_read;
  }

let reset_counters t =
  t.writes <- 0;
  t.reads <- 0;
  t.bytes_written <- 0;
  t.bytes_read <- 0
