module Blk = Lld_util.Blk

type counters = {
  writes : int;
  reads : int;
  bytes_written : int;
  bytes_read : int;
}

type observer = index:int -> offset:int -> data:Blk.t -> unit

type t = {
  geom : Geometry.t;
  timing : Timing.t;
  fault : Fault.t;
  clock : Lld_sim.Clock.t;
  mutable stack : Backend.t; (* fault → timing → tap(observer) → store *)
  backend : Backend.t; (* the raw store at the bottom of the stack *)
  mutable last_end : int; (* byte position after the previous request; -1 = cold *)
  mutable observer : observer option;
  mutable obs : Lld_obs.Obs.t;
  mutable writes : int;
  mutable reads : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
}

(* Charge the mechanical cost of a request and, when an observability
   handle is attached, record a [disk] span with the seek/transfer
   breakdown.  The span brackets exactly the charged interval, so trace
   durations equal the cost-model charge. *)
let charge t ~op ~offset ~length =
  let op = match op with `Read -> "read" | `Write -> "write" in
  let b =
    Timing.request_breakdown t.timing t.geom ~last_end:t.last_end ~offset
      ~length
  in
  let ns = b.Timing.position_ns + b.Timing.xfer_ns in
  let module Obs = Lld_obs.Obs in
  if Obs.active t.obs then begin
    let ts = Lld_sim.Clock.now_ns t.clock in
    Lld_sim.Clock.charge t.clock Lld_sim.Clock.Io ns;
    Obs.observe t.obs ("disk." ^ op) ns;
    Obs.observe t.obs ("disk." ^ op ^ ".position") b.Timing.position_ns;
    Lld_obs.Trace.complete (Obs.trace t.obs) Lld_obs.Trace.Disk op ~ts_ns:ts
      ~dur_ns:ns
      [
        ("offset", Lld_obs.Trace.I offset);
        ("length", Lld_obs.Trace.I length);
        ("position_ns", Lld_obs.Trace.I b.Timing.position_ns);
        ("transfer_ns", Lld_obs.Trace.I b.Timing.xfer_ns);
        ( "position",
          Lld_obs.Trace.S (Timing.position_kind_label b.Timing.kind) );
      ]
  end
  else Lld_sim.Clock.charge t.clock Lld_sim.Clock.Io ns;
  t.last_end <- offset + length

let make ?(timing = Timing.hp_c3010) ?fault ~clock geom backend =
  let fault = match fault with Some f -> f | None -> Fault.none () in
  if backend.Backend.size <> Geometry.total_bytes geom then
    invalid_arg "Disk: backend size does not match the geometry";
  let t =
    {
      geom;
      timing;
      fault;
      clock;
      stack = backend;
      backend;
      last_end = -1;
      observer = None;
      obs = Lld_obs.Obs.null;
      writes = 0;
      reads = 0;
      bytes_written = 0;
      bytes_read = 0;
    }
  in
  (* The canonical shim stack, assembled exactly once per device.  The
     tap sits right above the store: its probe sees exactly the bytes
     that persisted (a torn write arrives already sliced) and feeds
     the counters and the crash-checker's write observer.  Timing sits
     above the tap, and the fault plan outermost, so a crashed device
     charges nothing and a torn write charges only its surviving
     prefix — identical to the pre-backend device. *)
  let metered =
    Shim.tap
      ~on_read:(fun ~offset:_ ~length ->
        t.reads <- t.reads + 1;
        t.bytes_read <- t.bytes_read + length)
      ~on_write:(fun ~offset ~data ->
        t.writes <- t.writes + 1;
        t.bytes_written <- t.bytes_written + Blk.length data;
        match t.observer with
        | None -> ()
        | Some f -> f ~index:(t.writes - 1) ~offset ~data)
      backend
  in
  t.stack <- Shim.fault fault (Shim.timing ~charge:(charge t) metered);
  t

let create ?timing ?fault ?backend ~clock geom =
  let backend =
    match backend with
    | Some b -> b
    | None -> Backend.mem ~size:(Geometry.total_bytes geom)
  in
  make ?timing ?fault ~clock geom backend

let load ?timing ?fault ~clock geom image =
  if Bytes.length image <> Geometry.total_bytes geom then
    invalid_arg "Disk.load: image size does not match the geometry";
  make ?timing ?fault ~clock geom (Backend.of_bytes image)

(* Queued [Fault.corrupt_sector] bit-rot is applied straight to the raw
   store, below the shim stack: silent media decay charges nothing to
   the virtual clock, counts no write, and wakes no observer — exactly
   like real rot, it is only visible to whoever checks the checksums. *)
let apply_corruption t =
  List.iter
    (fun (offset, length) ->
      if offset < 0 || length < 0 || offset + length > t.backend.Backend.size
      then invalid_arg "Disk: corruption outside the partition";
      let v = t.backend.Backend.read ~offset ~length in
      for i = 0 to length - 1 do
        let mask = ((i * 131) + 7) land 0xff lor 1 in
        Blk.set_u8 v i (Blk.get_u8 v i lxor mask)
      done;
      t.backend.Backend.write ~offset v)
    (Fault.take_corruption t.fault)

let maybe_corrupt t =
  if Fault.corruption_pending t.fault then apply_corruption t

let snapshot_view t =
  maybe_corrupt t;
  t.stack.Backend.snapshot ()

let snapshot t = Blk.to_bytes (snapshot_view t)

let restore_view t image =
  if Blk.length image <> t.stack.Backend.size then
    invalid_arg "Disk.restore: image size does not match the partition";
  t.stack.Backend.restore image

let restore t image = restore_view t (Blk.of_bytes image)

let barrier t = t.stack.Backend.barrier ()
let close t = t.stack.Backend.close ()
let backend_label t = t.backend.Backend.label

let set_observer t obs = t.observer <- obs
let set_obs t obs = t.obs <- obs

let geometry t = t.geom
let fault t = t.fault
let clock t = t.clock

let check_range t ~offset ~length =
  if offset < 0 || length < 0 || offset + length > t.stack.Backend.size then
    invalid_arg "Disk: request outside the partition"

let write_view t ~offset data =
  check_range t ~offset ~length:(Blk.length data);
  maybe_corrupt t;
  t.stack.Backend.write ~offset data

let read_view t ~offset ~length =
  check_range t ~offset ~length;
  maybe_corrupt t;
  t.stack.Backend.read ~offset ~length

let write t ~offset data = write_view t ~offset (Blk.of_bytes data)
let read t ~offset ~length = Blk.to_bytes (read_view t ~offset ~length)

let counters t =
  {
    writes = t.writes;
    reads = t.reads;
    bytes_written = t.bytes_written;
    bytes_read = t.bytes_read;
  }

let reset_counters t =
  t.writes <- 0;
  t.reads <- 0;
  t.bytes_written <- 0;
  t.bytes_read <- 0
