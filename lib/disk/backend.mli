(** The storage backend behind the simulated block device.

    The paper's headline claim for the Logical Disk split is that
    implementations can be exchanged transparently (§2); this vtable
    honors it one layer down.  A backend is a plain byte store with no
    timing, no fault plan and no observability — those are composable
    shims ({!Shim}) that {!Disk} stacks on top of {e any} backend, so
    every implementation exposes identical crash and cost semantics.

    Since the zero-copy refactor (DESIGN.md §5.13) the data plane is
    {!Lld_util.Blk.t} views: [write] blits the caller's view straight
    into the store (the single boundary copy the data path pays), and
    [read] hands back a {e fresh} view the caller owns outright — it
    never aliases the store, so later writes cannot mutate it.

    Two stores are provided: {!mem}, the in-memory image the simulation
    always used, and {!file}, a real on-disk image memory-mapped through
    [Unix.map_file] — giving the logical disk actual durability across
    process runs ([lld mkfs --file] / [lld mount --file]) at identical
    virtual-clock cost. *)

module Blk = Lld_util.Blk

type t = {
  label : string;  (** ["mem"] or ["file:<path>"] — for reports *)
  size : int;  (** total bytes; must match the device geometry *)
  read : offset:int -> length:int -> Blk.t;
      (** a fresh view of the range — owned by the caller, never an
          alias of the store *)
  write : offset:int -> Blk.t -> unit;
  snapshot : unit -> Blk.t;  (** fresh copy of the whole image *)
  restore : Blk.t -> unit;  (** overwrite the whole image (size checked
                                by {!Disk.restore}) *)
  barrier : unit -> unit;
      (** make every preceding write durable ([fsync] on {!file}, no-op
          on {!mem}).  Charges nothing to the virtual clock. *)
  close : unit -> unit;  (** release resources; idempotent *)
}

val mem : size:int -> t
(** A zero-filled in-memory store. *)

val of_view : Blk.t -> t
(** Wrap an existing view without copying — the caller hands over
    ownership of the buffer. *)

val of_bytes : bytes -> t
(** An in-memory store initialised from (a copy of) the image — used by
    {!Disk.load} to reconstruct crash images from byte traces. *)

val file : ?create:bool -> size:int -> string -> t
(** An on-disk image at the given path, memory-mapped shared.  With
    [create] (default false) the file is created and extended to [size]
    (sparse); without it the file must exist and be exactly [size]
    bytes.  Every failure — a missing path, a short or oversized image,
    an unwritable or non-regular file — raises [Invalid_argument] with
    a message naming the image, never a raw [Unix.Unix_error]. *)

val temp_file : ?dir:string -> size:int -> unit -> t
(** A {!file} backend on a fresh temporary image that is unlinked
    immediately (the open descriptor keeps it alive), so crash-checker
    and test runs leave nothing behind. *)

val of_env : size:int -> unit -> t option
(** [Some (temp_file ~size ())] when the [LLD_BACKEND] environment
    variable is ["file"], [None] otherwise.  Construction sites that
    default to {!mem} consult this so the whole test suite can be
    re-run against the file backend ([LLD_BACKEND=file dune runtest],
    the CI job). *)
