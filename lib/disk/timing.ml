type t = {
  min_seek_ns : int;
  avg_seek_ns : int;
  rotation_ns : int;
  settle_ns : int;
  transfer_bytes_per_sec : int;
}

let hp_c3010 =
  {
    min_seek_ns = 2_500_000;
    avg_seek_ns = 11_500_000;
    rotation_ns = 11_111_111 (* 5400 rpm *);
    settle_ns = 200_000;
    transfer_bytes_per_sec = 2_350_000;
  }

let instant =
  {
    min_seek_ns = 0;
    avg_seek_ns = 0;
    rotation_ns = 0;
    settle_ns = 0;
    transfer_bytes_per_sec = max_int;
  }

(* Seek time grows with the square root of the cylinder distance, scaled
   so that a random seek (expected normalised distance ~1/3, sqrt ~0.52)
   costs [avg_seek_ns]. *)
let seek_ns t geom ~from_cyl ~to_cyl ~total_cyl =
  if from_cyl = to_cyl then 0
  else begin
    ignore geom;
    let d = float_of_int (abs (to_cyl - from_cyl)) /. float_of_int (max 1 total_cyl) in
    let scaled =
      float_of_int (t.avg_seek_ns - t.min_seek_ns) *. (sqrt d /. 0.52)
    in
    t.min_seek_ns + int_of_float (min scaled (1.8 *. float_of_int t.avg_seek_ns))
  end

let transfer_ns t length =
  if t.transfer_bytes_per_sec = max_int then 0
  else
    int_of_float (float_of_int length /. float_of_int t.transfer_bytes_per_sec *. 1e9)

type position_kind = Cold | Sequential | Same_cylinder | Seek

let position_kind_label = function
  | Cold -> "cold"
  | Sequential -> "sequential"
  | Same_cylinder -> "same_cylinder"
  | Seek -> "seek"

type breakdown = {
  position_ns : int;
  xfer_ns : int;
  kind : position_kind;
}

let request_breakdown t geom ~last_end ~offset ~length =
  let total_cyl = Geometry.cylinder_of_offset geom (Geometry.total_bytes geom - 1) + 1 in
  let position_ns, kind =
    if last_end < 0 then (t.avg_seek_ns + (t.rotation_ns / 2), Cold)
    else if offset = last_end then (t.settle_ns, Sequential)
    else
      let from_cyl = Geometry.cylinder_of_offset geom last_end in
      let to_cyl = Geometry.cylinder_of_offset geom offset in
      let seek = seek_ns t geom ~from_cyl ~to_cyl ~total_cyl in
      if seek = 0 then
        (* same cylinder, different position: partial rotation *)
        (t.settle_ns + (t.rotation_ns / 4), Same_cylinder)
      else (seek + (t.rotation_ns / 2), Seek)
  in
  { position_ns; xfer_ns = transfer_ns t length; kind }

let request_ns t geom ~last_end ~offset ~length =
  let b = request_breakdown t geom ~last_end ~offset ~length in
  b.position_ns + b.xfer_ns
