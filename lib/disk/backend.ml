module Blk = Lld_util.Blk

type t = {
  label : string;
  size : int;
  read : offset:int -> length:int -> Blk.t;
  write : offset:int -> Blk.t -> unit;
  snapshot : unit -> Blk.t;
  restore : Blk.t -> unit;
  barrier : unit -> unit;
  close : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Mem                                                                 *)

(* [read] hands out a fresh view, never an alias of the store: the
   store mutates under later writes, and the whole point of the view
   contract (DESIGN.md §5.13) is that the device boundary is the single
   copy the data path pays. *)
let of_view store =
  let size = Blk.length store in
  {
    label = "mem";
    size;
    read = (fun ~offset ~length -> Blk.copy (Blk.sub store offset length));
    write =
      (fun ~offset data -> Blk.blit data 0 store offset (Blk.length data));
    snapshot = (fun () -> Blk.copy store);
    restore = (fun image -> Blk.blit image 0 store 0 size);
    barrier = (fun () -> ());
    close = (fun () -> ());
  }

let of_bytes store = of_view (Blk.of_bytes store)

let mem ~size =
  if size <= 0 then invalid_arg "Backend.mem: size must be positive";
  of_view (Blk.create size)

(* ------------------------------------------------------------------ *)
(* File                                                                *)

(* Every [Unix_error] is rewrapped so callers above the device layer see
   a clear [Invalid_argument] naming the image, never a raw Unix
   exception (the logical layers only know [Invalid_argument] and
   [Errors.Corrupt]). *)
let wrap_unix ~path op f =
  try f ()
  with Unix.Unix_error (e, _, _) ->
    invalid_arg
      (Printf.sprintf "Backend.file: cannot %s %s: %s" op path
         (Unix.error_message e))

let file ?(create = false) ~size path =
  if size <= 0 then invalid_arg "Backend.file: size must be positive";
  let fd =
    wrap_unix ~path "open" (fun () ->
        let flags =
          if create then Unix.[ O_RDWR; O_CREAT; O_CLOEXEC ]
          else Unix.[ O_RDWR; O_CLOEXEC ]
        in
        Unix.openfile path flags 0o644)
  in
  (match
     wrap_unix ~path "size" (fun () ->
         if create then Unix.ftruncate fd size;
         (Unix.fstat fd).Unix.st_size)
   with
  | actual when actual <> size ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    invalid_arg
      (Printf.sprintf
         "Backend.file: image %s is %d bytes, the geometry needs %d" path
         actual size)
  | _ -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  (* The image is memory-mapped shared: [write] blits the caller's view
     straight into the page cache — the same single boundary copy the
     mem store pays — and [barrier]'s fsync makes the dirtied pages
     durable.  No read/write syscalls on the data path. *)
  let map =
    wrap_unix ~path "map" (fun () ->
        Blk.of_buffer
          (Bigarray.array1_of_genarray
             (Unix.map_file fd Bigarray.char Bigarray.c_layout true [| size |])))
  in
  let closed = ref false in
  let live op =
    if !closed then
      invalid_arg
        (Printf.sprintf "Backend.file: %s on closed image %s" op path)
  in
  {
    label = "file:" ^ path;
    size;
    read =
      (fun ~offset ~length ->
        live "read";
        Blk.copy (Blk.sub map offset length));
    write =
      (fun ~offset data ->
        live "write";
        Blk.blit data 0 map offset (Blk.length data));
    snapshot =
      (fun () ->
        live "snapshot";
        Blk.copy map);
    restore =
      (fun image ->
        live "restore";
        Blk.blit image 0 map 0 size);
    barrier =
      (fun () ->
        live "barrier";
        wrap_unix ~path "fsync" (fun () -> Unix.fsync fd));
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          wrap_unix ~path "close" (fun () -> Unix.close fd)
        end);
  }

let temp_file ?(dir = Filename.get_temp_dir_name ()) ~size () =
  let path = Filename.temp_file ~temp_dir:dir "lld" ".img" in
  let backend = file ~create:true ~size path in
  (* Unlink immediately: the open descriptor keeps the image alive and
     the kernel reclaims it when the backend is closed or the process
     exits — no stray .img files from test runs. *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  backend

let of_env ~size () =
  match Sys.getenv_opt "LLD_BACKEND" with
  | Some "file" -> Some (temp_file ~size ())
  | Some _ | None -> None
