type t = {
  label : string;
  size : int;
  read : offset:int -> length:int -> bytes;
  write : offset:int -> bytes -> unit;
  snapshot : unit -> bytes;
  restore : bytes -> unit;
  barrier : unit -> unit;
  close : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Mem                                                                 *)

let of_bytes store =
  let size = Bytes.length store in
  {
    label = "mem";
    size;
    read = (fun ~offset ~length -> Bytes.sub store offset length);
    write = (fun ~offset data -> Bytes.blit data 0 store offset (Bytes.length data));
    snapshot = (fun () -> Bytes.copy store);
    restore = (fun image -> Bytes.blit image 0 store 0 size);
    barrier = (fun () -> ());
    close = (fun () -> ());
  }

let mem ~size =
  if size <= 0 then invalid_arg "Backend.mem: size must be positive";
  of_bytes (Bytes.make size '\000')

(* ------------------------------------------------------------------ *)
(* File                                                                *)

(* Every [Unix_error] is rewrapped so callers above the device layer see
   a clear [Invalid_argument] naming the image, never a raw Unix
   exception (the logical layers only know [Invalid_argument] and
   [Errors.Corrupt]). *)
let wrap_unix ~path op f =
  try f ()
  with Unix.Unix_error (e, _, _) ->
    invalid_arg
      (Printf.sprintf "Backend.file: cannot %s %s: %s" op path
         (Unix.error_message e))

let really_pread fd ~path ~offset buf =
  ignore (Unix.lseek fd offset Unix.SEEK_SET);
  let len = Bytes.length buf in
  let pos = ref 0 in
  while !pos < len do
    let n = Unix.read fd buf !pos (len - !pos) in
    if n = 0 then
      invalid_arg
        (Printf.sprintf "Backend.file: unexpected end of image %s" path);
    pos := !pos + n
  done

let really_pwrite fd ~offset buf =
  ignore (Unix.lseek fd offset Unix.SEEK_SET);
  let len = Bytes.length buf in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write fd buf !pos (len - !pos)
  done

let file ?(create = false) ~size path =
  if size <= 0 then invalid_arg "Backend.file: size must be positive";
  let fd =
    wrap_unix ~path "open" (fun () ->
        let flags =
          if create then Unix.[ O_RDWR; O_CREAT; O_CLOEXEC ]
          else Unix.[ O_RDWR; O_CLOEXEC ]
        in
        Unix.openfile path flags 0o644)
  in
  (match
     wrap_unix ~path "size" (fun () ->
         if create then Unix.ftruncate fd size;
         (Unix.fstat fd).Unix.st_size)
   with
  | actual when actual <> size ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    invalid_arg
      (Printf.sprintf
         "Backend.file: image %s is %d bytes, the geometry needs %d" path
         actual size)
  | _ -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  let closed = ref false in
  let live op =
    if !closed then
      invalid_arg
        (Printf.sprintf "Backend.file: %s on closed image %s" op path)
  in
  {
    label = "file:" ^ path;
    size;
    read =
      (fun ~offset ~length ->
        live "read";
        let buf = Bytes.create length in
        wrap_unix ~path "read" (fun () -> really_pread fd ~path ~offset buf);
        buf);
    write =
      (fun ~offset data ->
        live "write";
        wrap_unix ~path "write" (fun () -> really_pwrite fd ~offset data));
    snapshot =
      (fun () ->
        live "snapshot";
        let buf = Bytes.create size in
        wrap_unix ~path "read" (fun () -> really_pread fd ~path ~offset:0 buf);
        buf);
    restore =
      (fun image ->
        live "restore";
        wrap_unix ~path "write" (fun () -> really_pwrite fd ~offset:0 image));
    barrier =
      (fun () ->
        live "barrier";
        wrap_unix ~path "fsync" (fun () -> Unix.fsync fd));
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          wrap_unix ~path "close" (fun () -> Unix.close fd)
        end);
  }

let temp_file ?(dir = Filename.get_temp_dir_name ()) ~size () =
  let path = Filename.temp_file ~temp_dir:dir "lld" ".img" in
  let backend = file ~create:true ~size path in
  (* Unlink immediately: the open descriptor keeps the image alive and
     the kernel reclaims it when the backend is closed or the process
     exits — no stray .img files from test runs. *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  backend

let of_env ~size () =
  match Sys.getenv_opt "LLD_BACKEND" with
  | Some "file" -> Some (temp_file ~size ())
  | Some _ | None -> None
