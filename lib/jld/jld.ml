module Codec = Lld_util.Bytes_codec
module Blk = Lld_util.Blk
module Lru = Lld_util.Lru
module Clock = Lld_sim.Clock
module Cost = Lld_sim.Cost
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Types = Lld_core.Types
module Errors = Lld_core.Errors
module Summary = Lld_core.Summary
module Record = Lld_core.Record
module Splice = Lld_core.Splice
module Link_log = Lld_core.Link_log
module Aru = Lld_core.Aru
module Block_map = Lld_core.Block_map
module List_table = Lld_core.List_table
module Counters = Lld_core.Counters

type config = {
  cost : Cost.t;
  cache_blocks : int;
  buffer_blocks : int;
  journal_fraction : float;
  dirty_limit_blocks : int;
}

let default_config =
  {
    cost = Cost.sparc5_70;
    cache_blocks = 2048;
    buffer_blocks = 64;
    journal_fraction = 0.25;
    dirty_limit_blocks = 2048;
  }

(* ------------------------------------------------------------------ *)
(* On-disk layout (all units are blocks)                               *)

type layout = {
  journal_first : int;
  journal_blocks : int;
  table_blocks : int; (* per region *)
  table_a_first : int;
  table_b_first : int;
  data_first : int;
  capacity : int;
}

let sb_magic = 0x4a4c4421 (* "JLD!" *)

let layout_of ~total_blocks ~journal_fraction =
  let journal_blocks = max 16 (int_of_float (float_of_int total_blocks *. journal_fraction)) in
  (* worst-case table payload, as in Disk_layout: 31 B per block entry,
     22 B per list entry, plus chunk header slack *)
  let bb = 4096 in
  let cap_bound = total_blocks in
  let table_blocks = ((cap_bound * (31 + 22)) + 4096 + bb - 1) / bb in
  let journal_first = 1 in
  let table_a_first = journal_first + journal_blocks in
  let table_b_first = table_a_first + table_blocks in
  let data_first = table_b_first + table_blocks in
  let capacity = total_blocks - data_first in
  if capacity < 16 then invalid_arg "Jld: partition too small";
  {
    journal_first;
    journal_blocks;
    table_blocks;
    table_a_first;
    table_b_first;
    data_first;
    capacity;
  }

let encode_superblock bb l =
  let b = Bytes.make bb '\000' in
  Codec.set_u32 b 0 sb_magic;
  Codec.set_u32 b 4 1 (* version *);
  Codec.set_u32 b 8 l.journal_first;
  Codec.set_u32 b 12 l.journal_blocks;
  Codec.set_u32 b 16 l.table_blocks;
  Codec.set_u32 b 20 l.table_a_first;
  Codec.set_u32 b 24 l.table_b_first;
  Codec.set_u32 b 28 l.data_first;
  Codec.set_u32 b 32 l.capacity;
  b

let decode_superblock b =
  if Codec.get_u32 b 0 <> sb_magic then
    raise (Errors.Corrupt "no JLD superblock");
  {
    journal_first = Codec.get_u32 b 8;
    journal_blocks = Codec.get_u32 b 12;
    table_blocks = Codec.get_u32 b 16;
    table_a_first = Codec.get_u32 b 20;
    table_b_first = Codec.get_u32 b 24;
    data_first = Codec.get_u32 b 28;
    capacity = Codec.get_u32 b 32;
  }

(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  disk : Disk.t;
  geom : Geometry.t;
  clock : Clock.t;
  layout : layout;
  blocks : Block_map.t; (* the anchors ARE the committed state *)
  lists : List_table.t;
  arus : (int, Aru.t) Hashtbl.t;
  mutable next_aru : int;
  mutable stamp : int;
  (* journal *)
  mutable epoch : int;
  mutable jptr : int; (* blocks used within the journal region *)
  mutable jseq : int; (* next chunk sequence number *)
  mutable pend : (Summary.t * bytes option) list; (* reversed *)
  mutable pend_entries : int;
  mutable pend_entry_bytes : int;
  mutable pend_data : int;
  (* committed data not yet written home *)
  dirty : (int, bytes) Hashtbl.t;
  cache : bytes Lru.t;
  counters : Counters.t;
  mutable in_commit : bool;
  mutable obs : Lld_obs.Obs.t;
}

let clock t = t.clock
let cost_model t = t.config.cost
let counters t = t.counters
let obs t = t.obs

let set_obs t obs =
  t.obs <- obs;
  Disk.set_obs t.disk obs
let capacity t = t.layout.capacity
let allocated_blocks t = Block_map.allocated_count t.blocks
let block_bytes t = t.geom.Geometry.block_bytes

let cpu t ns = Clock.charge t.clock Clock.Cpu ns

let next_stamp t =
  t.stamp <- t.stamp + 1;
  t.stamp

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)

let chunk_header_bytes = 36 (* magic, epoch, seq, entry_count, entries_len, data_count *)
let chunk_trailer_bytes = 8

let pend_chunk_blocks t =
  let bb = block_bytes t in
  let bytes =
    chunk_header_bytes + t.pend_entry_bytes + (t.pend_data * bb)
    + chunk_trailer_bytes
  in
  (bytes + bb - 1) / bb

(* A reserve so that one full buffer can always be flushed before a
   checkpoint frees the journal. *)
let journal_reserve t = t.config.buffer_blocks + 4

let journal_remaining t = t.layout.journal_blocks - t.jptr

let flush_chunk t =
  if t.pend_entries > 0 then begin
    let bb = block_bytes t in
    let entries = List.rev t.pend in
    let w = Blk.Writer.create ~capacity:(t.pend_entry_bytes + 64) () in
    List.iter (fun (e, _) -> Summary.encode w e) entries;
    let encoded = Blk.to_bytes (Blk.Writer.contents w) in
    let blocks = pend_chunk_blocks t in
    if blocks > journal_remaining t then
      (* the reserve invariant should make this impossible *)
      raise Errors.Disk_full;
    let image = Bytes.make (blocks * bb) '\000' in
    Codec.set_u32 image 0 0x4a43484b (* "JCHK" *);
    Codec.set_u32 image 4 (t.epoch land 0xffffffff);
    Codec.set_u32 image 8 (t.epoch lsr 32);
    Codec.set_u32 image 12 (t.jseq land 0xffffffff);
    Codec.set_u32 image 16 (t.jseq lsr 32);
    Codec.set_u32 image 20 t.pend_entries;
    Codec.set_u32 image 24 (Bytes.length encoded);
    Codec.set_u32 image 28 t.pend_data;
    Bytes.blit encoded 0 image chunk_header_bytes (Bytes.length encoded);
    let data_off = chunk_header_bytes + Bytes.length encoded in
    let idx = ref 0 in
    List.iter
      (fun (_, payload) ->
        match payload with
        | Some d ->
          Bytes.blit d 0 image (data_off + (!idx * bb)) bb;
          incr idx
        | None -> ())
      entries;
    let sum_off = Bytes.length image - chunk_trailer_bytes in
    let sum = Codec.hash64 ~pos:0 ~len:sum_off image in
    Codec.set_u32 image sum_off (Int64.to_int (Int64.logand sum 0xffffffffL));
    Codec.set_u32 image (sum_off + 4)
      (Int64.to_int (Int64.logand (Int64.shift_right_logical sum 32) 0xffffffffL));
    Disk.write t.disk
      ~offset:((t.layout.journal_first + t.jptr) * bb)
      image;
    (* WAL ordering: the journal chunk (and the commit records in it)
       must be durable before later chunks or the checkpoint tables. *)
    Disk.barrier t.disk;
    t.jptr <- t.jptr + blocks;
    t.jseq <- t.jseq + 1;
    t.counters.Counters.segments_written <-
      t.counters.Counters.segments_written + 1;
    t.pend <- [];
    t.pend_entries <- 0;
    t.pend_entry_bytes <- 0;
    t.pend_data <- 0
  end

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)

let table_magic = 0x4a544142 (* "JTAB" *)

let write_tables t =
  let bb = block_bytes t in
  let blocks = ref [] in
  Block_map.iter t.blocks (fun r ->
      if r.Record.alloc then
        blocks :=
          {
            Lld_core.Checkpoint.b_id = Types.Block_id.to_int r.Record.id;
            b_member = Option.map Types.List_id.to_int r.Record.member_of;
            b_succ = Option.map Types.Block_id.to_int r.Record.successor;
            b_phys = None;
            b_stamp = r.Record.stamp;
          }
          :: !blocks);
  let lists = ref [] in
  List_table.iter t.lists (fun r ->
      if r.Record.exists then
        lists :=
          {
            Lld_core.Checkpoint.l_id = Types.List_id.to_int r.Record.lid;
            l_first = Option.map Types.Block_id.to_int r.Record.first;
            l_last = Option.map Types.Block_id.to_int r.Record.last;
            l_stamp = r.Record.lstamp;
            l_owner =
              (match r.Record.l_owner with
              | Some o when Hashtbl.mem t.arus (Types.Aru_id.to_int o) ->
                Some (Types.Aru_id.to_int o)
              | Some _ | None -> None);
          }
          :: !lists);
  let snap =
    {
      Lld_core.Checkpoint.ckpt_id = t.epoch + 1;
      kind = Lld_core.Checkpoint.Full;
      covered_seq = 0;
      next_seq = 1;
      stamp = t.stamp;
      next_aru = t.next_aru;
      next_gid = 1;
      blocks = List.rev !blocks;
      lists = List.rev !lists;
      dead_blocks = [];
      dead_lists = [];
      pending = [];
      free_order = [];
      prepared = [];
    }
  in
  let payload = Blk.to_bytes (Lld_core.Checkpoint.encode snap) in
  let header = 16 in
  let total = header + Bytes.length payload + 8 in
  let region_bytes = t.layout.table_blocks * bb in
  if total > region_bytes then raise Errors.Disk_full;
  let image = Bytes.make ((total + bb - 1) / bb * bb) '\000' in
  Codec.set_u32 image 0 table_magic;
  Codec.set_u32 image 4 ((t.epoch + 1) land 0xffffffff);
  Codec.set_u32 image 8 ((t.epoch + 1) lsr 32);
  Codec.set_u32 image 12 (Bytes.length payload);
  Bytes.blit payload 0 image header (Bytes.length payload);
  let sum_off = header + Bytes.length payload in
  let sum = Codec.hash64 ~pos:0 ~len:sum_off image in
  Codec.set_u32 image sum_off (Int64.to_int (Int64.logand sum 0xffffffffL));
  Codec.set_u32 image (sum_off + 4)
    (Int64.to_int (Int64.logand (Int64.shift_right_logical sum 32) 0xffffffffL));
  let region =
    if (t.epoch + 1) mod 2 = 0 then t.layout.table_a_first
    else t.layout.table_b_first
  in
  Disk.write t.disk ~offset:(region * bb) image

let read_tables disk bb layout region =
  let head = Disk.read disk ~offset:(region * bb) ~length:bb in
  if Codec.get_u32 head 0 <> table_magic then None
  else begin
    let epoch = Codec.get_u32 head 4 lor (Codec.get_u32 head 8 lsl 32) in
    let len = Codec.get_u32 head 12 in
    let total = 16 + len + 8 in
    if total > layout.table_blocks * bb then None
    else begin
      let image = Disk.read disk ~offset:(region * bb) ~length:total in
      let sum_off = 16 + len in
      let stored =
        Int64.logor
          (Int64.of_int (Codec.get_u32 image sum_off))
          (Int64.shift_left (Int64.of_int (Codec.get_u32 image (sum_off + 4))) 32)
      in
      if not (Int64.equal stored (Codec.hash64 ~pos:0 ~len:sum_off image)) then
        None
      else
        match Lld_core.Checkpoint.decode (Blk.of_bytes (Bytes.sub image 16 len)) with
        | snap -> Some (epoch, snap)
        | exception Errors.Corrupt _ -> None
    end
  end

(* ------------------------------------------------------------------ *)
(* Checkpoint: flush, write home, persist tables, restart journal      *)

let apply_home t =
  let bb = block_bytes t in
  let dirty = Hashtbl.fold (fun b d acc -> (b, d) :: acc) t.dirty [] in
  List.iter
    (fun (b, d) ->
      Disk.write t.disk ~offset:((t.layout.data_first + b) * bb) d;
      Lru.add t.cache b (Bytes.copy d))
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) dirty);
  Hashtbl.reset t.dirty

let checkpoint t =
  if t.in_commit then
    raise (Errors.Corrupt "Jld.checkpoint: called during a commit");
  flush_chunk t;
  apply_home t;
  (* home-location data must be durable before the table epoch flips
     and the journal space is reused *)
  Disk.barrier t.disk;
  write_tables t;
  Disk.barrier t.disk;
  t.epoch <- t.epoch + 1;
  t.jptr <- 0;
  t.jseq <- 1;
  t.counters.Counters.checkpoints <- t.counters.Counters.checkpoints + 1

(* Ensure room for [blocks] more journal blocks (checkpointing if
   needed, which is forbidden mid-commit — end_aru reserves ahead). *)
let ensure_journal_room t blocks =
  if journal_remaining t - journal_reserve t < blocks then begin
    if t.in_commit then raise Errors.Disk_full;
    checkpoint t
  end

let append t ?payload entry =
  let c = t.config.cost in
  t.pend <- (entry, payload) :: t.pend;
  t.pend_entries <- t.pend_entries + 1;
  t.pend_entry_bytes <- t.pend_entry_bytes + Summary.encoded_size entry;
  (match payload with
  | Some _ ->
    t.pend_data <- t.pend_data + 1;
    cpu t c.Cost.block_copy_ns
  | None -> ());
  t.counters.Counters.summary_entries <- t.counters.Counters.summary_entries + 1;
  cpu t c.Cost.summary_entry_ns;
  if t.pend_data >= t.config.buffer_blocks then begin
    ensure_journal_room t (pend_chunk_blocks t);
    flush_chunk t
  end

let flush t =
  t.counters.Counters.flushes <- t.counters.Counters.flushes + 1;
  ensure_journal_room t (pend_chunk_blocks t);
  flush_chunk t

(* ------------------------------------------------------------------ *)
(* Views: anchors are the committed state; shadows hang off them       *)

let owner_active t o = Hashtbl.mem t.arus (Types.Aru_id.to_int o)

let resolve_who t = function
  | None -> `Simple
  | Some aid -> (
    match Hashtbl.find_opt t.arus (Types.Aru_id.to_int aid) with
    | Some a -> `In a
    | None -> raise (Errors.Unknown_aru aid))

let owner_visible t who owner =
  match owner with
  | None -> true
  | Some o -> (
    if not (owner_active t o) then true
    else
      match who with
      | `In (a : Aru.t) -> Types.Aru_id.equal a.Aru.id o
      | `Simple -> false)

let hops_charge t n =
  if n > 0 then begin
    t.counters.Counters.mesh_hops <- t.counters.Counters.mesh_hops + n;
    cpu t (n * t.config.cost.Cost.mesh_hop_ns)
  end

let shadow_peek t (a : Aru.t) b =
  let anchor = Block_map.anchor t.blocks b in
  let r, hops = Record.find_block ~anchor (Record.Shadow a.Aru.id) in
  hops_charge t hops;
  Option.value r ~default:anchor

let shadow_get t (a : Aru.t) b =
  let anchor = Block_map.anchor t.blocks b in
  let r, hops = Record.find_block ~anchor (Record.Shadow a.Aru.id) in
  hops_charge t hops;
  match r with
  | Some r -> r
  | None ->
    let alt = Record.alt_block (Record.Shadow a.Aru.id) ~from:anchor in
    Record.insert_alt_block ~anchor alt;
    Aru.push_shadow_block a alt;
    t.counters.Counters.record_creates <- t.counters.Counters.record_creates + 1;
    cpu t t.config.cost.Cost.record_create_ns;
    alt

let shadow_peek_list t (a : Aru.t) l =
  let anchor = List_table.anchor t.lists l in
  let r, hops = Record.find_list ~anchor (Record.Shadow a.Aru.id) in
  hops_charge t hops;
  Option.value r ~default:anchor

let shadow_get_list t (a : Aru.t) l =
  let anchor = List_table.anchor t.lists l in
  let r, hops = Record.find_list ~anchor (Record.Shadow a.Aru.id) in
  hops_charge t hops;
  match r with
  | Some r -> r
  | None ->
    let alt = Record.alt_list (Record.Shadow a.Aru.id) ~from:anchor in
    Record.insert_alt_list ~anchor alt;
    Aru.push_shadow_list a alt;
    t.counters.Counters.record_creates <- t.counters.Counters.record_creates + 1;
    cpu t t.config.cost.Cost.record_create_ns;
    alt

let pred_hop t () =
  t.counters.Counters.pred_search_hops <- t.counters.Counters.pred_search_hops + 1;
  cpu t t.config.cost.Cost.pred_search_hop_ns

let committed_ctx t =
  {
    Splice.peek_block = (fun b -> Block_map.anchor t.blocks b);
    get_block = (fun b -> Block_map.anchor t.blocks b);
    peek_list = (fun l -> List_table.anchor t.lists l);
    get_list = (fun l -> List_table.anchor t.lists l);
    on_pred_hop = pred_hop t;
  }

let shadow_ctx t (a : Aru.t) =
  {
    Splice.peek_block = (fun b -> shadow_peek t a b);
    get_block = (fun b -> shadow_get t a b);
    peek_list = (fun l -> shadow_peek_list t a l);
    get_list = (fun l -> shadow_get_list t a l);
    on_pred_hop = pred_hop t;
  }

let visible_block t who b =
  match who with
  | `Simple -> Block_map.anchor t.blocks b
  | `In a ->
    cpu t t.config.cost.Cost.version_search_ns;
    shadow_peek t a b

let visible_list t who l =
  match who with
  | `Simple -> List_table.anchor t.lists l
  | `In a ->
    cpu t t.config.cost.Cost.version_search_ns;
    shadow_peek_list t a l

let require_visible_block t who (r : Record.block) =
  if not (r.Record.alloc && owner_visible t who r.Record.alloc_owner) then
    raise (Errors.Unallocated_block r.Record.id)

let require_visible_list t who (r : Record.list_r) =
  if not (r.Record.exists && owner_visible t who r.Record.l_owner) then
    raise (Errors.Unallocated_list r.Record.lid)

let dispatch t =
  cpu t t.config.cost.Cost.op_dispatch_ns;
  cpu t t.config.cost.Cost.record_lookup_ns

(* Committed data write: journal entry + payload, dirty map update.
   When too much committed data is waiting to go home, checkpoint (the
   write-back bound a real buffer cache would impose). *)
let committed_write t ~stream b data ~stamp =
  if
    (not t.in_commit)
    && Hashtbl.length t.dirty >= t.config.dirty_limit_blocks
  then checkpoint t;
  let slot = t.pend_data in
  append t ~payload:(Bytes.copy data)
    { Summary.stream; op = Summary.Write { block = b; slot; stamp } };
  Hashtbl.replace t.dirty (Types.Block_id.to_int b) (Bytes.copy data);
  Lru.remove t.cache (Types.Block_id.to_int b);
  let anchor = Block_map.anchor t.blocks b in
  anchor.Record.stamp <- stamp

(* ------------------------------------------------------------------ *)
(* The LD interface                                                    *)

let begin_aru t =
  dispatch t;
  t.counters.Counters.arus_begun <- t.counters.Counters.arus_begun + 1;
  cpu t t.config.cost.Cost.aru_begin_ns;
  let id = Types.Aru_id.of_int t.next_aru in
  t.next_aru <- t.next_aru + 1;
  Hashtbl.replace t.arus (Types.Aru_id.to_int id) (Aru.create id);
  id

let new_list t ?aru () =
  dispatch t;
  t.counters.Counters.new_lists <- t.counters.Counters.new_lists + 1;
  let who = resolve_who t aru in
  let lid =
    match List_table.alloc_id t.lists with
    | Some l -> l
    | None -> raise Errors.Disk_full
  in
  let stamp = next_stamp t in
  let owner = match who with `In a -> Some a.Aru.id | `Simple -> None in
  let r = List_table.anchor t.lists lid in
  r.Record.exists <- true;
  r.Record.first <- None;
  r.Record.last <- None;
  r.Record.lstamp <- stamp;
  r.Record.l_owner <- owner;
  (match who with
  | `In a -> a.Aru.owned_lists <- r :: a.Aru.owned_lists
  | `Simple -> ());
  append t { Summary.stream = Summary.Simple; op = Summary.New_list { list = lid; stamp; owner } };
  lid

let new_block t ?aru ~list ~pred () =
  dispatch t;
  t.counters.Counters.new_blocks <- t.counters.Counters.new_blocks + 1;
  let who = resolve_who t aru in
  (match who with
  | `In a ->
    require_visible_list t who (shadow_peek_list t a list);
    (match pred with
    | Summary.Head -> ()
    | Summary.After p ->
      let pr = shadow_peek t a p in
      require_visible_block t who pr;
      if pr.Record.member_of <> Some list then raise (Errors.Block_not_on_list p))
  | `Simple ->
    require_visible_list t who (List_table.anchor t.lists list);
    (match pred with
    | Summary.Head -> ()
    | Summary.After p ->
      let pr = Block_map.anchor t.blocks p in
      require_visible_block t who pr;
      if pr.Record.member_of <> Some list then raise (Errors.Block_not_on_list p)));
  let bid =
    match Block_map.alloc_id t.blocks with
    | Some b -> b
    | None -> raise Errors.Disk_full
  in
  let stamp = next_stamp t in
  let anchor = Block_map.anchor t.blocks bid in
  anchor.Record.alloc <- true;
  anchor.Record.member_of <- None;
  anchor.Record.successor <- None;
  anchor.Record.stamp <- stamp;
  anchor.Record.alloc_owner <-
    (match who with `In a -> Some a.Aru.id | `Simple -> None);
  append t
    { Summary.stream = Summary.Simple; op = Summary.Alloc { block = bid; list; stamp } };
  (match who with
  | `In a ->
    (match Splice.insert (shadow_ctx t a) ~list ~block:bid ~pred with
    | `Applied -> ()
    | `Skipped -> raise (Errors.Corrupt "Jld.new_block: validated insert skipped"));
    Link_log.add a.Aru.log (Link_log.Insert { list; block = bid; pred });
    t.counters.Counters.link_log_appends <- t.counters.Counters.link_log_appends + 1;
    cpu t t.config.cost.Cost.link_log_append_ns
  | `Simple ->
    (match Splice.insert (committed_ctx t) ~list ~block:bid ~pred with
    | `Applied -> ()
    | `Skipped -> raise (Errors.Corrupt "Jld.new_block: validated insert skipped"));
    append t
      { Summary.stream = Summary.Simple; op = Summary.Link { list; block = bid; pred } });
  bid

let write t ?aru block data =
  if Bytes.length data <> block_bytes t then
    invalid_arg "Jld.write: data must be exactly one block";
  dispatch t;
  t.counters.Counters.writes <- t.counters.Counters.writes + 1;
  let who = resolve_who t aru in
  let stamp = next_stamp t in
  match who with
  | `In a ->
    require_visible_block t who (shadow_peek t a block);
    let r = shadow_get t a block in
    r.Record.data <- Some (Blk.of_bytes (Bytes.copy data));
    cpu t t.config.cost.Cost.block_copy_ns;
    r.Record.stamp <- stamp
  | `Simple ->
    require_visible_block t who (Block_map.anchor t.blocks block);
    committed_write t ~stream:Summary.Simple block data ~stamp

let read t ?aru block =
  dispatch t;
  t.counters.Counters.reads <- t.counters.Counters.reads + 1;
  cpu t t.config.cost.Cost.block_read_cpu_ns;
  let who = resolve_who t aru in
  let r = visible_block t who block in
  require_visible_block t who r;
  match r.Record.data with
  | Some d -> Blk.to_bytes d
  | None -> (
    let key = Types.Block_id.to_int block in
    match Hashtbl.find_opt t.dirty key with
    | Some d -> Bytes.copy d
    | None -> (
      match Lru.find t.cache key with
      | Some d ->
        t.counters.Counters.cache_hits <- t.counters.Counters.cache_hits + 1;
        Bytes.copy d
      | None ->
        t.counters.Counters.cache_misses <- t.counters.Counters.cache_misses + 1;
        let bb = block_bytes t in
        let d =
          Disk.read t.disk ~offset:((t.layout.data_first + key) * bb) ~length:bb
        in
        Lru.add t.cache key (Bytes.copy d);
        d))

let delete_block t ?aru block =
  dispatch t;
  t.counters.Counters.delete_blocks <- t.counters.Counters.delete_blocks + 1;
  let who = resolve_who t aru in
  let stamp = next_stamp t in
  match who with
  | `In a ->
    let peek = shadow_peek t a block in
    require_visible_block t who peek;
    (match peek.Record.member_of with
    | Some l -> (
      match Splice.unlink (shadow_ctx t a) ~list:l ~block with
      | `Applied -> ()
      | `Skipped -> raise (Errors.Block_not_on_list block))
    | None -> ());
    let r = shadow_get t a block in
    r.Record.alloc <- false;
    r.Record.member_of <- None;
    r.Record.successor <- None;
    r.Record.data <- None;
    r.Record.stamp <- stamp;
    Link_log.add a.Aru.log (Link_log.Delete_block { block });
    t.counters.Counters.link_log_appends <- t.counters.Counters.link_log_appends + 1;
    cpu t t.config.cost.Cost.link_log_append_ns
  | `Simple ->
    let anchor = Block_map.anchor t.blocks block in
    require_visible_block t who anchor;
    (match anchor.Record.member_of with
    | Some l ->
      (match Splice.unlink (committed_ctx t) ~list:l ~block with
      | `Applied -> ()
      | `Skipped -> raise (Errors.Block_not_on_list block));
      append t
        { Summary.stream = Summary.Simple; op = Summary.Unlink { list = l; block } }
    | None -> ());
    anchor.Record.alloc <- false;
    anchor.Record.member_of <- None;
    anchor.Record.successor <- None;
    anchor.Record.alloc_owner <- None;
    anchor.Record.stamp <- stamp;
    Hashtbl.remove t.dirty (Types.Block_id.to_int block);
    append t
      { Summary.stream = Summary.Simple; op = Summary.Dealloc { block; stamp } };
    Block_map.release_id t.blocks block

let delete_list t ?aru list =
  dispatch t;
  t.counters.Counters.delete_lists <- t.counters.Counters.delete_lists + 1;
  let who = resolve_who t aru in
  match who with
  | `In a ->
    let peek = shadow_peek_list t a list in
    require_visible_list t who peek;
    let r = shadow_get_list t a list in
    r.Record.exists <- false;
    r.Record.first <- None;
    r.Record.last <- None;
    Link_log.add a.Aru.log (Link_log.Delete_list { list });
    t.counters.Counters.link_log_appends <- t.counters.Counters.link_log_appends + 1;
    cpu t t.config.cost.Cost.link_log_append_ns
  | `Simple ->
    require_visible_list t who (List_table.anchor t.lists list);
    (match
       Splice.delete_list (committed_ctx t) ~list ~dealloc:(fun br ->
           Hashtbl.remove t.dirty (Types.Block_id.to_int br.Record.id);
           br.Record.alloc_owner <- None;
           Block_map.release_id t.blocks br.Record.id)
     with
    | `Applied -> ()
    | `Skipped -> raise (Errors.Unallocated_list list));
    append t { Summary.stream = Summary.Simple; op = Summary.Delete_list { list } };
    List_table.release_id t.lists list

(* ------------------------------------------------------------------ *)
(* Commit / abort                                                      *)

let replay_log_op t (a : Aru.t) op =
  let c = t.config.cost in
  t.counters.Counters.link_log_replays <- t.counters.Counters.link_log_replays + 1;
  cpu t c.Cost.link_log_replay_ns;
  let skipped () =
    t.counters.Counters.replay_skips <- t.counters.Counters.replay_skips + 1
  in
  let stream = Summary.In_aru a.Aru.id in
  let ctx = committed_ctx t in
  match op with
  | Link_log.Insert { list; block; pred } -> (
    match Splice.insert ctx ~list ~block ~pred with
    | `Applied -> append t { Summary.stream; op = Summary.Link { list; block; pred } }
    | `Skipped -> skipped ())
  | Link_log.Delete_block { block } ->
    let anchor = Block_map.anchor t.blocks block in
    if not anchor.Record.alloc then skipped ()
    else begin
      (match anchor.Record.member_of with
      | Some l -> (
        match Splice.unlink ctx ~list:l ~block with
        | `Applied ->
          append t { Summary.stream; op = Summary.Unlink { list = l; block } }
        | `Skipped -> skipped ())
      | None -> ());
      anchor.Record.alloc <- false;
      anchor.Record.member_of <- None;
      anchor.Record.successor <- None;
      anchor.Record.alloc_owner <- None;
      let stamp = next_stamp t in
      anchor.Record.stamp <- stamp;
      Hashtbl.remove t.dirty (Types.Block_id.to_int block);
      append t { Summary.stream; op = Summary.Dealloc { block; stamp } };
      Block_map.release_id t.blocks block
    end
  | Link_log.Delete_list { list } -> (
    match
      Splice.delete_list ctx ~list ~dealloc:(fun br ->
          Hashtbl.remove t.dirty (Types.Block_id.to_int br.Record.id);
          br.Record.alloc_owner <- None;
          Block_map.release_id t.blocks br.Record.id)
    with
    | `Applied ->
      append t { Summary.stream; op = Summary.Delete_list { list } };
      List_table.release_id t.lists list
    | `Skipped -> skipped ())

let end_aru t aid =
  dispatch t;
  let a =
    match Hashtbl.find_opt t.arus (Types.Aru_id.to_int aid) with
    | Some a -> a
    | None -> raise (Errors.Unknown_aru aid)
  in
  cpu t t.config.cost.Cost.aru_commit_ns;
  (* reserve journal room for the whole commit before starting it *)
  let data_bound = Aru.shadow_block_count a in
  ensure_journal_room t
    (pend_chunk_blocks t + data_bound + 2 + t.config.buffer_blocks);
  t.in_commit <- true;
  Fun.protect ~finally:(fun () -> t.in_commit <- false) @@ fun () ->
  List.iter (replay_log_op t a) (Link_log.to_list a.Aru.log);
  Aru.iter_shadow_blocks a (fun r ->
      let anchor = Block_map.anchor t.blocks r.Record.id in
      Record.remove_alt_block ~anchor r;
      t.counters.Counters.record_transitions <-
        t.counters.Counters.record_transitions + 1;
      cpu t t.config.cost.Cost.record_transition_ns;
      match r.Record.data with
      | Some d when r.Record.alloc ->
        if anchor.Record.alloc && r.Record.stamp >= anchor.Record.stamp then
          committed_write t ~stream:(Summary.In_aru aid) r.Record.id
            (Blk.to_bytes d) ~stamp:r.Record.stamp
        else
          t.counters.Counters.replay_skips <- t.counters.Counters.replay_skips + 1
      | Some _ | None -> ());
  Aru.iter_shadow_lists a (fun r ->
      let anchor = List_table.anchor t.lists r.Record.lid in
      Record.remove_alt_list ~anchor r;
      t.counters.Counters.record_transitions <-
        t.counters.Counters.record_transitions + 1;
      cpu t t.config.cost.Cost.record_transition_ns);
  append t { Summary.stream = Summary.Simple; op = Summary.Commit { aru = aid } };
  List.iter
    (fun (r : Record.list_r) ->
      (match r.Record.l_owner with
      | Some o when Types.Aru_id.equal o aid -> r.Record.l_owner <- None
      | Some _ | None -> ());
      let anchor = List_table.anchor t.lists r.Record.lid in
      match anchor.Record.l_owner with
      | Some o when Types.Aru_id.equal o aid -> anchor.Record.l_owner <- None
      | Some _ | None -> ())
    a.Aru.owned_lists;
  Hashtbl.remove t.arus (Types.Aru_id.to_int aid);
  t.counters.Counters.arus_committed <- t.counters.Counters.arus_committed + 1

let abort_aru t aid =
  dispatch t;
  let a =
    match Hashtbl.find_opt t.arus (Types.Aru_id.to_int aid) with
    | Some a -> a
    | None -> raise (Errors.Unknown_aru aid)
  in
  Aru.iter_shadow_blocks a (fun r ->
      Record.remove_alt_block ~anchor:(Block_map.anchor t.blocks r.Record.id) r);
  Aru.iter_shadow_lists a (fun r ->
      Record.remove_alt_list ~anchor:(List_table.anchor t.lists r.Record.lid) r);
  Hashtbl.remove t.arus (Types.Aru_id.to_int aid);
  t.counters.Counters.arus_aborted <- t.counters.Counters.arus_aborted + 1

(* JLD has no group-commit engine: a submitted commit applies
   immediately, so the queue is always empty and a flush commits
   nothing.  This matches the [Ld_intf.S] contract's degenerate case. *)
let submit_commit t aid = end_aru t aid
let flush_commits _t = 0

let with_aru t f =
  let aru = begin_aru t in
  match f aru with
  | v ->
    end_aru t aru;
    v
  | exception e ->
    abort_aru t aru;
    raise e

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let list_exists t ?aru list =
  let who = resolve_who t aru in
  let r = visible_list t who list in
  r.Record.exists && owner_visible t who r.Record.l_owner

let block_allocated t ?aru block =
  let who = resolve_who t aru in
  if not (Block_map.in_range t.blocks block) then false
  else begin
    let r = visible_block t who block in
    r.Record.alloc && owner_visible t who r.Record.alloc_owner
  end

let block_member t ?aru block =
  let who = resolve_who t aru in
  let r = visible_block t who block in
  if r.Record.alloc && owner_visible t who r.Record.alloc_owner then
    r.Record.member_of
  else None

let list_blocks t ?aru list =
  let who = resolve_who t aru in
  let lrec = visible_list t who list in
  require_visible_list t who lrec;
  let rec walk acc = function
    | None -> List.rev acc
    | Some b ->
      let br = visible_block t who b in
      walk (b :: acc) br.Record.successor
  in
  walk [] lrec.Record.first

let lists t =
  let acc = ref [] in
  List_table.iter t.lists (fun r ->
      if r.Record.exists then acc := r.Record.lid :: !acc);
  List.rev !acc

let orphan_blocks t =
  let acc = ref [] in
  Block_map.iter t.blocks (fun anchor ->
      let orphaned =
        anchor.Record.alloc
        && anchor.Record.member_of = None
        && (match anchor.Record.alloc_owner with
           | None -> true
           | Some o -> not (owner_active t o))
      in
      if orphaned then acc := anchor.Record.id :: !acc);
  List.rev !acc

let scavenge t =
  let freed = ref 0 in
  let dead_lists = ref [] in
  List_table.iter t.lists (fun anchor ->
      match anchor.Record.l_owner with
      | Some o
        when anchor.Record.exists && anchor.Record.first = None
             && not (owner_active t o) ->
        dead_lists := anchor.Record.lid :: !dead_lists
      | Some _ | None -> ());
  List.iter
    (fun lid ->
      delete_list t lid;
      incr freed)
    !dead_lists;
  List.iter
    (fun bid ->
      let anchor = Block_map.anchor t.blocks bid in
      anchor.Record.alloc_owner <- None;
      delete_block t bid;
      incr freed)
    (orphan_blocks t);
  !freed

(* ------------------------------------------------------------------ *)
(* Construction and recovery                                           *)

let make config disk layout =
  let geom = Disk.geometry disk in
  {
    config;
    disk;
    geom;
    clock = Disk.clock disk;
    layout;
    blocks = Block_map.create ~capacity:layout.capacity;
    lists = List_table.create ~max_lists:layout.capacity;
    arus = Hashtbl.create 16;
    next_aru = 1;
    stamp = 1;
    epoch = 0;
    jptr = 0;
    jseq = 1;
    pend = [];
    pend_entries = 0;
    pend_entry_bytes = 0;
    pend_data = 0;
    dirty = Hashtbl.create 256;
    cache = Lru.create ~capacity:(max 16 config.cache_blocks);
    counters = Counters.create ();
    in_commit = false;
    obs = Lld_obs.Obs.null;
  }

let create ?(config = default_config) disk =
  let geom = Disk.geometry disk in
  let bb = geom.Geometry.block_bytes in
  let total_blocks = Geometry.total_bytes geom / bb in
  let layout =
    layout_of ~total_blocks ~journal_fraction:config.journal_fraction
  in
  let t = make config disk layout in
  Disk.write disk ~offset:0 (encode_superblock bb layout);
  (* epoch 1 tables on both regions so stale state never resurfaces *)
  write_tables t;
  t.epoch <- 1;
  write_tables t;
  t.epoch <- 2;
  t

(* Journal replay: chunks in order, ARU entries buffered until their
   commit record (same semantics as LLD's Recovery). *)
let replay_journal t =
  let bb = block_bytes t in
  let buffers : (int, (Summary.op * bytes option) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let committed_arus = Hashtbl.create 16 in
  let ctx = committed_ctx t in
  let rec apply_op (op, payload) =
    match op with
    | Summary.Alloc { block; list = _; stamp } ->
      let r = Block_map.anchor t.blocks block in
      r.Record.alloc <- true;
      r.Record.member_of <- None;
      r.Record.successor <- None;
      r.Record.stamp <- stamp;
      if stamp >= t.stamp then t.stamp <- stamp + 1
    | Summary.Write { block; slot = _; stamp } -> (
      match payload with
      | Some d ->
        let r = Block_map.anchor t.blocks block in
        if r.Record.alloc && stamp >= r.Record.stamp then begin
          Hashtbl.replace t.dirty (Types.Block_id.to_int block) d;
          r.Record.stamp <- stamp
        end;
        if stamp >= t.stamp then t.stamp <- stamp + 1
      | None -> raise (Errors.Corrupt "journal Write without payload"))
    | Summary.Link { list; block; pred } ->
      ignore (Splice.insert ctx ~list ~block ~pred)
    | Summary.Unlink { list; block } -> ignore (Splice.unlink ctx ~list ~block)
    | Summary.New_list { list; stamp; owner } ->
      let r = List_table.anchor t.lists list in
      r.Record.exists <- true;
      r.Record.first <- None;
      r.Record.last <- None;
      r.Record.lstamp <- stamp;
      r.Record.l_owner <- owner;
      if stamp >= t.stamp then t.stamp <- stamp + 1
    | Summary.Delete_list { list } ->
      ignore
        (Splice.delete_list ctx ~list ~dealloc:(fun br ->
             Hashtbl.remove t.dirty (Types.Block_id.to_int br.Record.id)))
    | Summary.Dealloc { block; stamp } ->
      let r = Block_map.anchor t.blocks block in
      r.Record.alloc <- false;
      r.Record.member_of <- None;
      r.Record.successor <- None;
      Hashtbl.remove t.dirty (Types.Block_id.to_int block);
      if stamp >= t.stamp then t.stamp <- stamp + 1
    | Summary.Commit { aru } -> commit_aru aru
    | Summary.Commit_group { arus } -> List.iter commit_aru arus
    | Summary.Prepare _ | Summary.Decide _ ->
      (* two-phase-commit records are an LLD sharding concept; the
         journaled comparison disk never writes them *)
      ()
  and commit_aru aru =
    let key = Types.Aru_id.to_int aru in
    Hashtbl.replace committed_arus key ();
    let buffered = Option.value ~default:[] (Hashtbl.find_opt buffers key) in
    Hashtbl.remove buffers key;
    List.iter apply_op (List.rev buffered)
  in
  let chunks = ref 0 in
  let stop = ref false in
  while not !stop do
    if t.jptr >= t.layout.journal_blocks then stop := true
    else begin
      let head =
        Disk.read t.disk ~offset:((t.layout.journal_first + t.jptr) * bb) ~length:bb
      in
      if Codec.get_u32 head 0 <> 0x4a43484b then stop := true
      else begin
        let epoch = Codec.get_u32 head 4 lor (Codec.get_u32 head 8 lsl 32) in
        let seq = Codec.get_u32 head 12 lor (Codec.get_u32 head 16 lsl 32) in
        let entry_count = Codec.get_u32 head 20 in
        let entries_len = Codec.get_u32 head 24 in
        let data_count = Codec.get_u32 head 28 in
        let total =
          chunk_header_bytes + entries_len + (data_count * bb)
          + chunk_trailer_bytes
        in
        let blocks = (total + bb - 1) / bb in
        if
          epoch <> t.epoch || seq <> t.jseq
          || t.jptr + blocks > t.layout.journal_blocks
        then stop := true
        else begin
          let image =
            Disk.read t.disk
              ~offset:((t.layout.journal_first + t.jptr) * bb)
              ~length:(blocks * bb)
          in
          let sum_off = Bytes.length image - chunk_trailer_bytes in
          let stored =
            Int64.logor
              (Int64.of_int (Codec.get_u32 image sum_off))
              (Int64.shift_left
                 (Int64.of_int (Codec.get_u32 image (sum_off + 4)))
                 32)
          in
          if not (Int64.equal stored (Codec.hash64 ~pos:0 ~len:sum_off image))
          then stop := true
          else begin
            let r =
              Blk.Reader.of_view ~pos:chunk_header_bytes ~len:entries_len
                (Blk.of_bytes image)
            in
            let data_off = chunk_header_bytes + entries_len in
            let entries =
              List.init entry_count (fun _ -> Summary.decode r)
            in
            let next_payload = ref 0 in
            List.iter
              (fun (e : Summary.t) ->
                let payload =
                  match e.Summary.op with
                  | Summary.Write _ ->
                    let d =
                      Bytes.sub image (data_off + (!next_payload * bb)) bb
                    in
                    incr next_payload;
                    Some d
                  | Summary.Alloc _ | Summary.Link _ | Summary.Unlink _
                  | Summary.New_list _ | Summary.Delete_list _
                  | Summary.Dealloc _ | Summary.Commit _
                  | Summary.Commit_group _ | Summary.Prepare _
                  | Summary.Decide _ ->
                    None
                in
                match e.Summary.stream with
                | Summary.Simple -> apply_op (e.Summary.op, payload)
                | Summary.In_aru a ->
                  let key = Types.Aru_id.to_int a in
                  if key >= t.next_aru then t.next_aru <- key + 1;
                  Hashtbl.replace buffers key
                    ((e.Summary.op, payload)
                    :: Option.value ~default:[] (Hashtbl.find_opt buffers key)))
              entries;
            t.jptr <- t.jptr + blocks;
            t.jseq <- t.jseq + 1;
            incr chunks
          end
        end
      end
    end
  done;
  (* sweep: blocks of undone ARUs, still-empty lists of undone ARUs *)
  Block_map.iter t.blocks (fun r ->
      if r.Record.alloc && r.Record.member_of = None then begin
        r.Record.alloc <- false;
        r.Record.successor <- None;
        Hashtbl.remove t.dirty (Types.Block_id.to_int r.Record.id)
      end);
  List_table.iter t.lists (fun r ->
      match r.Record.l_owner with
      | Some o when Hashtbl.mem committed_arus (Types.Aru_id.to_int o) ->
        r.Record.l_owner <- None
      | Some _ when r.Record.exists && r.Record.first = None ->
        r.Record.exists <- false;
        r.Record.l_owner <- None
      | Some _ | None -> ());
  !chunks

let recover ?(config = default_config) disk =
  Lld_disk.Fault.reset_after_recovery (Disk.fault disk);
  let geom = Disk.geometry disk in
  let bb = geom.Geometry.block_bytes in
  let layout = decode_superblock (Disk.read disk ~offset:0 ~length:bb) in
  let t = make config disk layout in
  let a = read_tables disk bb layout layout.table_a_first in
  let b = read_tables disk bb layout layout.table_b_first in
  let epoch, snap =
    match (a, b) with
    | None, None -> raise (Errors.Corrupt "JLD: no valid tables")
    | Some x, None | None, Some x -> x
    | Some ((ea, _) as x), Some ((eb, _) as y) -> if ea >= eb then x else y
  in
  t.epoch <- epoch;
  t.stamp <- snap.Lld_core.Checkpoint.stamp;
  t.next_aru <- snap.Lld_core.Checkpoint.next_aru;
  List.iter
    (fun (b : Lld_core.Checkpoint.block_entry) ->
      let r = Block_map.anchor t.blocks (Types.Block_id.of_int b.b_id) in
      r.Record.alloc <- true;
      r.Record.member_of <- Option.map Types.List_id.of_int b.b_member;
      r.Record.successor <- Option.map Types.Block_id.of_int b.b_succ;
      r.Record.stamp <- b.b_stamp)
    snap.Lld_core.Checkpoint.blocks;
  List.iter
    (fun (l : Lld_core.Checkpoint.list_entry) ->
      let r = List_table.anchor t.lists (Types.List_id.of_int l.l_id) in
      r.Record.exists <- true;
      r.Record.first <- Option.map Types.Block_id.of_int l.l_first;
      r.Record.last <- Option.map Types.Block_id.of_int l.l_last;
      r.Record.lstamp <- l.l_stamp;
      r.Record.l_owner <- Option.map Types.Aru_id.of_int l.l_owner)
    snap.Lld_core.Checkpoint.lists;
  let chunks = replay_journal t in
  Block_map.rebuild_free t.blocks;
  List_table.rebuild_free t.lists;
  (* a fresh checkpoint writes the recovered data home and restarts the
     journal under a new epoch *)
  checkpoint t;
  (t, chunks)
