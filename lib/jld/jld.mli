(** JLD: a journaling, update-in-place implementation of the Logical
    Disk interface.

    The paper closes (§5.4) with: "Other implementations of the Logical
    Disk will have to utilize at least a meta-data update log to achieve
    similar performance and to fully support multiple shadow states."
    This module is that other implementation:

    - logical block [i] lives at a {e fixed} disk address — reads never
      fragment, but in-place writes seek;
    - every operation (meta-data {e and} ARU data) first goes to a
      {e write-ahead journal} at the front of the partition, appended
      sequentially in checksummed group-commit chunks;
    - the in-memory shadow machinery is the same as LLD's (the
      alternative-record mesh, per-ARU list-operation logs, commit-time
      replay), so concurrent ARUs have identical semantics;
    - a {e checkpoint} makes the journal's effects home: journaled data
      is written in place (write-ahead, so torn in-place writes are
      repaired by replay), the block/list tables are written to
      alternating table regions, and the journal restarts under a new
      epoch.

    It satisfies {!Lld_core.Ld_intf.S}, so the Minix file system runs on
    it unchanged — the interchangeability the paper claims for LD
    implementations (§2).  Recovery semantics match LLD's: all-or-none
    per ARU, allocations of undone ARUs swept. *)

type t

type config = {
  cost : Lld_sim.Cost.t;
  cache_blocks : int;  (** LRU over in-place reads *)
  buffer_blocks : int;  (** journal chunk buffer size (group commit) *)
  journal_fraction : float;  (** share of the partition used as journal *)
  dirty_limit_blocks : int;
      (** checkpoint when this much committed data waits to be written
          home (the write-back bound of a real buffer cache) *)
}

val default_config : config

val create : ?config:config -> Lld_disk.Disk.t -> t
(** Format the partition: superblock, empty tables, empty journal. *)

val recover : ?config:config -> Lld_disk.Disk.t -> t * int
(** Mount after a crash: restore the newest valid tables, replay the
    journal (buffering ARU entries until their commit records), sweep
    undone allocations, and checkpoint.  Returns the instance and the
    number of journal chunks replayed. *)

val checkpoint : t -> unit
(** Flush, write journaled data home, persist the tables, restart the
    journal. *)

(** The Logical Disk interface (see {!Lld_core.Ld_intf.S}). *)

val begin_aru : t -> Lld_core.Types.Aru_id.t
val end_aru : t -> Lld_core.Types.Aru_id.t -> unit
val abort_aru : t -> Lld_core.Types.Aru_id.t -> unit
val with_aru : t -> (Lld_core.Types.Aru_id.t -> 'a) -> 'a

val submit_commit : t -> Lld_core.Types.Aru_id.t -> unit
(** JLD has no group-commit engine: commits immediately ({!end_aru}). *)

val flush_commits : t -> int
(** Always 0 — the commit queue is always empty here. *)

val new_list : t -> ?aru:Lld_core.Types.Aru_id.t -> unit -> Lld_core.Types.List_id.t

val new_block :
  t ->
  ?aru:Lld_core.Types.Aru_id.t ->
  list:Lld_core.Types.List_id.t ->
  pred:Lld_core.Summary.pred ->
  unit ->
  Lld_core.Types.Block_id.t

val write : t -> ?aru:Lld_core.Types.Aru_id.t -> Lld_core.Types.Block_id.t -> bytes -> unit
val read : t -> ?aru:Lld_core.Types.Aru_id.t -> Lld_core.Types.Block_id.t -> bytes
val delete_block : t -> ?aru:Lld_core.Types.Aru_id.t -> Lld_core.Types.Block_id.t -> unit
val delete_list : t -> ?aru:Lld_core.Types.Aru_id.t -> Lld_core.Types.List_id.t -> unit
val flush : t -> unit
val list_exists : t -> ?aru:Lld_core.Types.Aru_id.t -> Lld_core.Types.List_id.t -> bool
val block_allocated : t -> ?aru:Lld_core.Types.Aru_id.t -> Lld_core.Types.Block_id.t -> bool

val block_member :
  t -> ?aru:Lld_core.Types.Aru_id.t -> Lld_core.Types.Block_id.t -> Lld_core.Types.List_id.t option

val list_blocks :
  t -> ?aru:Lld_core.Types.Aru_id.t -> Lld_core.Types.List_id.t -> Lld_core.Types.Block_id.t list

val lists : t -> Lld_core.Types.List_id.t list
val capacity : t -> int
val allocated_blocks : t -> int
val block_bytes : t -> int
val scavenge : t -> int
val orphan_blocks : t -> Lld_core.Types.Block_id.t list
val clock : t -> Lld_sim.Clock.t
val cost_model : t -> Lld_sim.Cost.t
val counters : t -> Lld_core.Counters.t

val set_obs : t -> Lld_obs.Obs.t -> unit
(** Attach an observability handle to this instance and its disk.  The
    journaling implementation records only the [disk] spans (via the
    device); it has no log-structured phases to trace. *)

val obs : t -> Lld_obs.Obs.t
