(** Executable specification of the Logical Disk + ARU interface.

    A pure, in-memory reference model of the paper's semantics
    (§3.1–§3.3): a committed map of blocks and lists, one shadow map per
    active ARU, commit-time allocation with owner marks, a per-ARU list
    operation log replayed at commit, and all three read-visibility
    options as a parameter.  No segments, no cleaner, no log, no disk —
    which is exactly what makes it a trustworthy oracle for
    differential testing (lib/model {!Differ}).

    The model satisfies {!Lld_core.Ld_intf.S}, so it can be driven
    through the same {!Lld_core.Op.Make} hook as the real
    implementation.  Identifier allocation mirrors the real allocators
    (lowest-numbered free block id; list-id watermark starting at 1
    with a LIFO free pool), so on identical operation sequences the
    model and {!Lld_core.Lld} hand out identical identifiers. *)

(** Deliberate semantic bugs, injectable to prove the differential
    tester catches and shrinks real divergences (the checker's
    self-test, like [Config.recovery_sweep] for crashcheck). *)
type mutation =
  | Read_committed
      (** option-3 reads return the committed version — in-ARU readers
          lose their own shadow writes *)
  | Commit_drops_data
      (** commit replays the list-operation log but never merges shadow
          data versions *)

val mutation_label : mutation -> string
val mutation_of_string : string -> mutation option
val mutations : mutation list

include Lld_core.Ld_intf.S

val create :
  ?visibility:Lld_core.Config.visibility ->
  ?mutation:mutation ->
  ?capacity:int ->
  ?max_lists:int ->
  ?block_bytes:int ->
  ?shards:int ->
  unit ->
  t
(** Defaults: [Own_shadow] (the paper's option 3), no mutation,
    capacity/max_lists/block size matching {!Lld_disk.Geometry.small}
    would be arbitrary — pass the real instance's values when
    differencing.

    [shards] (default 1) mirrors the {!Lld_core.Shard} facade's
    identifier placement so the model stays an exact allocator oracle
    for a sharded instance: blocks take the lowest free id {e within
    their list's shard} (ids stripe round-robin, [g mod shards]), list
    ids stripe shifted for 1-based numbering with a per-shard watermark
    and LIFO free pool, and a new list goes to the least-loaded shard
    (fewest existing lists, ties to the lowest index).  [capacity] is
    the TOTAL over all shards (and must divide evenly); [max_lists] is
    {e per shard}.  The semantic state — committed map, shadows,
    visibility, commit replay — is untouched: a cross-shard ARU is
    specified as atomic exactly like any other, which is precisely the
    2PC transparency claim the differ tests. *)

val visibility : t -> Lld_core.Config.visibility
val aru_active : t -> Lld_core.Types.Aru_id.t -> bool
val active_arus : t -> Lld_core.Types.Aru_id.t list

val commit_pending : t -> Lld_core.Types.Aru_id.t -> bool
(** Whether this ARU sits in the commit queue (mirrors
    {!Lld_core.Lld.commit_pending}). *)

val flush_commit_steps : t -> (unit -> unit) -> int
(** Spec-only stepped {!flush_commits}: commits the queued ARUs one at
    a time in FIFO order, calling the callback after each, so a differ
    can record a crash frontier at every per-ARU boundary inside a
    group-committed batch (the batch is atomic {e per ARU}, not as a
    whole — see DESIGN.md §5.11).  [flush_commits t =
    flush_commit_steps t ignore]. *)

val frontier_summary : ?shard:int -> t -> string
(** Canonical rendering of the committed state as crash recovery would
    restore it at this instant: in-flight (and aborted) ARUs erased the
    way the consistency sweep erases them — allocated blocks on no list
    are dropped, owner-marked (necessarily empty) lists are dropped.
    Two states are crash-equivalent iff their summaries are equal.

    [?shard] projects the rendering onto one shard of the sharded
    placement (only lists routed there, and their member blocks).  With
    independent per-shard logs a crash keeps an arbitrary durable
    prefix {e per shard}, so the sharded differ records a frontier
    chain per shard and checks each recovered shard projection against
    its own chain. *)
