(** Reference-model differential tester.

    Generates multi-client {!Program}s, runs each against the executable
    specification ({!Model}) and the real log-structured implementation
    ({!Lld_core.Lld}) through the shared {!Lld_core.Op.Make} hook, and
    compares every observable result, the final committed state, and —
    on crash cases — the state recovered from sampled crash points
    against the model's crash frontier (every recovered disk must equal
    the model with each in-flight ARU fully committed or fully absent).

    Identifier allocation in the model mirrors the real allocators, so
    identifiers, results and error strings are compared directly.

    Everything is seeded: [fuzz ~seed ~budget] is a pure function of its
    arguments, and a failing case's rendered report reproduces
    bit-for-bit. *)

type backend = Mem | File

type config = {
  visibility : Lld_core.Config.visibility;
  mutation : Model.mutation option;
      (** injected specification bug (self-test); a divergence is then
          the {e expected} outcome *)
  backend : backend;
  clients : int;
  ops : int;  (** commands per client *)
  crash_every : int;
      (** every [n]-th case also replays sampled crash points
          ([0] = never) *)
  crash_points : int;  (** crash-point sample budget per crash case *)
  granularity : int;  (** torn-write granularity in bytes *)
  group_commit : bool;
      (** schedule commits through the group-commit engine: [Commit]
          commands become [Submit_commit], and both sides' queues are
          drained in lockstep whenever the real instance reports a
          batch due (and at quiescence).  The model flushes stepwise,
          extending the crash frontier with every per-ARU boundary
          inside a batch — a torn batched commit record must recover
          to one of those states. *)
  shards : int;
      (** drive the real side as [shards] {!Lld_core.Shard} instances
          behind the sharded facade (default 1 — a bit-identical
          passthrough to the flat {!Lld_core.Lld}).  With more, the
          same programs exercise cross-shard ARUs and their two-phase
          commits: the flat model stays the union oracle (a committed
          ARU's effects are atomic wherever its blocks live), only
          identifier placement is mirrored (Model [?shards]).  Crash
          cases record one interleaved global write trace over all
          shard disks and recover the whole array per crash point with
          {!Lld_core.Shard.recover} — an ARU decided on its
          coordinator but not yet propagated to a participant counts
          as committed, which is exactly the frontier state the
          model's atomic commit already noted. *)
}

val default_config : config
(** Own-shadow visibility, no mutation, in-memory backend, 2 clients,
    40 commands each, crash points on every 4th case (12 points,
    512-byte granularity), no group commit, one shard. *)

(** Why a case diverged. *)
type kind =
  | Step_mismatch  (** an operation returned different results *)
  | Final_state_mismatch  (** committed states differ after quiescence *)
  | Crash_mismatch
      (** a recovered disk state is not on the model's crash frontier *)

type divergence = {
  dv_kind : kind;
  dv_detail : string list;  (** human-readable description *)
  dv_trail : string list;  (** executed operations, resolved and timed *)
}

type failure = {
  fl_case_index : int;  (** 1-based index of the diverging case *)
  fl_case_seed : int;
  fl_program : Program.t;
  fl_divergence : divergence;
  fl_shrunk : Program.t;  (** minimal program still diverging *)
  fl_shrunk_divergence : divergence;
  fl_shrink_execs : int;  (** executions the shrinker spent *)
}

type report = {
  rp_seed : int;
  rp_config : config;
  rp_cases : int;  (** cases executed (≤ budget; stops at divergence) *)
  rp_ops : int;  (** operations executed across all cases *)
  rp_skipped : int;  (** commands skipped by resolution *)
  rp_crash_cases : int;
  rp_crash_points : int;  (** crash points checked across all cases *)
  rp_failure : failure option;
}

val ok : report -> bool

val run_program :
  ?crash:bool ->
  ?obs_for:(Lld_sim.Clock.t -> Lld_obs.Obs.t) ->
  config -> seed:int -> Program.t -> divergence option
(** Execute one program on a fresh model + real pair.  [seed] only
    influences crash-point sampling.  [crash] (default false) enables
    the crash-composition phase.  [obs_for] (default: none) builds an
    observability handle from the run's virtual clock and attaches it
    to the real instance — probes never charge the clock, so the run is
    bit-identical with or without it. *)

val dump_forensics :
  ?crash:bool ->
  dir:string ->
  label:string ->
  config -> seed:int -> Program.t -> divergence option * string list
(** Re-run a (typically shrunk) diverging program with full tracing and
    the flight recorder live, then dump the black-box bundle
    ([<label>.flight.jsonl], [<label>.trace.json],
    [<label>.metrics.json]) into [dir] (created if missing).  Returns
    the re-run's divergence — equal to the original, observability is
    effect-free — and the written paths. *)

val fuzz : ?progress:(case:int -> unit) -> seed:int -> budget:int ->
  config -> report
(** Generate and check [budget] cases.  Stops at the first divergence,
    shrinks it with a bounded delta-debugging loop, and reports the
    minimal program. *)

val pp_divergence : Format.formatter -> divergence -> unit
val pp_report : Format.formatter -> report -> unit
(** Deterministic rendering: equal seeds and configs produce
    byte-identical output. *)
