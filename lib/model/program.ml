module Rng = Lld_sim.Rng

type cmd =
  | Begin
  | Commit
  | Abort
  | New_list
  | New_block of { list_ref : int; pred_ref : int option }
  | Write of { block_ref : int; tag : int }
  | Read of { block_ref : int }
  | Delete_block of { block_ref : int }
  | Delete_list of { list_ref : int }
  | List_exists of { list_ref : int }
  | Block_allocated of { block_ref : int }
  | Block_member of { block_ref : int }
  | List_blocks of { list_ref : int }
  | Lists
  | Scavenge
  | Probe_dead of { which : int }
  | Read_other of { peer : int; block_ref : int }

type step = { client : int; cmd : cmd }
type t = step array

(* Weighted command distribution: heavy on the mutating core, light on
   maintenance and error-path probes. *)
let gen_cmd rng ~clients =
  let r = Rng.int rng 1_000_000 in
  let pick = Rng.int rng 110 in
  if pick < 10 then Begin
  else if pick < 19 then Commit
  else if pick < 22 then Abort
  else if pick < 30 then New_list
  else if pick < 46 then
    New_block
      { list_ref = r; pred_ref = (if Rng.bool rng then Some (Rng.int rng 64) else None) }
  else if pick < 64 then Write { block_ref = r; tag = Rng.int rng 0x1000000 }
  else if pick < 78 then Read { block_ref = r }
  else if pick < 84 then Delete_block { block_ref = r }
  else if pick < 87 then Delete_list { list_ref = r }
  else if pick < 90 then List_exists { list_ref = r }
  else if pick < 93 then Block_allocated { block_ref = r }
  else if pick < 96 then Block_member { block_ref = r }
  else if pick < 100 then List_blocks { list_ref = r }
  else if pick < 102 then Lists
  else if pick < 104 then Scavenge
  else if pick < 107 then Probe_dead { which = r }
  else if clients > 1 then
    Read_other { peer = 1 + Rng.int rng (clients - 1); block_ref = r }
  else Read { block_ref = r }

let generate ~seed ~clients ~ops =
  if clients < 1 then invalid_arg "Program.generate: clients must be positive";
  if ops < 0 then invalid_arg "Program.generate: ops must be non-negative";
  let rng = Rng.create ~seed in
  let queues =
    Array.init clients (fun _ ->
        Array.to_list (Array.init ops (fun _ -> gen_cmd rng ~clients)))
  in
  let remaining = ref (clients * ops) in
  let out = ref [] in
  while !remaining > 0 do
    let nonempty =
      Array.to_list queues
      |> List.mapi (fun i q -> (i, q))
      |> List.filter (fun (_, q) -> q <> [])
    in
    let c, q = List.nth nonempty (Rng.int rng (List.length nonempty)) in
    (match q with
    | cmd :: rest ->
      queues.(c) <- rest;
      out := { client = c; cmd } :: !out
    | [] -> assert false);
    decr remaining
  done;
  Array.of_list (List.rev !out)

let pp_cmd ppf = function
  | Begin -> Format.pp_print_string ppf "begin"
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"
  | New_list -> Format.pp_print_string ppf "new-list"
  | New_block { list_ref; pred_ref } ->
    Format.fprintf ppf "new-block list@%d%s" list_ref
      (match pred_ref with
      | None -> ""
      | Some p -> Printf.sprintf " pred@%d" p)
  | Write { block_ref; tag } ->
    Format.fprintf ppf "write block@%d tag#%06x" block_ref tag
  | Read { block_ref } -> Format.fprintf ppf "read block@%d" block_ref
  | Delete_block { block_ref } ->
    Format.fprintf ppf "delete-block block@%d" block_ref
  | Delete_list { list_ref } ->
    Format.fprintf ppf "delete-list list@%d" list_ref
  | List_exists { list_ref } ->
    Format.fprintf ppf "list-exists list@%d" list_ref
  | Block_allocated { block_ref } ->
    Format.fprintf ppf "block-allocated block@%d" block_ref
  | Block_member { block_ref } ->
    Format.fprintf ppf "block-member block@%d" block_ref
  | List_blocks { list_ref } -> Format.fprintf ppf "list-blocks list@%d" list_ref
  | Lists -> Format.pp_print_string ppf "lists"
  | Scavenge -> Format.pp_print_string ppf "scavenge"
  | Probe_dead { which } -> Format.fprintf ppf "probe-dead %d" which
  | Read_other { peer; block_ref } ->
    Format.fprintf ppf "read-other +%d block@%d" peer block_ref

let pp_step ppf { client; cmd } = Format.fprintf ppf "c%d: %a" client pp_cmd cmd

let pp ppf (p : t) =
  Array.iteri (fun i s -> Format.fprintf ppf "#%-3d %a@," i pp_step s) p
