(** Multi-client programs for the differential tester.

    A program is a deterministic interleaving of per-client command
    streams.  Commands are {e symbolic}: object references are indices
    resolved at execution time against the client's live objects (as the
    model sees them), so a program stays meaningful when the shrinker
    deletes earlier commands — a dangling reference degrades into a
    different-but-valid choice or a skip, never into noise.

    Generation and scheduling are driven entirely by {!Lld_sim.Rng}, so
    [generate ~seed ~clients ~ops] is a pure function of its
    arguments. *)

type cmd =
  | Begin  (** open an ARU (skipped if the client already has one) *)
  | Commit  (** commit the open ARU (skipped if none) *)
  | Abort  (** abort the open ARU (skipped if none) *)
  | New_list
  | New_block of { list_ref : int; pred_ref : int option }
      (** insert into an own live list; [pred_ref] picks a predecessor
          among the list's current members ([None] or empty list =
          head insertion) *)
  | Write of { block_ref : int; tag : int }
      (** overwrite an own live block with a payload derived from
          [tag] *)
  | Read of { block_ref : int }
  | Delete_block of { block_ref : int }
  | Delete_list of { list_ref : int }
  | List_exists of { list_ref : int }
  | Block_allocated of { block_ref : int }
  | Block_member of { block_ref : int }
  | List_blocks of { list_ref : int }
  | Lists
  | Scavenge
  | Probe_dead of { which : int }
      (** read-only operation on a dead or never-allocated block id —
          error-path coverage *)
  | Read_other of { peer : int; block_ref : int }
      (** read-only probe of another client's block (cross-client
          visibility: the interesting part of options 1 and 2) *)

type step = { client : int; cmd : cmd }
type t = step array

val generate : seed:int -> clients:int -> ops:int -> t
(** [ops] commands per client, interleaved at command granularity by a
    seeded scheduler.  Deterministic: equal arguments, equal program. *)

val pp_cmd : Format.formatter -> cmd -> unit
val pp_step : Format.formatter -> step -> unit

val pp : Format.formatter -> t -> unit
(** One [#i cN: cmd] line per step. *)
