module Config = Lld_core.Config
module Types = Lld_core.Types
module Errors = Lld_core.Errors
module Summary = Lld_core.Summary

type mutation = Read_committed | Commit_drops_data

let mutation_label = function
  | Read_committed -> "read-committed"
  | Commit_drops_data -> "commit-drops-data"

let mutations = [ Read_committed; Commit_drops_data ]

let mutation_of_string s =
  List.find_opt (fun m -> mutation_label m = s) mutations

(* Committed state: one record per identifier ever touched.  A block id
   absent from the table is free with empty content. *)
type mblock = {
  mutable c_alloc : bool;
  mutable c_member : int option;
  mutable c_data : bytes option; (* None = zeroes *)
  mutable c_stamp : int;
  mutable c_owner : int option; (* commit-time allocation mark *)
}

type mlist = {
  mutable c_exists : bool;
  mutable c_blocks : int list; (* members, list order *)
  mutable c_lowner : int option;
}

(* Shadow overlays: copy-on-write per-ARU versions over the committed
   map.  [s_data = Some _] iff the ARU wrote the block (a copied-only
   shadow reads through to the committed content, which cannot change
   underneath it while the overlay exists: only the owner mutates). *)
type sblock = {
  mutable s_alloc : bool;
  mutable s_member : int option;
  mutable s_data : bytes option;
  mutable s_stamp : int;
  s_owner : int option;
      (* allocation owner as of the copy — visibility checks consult the
         owner recorded on the version they resolve to, so a shadow keeps
         the mark it was copied with even if the committed mark moves
         (scavenge + re-allocation) *)
}

type slist = {
  mutable s_exists : bool;
  mutable s_blocks : int list;
  s_lowner : int option;
}

type logop =
  | L_insert of { list : int; block : int; pred : Summary.pred }
  | L_delete_block of int
  | L_delete_list of int

type aru = {
  a_id : int;
  a_blocks : (int, sblock) Hashtbl.t;
  a_lists : (int, slist) Hashtbl.t;
  mutable a_log : logop list; (* reversed *)
  mutable a_owned : int list; (* list ids allocated inside *)
}

(* Per-shard identifier allocators (one entry when unsharded).  The
   committed map stays flat and global — sharding only changes WHICH
   identifiers get handed out, mirroring {!Lld_core.Shard}'s placement:
   blocks stripe round-robin by id within their list's shard, list ids
   stripe shifted for their 1-based numbering, and each shard keeps its
   own local watermark and LIFO free pool (local ids, globalised on
   allocation). *)
type shard_alloc = {
  mutable sa_lfree : int list; (* local list ids *)
  mutable sa_lwatermark : int;
  mutable sa_lexisting : int;
}

type t = {
  t_visibility : Config.visibility;
  mutation : mutation option;
  blocks : (int, mblock) Hashtbl.t;
  lists : (int, mlist) Hashtbl.t;
  arus : (int, aru) Hashtbl.t;
  mutable next_aru : int;
  mutable stamp : int;
  (* identifier allocators, mirroring Block_map / List_table *)
  held : (int, unit) Hashtbl.t; (* global block ids currently allocated *)
  lalloc : shard_alloc array; (* per-shard list allocators *)
  t_shards : int;
  t_capacity : int; (* total, summed over shards *)
  t_max_lists : int; (* per shard *)
  t_block_bytes : int;
  t_clock : Lld_sim.Clock.t;
  t_counters : Lld_core.Counters.t;
  mutable t_obs : Lld_obs.Obs.t;
  t_commit_q : int Queue.t; (* group-commit intents, FIFO *)
}

let create ?(visibility = Config.Own_shadow) ?mutation ?(capacity = 4096)
    ?(max_lists = 512) ?(block_bytes = 4096) ?(shards = 1) () =
  if shards < 1 then invalid_arg "Model.create: shards must be >= 1";
  if capacity mod shards <> 0 then
    invalid_arg "Model.create: capacity must divide evenly across shards";
  {
    t_visibility = visibility;
    mutation;
    blocks = Hashtbl.create 64;
    lists = Hashtbl.create 16;
    arus = Hashtbl.create 8;
    next_aru = 1;
    stamp = 0;
    held = Hashtbl.create 64;
    lalloc =
      Array.init shards (fun _ ->
          { sa_lfree = []; sa_lwatermark = 1; sa_lexisting = 0 });
    t_shards = shards;
    t_capacity = capacity;
    t_max_lists = max_lists;
    t_block_bytes = block_bytes;
    t_clock = Lld_sim.Clock.create ();
    t_counters = Lld_core.Counters.create ();
    t_obs = Lld_obs.Obs.null;
    t_commit_q = Queue.create ();
  }

let visibility t = t.t_visibility
let next_stamp t =
  t.stamp <- t.stamp + 1;
  t.stamp

(* ------------------------------------------------------------------ *)
(* Identifier allocation (mirrors Block_map / List_table per shard,
   composed through Shard's placement maps)                            *)

let list_shard t g = (g - 1) mod t.t_shards
let list_global t ~shard local = ((local - 1) * t.t_shards) + shard + 1

(* Lowest free LOCAL id within the shard — i.e. the lowest free global
   id in the shard's residue class, exactly what the shard's own
   Block_map would hand out. *)
let alloc_block_id t ~shard =
  let per_shard = t.t_capacity / t.t_shards in
  let rec scan local =
    if local >= per_shard then None
    else
      let g = (local * t.t_shards) + shard in
      if Hashtbl.mem t.held g then scan (local + 1) else Some g
  in
  match scan 0 with
  | None -> None
  | Some g ->
    Hashtbl.replace t.held g ();
    Some g

let release_block_id t i = Hashtbl.remove t.held i

(* New lists go to the least-loaded shard (fewest existing lists, ties
   to the lowest index) — Shard.pick_list_shard's rule, state-derivable
   so it survives remounts identically. *)
let pick_list_shard t =
  let best = ref 0 in
  for s = 1 to t.t_shards - 1 do
    if t.lalloc.(s).sa_lexisting < t.lalloc.(!best).sa_lexisting then best := s
  done;
  !best

let alloc_list_id t =
  let shard = pick_list_shard t in
  let a = t.lalloc.(shard) in
  if a.sa_lexisting >= t.t_max_lists then None
  else begin
    a.sa_lexisting <- a.sa_lexisting + 1;
    match a.sa_lfree with
    | local :: rest ->
      a.sa_lfree <- rest;
      Some (list_global t ~shard local)
    | [] ->
      let local = a.sa_lwatermark in
      a.sa_lwatermark <- local + 1;
      Some (list_global t ~shard local)
  end

let release_list_id t g =
  let shard = list_shard t g in
  let local = ((g - 1) / t.t_shards) + 1 in
  let a = t.lalloc.(shard) in
  a.sa_lfree <- local :: a.sa_lfree;
  a.sa_lexisting <- a.sa_lexisting - 1

(* ------------------------------------------------------------------ *)
(* Committed records                                                   *)

let free_block () =
  { c_alloc = false; c_member = None; c_data = None; c_stamp = 0; c_owner = None }

let free_list () = { c_exists = false; c_blocks = []; c_lowner = None }

let cblock t b =
  match Hashtbl.find_opt t.blocks b with
  | Some r -> r
  | None ->
    let r = free_block () in
    Hashtbl.replace t.blocks b r;
    r

let clist t l =
  match Hashtbl.find_opt t.lists l with
  | Some r -> r
  | None ->
    let r = free_list () in
    Hashtbl.replace t.lists l r;
    r

(* ------------------------------------------------------------------ *)
(* Visibility (paper §3.3)                                             *)

type who = W_simple | W_in of aru

let resolve_who t = function
  | None -> W_simple
  | Some aid -> (
    let i = Types.Aru_id.to_int aid in
    match Hashtbl.find_opt t.arus i with
    | Some a -> W_in a
    | None -> raise (Errors.Unknown_aru aid))

let owner_active t o = Hashtbl.mem t.arus o

let owner_visible t who owner =
  match owner with
  | None -> true
  | Some o -> (
    if not (owner_active t o) then true
    else match who with W_in a -> a.a_id = o | W_simple -> false)

(* The block as one logical view: allocation, membership, content. *)
type bview = {
  v_alloc : bool;
  v_member : int option;
  v_data : bytes option;
  v_owner : int option;
}

let committed_bview r =
  {
    v_alloc = r.c_alloc;
    v_member = r.c_member;
    v_data = r.c_data;
    v_owner = r.c_owner;
  }

let shadow_bview t b (s : sblock) =
  let data =
    match s.s_data with Some d -> Some d | None -> (cblock t b).c_data
  in
  { v_alloc = s.s_alloc; v_member = s.s_member; v_data = data; v_owner = s.s_owner }

let shadow_peek t (a : aru) b =
  match Hashtbl.find_opt a.a_blocks b with
  | Some s -> shadow_bview t b s
  | None -> committed_bview (cblock t b)

(* Newest shadow version across all ARUs (option 1); with disjoint
   clients at most one exists, ties break deterministically anyway. *)
let newest_shadow t b =
  Hashtbl.fold
    (fun _ (a : aru) best ->
      match Hashtbl.find_opt a.a_blocks b with
      | None -> best
      | Some s -> (
        match best with
        | Some (bs, ba) when (bs.s_stamp, ba) >= (s.s_stamp, a.a_id) -> best
        | _ -> Some (s, a.a_id)))
    t.arus None

let visible_bview t who b =
  match (t.t_visibility, who) with
  | Config.Own_shadow, W_in a -> (
    match t.mutation with
    | Some Read_committed -> committed_bview (cblock t b)
    | _ -> shadow_peek t a b)
  | Config.Own_shadow, W_simple | Config.Committed_only, _ ->
    committed_bview (cblock t b)
  | Config.Any_shadow, _ -> (
    match newest_shadow t b with
    | Some (s, _) -> shadow_bview t b s
    | None -> committed_bview (cblock t b))

(* Lists: options 1 and 3 behave identically (own shadow inside an ARU,
   committed otherwise); option 2 is always committed. *)
let visible_list_view t who l =
  match (t.t_visibility, who) with
  | (Config.Own_shadow | Config.Any_shadow), W_in a -> (
    match Hashtbl.find_opt a.a_lists l with
    | Some s -> (s.s_exists, s.s_blocks, s.s_lowner)
    | None ->
      let r = clist t l in
      (r.c_exists, r.c_blocks, r.c_lowner))
  | (Config.Own_shadow | Config.Any_shadow), W_simple
  | Config.Committed_only, _ ->
    let r = clist t l in
    (r.c_exists, r.c_blocks, r.c_lowner)

let require_visible_block t who b (v : bview) =
  if not (v.v_alloc && owner_visible t who v.v_owner) then
    raise (Errors.Unallocated_block (Types.Block_id.of_int b))

let require_visible_list t who l ~exists ~owner =
  if not (exists && owner_visible t who owner) then
    raise (Errors.Unallocated_list (Types.List_id.of_int l))

(* ------------------------------------------------------------------ *)
(* Shadow copy-on-write                                                *)

let shadow_block (a : aru) t b =
  match Hashtbl.find_opt a.a_blocks b with
  | Some s -> s
  | None ->
    let c = cblock t b in
    let s =
      {
        s_alloc = c.c_alloc;
        s_member = c.c_member;
        s_data = None;
        s_stamp = c.c_stamp;
        s_owner = c.c_owner;
      }
    in
    Hashtbl.replace a.a_blocks b s;
    s

let shadow_list (a : aru) t l =
  match Hashtbl.find_opt a.a_lists l with
  | Some s -> s
  | None ->
    let c = clist t l in
    let s =
      { s_exists = c.c_exists; s_blocks = c.c_blocks; s_lowner = c.c_lowner }
    in
    Hashtbl.replace a.a_lists l s;
    s

(* ------------------------------------------------------------------ *)
(* Ordered-list splicing (mirrors Splice)                              *)

let insert_into blocks ~block ~pred =
  match pred with
  | Summary.Head -> block :: blocks
  | Summary.After p ->
    let pi = Types.Block_id.to_int p in
    let rec go = function
      | [] -> [] (* unreachable: caller validated membership *)
      | x :: rest when x = pi -> x :: block :: rest
      | x :: rest -> x :: go rest
    in
    go blocks

let remove_from blocks block = List.filter (fun x -> x <> block) blocks

(* ------------------------------------------------------------------ *)
(* The LD operations                                                   *)

let begin_aru t =
  t.t_counters.Lld_core.Counters.arus_begun <-
    t.t_counters.Lld_core.Counters.arus_begun + 1;
  let id = t.next_aru in
  t.next_aru <- id + 1;
  let a =
    {
      a_id = id;
      a_blocks = Hashtbl.create 8;
      a_lists = Hashtbl.create 4;
      a_log = [];
      a_owned = [];
    }
  in
  Hashtbl.replace t.arus id a;
  Types.Aru_id.of_int id

let new_list t ?aru () =
  t.t_counters.Lld_core.Counters.new_lists <-
    t.t_counters.Lld_core.Counters.new_lists + 1;
  let who = resolve_who t aru in
  let lid =
    match alloc_list_id t with Some l -> l | None -> raise Errors.Disk_full
  in
  let stamp = next_stamp t in
  ignore stamp;
  let r = clist t lid in
  r.c_exists <- true;
  r.c_blocks <- [];
  (match who with
  | W_in a ->
    r.c_lowner <- Some a.a_id;
    a.a_owned <- lid :: a.a_owned
  | W_simple -> r.c_lowner <- None);
  Types.List_id.of_int lid

let new_block t ?aru ~list ~pred () =
  t.t_counters.Lld_core.Counters.new_blocks <-
    t.t_counters.Lld_core.Counters.new_blocks + 1;
  let who = resolve_who t aru in
  let li = Types.List_id.to_int list in
  (* validate against the view the insertion will run in *)
  let view_list, view_block =
    match who with
    | W_in a ->
      ( (fun l ->
          match Hashtbl.find_opt a.a_lists l with
          | Some s -> (s.s_exists, s.s_blocks, s.s_lowner)
          | None ->
            let r = clist t l in
            (r.c_exists, r.c_blocks, r.c_lowner)),
        fun b -> shadow_peek t a b )
    | W_simple ->
      ( (fun l ->
          let r = clist t l in
          (r.c_exists, r.c_blocks, r.c_lowner)),
        fun b -> committed_bview (cblock t b) )
  in
  let exists, _, owner = view_list li in
  require_visible_list t who li ~exists ~owner;
  (match pred with
  | Summary.Head -> ()
  | Summary.After p ->
    let pv = view_block (Types.Block_id.to_int p) in
    require_visible_block t who (Types.Block_id.to_int p) pv;
    if pv.v_member <> Some li then raise (Errors.Block_not_on_list p));
  (* the block lives on its list's shard: allocation routes by list *)
  let bid =
    match alloc_block_id t ~shard:(list_shard t li) with
    | Some b -> b
    | None -> raise Errors.Disk_full
  in
  let stamp = next_stamp t in
  (* allocation always happens in the committed state (paper §3.3) *)
  let c = cblock t bid in
  c.c_alloc <- true;
  c.c_member <- None;
  c.c_data <- None;
  c.c_stamp <- stamp;
  c.c_owner <- (match who with W_in a -> Some a.a_id | W_simple -> None);
  (match who with
  | W_in a ->
    let sl = shadow_list a t li in
    sl.s_blocks <- insert_into sl.s_blocks ~block:bid ~pred;
    let sb = shadow_block a t bid in
    sb.s_member <- Some li;
    a.a_log <- L_insert { list = li; block = bid; pred } :: a.a_log
  | W_simple ->
    let cl = clist t li in
    cl.c_blocks <- insert_into cl.c_blocks ~block:bid ~pred;
    c.c_member <- Some li);
  Types.Block_id.of_int bid

let write t ?aru block data =
  if Bytes.length data <> t.t_block_bytes then
    invalid_arg "Lld.write: data must be exactly one block";
  t.t_counters.Lld_core.Counters.writes <-
    t.t_counters.Lld_core.Counters.writes + 1;
  let who = resolve_who t aru in
  let b = Types.Block_id.to_int block in
  let stamp = next_stamp t in
  match who with
  | W_in a ->
    require_visible_block t who b (shadow_peek t a b);
    let s = shadow_block a t b in
    s.s_data <- Some (Bytes.copy data);
    s.s_stamp <- stamp
  | W_simple ->
    let c = cblock t b in
    require_visible_block t who b (committed_bview c);
    c.c_data <- Some (Bytes.copy data);
    c.c_stamp <- stamp

let read t ?aru block =
  t.t_counters.Lld_core.Counters.reads <-
    t.t_counters.Lld_core.Counters.reads + 1;
  let who = resolve_who t aru in
  let b = Types.Block_id.to_int block in
  let v = visible_bview t who b in
  require_visible_block t who b v;
  match v.v_data with
  | Some d -> Bytes.copy d
  | None -> Bytes.make t.t_block_bytes '\000'

let delete_block t ?aru block =
  t.t_counters.Lld_core.Counters.delete_blocks <-
    t.t_counters.Lld_core.Counters.delete_blocks + 1;
  let who = resolve_who t aru in
  let b = Types.Block_id.to_int block in
  match who with
  | W_in a ->
    let peek = shadow_peek t a b in
    require_visible_block t who b peek;
    (match peek.v_member with
    | Some l ->
      (* shadow unlink skips when the list was (lazily) shadow-deleted *)
      let exists, _ =
        match Hashtbl.find_opt a.a_lists l with
        | Some s -> (s.s_exists, s.s_blocks)
        | None ->
          let r = clist t l in
          (r.c_exists, r.c_blocks)
      in
      if not exists then raise (Errors.Block_not_on_list block);
      let sl = shadow_list a t l in
      sl.s_blocks <- remove_from sl.s_blocks b
    | None -> ());
    let s = shadow_block a t b in
    s.s_alloc <- false;
    s.s_member <- None;
    s.s_data <- None;
    s.s_stamp <- next_stamp t;
    a.a_log <- L_delete_block b :: a.a_log
  | W_simple ->
    let c = cblock t b in
    require_visible_block t who b (committed_bview c);
    (match c.c_member with
    | Some l ->
      let cl = clist t l in
      cl.c_blocks <- remove_from cl.c_blocks b
    | None -> ());
    c.c_alloc <- false;
    c.c_member <- None;
    c.c_data <- None;
    c.c_stamp <- next_stamp t;
    c.c_owner <- None;
    release_block_id t b

(* Deallocate every member of a committed list, then the list itself.
   Shared by simple deletion, commit replay and scavenging. *)
let delete_list_committed t l =
  let cl = clist t l in
  List.iter
    (fun b ->
      let c = cblock t b in
      c.c_alloc <- false;
      c.c_member <- None;
      c.c_data <- None;
      c.c_owner <- None;
      release_block_id t b)
    cl.c_blocks;
  cl.c_exists <- false;
  cl.c_blocks <- [];
  cl.c_lowner <- None;
  release_list_id t l

let delete_list t ?aru list =
  t.t_counters.Lld_core.Counters.delete_lists <-
    t.t_counters.Lld_core.Counters.delete_lists + 1;
  let who = resolve_who t aru in
  let l = Types.List_id.to_int list in
  match who with
  | W_in a ->
    let exists, owner =
      match Hashtbl.find_opt a.a_lists l with
      | Some s -> (s.s_exists, s.s_lowner)
      | None ->
        let r = clist t l in
        (r.c_exists, r.c_lowner)
    in
    require_visible_list t who l ~exists ~owner;
    (* lazily mark deleted in the shadow; members are deallocated when
       the log replays at commit (paper §5.3) *)
    let sl = shadow_list a t l in
    sl.s_exists <- false;
    sl.s_blocks <- [];
    a.a_log <- L_delete_list l :: a.a_log
  | W_simple ->
    let cl = clist t l in
    require_visible_list t who l ~exists:cl.c_exists ~owner:cl.c_lowner;
    delete_list_committed t l

(* ------------------------------------------------------------------ *)
(* Commit and abort                                                    *)

let replay_log_op t op =
  match op with
  | L_insert { list; block; pred } ->
    let cl = clist t list in
    let cb = cblock t block in
    let pred_ok =
      match pred with
      | Summary.Head -> true
      | Summary.After p -> (cblock t (Types.Block_id.to_int p)).c_member = Some list
    in
    if cl.c_exists && cb.c_alloc && cb.c_member = None && pred_ok then begin
      cl.c_blocks <- insert_into cl.c_blocks ~block ~pred;
      cb.c_member <- Some list
    end
  | L_delete_block b ->
    let c = cblock t b in
    if c.c_alloc then begin
      (match c.c_member with
      | Some l ->
        let cl = clist t l in
        if cl.c_exists then cl.c_blocks <- remove_from cl.c_blocks b
      | None -> ());
      c.c_alloc <- false;
      c.c_member <- None;
      c.c_data <- None;
      c.c_owner <- None;
      c.c_stamp <- next_stamp t;
      release_block_id t b
    end
  | L_delete_list l ->
    let cl = clist t l in
    if cl.c_exists then delete_list_committed t l

let commit_pending_int t i =
  Queue.fold (fun found q -> found || q = i) false t.t_commit_q

let commit_pending t aid = commit_pending_int t (Lld_core.Types.Aru_id.to_int aid)

(* One ARU's commit, given its record: replay the log, merge shadow
   data, clear owner marks.  Shared by [end_aru] and the group-commit
   flush — the batch is just this, per member, in FIFO order. *)
let commit_now t i (a : aru) =
  (* 1. replay the list-operation log in the committed state *)
  List.iter (replay_log_op t) (List.rev a.a_log);
  (* 2. merge shadow data versions into the committed state *)
  (match t.mutation with
  | Some Commit_drops_data -> ()
  | _ ->
    Hashtbl.iter
      (fun b (s : sblock) ->
        match s.s_data with
        | Some d when s.s_alloc ->
          let c = cblock t b in
          if c.c_alloc && s.s_stamp >= c.c_stamp then begin
            c.c_data <- Some d;
            c.c_stamp <- s.s_stamp
          end
        | Some _ | None -> ())
      a.a_blocks);
  (* 3. the commit clears this ARU's list-allocation owner marks *)
  List.iter
    (fun l ->
      let cl = clist t l in
      match cl.c_lowner with
      | Some o when o = i -> cl.c_lowner <- None
      | Some _ | None -> ())
    a.a_owned;
  Hashtbl.remove t.arus i;
  t.t_counters.Lld_core.Counters.arus_committed <-
    t.t_counters.Lld_core.Counters.arus_committed + 1

let end_aru t aid =
  let i = Types.Aru_id.to_int aid in
  if commit_pending_int t i then raise (Errors.Commit_pending aid);
  let a =
    match Hashtbl.find_opt t.arus i with
    | Some a -> a
    | None -> raise (Errors.Unknown_aru aid)
  in
  commit_now t i a

let abort_aru t aid =
  let i = Types.Aru_id.to_int aid in
  if not (Hashtbl.mem t.arus i) then raise (Errors.Unknown_aru aid);
  if commit_pending_int t i then begin
    (* a queued commit intent is withdrawn, not rejected *)
    let q = Queue.create () in
    Queue.iter (fun k -> if k <> i then Queue.push k q) t.t_commit_q;
    Queue.clear t.t_commit_q;
    Queue.transfer q t.t_commit_q;
    t.t_counters.Lld_core.Counters.commit_queue_aborts <-
      t.t_counters.Lld_core.Counters.commit_queue_aborts + 1
  end;
  Hashtbl.remove t.arus i;
  t.t_counters.Lld_core.Counters.arus_aborted <-
    t.t_counters.Lld_core.Counters.arus_aborted + 1

(* ------------------------------------------------------------------ *)
(* Group commit: the specification.  A queued ARU is frozen (end and
   resubmit refuse it; abort withdraws the intent) and the flush
   commits the queue in FIFO order; each member's commit has exactly
   [end_aru]'s semantics, and the batch is atomic only per member (the
   real engine's batched commit record is all-or-nothing as a unit on
   disk, which recovery presents as per-ARU all-or-nothing — the unit
   the spec cares about). *)

let submit_commit t aid =
  let i = Types.Aru_id.to_int aid in
  if commit_pending_int t i then raise (Errors.Commit_pending aid);
  if not (Hashtbl.mem t.arus i) then raise (Errors.Unknown_aru aid);
  Queue.push i t.t_commit_q;
  t.t_counters.Lld_core.Counters.commits_submitted <-
    t.t_counters.Lld_core.Counters.commits_submitted + 1

(* Spec-only stepped flush: commits the queue one ARU at a time,
   calling [after_each] between members, so a differ can place crash
   frontiers at every per-ARU boundary inside a batch. *)
let flush_commit_steps t after_each =
  let n = ref 0 in
  while not (Queue.is_empty t.t_commit_q) do
    let i = Queue.pop t.t_commit_q in
    (match Hashtbl.find_opt t.arus i with
    | Some a -> commit_now t i a
    | None -> ());
    incr n;
    after_each ()
  done;
  !n

let flush_commits t = flush_commit_steps t (fun () -> ())

let with_aru t f =
  let aru = begin_aru t in
  match f aru with
  | v ->
    end_aru t aru;
    v
  | exception e ->
    abort_aru t aru;
    raise e

let flush _t = ()

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let list_exists t ?aru list =
  let who = resolve_who t aru in
  let l = Types.List_id.to_int list in
  let exists, _, owner = visible_list_view t who l in
  exists && owner_visible t who owner

let block_allocated t ?aru block =
  let who = resolve_who t aru in
  let b = Types.Block_id.to_int block in
  if b < 0 || b >= t.t_capacity then false
  else
    let v = visible_bview t who b in
    v.v_alloc && owner_visible t who v.v_owner

let block_member t ?aru block =
  let who = resolve_who t aru in
  let b = Types.Block_id.to_int block in
  let v = visible_bview t who b in
  if v.v_alloc && owner_visible t who v.v_owner then
    Option.map Types.List_id.of_int v.v_member
  else None

let list_blocks t ?aru list =
  let who = resolve_who t aru in
  let l = Types.List_id.to_int list in
  let exists, blocks, owner = visible_list_view t who l in
  require_visible_list t who l ~exists ~owner;
  List.map Types.Block_id.of_int blocks

let lists t =
  Hashtbl.fold (fun l r acc -> if r.c_exists then l :: acc else acc) t.lists []
  |> List.sort Int.compare
  |> List.map Types.List_id.of_int

let capacity t = t.t_capacity
let allocated_blocks t = Hashtbl.length t.held
let block_bytes t = t.t_block_bytes
let aru_active t aid = Hashtbl.mem t.arus (Types.Aru_id.to_int aid)

let active_arus t =
  Hashtbl.fold (fun i _ acc -> i :: acc) t.arus []
  |> List.sort Int.compare
  |> List.map Types.Aru_id.of_int

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)

let orphan_ids t =
  Hashtbl.fold
    (fun b (c : mblock) acc ->
      if
        c.c_alloc && c.c_member = None
        && (match c.c_owner with None -> true | Some o -> not (owner_active t o))
      then b :: acc
      else acc)
    t.blocks []
  |> List.sort Int.compare

let orphan_blocks t = List.map Types.Block_id.of_int (orphan_ids t)

let scavenge t =
  let freed = ref 0 in
  (* still-empty lists allocated by an ARU that is no longer active;
     processed in descending id order like the runtime, so the list-id
     free pool ends up in the identical state *)
  let dead =
    Hashtbl.fold
      (fun l (r : mlist) acc ->
        match r.c_lowner with
        | Some o when r.c_exists && r.c_blocks = [] && not (owner_active t o) ->
          l :: acc
        | Some _ | None -> acc)
      t.lists []
    |> List.sort (fun a b -> Int.compare b a)
  in
  List.iter
    (fun l ->
      delete_list_committed t l;
      incr freed)
    dead;
  List.iter
    (fun b ->
      let c = cblock t b in
      c.c_alloc <- false;
      c.c_member <- None;
      c.c_data <- None;
      c.c_owner <- None;
      c.c_stamp <- next_stamp t;
      release_block_id t b;
      incr freed)
    (orphan_ids t);
  !freed

(* ------------------------------------------------------------------ *)
(* Measurement / observability stubs (the model is free)               *)

let clock t = t.t_clock
let cost_model _t = Config.default.Config.cost
let counters t = t.t_counters
let set_obs t obs = t.t_obs <- obs
let obs t = t.t_obs

(* ------------------------------------------------------------------ *)
(* Crash frontier                                                      *)

let zero_digest = ref None

let content_digest t = function
  | Some d -> Digest.to_hex (Digest.bytes d)
  | None -> (
    match !zero_digest with
    | Some z -> z
    | None ->
      let z = Digest.to_hex (Digest.bytes (Bytes.make t.t_block_bytes '\000')) in
      zero_digest := Some z;
      z)

let frontier_summary ?shard t =
  (* [?shard] projects the rendering onto one shard of the sharded
     facade's placement: only lists living there (and hence only their
     member blocks — a block routes to its list's shard).  With S
     independent logs a crash preserves an arbitrary per-shard prefix,
     so the differ checks each shard's projection against its own
     frontier chain rather than the flat linear one. *)
  let keep_list l =
    match shard with None -> true | Some s -> list_shard t l = s
  in
  let keep_block b =
    match shard with None -> true | Some s -> b mod t.t_shards = s
  in
  let buf = Buffer.create 256 in
  let lids =
    Hashtbl.fold
      (fun l (r : mlist) acc ->
        (* an owner-marked list is dropped only while still empty: that
           is what recovery's sweep frees (a committed member can only
           appear after the owning ARU died, and then the list
           survives) *)
        if
          keep_list l
          && r.c_exists
          && not (r.c_lowner <> None && r.c_blocks = [])
        then l :: acc
        else acc)
      t.lists []
    |> List.sort Int.compare
  in
  List.iter
    (fun l ->
      let r = clist t l in
      Buffer.add_string buf
        (Printf.sprintf "L%d[%s];" l
           (String.concat "," (List.map string_of_int r.c_blocks))))
    lids;
  let bids =
    Hashtbl.fold
      (fun b (c : mblock) acc ->
        if keep_block b && c.c_alloc && c.c_member <> None then
          (b, c) :: acc
        else acc)
      t.blocks []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (b, (c : mblock)) ->
      Buffer.add_string buf
        (Printf.sprintf "B%d:L%d:%s;" b
           (Option.value ~default:(-1) c.c_member)
           (content_digest t c.c_data)))
    bids;
  Buffer.contents buf
