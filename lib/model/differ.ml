module Rng = Lld_sim.Rng
module Clock = Lld_sim.Clock
module Blk = Lld_util.Blk
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Backend = Lld_disk.Backend
module Config = Lld_core.Config
module Types = Lld_core.Types
module Op = Lld_core.Op
module Lld = Lld_core.Lld
module Shard = Lld_core.Shard
module Disk_layout = Lld_core.Disk_layout
module Cc = Lld_crashcheck.Crashcheck
module Raw = Lld_crashcheck.Crashcheck.Raw

type backend = Mem | File

type config = {
  visibility : Config.visibility;
  mutation : Model.mutation option;
  backend : backend;
  clients : int;
  ops : int;
  crash_every : int;
  crash_points : int;
  granularity : int;
  group_commit : bool;
  shards : int;
}

let default_config =
  {
    visibility = Config.Own_shadow;
    mutation = None;
    backend = Mem;
    clients = 2;
    ops = 40;
    crash_every = 4;
    crash_points = 12;
    granularity = 512;
    group_commit = false;
    shards = 1;
  }

type kind = Step_mismatch | Final_state_mismatch | Crash_mismatch

type divergence = {
  dv_kind : kind;
  dv_detail : string list;
  dv_trail : string list;
}

type failure = {
  fl_case_index : int;
  fl_case_seed : int;
  fl_program : Program.t;
  fl_divergence : divergence;
  fl_shrunk : Program.t;
  fl_shrunk_divergence : divergence;
  fl_shrink_execs : int;
}

type report = {
  rp_seed : int;
  rp_config : config;
  rp_cases : int;
  rp_ops : int;
  rp_skipped : int;
  rp_crash_cases : int;
  rp_crash_points : int;
  rp_failure : failure option;
}

let ok r = r.rp_failure = None

(* Small segments keep seals frequent (dense crash points); plenty of
   them keeps programs of a few hundred operations away from cleaning
   pressure and [Disk_full]. *)
let differ_geom = Geometry.v ~segment_bytes:(32 * 1024) ~num_segments:192 ()

(* The real side is always driven through the sharded facade: with one
   shard it is a bit-identical passthrough to {!Lld} (identifiers,
   results, errors, on-disk image — see test_shard), and with more the
   same differ becomes the cross-shard 2PC checker for free: the flat
   model stays the union oracle, only identifier placement is mirrored
   (Model [?shards]). *)
module Mops = Op.Make (Model)
module Sops = Op.Make (Shard)

(* ------------------------------------------------------------------ *)
(* Command resolution                                                  *)

type client = {
  mutable cl_aru : Types.Aru_id.t option;
  mutable cl_submitted : Types.Aru_id.t option;
      (* last ARU this client queued via Submit_commit and that may
         still sit in the commit queue — an Abort command with no
         active ARU withdraws it (queued-abort path) *)
  mutable cl_lists : int list; (* created list ids, newest first *)
  mutable cl_blocks : int list; (* created block ids, newest first *)
}

(* Resolution consults only the model (the oracle): symbolic references
   become concrete identifiers through the client's own view, so every
   emitted operation targets a live own object — cross-client and
   dead-object access stay confined to the read-only probe commands. *)
let live_lists model c =
  List.filter
    (fun l -> Model.list_exists model ?aru:c.cl_aru (Types.List_id.of_int l))
    (List.rev c.cl_lists)

let live_blocks model c =
  List.filter
    (fun b ->
      Model.block_allocated model ?aru:c.cl_aru (Types.Block_id.of_int b))
    (List.rev c.cl_blocks)

let pick idx = function
  | [] -> None
  | l -> Some (List.nth l (idx mod List.length l))

let payload ~block_bytes tag =
  Bytes.init block_bytes (fun i -> Char.chr ((tag + ((i + 1) * (tag lor 1))) land 0xff))

let resolve model ~block_bytes ~capacity ~group clients ci (cmd : Program.cmd)
    : Op.t option =
  let c = clients.(ci) in
  let aru = c.cl_aru in
  match cmd with
  | Program.Begin -> if aru = None then Some Op.Begin_aru else None
  | Program.Commit ->
    Option.map (fun a -> if group then Op.Submit_commit a else Op.End_aru a) aru
  | Program.Abort -> (
    match aru with
    | Some a -> Some (Op.Abort_aru a)
    | None -> (
      (* no active ARU: withdraw a still-queued commit intent instead,
         exercising the abort-dequeues-from-the-batch path *)
      match c.cl_submitted with
      | Some a when group && Model.commit_pending model a ->
        Some (Op.Abort_aru a)
      | _ -> None))
  | Program.New_list -> Some (Op.New_list aru)
  | Program.New_block { list_ref; pred_ref } -> (
    match pick list_ref (live_lists model c) with
    | None -> None
    | Some l ->
      let list = Types.List_id.of_int l in
      let pred =
        match pred_ref with
        | None -> Lld_core.Summary.Head
        | Some p -> (
          match pick p (Model.list_blocks model ?aru list) with
          | None -> Lld_core.Summary.Head
          | Some b -> Lld_core.Summary.After b)
      in
      Some (Op.New_block { aru; list; pred }))
  | Program.Write { block_ref; tag } ->
    Option.map
      (fun b ->
        Op.Write
          {
            aru;
            block = Types.Block_id.of_int b;
            data = payload ~block_bytes tag;
          })
      (pick block_ref (live_blocks model c))
  | Program.Read { block_ref } ->
    Option.map
      (fun b -> Op.Read { aru; block = Types.Block_id.of_int b })
      (pick block_ref (live_blocks model c))
  | Program.Delete_block { block_ref } ->
    Option.map
      (fun b -> Op.Delete_block { aru; block = Types.Block_id.of_int b })
      (pick block_ref (live_blocks model c))
  | Program.Delete_list { list_ref } ->
    Option.map
      (fun l -> Op.Delete_list { aru; list = Types.List_id.of_int l })
      (pick list_ref (live_lists model c))
  | Program.List_exists { list_ref } ->
    Option.map
      (fun l -> Op.List_exists { aru; list = Types.List_id.of_int l })
      (pick list_ref (List.rev c.cl_lists))
  | Program.Block_allocated { block_ref } ->
    Option.map
      (fun b -> Op.Block_allocated { aru; block = Types.Block_id.of_int b })
      (pick block_ref (List.rev c.cl_blocks))
  | Program.Block_member { block_ref } ->
    Option.map
      (fun b -> Op.Block_member { aru; block = Types.Block_id.of_int b })
      (pick block_ref (live_blocks model c))
  | Program.List_blocks { list_ref } ->
    Option.map
      (fun l -> Op.List_blocks { aru; list = Types.List_id.of_int l })
      (pick list_ref (live_lists model c))
  | Program.Lists -> Some Op.Lists
  | Program.Scavenge -> Some Op.Scavenge
  | Program.Probe_dead { which } ->
    let dead =
      List.filter
        (fun b ->
          not
            (Model.block_allocated model ?aru:c.cl_aru
               (Types.Block_id.of_int b)))
        (List.rev c.cl_blocks)
    in
    let b =
      match pick which dead with Some b -> b | None -> capacity - 1
    in
    let block = Types.Block_id.of_int b in
    Some
      (match which mod 3 with
      | 0 -> Op.Read { aru; block }
      | 1 -> Op.Block_allocated { aru; block }
      | _ -> Op.Block_member { aru; block })
  | Program.Read_other { peer; block_ref } -> (
    let other = clients.((ci + peer) mod Array.length clients) in
    match pick block_ref (List.rev other.cl_blocks) with
    | None -> None
    | Some b -> Some (Op.Read { aru; block = Types.Block_id.of_int b }))

(* ------------------------------------------------------------------ *)
(* Committed-state summaries                                           *)

(* The real instance's committed state, rendered in the same canonical
   form as {!Model.frontier_summary}.  Queried through simple (no-ARU)
   operations, so it is only meaningful when no ARU is active — after
   quiescence or on a freshly recovered instance.  [?shard] projects
   onto one shard's lists (and hence blocks), matching
   [Model.frontier_summary ?shard]. *)
let real_summary ?shard sut =
  let buf = Buffer.create 256 in
  let lists =
    match shard with
    | None -> Shard.lists sut
    | Some s ->
      let shards = Shard.shard_count sut in
      List.filter
        (fun l -> Shard.list_shard ~shards (Types.List_id.to_int l) = s)
        (Shard.lists sut)
  in
  let members =
    List.concat_map
      (fun l ->
        let bs = Shard.list_blocks sut l in
        Buffer.add_string buf
          (Printf.sprintf "L%d[%s];" (Types.List_id.to_int l)
             (String.concat ","
                (List.map
                   (fun b -> string_of_int (Types.Block_id.to_int b))
                   bs)));
        List.map (fun b -> (Types.Block_id.to_int b, l)) bs)
      lists
  in
  List.iter
    (fun (b, l) ->
      Buffer.add_string buf
        (Printf.sprintf "B%d:L%d:%s;" b
           (Types.List_id.to_int l)
           (Digest.to_hex
              (Digest.bytes (Shard.read sut (Types.Block_id.of_int b))))))
    (List.sort compare members)
  |> ignore;
  (Buffer.contents buf, List.length members)

(* ------------------------------------------------------------------ *)
(* Executing one program                                               *)

type exec_stats = { mutable ex_ops : int; mutable ex_skipped : int;
                    mutable ex_crash_points : int }

(* The group-commit window is pinned explicitly (never from the
   environment): small enough that 40-command programs close several
   batches on the window, with the batch-size close reachable through
   quick client bursts. *)
let lld_config cfg =
  {
    Config.default with
    Config.visibility = cfg.visibility;
    group_commit_window = (if cfg.group_commit then 5_000 else 0);
    group_commit_batch = 4;
  }

let make_backend cfg size =
  match cfg.backend with
  | Mem -> Backend.mem ~size
  | File -> Backend.temp_file ~size ()

let diverged kind detail trail =
  Some { dv_kind = kind; dv_detail = detail; dv_trail = List.rev trail }

let run_program_stats ?(crash = false) ?obs_for cfg ~seed (program : Program.t)
    stats =
  let geom = differ_geom in
  let clock = Clock.create () in
  let disks =
    Array.init cfg.shards (fun _ ->
        Disk.create
          ~backend:(make_backend cfg (Geometry.total_bytes geom))
          ~clock geom)
  in
  let config = lld_config cfg in
  let obs =
    match obs_for with
    | Some f -> f clock
    | None -> Lld_obs.Obs.null
  in
  let sut = Shard.create ~config ~obs disks in
  Shard.flush sut;
  let base = if crash then Some (Array.map Disk.snapshot disks) else None in
  let writes = ref [] in
  if crash then
    (* one interleaved global write trace: the facade is
       single-threaded, so observer firing order IS the persistence
       order, and a crash freezes all shards' media together *)
    Array.iteri
      (fun s disk ->
        Disk.set_observer disk
          (Some
             (fun ~index:_ ~offset ~data ->
               writes := (s, offset, Blk.to_bytes data) :: !writes)))
      disks;
  let capacity = Shard.capacity sut in
  let block_bytes = Shard.block_bytes sut in
  let model =
    Model.create ~visibility:cfg.visibility ?mutation:cfg.mutation ~capacity
      ~max_lists:(Disk_layout.max_lists geom) ~block_bytes ~shards:cfg.shards
      ()
  in
  let clients =
    Array.init cfg.clients (fun _ ->
        { cl_aru = None; cl_submitted = None; cl_lists = []; cl_blocks = [] })
  in
  (* Identifiers recycle, so a freed id can be re-allocated to a
     different client; the new allocation steals ownership, keeping the
     mutating-operations-on-own-objects discipline airtight (two clients
     mutating one object through a recycled id is exactly the kind of
     stale-shadow anomaly the LD interface does not promise anything
     about). *)
  let block_owner = Hashtbl.create 64 in
  let list_owner = Hashtbl.create 16 in
  let claim owners table ci id =
    (match Hashtbl.find_opt owners id with
    | Some prev ->
      let c = clients.(prev) in
      if table then c.cl_lists <- List.filter (fun x -> x <> id) c.cl_lists
      else c.cl_blocks <- List.filter (fun x -> x <> id) c.cl_blocks
    | None -> ());
    Hashtbl.replace owners id ci
  in
  (* One frontier chain per shard.  Each shard persists its own log, so
     a crash keeps an independent durable prefix per shard: the flat
     linear frontier is wrong for S > 1 (shard 0 may hold commits n and
     n+3 while shard 1 lost n+1).  Recovery must land every shard's
     projection somewhere on that shard's own chain; cross-shard
     atomicity itself (an ARU all-in or all-out across its
     participants) is [Shard.recover]'s contract, checked directly by
     the sharded crashcheck oracle and, here, by the per-shard chains
     whenever a later ARU pinned the participant's state.  For S = 1
     the single projection is the flat summary — behavior unchanged. *)
  let frontiers = Array.init cfg.shards (fun _ -> Hashtbl.create 64) in
  let note_frontier () =
    Array.iteri
      (fun s tbl ->
        Hashtbl.replace tbl (Model.frontier_summary ~shard:s model) ())
      frontiers
  in
  note_frontier ();
  let trail = ref [] in
  let finish div =
    Array.iter
      (fun disk ->
        Disk.set_observer disk None;
        Disk.close disk)
      disks;
    div
  in
  (* one operation against both sides; [Some d] = stop with divergence *)
  let step ci op =
    let m_res = Mops.apply model op in
    let r_res = Sops.apply sut op in
    stats.ex_ops <- stats.ex_ops + 1;
    let c = clients.(ci) in
    (match (op, m_res) with
    | Op.Begin_aru, Op.R_aru a -> c.cl_aru <- Some a
    | Op.Submit_commit a, _ ->
      c.cl_aru <- None;
      c.cl_submitted <- Some a
    | Op.Abort_aru a, _ ->
      c.cl_aru <- None;
      if c.cl_submitted = Some a then c.cl_submitted <- None
    | Op.End_aru _, _ -> c.cl_aru <- None
    | Op.New_list _, Op.R_list l ->
      let l = Types.List_id.to_int l in
      claim list_owner true ci l;
      c.cl_lists <- l :: c.cl_lists
    | Op.New_block _, Op.R_block b ->
      let b = Types.Block_id.to_int b in
      claim block_owner false ci b;
      c.cl_blocks <- b :: c.cl_blocks
    | _ -> ());
    trail :=
      Format.asprintf "c%d: %a = %a" ci Op.pp op Op.pp_result m_res :: !trail;
    if Op.equal_result m_res r_res then begin
      note_frontier ();
      None
    end
    else
      diverged Step_mismatch
        [
          Format.asprintf "operation: c%d: %a" ci Op.pp op;
          Format.asprintf "model: %a" Op.pp_result m_res;
          Format.asprintf "real:  %a" Op.pp_result r_res;
        ]
        !trail
  in
  (* drain both commit queues in lockstep.  The model flushes stepwise,
     noting a crash frontier after every member: the real batch is
     atomic per sub-batch, and sub-batches are FIFO prefixes, so every
     state a torn batch can recover to is one of these notes. *)
  let flush_step () =
    let m_n = Model.flush_commit_steps model note_frontier in
    let r_n = Shard.flush_commits sut in
    stats.ex_ops <- stats.ex_ops + 1;
    trail := Printf.sprintf "engine: flush_commits = %d" m_n :: !trail;
    if m_n = r_n then begin
      (* the drain empties the whole queue: no client's submitted
         intent is still withdrawable *)
      Array.iter (fun c -> c.cl_submitted <- None) clients;
      note_frontier ();
      None
    end
    else
      diverged Step_mismatch
        [
          "operation: engine: flush_commits";
          Printf.sprintf "model: %d" m_n;
          Printf.sprintf "real:  %d" r_n;
        ]
        !trail
  in
  let step ci op =
    match step ci op with
    | Some d -> Some d
    | None ->
      if cfg.group_commit && Shard.commit_due sut then flush_step () else None
  in
  let rec steps i =
    if i >= Array.length program then None
    else
      let { Program.client; cmd } = program.(i) in
      match
        resolve model ~block_bytes ~capacity ~group:cfg.group_commit clients
          client cmd
      with
      | None ->
        stats.ex_skipped <- stats.ex_skipped + 1;
        steps (i + 1)
      | Some op -> ( match step client op with None -> steps (i + 1) | d -> d)
  in
  let quiesce () =
    (* drain queued commits, abort leftover ARUs, scavenge, flush —
       then the committed states must agree *)
    let drained = if cfg.group_commit then flush_step () else None in
    let rec each ci =
      if ci >= Array.length clients then None
      else
        match clients.(ci).cl_aru with
        | Some a -> (
          match step ci (Op.Abort_aru a) with
          | None -> each (ci + 1)
          | d -> d)
        | None -> each (ci + 1)
    in
    match (match drained with Some d -> Some d | None -> each 0) with
    | Some d -> Some d
    | None -> (
      match step 0 Op.Scavenge with
      | Some d -> Some d
      | None -> ( match step 0 Op.Flush with Some d -> Some d | None -> None))
  in
  let final_check () =
    let m_sum = Model.frontier_summary model in
    let r_sum, members = real_summary sut in
    if m_sum <> r_sum then
      diverged Final_state_mismatch
        [
          "final committed states differ after quiescence";
          "model: " ^ m_sum;
          "real:  " ^ r_sum;
        ]
        !trail
    else if
      Shard.allocated_blocks sut <> members
      || Model.allocated_blocks model <> members
    then
      diverged Final_state_mismatch
        [
          Printf.sprintf
            "allocation leak after quiescence: %d list members, model holds \
             %d allocations, real holds %d"
            members
            (Model.allocated_blocks model)
            (Shard.allocated_blocks sut);
        ]
        !trail
    else None
  in
  let crash_check () =
    match base with
    | None -> None
    | Some bases ->
      Array.iter (fun disk -> Disk.set_observer disk None) disks;
      let writes = Array.of_list (List.rev !writes) in
      (* enumeration and sampling only look at write count and lengths,
         so the flat Raw machinery serves the interleaved trace as-is;
         images are rebuilt per shard *)
      let raw =
        Raw.v ~base:Bytes.empty
          ~writes:(Array.map (fun (_, o, d) -> (o, d)) writes)
      in
      let points = Raw.enumerate ~granularity:cfg.granularity raw in
      let points = Raw.sample ~budget:cfg.crash_points ~seed points in
      let images_at point =
        let images = Array.map Bytes.copy bases in
        for i = 0 to point.Cc.pt_index - 1 do
          let s, offset, data = writes.(i) in
          Bytes.blit data 0 images.(s) offset (Bytes.length data)
        done;
        (match point.Cc.pt_keep with
        | None -> ()
        | Some k ->
          let s, offset, data = writes.(point.Cc.pt_index) in
          Bytes.blit data 0 images.(s) offset (min k (Bytes.length data)));
        images
      in
      let rec each = function
        | [] -> None
        | point :: rest -> (
          stats.ex_crash_points <- stats.ex_crash_points + 1;
          let rclock = Clock.create () in
          let rdisks =
            Array.map
              (fun image -> Disk.load ~clock:rclock differ_geom image)
              (images_at point)
          in
          let verdict =
            match Shard.recover ~config rdisks with
            | exception e ->
              diverged Crash_mismatch
                [
                  Format.asprintf "crash %a: recovery raised %s" Cc.pp_point
                    point
                    (Printexc.to_string e);
                ]
                !trail
            | rsut, _reports -> (
              match Shard.recovery_invariant_errors rsut with
              | _ :: _ as errs ->
                diverged Crash_mismatch
                  (Format.asprintf "crash %a: recovery invariants violated"
                     Cc.pp_point point
                  :: errs)
                  !trail
              | [] ->
                let _, members = real_summary rsut in
                if Shard.allocated_blocks rsut <> members then
                  diverged Crash_mismatch
                    [
                      Format.asprintf
                        "crash %a: recovered state holds %d allocations for \
                         %d list members"
                        Cc.pp_point point
                        (Shard.allocated_blocks rsut)
                        members;
                    ]
                    !trail
                else begin
                  let rec on_chain s =
                    if s >= cfg.shards then None
                    else
                      let p_sum, _ = real_summary ~shard:s rsut in
                      if Hashtbl.mem frontiers.(s) p_sum then on_chain (s + 1)
                      else
                        diverged Crash_mismatch
                          [
                            Format.asprintf
                              "crash %a: shard %d's recovered state is not \
                               on its crash-frontier chain (%d states)"
                              Cc.pp_point point s
                              (Hashtbl.length frontiers.(s));
                            "recovered: " ^ p_sum;
                          ]
                          !trail
                  in
                  on_chain 0
                end)
          in
          Array.iter Disk.close rdisks;
          match verdict with None -> each rest | d -> d)
      in
      each points
  in
  let result =
    match steps 0 with
    | Some d -> Some d
    | None -> (
      match quiesce () with
      | Some d -> Some d
      | None -> (
        match final_check () with
        | Some d -> Some d
        | None -> crash_check ()))
  in
  finish result

let run_program ?crash ?obs_for cfg ~seed program =
  let stats = { ex_ops = 0; ex_skipped = 0; ex_crash_points = 0 } in
  run_program_stats ?crash ?obs_for cfg ~seed program stats

(* Forensics: re-run a (typically shrunk) diverging program with a live
   observability handle attached to the real instance and dump the
   flight ring, trace ring and metrics registry as a bundle.  The
   re-run observes only (probes never charge the virtual clock), so the
   divergence reproduces bit-for-bit. *)
let dump_forensics ?(crash = false) ~dir ~label cfg ~seed program =
  let holder = ref None in
  let obs_for clock =
    let obs = Lld_obs.Obs.create ~clock () in
    holder := Some obs;
    obs
  in
  let div = run_program ~crash ~obs_for cfg ~seed program in
  match !holder with
  | None -> (div, [])
  | Some obs -> (div, Lld_obs.Forensics.dump ~dir ~label obs)

(* ------------------------------------------------------------------ *)
(* Shrinking: bounded delta debugging over the step array              *)

let drop_chunk (p : Program.t) ~at ~len : Program.t =
  Array.append (Array.sub p 0 at)
    (Array.sub p (at + len) (Array.length p - at - len))

let shrink cfg ~seed ~crash (program : Program.t) divergence =
  let execs = ref 0 in
  let limit = 500 in
  let test p =
    if !execs >= limit then None
    else begin
      incr execs;
      run_program ~crash cfg ~seed p
    end
  in
  let best = ref program in
  let best_div = ref divergence in
  let changed = ref true in
  while !changed && !execs < limit do
    changed := false;
    let len = ref (max 1 (Array.length !best / 2)) in
    while !len >= 1 && !execs < limit do
      let at = ref 0 in
      while !at + !len <= Array.length !best && !execs < limit do
        let candidate = drop_chunk !best ~at:!at ~len:!len in
        (match test candidate with
        | Some d ->
          best := candidate;
          best_div := d;
          changed := true
        | None -> at := !at + !len);
        ()
      done;
      len := !len / 2
    done
  done;
  (!best, !best_div, !execs)

(* ------------------------------------------------------------------ *)
(* The fuzz loop                                                       *)

let fuzz ?progress ~seed ~budget cfg =
  let master = Rng.create ~seed in
  let stats = { ex_ops = 0; ex_skipped = 0; ex_crash_points = 0 } in
  let cases = ref 0 in
  let crash_cases = ref 0 in
  let failure = ref None in
  (try
     for case = 1 to budget do
       let case_seed = Int64.to_int (Rng.next master) land 0x3FFFFFFF in
       let crash = cfg.crash_every > 0 && case mod cfg.crash_every = 0 in
       if crash then incr crash_cases;
       incr cases;
       (match progress with Some f -> f ~case | None -> ());
       let program =
         Program.generate ~seed:case_seed ~clients:cfg.clients ~ops:cfg.ops
       in
       match run_program_stats ~crash cfg ~seed:case_seed program stats with
       | None -> ()
       | Some d ->
         let shrunk, shrunk_div, execs =
           shrink cfg ~seed:case_seed ~crash program d
         in
         failure :=
           Some
             {
               fl_case_index = case;
               fl_case_seed = case_seed;
               fl_program = program;
               fl_divergence = d;
               fl_shrunk = shrunk;
               fl_shrunk_divergence = shrunk_div;
               fl_shrink_execs = execs;
             };
         raise Exit
     done
   with Exit -> ());
  {
    rp_seed = seed;
    rp_config = cfg;
    rp_cases = !cases;
    rp_ops = stats.ex_ops;
    rp_skipped = stats.ex_skipped;
    rp_crash_cases = !crash_cases;
    rp_crash_points = stats.ex_crash_points;
    rp_failure = !failure;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let kind_label = function
  | Step_mismatch -> "operation result mismatch"
  | Final_state_mismatch -> "final committed-state mismatch"
  | Crash_mismatch -> "recovered state off the crash frontier"

let visibility_option = function
  | Config.Any_shadow -> 1
  | Config.Committed_only -> 2
  | Config.Own_shadow -> 3

let pp_divergence ppf d =
  Format.fprintf ppf "@[<v>DIVERGENCE: %s@," (kind_label d.dv_kind);
  List.iter (fun l -> Format.fprintf ppf "  %s@," l) d.dv_detail;
  Format.fprintf ppf "executed operations (model result shown):@,";
  List.iter (fun l -> Format.fprintf ppf "  %s@," l) d.dv_trail;
  Format.fprintf ppf "@]"

let pp_report ppf r =
  let backend = match r.rp_config.backend with Mem -> "mem" | File -> "file" in
  Format.fprintf ppf
    "@[<v>model differ: option %d, %s backend, %d clients x %d commands%s@,\
     seed %d: %d case(s), %d operations (%d commands skipped), %d crash \
     point(s) over %d crash case(s)@,"
    (visibility_option r.rp_config.visibility)
    backend r.rp_config.clients r.rp_config.ops
    ((if r.rp_config.shards > 1 then
        Printf.sprintf ", %d shards" r.rp_config.shards
      else "")
    ^ (if r.rp_config.group_commit then ", group commit" else "")
    ^
    match r.rp_config.mutation with
    | None -> ""
    | Some m -> ", injected bug: " ^ Model.mutation_label m)
    r.rp_seed r.rp_cases r.rp_ops r.rp_skipped r.rp_crash_points
    r.rp_crash_cases;
  match r.rp_failure with
  | None -> Format.fprintf ppf "no divergence: implementation matches the executable specification@]"
  | Some f ->
    Format.fprintf ppf
      "case %d (seed %d) diverged; shrunk %d -> %d step(s) in %d execution(s)@,"
      f.fl_case_index f.fl_case_seed
      (Array.length f.fl_program)
      (Array.length f.fl_shrunk) f.fl_shrink_execs;
    Format.fprintf ppf "minimal program:@,@[<v>%a@]@," Program.pp f.fl_shrunk;
    Format.fprintf ppf "%a@]" pp_divergence f.fl_shrunk_divergence
