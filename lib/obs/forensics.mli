(** Forensics bundles: dump everything an {!Obs.t} holds next to a
    failing check.

    A bundle is three files sharing a stem under [dir]:
    [<label>.flight.jsonl] (the flight-recorder ring),
    [<label>.trace.json] (the Chrome trace ring, Perfetto-loadable), and
    [<label>.metrics.json] (counters, gauges, histogram summaries).
    Disabled or empty rings still produce their file, so bundles always
    have the same shape. *)

val dump : dir:string -> label:string -> Obs.t -> string list
(** [dump ~dir ~label obs] creates [dir] if needed, writes the bundle,
    and returns the paths written. *)
