module Clock = Lld_sim.Clock

type category = Op | Disk | Aru | Clean | Recovery | Checkpoint | Fs

let all_categories = [ Op; Disk; Aru; Clean; Recovery; Checkpoint; Fs ]
let num_categories = 7

let category_index = function
  | Op -> 0
  | Disk -> 1
  | Aru -> 2
  | Clean -> 3
  | Recovery -> 4
  | Checkpoint -> 5
  | Fs -> 6

let category_label = function
  | Op -> "op"
  | Disk -> "disk"
  | Aru -> "aru"
  | Clean -> "clean"
  | Recovery -> "recovery"
  | Checkpoint -> "checkpoint"
  | Fs -> "fs"

let category_of_string = function
  | "op" -> Some Op
  | "disk" -> Some Disk
  | "aru" -> Some Aru
  | "clean" -> Some Clean
  | "recovery" -> Some Recovery
  | "checkpoint" -> Some Checkpoint
  | "fs" -> Some Fs
  | _ -> None

type arg = I of int | S of string | F of float
type flow_phase = Flow_start | Flow_step | Flow_end

let flow_phase_label = function
  | Flow_start -> "s"
  | Flow_step -> "t"
  | Flow_end -> "f"

type event = {
  ev_name : string;
  ev_cat : category;
  ev_ts_ns : int;
  ev_dur_ns : int;  (* -1 marks an instant event *)
  ev_args : (string * arg) list;
  ev_flow : (flow_phase * int) option;
      (* flow events bind by (name, cat, id) across the trace *)
}

type t = {
  clock : Clock.t;
  enabled : bool;
  cats : bool array;
  ring : event array;  (* valid slots: the last [min count capacity] pushes *)
  mutable head : int;  (* next slot to write *)
  mutable count : int;  (* total events ever pushed *)
}

let dummy_event =
  {
    ev_name = "";
    ev_cat = Op;
    ev_ts_ns = 0;
    ev_dur_ns = -1;
    ev_args = [];
    ev_flow = None;
  }

let disabled =
  {
    clock = Clock.create ();
    enabled = false;
    cats = Array.make num_categories false;
    ring = [||];
    head = 0;
    count = 0;
  }

let create ?(capacity = 65_536) ?(categories = all_categories) ~clock () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  let cats = Array.make num_categories false in
  List.iter (fun c -> cats.(category_index c) <- true) categories;
  {
    clock;
    enabled = true;
    cats;
    ring = Array.make capacity dummy_event;
    head = 0;
    count = 0;
  }

let enabled t = t.enabled
let on t cat = t.enabled && t.cats.(category_index cat)
let capacity t = Array.length t.ring
let count t = t.count
let dropped t = max 0 (t.count - Array.length t.ring)
let now_ns t = Clock.now_ns t.clock

let push t ev =
  t.ring.(t.head) <- ev;
  t.head <- (t.head + 1) mod Array.length t.ring;
  t.count <- t.count + 1

let instant t cat name args =
  if on t cat then
    push t
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts_ns = Clock.now_ns t.clock;
        ev_dur_ns = -1;
        ev_args = args;
        ev_flow = None;
      }

(* One link in a causality chain: flow events with the same (name, cat,
   id) triple are drawn as connected arrows by Perfetto. *)
let flow t cat name ~phase ~id args =
  if on t cat then
    push t
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts_ns = Clock.now_ns t.clock;
        ev_dur_ns = -1;
        ev_args = args;
        ev_flow = Some (phase, id);
      }

(* Record an already-measured span. *)
let complete t cat name ~ts_ns ~dur_ns args =
  if on t cat then
    push t
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts_ns = ts_ns;
        ev_dur_ns = max 0 dur_ns;
        ev_args = args;
        ev_flow = None;
      }

(* Time [f] on the virtual clock and record a span.  The span is
   recorded even when [f] raises (e.g. a simulated crash), marked with
   an ["exn"] argument, so truncated traces still show what was in
   flight. *)
let span t cat name ?(args = []) f =
  if not (on t cat) then f ()
  else begin
    let ts = Clock.now_ns t.clock in
    match f () with
    | v ->
      complete t cat name ~ts_ns:ts ~dur_ns:(Clock.now_ns t.clock - ts) args;
      v
    | exception e ->
      complete t cat name ~ts_ns:ts
        ~dur_ns:(Clock.now_ns t.clock - ts)
        (("exn", S (Printexc.to_string e)) :: args);
      raise e
  end

let clear t =
  t.head <- 0;
  t.count <- 0

(* Events currently held, oldest first. *)
let events t =
  let cap = Array.length t.ring in
  if cap = 0 || t.count = 0 then []
  else begin
    let n = min t.count cap in
    let first = (t.head - n + cap) mod cap in
    List.init n (fun i -> t.ring.((first + i) mod cap))
  end

(* ------------------------------------------------------------------ *)
(* Export.  Chrome trace-event JSON ("X" complete events and "i"
   instants on one pid/tid, timestamps in microseconds) loads directly
   into Perfetto / chrome://tracing; JSONL keeps exact nanosecond
   integers, one event per line, for ad-hoc tooling. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_string_field buf key s =
  Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" key (json_escape s))

let add_args buf args =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":" (json_escape k));
      match v with
      | I n -> Buffer.add_string buf (string_of_int n)
      | F f ->
        Buffer.add_string buf
          (if Float.is_finite f then Printf.sprintf "%.6g" f else "null")
      | S s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (json_escape s);
        Buffer.add_char buf '"')
    args;
  Buffer.add_char buf '}'

let chrome_event buf ev =
  Buffer.add_char buf '{';
  add_string_field buf "name" ev.ev_name;
  Buffer.add_char buf ',';
  add_string_field buf "cat" (category_label ev.ev_cat);
  Buffer.add_char buf ',';
  (match ev.ev_flow with
  | Some (phase, id) ->
    add_string_field buf "ph" (flow_phase_label phase);
    Buffer.add_string buf (Printf.sprintf ",\"id\":%d" id);
    (* bind the terminating arrow to the enclosing slice's end *)
    if phase = Flow_end then Buffer.add_string buf ",\"bp\":\"e\""
  | None ->
  if ev.ev_dur_ns < 0 then begin
    add_string_field buf "ph" "i";
    Buffer.add_string buf ",\"s\":\"t\""
  end
  else begin
    add_string_field buf "ph" "X";
    Buffer.add_string buf
      (Printf.sprintf ",\"dur\":%.3f" (float_of_int ev.ev_dur_ns /. 1e3))
  end);
  Buffer.add_string buf
    (Printf.sprintf ",\"ts\":%.3f" (float_of_int ev.ev_ts_ns /. 1e3));
  Buffer.add_string buf ",\"pid\":1,\"tid\":1,";
  add_args buf ev.ev_args;
  Buffer.add_char buf '}'

let to_chrome_string t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      chrome_event buf ev)
    (events t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let to_jsonl_string t =
  let buf = Buffer.create 65536 in
  List.iter
    (fun ev ->
      Buffer.add_char buf '{';
      add_string_field buf "name" ev.ev_name;
      Buffer.add_char buf ',';
      add_string_field buf "cat" (category_label ev.ev_cat);
      Buffer.add_string buf (Printf.sprintf ",\"ts_ns\":%d" ev.ev_ts_ns);
      if ev.ev_dur_ns >= 0 then
        Buffer.add_string buf (Printf.sprintf ",\"dur_ns\":%d" ev.ev_dur_ns);
      (match ev.ev_flow with
      | Some (phase, id) ->
        Buffer.add_char buf ',';
        add_string_field buf "flow" (flow_phase_label phase);
        Buffer.add_string buf (Printf.sprintf ",\"flow_id\":%d" id)
      | None -> ());
      Buffer.add_char buf ',';
      add_args buf ev.ev_args;
      Buffer.add_string buf "}\n")
    (events t);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_chrome_file t path = write_file path (to_chrome_string t)
let write_jsonl_file t path = write_file path (to_jsonl_string t)

let pp_event ppf ev =
  let args =
    String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "%s=%s" k
             (match v with
             | I n -> string_of_int n
             | F f -> Printf.sprintf "%g" f
             | S s -> s))
         ev.ev_args)
  in
  if ev.ev_dur_ns < 0 then
    Format.fprintf ppf "[%s] %s @%dns %s" (category_label ev.ev_cat) ev.ev_name
      ev.ev_ts_ns args
  else
    Format.fprintf ppf "[%s] %s @%dns +%dns %s" (category_label ev.ev_cat)
      ev.ev_name ev.ev_ts_ns ev.ev_dur_ns args
