module Clock = Lld_sim.Clock

type entry = {
  fl_ns : int;
  fl_cat : string;
  fl_name : string;
  fl_args : (string * Trace.arg) list;
}

type t = {
  clock : Clock.t;
  enabled : bool;
  ring : entry array;  (* valid slots: the last [min count capacity] records *)
  mutable head : int;  (* next slot to write *)
  mutable count : int;  (* total entries ever recorded *)
}

let dummy_entry = { fl_ns = 0; fl_cat = ""; fl_name = ""; fl_args = [] }

let disabled =
  { clock = Clock.create (); enabled = false; ring = [||]; head = 0; count = 0 }

let create ?(capacity = 4096) ~clock () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  {
    clock;
    enabled = true;
    ring = Array.make capacity dummy_entry;
    head = 0;
    count = 0;
  }

let enabled t = t.enabled
let capacity t = Array.length t.ring
let count t = t.count
let dropped t = max 0 (t.count - Array.length t.ring)

let record t cat name args =
  if t.enabled then begin
    t.ring.(t.head) <-
      {
        fl_ns = Clock.now_ns t.clock;
        fl_cat = cat;
        fl_name = name;
        fl_args = args;
      };
    t.head <- (t.head + 1) mod Array.length t.ring;
    t.count <- t.count + 1
  end

let clear t =
  t.head <- 0;
  t.count <- 0

(* Entries currently held, oldest first. *)
let entries t =
  let cap = Array.length t.ring in
  if cap = 0 || t.count = 0 then []
  else begin
    let n = min t.count cap in
    let first = (t.head - n + cap) mod cap in
    List.init n (fun i -> t.ring.((first + i) mod cap))
  end

let to_jsonl_string t =
  let buf = Buffer.create 16384 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "{\"ns\":%d,\"cat\":\"%s\",\"name\":\"%s\"," e.fl_ns
           (Trace.json_escape e.fl_cat)
           (Trace.json_escape e.fl_name));
      Trace.add_args buf e.fl_args;
      Buffer.add_string buf "}\n")
    (entries t);
  Buffer.contents buf

let write_jsonl_file t path =
  let oc = open_out path in
  output_string oc (to_jsonl_string t);
  close_out oc

let pp_entry ppf e =
  let args =
    String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "%s=%s" k
             (match v with
             | Trace.I n -> string_of_int n
             | Trace.F f -> Printf.sprintf "%g" f
             | Trace.S s -> s))
         e.fl_args)
  in
  Format.fprintf ppf "[%s] %s @%dns %s" e.fl_cat e.fl_name e.fl_ns args
