(** Span/event tracer on the simulator's virtual clock.

    Events are stamped with {!Lld_sim.Clock.now_ns} — never wall time —
    so a trace is a deterministic function of the workload and
    configuration.  Events land in a bounded ring buffer: when it fills,
    the oldest events are overwritten and {!dropped} reports how many
    were lost.  Recording costs no virtual time (the tracer only reads
    the clock), so enabling a trace cannot perturb the cost model.

    Export targets the Chrome trace-event JSON format (loadable in
    Perfetto / [chrome://tracing]; timestamps in microseconds) and a
    JSONL sidecar keeping exact nanosecond integers. *)

type category = Op | Disk | Aru | Clean | Recovery | Checkpoint | Fs

val all_categories : category list
val category_label : category -> string
val category_of_string : string -> category option

(** Event argument payload, rendered into the [args] JSON object. *)
type arg = I of int | S of string | F of float

(** Phase of a causality-chain link: Chrome flow events ([ph] "s"/"t"/
    "f").  Flow events sharing the same (name, category, id) triple are
    rendered by Perfetto as connected arrows across slices. *)
type flow_phase = Flow_start | Flow_step | Flow_end

val flow_phase_label : flow_phase -> string

type event = {
  ev_name : string;
  ev_cat : category;
  ev_ts_ns : int;
  ev_dur_ns : int;  (** [-1] marks an instant event *)
  ev_args : (string * arg) list;
  ev_flow : (flow_phase * int) option;
}

type t

val disabled : t
(** A tracer that records nothing; every probe on it is a no-op. *)

val create :
  ?capacity:int -> ?categories:category list -> clock:Lld_sim.Clock.t ->
  unit -> t
(** Live tracer over [clock].  [capacity] bounds the ring buffer
    (default 65536 events); [categories] restricts recording (default:
    all). *)

val enabled : t -> bool
val on : t -> category -> bool
(** [on t cat] is true when events of [cat] would be recorded. *)

val instant : t -> category -> string -> (string * arg) list -> unit
(** Record a zero-duration marker at the current virtual time. *)

val flow :
  t -> category -> string -> phase:flow_phase -> id:int ->
  (string * arg) list -> unit
(** Record one link of a causality chain at the current virtual time.
    Links with equal (name, category, [id]) bind into one arrow chain:
    emit [Flow_start] where a request enters, [Flow_step] at each hop,
    and [Flow_end] where it completes. *)

val complete :
  t -> category -> string -> ts_ns:int -> dur_ns:int ->
  (string * arg) list -> unit
(** Record an already-measured span. *)

val span :
  t -> category -> string -> ?args:(string * arg) list ->
  (unit -> 'a) -> 'a
(** [span t cat name f] runs [f] and records a span covering its virtual
    duration.  When the category is off this is exactly [f ()].  If [f]
    raises (e.g. a simulated crash) the span is still recorded, with an
    ["exn"] argument, before the exception propagates. *)

val count : t -> int
(** Total events recorded since creation (including overwritten). *)

val dropped : t -> int
(** Events lost to ring-buffer overwrite. *)

val capacity : t -> int
val now_ns : t -> int
val clear : t -> unit

val events : t -> event list
(** Events currently held, oldest first. *)

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal. *)

val add_args : Buffer.t -> (string * arg) list -> unit
(** Append an [args] JSON object (["args":{...}]) to [buf]. *)

val to_chrome_string : t -> string
val to_jsonl_string : t -> string
val write_chrome_file : t -> string -> unit
val write_jsonl_file : t -> string -> unit
val pp_event : Format.formatter -> event -> unit
