module Clock = Lld_sim.Clock

type t = {
  active : bool;
  clock : Clock.t;
  trace : Trace.t;
  metrics : Metrics.t;
}

let null =
  {
    active = false;
    clock = Clock.create ();
    trace = Trace.disabled;
    metrics = Metrics.create ();
  }

let create ?capacity ?categories ~clock () =
  {
    active = true;
    clock;
    trace = Trace.create ?capacity ?categories ~clock ();
    metrics = Metrics.create ();
  }

let active t = t.active
let trace t = t.trace
let metrics t = t.metrics

let instant t cat name args = if t.active then Trace.instant t.trace cat name args

let span t cat name ?args f =
  if t.active then Trace.span t.trace cat name ?args f else f ()

(* Histogram key for a span: "<category>.<name>", e.g. "op.read". *)
let hist_key cat name = Trace.category_label cat ^ "." ^ name

(* Time [f] on the virtual clock: record a trace span (if the category
   is on) and feed the duration into the matching histogram.  On an
   exception the span is still recorded (tagged "exn") but the duration
   is not counted in the histogram — an interrupted operation is not a
   completed-latency sample. *)
let timed t cat name ?(args = []) f =
  if not t.active then f ()
  else begin
    let ts = Clock.now_ns t.clock in
    match f () with
    | v ->
      let dur = Clock.now_ns t.clock - ts in
      Metrics.observe t.metrics (hist_key cat name) dur;
      Trace.complete t.trace cat name ~ts_ns:ts ~dur_ns:dur args;
      v
    | exception e ->
      Trace.complete t.trace cat name ~ts_ns:ts
        ~dur_ns:(Clock.now_ns t.clock - ts)
        (("exn", Trace.S (Printexc.to_string e)) :: args);
      raise e
  end

let observe t name v = if t.active then Metrics.observe t.metrics name v

let register_gauge t ~name ~help read =
  if t.active then Metrics.register_gauge t.metrics ~name ~help read
