module Clock = Lld_sim.Clock

type t = {
  active : bool;
  clock : Clock.t;
  trace : Trace.t;
  flight : Flight.t;
  metrics : Metrics.t;
}

let null =
  {
    active = false;
    clock = Clock.create ();
    trace = Trace.disabled;
    flight = Flight.disabled;
    metrics = Metrics.create ();
  }

let create ?capacity ?categories ?flight_capacity ~clock () =
  {
    active = true;
    clock;
    trace = Trace.create ?capacity ?categories ~clock ();
    flight = Flight.create ?capacity:flight_capacity ~clock ();
    metrics = Metrics.create ();
  }

(* The black-box configuration: no tracer, no histogram sampling, just
   the bounded event ring.  Cheap enough to leave on everywhere. *)
let flight_only ?capacity ~clock () =
  {
    active = false;
    clock;
    trace = Trace.disabled;
    flight = Flight.create ?capacity ~clock ();
    metrics = Metrics.create ();
  }

let active t = t.active
let trace t = t.trace
let flight t = t.flight
let metrics t = t.metrics
let recording t = t.active || Flight.enabled t.flight

(* [env_default ~clock obs] upgrades a fully inert handle to a
   flight-only one when LLD_FLIGHT=1, so every Lld instance carries a
   black box without callers opting in.  A handle the caller already
   made live is returned unchanged. *)
let env_default ~clock obs =
  if recording obs then obs
  else
    match Sys.getenv_opt "LLD_FLIGHT" with
    | Some "1" -> flight_only ~clock ()
    | _ -> obs

let fl_record t cat name args =
  Flight.record t.flight (Trace.category_label cat) name args

let instant t cat name args =
  if Flight.enabled t.flight then fl_record t cat name args;
  if t.active then Trace.instant t.trace cat name args

(* A structured event: lands in the flight ring (always, when enabled)
   and in the trace ring — as a flow-chain link when [flow] is given,
   as a plain instant otherwise. *)
let event t ?flow cat name args =
  if Flight.enabled t.flight then
    fl_record t cat name
      (match flow with
      | Some (phase, id) ->
        ("flow", Trace.S (Trace.flow_phase_label phase))
        :: ("flow_id", Trace.I id)
        :: args
      | None -> args);
  if t.active then
    match flow with
    | Some (phase, id) -> Trace.flow t.trace cat name ~phase ~id args
    | None -> Trace.instant t.trace cat name args

let complete t cat name ~ts_ns ~dur_ns args =
  if t.active then Trace.complete t.trace cat name ~ts_ns ~dur_ns args

let span t cat name ?args f =
  if t.active then Trace.span t.trace cat name ?args f else f ()

(* Histogram key for a span: "<category>.<name>", e.g. "op.read". *)
let hist_key cat name = Trace.category_label cat ^ "." ^ name

(* Time [f] on the virtual clock: record a trace span (if the category
   is on), feed the duration into the matching histogram, and drop a
   completion record into the flight ring.  On an exception the span is
   still recorded (tagged "exn") but the duration is not counted in the
   histogram — an interrupted operation is not a completed-latency
   sample. *)
let timed t cat name ?(args = []) f =
  if not (recording t) then f ()
  else begin
    let ts = Clock.now_ns t.clock in
    match f () with
    | v ->
      let dur = Clock.now_ns t.clock - ts in
      if t.active then begin
        Metrics.observe t.metrics (hist_key cat name) dur;
        Trace.complete t.trace cat name ~ts_ns:ts ~dur_ns:dur args
      end;
      if Flight.enabled t.flight then
        fl_record t cat name (("dur_ns", Trace.I dur) :: args);
      v
    | exception e ->
      let exn_args = ("exn", Trace.S (Printexc.to_string e)) :: args in
      if t.active then
        Trace.complete t.trace cat name ~ts_ns:ts
          ~dur_ns:(Clock.now_ns t.clock - ts)
          exn_args;
      if Flight.enabled t.flight then fl_record t cat name exn_args;
      raise e
  end

let observe t name v = if t.active then Metrics.observe t.metrics name v

let register_gauge t ~name ~help read =
  if t.active then Metrics.register_gauge t.metrics ~name ~help read

let register_counter t ~name ~help read =
  if t.active then Metrics.register_counter t.metrics ~name ~help read
