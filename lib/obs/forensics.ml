(* Forensics bundle: everything an observability handle holds, written
   next to a failing check so the CI artifact is self-describing.  One
   bundle is three files sharing a stem:

     <label>.flight.jsonl   the flight-recorder ring, oldest first
     <label>.trace.json     the Chrome trace ring (Perfetto-loadable)
     <label>.metrics.json   counters, gauges, and histogram summaries

   Files whose source ring is disabled/empty are still written (empty
   ring -> empty JSONL; inert tracer -> empty traceEvents) so a bundle
   always has the same shape. *)

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let dump ~dir ~label obs =
  ensure_dir dir;
  let path suffix = Filename.concat dir (label ^ suffix) in
  let flight_file = path ".flight.jsonl" in
  Flight.write_jsonl_file (Obs.flight obs) flight_file;
  let trace_file = path ".trace.json" in
  Trace.write_chrome_file (Obs.trace obs) trace_file;
  let metrics_file = path ".metrics.json" in
  let oc = open_out metrics_file in
  output_string oc (Metrics.to_json_string (Obs.metrics obs));
  output_char oc '\n';
  close_out oc;
  [ flight_file; trace_file; metrics_file ]
