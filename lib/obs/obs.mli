(** Observability handle: a {!Trace} tracer plus a {!Metrics} registry
    behind one switch.

    Components take an [Obs.t] and default to {!null}, on which every
    probe is an immediate no-op — no allocation, no clock reads — so the
    cost model and reproduction numbers are untouched unless a caller
    explicitly attaches a live handle ({!create}).  Probes never charge
    the virtual clock; they only read it. *)

type t

val null : t
(** The inert handle: [active null = false], all probes are no-ops. *)

val create :
  ?capacity:int -> ?categories:Trace.category list ->
  clock:Lld_sim.Clock.t -> unit -> t
(** Live handle stamping events on [clock].  [capacity] and
    [categories] are passed to {!Trace.create}. *)

val active : t -> bool
val trace : t -> Trace.t
val metrics : t -> Metrics.t

val instant : t -> Trace.category -> string -> (string * Trace.arg) list -> unit

val span :
  t -> Trace.category -> string -> ?args:(string * Trace.arg) list ->
  (unit -> 'a) -> 'a
(** Trace-only span (no histogram); exactly [f ()] when inactive. *)

val timed :
  t -> Trace.category -> string -> ?args:(string * Trace.arg) list ->
  (unit -> 'a) -> 'a
(** [timed t cat name f] runs [f], records a trace span, and feeds the
    virtual duration into the histogram keyed ["<cat>.<name>"] (e.g.
    ["op.read"]).  If [f] raises, the span is recorded (tagged ["exn"])
    but no histogram sample is taken.  Exactly [f ()] when inactive. *)

val hist_key : Trace.category -> string -> string

val observe : t -> string -> int -> unit
(** Record a pre-measured duration in the named histogram. *)

val register_gauge : t -> name:string -> help:string -> (unit -> int) -> unit
