(** Observability handle: a {!Trace} tracer, a {!Flight} recorder, and
    a {!Metrics} registry behind one switch.

    Components take an [Obs.t] and default to {!null}, on which every
    probe is an immediate no-op — no allocation, no clock reads — so the
    cost model and reproduction numbers are untouched unless a caller
    explicitly attaches a live handle ({!create}), or the environment
    asks for the black box ({!env_default}).  Probes never charge the
    virtual clock; they only read it. *)

type t

val null : t
(** The inert handle: [active null = false], all probes are no-ops. *)

val create :
  ?capacity:int -> ?categories:Trace.category list -> ?flight_capacity:int ->
  clock:Lld_sim.Clock.t -> unit -> t
(** Live handle stamping events on [clock].  [capacity] and
    [categories] are passed to {!Trace.create}; the flight ring is
    enabled too ([flight_capacity], default 4096). *)

val flight_only : ?capacity:int -> clock:Lld_sim.Clock.t -> unit -> t
(** A black-box handle: no tracer, no histograms, just the bounded
    {!Flight} ring.  [active] is false on it — only {!event},
    {!instant}, and {!timed} leave a record. *)

val env_default : clock:Lld_sim.Clock.t -> t -> t
(** [env_default ~clock obs] returns [obs] unchanged when it records
    anything; otherwise, when the [LLD_FLIGHT=1] environment variable
    is set, upgrades it to {!flight_only} so every instance carries an
    always-on black box. *)

val active : t -> bool
val trace : t -> Trace.t
val flight : t -> Flight.t
val metrics : t -> Metrics.t

val recording : t -> bool
(** True when any probe on this handle leaves a record (tracer active
    or flight ring enabled). *)

val instant : t -> Trace.category -> string -> (string * Trace.arg) list -> unit

val event :
  t -> ?flow:Trace.flow_phase * int -> Trace.category -> string ->
  (string * Trace.arg) list -> unit
(** Structured event: recorded in the flight ring (when enabled) and in
    the trace — as a causality-chain link when [flow] is given (see
    {!Trace.flow}), as a plain instant otherwise. *)

val complete :
  t -> Trace.category -> string -> ts_ns:int -> dur_ns:int ->
  (string * Trace.arg) list -> unit
(** Record an already-measured span in the trace (active handles
    only). *)

val span :
  t -> Trace.category -> string -> ?args:(string * Trace.arg) list ->
  (unit -> 'a) -> 'a
(** Trace-only span (no histogram); exactly [f ()] when inactive. *)

val timed :
  t -> Trace.category -> string -> ?args:(string * Trace.arg) list ->
  (unit -> 'a) -> 'a
(** [timed t cat name f] runs [f], records a trace span, feeds the
    virtual duration into the histogram keyed ["<cat>.<name>"] (e.g.
    ["op.read"]), and drops a completion record in the flight ring.  If
    [f] raises, the span is recorded (tagged ["exn"]) but no histogram
    sample is taken.  Exactly [f ()] when nothing records. *)

val hist_key : Trace.category -> string -> string

val observe : t -> string -> int -> unit
(** Record a pre-measured duration in the named histogram. *)

val register_gauge : t -> name:string -> help:string -> (unit -> int) -> unit

val register_counter :
  t -> name:string -> help:string -> (unit -> int) -> unit
(** Register a monotone counter in the registry (active handles
    only); see {!Metrics.register_counter}. *)
