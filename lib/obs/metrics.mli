(** Metrics registry: named latency histograms plus gauges sampled from
    live state.

    Histograms are created on first use and keyed by name (convention:
    ["op.read"], ["recovery.replay"], …).  Gauges are registered with a
    closure over live state and sampled at read time, so they always
    reflect the current structure occupancy (free segments, cache
    residency, live-index utilisation, …). *)

type t

val create : unit -> t

val histogram : t -> string -> Lld_sim.Stats.Histogram.t
(** Find-or-create the named histogram. *)

val observe : t -> string -> int -> unit
(** [observe t name v] records [v] (nanoseconds) in the named
    histogram. *)

val histograms : t -> (string * Lld_sim.Stats.Histogram.t) list
(** All histograms in first-use order. *)

val find_histogram : t -> string -> Lld_sim.Stats.Histogram.t option
val reset_histograms : t -> unit

val register_gauge : t -> name:string -> help:string -> (unit -> int) -> unit
(** Register a live gauge; [read] is called at each sampling.
    Re-registering a name replaces the previous closure (same row, new
    source), so re-mounting cannot duplicate gauges. *)

val register_counter :
  t -> name:string -> help:string -> (unit -> int) -> unit
(** Register a monotone counter sampled from live state.  Same
    replace-by-name semantics as {!register_gauge}; kept separate so the
    OpenMetrics exposition can type each family correctly. *)

val sample_gauges : t -> (string * int * string) list
(** [(name, current value, help)] in registration order. *)

val sample_counters : t -> (string * int * string) list
(** [(name, current value, help)] in registration order. *)

val pp : Format.formatter -> t -> unit

val to_json_string : t -> string
(** [{"counters":{...},"gauges":{...},"histograms":{...}}] with
    per-histogram count/sum/min/max/mean/p50/p95/p99. *)

val to_openmetrics_string : t -> string
(** OpenMetrics / Prometheus text exposition: counters as
    [name_total], gauges plain, histograms with cumulative
    [name_bucket{le="..."}] rows ending in [le="+Inf"] plus
    [name_sum]/[name_count].  Names are sanitised (dots to
    underscores) and prefixed [lld_]; the output ends with
    [# EOF]. *)

val dump_openmetrics : t -> string -> unit
(** Write {!to_openmetrics_string} to the given path. *)
