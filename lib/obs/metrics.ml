module Histogram = Lld_sim.Stats.Histogram

type gauge = { g_name : string; g_help : string; g_read : unit -> int }

type t = {
  mutable gauges : gauge list;  (* reverse registration order *)
  mutable counters : gauge list;  (* reverse registration order *)
  hist_tbl : (string, Histogram.t) Hashtbl.t;
  mutable hist_order : string list;  (* reverse first-use order *)
}

let create () =
  { gauges = []; counters = []; hist_tbl = Hashtbl.create 32; hist_order = [] }

let histogram t name =
  match Hashtbl.find_opt t.hist_tbl name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.add t.hist_tbl name h;
    t.hist_order <- name :: t.hist_order;
    h

let observe t name v = Histogram.add (histogram t name) v

let histograms t =
  List.rev_map (fun name -> (name, Hashtbl.find t.hist_tbl name)) t.hist_order

let find_histogram t name = Hashtbl.find_opt t.hist_tbl name

let reset_histograms t =
  Hashtbl.iter (fun _ h -> Histogram.reset h) t.hist_tbl

(* Re-registering a name replaces the closure in place, so re-mounting
   the same structures (e.g. recover after create) cannot duplicate
   rows. *)
let upsert rows g =
  if List.exists (fun g0 -> g0.g_name = g.g_name) rows then
    List.map (fun g0 -> if g0.g_name = g.g_name then g else g0) rows
  else g :: rows

let register_gauge t ~name ~help read =
  t.gauges <- upsert t.gauges { g_name = name; g_help = help; g_read = read }

let register_counter t ~name ~help read =
  t.counters <- upsert t.counters { g_name = name; g_help = help; g_read = read }

let sample_gauges t =
  List.rev_map (fun g -> (g.g_name, g.g_read (), g.g_help)) t.gauges

let sample_counters t =
  List.rev_map (fun g -> (g.g_name, g.g_read (), g.g_help)) t.counters

let pp ppf t =
  let counters = sample_counters t in
  if counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter
      (fun (name, v, help) ->
        Format.fprintf ppf "  %-28s %10d  (%s)@," name v help)
      counters
  end;
  let gauges = sample_gauges t in
  if gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter
      (fun (name, v, help) ->
        Format.fprintf ppf "  %-28s %10d  (%s)@," name v help)
      gauges
  end;
  let hists = histograms t in
  if hists <> [] then begin
    Format.fprintf ppf "latency histograms (virtual ns):@,";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "  %-28s %a@," name Histogram.pp h)
      hists
  end;
  if counters = [] && gauges = [] && hists = [] then
    Format.fprintf ppf "(no metrics)@,"

(* Minimal JSON for bench output; [Report.json] lives above us in the
   dependency graph so we emit directly. *)
let json_of_histogram h =
  if Histogram.count h = 0 then "{\"count\":0}"
  else
    Printf.sprintf
      "{\"count\":%d,\"sum_ns\":%d,\"min_ns\":%d,\"max_ns\":%d,\"mean_ns\":%.1f,\"p50_ns\":%d,\"p95_ns\":%d,\"p99_ns\":%d}"
      (Histogram.count h) (Histogram.sum h) (Histogram.min_ns h)
      (Histogram.max_ns h) (Histogram.mean h) (Histogram.p50 h)
      (Histogram.p95 h) (Histogram.p99 h)

let to_json_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v, _) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name v))
    (sample_counters t);
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (name, v, _) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name v))
    (sample_gauges t);
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" name (json_of_histogram h)))
    (histograms t);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* OpenMetrics / Prometheus text exposition.  One family per counter,
   gauge, and histogram; histogram buckets are cumulative with an
   explicit [+Inf]; the output terminates with [# EOF] as the
   OpenMetrics grammar requires.  Names are sanitised into the
   [a-zA-Z_:][a-zA-Z0-9_:]* alphabet (dots become underscores) and
   prefixed with [lld_]. *)

let om_name name =
  let buf = Buffer.create (String.length name + 4) in
  Buffer.add_string buf "lld_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let om_escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let om_header buf name kind help =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
  if help <> "" then
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name (om_escape_help help))

let om_histogram buf name h =
  om_header buf name "histogram" "latency histogram (virtual ns)";
  let cum = ref 0 in
  List.iter
    (fun (_, hi, n) ->
      cum := !cum + n;
      (* the top log2 bucket is unbounded: fold it into +Inf below *)
      if hi < max_int then
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name hi !cum))
    (Histogram.nonzero_buckets h);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name (Histogram.count h));
  Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" name (Histogram.sum h));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" name (Histogram.count h))

let to_openmetrics_string t =
  let buf = Buffer.create 8192 in
  List.iter
    (fun (name, v, help) ->
      let n = om_name name in
      om_header buf n "counter" help;
      Buffer.add_string buf (Printf.sprintf "%s_total %d\n" n v))
    (sample_counters t);
  List.iter
    (fun (name, v, help) ->
      let n = om_name name in
      om_header buf n "gauge" help;
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n v))
    (sample_gauges t);
  List.iter (fun (name, h) -> om_histogram buf (om_name name) h) (histograms t);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let dump_openmetrics t path =
  let oc = open_out path in
  output_string oc (to_openmetrics_string t);
  close_out oc
