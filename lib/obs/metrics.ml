module Histogram = Lld_sim.Stats.Histogram

type gauge = { g_name : string; g_help : string; g_read : unit -> int }

type t = {
  mutable gauges : gauge list;  (* reverse registration order *)
  hist_tbl : (string, Histogram.t) Hashtbl.t;
  mutable hist_order : string list;  (* reverse first-use order *)
}

let create () = { gauges = []; hist_tbl = Hashtbl.create 32; hist_order = [] }

let histogram t name =
  match Hashtbl.find_opt t.hist_tbl name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.add t.hist_tbl name h;
    t.hist_order <- name :: t.hist_order;
    h

let observe t name v = Histogram.add (histogram t name) v

let histograms t =
  List.rev_map (fun name -> (name, Hashtbl.find t.hist_tbl name)) t.hist_order

let find_histogram t name = Hashtbl.find_opt t.hist_tbl name

let reset_histograms t =
  Hashtbl.iter (fun _ h -> Histogram.reset h) t.hist_tbl

(* Re-registering a name replaces the closure in place, so re-mounting
   the same structures (e.g. recover after create) cannot duplicate
   rows. *)
let register_gauge t ~name ~help read =
  let g = { g_name = name; g_help = help; g_read = read } in
  if List.exists (fun g0 -> g0.g_name = name) t.gauges then
    t.gauges <-
      List.map (fun g0 -> if g0.g_name = name then g else g0) t.gauges
  else t.gauges <- g :: t.gauges

let sample_gauges t =
  List.rev_map (fun g -> (g.g_name, g.g_read (), g.g_help)) t.gauges

let pp ppf t =
  let gauges = sample_gauges t in
  if gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter
      (fun (name, v, help) ->
        Format.fprintf ppf "  %-28s %10d  (%s)@," name v help)
      gauges
  end;
  let hists = histograms t in
  if hists <> [] then begin
    Format.fprintf ppf "latency histograms (virtual ns):@,";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "  %-28s %a@," name Histogram.pp h)
      hists
  end;
  if gauges = [] && hists = [] then Format.fprintf ppf "(no metrics)@,"

(* Minimal JSON for bench output; [Report.json] lives above us in the
   dependency graph so we emit directly. *)
let json_of_histogram h =
  if Histogram.count h = 0 then "{\"count\":0}"
  else
    Printf.sprintf
      "{\"count\":%d,\"sum_ns\":%d,\"min_ns\":%d,\"max_ns\":%d,\"mean_ns\":%.1f,\"p50_ns\":%d,\"p95_ns\":%d,\"p99_ns\":%d}"
      (Histogram.count h) (Histogram.sum h) (Histogram.min_ns h)
      (Histogram.max_ns h) (Histogram.mean h) (Histogram.p50 h)
      (Histogram.p95 h) (Histogram.p99 h)

let to_json_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"gauges\":{";
  List.iteri
    (fun i (name, v, _) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name v))
    (sample_gauges t);
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" name (json_of_histogram h)))
    (histograms t);
  Buffer.add_string buf "}}";
  Buffer.contents buf
