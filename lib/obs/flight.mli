(** Flight recorder: an always-on black box of recent structured events.

    A bounded ring of cheap structured entries (category, name, integer/
    string arguments, virtual-ns timestamp) designed to run in every
    configuration — including ones where the span tracer is off — so
    that a crashcheck failure, differ divergence, or recovery invariant
    error can dump the last few thousand things the system did.  Like
    {!Trace}, recording only reads the virtual clock and never charges
    it, so an enabled flight recorder cannot perturb the cost model. *)

type entry = {
  fl_ns : int;
  fl_cat : string;
  fl_name : string;
  fl_args : (string * Trace.arg) list;
}

type t

val disabled : t
(** A recorder that records nothing; every probe on it is a no-op. *)

val create : ?capacity:int -> clock:Lld_sim.Clock.t -> unit -> t
(** Live recorder over [clock].  [capacity] bounds the ring (default
    4096 entries). *)

val enabled : t -> bool
val record : t -> string -> string -> (string * Trace.arg) list -> unit
val capacity : t -> int

val count : t -> int
(** Total entries recorded since creation (including overwritten). *)

val dropped : t -> int
(** Entries lost to ring overwrite. *)

val clear : t -> unit

val entries : t -> entry list
(** Entries currently held, oldest first. *)

val to_jsonl_string : t -> string
val write_jsonl_file : t -> string -> unit
val pp_entry : Format.formatter -> entry -> unit
