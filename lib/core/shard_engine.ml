include Engine.Make (Shard)
