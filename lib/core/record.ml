type version = Persistent | Committed | Shadow of Types.Aru_id.t

let version_equal a b =
  match (a, b) with
  | Persistent, Persistent | Committed, Committed -> true
  | Shadow x, Shadow y -> Types.Aru_id.equal x y
  | (Persistent | Committed | Shadow _), _ -> false

type phys = { seg_index : int; slot : int }

type block = {
  id : Types.Block_id.t;
  version : version;
  mutable alloc : bool;
  mutable member_of : Types.List_id.t option;
  mutable successor : Types.Block_id.t option;
  mutable phys : phys option;
  mutable data : Lld_util.Blk.t option;
  mutable stamp : int;
  mutable alloc_owner : Types.Aru_id.t option;
  mutable durable_seq : int;
  mutable next_same_id : block option;
  mutable next_same_state : block option;
}

type list_r = {
  lid : Types.List_id.t;
  lversion : version;
  mutable exists : bool;
  mutable first : Types.Block_id.t option;
  mutable last : Types.Block_id.t option;
  mutable lstamp : int;
  mutable l_owner : Types.Aru_id.t option;
  mutable l_durable_seq : int;
  mutable l_next_same_id : list_r option;
  mutable l_next_same_state : list_r option;
}

let fresh_block id =
  {
    id;
    version = Persistent;
    alloc = false;
    member_of = None;
    successor = None;
    phys = None;
    data = None;
    stamp = 0;
    alloc_owner = None;
    durable_seq = 0;
    next_same_id = None;
    next_same_state = None;
  }

let fresh_list lid =
  {
    lid;
    lversion = Persistent;
    exists = false;
    first = None;
    last = None;
    lstamp = 0;
    l_owner = None;
    l_durable_seq = 0;
    l_next_same_id = None;
    l_next_same_state = None;
  }

let alt_block version ~from =
  {
    id = from.id;
    version;
    alloc = from.alloc;
    member_of = from.member_of;
    successor = from.successor;
    phys = from.phys;
    data = None;
    stamp = from.stamp;
    alloc_owner = from.alloc_owner;
    durable_seq = max_int;
    next_same_id = None;
    next_same_state = None;
  }

let alt_list version ~from =
  {
    lid = from.lid;
    lversion = version;
    exists = from.exists;
    first = from.first;
    last = from.last;
    lstamp = from.lstamp;
    l_owner = from.l_owner;
    l_durable_seq = max_int;
    l_next_same_id = None;
    l_next_same_state = None;
  }

let insert_alt_block ~anchor alt =
  alt.next_same_id <- anchor.next_same_id;
  anchor.next_same_id <- Some alt

let remove_alt_block ~anchor alt =
  let rec loop prev =
    match prev.next_same_id with
    | None -> ()
    | Some r when r == alt ->
      prev.next_same_id <- alt.next_same_id;
      alt.next_same_id <- None
    | Some r -> loop r
  in
  loop anchor

let find_block ~anchor version =
  let rec loop node hops =
    match node with
    | None -> (None, hops)
    | Some r when version_equal r.version version -> (Some r, hops)
    | Some r -> loop r.next_same_id (hops + 1)
  in
  if version_equal version Persistent then (Some anchor, 0)
  else loop anchor.next_same_id 1

let newest_shadow_block ~anchor =
  let rec loop node hops best =
    match node with
    | None -> (best, hops)
    | Some r ->
      let best =
        match (r.version, best) with
        | Shadow _, None -> Some r
        | Shadow _, Some b when r.stamp > b.stamp -> Some r
        | (Shadow _ | Persistent | Committed), _ -> best
      in
      loop r.next_same_id (hops + 1) best
  in
  loop anchor.next_same_id 0 None

let alt_block_count ~anchor =
  let rec loop node n =
    match node with None -> n | Some r -> loop r.next_same_id (n + 1)
  in
  loop anchor.next_same_id 0

let insert_alt_list ~anchor alt =
  alt.l_next_same_id <- anchor.l_next_same_id;
  anchor.l_next_same_id <- Some alt

let remove_alt_list ~anchor alt =
  let rec loop prev =
    match prev.l_next_same_id with
    | None -> ()
    | Some r when r == alt ->
      prev.l_next_same_id <- alt.l_next_same_id;
      alt.l_next_same_id <- None
    | Some r -> loop r
  in
  loop anchor

let find_list ~anchor version =
  let rec loop node hops =
    match node with
    | None -> (None, hops)
    | Some r when version_equal r.lversion version -> (Some r, hops)
    | Some r -> loop r.l_next_same_id (hops + 1)
  in
  if version_equal version Persistent then (Some anchor, 0)
  else loop anchor.l_next_same_id 1

let alt_list_count ~anchor =
  let rec loop node n =
    match node with None -> n | Some r -> loop r.l_next_same_id (n + 1)
  in
  loop anchor.l_next_same_id 0
