(* Sharded LLD facade: S independent Lld instances, stateless placement
   of the global name spaces, single-shard commits passed through
   unchanged and cross-shard ARUs committed with two-phase commit over
   the shards' summary records.  See shard.mli and DESIGN.md §5.14. *)

module Obs = Lld_obs.Obs
module Tr = Lld_obs.Trace

(* internal: a 2PC whose prepare phase failed was aborted in place on
   every participant; carries the original failure for the caller to
   surface after it drops the facade entry.  Never escapes this module. *)
exception Aborted_2pc of exn

(* ------------------------------------------------------------------ *)
(* Placement: pure, total, state-free                                  *)

let block_shard ~shards g = g mod shards
let block_local ~shards g = g / shards
let block_global ~shards ~shard local = (local * shards) + shard
let list_shard ~shards g = (g - 1) mod shards
let list_local ~shards g = ((g - 1) / shards) + 1
let list_global ~shards ~shard local = ((local - 1) * shards) + shard + 1

(* ------------------------------------------------------------------ *)

type astate =
  | Open
  | Queued of int
      (* single participant shard whose group-commit queue holds it *)

type aentry = {
  mutable locals : (int * Types.Aru_id.t) list;  (* shard -> local ARU *)
  mutable state : astate;
}

type t = {
  shards : Lld.t array;
  s : int;
  cfg : Config.t;
  counters : Counters.t;  (* the facade's own; shard 0's when s = 1 *)
  arus : (int, aentry) Hashtbl.t;  (* global ARU id -> entry (s > 1) *)
  mutable next_aru : int;
  mutable gid : int;  (* next cross-shard transaction id *)
  mutable sync_committed : int;
      (* cross-shard ARUs committed synchronously at submission, not
         yet reported through a flush_commits return value *)
  mutable fobs : Obs.t;
}

let shard_count t = t.s
let handles t = t.shards
let sh0 t = t.shards.(0)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let check_uniform shards =
  let d0 = shards.(0) in
  Array.iteri
    (fun i d ->
      if i > 0 then begin
        if not (Lld.clock d == Lld.clock d0) then
          invalid_arg "Shard: all shard disks must share one clock";
        if Lld.capacity d <> Lld.capacity d0 then
          invalid_arg "Shard: shard capacities differ";
        if Lld.block_bytes d <> Lld.block_bytes d0 then
          invalid_arg "Shard: shard block sizes differ"
      end)
    shards

let wrap cfg shards =
  let s = Array.length shards in
  check_uniform shards;
  {
    shards;
    s;
    cfg;
    counters = (if s = 1 then Lld.counters shards.(0) else Counters.create ());
    arus = Hashtbl.create 8;
    next_aru = 1;
    gid = Array.fold_left (fun m sh -> max m (Lld.next_gid sh)) 1 shards;
    sync_committed = 0;
    fobs = Obs.null;
  }

let create ?(config = Config.default) ?(obs = Obs.null) disks =
  if Array.length disks = 0 then invalid_arg "Shard.create: no disks";
  let shards =
    Array.mapi
      (fun i d -> Lld.create ~config ~obs:(if i = 0 then obs else Obs.null) d)
      disks
  in
  let t = wrap config shards in
  t.fobs <- obs;
  t

let recover ?(config = Config.default) ?(obs = Obs.null) disks =
  let n = Array.length disks in
  if n = 0 then invalid_arg "Shard.recover: no disks";
  if n = 1 then begin
    (* single shard: plain mount, bit-identical to an unsharded Lld *)
    let lld, report = Lld.recover ~config ~obs disks.(0) in
    let t = wrap config [| lld |] in
    t.fobs <- obs;
    (t, [| report |])
  end
  else begin
    (* the decision oracle must be complete before any shard replays,
       so early open is off and all logs are scanned up front *)
    let config = { config with Config.recovery_early_open = false } in
    let union : (int, bool) Hashtbl.t = Hashtbl.create 16 in
    let watermark = ref 1 in
    Array.iter
      (fun d ->
        let tbl, wm = Recovery.scan_decisions d in
        if wm > !watermark then watermark := wm;
        Hashtbl.iter
          (fun gid committed ->
            (* commit wins: the coordinator's Decide is authoritative
               and participants only ever mirror it *)
            if committed || not (Hashtbl.mem union gid) then
              Hashtbl.replace union gid committed)
          tbl)
      disks;
    let decisions gid = Hashtbl.find_opt union gid in
    let pairs = Array.make n None in
    Array.iteri
      (fun i d ->
        let obs = if i = 0 then obs else Obs.null in
        pairs.(i) <- Some (Lld.recover ~config ~obs ~decisions d))
      disks;
    let get i = match pairs.(i) with Some p -> p | None -> assert false in
    let shards = Array.init n (fun i -> fst (get i)) in
    let reports = Array.init n (fun i -> snd (get i)) in
    let t = wrap config shards in
    if !watermark > t.gid then t.gid <- !watermark;
    t.fobs <- obs;
    (t, reports)
  end

(* ------------------------------------------------------------------ *)
(* Error translation: exceptions escaping a shard name local
   identifiers; the caller only knows global ones.                     *)

let global_of_local_aru t sh la =
  Hashtbl.fold
    (fun g e acc ->
      match acc with
      | Some _ -> acc
      | None -> (
        match List.assoc_opt sh e.locals with
        | Some a when Types.Aru_id.equal a la -> Some g
        | _ -> None))
    t.arus None

let translate_exn t sh = function
  | Errors.Unallocated_block b ->
    Errors.Unallocated_block
      (Types.Block_id.of_int
         (block_global ~shards:t.s ~shard:sh (Types.Block_id.to_int b)))
  | Errors.Unallocated_list l ->
    Errors.Unallocated_list
      (Types.List_id.of_int
         (list_global ~shards:t.s ~shard:sh (Types.List_id.to_int l)))
  | Errors.Block_not_on_list b ->
    Errors.Block_not_on_list
      (Types.Block_id.of_int
         (block_global ~shards:t.s ~shard:sh (Types.Block_id.to_int b)))
  | Errors.Unknown_aru a as e -> (
    match global_of_local_aru t sh a with
    | Some g -> Errors.Unknown_aru (Types.Aru_id.of_int g)
    | None -> e)
  | Errors.Commit_pending a as e -> (
    match global_of_local_aru t sh a with
    | Some g -> Errors.Commit_pending (Types.Aru_id.of_int g)
    | None -> e)
  | e -> e

let routed t sh f = try f () with e -> raise (translate_exn t sh e)

(* ------------------------------------------------------------------ *)
(* Global ARUs (s > 1): one entry per ARU, local slices opened lazily
   on the first operation that touches a shard                         *)

let entry t aid =
  match Hashtbl.find_opt t.arus (Types.Aru_id.to_int aid) with
  | Some e -> e
  | None -> raise (Errors.Unknown_aru aid)

let local_aru t e sh =
  match List.assoc_opt sh e.locals with
  | Some a -> a
  | None ->
    let a = Lld.begin_aru t.shards.(sh) in
    e.locals <- (sh, a) :: e.locals;
    a

(* the ?aru argument an operation routed to [sh] should carry *)
let local_for t aru sh =
  match aru with
  | None -> None
  | Some aid -> Some (local_aru t (entry t aid) sh)

let participants e =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) e.locals

let begin_aru t =
  if t.s = 1 then Lld.begin_aru (sh0 t)
  else begin
    let id = t.next_aru in
    t.next_aru <- id + 1;
    Hashtbl.replace t.arus id { locals = []; state = Open };
    t.counters.Counters.arus_begun <- t.counters.Counters.arus_begun + 1;
    Types.Aru_id.of_int id
  end

(* Commit an open entry: fast path for 0/1 participants, two-phase
   commit across several.  The coordinator is the lowest participant
   shard; it needs no Prepare — its slice commits or dies with the
   Decide record (the transaction's single commit point). *)
let commit_entry t e =
  match participants e with
  | [] -> ()
  | [ (sh, la) ] -> routed t sh (fun () -> Lld.end_aru t.shards.(sh) la)
  | (csh, ca) :: rest ->
    let gid = t.gid in
    t.gid <- gid + 1;
    Obs.timed t.fobs Tr.Aru "commit.cross"
      ~args:
        [
          ("gid", Tr.I gid);
          ("participants", Tr.I (List.length rest + 1));
          ("coordinator", Tr.I csh);
        ]
      (fun () ->
        (* the prepare barriers land on independent spindles, as do the
           decide-propagation writes: each phase is one parallel round
           (Clock.overlap); the phases themselves stay ordered — every
           prepare is durable before the Decide, which is durable
           before any participant applies it *)
        (try
           Lld_sim.Clock.overlap
             (Lld.clock (sh0 t))
             (List.map
                (fun (sh, la) () ->
                  routed t sh (fun () ->
                      Lld.prepare_commit t.shards.(sh) la ~gid
                        ~coordinator:csh))
                rest)
         with e ->
           (* mid-prepare failure (Disk_full, a faulted write): presume
              abort NOW rather than dangling until a remount — each
              already-prepared slice writes its Decide{abort} and
              unwinds, the rest (coordinator included) abort in place,
              so no prepare is left pinning the cleaner's floor.  The
              cleanup is best-effort (recovery's presumed abort is the
              backstop if a slice can't even write its abort record).
              Only the prepare phase may do this: once a Decide has
              been attempted it may be durable even if its seal
              raised, and recovery — not us — must resolve the
              survivors. *)
           let drop sh la =
             try Lld.abort_prepared t.shards.(sh) la
             with _ -> ( try Lld.abort_aru t.shards.(sh) la with _ -> ())
           in
           List.iter (fun (sh, la) -> drop sh la) rest;
           (try Lld.abort_aru t.shards.(csh) ca with _ -> ());
           raise (Aborted_2pc e));
        routed t csh (fun () -> Lld.decide_commit t.shards.(csh) ca ~gid);
        Lld_sim.Clock.overlap
          (Lld.clock (sh0 t))
          (List.map
             (fun (sh, la) () ->
               routed t sh (fun () -> Lld.commit_prepared t.shards.(sh) la))
             rest))

let drop_entry_committed t aid =
  Hashtbl.remove t.arus (Types.Aru_id.to_int aid);
  t.counters.Counters.arus_committed <- t.counters.Counters.arus_committed + 1

(* run [commit_entry]; if its prepare phase failed the local slices are
   already gone, so drop the facade entry too and surface the original
   failure *)
let commit_entry_or_abort t aid e =
  try commit_entry t e
  with Aborted_2pc orig ->
    Hashtbl.remove t.arus (Types.Aru_id.to_int aid);
    t.counters.Counters.arus_aborted <- t.counters.Counters.arus_aborted + 1;
    raise orig

let end_aru t aid =
  if t.s = 1 then Lld.end_aru (sh0 t) aid
  else begin
    let e = entry t aid in
    (match e.state with
    | Queued _ -> raise (Errors.Commit_pending aid)
    | Open -> ());
    commit_entry_or_abort t aid e;
    drop_entry_committed t aid
  end

let abort_aru t aid =
  if t.s = 1 then Lld.abort_aru (sh0 t) aid
  else begin
    let e = entry t aid in
    (* a queued single-shard intent is withdrawn by the shard's own
       abort path; nothing extra to do at the facade *)
    List.iter
      (fun (sh, la) -> routed t sh (fun () -> Lld.abort_aru t.shards.(sh) la))
      (participants e);
    Hashtbl.remove t.arus (Types.Aru_id.to_int aid);
    t.counters.Counters.arus_aborted <- t.counters.Counters.arus_aborted + 1
  end

let submit_commit t aid =
  if t.s = 1 then Lld.submit_commit (sh0 t) aid
  else begin
    let e = entry t aid in
    (match e.state with
    | Queued _ -> raise (Errors.Commit_pending aid)
    | Open -> ());
    match participants e with
    | [ (sh, la) ] ->
      routed t sh (fun () -> Lld.submit_commit t.shards.(sh) la);
      if Lld.commit_pending t.shards.(sh) la then e.state <- Queued sh
      else
        (* window = 0 (or sequential) degenerates to an immediate
           commit inside the shard *)
        drop_entry_committed t aid
    | _ ->
      (* 0 participants, or a cross-shard ARU: commit synchronously —
         a 2PC pays its own barriers, so the group-commit queue buys it
         nothing.  Reported through the next flush_commits. *)
      t.counters.Counters.commits_submitted <-
        t.counters.Counters.commits_submitted + 1;
      commit_entry_or_abort t aid e;
      drop_entry_committed t aid;
      t.sync_committed <- t.sync_committed + 1
  end

(* drop entries whose queued single-shard commit has drained *)
let reap_queued t =
  let dead =
    Hashtbl.fold
      (fun g e acc ->
        match e.state with
        | Queued sh -> (
          match List.assoc_opt sh e.locals with
          | Some la when not (Lld.commit_pending t.shards.(sh) la) -> g :: acc
          | _ -> acc)
        | Open -> acc)
      t.arus []
  in
  List.iter
    (fun g -> drop_entry_committed t (Types.Aru_id.of_int g))
    dead

let flush_commits t =
  if t.s = 1 then Lld.flush_commits (sh0 t)
  else begin
    (* the per-shard drains hit independent spindles: issue them as one
       parallel round, so the wall cost is the slowest shard's barrier,
       not the sum (Clock.overlap) *)
    let counts = Array.make t.s 0 in
    Lld_sim.Clock.overlap (Lld.clock (sh0 t))
      (List.init t.s (fun i () ->
           counts.(i) <- Lld.flush_commits t.shards.(i)));
    let k = Array.fold_left ( + ) 0 counts in
    reap_queued t;
    let k = k + t.sync_committed in
    t.sync_committed <- 0;
    k
  end

let commit_due t =
  if t.s = 1 then Lld.commit_due (sh0 t)
  else t.sync_committed > 0 || Array.exists Lld.commit_due t.shards

let commit_pending t aid =
  if t.s = 1 then Lld.commit_pending (sh0 t) aid
  else
    match Hashtbl.find_opt t.arus (Types.Aru_id.to_int aid) with
    | Some { state = Queued sh; locals; _ } -> (
      match List.assoc_opt sh locals with
      | Some la when Lld.commit_pending t.shards.(sh) la -> true
      | _ ->
        (* drained since we queued it: reap lazily so waiters wake *)
        drop_entry_committed t aid;
        false)
    | Some _ | None -> false

let pending_commits t =
  if t.s = 1 then Lld.pending_commits (sh0 t)
  else
    Array.fold_left (fun acc sh -> acc + Lld.pending_commits sh) 0 t.shards
    + t.sync_committed

let with_aru t f =
  let aru = begin_aru t in
  match f aru with
  | v ->
    end_aru t aru;
    v
  | exception e ->
    (match t.cfg.Config.mode with
    | Config.Concurrent -> abort_aru t aru
    | Config.Sequential -> end_aru t aru);
    raise e

(* ------------------------------------------------------------------ *)
(* The LD operations: route by placement, translate ids both ways      *)

(* pick the shard holding the fewest lists (ties: lowest index) — a
   balanced, state-derivable policy the model mirrors, stable across
   remounts because it depends only on the committed list population *)
let pick_list_shard t =
  let best = ref 0 and bestn = ref max_int in
  Array.iteri
    (fun i sh ->
      let n = List.length (Lld.lists sh) in
      if n < !bestn then begin
        best := i;
        bestn := n
      end)
    t.shards;
  !best

let new_list t ?aru () =
  if t.s = 1 then Lld.new_list (sh0 t) ?aru ()
  else begin
    let sh = pick_list_shard t in
    let la = local_for t aru sh in
    let ll = routed t sh (fun () -> Lld.new_list t.shards.(sh) ?aru:la ()) in
    Types.List_id.of_int
      (list_global ~shards:t.s ~shard:sh (Types.List_id.to_int ll))
  end

let new_block t ?aru ~list ~pred () =
  if t.s = 1 then Lld.new_block (sh0 t) ?aru ~list ~pred ()
  else begin
    let lg = Types.List_id.to_int list in
    if lg < 1 then raise (Errors.Unallocated_list list);
    let sh = list_shard ~shards:t.s lg in
    let ll = Types.List_id.of_int (list_local ~shards:t.s lg) in
    let lpred =
      match pred with
      | Summary.Head -> Summary.Head
      | Summary.After p ->
        let pg = Types.Block_id.to_int p in
        let psh = block_shard ~shards:t.s pg in
        if psh <> sh then begin
          (* the predecessor lives on another shard, so it cannot be a
             member of this list; mirror the flat spec's error order —
             unallocated-in-the-addressed-state beats not-on-list *)
          let pl = Types.Block_id.of_int (block_local ~shards:t.s pg) in
          let pa = local_for t aru psh in
          if not (Lld.block_allocated t.shards.(psh) ?aru:pa pl) then
            raise (Errors.Unallocated_block p)
          else raise (Errors.Block_not_on_list p)
        end;
        Summary.After (Types.Block_id.of_int (block_local ~shards:t.s pg))
    in
    let la = local_for t aru sh in
    let lb =
      routed t sh (fun () ->
          Lld.new_block t.shards.(sh) ?aru:la ~list:ll ~pred:lpred ())
    in
    Types.Block_id.of_int
      (block_global ~shards:t.s ~shard:sh (Types.Block_id.to_int lb))
  end

(* route a block-addressed operation to the owning shard *)
let on_block t aru b f =
  let g = Types.Block_id.to_int b in
  let sh = block_shard ~shards:t.s g in
  let lb = Types.Block_id.of_int (block_local ~shards:t.s g) in
  let la = local_for t aru sh in
  routed t sh (fun () -> f t.shards.(sh) la lb sh)

let write t ?aru block data =
  if t.s = 1 then Lld.write (sh0 t) ?aru block data
  else on_block t aru block (fun sh la lb _ -> Lld.write sh ?aru:la lb data)

let read t ?aru block =
  if t.s = 1 then Lld.read (sh0 t) ?aru block
  else on_block t aru block (fun sh la lb _ -> Lld.read sh ?aru:la lb)

let delete_block t ?aru block =
  if t.s = 1 then Lld.delete_block (sh0 t) ?aru block
  else on_block t aru block (fun sh la lb _ -> Lld.delete_block sh ?aru:la lb)

let block_allocated t ?aru block =
  if t.s = 1 then Lld.block_allocated (sh0 t) ?aru block
  else
    on_block t aru block (fun sh la lb _ -> Lld.block_allocated sh ?aru:la lb)

let block_member t ?aru block =
  if t.s = 1 then Lld.block_member (sh0 t) ?aru block
  else
    on_block t aru block (fun sh la lb shi ->
        Option.map
          (fun l ->
            Types.List_id.of_int
              (list_global ~shards:t.s ~shard:shi (Types.List_id.to_int l)))
          (Lld.block_member sh ?aru:la lb))

(* route a list-addressed operation; [if_invalid] handles global ids no
   shard can own (list 0 — ids are 1-based) *)
let on_list t aru l ~if_invalid f =
  let g = Types.List_id.to_int l in
  if g < 1 then if_invalid ()
  else begin
    let sh = list_shard ~shards:t.s g in
    let ll = Types.List_id.of_int (list_local ~shards:t.s g) in
    let la = local_for t aru sh in
    routed t sh (fun () -> f t.shards.(sh) la ll sh)
  end

let delete_list t ?aru list =
  if t.s = 1 then Lld.delete_list (sh0 t) ?aru list
  else
    on_list t aru list
      ~if_invalid:(fun () -> raise (Errors.Unallocated_list list))
      (fun sh la ll _ -> Lld.delete_list sh ?aru:la ll)

let list_exists t ?aru list =
  if t.s = 1 then Lld.list_exists (sh0 t) ?aru list
  else
    on_list t aru list
      ~if_invalid:(fun () -> false)
      (fun sh la ll _ -> Lld.list_exists sh ?aru:la ll)

let list_blocks t ?aru list =
  if t.s = 1 then Lld.list_blocks (sh0 t) ?aru list
  else
    on_list t aru list
      ~if_invalid:(fun () -> raise (Errors.Unallocated_list list))
      (fun sh la ll shi ->
        List.map
          (fun b ->
            Types.Block_id.of_int
              (block_global ~shards:t.s ~shard:shi (Types.Block_id.to_int b)))
          (Lld.list_blocks sh ?aru:la ll))

let lists t =
  if t.s = 1 then Lld.lists (sh0 t)
  else begin
    let acc = ref [] in
    Array.iteri
      (fun i sh ->
        List.iter
          (fun l ->
            acc :=
              list_global ~shards:t.s ~shard:i (Types.List_id.to_int l)
              :: !acc)
          (Lld.lists sh))
      t.shards;
    List.sort Int.compare !acc |> List.map Types.List_id.of_int
  end

let flush t = Array.iter Lld.flush t.shards

let capacity t = t.s * Lld.capacity (sh0 t)

let allocated_blocks t =
  Array.fold_left (fun acc sh -> acc + Lld.allocated_blocks sh) 0 t.shards

let block_bytes t = Lld.block_bytes (sh0 t)

let aru_active t aid =
  if t.s = 1 then Lld.aru_active (sh0 t) aid
  else Hashtbl.mem t.arus (Types.Aru_id.to_int aid)

let active_arus t =
  if t.s = 1 then Lld.active_arus (sh0 t)
  else
    Hashtbl.fold (fun g _ acc -> g :: acc) t.arus []
    |> List.sort Int.compare
    |> List.map Types.Aru_id.of_int

let aru_shards t aid =
  if t.s = 1 then
    if Lld.aru_active (sh0 t) aid then [ 0 ] else raise (Errors.Unknown_aru aid)
  else List.map fst (participants (entry t aid))

let next_gid t = if t.s = 1 then Lld.next_gid (sh0 t) else t.gid

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)

let checkpoint t = Array.iter Lld.checkpoint t.shards
let scrub t = Array.map Lld.scrub t.shards

let scavenge t =
  Array.fold_left (fun acc sh -> acc + Lld.scavenge sh) 0 t.shards

let orphan_blocks t =
  if t.s = 1 then Lld.orphan_blocks (sh0 t)
  else begin
    let acc = ref [] in
    Array.iteri
      (fun i sh ->
        List.iter
          (fun b ->
            acc :=
              block_global ~shards:t.s ~shard:i (Types.Block_id.to_int b)
              :: !acc)
          (Lld.orphan_blocks sh))
      t.shards;
    List.sort Int.compare !acc |> List.map Types.Block_id.of_int
  end

let recovery_invariant_errors t =
  let errs = ref [] in
  Array.iteri
    (fun i sh ->
      List.iter
        (fun e -> errs := Printf.sprintf "shard %d: %s" i e :: !errs)
        (Lld.recovery_invariant_errors sh);
      match Lld.prepared_arus sh with
      | [] -> ()
      | dangling ->
        errs :=
          Printf.sprintf
            "shard %d: %d ARU(s) still prepared after recovery (%s)" i
            (List.length dangling)
            (String.concat "," (List.map string_of_int dangling))
          :: !errs)
    t.shards;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Measurement / observability                                         *)

let clock t = Lld.clock (sh0 t)
let cost_model t = Lld.cost_model (sh0 t)
let config t = t.cfg
let counters t = t.counters

let total_counters t =
  let sum = Counters.copy t.counters in
  if t.s > 1 then
    Array.iter
      (fun sh ->
        let c = Lld.counters sh in
        List.iter
          (fun (_, get, set) -> set sum (get sum + get c))
          Counters.fields)
      t.shards;
  sum

let set_obs t obs =
  t.fobs <- obs;
  (* shard 0 only: the per-instance gauge names would collide *)
  Lld.set_obs (sh0 t) obs

let obs t = if t.s = 1 then Lld.obs (sh0 t) else t.fobs
