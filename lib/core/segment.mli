(** The open segment buffer and the on-disk segment format (v3).

    A segment is filled in main memory and written to disk in a single
    operation (paper §2).  Data blocks occupy fixed 4 KB slots growing
    from the front; at the back sit the summary entries, a per-slot
    CRC32c table, and a trailing 32 B header whose meta checksum covers
    all three.  Either region can exhaust the segment first — a
    workload of pure meta-data operations produces segments that are
    almost entirely summary (the paper's ARU-latency experiment writes
    24 such segments for 500,000 commit records).

    A torn write (power loss mid-segment) is detected at recovery: the
    meta region sits at the {e end} of the image, so a persisted prefix
    never carries a matching meta CRC for the new content.  Single-slot
    media rot is pinpointed by the per-slot CRCs — every slot read is
    verified, and [lld scrub] repairs what redundancy allows
    (DESIGN.md §5.13).

    The buffer and all slot reads are {!Lld_util.Blk.t} views; see the
    ownership notes on each function. *)

type t

val create : Lld_disk.Geometry.t -> seq:int -> disk_index:int -> t
(** A fresh, empty buffer destined for disk segment [disk_index], with
    log sequence number [seq]. *)

val seq : t -> int
val disk_index : t -> int
val is_empty : t -> bool
val slots_used : t -> int
val summary_bytes : t -> int
val entry_count : t -> int

val has_room : t -> data_blocks:int -> entry_bytes:int -> bool
(** Whether [data_blocks] more slots (each costing a block plus its
    CRC-table entry) plus [entry_bytes] more summary bytes fit. *)

(** Which stream wrote a slot last.  Slot reuse across scopes is only
    sound when the writer's commit record is guaranteed to land in this
    same segment (see [Lld.end_aru]'s reservation); otherwise a sealed
    segment could expose an uncommitted ARU's bytes through an earlier,
    durable entry that shares the slot. *)
type scope = Simple_scope | Aru_scope of Types.Aru_id.t

val slot_of_block : t -> Types.Block_id.t -> int option
(** The slot currently holding this block's data in the open segment,
    if any. *)

val put_block :
  t ->
  scope:scope ->
  allow_cross_scope:bool ->
  Types.Block_id.t ->
  Lld_util.Blk.t ->
  int
(** Blit the block view into a slot and return the slot.  The block's
    existing slot is reused when [allow_cross_scope] is true or the
    previous writer had the same scope; otherwise a fresh slot is taken
    (the old slot keeps its bytes for the entries that reference it).
    Raises [Invalid_argument] when there is no room (callers must check
    {!has_room}) or when the data is not exactly one block. *)

val read_slot : t -> slot:int -> Lld_util.Blk.t
(** View of an occupied slot in the open buffer — valid until the next
    {!put_block} to the same slot. *)

val add_entry : t -> Summary.t -> unit
(** Append a summary entry.  Raises [Invalid_argument] when there is no
    room. *)

val entries : t -> Summary.t list
(** Entries in append order. *)

val seal : t -> Lld_util.Blk.t
(** Serialise to the full segment image in one pass: the accumulated
    summary entries are encoded directly into the meta region, slot
    CRCs and header are written in place, and the buffer itself is
    returned.  The view is immutable from here on — the caller seals
    exactly once and discards the builder, so cached sub-views of a
    sealed image stay valid forever. *)

(** {2 Reading sealed segments (recovery, cleaner, scrub)} *)

type parsed = {
  p_seq : int;
  p_entries : Summary.t list;  (** in append order *)
  p_slots_used : int;
  p_image : Lld_util.Blk.t;  (** the full segment image, for slot reads *)
}

val parse : Lld_disk.Geometry.t -> Lld_util.Blk.t -> parsed option
(** [None] when the image has no valid header or fails its meta
    checksum (an unwritten or torn segment).  Slot data is {e not}
    verified here — each slot's CRC is checked on access
    ({!parsed_slot}) or in bulk by the scrubber ({!verify_slot}). *)

val parsed_slot : Lld_disk.Geometry.t -> parsed -> slot:int -> Lld_util.Blk.t
(** Checksum-verified view of a data slot (aliases [p_image], which is
    immutable).  Raises [Errors.Corruption (Invalid_checksum _)] when
    the slot's bytes no longer match their seal-time CRC. *)

val verify_slot : Lld_disk.Geometry.t -> parsed -> slot:int -> bool
(** Non-raising per-slot check, the scrubber's probe. *)

val unverified_slot :
  Lld_disk.Geometry.t -> parsed -> slot:int -> Lld_util.Blk.t
(** The slot view without the checksum check — for salvage paths that
    must look at damaged data. *)

val tail_bytes : Lld_disk.Geometry.t -> int
(** Trailing bytes of a sealed image guaranteed to cover the header and
    the whole CRC table — what a single-block read fetches (once per
    segment, then memoised) to verify slots without the full image. *)

val tail_slot_crc :
  Lld_disk.Geometry.t -> tail:Lld_util.Blk.t -> slot:int -> int option
(** Expected CRC32c of [slot], extracted from [tail] — a view of the
    last [Blk.length tail] bytes of a sealed segment image.  [None]
    when the tail carries no well-formed sealed header, the slot lies
    outside the sealed range, or the table entry is not inside [tail]
    (the caller should treat all three as segment-level corruption). *)
