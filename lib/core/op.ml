type t =
  | Begin_aru
  | End_aru of Types.Aru_id.t
  | Submit_commit of Types.Aru_id.t
  | Flush_commits
  | Abort_aru of Types.Aru_id.t
  | New_list of Types.Aru_id.t option
  | New_block of {
      aru : Types.Aru_id.t option;
      list : Types.List_id.t;
      pred : Summary.pred;
    }
  | Write of { aru : Types.Aru_id.t option; block : Types.Block_id.t; data : bytes }
  | Read of { aru : Types.Aru_id.t option; block : Types.Block_id.t }
  | Delete_block of { aru : Types.Aru_id.t option; block : Types.Block_id.t }
  | Delete_list of { aru : Types.Aru_id.t option; list : Types.List_id.t }
  | List_exists of { aru : Types.Aru_id.t option; list : Types.List_id.t }
  | Block_allocated of { aru : Types.Aru_id.t option; block : Types.Block_id.t }
  | Block_member of { aru : Types.Aru_id.t option; block : Types.Block_id.t }
  | List_blocks of { aru : Types.Aru_id.t option; list : Types.List_id.t }
  | Lists
  | Flush
  | Scavenge

type result =
  | R_unit
  | R_aru of Types.Aru_id.t
  | R_list of Types.List_id.t
  | R_block of Types.Block_id.t
  | R_data of bytes
  | R_bool of bool
  | R_member of Types.List_id.t option
  | R_blocks of Types.Block_id.t list
  | R_lists of Types.List_id.t list
  | R_int of int
  | R_error of string

let equal_result a b =
  match (a, b) with
  | R_unit, R_unit -> true
  | R_aru x, R_aru y -> Types.Aru_id.equal x y
  | R_list x, R_list y -> Types.List_id.equal x y
  | R_block x, R_block y -> Types.Block_id.equal x y
  | R_data x, R_data y -> Bytes.equal x y
  | R_bool x, R_bool y -> Bool.equal x y
  | R_member x, R_member y -> Option.equal Types.List_id.equal x y
  | R_blocks x, R_blocks y -> List.equal Types.Block_id.equal x y
  | R_lists x, R_lists y -> List.equal Types.List_id.equal x y
  | R_int x, R_int y -> Int.equal x y
  | R_error x, R_error y -> String.equal x y
  | _ -> false

let pp_aru ppf = function
  | None -> ()
  | Some a -> Format.fprintf ppf " [aru %a]" Types.Aru_id.pp a

let pp_pred ppf = function
  | Summary.Head -> Format.pp_print_string ppf "head"
  | Summary.After b -> Format.fprintf ppf "after %a" Types.Block_id.pp b

let data_tag data =
  let h = Hashtbl.hash (Bytes.to_string data) land 0xffffff in
  Printf.sprintf "%dB#%06x" (Bytes.length data) h

let pp ppf = function
  | Begin_aru -> Format.pp_print_string ppf "begin_aru"
  | End_aru a -> Format.fprintf ppf "end_aru %a" Types.Aru_id.pp a
  | Submit_commit a -> Format.fprintf ppf "submit_commit %a" Types.Aru_id.pp a
  | Flush_commits -> Format.pp_print_string ppf "flush_commits"
  | Abort_aru a -> Format.fprintf ppf "abort_aru %a" Types.Aru_id.pp a
  | New_list aru -> Format.fprintf ppf "new_list%a" pp_aru aru
  | New_block { aru; list; pred } ->
    Format.fprintf ppf "new_block list %a pred %a%a" Types.List_id.pp list
      pp_pred pred pp_aru aru
  | Write { aru; block; data } ->
    Format.fprintf ppf "write %a %s%a" Types.Block_id.pp block (data_tag data)
      pp_aru aru
  | Read { aru; block } ->
    Format.fprintf ppf "read %a%a" Types.Block_id.pp block pp_aru aru
  | Delete_block { aru; block } ->
    Format.fprintf ppf "delete_block %a%a" Types.Block_id.pp block pp_aru aru
  | Delete_list { aru; list } ->
    Format.fprintf ppf "delete_list %a%a" Types.List_id.pp list pp_aru aru
  | List_exists { aru; list } ->
    Format.fprintf ppf "list_exists %a%a" Types.List_id.pp list pp_aru aru
  | Block_allocated { aru; block } ->
    Format.fprintf ppf "block_allocated %a%a" Types.Block_id.pp block pp_aru aru
  | Block_member { aru; block } ->
    Format.fprintf ppf "block_member %a%a" Types.Block_id.pp block pp_aru aru
  | List_blocks { aru; list } ->
    Format.fprintf ppf "list_blocks %a%a" Types.List_id.pp list pp_aru aru
  | Lists -> Format.pp_print_string ppf "lists"
  | Flush -> Format.pp_print_string ppf "flush"
  | Scavenge -> Format.pp_print_string ppf "scavenge"

let pp_result ppf = function
  | R_unit -> Format.pp_print_string ppf "()"
  | R_aru a -> Format.fprintf ppf "aru %a" Types.Aru_id.pp a
  | R_list l -> Format.fprintf ppf "list %a" Types.List_id.pp l
  | R_block b -> Format.fprintf ppf "block %a" Types.Block_id.pp b
  | R_data d -> Format.fprintf ppf "data %s" (data_tag d)
  | R_bool b -> Format.pp_print_bool ppf b
  | R_member None -> Format.pp_print_string ppf "member none"
  | R_member (Some l) -> Format.fprintf ppf "member %a" Types.List_id.pp l
  | R_blocks bs ->
    Format.fprintf ppf "blocks [%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Types.Block_id.pp)
      bs
  | R_lists ls ->
    Format.fprintf ppf "lists [%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Types.List_id.pp)
      ls
  | R_int i -> Format.fprintf ppf "%d" i
  | R_error e -> Format.fprintf ppf "error (%s)" e

module Make (L : Ld_intf.S) = struct
  let apply ld op =
    let catch f =
      match f () with
      | r -> r
      | exception
          (( Errors.Unallocated_block _ | Errors.Unallocated_list _
           | Errors.Unknown_aru _ | Errors.Aru_already_active
           | Errors.Commit_pending _ | Errors.Block_not_on_list _
           | Errors.Disk_full | Errors.Corrupt _ )
           as e) ->
        R_error (Format.asprintf "%a" Errors.pp_exn e)
      | exception Invalid_argument m -> R_error ("Invalid_argument: " ^ m)
    in
    catch (fun () ->
        match op with
        | Begin_aru -> R_aru (L.begin_aru ld)
        | End_aru a ->
          L.end_aru ld a;
          R_unit
        | Submit_commit a ->
          L.submit_commit ld a;
          R_unit
        | Flush_commits -> R_int (L.flush_commits ld)
        | Abort_aru a ->
          L.abort_aru ld a;
          R_unit
        | New_list aru -> R_list (L.new_list ld ?aru ())
        | New_block { aru; list; pred } ->
          R_block (L.new_block ld ?aru ~list ~pred ())
        | Write { aru; block; data } ->
          L.write ld ?aru block data;
          R_unit
        | Read { aru; block } -> R_data (L.read ld ?aru block)
        | Delete_block { aru; block } ->
          L.delete_block ld ?aru block;
          R_unit
        | Delete_list { aru; list } ->
          L.delete_list ld ?aru list;
          R_unit
        | List_exists { aru; list } -> R_bool (L.list_exists ld ?aru list)
        | Block_allocated { aru; block } ->
          R_bool (L.block_allocated ld ?aru block)
        | Block_member { aru; block } -> R_member (L.block_member ld ?aru block)
        | List_blocks { aru; list } -> R_blocks (L.list_blocks ld ?aru list)
        | Lists -> R_lists (L.lists ld)
        | Flush ->
          L.flush ld;
          R_unit
        | Scavenge -> R_int (L.scavenge ld))
end
