module Vec = Lld_util.Vec

type t = {
  seg_blocks : int Vec.t array; (* per segment: live block ids, unordered *)
  seg_of : int array; (* per block id: segment index, or -1 when not live *)
  pos : int array; (* per block id: position inside seg_blocks.(seg_of) *)
}

let create ~num_segments ~capacity =
  if num_segments <= 0 then
    invalid_arg "Live_index.create: num_segments must be positive";
  if capacity <= 0 then
    invalid_arg "Live_index.create: capacity must be positive";
  {
    seg_blocks = Array.init num_segments (fun _ -> Vec.create ());
    seg_of = Array.make capacity (-1);
    pos = Array.make capacity (-1);
  }

let live t seg = Vec.length t.seg_blocks.(seg)

let seg_of t block = if t.seg_of.(block) < 0 then None else Some t.seg_of.(block)

(* Swap-with-last removal keeps every operation O(1). *)
let remove t ~block =
  let seg = t.seg_of.(block) in
  if seg >= 0 then begin
    let v = t.seg_blocks.(seg) in
    let p = t.pos.(block) in
    let last = Vec.length v - 1 in
    let moved = Vec.get v last in
    Vec.set v p moved;
    t.pos.(moved) <- p;
    Vec.truncate v last;
    t.seg_of.(block) <- -1;
    t.pos.(block) <- -1
  end

let add t ~seg ~block =
  if t.seg_of.(block) >= 0 then remove t ~block;
  let v = t.seg_blocks.(seg) in
  t.seg_of.(block) <- seg;
  t.pos.(block) <- Vec.length v;
  Vec.push v block

let blocks t seg = Vec.to_list t.seg_blocks.(seg)

let clear t =
  Array.iter (fun v -> Vec.truncate v 0) t.seg_blocks;
  Array.fill t.seg_of 0 (Array.length t.seg_of) (-1);
  Array.fill t.pos 0 (Array.length t.pos) (-1)
