(** Operation counters of a logical-disk instance.

    Counters record the meta-data work the cost model charges for, so
    tests can assert {e why} a configuration is slower (e.g. deletion
    performs predecessor searches; the improved policy performs fewer —
    paper §5.3). *)

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable new_blocks : int;
  mutable delete_blocks : int;
  mutable new_lists : int;
  mutable delete_lists : int;
  mutable arus_begun : int;
  mutable arus_committed : int;
  mutable arus_aborted : int;
  mutable record_creates : int;
  mutable record_transitions : int;
  mutable mesh_hops : int;
  mutable pred_search_hops : int;
  mutable summary_entries : int;
  mutable link_log_appends : int;
  mutable link_log_replays : int;
  mutable replay_skips : int;  (** conflicting merge operations skipped *)
  mutable segments_written : int;
  mutable segments_cleaned : int;
  mutable blocks_copied_clean : int;
  mutable clean_disk_reads : int;
      (** relocation segment reads (at most one per cleaned victim) *)
  mutable clean_cache_hits : int;
      (** relocated blocks served from the LRU cache *)
  mutable victim_scans : int;  (** segments examined by victim selection *)
  mutable clean_picks : int;  (** victims chosen by the cleaning policy *)
  mutable live_index_updates : int;
      (** mutations of the per-segment live-block reverse index *)
  mutable checkpoints : int;
  mutable commit_batches : int;
      (** group-commit batches flushed ({!Lld.flush_commits} sub-batches,
          each closed by one batched commit record and one barrier) *)
  mutable group_commits : int;
      (** ARUs committed through the group-commit queue (as opposed to
          the immediate {!Lld.end_aru} path) *)
  mutable commit_barriers : int;
      (** seals (segment write + barrier) issued to close commit
          batches; [commit_barriers / arus_committed] is the
          barriers-per-commit amortization ratio *)
  mutable commits_submitted : int;
      (** commit intents queued by {!Lld.submit_commit} (excludes the
          window=0 degeneration to the immediate path) *)
  mutable commit_queue_aborts : int;
      (** queued ARUs dequeued by {!Lld.abort_aru} before their batch
          flushed *)
  mutable commit_wakeups : int;
      (** parked engine clients woken by a drained (or aborted)
          commit *)
  mutable forced_flushes : int;
      (** {!Lld.flush_commits} drains forced by the engine (all clients
          parked, or leftovers at exit) rather than by the batch-size or
          window close conditions *)
  mutable recovery_replayed_segments : int;
      (** log-tail segments the last recovery actually replayed *)
  mutable recovery_skipped_segments : int;
      (** sealed segments the last recovery's checkpoint let it skip *)
  mutable recovery_replay_disk_reads : int;
      (** [Disk.read] calls the last recovery's log-tail scan issued;
          contiguous replayed segments are fetched in one batched read,
          so this is at most (and usually far below) the replayed
          segment count *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable readaheads : int;
  mutable flushes : int;
  mutable bytes_copied : int;
      (** block-data bytes physically duplicated on the data path: the
          [bytes] compatibility wrappers' boundary conversions plus the
          shadow-write copy into the arena.  The view API elides the
          boundary copies; Z1 gates on this staying strictly lower per
          operation *)
  mutable copy_elisions : int;
      (** data-path operations that handed out (or took in) a {!Lld_util.Blk.t}
          view where the pre-view implementation performed a copy *)
  mutable cross_shard_commits : int;
      (** two-phase commits this shard coordinated (the [Decide] record
          it wrote was a transaction's single commit point) *)
  mutable prepare_barriers : int;
      (** participant prepare seals (segment write + barrier) issued for
          cross-shard transactions; with [cross_shard_commits] this
          checks the ≤ P+1 barriers-per-cross-shard-commit budget *)
}

val fields : (string * (t -> int) * (t -> int -> unit)) list
(** [(name, get, set)] for every field, in declaration order — the
    single source of truth that {!reset}, {!copy}, {!diff}, {!pp} and
    {!to_json_string} are derived from.  A field missing here is a bug;
    the coverage test asserts [List.length fields] matches the record
    width. *)

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val to_alist : t -> (string * int) list
(** [(name, value)] per field, in declaration order. *)

val diff : base:t -> t -> (string * int) list
(** Per-field [t - base], in declaration order. *)

val equal : t -> t -> bool

val to_json_string : t -> string
(** One flat JSON object covering every field. *)

val pp : Format.formatter -> t -> unit
