(** Sharded logical disk: S independent {!Lld} instances behind one LD
    facade, with cross-shard ARUs committed by two-phase commit
    (DESIGN.md §5.14).

    Each shard is a complete {!Lld} — its own backend disk, log,
    cleaner, checkpoints and recovery — and the front-end stripes the
    logical name spaces across them with a fixed, stateless placement
    ({!block_shard} / {!list_shard}).  An ARU that only ever touched one
    shard commits exactly as before: one commit record, one seal, one
    barrier, on that shard.  An ARU spanning P shards commits with
    two-phase commit over the shards' ordinary summary records: one
    [Prepare] record + seal per non-coordinator participant, then one
    [Decide] record + seal on the coordinator (the lowest participant
    shard index) — the transaction's single atomic commit point — and
    one lazy [Decide] per participant afterwards that rides on the next
    natural barrier.  Total barriers: P, within the P+1 budget the S1
    experiment gates on.

    Crash safety is {e presumed abort}: a participant that recovers with
    a dangling [Prepare] consults the union of every shard's
    {!Recovery.scan_decisions} — the coordinator's durable [Decide]
    commits it, anything else aborts it.  {!recover} therefore scans all
    shards before recovering any of them.

    With a single shard the facade is a pure passthrough: identifiers,
    on-disk image and virtual-clock costs are bit-identical to using the
    {!Lld} directly (no 2PC machinery is ever engaged).

    All shard disks must share one virtual clock, and all shards must
    have identical capacity and block size; construction checks both.
    Concurrency control remains the client's problem (paper §3): the
    facade is single-threaded, and "parallelism" means the S logs accept
    writes independently — barriers on one shard do not serialise
    commits on another, which is where the S1 throughput scaling comes
    from. *)

type t

(** {1 Construction} *)

val create :
  ?config:Config.t -> ?obs:Lld_obs.Obs.t -> Lld_disk.Disk.t array -> t
(** Format every disk (mkfs) and assemble the facade.  Raises
    [Invalid_argument] on an empty array, on shards that do not share
    one clock, or on differing capacities / block sizes.  [obs] is
    attached as by {!set_obs} (shard 0 only — gauge names collide). *)

val recover :
  ?config:Config.t -> ?obs:Lld_obs.Obs.t -> Lld_disk.Disk.t array ->
  t * Recovery.report array
(** Mount after a crash: first scans {e every} shard's log for durable
    two-phase-commit decisions ({!Recovery.scan_decisions}), then
    recovers each shard with the union as its [decisions] oracle, so a
    participant's dangling prepare commits exactly when the
    coordinator's [Decide] survived.  The cross-shard transaction-id
    watermark resumes past every gid any shard has seen.  With more
    than one shard, {!Config.t.recovery_early_open} is forced off (the
    decision oracle must be complete before any shard replays).  A
    single shard recovers as a plain {!Lld.recover} — scan and oracle
    elided, bit-identical. *)

val shard_count : t -> int

val handles : t -> Lld.t array
(** The underlying per-shard instances, for diagnostics ([lld info]),
    per-shard scrub assertions and tests.  Mutating shards directly
    while the facade is in use voids the placement invariants. *)

(** {1 Placement}

    Pure and total: every identifier maps to exactly one shard, and the
    mapping never depends on instance state.  Blocks stripe round-robin
    by id ([global mod shards]); lists the same, shifted for their
    1-based ids.  A block always lives on its list's shard (allocation
    routes by list), so list operations never cross shards. *)

val block_shard : shards:int -> int -> int
(** Shard owning a global block id. *)

val block_local : shards:int -> int -> int
(** The block's id within its shard. *)

val block_global : shards:int -> shard:int -> int -> int
(** Inverse: [block_global ~shards ~shard (block_local ~shards g) = g]
    when [shard = block_shard ~shards g]. *)

val list_shard : shards:int -> int -> int
(** Shard owning a global list id (ids are 1-based). *)

val list_local : shards:int -> int -> int

val list_global : shards:int -> shard:int -> int -> int

(** {1 The LD interface}

    Exactly {!Ld_intf.S} over global identifiers: operations route to
    the owning shard, identifiers and errors are translated back to
    global.  A global ARU lazily opens a local ARU on each shard it
    touches; [end_aru] commits through the single-shard fast path or
    two-phase commit as the touch set dictates.  [submit_commit] queues
    single-shard ARUs in the owning shard's group-commit queue;
    a cross-shard ARU commits synchronously at submission (its 2PC pays
    its own barriers — batching buys nothing) and is reported by the
    next {!flush_commits}. *)

include Ld_intf.S with type t := t

(** {1 Group-commit introspection (engine hooks)} *)

val config : t -> Config.t
val commit_due : t -> bool
val commit_pending : t -> Types.Aru_id.t -> bool
val pending_commits : t -> int

(** {1 Cross-shard commit introspection} *)

val next_gid : t -> int
(** The next cross-shard transaction id (max over shards, persisted in
    their checkpoints). *)

val aru_active : t -> Types.Aru_id.t -> bool
val active_arus : t -> Types.Aru_id.t list

val aru_shards : t -> Types.Aru_id.t -> int list
(** The shards on which this ARU has opened a local slice so far,
    ascending — the participant set its commit would use. *)

val total_counters : t -> Counters.t
(** A fresh snapshot summing the facade's own counters and every
    shard's.  [cross_shard_commits] counts each 2PC once (the
    coordinator's decision); [prepare_barriers] counts every
    participant prepare seal — their ratio checks the ≤ P+1
    barriers-per-cross-shard-commit budget. *)

(** {1 Maintenance} *)

val checkpoint : t -> unit
(** Checkpoint every shard. *)

val scrub : t -> Lld.scrub_report array
(** Scrub every shard; one report per shard. *)

val recovery_invariant_errors : t -> string list
(** Union of every shard's {!Lld.recovery_invariant_errors} (each
    prefixed with its shard), plus the facade's own: no shard may hold
    a dangling prepared ARU after recovery. *)
