(* Concurrent client engine: a deterministic run-to-completion event
   loop multiplexing N logical clients over one Lld instance, with the
   group-commit queue drained between steps.  See engine.mli. *)

module A = Op.Make (Lld)

type client = Op.result option -> Op.t option

type stats = {
  ops : int;
  commits : int;
  flushes : int;
  forced_flushes : int;
  max_batch : int;
}

type status = Runnable | Parked of Types.Aru_id.t | Done

type cl = {
  gen : client;
  mutable last : Op.result option;
  mutable status : status;
}

let run lld gens =
  let cfg = Lld.config lld in
  let group =
    cfg.Config.group_commit_window > 0 && cfg.Config.mode = Config.Concurrent
  in
  let clients =
    Array.of_list
      (List.map (fun g -> { gen = g; last = None; status = Runnable }) gens)
  in
  let n = Array.length clients in
  let parked : cl Queue.t = Queue.create () in
  let ops = ref 0 in
  let commits = ref 0 in
  let flushes = ref 0 in
  let forced = ref 0 in
  let max_batch = ref 0 in
  let finished = ref 0 in
  (* a flush drains the whole queue, so every parked waiter's commit is
     done; wake them in FIFO submission order, each with the [R_unit]
     its (translated) End_aru would have returned *)
  let wake_committed () =
    let rec go () =
      match Queue.peek_opt parked with
      | Some c -> (
        match c.status with
        | Parked a when not (Lld.commit_pending lld a) ->
          ignore (Queue.pop parked);
          c.status <- Runnable;
          c.last <- Some Op.R_unit;
          go ()
        | Parked _ | Runnable | Done -> ())
      | None -> ()
    in
    go ()
  in
  let flush ~forced:f () =
    let k = Lld.flush_commits lld in
    if k > 0 then begin
      incr flushes;
      if f then incr forced;
      commits := !commits + k;
      if k > !max_batch then max_batch := k
    end;
    wake_committed ()
  in
  while !finished < n do
    let ran = ref false in
    Array.iter
      (fun c ->
        match c.status with
        | Parked _ | Done -> ()
        | Runnable -> (
          ran := true;
          let last = c.last in
          c.last <- None;
          match c.gen last with
          | None ->
            c.status <- Done;
            incr finished
          | Some op ->
            let op =
              match op with
              | Op.End_aru a when group -> Op.Submit_commit a
              | op -> op
            in
            incr ops;
            let r = A.apply lld op in
            (match (op, r) with
            | Op.Submit_commit a, Op.R_unit ->
              c.status <- Parked a;
              Queue.push c parked
            | Op.End_aru _, Op.R_unit ->
              incr commits;
              c.last <- Some r
            | Op.Flush_commits, Op.R_int k ->
              if k > 0 then begin
                incr flushes;
                commits := !commits + k;
                if k > !max_batch then max_batch := k
              end;
              c.last <- Some r;
              wake_committed ()
            | _, r -> c.last <- Some r);
            if Lld.commit_due lld then flush ~forced:false ()))
      clients;
    (* everyone still alive is parked on a commit: the queue would
       never fill or expire on its own — drain it now *)
    if (not !ran) && not (Queue.is_empty parked) then flush ~forced:true ()
  done;
  (* leftovers (clients that finished while intents were still queued
     below the due thresholds) *)
  if Lld.pending_commits lld > 0 then flush ~forced:true ();
  {
    ops = !ops;
    commits = !commits;
    flushes = !flushes;
    forced_flushes = !forced;
    max_batch = !max_batch;
  }
