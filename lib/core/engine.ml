(* Concurrent client engine: a deterministic run-to-completion event
   loop multiplexing N logical clients over one logical-disk instance,
   with the group-commit queue drained between steps.  Functorized over
   any {!Ld_intf.S} that also exposes the group-commit introspection
   hooks, so the sharded front-end reuses it unchanged.  See
   engine.mli. *)

module Clock = Lld_sim.Clock
module Obs = Lld_obs.Obs
module Tr = Lld_obs.Trace

type client = Op.result option -> Op.t option

type stats = {
  ops : int;
  commits : int;
  flushes : int;
  forced_flushes : int;
  max_batch : int;
}

module type ENGINE_LD = sig
  include Ld_intf.S

  val config : t -> Config.t
  val commit_due : t -> bool
  val commit_pending : t -> Types.Aru_id.t -> bool
  val pending_commits : t -> int
end

type status = Runnable | Parked of Types.Aru_id.t | Done

type cl = {
  gen : client;
  idx : int;
  mutable last : Op.result option;
  mutable status : status;
  mutable submit_ns : int;  (* virtual time the client parked *)
  mutable wake_ns : int;  (* virtual time its commit woke it *)
  mutable woken_aru : int;  (* ARU of the pending wake; -1 = none *)
}

module Make (Ld : ENGINE_LD) = struct
  module A = Op.Make (Ld)

  let run lld gens =
    let cfg = Ld.config lld in
    let group =
      cfg.Config.group_commit_window > 0 && cfg.Config.mode = Config.Concurrent
    in
    let clock = Ld.clock lld in
    let obs = Ld.obs lld in
    let counters = Ld.counters lld in
    let clients =
      Array.of_list
        (List.mapi
           (fun i g ->
             {
               gen = g;
               idx = i;
               last = None;
               status = Runnable;
               submit_ns = 0;
               wake_ns = 0;
               woken_aru = -1;
             })
           gens)
    in
    let n = Array.length clients in
    let parked : cl Queue.t = Queue.create () in
    let ops = ref 0 in
    let commits = ref 0 in
    let flushes = ref 0 in
    let forced = ref 0 in
    let max_batch = ref 0 in
    let finished = ref 0 in
    (* a flush drains the whole queue, so every parked waiter's commit is
       done; wake them in FIFO submission order, each with the [R_unit]
       its (translated) End_aru would have returned.  A parked client
       whose ARU another client aborted wakes the same way: its pending
       commit is resolved (as an abort), not still queued. *)
    let wake_committed () =
      let rec go () =
        match Queue.peek_opt parked with
        | Some c -> (
          match c.status with
          | Parked a when not (Ld.commit_pending lld a) ->
            ignore (Queue.pop parked);
            c.status <- Runnable;
            c.last <- Some Op.R_unit;
            c.wake_ns <- Clock.now_ns clock;
            c.woken_aru <- Types.Aru_id.to_int a;
            counters.Counters.commit_wakeups <-
              counters.Counters.commit_wakeups + 1;
            go ()
          | Parked _ | Runnable | Done -> ())
        | None -> ()
      in
      go ()
    in
    let flush ~forced:f () =
      let k = Ld.flush_commits lld in
      if k > 0 then begin
        incr flushes;
        if f then begin
          incr forced;
          counters.Counters.forced_flushes <-
            counters.Counters.forced_flushes + 1
        end;
        commits := !commits + k;
        if k > !max_batch then max_batch := k
      end;
      wake_committed ()
    in
    (* the woken client runs again: close its causality chain and feed
       the wake-latency (time between the drain that woke it and its next
       scheduling slot) and whole-commit per-client latency stages *)
    let note_resume c =
      if c.woken_aru >= 0 then begin
        let aru = c.woken_aru in
        c.woken_aru <- -1;
        if Obs.recording obs then begin
          let now = Clock.now_ns clock in
          Obs.observe obs "aru.commit.wake" (max 0 (now - c.wake_ns));
          Obs.observe obs
            (Printf.sprintf "aru.commit.latency.c%d" c.idx)
            (max 0 (now - c.submit_ns));
          Obs.complete obs Tr.Aru "commit.resume" ~ts_ns:now ~dur_ns:0
            [ ("aru", Tr.I aru); ("client", Tr.I c.idx) ];
          Obs.event obs
            ~flow:(Tr.Flow_end, aru)
            Tr.Aru "commit"
            [ ("aru", Tr.I aru); ("stage", Tr.S "wake"); ("client", Tr.I c.idx) ]
        end
      end
    in
    while !finished < n do
      let ran = ref false in
      Array.iter
        (fun c ->
          match c.status with
          | Parked _ | Done -> ()
          | Runnable -> (
            ran := true;
            note_resume c;
            let last = c.last in
            c.last <- None;
            match c.gen last with
            | None ->
              c.status <- Done;
              incr finished
            | Some op ->
              let op =
                match op with
                | Op.End_aru a when group -> Op.Submit_commit a
                | op -> op
              in
              incr ops;
              let r = A.apply lld op in
              (match (op, r) with
              | Op.Submit_commit a, Op.R_unit ->
                c.status <- Parked a;
                c.submit_ns <- Clock.now_ns clock;
                Queue.push c parked
              | Op.End_aru _, Op.R_unit ->
                incr commits;
                c.last <- Some r
              | Op.Flush_commits, Op.R_int k ->
                if k > 0 then begin
                  incr flushes;
                  commits := !commits + k;
                  if k > !max_batch then max_batch := k
                end;
                c.last <- Some r;
                wake_committed ()
              | Op.Abort_aru _, r ->
                (* the abort may have dequeued another client's pending
                   commit: its waiter is resolvable now *)
                c.last <- Some r;
                wake_committed ()
              | _, r -> c.last <- Some r);
              if Ld.commit_due lld then flush ~forced:false ()))
        clients;
      (* everyone still alive is parked on a commit: the queue would
         never fill or expire on its own — drain it now *)
      if (not !ran) && not (Queue.is_empty parked) then flush ~forced:true ()
    done;
    (* leftovers (clients that finished while intents were still queued
       below the due thresholds) *)
    if Ld.pending_commits lld > 0 then flush ~forced:true ();
    {
      ops = !ops;
      commits = !commits;
      flushes = !flushes;
      forced_flushes = !forced;
      max_batch = !max_batch;
    }
end

include Make (Lld)
