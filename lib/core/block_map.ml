type t = {
  records : Record.block array;
  free : Bytes.t; (* bitset: bit i set iff id i is free *)
  mutable free_count : int;
  mutable hint : int; (* no free identifier below this index *)
}

let bit_is_set b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

let bit_clear b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) land lnot (1 lsl (i land 7)) land 0xff))

let create ~capacity =
  if capacity <= 0 then invalid_arg "Block_map.create: capacity must be positive";
  let records =
    Array.init capacity (fun i -> Record.fresh_block (Types.Block_id.of_int i))
  in
  { records; free = Bytes.make ((capacity + 7) / 8) '\xff'; free_count = capacity; hint = 0 }

let capacity t = Array.length t.records

let in_range t b =
  let i = Types.Block_id.to_int b in
  i >= 0 && i < Array.length t.records

let anchor t b =
  if not (in_range t b) then
    invalid_arg
      (Format.asprintf "Block_map.anchor: %a out of range" Types.Block_id.pp b);
  t.records.(Types.Block_id.to_int b)

let alloc_id t =
  if t.free_count = 0 then None
  else begin
    (* skip whole zero bytes from the hint, then probe bits: the hint
       invariant (no free id below it) makes allocation amortised O(1) *)
    let n = Array.length t.records in
    let i = ref t.hint in
    while !i < n && not (bit_is_set t.free !i) do
      if !i land 7 = 0 && Bytes.get t.free (!i lsr 3) = '\000' then i := !i + 8
      else incr i
    done;
    if !i >= n then None
    else begin
      bit_clear t.free !i;
      t.free_count <- t.free_count - 1;
      t.hint <- !i + 1;
      Some (Types.Block_id.of_int !i)
    end
  end

let release_id t b =
  let i = Types.Block_id.to_int b in
  if not (bit_is_set t.free i) then begin
    bit_set t.free i;
    t.free_count <- t.free_count + 1;
    if i < t.hint then t.hint <- i
  end

let rebuild_free t =
  Bytes.fill t.free 0 (Bytes.length t.free) '\000';
  let free_count = ref 0 in
  for i = 0 to Array.length t.records - 1 do
    if not t.records.(i).Record.alloc then begin
      bit_set t.free i;
      incr free_count
    end
  done;
  t.free_count <- !free_count;
  t.hint <- 0

let iter t f = Array.iter f t.records
let allocated_count t = Array.length t.records - t.free_count
