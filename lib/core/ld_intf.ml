(** The Logical Disk interface, as a signature.

    The paper's second design advantage of LD (§2) is that
    "implementations can be exchanged transparently, without changing
    applications" — several file systems can share one implementation
    and one file system can run on several.  This signature captures the
    operations clients program against; {!Lld} (the log-structured
    implementation the paper evaluates) satisfies it, and so does the
    journaling update-in-place implementation in [lib/jld] (the kind of
    alternative §5.4 anticipates).  The Minix file system is a functor
    over it. *)

module type S = sig
  type t

  (** {1 Atomic recovery units} *)

  val begin_aru : t -> Types.Aru_id.t
  val end_aru : t -> Types.Aru_id.t -> unit
  val abort_aru : t -> Types.Aru_id.t -> unit
  val with_aru : t -> (Types.Aru_id.t -> 'a) -> 'a

  val submit_commit : t -> Types.Aru_id.t -> unit
  (** Enqueue a commit intent for group commit: the ARU stops accepting
      a second [end_aru]/[abort_aru] (they raise
      [Errors.Commit_pending]) and commits when {!flush_commits} drains
      the queue.  Implementations without a group-commit engine may
      commit immediately, which is also the behaviour when the
      configured group-commit window is 0. *)

  val flush_commits : t -> int
  (** Drain the commit queue in FIFO order, committing every queued ARU;
      returns the number committed (0 when the queue is empty). *)

  (** {1 The LD operations} *)

  val new_list : t -> ?aru:Types.Aru_id.t -> unit -> Types.List_id.t

  val new_block :
    t ->
    ?aru:Types.Aru_id.t ->
    list:Types.List_id.t ->
    pred:Summary.pred ->
    unit ->
    Types.Block_id.t

  val write : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> bytes -> unit
  val read : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> bytes
  val delete_block : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> unit
  val delete_list : t -> ?aru:Types.Aru_id.t -> Types.List_id.t -> unit
  val flush : t -> unit

  (** {1 Introspection} *)

  val list_exists : t -> ?aru:Types.Aru_id.t -> Types.List_id.t -> bool
  val block_allocated : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> bool

  val block_member :
    t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> Types.List_id.t option

  val list_blocks :
    t -> ?aru:Types.Aru_id.t -> Types.List_id.t -> Types.Block_id.t list

  val lists : t -> Types.List_id.t list
  val capacity : t -> int
  val allocated_blocks : t -> int
  val block_bytes : t -> int

  (** {1 Maintenance} *)

  val scavenge : t -> int
  val orphan_blocks : t -> Types.Block_id.t list

  (** {1 Measurement} *)

  val clock : t -> Lld_sim.Clock.t
  val cost_model : t -> Lld_sim.Cost.t
  val counters : t -> Counters.t

  (** {1 Observability} *)

  val set_obs : t -> Lld_obs.Obs.t -> unit
  (** Attach an observability handle (tracer + metrics); the default is
      {!Lld_obs.Obs.null}, on which every probe is a no-op. *)

  val obs : t -> Lld_obs.Obs.t
end
