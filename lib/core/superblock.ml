module Blk = Lld_util.Blk
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk

(* Slot layout (one logical block per slot, two slots in segment 0):
   magic u32, format version u32, epoch u64, region u8, zero padding to
   offset 20, crc32c u32 over [0, 20).  Epoch [g] lives in slot
   [g mod 2], so the two newest generations always coexist and a torn
   superblock write can only destroy the slot being replaced. *)
let magic = 0x4c4c5342 (* "LLSB" *)
let format_version = 3
let slot_count = 2
let crc_off = 20

type slot = { epoch : int; region : int }

let slot_for ~epoch = epoch mod slot_count

let slot_offset geom k =
  if k < 0 || k >= slot_count then invalid_arg "Superblock.slot_offset";
  (Disk_layout.superblock_segment * geom.Geometry.segment_bytes)
  + (k * geom.Geometry.block_bytes)

let encode geom { epoch; region } =
  let v = Blk.create geom.Geometry.block_bytes in
  Blk.set_u32 v 0 magic;
  Blk.set_u32 v 4 format_version;
  Blk.set_u64 v 8 (Int64.of_int epoch);
  Blk.set_u8 v 16 region;
  Blk.set_u32 v crc_off (Blk.crc32c ~len:crc_off v);
  v

let decode v =
  if Blk.length v < crc_off + 4 then None
  else if Blk.get_u32 v 0 <> magic || Blk.get_u32 v 4 <> format_version then None
  else if Blk.get_u32 v crc_off <> Blk.crc32c ~len:crc_off v then None
  else
    let epoch = Int64.to_int (Blk.get_u64 v 8) in
    let region = Blk.get_u8 v 16 in
    if epoch < 0 || region < 0 || region >= Disk_layout.region_count then None
    else Some { epoch; region }

let read_slot disk k =
  let geom = Disk.geometry disk in
  match
    Disk.read_view disk ~offset:(slot_offset geom k)
      ~length:geom.Geometry.block_bytes
  with
  | v -> decode v
  | exception Lld_disk.Fault.Media_error _ -> None

let write_slot disk s =
  let geom = Disk.geometry disk in
  Disk.write_view disk ~offset:(slot_offset geom (slot_for ~epoch:s.epoch))
    (encode geom s);
  (* the new generation pointer must be durable before logging resumes
     on top of it *)
  Disk.barrier disk

let read_slots disk = (read_slot disk 0, read_slot disk 1)

let best disk =
  match read_slots disk with
  | None, None -> None
  | Some s, None | None, Some s -> Some s
  | Some a, Some b -> Some (if a.epoch >= b.epoch then a else b)

let pp ppf { epoch; region } =
  Format.fprintf ppf "epoch %d -> region %d" epoch region
