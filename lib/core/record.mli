(** Versioned block and list records, and the in-memory mesh.

    A logical block (or list) can be live in up to [n + 2] versions for
    [n] active ARUs: one persistent, one committed, one shadow per ARU
    (paper §3.3).  The persistent version is the anchor stored in the
    block-number-map / list-table; committed and shadow versions are
    {e alternative records}, members of two perpendicular singly-linked
    lists (paper §4, Figure 4):

    - the {b same-id} chain, anchored at the persistent record, holding
      all alternative versions of one logical identifier;
    - the {b same-state} chain, anchored at the committed-state head or
      at an ARU record, holding all records belonging to one state.

    This module owns the record types and the same-id chain; same-state
    chains are managed by their owners ({!Aru}, [Lld]). *)

type version = Persistent | Committed | Shadow of Types.Aru_id.t

val version_equal : version -> version -> bool

(** Physical location of a block's data: a slot within a disk segment
    (which may be the open, in-memory segment). *)
type phys = { seg_index : int; slot : int }

type block = {
  id : Types.Block_id.t;
  version : version;
  mutable alloc : bool;
  mutable member_of : Types.List_id.t option;
      (** the list this block is linked into, if any *)
  mutable successor : Types.Block_id.t option;
  mutable phys : phys option;  (** where this version's data lives on disk *)
  mutable data : Lld_util.Blk.t option;
      (** in-memory data for this version (shadow writes), an
          arena-allocated block view owned by this record until it is
          dropped (see [Lld]'s data helpers); [None] falls through to
          [phys] *)
  mutable stamp : int;  (** time of the last Write of this version *)
  mutable alloc_owner : Types.Aru_id.t option;
      (** the active ARU that allocated the block; other clients neither
          see nor can re-allocate it until the owner commits (paper §3.3) *)
  mutable durable_seq : int;
      (** segment sequence number that must reach disk before this
          committed record may become persistent; [max_int] while the
          record is shadow or part of an uncommitted ARU *)
  mutable next_same_id : block option;
  mutable next_same_state : block option;
}

type list_r = {
  lid : Types.List_id.t;
  lversion : version;
  mutable exists : bool;
  mutable first : Types.Block_id.t option;
  mutable last : Types.Block_id.t option;
  mutable lstamp : int;
  mutable l_owner : Types.Aru_id.t option;
  mutable l_durable_seq : int;
  mutable l_next_same_id : list_r option;
  mutable l_next_same_state : list_r option;
}

(** {2 Construction} *)

val fresh_block : Types.Block_id.t -> block
(** A free persistent anchor. *)

val fresh_list : Types.List_id.t -> list_r

val alt_block : version -> from:block -> block
(** An alternative record initialised from another version's meta-data
    ([data] is not copied; it stays with the source version). *)

val alt_list : version -> from:list_r -> list_r

(** {2 Same-id chain}

    Search results report the number of links followed, so the caller
    can charge {!Lld_sim.Cost.mesh_hop_ns} per hop. *)

val insert_alt_block : anchor:block -> block -> unit
(** Push an alternative record onto the anchor's same-id chain. *)

val remove_alt_block : anchor:block -> block -> unit
(** Physical-equality removal; no-op when absent. *)

val find_block : anchor:block -> version -> block option * int
(** The record of exactly this version, and hops walked. *)

val newest_shadow_block : anchor:block -> block option * int
(** The shadow record with the greatest stamp across all ARUs
    (visibility option 1, paper §3.3). *)

val alt_block_count : anchor:block -> int

val insert_alt_list : anchor:list_r -> list_r -> unit
val remove_alt_list : anchor:list_r -> list_r -> unit
val find_list : anchor:list_r -> version -> list_r option * int
val alt_list_count : anchor:list_r -> int
