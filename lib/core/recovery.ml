module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Fault = Lld_disk.Fault
module Blk = Lld_util.Blk
module Obs = Lld_obs.Obs
module Tr = Lld_obs.Trace

type report = {
  checkpoint_id : int;
  checkpoint_region : int;  (* region of the generation restored *)
  full_region : int;  (* region of the full base that generation rests on *)
  superblock_epoch : int;  (* newest valid superblock generation (0: none) *)
  covered_seq : int;
  segments_replayed : int;
  segments_skipped : int;
  replay_groups : int;
  parallel_replay : bool;
  invalid_segments : int;
  entries_applied : int;
  arus_committed : int;
  arus_discarded : int;
  entries_discarded : int;
  replay_skips : int;
  blocks_scavenged : int;
  lists_scavenged : int;
  disk_reads : int;
  prepares_committed : int;
  prepares_aborted : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>checkpoint %d (covers seq %d)@,\
     segments: %d replayed, %d skipped, %d invalid (%d disk reads)@,\
     replay: %d groups%s@,\
     entries applied %d (skipped %d)@,\
     ARUs: %d committed, %d discarded (%d entries)@,\
     prepares: %d committed, %d aborted@,\
     blocks scavenged %d@]"
    r.checkpoint_id r.covered_seq r.segments_replayed r.segments_skipped
    r.invalid_segments r.disk_reads r.replay_groups
    (if r.parallel_replay then " (parallel)" else "")
    r.entries_applied r.replay_skips r.arus_committed r.arus_discarded
    r.entries_discarded r.prepares_committed r.prepares_aborted
    (r.blocks_scavenged + r.lists_scavenged)

type restored = {
  r_blocks : Block_map.t;
  r_lists : List_table.t;
  r_next_seq : int;
  r_stamp : int;
  r_next_aru : int;
  r_next_gid : int;
  r_report : report;
}

(* ------------------------------------------------------------------ *)
(* Per-group replay state.  Replay is partitioned by dependency: all
   entries naming the same logical block / list / ARU land in the same
   group, so groups touch disjoint sets of persistent records and can be
   applied on separate domains without synchronisation. *)

type gstate = {
  g_blocks : Block_map.t;  (* shared; groups touch disjoint anchors *)
  g_lists : List_table.t;  (* shared; all anchors pre-created *)
  g_buffers : (int, Checkpoint.pending_entry list) Hashtbl.t; (* reverse order *)
  g_committed : (int, unit) Hashtbl.t;
  g_prepared : (int, int * int) Hashtbl.t; (* aru -> (gid, coordinator) *)
  mutable g_applied : int;
  mutable g_skips : int;
  mutable g_ncommitted : int;
  mutable g_max_stamp : int;
  mutable g_max_aru : int;
  mutable g_max_gid : int; (* 1 + highest 2PC transaction id seen *)
}

type group = {
  gr_entries : (int * Summary.t) array;  (* (disk segment, entry), log order *)
  gr_state : gstate;
  mutable gr_applied : bool;
}

let persistent_ctx st =
  {
    Splice.peek_block = (fun b -> Block_map.anchor st.g_blocks b);
    get_block = (fun b -> Block_map.anchor st.g_blocks b);
    peek_list = (fun l -> List_table.anchor st.g_lists l);
    get_list = (fun l -> List_table.anchor st.g_lists l);
    on_pred_hop = ignore;
  }

let note_stamp st stamp = if stamp > st.g_max_stamp then st.g_max_stamp <- stamp
let note_gid st gid = if gid >= st.g_max_gid then st.g_max_gid <- gid + 1

let count_outcome st = function
  | `Applied -> st.g_applied <- st.g_applied + 1
  | `Skipped -> st.g_skips <- st.g_skips + 1

(* Apply one operation to the persistent state.  This function mirrors
   the committed-state semantics of the runtime exactly (see Splice). *)
let rec apply_op st ~seg op =
  let ctx = persistent_ctx st in
  match op with
  | Summary.Alloc { block; list = _; stamp } ->
    let r = Block_map.anchor st.g_blocks block in
    r.Record.alloc <- true;
    r.Record.member_of <- None;
    r.Record.successor <- None;
    r.Record.phys <- None;
    r.Record.stamp <- stamp;
    note_stamp st stamp;
    st.g_applied <- st.g_applied + 1
  | Summary.Write { block; slot; stamp } ->
    let r = Block_map.anchor st.g_blocks block in
    if r.Record.alloc && stamp >= r.Record.stamp then begin
      r.Record.phys <- Some { Record.seg_index = seg; slot };
      r.Record.stamp <- stamp;
      st.g_applied <- st.g_applied + 1
    end
    else st.g_skips <- st.g_skips + 1;
    note_stamp st stamp
  | Summary.Link { list; block; pred } ->
    count_outcome st (Splice.insert ctx ~list ~block ~pred)
  | Summary.Unlink { list; block } ->
    count_outcome st (Splice.unlink ctx ~list ~block)
  | Summary.New_list { list; stamp; owner } ->
    let r = List_table.anchor st.g_lists list in
    r.Record.exists <- true;
    r.Record.first <- None;
    r.Record.last <- None;
    r.Record.lstamp <- stamp;
    r.Record.l_owner <- owner;
    note_stamp st stamp;
    st.g_applied <- st.g_applied + 1
  | Summary.Delete_list { list } ->
    let dealloc br = br.Record.phys <- None in
    count_outcome st (Splice.delete_list ctx ~list ~dealloc)
  | Summary.Dealloc { block; stamp } ->
    let r = Block_map.anchor st.g_blocks block in
    if r.Record.alloc then begin
      (* a block is deallocated together with its list membership; a
         Dealloc entry follows the Unlink (or stands alone for a block
         never linked) *)
      r.Record.alloc <- false;
      r.Record.member_of <- None;
      r.Record.successor <- None;
      r.Record.phys <- None;
      r.Record.stamp <- stamp;
      st.g_applied <- st.g_applied + 1
    end
    else st.g_skips <- st.g_skips + 1;
    note_stamp st stamp
  | Summary.Commit { aru } -> commit_aru st aru
  | Summary.Commit_group { arus } ->
    (* a batched commit record: one Commit per contained ARU, in list
       order — each ARU's buffered entries take effect independently *)
    List.iter (commit_aru st) arus
  | Summary.Prepare { aru; gid; coordinator } ->
    (* the ARU's buffered entries stay buffered: prepared is not
       committed.  The mark survives so [finish] can consult the
       coordinator's decision if no [Decide] follows in this log. *)
    note_gid st gid;
    Hashtbl.replace st.g_prepared (Types.Aru_id.to_int aru) (gid, coordinator);
    st.g_applied <- st.g_applied + 1
  | Summary.Decide { aru; gid; committed } ->
    note_gid st gid;
    Hashtbl.remove st.g_prepared (Types.Aru_id.to_int aru);
    if committed then commit_aru st aru
    else begin
      Hashtbl.remove st.g_buffers (Types.Aru_id.to_int aru);
      st.g_applied <- st.g_applied + 1
    end

and commit_aru st aru =
  let key = Types.Aru_id.to_int aru in
  let buffered =
    match Hashtbl.find_opt st.g_buffers key with
    | None -> []
    | Some rev -> List.rev rev
  in
  Hashtbl.remove st.g_buffers key;
  Hashtbl.replace st.g_committed key ();
  List.iter
    (fun pe -> apply_op st ~seg:pe.Checkpoint.pe_seg pe.Checkpoint.pe_op)
    buffered;
  st.g_ncommitted <- st.g_ncommitted + 1;
  st.g_applied <- st.g_applied + 1

let replay_entry st ~seg (entry : Summary.t) =
  (match entry.Summary.stream with
  | Summary.In_aru a ->
    let i = Types.Aru_id.to_int a in
    if i >= st.g_max_aru then st.g_max_aru <- i + 1
  | Summary.Simple -> ());
  match (entry.Summary.stream, entry.Summary.op) with
  | Summary.Simple, op -> apply_op st ~seg op
  | Summary.In_aru aru, op ->
    let key = Types.Aru_id.to_int aru in
    let prev = Option.value ~default:[] (Hashtbl.find_opt st.g_buffers key) in
    Hashtbl.replace st.g_buffers key
      ({ Checkpoint.pe_op = op; pe_seg = seg } :: prev)

let restore_checkpoint geom snap =
  let blocks = Block_map.create ~capacity:(Disk_layout.block_capacity geom) in
  let lists = List_table.create ~max_lists:(Disk_layout.max_lists geom) in
  List.iter
    (fun (b : Checkpoint.block_entry) ->
      let r = Block_map.anchor blocks (Types.Block_id.of_int b.b_id) in
      r.Record.alloc <- true;
      r.Record.member_of <- Option.map Types.List_id.of_int b.b_member;
      r.Record.successor <- Option.map Types.Block_id.of_int b.b_succ;
      r.Record.phys <-
        Option.map
          (fun (seg, slot) -> { Record.seg_index = seg; slot })
          b.b_phys;
      r.Record.stamp <- b.b_stamp)
    snap.Checkpoint.blocks;
  List.iter
    (fun (l : Checkpoint.list_entry) ->
      let r = List_table.anchor lists (Types.List_id.of_int l.l_id) in
      r.Record.exists <- true;
      r.Record.first <- Option.map Types.Block_id.of_int l.l_first;
      r.Record.last <- Option.map Types.Block_id.of_int l.l_last;
      r.Record.lstamp <- l.l_stamp;
      r.Record.l_owner <- Option.map Types.Aru_id.of_int l.l_owner)
    snap.Checkpoint.lists;
  (blocks, lists)

(* ------------------------------------------------------------------ *)
(* Dependency partitioning: union-find over block / list / ARU nodes.
   Two entries end up in the same group iff a chain of shared
   identifiers connects them — including identifiers related only
   through checkpoint state (list membership, pending ARU entries), so
   operations that walk a list chain (Unlink's predecessor search,
   Delete_list's full-chain deallocation) stay within their group. *)

module Uf = struct
  type t = { mutable parent : int array; mutable rank : int array; mutable n : int }

  let create () = { parent = Array.make 256 0; rank = Array.make 256 0; n = 0 }

  let fresh t =
    if t.n = Array.length t.parent then begin
      let parent = Array.make (2 * t.n) 0 and rank = Array.make (2 * t.n) 0 in
      Array.blit t.parent 0 parent 0 t.n;
      Array.blit t.rank 0 rank 0 t.n;
      t.parent <- parent;
      t.rank <- rank
    end;
    let i = t.n in
    t.parent.(i) <- i;
    t.n <- t.n + 1;
    i

  let rec find t i =
    let p = t.parent.(i) in
    if p = i then i
    else begin
      let root = find t p in
      t.parent.(i) <- root;
      root
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then
      if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
      else begin
        t.parent.(rb) <- ra;
        if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1
      end
end

type node_key = Nblock of int | Nlist of int | Naru of int

type partition = {
  uf : Uf.t;
  nodes : (node_key, int) Hashtbl.t;
}

let node p key =
  match Hashtbl.find_opt p.nodes key with
  | Some i -> i
  | None ->
    let i = Uf.fresh p.uf in
    Hashtbl.replace p.nodes key i;
    i

let find_node p key = Hashtbl.find_opt p.nodes key

(* All identifiers an operation names directly.  Chain walks (Unlink,
   Delete_list) reach blocks the entry does not name; those blocks are
   connected to the list through their own Link entries or through the
   checkpoint's membership edges, so the union still covers them. *)
let op_nodes p = function
  | Summary.Alloc { block; list; _ } ->
    [ node p (Nblock (Types.Block_id.to_int block));
      node p (Nlist (Types.List_id.to_int list)) ]
  | Summary.Write { block; _ } | Summary.Dealloc { block; _ } ->
    [ node p (Nblock (Types.Block_id.to_int block)) ]
  | Summary.Link { list; block; pred } ->
    node p (Nlist (Types.List_id.to_int list))
    :: node p (Nblock (Types.Block_id.to_int block))
    ::
    (match pred with
    | Summary.Head -> []
    | Summary.After b -> [ node p (Nblock (Types.Block_id.to_int b)) ])
  | Summary.Unlink { list; block } ->
    [ node p (Nlist (Types.List_id.to_int list));
      node p (Nblock (Types.Block_id.to_int block)) ]
  | Summary.New_list { list; owner; _ } ->
    node p (Nlist (Types.List_id.to_int list))
    ::
    (match owner with
    | None -> []
    | Some a -> [ node p (Naru (Types.Aru_id.to_int a)) ])
  | Summary.Delete_list { list } ->
    [ node p (Nlist (Types.List_id.to_int list)) ]
  | Summary.Commit { aru } | Summary.Prepare { aru; _ } | Summary.Decide { aru; _ }
    ->
    [ node p (Naru (Types.Aru_id.to_int aru)) ]
  | Summary.Commit_group { arus } ->
    List.map (fun a -> node p (Naru (Types.Aru_id.to_int a))) arus

let union_all p = function
  | [] | [ _ ] -> ()
  | first :: rest -> List.iter (fun n -> Uf.union p.uf first n) rest

(* ------------------------------------------------------------------ *)
(* The lazy recovery handle: checkpoint restored and log tail scanned,
   replay organised into independent groups but not necessarily applied
   yet.  [touch_*] recovers one logical identifier on demand (early
   open); [finish] applies everything left, sweeps and reports. *)

type pending = {
  p_obs : Obs.t;
  p_sweep : bool;
  p_parallel : bool;
  p_decisions : int -> bool option;
      (* cross-shard decision lookup for dangling prepares (gid ->
         verdict); [None] everywhere for a standalone disk *)
  p_blocks : Block_map.t;
  p_lists : List_table.t;
  p_snap : Checkpoint.snapshot;  (* effective snapshot restored *)
  p_region : int;
  p_full_region : int;
  p_groups : group array;
  p_partition : partition;
  p_group_of_root : (int, int) Hashtbl.t;  (* UF root -> index in p_groups *)
  p_sb_epoch : int;
  p_next_seq : int;
  p_segments_replayed : int;
  p_invalid_segments : int;
  p_disk_reads : int;
  mutable p_blocks_scavenged : int;
  mutable p_lists_scavenged : int;
  mutable p_used_domains : bool;
  mutable p_finished : restored option;
}

let tables p = (p.p_blocks, p.p_lists)
let pending_groups p =
  Array.fold_left (fun acc g -> if g.gr_applied then acc else acc + 1) 0 p.p_groups

let group_of p key =
  match find_node p.p_partition key with
  | None -> None
  | Some n -> (
    match Hashtbl.find_opt p.p_group_of_root (Uf.find p.p_partition.uf n) with
    | None -> None
    | Some i -> Some p.p_groups.(i))

let apply_group g =
  if not g.gr_applied then begin
    g.gr_applied <- true;
    Array.iter
      (fun (seg, entry) -> replay_entry g.gr_state ~seg entry)
      g.gr_entries
  end

(* Local consistency sweep of one identifier, taken after its group is
   fully applied: the record then holds its final replay state, so the
   per-identifier decision is exactly the global sweep's (paper §3.3)
   and sweeping it again later is a no-op. *)
let sweep_block p b =
  if p.p_sweep then begin
    let r = Block_map.anchor p.p_blocks b in
    if r.Record.alloc && r.Record.member_of = None then begin
      r.Record.alloc <- false;
      r.Record.successor <- None;
      r.Record.phys <- None;
      p.p_blocks_scavenged <- p.p_blocks_scavenged + 1
    end
  end

let aru_committed p o =
  match group_of p (Naru (Types.Aru_id.to_int o)) with
  | None -> false
  | Some g -> Hashtbl.mem g.gr_state.g_committed (Types.Aru_id.to_int o)

let sweep_list p l =
  if p.p_sweep then
    match List_table.find_anchor p.p_lists l with
    | None -> ()
    | Some r -> (
      match r.Record.l_owner with
      | Some o when aru_committed p o -> r.Record.l_owner <- None
      | Some _ when r.Record.exists && r.Record.first = None ->
        r.Record.exists <- false;
        r.Record.l_owner <- None;
        p.p_lists_scavenged <- p.p_lists_scavenged + 1
      | Some _ ->
        (* uncommitted owner but no longer empty: the owning ARU died
           (aborted) and a later simple operation linked a member, so
           the list legitimately survives — only the stale mark goes *)
        r.Record.l_owner <- None
      | None -> ())

let touch_block p b =
  if Block_map.in_range p.p_blocks b then begin
    (match group_of p (Nblock (Types.Block_id.to_int b)) with
    | Some g when not g.gr_applied ->
      Obs.instant p.p_obs Tr.Recovery "on_demand"
        [ ("block", Tr.I (Types.Block_id.to_int b)) ];
      apply_group g
    | Some _ | None -> ());
    sweep_block p b
  end

let touch_list p l =
  (match group_of p (Nlist (Types.List_id.to_int l)) with
  | Some g when not g.gr_applied ->
    Obs.instant p.p_obs Tr.Recovery "on_demand"
      [ ("list", Tr.I (Types.List_id.to_int l)) ];
    apply_group g
  | Some _ | None -> ());
  sweep_list p l

(* ------------------------------------------------------------------ *)

let read_region_safe disk ~region =
  match Checkpoint.read_region disk ~region with
  | snap -> snap
  | exception Fault.Media_error _ -> None

(* Generation selection over possibly-failing media: an unreadable
   region is treated as empty. *)
let read_best_safe disk =
  Checkpoint.select
    ~region0:(read_region_safe disk ~region:0)
    ~region1:(read_region_safe disk ~region:1)

let prepare ?(obs = Obs.null) ?(sweep = true) ?(parallel = true)
    ?(decisions = fun _ -> None) disk =
  let geom = Disk.geometry disk in
  (* Generational superblock gate: a formatted disk always carries at
     least one valid slot.  Both slots invalid while a checkpoint still
     parses (or vice versa) is media corruption of a formatted image —
     a typed error, distinct from the unformatted-disk [Corrupt]. *)
  let sb_epoch =
    match Superblock.best disk with
    | Some s -> s.Superblock.epoch
    | None -> 0
  in
  let best, blocks, lists =
    Obs.timed obs Tr.Recovery "checkpoint_restore" @@ fun () ->
    let best =
      match read_best_safe disk with
      | None ->
        if sb_epoch > 0 then
          raise (Errors.Corruption Errors.All_generations_corrupted)
        else Errors.corrupt "no valid checkpoint: disk not formatted"
      | Some b ->
        if sb_epoch = 0 then
          raise (Errors.Corruption Errors.All_generations_corrupted)
        else b
    in
    let blocks, lists = restore_checkpoint geom best.Checkpoint.best_snap in
    (best, blocks, lists)
  in
  let snap = best.Checkpoint.best_snap in
  (* Find the log tail: read along the checkpoint's recorded free-segment
     order until the sequence numbers stop being contiguous (a torn,
     stale or unwritten segment ends the stream there).  A checkpoint
     without the order (never produced by this implementation, but
     tolerated) falls back to scanning the whole partition.  Only this
     phase reads the log from disk — the later apply is pure CPU. *)
  let invalid = ref 0 in
  let expected = ref (snap.Checkpoint.covered_seq + 1) in
  let replayed = ref 0 in
  let tail = ref [] in
  let disk_reads = ref 0 in
  let read_segment i =
    incr disk_reads;
    match
      Disk.read_view disk
        ~offset:(Geometry.segment_offset geom i)
        ~length:geom.Geometry.segment_bytes
    with
    | image -> Some image
    | exception Fault.Media_error _ ->
      incr invalid;
      None
  in
  Obs.timed obs Tr.Recovery "replay" (fun () ->
      match snap.Checkpoint.free_order with
      | _ :: _ as order ->
        (* Batched tail reads: physically contiguous runs of the
           recorded order are fetched in one [Disk.read_view] each, with
           the run length ramping up (1, 2, 4, ... 64) so a short tail —
           the common O(dirty) restart — over-reads at most one segment
           past the gap probe, while a long tail amortises to one
           request per 32 MB of log.  Per-segment images are O(1) views
           into the batched read, not copies.  A media error on a
           batched read falls back to per-segment reads of the same run
           (lazily, so the invalid-segment accounting matches the
           unbatched scan). *)
        let seg_bytes = geom.Geometry.segment_bytes in
        let order = Array.of_list order in
        let n = Array.length order in
        let continue = ref true in
        let pos = ref 0 in
        let cap = ref 1 in
        while !continue && !pos < n do
          let first = order.(!pos) in
          let len = ref 1 in
          while
            !len < !cap && !pos + !len < n && order.(!pos + !len) = first + !len
          do
            incr len
          done;
          let batched =
            if !len = 1 then None
            else begin
              incr disk_reads;
              match
                Disk.read_view disk
                  ~offset:(Geometry.segment_offset geom first)
                  ~length:(!len * seg_bytes)
              with
              | image -> Some image
              | exception Fault.Media_error _ -> None
            end
          in
          for k = 0 to !len - 1 do
            if !continue then begin
              let image =
                match batched with
                | Some img -> Some (Blk.sub img (k * seg_bytes) seg_bytes)
                | None when !len = 1 -> read_segment first
                | None -> read_segment (first + k)
              in
              match Option.map (Segment.parse geom) image with
              | Some (Some p) when p.Segment.p_seq = !expected ->
                incr expected;
                incr replayed;
                tail := (first + k, p.Segment.p_entries) :: !tail
              | Some (Some _) | Some None | None ->
                (* stale contents, torn write, or a media error: the
                   stream ends here *)
                incr invalid;
                continue := false
            end
          done;
          pos := !pos + !len;
          cap := min 64 (2 * !cap)
        done
      | [] ->
        let parsed = ref [] in
        for i = Disk_layout.log_first geom to geom.Geometry.num_segments - 1 do
          match Option.map (Segment.parse geom) (read_segment i) with
          | Some (Some p) when p.Segment.p_seq > snap.Checkpoint.covered_seq ->
            parsed := (p.Segment.p_seq, i, p) :: !parsed
          | Some (Some _) -> ()
          | Some None | None -> incr invalid
        done;
        let ordered =
          List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) !parsed
        in
        List.iter
          (fun (seq, disk_index, p) ->
            if seq = !expected then begin
              incr expected;
              incr replayed;
              tail := (disk_index, p.Segment.p_entries) :: !tail
            end)
          ordered);
  let tail = List.rev !tail in
  let entries =
    Array.of_list
      (List.concat_map (fun (seg, es) -> List.map (fun e -> (seg, e)) es) tail)
  in
  (* Partition the tail into dependency-independent groups. *)
  let partition, groups, group_of_root =
    Obs.span obs Tr.Recovery "partition" @@ fun () ->
    let p = { uf = Uf.create (); nodes = Hashtbl.create 1024 } in
    (* edges from checkpoint state: membership ties a block (and hence a
       whole chain) to its list; an owner mark ties a list to its ARU *)
    List.iter
      (fun (b : Checkpoint.block_entry) ->
        match b.b_member with
        | None -> ()
        | Some l -> union_all p [ node p (Nblock b.b_id); node p (Nlist l) ])
      snap.Checkpoint.blocks;
    List.iter
      (fun (l : Checkpoint.list_entry) ->
        match l.l_owner with
        | None -> ()
        | Some o -> union_all p [ node p (Nlist l.l_id); node p (Naru o) ])
      snap.Checkpoint.lists;
    (* edges from pending ARU entries carried by the checkpoint *)
    List.iter
      (fun (aru, pes) ->
        let a = node p (Naru aru) in
        List.iter
          (fun (pe : Checkpoint.pending_entry) ->
            union_all p (a :: op_nodes p pe.pe_op))
          pes)
      snap.Checkpoint.pending;
    (* edges from the tail entries themselves *)
    Array.iter
      (fun ((_, entry) : int * Summary.t) ->
        let ns = op_nodes p entry.Summary.op in
        let ns =
          match entry.Summary.stream with
          | Summary.Simple -> ns
          | Summary.In_aru a -> node p (Naru (Types.Aru_id.to_int a)) :: ns
        in
        union_all p ns)
      entries;
    (* bucket entries (and pending seeds) per group root, in log order *)
    let root_of_op entry =
      let ns =
        match entry.Summary.stream with
        | Summary.In_aru a -> [ node p (Naru (Types.Aru_id.to_int a)) ]
        | Summary.Simple -> op_nodes p entry.Summary.op
      in
      match ns with
      | n :: _ -> Uf.find p.uf n
      | [] -> assert false (* every op names at least one identifier *)
    in
    let group_of_root = Hashtbl.create 64 in
    let buckets : (int, (int * Summary.t) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let nbuckets = ref 0 in
    let bucket_index root =
      match Hashtbl.find_opt group_of_root root with
      | Some i -> i
      | None ->
        let i = !nbuckets in
        Hashtbl.replace group_of_root root i;
        Hashtbl.replace buckets i (ref []);
        incr nbuckets;
        i
    in
    let bucket i = Hashtbl.find buckets i in
    Array.iter
      (fun ((_, entry) as tagged) ->
        let b = bucket (bucket_index (root_of_op entry)) in
        b := tagged :: !b)
      entries;
    (* pending ARUs from the checkpoint get a group even when the tail
       holds none of their entries, so [finish] still discards them *)
    List.iter
      (fun (aru, _) -> ignore (bucket_index (Uf.find p.uf (node p (Naru aru)))))
      snap.Checkpoint.pending;
    (* same for prepared ARUs: a prepared transaction may have an empty
       buffer (its merge emitted nothing) yet still needs resolution *)
    List.iter
      (fun (aru, _, _) ->
        ignore (bucket_index (Uf.find p.uf (node p (Naru aru)))))
      snap.Checkpoint.prepared;
    let mk_state () =
      {
        g_blocks = blocks;
        g_lists = lists;
        g_buffers = Hashtbl.create 4;
        g_committed = Hashtbl.create 4;
        g_prepared = Hashtbl.create 4;
        g_applied = 0;
        g_skips = 0;
        g_ncommitted = 0;
        g_max_stamp = 0;
        g_max_aru = 0;
        g_max_gid = 1;
      }
    in
    let groups =
      Array.init !nbuckets (fun i ->
          {
            gr_entries = Array.of_list (List.rev !(bucket i));
            gr_state = mk_state ();
            gr_applied = false;
          })
    in
    (* seed each group's buffers with its pending ARU entries *)
    List.iter
      (fun (aru, pes) ->
        let root = Uf.find p.uf (node p (Naru aru)) in
        let g = groups.(Hashtbl.find group_of_root root) in
        Hashtbl.replace g.gr_state.g_buffers aru (List.rev pes))
      snap.Checkpoint.pending;
    (* seed prepared marks carried across the checkpoint: the Prepare
       record's segment may be covered (retired), so the mark would
       otherwise not be replayed.  A later Decide in the tail clears or
       commits it as usual. *)
    List.iter
      (fun (aru, gid, coordinator) ->
        let root = Uf.find p.uf (node p (Naru aru)) in
        let g = groups.(Hashtbl.find group_of_root root) in
        Hashtbl.replace g.gr_state.g_prepared aru (gid, coordinator);
        if gid >= g.gr_state.g_max_gid then g.gr_state.g_max_gid <- gid + 1)
      snap.Checkpoint.prepared;
    (* every list named anywhere gets its anchor created now, on this
       thread: List_table.anchor allocates lazily and is not safe to
       call concurrently from domains *)
    Hashtbl.iter
      (fun key _ ->
        match key with
        | Nlist l -> ignore (List_table.anchor lists (Types.List_id.of_int l))
        | Nblock _ | Naru _ -> ())
      p.nodes;
    (p, groups, group_of_root)
  in
  {
    p_obs = obs;
    p_sweep = sweep;
    p_parallel = parallel;
    p_decisions = decisions;
    p_blocks = blocks;
    p_lists = lists;
    p_snap = snap;
    p_region = best.Checkpoint.best_region;
    p_full_region = best.Checkpoint.best_full_region;
    p_groups = groups;
    p_partition = partition;
    p_group_of_root = group_of_root;
    p_sb_epoch = sb_epoch;
    p_next_seq = max snap.Checkpoint.next_seq !expected;
    p_segments_replayed = !replayed;
    p_invalid_segments = !invalid;
    p_disk_reads = !disk_reads;
    p_blocks_scavenged = 0;
    p_lists_scavenged = 0;
    p_used_domains = false;
    p_finished = None;
  }

let base_report p =
  {
    checkpoint_id = p.p_snap.Checkpoint.ckpt_id;
    checkpoint_region = p.p_region;
    full_region = p.p_full_region;
    superblock_epoch = p.p_sb_epoch;
    covered_seq = p.p_snap.Checkpoint.covered_seq;
    segments_replayed = p.p_segments_replayed;
    segments_skipped = p.p_snap.Checkpoint.covered_seq;
    replay_groups = Array.length p.p_groups;
    parallel_replay = p.p_used_domains;
    invalid_segments = p.p_invalid_segments;
    entries_applied = 0;
    arus_committed = 0;
    arus_discarded = 0;
    entries_discarded = 0;
    replay_skips = 0;
    blocks_scavenged = 0;
    lists_scavenged = 0;
    disk_reads = p.p_disk_reads;
    prepares_committed = 0;
    prepares_aborted = 0;
  }

let preliminary_report = base_report

(* Apply every not-yet-applied group.  Groups touch disjoint records by
   construction and the apply phase never reads the disk or the clock,
   so running them on domains is invisible to both the recovered state
   and the cost model. *)
let apply_remaining p =
  let remaining = ref [] in
  Array.iteri
    (fun i g -> if not g.gr_applied then remaining := (i, g) :: !remaining)
    p.p_groups;
  let remaining = List.rev !remaining in
  let n = List.length remaining in
  if n = 0 then ()
  else if (not p.p_parallel) || n < 2 then
    List.iter (fun (_, g) -> apply_group g) remaining
  else begin
    let ndomains = min 4 (min n (Domain.recommended_domain_count ())) in
    if ndomains < 2 then List.iter (fun (_, g) -> apply_group g) remaining
    else begin
      p.p_used_domains <- true;
      let shard d =
        List.filteri (fun i _ -> i mod ndomains = d) remaining
      in
      let worker d () =
        List.fold_left
          (fun first_exn (i, g) ->
            match apply_group g with
            | () -> first_exn
            | exception e when first_exn = None -> Some (i, e)
            | exception _ -> first_exn)
          None (shard d)
      in
      let handles =
        List.init (ndomains - 1) (fun d -> Domain.spawn (worker (d + 1)))
      in
      let results = worker 0 () :: List.map Domain.join handles in
      (* deterministic failure choice: lowest group index wins, matching
         where a sequential left-to-right apply would have stopped *)
      match
        List.fold_left
          (fun acc r ->
            match (acc, r) with
            | None, r -> r
            | Some _, None -> acc
            | Some (i, _), Some (j, _) -> if j < i then r else acc)
          None results
      with
      | None -> ()
      | Some (_, e) -> raise e
    end
  end

let finish p =
  match p.p_finished with
  | Some r -> r
  | None ->
    Obs.timed p.p_obs Tr.Recovery "apply" (fun () -> apply_remaining p);
    (* resolve dangling prepares: an ARU whose Prepare record survives
       with no Decide commits iff the coordinator shard logged a commit
       decision for its transaction — otherwise presumed abort (the
       buffered entries then fall through to the dangling-ARU discard
       below).  Sorted by ARU id for deterministic tallies. *)
    let resolved_commit = ref 0 and resolved_abort = ref 0 in
    (Obs.timed p.p_obs Tr.Recovery "resolve_prepared" @@ fun () ->
     let dangling = ref [] in
     Array.iter
       (fun g ->
         Hashtbl.iter
           (fun aru (gid, _coord) -> dangling := (aru, gid, g.gr_state) :: !dangling)
           g.gr_state.g_prepared)
       p.p_groups;
     List.iter
       (fun (aru, gid, st) ->
         Hashtbl.remove st.g_prepared aru;
         match p.p_decisions gid with
         | Some true ->
           commit_aru st (Types.Aru_id.of_int aru);
           incr resolved_commit
         | Some false | None -> incr resolved_abort)
       (List.sort
          (fun (a, _, _) (b, _, _) -> Int.compare a b)
          !dangling));
    (* merge the per-group tallies, in group order (deterministic) *)
    let applied = ref 0
    and skips = ref 0
    and committed = ref 0
    and max_stamp = ref p.p_snap.Checkpoint.stamp
    and max_aru = ref p.p_snap.Checkpoint.next_aru
    and max_gid = ref p.p_snap.Checkpoint.next_gid
    and discarded_arus = ref 0
    and discarded_entries = ref 0 in
    let merged_committed = Hashtbl.create 16 in
    Array.iter
      (fun g ->
        let st = g.gr_state in
        applied := !applied + st.g_applied;
        skips := !skips + st.g_skips;
        committed := !committed + st.g_ncommitted;
        if st.g_max_stamp > !max_stamp then max_stamp := st.g_max_stamp;
        if st.g_max_aru > !max_aru then max_aru := st.g_max_aru;
        if st.g_max_gid > !max_gid then max_gid := st.g_max_gid;
        Hashtbl.iter (fun k () -> Hashtbl.replace merged_committed k ()) st.g_committed;
        Hashtbl.iter
          (fun _ entries ->
            incr discarded_arus;
            discarded_entries := !discarded_entries + List.length entries)
          st.g_buffers)
      p.p_groups;
    (* global consistency sweep: identifiers already swept on demand are
       no-ops here, so the totals match an eager recovery exactly *)
    (Obs.timed p.p_obs Tr.Recovery "sweep" @@ fun () ->
     if p.p_sweep then begin
       Block_map.iter p.p_blocks (fun r ->
           if r.Record.alloc && r.Record.member_of = None then begin
             r.Record.alloc <- false;
             r.Record.successor <- None;
             r.Record.phys <- None;
             p.p_blocks_scavenged <- p.p_blocks_scavenged + 1
           end);
       List_table.iter p.p_lists (fun r ->
           match r.Record.l_owner with
           | Some o when Hashtbl.mem merged_committed (Types.Aru_id.to_int o) ->
             r.Record.l_owner <- None
           | Some _ when r.Record.exists && r.Record.first = None ->
             r.Record.exists <- false;
             r.Record.l_owner <- None;
             p.p_lists_scavenged <- p.p_lists_scavenged + 1
           | Some _ -> r.Record.l_owner <- None
           | None -> ())
     end);
    Block_map.rebuild_free p.p_blocks;
    List_table.rebuild_free p.p_lists;
    let report =
      {
        (base_report p) with
        parallel_replay = p.p_used_domains;
        entries_applied = !applied;
        arus_committed = !committed;
        arus_discarded = !discarded_arus;
        entries_discarded = !discarded_entries;
        replay_skips = !skips;
        blocks_scavenged = p.p_blocks_scavenged;
        lists_scavenged = p.p_lists_scavenged;
        prepares_committed = !resolved_commit;
        prepares_aborted = !resolved_abort;
      }
    in
    let restored =
      {
        r_blocks = p.p_blocks;
        r_lists = p.p_lists;
        r_next_seq = p.p_next_seq;
        r_stamp = !max_stamp + 1;
        r_next_aru = !max_aru;
        r_next_gid = !max_gid;
        r_report = report;
      }
    in
    p.p_finished <- Some restored;
    restored

let run ?obs ?sweep ?parallel ?decisions disk =
  finish (prepare ?obs ?sweep ?parallel ?decisions disk)

(* Raw decision scan used by the sharded front-end at mount: collect the
   verdict of every [Decide] record still present in a shard's log,
   regardless of checkpoint coverage.  Sound for resolving a peer's
   dangling prepare because the coordinator's decision segment cannot
   have been cleaned before every participant made its own (lazy)
   [Decide] durable — once it has, the participant no longer consults
   the coordinator.  Also returns the gid watermark so a remount never
   reuses a transaction id that a stale record could vouch for. *)
let scan_decisions disk =
  let geom = Disk.geometry disk in
  let decisions = Hashtbl.create 8 in
  let max_gid = ref 1 in
  let note gid = if gid >= !max_gid then max_gid := gid + 1 in
  for i = Disk_layout.log_first geom to geom.Geometry.num_segments - 1 do
    match
      Disk.read_view disk
        ~offset:(Geometry.segment_offset geom i)
        ~length:geom.Geometry.segment_bytes
    with
    | exception Fault.Media_error _ -> ()
    | image -> (
      match Segment.parse geom image with
      | None -> ()
      | Some p ->
        List.iter
          (fun (e : Summary.t) ->
            match e.Summary.op with
            | Summary.Decide { gid; committed; _ } ->
              note gid;
              if committed || not (Hashtbl.mem decisions gid) then
                Hashtbl.replace decisions gid committed
            | Summary.Prepare { gid; _ } -> note gid
            | _ -> ())
          p.Segment.p_entries)
  done;
  (decisions, !max_gid)
