module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Fault = Lld_disk.Fault
module Obs = Lld_obs.Obs
module Tr = Lld_obs.Trace

type report = {
  checkpoint_id : int;
  checkpoint_region : int;  (* region the restored checkpoint came from *)
  covered_seq : int;
  segments_replayed : int;
  invalid_segments : int;
  entries_applied : int;
  arus_committed : int;
  arus_discarded : int;
  entries_discarded : int;
  replay_skips : int;
  blocks_scavenged : int;
  lists_scavenged : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>checkpoint %d (covers seq %d)@,\
     segments: %d replayed, %d invalid@,\
     entries applied %d (skipped %d)@,\
     ARUs: %d committed, %d discarded (%d entries)@,\
     blocks scavenged %d@]"
    r.checkpoint_id r.covered_seq r.segments_replayed r.invalid_segments
    r.entries_applied r.replay_skips r.arus_committed r.arus_discarded
    r.entries_discarded (r.blocks_scavenged + r.lists_scavenged)

type restored = {
  r_blocks : Block_map.t;
  r_lists : List_table.t;
  r_next_seq : int;
  r_stamp : int;
  r_next_aru : int;
  r_report : report;
}

type state = {
  blocks : Block_map.t;
  lists : List_table.t;
  buffers : (int, Checkpoint.pending_entry list) Hashtbl.t; (* reverse order *)
  committed_arus : (int, unit) Hashtbl.t;
  mutable applied : int;
  mutable skips : int;
  mutable committed : int;
  mutable max_stamp : int;
  mutable max_aru : int;
}

let persistent_ctx st =
  {
    Splice.peek_block = (fun b -> Block_map.anchor st.blocks b);
    get_block = (fun b -> Block_map.anchor st.blocks b);
    peek_list = (fun l -> List_table.anchor st.lists l);
    get_list = (fun l -> List_table.anchor st.lists l);
    on_pred_hop = ignore;
  }

let note_stamp st stamp = if stamp > st.max_stamp then st.max_stamp <- stamp

let count_outcome st = function
  | `Applied -> st.applied <- st.applied + 1
  | `Skipped -> st.skips <- st.skips + 1

(* Apply one operation to the persistent state.  This function mirrors
   the committed-state semantics of the runtime exactly (see Splice). *)
let rec apply_op st ~seg op =
  let ctx = persistent_ctx st in
  match op with
  | Summary.Alloc { block; list = _; stamp } ->
    let r = Block_map.anchor st.blocks block in
    r.Record.alloc <- true;
    r.Record.member_of <- None;
    r.Record.successor <- None;
    r.Record.phys <- None;
    r.Record.stamp <- stamp;
    note_stamp st stamp;
    st.applied <- st.applied + 1
  | Summary.Write { block; slot; stamp } ->
    let r = Block_map.anchor st.blocks block in
    if r.Record.alloc && stamp >= r.Record.stamp then begin
      r.Record.phys <- Some { Record.seg_index = seg; slot };
      r.Record.stamp <- stamp;
      st.applied <- st.applied + 1
    end
    else st.skips <- st.skips + 1;
    note_stamp st stamp
  | Summary.Link { list; block; pred } ->
    count_outcome st (Splice.insert ctx ~list ~block ~pred)
  | Summary.Unlink { list; block } ->
    count_outcome st (Splice.unlink ctx ~list ~block)
  | Summary.New_list { list; stamp; owner } ->
    let r = List_table.anchor st.lists list in
    r.Record.exists <- true;
    r.Record.first <- None;
    r.Record.last <- None;
    r.Record.lstamp <- stamp;
    r.Record.l_owner <- owner;
    note_stamp st stamp;
    st.applied <- st.applied + 1
  | Summary.Delete_list { list } ->
    let dealloc br = br.Record.phys <- None in
    count_outcome st (Splice.delete_list ctx ~list ~dealloc)
  | Summary.Dealloc { block; stamp } ->
    let r = Block_map.anchor st.blocks block in
    if r.Record.alloc then begin
      (* a block is deallocated together with its list membership; a
         Dealloc entry follows the Unlink (or stands alone for a block
         never linked) *)
      r.Record.alloc <- false;
      r.Record.member_of <- None;
      r.Record.successor <- None;
      r.Record.phys <- None;
      r.Record.stamp <- stamp;
      st.applied <- st.applied + 1
    end
    else st.skips <- st.skips + 1;
    note_stamp st stamp
  | Summary.Commit { aru } ->
    let key = Types.Aru_id.to_int aru in
    let buffered =
      match Hashtbl.find_opt st.buffers key with
      | None -> []
      | Some rev -> List.rev rev
    in
    Hashtbl.remove st.buffers key;
    Hashtbl.replace st.committed_arus key ();
    List.iter
      (fun pe -> apply_op st ~seg:pe.Checkpoint.pe_seg pe.Checkpoint.pe_op)
      buffered;
    st.committed <- st.committed + 1;
    st.applied <- st.applied + 1

let replay_entry st ~seg (entry : Summary.t) =
  (match entry.Summary.stream with
  | Summary.In_aru a ->
    let i = Types.Aru_id.to_int a in
    if i >= st.max_aru then st.max_aru <- i + 1
  | Summary.Simple -> ());
  match (entry.Summary.stream, entry.Summary.op) with
  | Summary.Simple, op -> apply_op st ~seg op
  | Summary.In_aru aru, op ->
    let key = Types.Aru_id.to_int aru in
    let prev = Option.value ~default:[] (Hashtbl.find_opt st.buffers key) in
    Hashtbl.replace st.buffers key
      ({ Checkpoint.pe_op = op; pe_seg = seg } :: prev)

let restore_checkpoint geom snap =
  let blocks = Block_map.create ~capacity:(Disk_layout.block_capacity geom) in
  let lists = List_table.create ~max_lists:(Disk_layout.max_lists geom) in
  List.iter
    (fun (b : Checkpoint.block_entry) ->
      let r = Block_map.anchor blocks (Types.Block_id.of_int b.b_id) in
      r.Record.alloc <- true;
      r.Record.member_of <- Option.map Types.List_id.of_int b.b_member;
      r.Record.successor <- Option.map Types.Block_id.of_int b.b_succ;
      r.Record.phys <-
        Option.map
          (fun (seg, slot) -> { Record.seg_index = seg; slot })
          b.b_phys;
      r.Record.stamp <- b.b_stamp)
    snap.Checkpoint.blocks;
  List.iter
    (fun (l : Checkpoint.list_entry) ->
      let r = List_table.anchor lists (Types.List_id.of_int l.l_id) in
      r.Record.exists <- true;
      r.Record.first <- Option.map Types.Block_id.of_int l.l_first;
      r.Record.last <- Option.map Types.Block_id.of_int l.l_last;
      r.Record.lstamp <- l.l_stamp;
      r.Record.l_owner <- Option.map Types.Aru_id.of_int l.l_owner)
    snap.Checkpoint.lists;
  (blocks, lists)

let scavenge st =
  let n = ref 0 in
  Block_map.iter st.blocks (fun r ->
      if r.Record.alloc && r.Record.member_of = None then begin
        r.Record.alloc <- false;
        r.Record.successor <- None;
        r.Record.phys <- None;
        incr n
      end);
  !n

(* Free still-empty lists whose allocating ARU never committed (the
   list-space analogue of the paper's block consistency sweep). *)
let scavenge_lists st =
  let n = ref 0 in
  List_table.iter st.lists (fun r ->
      match r.Record.l_owner with
      | Some o when Hashtbl.mem st.committed_arus (Types.Aru_id.to_int o) ->
        r.Record.l_owner <- None
      | Some _ when r.Record.exists && r.Record.first = None ->
        r.Record.exists <- false;
        r.Record.l_owner <- None;
        incr n
      | Some _ ->
        (* uncommitted owner but no longer empty: the owning ARU died
           (aborted) and a later simple operation linked a member, so
           the list legitimately survives — only the stale mark goes *)
        r.Record.l_owner <- None
      | None -> ());
  !n

let read_region_safe disk ~region =
  match Checkpoint.read_region disk ~region with
  | snap -> snap
  | exception Fault.Media_error _ -> None

let run ?(obs = Obs.null) ?(sweep = true) disk =
  let geom = Disk.geometry disk in
  let snap, region, blocks, lists =
    Obs.timed obs Tr.Recovery "checkpoint_restore" @@ fun () ->
    let snap, region =
      match
        (read_region_safe disk ~region:0, read_region_safe disk ~region:1)
      with
      | None, None ->
        raise (Errors.Corrupt "no valid checkpoint: disk not formatted")
      | Some a, None -> (a, 0)
      | None, Some b -> (b, 1)
      | Some a, Some b ->
        if a.Checkpoint.ckpt_id >= b.Checkpoint.ckpt_id then (a, 0) else (b, 1)
    in
    let blocks, lists = restore_checkpoint geom snap in
    (snap, region, blocks, lists)
  in
  let buffers = Hashtbl.create 16 in
  List.iter
    (fun (aru, entries) -> Hashtbl.replace buffers aru (List.rev entries))
    snap.Checkpoint.pending;
  let st =
    {
      blocks;
      lists;
      buffers;
      committed_arus = Hashtbl.create 16;
      applied = 0;
      skips = 0;
      committed = 0;
      max_stamp = snap.Checkpoint.stamp;
      max_aru = snap.Checkpoint.next_aru;
    }
  in
  (* Find and replay the log tail.  The checkpoint records the exact
     order in which free segments will be used, so recovery reads along
     that order until the sequence numbers stop being contiguous (a
     torn, stale or unwritten segment ends the stream there).  A
     checkpoint without the order (never produced by this
     implementation, but tolerated) falls back to scanning the whole
     partition. *)
  let invalid = ref 0 in
  let expected = ref (snap.Checkpoint.covered_seq + 1) in
  let replayed = ref 0 in
  let read_segment i =
    match
      Disk.read disk
        ~offset:(Geometry.segment_offset geom i)
        ~length:geom.Geometry.segment_bytes
    with
    | image -> Some image
    | exception Fault.Media_error _ ->
      incr invalid;
      None
  in
  Obs.timed obs Tr.Recovery "replay" (fun () ->
      match snap.Checkpoint.free_order with
      | _ :: _ as order ->
    let continue = ref true in
    List.iter
      (fun i ->
        if !continue then begin
          match Option.map (Segment.parse geom) (read_segment i) with
          | Some (Some p) when p.Segment.p_seq = !expected ->
            incr expected;
            incr replayed;
            List.iter (replay_entry st ~seg:i) p.Segment.p_entries
          | Some (Some _) | Some None | None ->
            (* stale contents, torn write, or a media error: the stream
               ends here *)
            if !continue then incr invalid;
            continue := false
        end)
      order
  | [] ->
    let parsed = ref [] in
    for i = Disk_layout.log_first geom to geom.Geometry.num_segments - 1 do
      match Option.map (Segment.parse geom) (read_segment i) with
      | Some (Some p) when p.Segment.p_seq > snap.Checkpoint.covered_seq ->
        parsed := (p.Segment.p_seq, i, p) :: !parsed
      | Some (Some _) -> ()
      | Some None | None -> incr invalid
    done;
    let ordered =
      List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) !parsed
    in
    List.iter
      (fun (seq, disk_index, p) ->
        if seq = !expected then begin
          incr expected;
          incr replayed;
          List.iter (replay_entry st ~seg:disk_index) p.Segment.p_entries
        end)
      ordered);
  (* ARUs whose commit record never reached disk are discarded. *)
  let discarded_arus = Hashtbl.length st.buffers in
  let discarded_entries =
    Hashtbl.fold (fun _ l acc -> acc + List.length l) st.buffers 0
  in
  let scavenged, lists_scavenged =
    Obs.timed obs Tr.Recovery "sweep" @@ fun () ->
    if sweep then
      let b = scavenge st in
      (b, scavenge_lists st)
    else (0, 0)
  in
  Block_map.rebuild_free st.blocks;
  List_table.rebuild_free st.lists;
  let report =
    {
      checkpoint_id = snap.Checkpoint.ckpt_id;
      checkpoint_region = region;
      covered_seq = snap.Checkpoint.covered_seq;
      segments_replayed = !replayed;
      invalid_segments = !invalid;
      entries_applied = st.applied;
      arus_committed = st.committed;
      arus_discarded = discarded_arus;
      entries_discarded = discarded_entries;
      replay_skips = st.skips;
      blocks_scavenged = scavenged;
      lists_scavenged;
    }
  in
  {
    r_blocks = st.blocks;
    r_lists = st.lists;
    r_next_seq = max snap.Checkpoint.next_seq !expected;
    r_stamp = st.max_stamp + 1;
    r_next_aru = st.max_aru;
    r_report = report;
  }
