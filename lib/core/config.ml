type mode = Sequential | Concurrent
type visibility = Any_shadow | Committed_only | Own_shadow
type clean_policy = Greedy | Cost_benefit

type t = {
  mode : mode;
  visibility : visibility;
  cost : Lld_sim.Cost.t;
  cache_blocks : int;
  readahead : bool;
  auto_clean : bool;
  clean_policy : clean_policy;
  clean_reserve_segments : int;
  checkpoint_interval_segments : int;
  checkpoint_dirty_threshold : int;
  recovery_sweep : bool;
  recovery_parallel : bool;
  recovery_early_open : bool;
  group_commit_window : int;
  group_commit_batch : int;
  scrub_on_mount : bool;
}

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)

let default =
  {
    mode = Concurrent;
    visibility = Own_shadow;
    cost = Lld_sim.Cost.sparc5_70;
    cache_blocks = 2048;
    readahead = true;
    auto_clean = true;
    clean_policy = Cost_benefit;
    clean_reserve_segments = 4;
    checkpoint_interval_segments = 0;
    checkpoint_dirty_threshold = 4096;
    recovery_sweep = true;
    recovery_parallel = true;
    recovery_early_open = false;
    group_commit_window = env_int "LLD_GROUP_COMMIT_WINDOW" 100_000;
    group_commit_batch = env_int "LLD_GROUP_COMMIT_BATCH" 32;
    scrub_on_mount = env_int "LLD_SCRUB_ON_MOUNT" 0 <> 0;
  }

let old_lld = { default with mode = Sequential }

let pp_mode ppf = function
  | Sequential -> Format.fprintf ppf "sequential"
  | Concurrent -> Format.fprintf ppf "concurrent"

let pp_visibility ppf = function
  | Any_shadow -> Format.fprintf ppf "any-shadow"
  | Committed_only -> Format.fprintf ppf "committed-only"
  | Own_shadow -> Format.fprintf ppf "own-shadow"

let pp_clean_policy ppf = function
  | Greedy -> Format.fprintf ppf "greedy"
  | Cost_benefit -> Format.fprintf ppf "cost-benefit"
