type mode = Sequential | Concurrent
type visibility = Any_shadow | Committed_only | Own_shadow
type clean_policy = Greedy | Cost_benefit

type t = {
  mode : mode;
  visibility : visibility;
  cost : Lld_sim.Cost.t;
  cache_blocks : int;
  readahead : bool;
  auto_clean : bool;
  clean_policy : clean_policy;
  clean_reserve_segments : int;
  checkpoint_interval_segments : int;
  checkpoint_dirty_threshold : int;
  recovery_sweep : bool;
  recovery_parallel : bool;
  recovery_early_open : bool;
}

let default =
  {
    mode = Concurrent;
    visibility = Own_shadow;
    cost = Lld_sim.Cost.sparc5_70;
    cache_blocks = 2048;
    readahead = true;
    auto_clean = true;
    clean_policy = Cost_benefit;
    clean_reserve_segments = 4;
    checkpoint_interval_segments = 0;
    checkpoint_dirty_threshold = 4096;
    recovery_sweep = true;
    recovery_parallel = true;
    recovery_early_open = false;
  }

let old_lld = { default with mode = Sequential }

let pp_mode ppf = function
  | Sequential -> Format.fprintf ppf "sequential"
  | Concurrent -> Format.fprintf ppf "concurrent"

let pp_visibility ppf = function
  | Any_shadow -> Format.fprintf ppf "any-shadow"
  | Committed_only -> Format.fprintf ppf "committed-only"
  | Own_shadow -> Format.fprintf ppf "own-shadow"

let pp_clean_policy ppf = function
  | Greedy -> Format.fprintf ppf "greedy"
  | Cost_benefit -> Format.fprintf ppf "cost-benefit"
