module Clock = Lld_sim.Clock
module Cost = Lld_sim.Cost
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Lru = Lld_util.Lru
module Blk = Lld_util.Blk
module Arena = Lld_util.Arena
module Obs = Lld_obs.Obs
module Tr = Lld_obs.Trace

(* An ARU sitting between its [Prepare] and [Decide] records under
   two-phase commit: the merge already ran, but the collected records
   must stay at durable_seq = max_int (never promoted) until the
   transaction's decision stamps them. *)
type prepared_commit = {
  pc_gid : int;
  pc_coordinator : int;
  pc_seq : int; (* seq of the segment holding the Prepare + merge *)
  pc_blocks : Record.block list ref;
  pc_lists : Record.list_r list ref;
}

type t = {
  config : Config.t;
  disk : Disk.t;
  geom : Geometry.t;
  clock : Clock.t;
  blocks : Block_map.t;
  lists : List_table.t;
  mutable committed_blocks : Record.block option;
  mutable committed_lists : Record.list_r option;
  arus : (int, Aru.t) Hashtbl.t;
  mutable next_aru : int;
  mutable next_gid : int;
  (* cross-shard transaction-id watermark (persisted in checkpoints so
     gids stay unique across incarnations) *)
  prepared_commits : (int, prepared_commit) Hashtbl.t;
  (* ARUs prepared under two-phase commit and not yet decided *)
  mutable seq_aru : Aru.t option; (* sequential mode's single open ARU *)
  mutable stamp : int;
  mutable open_seg : Segment.t option;
  mutable next_seq : int;
  free_segs : int Queue.t;
  sealed : bool array; (* per disk segment: written and not yet freed *)
  seal_seq : int array; (* per disk segment: seq when last sealed *)
  victim_flag : bool array; (* per disk segment: picked in current batch *)
  live : Live_index.t; (* seg -> persistent block slots referenced *)
  cache : Blk.t Lru.t;
  (* cached entries are views into immutable storage (sealed segment
     images, fresh disk reads) — never into a buffer that can mutate *)
  arena : Arena.t; (* block-sized slots backing shadow data versions *)
  meta_cache : (int, Blk.t) Hashtbl.t;
  (* per sealed segment: its trailing meta view (header + CRC table),
     memoised so single-block reads can verify their slot CRC with one
     small extra fetch per segment; dropped when the segment is freed *)
  sb_slots : Superblock.slot option array;
  (* in-memory mirror of the two superblock generations, the scrubber's
     repair source for a rotted slot *)
  mutable last_read_gslot : int;
  mutable seq_read_run : int; (* consecutive sequential physical reads *)
  counters : Counters.t;
  mutable ckpt_id : int;
  mutable full_region : int; (* region holding the newest durable full *)
  mutable full_ckpt_id : int; (* its ckpt_id; 0 = no full written yet *)
  dirty_blocks : (int, unit) Hashtbl.t; (* anchors touched since last full *)
  dirty_lists : (int, unit) Hashtbl.t;
  mutable sealed_since_ckpt : int;
  pending : (int, Checkpoint.pending_entry list) Hashtbl.t;
  (* reversed emission order; mirrors recovery's per-ARU buffers *)
  commit_q : int Queue.t;
  (* group commit: ARUs whose commit intent is queued, FIFO *)
  commit_set : (int, unit) Hashtbl.t; (* membership mirror of commit_q *)
  commit_enq_ns : (int, int) Hashtbl.t;
  (* per queued ARU: virtual enqueue time — feeds the queue-wait stage
     histogram and repairs [commit_first_ns] after an abort-dequeue *)
  mutable commit_first_ns : int; (* enqueue time of the oldest intent *)
  mutable in_cleaning : bool;
  mutable in_checkpoint : bool;
  mutable warming : Recovery.pending option;
  (* early-open recovery still in progress: reads recover identifiers on
     demand, the first mutating operation completes the replay *)
  mutable obs : Obs.t; (* observability handle; Obs.null = every probe a no-op *)
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let cost t = t.config.Config.cost
let cpu t ns = Clock.charge t.clock Clock.Cpu ns
let concurrent t = t.config.Config.mode = Config.Concurrent

let next_stamp t =
  t.stamp <- t.stamp + 1;
  t.stamp

let block_bytes t = t.geom.Geometry.block_bytes
let bps t = Geometry.blocks_per_segment t.geom
let counters t = t.counters
let clock t = t.clock
let config t = t.config
let cost_model t = t.config.Config.cost
let disk t = t.disk
let capacity t = Block_map.capacity t.blocks
let allocated_blocks t = Block_map.allocated_count t.blocks
let free_segments t = Queue.length t.free_segs

type who = [ `Simple | `In of Aru.t ]

let resolve_who t = function
  | None -> `Simple
  | Some aid -> (
    match Hashtbl.find_opt t.arus (Types.Aru_id.to_int aid) with
    | Some a -> `In a
    | None -> raise (Errors.Unknown_aru aid))

let owner_active t o = Hashtbl.mem t.arus (Types.Aru_id.to_int o)

(* Dirty tracking for incremental checkpoints: every site that mutates a
   persistent anchor — or hands out a committed record that will be
   promoted into one — marks the identifier.  Over-marking only enlarges
   the next delta, never breaks it; the sets are cleared when a full
   checkpoint commits. *)
let dirty_block t b = Hashtbl.replace t.dirty_blocks (Types.Block_id.to_int b) ()
let dirty_list t l = Hashtbl.replace t.dirty_lists (Types.List_id.to_int l) ()

let dirty_count t =
  Hashtbl.length t.dirty_blocks + Hashtbl.length t.dirty_lists

(* Copy accounting for the zero-copy data path: [copied] tallies bytes
   physically duplicated (compat-wrapper conversions, the shadow-write
   arena copy), [elide] marks a spot where the pre-view implementation
   copied and this one hands out an O(1) view instead. *)
let copied t n = t.counters.Counters.bytes_copied <- t.counters.Counters.bytes_copied + n

let elide t =
  t.counters.Counters.copy_elisions <- t.counters.Counters.copy_elisions + 1

(* Arena-backed ownership of a record's in-memory data version: the
   record owns its slot until [drop_data] recycles it.  [set_data]
   copies, because the caller's view stays the caller's. *)
let set_data t (r : Record.block) v =
  (match r.Record.data with
  | Some old -> Arena.free t.arena old
  | None -> ());
  let slot = Arena.alloc t.arena in
  Blk.blit v 0 slot 0 (Blk.length v);
  copied t (Blk.length v);
  r.Record.data <- Some slot

let drop_data t (r : Record.block) =
  match r.Record.data with
  | Some old ->
    Arena.free t.arena old;
    r.Record.data <- None
  | None -> ()

(* Live-index maintenance: every persistent-anchor [phys] change goes
   through one of these, keeping [t.live] an exact reverse map. *)
let live_count t seg = Live_index.live t.live seg

let live_add t seg b =
  t.counters.Counters.live_index_updates <-
    t.counters.Counters.live_index_updates + 1;
  Live_index.add t.live ~seg ~block:(Types.Block_id.to_int b)

let live_remove t b =
  t.counters.Counters.live_index_updates <-
    t.counters.Counters.live_index_updates + 1;
  Live_index.remove t.live ~block:(Types.Block_id.to_int b)

(* Allocation-owner visibility (paper §3.3): a block/list allocated
   inside an ARU is invisible to everyone else until the ARU ends. *)
let owner_visible t who owner =
  match owner with
  | None -> true
  | Some o -> (
    if not (owner_active t o) then true
    else
      match who with
      | `In (a : Aru.t) -> Types.Aru_id.equal a.Aru.id o
      | `Simple -> false)

(* Durability bookkeeping for committed records touched by simple
   operations: the record may be promoted once the given segment is on
   disk.  A fresh alternative record carries [max_int] ("not yet
   determined"), which the first note replaces. *)
let set_durable_block (r : Record.block) seq =
  r.Record.durable_seq <-
    (if r.Record.durable_seq = max_int then seq else max r.Record.durable_seq seq)

let set_durable_list (r : Record.list_r) seq =
  r.Record.l_durable_seq <-
    (if r.Record.l_durable_seq = max_int then seq
     else max r.Record.l_durable_seq seq)

(* ------------------------------------------------------------------ *)
(* Segment lifecycle                                                   *)

let current_seq t =
  match t.open_seg with Some s -> Segment.seq s | None -> t.next_seq

let cache_invalidate_segment t idx =
  let base = idx * bps t in
  Hashtbl.remove t.meta_cache idx;
  Lru.remove_range t.cache ~lo:base ~hi:(base + bps t - 1)

let rec open_new t =
  if
    (not t.in_cleaning) && t.config.Config.auto_clean
    && Queue.length t.free_segs < t.config.Config.clean_reserve_segments
  then clean_internal t ~target_free:(t.config.Config.clean_reserve_segments * 2);
  match Queue.take_opt t.free_segs with
  | None -> raise Errors.Disk_full
  | Some idx ->
    cache_invalidate_segment t idx;
    let seg = Segment.create t.geom ~seq:t.next_seq ~disk_index:idx in
    t.next_seq <- t.next_seq + 1;
    t.open_seg <- Some seg;
    seg

and get_open t = match t.open_seg with Some s -> s | None -> open_new t

(* Promote committed records whose durability requirement is met:
   the committed -> persistent transition (paper §3.1). *)
and promote_upto t upto_seq =
  let c = cost t in
  let promote_block (r : Record.block) =
    dirty_block t r.Record.id;
    let anchor = Block_map.anchor t.blocks r.Record.id in
    (match anchor.Record.phys with
    | Some _ -> live_remove t r.Record.id
    | None -> ());
    if r.Record.alloc then begin
      anchor.Record.alloc <- true;
      anchor.Record.member_of <- r.Record.member_of;
      anchor.Record.successor <- r.Record.successor;
      anchor.Record.phys <- r.Record.phys;
      (match r.Record.phys with
      | Some p -> live_add t p.Record.seg_index r.Record.id
      | None -> ());
      anchor.Record.stamp <- r.Record.stamp;
      anchor.Record.alloc_owner <- r.Record.alloc_owner
    end
    else begin
      anchor.Record.alloc <- false;
      anchor.Record.member_of <- None;
      anchor.Record.successor <- None;
      anchor.Record.phys <- None;
      anchor.Record.stamp <- r.Record.stamp;
      anchor.Record.alloc_owner <- None
    end;
    Record.remove_alt_block ~anchor r;
    t.counters.Counters.record_transitions <-
      t.counters.Counters.record_transitions + 1;
    cpu t c.Cost.record_transition_ns
  in
  let promote_list (r : Record.list_r) =
    dirty_list t r.Record.lid;
    let anchor = List_table.anchor t.lists r.Record.lid in
    anchor.Record.exists <- r.Record.exists;
    anchor.Record.first <- r.Record.first;
    anchor.Record.last <- r.Record.last;
    anchor.Record.lstamp <- r.Record.lstamp;
    anchor.Record.l_owner <- (if r.Record.exists then r.Record.l_owner else None);
    Record.remove_alt_list ~anchor r;
    t.counters.Counters.record_transitions <-
      t.counters.Counters.record_transitions + 1;
    cpu t c.Cost.record_transition_ns
  in
  let rec filter_blocks node =
    match node with
    | None -> None
    | Some (r : Record.block) ->
      let rest = filter_blocks r.Record.next_same_state in
      if r.Record.durable_seq <= upto_seq then begin
        promote_block r;
        r.Record.next_same_state <- None;
        rest
      end
      else begin
        r.Record.next_same_state <- rest;
        Some r
      end
  in
  let rec filter_lists node =
    match node with
    | None -> None
    | Some (r : Record.list_r) ->
      let rest = filter_lists r.Record.l_next_same_state in
      if r.Record.l_durable_seq <= upto_seq then begin
        promote_list r;
        r.Record.l_next_same_state <- None;
        rest
      end
      else begin
        r.Record.l_next_same_state <- rest;
        Some r
      end
  in
  t.committed_blocks <- filter_blocks t.committed_blocks;
  t.committed_lists <- filter_lists t.committed_lists

and seal t =
  match t.open_seg with
  | None -> ()
  | Some s when Segment.is_empty s ->
    (* never written: return the slot unused *)
    t.open_seg <- None;
    t.next_seq <- t.next_seq - 1;
    Queue.push (Segment.disk_index s) t.free_segs
  | Some s ->
    let image = Segment.seal s in
    let idx = Segment.disk_index s in
    Disk.write_view t.disk ~offset:(Geometry.segment_offset t.geom idx) image;
    (* Paper §4 ordering: a sealed segment (and every commit record in
       it) must be durable before any later segment or checkpoint refers
       to it.  No-op in memory; fsync on a file backend. *)
    Disk.barrier t.disk;
    t.counters.Counters.segments_written <-
      t.counters.Counters.segments_written + 1;
    t.sealed.(idx) <- true;
    t.seal_seq.(idx) <- Segment.seq s;
    (* the sealed segment's blocks are the most recently used data; the
       sealed image is immutable, so the cache aliases its slots *)
    let base = idx * bps t in
    for slot = 0 to Segment.slots_used s - 1 do
      elide t;
      Lru.add t.cache (base + slot) (Segment.read_slot s ~slot)
    done;
    t.open_seg <- None;
    t.sealed_since_ckpt <- t.sealed_since_ckpt + 1;
    promote_upto t (Segment.seq s);
    maybe_auto_checkpoint t

and flush t =
  t.counters.Counters.flushes <- t.counters.Counters.flushes + 1;
  seal t

and maybe_auto_checkpoint t =
  let interval = t.config.Config.checkpoint_interval_segments in
  if
    interval > 0
    && t.sealed_since_ckpt >= interval
    && (not t.in_checkpoint) && (not t.in_cleaning)
    && t.seq_aru = None
  then checkpoint_internal t

(* Write a checkpoint of the persistent state (plus pending ARU
   entries); see Checkpoint.  A periodic checkpoint is an incremental
   delta (the anchors dirtied since the last full, plus tombstones)
   while the dirty set stays small; [force_full] — mkfs, recovery, and
   cleaning — writes the complete image.  Cleaning MUST force a full:
   its reclaimed segments join the free queue right afterwards, and if a
   later torn delta made recovery fall back to an older full, segments
   reused in between would tear a hole in that full's sequence walk.

   Region discipline: every checkpoint (either kind) targets the region
   NOT holding the newest durable full, so a torn write can never
   destroy the fallback generation.  A completed full takes that region
   over; deltas are cumulative against the full and keep overwriting the
   same region. *)
and checkpoint_internal ?(extra_free = []) ?(force_full = false) t =
  t.in_checkpoint <- true;
  Fun.protect ~finally:(fun () -> t.in_checkpoint <- false) @@ fun () ->
  let delta =
    (not force_full) && t.full_ckpt_id > 0
    && t.config.Config.checkpoint_dirty_threshold > 0
    && dirty_count t <= t.config.Config.checkpoint_dirty_threshold
  in
  let target = 1 - t.full_region in
  Obs.timed t.obs Tr.Checkpoint "write"
    ~args:
      [
        ("ckpt_id", Tr.I (t.ckpt_id + 1));
        ("region", Tr.I target);
        ("delta", Tr.I (if delta then 1 else 0));
        ("dirty", Tr.I (dirty_count t));
      ]
  @@ fun () ->
  seal t;
  let block_entry (r : Record.block) =
    {
      Checkpoint.b_id = Types.Block_id.to_int r.Record.id;
      b_member = Option.map Types.List_id.to_int r.Record.member_of;
      b_succ = Option.map Types.Block_id.to_int r.Record.successor;
      b_phys =
        Option.map
          (fun (p : Record.phys) -> (p.Record.seg_index, p.Record.slot))
          r.Record.phys;
      b_stamp = r.Record.stamp;
    }
  in
  let list_entry (r : Record.list_r) =
    let l_owner =
      match r.Record.l_owner with
      | Some o when owner_active t o -> Some (Types.Aru_id.to_int o)
      | Some _ | None -> None
    in
    {
      Checkpoint.l_id = Types.List_id.to_int r.Record.lid;
      l_first = Option.map Types.Block_id.to_int r.Record.first;
      l_last = Option.map Types.Block_id.to_int r.Record.last;
      l_stamp = r.Record.lstamp;
      l_owner;
    }
  in
  let blocks = ref [] in
  let lists = ref [] in
  let dead_blocks = ref [] in
  let dead_lists = ref [] in
  if delta then begin
    let sorted tbl = List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
    List.iter
      (fun bi ->
        let r = Block_map.anchor t.blocks (Types.Block_id.of_int bi) in
        if r.Record.alloc then blocks := block_entry r :: !blocks
        else dead_blocks := bi :: !dead_blocks)
      (sorted t.dirty_blocks);
    List.iter
      (fun li ->
        match List_table.find_anchor t.lists (Types.List_id.of_int li) with
        | Some r when r.Record.exists -> lists := list_entry r :: !lists
        | Some _ | None -> dead_lists := li :: !dead_lists)
      (sorted t.dirty_lists)
  end
  else begin
    Block_map.iter t.blocks (fun r ->
        if r.Record.alloc then blocks := block_entry r :: !blocks);
    List_table.iter t.lists (fun r ->
        if r.Record.exists then lists := list_entry r :: !lists)
  end;
  let pending =
    Hashtbl.fold (fun aru rev acc -> (aru, List.rev rev) :: acc) t.pending []
  in
  let free_order =
    List.rev (Queue.fold (fun acc idx -> idx :: acc) [] t.free_segs)
    @ extra_free
  in
  t.ckpt_id <- t.ckpt_id + 1;
  let snap =
    {
      Checkpoint.ckpt_id = t.ckpt_id;
      kind =
        (if delta then Checkpoint.Delta { base_id = t.full_ckpt_id }
         else Checkpoint.Full);
      covered_seq = t.next_seq - 1;
      next_seq = t.next_seq;
      stamp = t.stamp;
      next_aru = t.next_aru;
      next_gid = t.next_gid;
      blocks = List.rev !blocks;
      lists = List.rev !lists;
      dead_blocks = List.rev !dead_blocks;
      dead_lists = List.rev !dead_lists;
      pending;
      free_order;
      prepared =
        List.sort
          (fun (a, _, _) (b, _, _) -> Int.compare a b)
          (Hashtbl.fold
             (fun aru pc acc -> (aru, pc.pc_gid, pc.pc_coordinator) :: acc)
             t.prepared_commits []);
    }
  in
  Checkpoint.write t.disk ~region:target snap;
  (* advance the generational superblock: epoch = ckpt_id, so parity
     alternates and the previous generation's slot survives a torn
     write of this one *)
  let sb = { Superblock.epoch = t.ckpt_id; region = target } in
  Superblock.write_slot t.disk sb;
  t.sb_slots.(Superblock.slot_for ~epoch:t.ckpt_id) <- Some sb;
  if not delta then begin
    t.full_region <- target;
    t.full_ckpt_id <- t.ckpt_id;
    Hashtbl.reset t.dirty_blocks;
    Hashtbl.reset t.dirty_lists
  end;
  t.sealed_since_ckpt <- 0;
  t.counters.Counters.checkpoints <- t.counters.Counters.checkpoints + 1

(* ------------------------------------------------------------------ *)
(* Segment cleaning                                                    *)

and clean_internal t ~target_free =
  if t.in_cleaning then ()
  else begin
    t.in_cleaning <- true;
    Fun.protect ~finally:(fun () -> t.in_cleaning <- false) @@ fun () ->
    Obs.timed t.obs Tr.Clean "pass"
      ~args:
        [
          ("target_free", Tr.I target_free);
          ("free_now", Tr.I (Queue.length t.free_segs));
        ]
    @@ fun () ->
    if t.seq_aru <> None then
      (* the sequential prototype cannot checkpoint (and therefore not
         clean) with an open ARU; DESIGN.md §5.3 *)
      raise Errors.Disk_full;
    flush t;
    (* Clean in batches.  A batch's relocation copies must fit in the
       space that is free right now (minus one spare segment), or the
       relocation itself would run out of segments mid-way. *)
    let progress = ref true in
    while Queue.length t.free_segs < target_free && !progress do
      let victims = ref [] in
      let n_victims = ref 0 in
      let copies = ref 0 in
      let budget = max 0 ((Queue.length t.free_segs - 1) * bps t) in
      (* Segments at or past the oldest prepared transaction's position
         are pinned: a prepared ARU's merge (data slots included) is
         sealed but NOT yet in the live index — its records sit at
         durable_seq = max_int until the decision — so the cleaner would
         see the segment as dead and reuse it, destroying a slice the
         coordinator may yet commit. *)
      let prepared_floor =
        Hashtbl.fold
          (fun _ pc acc -> min acc pc.pc_seq)
          t.prepared_commits max_int
      in
      let is_candidate idx =
        t.sealed.(idx) && (not t.victim_flag.(idx))
        && t.seal_seq.(idx) < prepared_floor
      in
      (* Victim score, higher is better.  Greedy reproduces the paper's
         least-live choice; cost-benefit is the Sprite-LFS ratio
         (1-u)*age/(1+u), preferring cold segments whose free space is
         worth the copying (DESIGN.md §5.6). *)
      let score idx =
        match t.config.Config.clean_policy with
        | Config.Greedy -> -.float_of_int (live_count t idx)
        | Config.Cost_benefit ->
          let u = float_of_int (live_count t idx) /. float_of_int (bps t) in
          let age = float_of_int (max 1 (t.next_seq - t.seal_seq.(idx))) in
          (1. -. u) *. age /. (1. +. u)
      in
      let pick () =
        let best = ref None in
        let best_score = ref neg_infinity in
        for idx = Disk_layout.log_first t.geom
            to t.geom.Geometry.num_segments - 1 do
          if is_candidate idx then begin
            t.counters.Counters.victim_scans <-
              t.counters.Counters.victim_scans + 1;
            let s = score idx in
            if s > !best_score then begin
              best := Some idx;
              best_score := s
            end
          end
        done;
        (match !best with
        | Some _ ->
          t.counters.Counters.clean_picks <- t.counters.Counters.clean_picks + 1
        | None -> ());
        !best
      in
      let batch_full = ref false in
      while
        (not !batch_full)
        && Queue.length t.free_segs + !n_victims
           - ((!copies + bps t - 1) / bps t)
           < target_free
      do
        match pick () with
        | Some idx
          when live_count t idx < bps t && !copies + live_count t idx <= budget
          ->
          t.victim_flag.(idx) <- true;
          victims := idx :: !victims;
          incr n_victims;
          copies := !copies + live_count t idx
        | Some _ | None -> batch_full := true
      done;
      (* a batch that reclaims nothing net makes no progress *)
      let gain = !n_victims - ((!copies + bps t - 1) / bps t) in
      if !victims = [] || gain <= 0 then progress := false
      else begin
        Obs.instant t.obs Tr.Clean "batch"
          [
            ("victims", Tr.I !n_victims);
            ("copies", Tr.I !copies);
            ("gain", Tr.I gain);
          ];
        List.iter (relocate_live_blocks t) !victims;
        flush t;
        (* the victims join the free queue right after this checkpoint,
           so they must already appear in its free order; forced full so
           no earlier generation recovery could fall back to predates
           their reuse *)
        checkpoint_internal t ~extra_free:(List.rev !victims) ~force_full:true;
        List.iter
          (fun idx ->
            if live_count t idx <> 0 then
              Errors.corrupt
                (Printf.sprintf "cleaner: segment %d still has %d live blocks"
                   idx (live_count t idx));
            t.sealed.(idx) <- false;
            cache_invalidate_segment t idx;
            Queue.push idx t.free_segs)
          !victims;
        t.counters.Counters.segments_cleaned <-
          t.counters.Counters.segments_cleaned + !n_victims
      end;
      List.iter (fun idx -> t.victim_flag.(idx) <- false) !victims
    done;
    if Queue.length t.free_segs = 0 then raise Errors.Disk_full
  end

(* Copy every live block out of the victim segment into the open
   stream, preserving stamps so replay ordering is untouched.

   The live index names the victim's blocks directly (O(live(victim)),
   no block-map scan), and their data comes from the LRU cache when
   present, else from ONE batched segment-sized read that is lazily
   fetched and then serves every remaining slot.  Relocation's own
   [emit_write] can seal the open segment and promote committed
   records, mutating anchors mid-loop, so the block list is a snapshot
   and each anchor is re-checked against the victim at visit time. *)
and relocate_live_blocks t victim =
  Obs.timed t.obs Tr.Clean "relocate"
    ~args:
      [ ("segment", Tr.I victim); ("live", Tr.I (live_count t victim)) ]
  @@ fun () ->
  let c = cost t in
  let base = victim * bps t in
  let seg_parsed = ref None in
  let slot_data slot =
    match Lru.find t.cache (base + slot) with
    | Some data ->
      t.counters.Counters.clean_cache_hits <-
        t.counters.Counters.clean_cache_hits + 1;
      elide t;
      data
    | None ->
      let parsed =
        match !seg_parsed with
        | Some p -> p
        | None ->
          let image =
            Disk.read_view t.disk
              ~offset:(Geometry.segment_offset t.geom victim)
              ~length:t.geom.Geometry.segment_bytes
          in
          t.counters.Counters.clean_disk_reads <-
            t.counters.Counters.clean_disk_reads + 1;
          let p =
            match Segment.parse t.geom image with
            | Some p -> p
            | None ->
              raise
                (Errors.Corruption
                   (Errors.Invalid_checksum
                      { what = "segment"; index = victim }))
          in
          seg_parsed := Some p;
          p
      in
      (* checksum-verified view into the batched read *)
      Segment.parsed_slot t.geom parsed ~slot
  in
  List.iter
    (fun bi ->
      let bid = Types.Block_id.of_int bi in
      let anchor = Block_map.anchor t.blocks bid in
      match anchor.Record.phys with
      | Some p when p.Record.seg_index = victim ->
        let data = slot_data p.Record.slot in
        let seq, phys =
          emit_write t ~allow_cross_scope:true ~stream:Summary.Simple
            ~block:bid ~data ~stamp:anchor.Record.stamp ()
        in
        (if concurrent t then begin
           let r = committed_get t bid in
           r.Record.phys <- Some phys;
           r.Record.stamp <- anchor.Record.stamp;
           set_durable_block r seq
         end
         else begin
           live_add t phys.Record.seg_index bid;
           anchor.Record.phys <- Some phys;
           dirty_block t bid
         end);
        t.counters.Counters.blocks_copied_clean <-
          t.counters.Counters.blocks_copied_clean + 1;
        cpu t c.Cost.record_lookup_ns
      | Some _ | None -> ())
    (Live_index.blocks t.live victim)

(* ------------------------------------------------------------------ *)
(* Emitting summary entries                                            *)

and pending_push t aru op seg =
  let key = Types.Aru_id.to_int aru in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.pending key) in
  Hashtbl.replace t.pending key ({ Checkpoint.pe_op = op; pe_seg = seg } :: prev)

and emit_entry t ~stream op =
  let entry = { Summary.stream; op } in
  let size = Summary.encoded_size entry in
  let s =
    let s0 = get_open t in
    if Segment.has_room s0 ~data_blocks:0 ~entry_bytes:size then s0
    else begin
      seal t;
      get_open t
    end
  in
  Segment.add_entry s entry;
  t.counters.Counters.summary_entries <- t.counters.Counters.summary_entries + 1;
  cpu t (cost t).Cost.summary_entry_ns;
  (match stream with
  | Summary.In_aru a -> pending_push t a op (Segment.disk_index s)
  | Summary.Simple -> ());
  Segment.seq s

(* Write one block of data into the open stream together with its
   summary entry (kept atomic with respect to segment boundaries).
   [charge_copy:false] models the commit-time shadow->committed data
   transition, where the already-copied shadow buffer is donated to the
   segment rather than copied again (DESIGN.md §5.4).
   [allow_cross_scope] says whether the write may coalesce into a slot
   last written by a different stream: true for simple writes (they
   apply unconditionally at replay) and for commit-time merges (the
   reservation in [end_aru] guarantees the commit record lands in the
   same segment); false for the sequential prototype's in-ARU writes,
   whose commit record may be segments away. *)
and emit_write t ?(charge_copy = true) ~allow_cross_scope ~stream ~block ~data
    ~stamp () =
  let scope =
    match stream with
    | Summary.Simple -> Segment.Simple_scope
    | Summary.In_aru a -> Segment.Aru_scope a
  in
  let op = Summary.Write { block; slot = 0; stamp } in
  let size = Summary.encoded_size { Summary.stream; op } in
  let s =
    let s0 = get_open t in
    if Segment.has_room s0 ~data_blocks:1 ~entry_bytes:size then s0
    else begin
      seal t;
      get_open t
    end
  in
  let slot = Segment.put_block s ~scope ~allow_cross_scope block data in
  if charge_copy then cpu t (cost t).Cost.block_copy_ns;
  let op = Summary.Write { block; slot; stamp } in
  Segment.add_entry s { Summary.stream; op };
  t.counters.Counters.summary_entries <- t.counters.Counters.summary_entries + 1;
  cpu t (cost t).Cost.summary_entry_ns;
  (match stream with
  | Summary.In_aru a -> pending_push t a op (Segment.disk_index s)
  | Summary.Simple -> ());
  (Segment.seq s, { Record.seg_index = Segment.disk_index s; slot })

(* ------------------------------------------------------------------ *)
(* Version views                                                       *)

and hops_charge t n =
  if n > 0 then begin
    t.counters.Counters.mesh_hops <- t.counters.Counters.mesh_hops + n;
    cpu t (n * (cost t).Cost.mesh_hop_ns)
  end

(* Committed view of a block: the committed alternative record, falling
   back to the persistent anchor.  In sequential mode the anchor is the
   single authoritative record. *)
and committed_peek t b =
  let anchor = Block_map.anchor t.blocks b in
  if not (concurrent t) then anchor
  else begin
    let r, hops = Record.find_block ~anchor Record.Committed in
    hops_charge t hops;
    Option.value r ~default:anchor
  end

and committed_get t b =
  dirty_block t b;
  let anchor = Block_map.anchor t.blocks b in
  if not (concurrent t) then anchor
  else begin
    let r, hops = Record.find_block ~anchor Record.Committed in
    hops_charge t hops;
    match r with
    | Some r -> r
    | None ->
      let alt = Record.alt_block Record.Committed ~from:anchor in
      Record.insert_alt_block ~anchor alt;
      alt.Record.next_same_state <- t.committed_blocks;
      t.committed_blocks <- Some alt;
      t.counters.Counters.record_creates <-
        t.counters.Counters.record_creates + 1;
      cpu t (cost t).Cost.record_create_ns;
      alt
  end

and committed_peek_list t l =
  let anchor = List_table.anchor t.lists l in
  if not (concurrent t) then anchor
  else begin
    let r, hops = Record.find_list ~anchor Record.Committed in
    hops_charge t hops;
    Option.value r ~default:anchor
  end

and committed_get_list t l =
  dirty_list t l;
  let anchor = List_table.anchor t.lists l in
  if not (concurrent t) then anchor
  else begin
    let r, hops = Record.find_list ~anchor Record.Committed in
    hops_charge t hops;
    match r with
    | Some r -> r
    | None ->
      let alt = Record.alt_list Record.Committed ~from:anchor in
      Record.insert_alt_list ~anchor alt;
      alt.Record.l_next_same_state <- t.committed_lists;
      t.committed_lists <- Some alt;
      t.counters.Counters.record_creates <-
        t.counters.Counters.record_creates + 1;
      cpu t (cost t).Cost.record_create_ns;
      alt
  end

(* Shadow view for an ARU: shadow record, else committed, else
   persistent (the standardized search of paper §3.3). *)
and shadow_peek t (a : Aru.t) b =
  let anchor = Block_map.anchor t.blocks b in
  let r, hops = Record.find_block ~anchor (Record.Shadow a.Aru.id) in
  hops_charge t hops;
  match r with Some r -> r | None -> committed_peek t b

and shadow_get t (a : Aru.t) b =
  let anchor = Block_map.anchor t.blocks b in
  let r, hops = Record.find_block ~anchor (Record.Shadow a.Aru.id) in
  hops_charge t hops;
  match r with
  | Some r -> r
  | None ->
    let from = committed_peek t b in
    let alt = Record.alt_block (Record.Shadow a.Aru.id) ~from in
    Record.insert_alt_block ~anchor alt;
    Aru.push_shadow_block a alt;
    t.counters.Counters.record_creates <- t.counters.Counters.record_creates + 1;
    cpu t (cost t).Cost.record_create_ns;
    alt

and shadow_peek_list t (a : Aru.t) l =
  let anchor = List_table.anchor t.lists l in
  let r, hops = Record.find_list ~anchor (Record.Shadow a.Aru.id) in
  hops_charge t hops;
  match r with Some r -> r | None -> committed_peek_list t l

and shadow_get_list t (a : Aru.t) l =
  let anchor = List_table.anchor t.lists l in
  let r, hops = Record.find_list ~anchor (Record.Shadow a.Aru.id) in
  hops_charge t hops;
  match r with
  | Some r -> r
  | None ->
    let from = committed_peek_list t l in
    let alt = Record.alt_list (Record.Shadow a.Aru.id) ~from in
    Record.insert_alt_list ~anchor alt;
    Aru.push_shadow_list a alt;
    t.counters.Counters.record_creates <- t.counters.Counters.record_creates + 1;
    cpu t (cost t).Cost.record_create_ns;
    alt

(* The record a Read (or introspection) sees, per the configured
   visibility option (paper §3.3). *)
and visible_block t (who : who) b =
  let anchor = Block_map.anchor t.blocks b in
  if not (concurrent t) then anchor
  else begin
    cpu t (cost t).Cost.version_search_ns;
    match (t.config.Config.visibility, who) with
    | Config.Own_shadow, `In a -> shadow_peek t a b
    | Config.Own_shadow, `Simple | Config.Committed_only, _ ->
      committed_peek t b
    | Config.Any_shadow, _ -> (
      let r, hops = Record.newest_shadow_block ~anchor in
      hops_charge t hops;
      match r with Some r -> r | None -> committed_peek t b)
  end

and visible_list t (who : who) l =
  if not (concurrent t) then List_table.anchor t.lists l
  else begin
    cpu t (cost t).Cost.version_search_ns;
    match (t.config.Config.visibility, who) with
    | (Config.Own_shadow | Config.Any_shadow), `In a -> shadow_peek_list t a l
    | (Config.Own_shadow | Config.Any_shadow), `Simple
    | Config.Committed_only, (`Simple | `In _) ->
      committed_peek_list t l
  end

(* ------------------------------------------------------------------ *)
(* Durability sinks and splice contexts                                *)

and note_block_simple t (r : Record.block) =
  if concurrent t then set_durable_block r (current_seq t)

and note_list_simple t (r : Record.list_r) =
  if concurrent t then set_durable_list r (current_seq t)

and pred_hop t () =
  t.counters.Counters.pred_search_hops <-
    t.counters.Counters.pred_search_hops + 1;
  cpu t (cost t).Cost.pred_search_hop_ns

(* Splice context over the committed state for simple operations. *)
and committed_ctx t =
  {
    Splice.peek_block = (fun b -> committed_peek t b);
    get_block =
      (fun b ->
        let r = committed_get t b in
        note_block_simple t r;
        r);
    peek_list = (fun l -> committed_peek_list t l);
    get_list =
      (fun l ->
        let r = committed_get_list t l in
        note_list_simple t r;
        r);
    on_pred_hop = pred_hop t;
  }

(* Splice context over the committed state during commit replay: every
   touched record is collected so EndARU can stamp it with the commit
   record's segment. *)
and commit_ctx t collected_b collected_l =
  {
    Splice.peek_block = (fun b -> committed_peek t b);
    get_block =
      (fun b ->
        let r = committed_get t b in
        r.Record.durable_seq <- max_int;
        collected_b := r :: !collected_b;
        r);
    peek_list = (fun l -> committed_peek_list t l);
    get_list =
      (fun l ->
        let r = committed_get_list t l in
        r.Record.l_durable_seq <- max_int;
        collected_l := r :: !collected_l;
        r);
    on_pred_hop = pred_hop t;
  }

and shadow_ctx t (a : Aru.t) =
  {
    Splice.peek_block = (fun b -> shadow_peek t a b);
    get_block = (fun b -> shadow_get t a b);
    peek_list = (fun l -> shadow_peek_list t a l);
    get_list = (fun l -> shadow_get_list t a l);
    on_pred_hop = pred_hop t;
  }

(* ------------------------------------------------------------------ *)
(* Reading data                                                        *)

and read_phys t (p : Record.phys) =
  let bb = block_bytes t in
  match t.open_seg with
  | Some s when Segment.disk_index s = p.Record.seg_index ->
    (* view into the open buffer — the bytes wrapper copies, the view
       API's contract is "valid until the next mutating operation" *)
    elide t;
    Segment.read_slot s ~slot:p.Record.slot
  | Some _ | None -> (
    let gslot = (p.Record.seg_index * bps t) + p.Record.slot in
    match Lru.find t.cache gslot with
    | Some data ->
      t.counters.Counters.cache_hits <- t.counters.Counters.cache_hits + 1;
      if gslot = t.last_read_gslot + 1 then
        t.seq_read_run <- t.seq_read_run + 1
      else t.seq_read_run <- 0;
      t.last_read_gslot <- gslot;
      elide t;
      data
    | None ->
      t.counters.Counters.cache_misses <- t.counters.Counters.cache_misses + 1;
      if gslot = t.last_read_gslot + 1 then
        t.seq_read_run <- t.seq_read_run + 1
      else t.seq_read_run <- 0;
      t.last_read_gslot <- gslot;
      (* prefetch only on an established sequential run: a lone +1
         coincidence (adjacent meta blocks) must not drag in 0.5 MB *)
      let sequential = t.seq_read_run >= 3 in
      if t.config.Config.readahead && sequential then begin
        (* fetch the whole segment in one request (paper §2: segments
           are the unit of disk transfer); the image is a fresh buffer,
           so the cache can alias its slots — but only the ones whose
           CRC still matches, keeping the cache free of media rot *)
        let image =
          Disk.read_view t.disk
            ~offset:(Geometry.segment_offset t.geom p.Record.seg_index)
            ~length:t.geom.Geometry.segment_bytes
        in
        t.counters.Counters.readaheads <- t.counters.Counters.readaheads + 1;
        let base = p.Record.seg_index * bps t in
        (match Segment.parse t.geom image with
        | Some parsed ->
          for i = 0 to parsed.Segment.p_slots_used - 1 do
            if Segment.verify_slot t.geom parsed ~slot:i then begin
              elide t;
              Lru.add t.cache (base + i)
                (Segment.unverified_slot t.geom parsed ~slot:i)
            end
          done;
          if not (Segment.verify_slot t.geom parsed ~slot:p.Record.slot) then
            raise
              (Errors.Corruption
                 (Errors.Invalid_checksum
                    { what = "segment slot"; index = p.Record.slot }))
        | None ->
          raise
            (Errors.Corruption
               (Errors.Invalid_checksum
                  { what = "segment"; index = p.Record.seg_index })));
        Blk.sub image (p.Record.slot * bb) bb
      end
      else begin
        let seg_off = Geometry.segment_offset t.geom p.Record.seg_index in
        let data =
          Disk.read_view t.disk
            ~offset:(seg_off + (p.Record.slot * bb))
            ~length:bb
        in
        (* per-slot CRC check against the segment's trailing meta,
           fetched once per segment and memoised *)
        let tail =
          match Hashtbl.find_opt t.meta_cache p.Record.seg_index with
          | Some v -> v
          | None ->
            let tb = Segment.tail_bytes t.geom in
            let v =
              Disk.read_view t.disk
                ~offset:(seg_off + t.geom.Geometry.segment_bytes - tb)
                ~length:tb
            in
            Hashtbl.replace t.meta_cache p.Record.seg_index v;
            v
        in
        (match Segment.tail_slot_crc t.geom ~tail ~slot:p.Record.slot with
        | Some crc when crc = Blk.crc32c data -> ()
        | Some _ ->
          raise
            (Errors.Corruption
               (Errors.Invalid_checksum
                  { what = "segment slot"; index = p.Record.slot }))
        | None ->
          raise
            (Errors.Corruption
               (Errors.Invalid_checksum
                  { what = "segment"; index = p.Record.seg_index })));
        (* the read is a fresh buffer; cache and caller share it *)
        elide t;
        Lru.add t.cache gslot data;
        data
      end)

(* ------------------------------------------------------------------ *)
(* Early-open recovery: finishing the warming replay and rebuilding the
   run-time structures (live index, sealed flags, free queue) that the
   lazy handle could not know yet.  Ends with a forced full checkpoint —
   the only disk writes recovery performs. *)

let finalize_recovery t (restored : Recovery.restored) =
  let report = restored.Recovery.r_report in
  t.next_seq <- restored.Recovery.r_next_seq;
  t.stamp <- restored.Recovery.r_stamp;
  t.next_aru <- restored.Recovery.r_next_aru;
  t.next_gid <- restored.Recovery.r_next_gid;
  t.ckpt_id <- report.Recovery.checkpoint_id;
  (* rebuild segment liveness from the recovered block map; seal
     sequences are unknown after a crash, so they stay 0 — recovered
     segments look maximally old to the cost-benefit policy, which is
     the conservative choice (clean them first) *)
  Block_map.iter t.blocks (fun r ->
      match r.Record.phys with
      | Some p -> live_add t p.Record.seg_index r.Record.id
      | None -> ());
  for i = Disk_layout.log_first t.geom to t.geom.Geometry.num_segments - 1 do
    if live_count t i > 0 then t.sealed.(i) <- true
    else Queue.push i t.free_segs
  done;
  t.counters.Counters.recovery_replayed_segments <-
    report.Recovery.segments_replayed;
  t.counters.Counters.recovery_skipped_segments <-
    report.Recovery.segments_skipped;
  t.counters.Counters.recovery_replay_disk_reads <- report.Recovery.disk_reads;
  (* a fresh full checkpoint makes every unreferenced log segment free;
     it must target the region NOT holding the full base just recovered
     from, or a crash during this write would lose both generations *)
  t.full_region <- report.Recovery.full_region;
  t.full_ckpt_id <- 0;
  checkpoint_internal t ~force_full:true

let complete_recovery t =
  match t.warming with
  | None -> None
  | Some p ->
    t.warming <- None;
    let restored = Recovery.finish p in
    finalize_recovery t restored;
    Some restored.Recovery.r_report

let warm t = if t.warming <> None then ignore (complete_recovery t)

let touch_block t b =
  match t.warming with Some p -> Recovery.touch_block p b | None -> ()

let touch_list t l =
  match t.warming with Some p -> Recovery.touch_list p l | None -> ()

let recovery_pending t =
  match t.warming with Some p -> Recovery.pending_groups p | None -> 0

(* ------------------------------------------------------------------ *)

let require_visible_block t who (r : Record.block) =
  if not (r.Record.alloc && owner_visible t who r.Record.alloc_owner) then
    raise (Errors.Unallocated_block r.Record.id)

let require_visible_list t who (r : Record.list_r) =
  if not (r.Record.exists && owner_visible t who r.Record.l_owner) then
    raise (Errors.Unallocated_list r.Record.lid)

let dispatch t =
  cpu t (cost t).Cost.op_dispatch_ns;
  cpu t (cost t).Cost.record_lookup_ns

(* ------------------------------------------------------------------ *)
(* The LD interface                                                    *)

let begin_aru t =
  dispatch t;
  if t.config.Config.mode = Config.Sequential && t.seq_aru <> None then
    raise Errors.Aru_already_active;
  t.counters.Counters.arus_begun <- t.counters.Counters.arus_begun + 1;
  let id = Types.Aru_id.of_int t.next_aru in
  t.next_aru <- t.next_aru + 1;
  let a = Aru.create id in
  (match t.config.Config.mode with
  | Config.Sequential ->
    t.seq_aru <- Some a;
    cpu t ((cost t).Cost.aru_begin_ns / 2)
  | Config.Concurrent -> cpu t (cost t).Cost.aru_begin_ns);
  Hashtbl.replace t.arus (Types.Aru_id.to_int id) a;
  id

let new_list t ?aru () =
  dispatch t;
  t.counters.Counters.new_lists <- t.counters.Counters.new_lists + 1;
  let who = resolve_who t aru in
  let lid =
    match List_table.alloc_id t.lists with
    | Some l -> l
    | None -> raise Errors.Disk_full
  in
  let stamp = next_stamp t in
  let r = committed_get_list t lid in
  r.Record.exists <- true;
  r.Record.first <- None;
  r.Record.last <- None;
  r.Record.lstamp <- stamp;
  let owner = match who with `In a -> Some a.Aru.id | `Simple -> None in
  r.Record.l_owner <- owner;
  (match who with
  | `In a -> a.Aru.owned_lists <- r :: a.Aru.owned_lists
  | `Simple -> ());
  (* id reuse: as for blocks below, a stale shadow version of [lid]
     held by the allocating ARU (from an in-ARU delete of the previous
     incarnation) would shadow the fresh committed record and make the
     list invisible to its own creator — reset it in place *)
  (match who with
  | `In a when concurrent t -> (
    let anchor = List_table.anchor t.lists lid in
    match fst (Record.find_list ~anchor (Record.Shadow a.Aru.id)) with
    | None -> ()
    | Some sr ->
      sr.Record.exists <- true;
      sr.Record.first <- None;
      sr.Record.last <- None;
      sr.Record.lstamp <- stamp;
      sr.Record.l_owner <- owner;
      sr.Record.l_durable_seq <- max_int)
  | `In _ | `Simple -> ());
  let seq =
    emit_entry t ~stream:Summary.Simple
      (Summary.New_list { list = lid; stamp; owner })
  in
  if concurrent t then set_durable_list r seq;
  lid

let new_block t ?aru ~list ~pred () =
  dispatch t;
  t.counters.Counters.new_blocks <- t.counters.Counters.new_blocks + 1;
  let who = resolve_who t aru in
  (* validate against the view the insertion will run in *)
  let view_list, view_block =
    match (t.config.Config.mode, who) with
    | Config.Concurrent, `In a ->
      ((fun l -> shadow_peek_list t a l), fun b -> shadow_peek t a b)
    | (Config.Concurrent | Config.Sequential), (`Simple | `In _) ->
      ((fun l -> committed_peek_list t l), fun b -> committed_peek t b)
  in
  require_visible_list t who (view_list list);
  (match pred with
  | Summary.Head -> ()
  | Summary.After p ->
    let pr = view_block p in
    require_visible_block t who pr;
    if pr.Record.member_of <> Some list then raise (Errors.Block_not_on_list p));
  let bid =
    match Block_map.alloc_id t.blocks with
    | Some b -> b
    | None -> raise Errors.Disk_full
  in
  let stamp = next_stamp t in
  (* allocation always happens in the committed state (paper §3.3) *)
  let c = committed_get t bid in
  c.Record.alloc <- true;
  c.Record.member_of <- None;
  c.Record.successor <- None;
  c.Record.phys <- None;
  drop_data t c;
  c.Record.stamp <- stamp;
  c.Record.alloc_owner <-
    (match who with `In a -> Some a.Aru.id | `Simple -> None);
  (* id reuse: the allocator only hands out ids that are free in the
     committed state, so a shadow version of [bid] still held by the
     allocating ARU (left by an in-ARU delete of the previous
     incarnation, whose committed record was later scavenged) is
     stale.  Reset it to mirror the fresh committed record — exactly
     what a shadow fault-in would produce — or the validated insertion
     below resolves the dead version and skips. *)
  (match (t.config.Config.mode, who) with
  | Config.Concurrent, `In a -> (
    let anchor = Block_map.anchor t.blocks bid in
    match fst (Record.find_block ~anchor (Record.Shadow a.Aru.id)) with
    | None -> ()
    | Some r ->
      drop_data t r;
      r.Record.alloc <- c.Record.alloc;
      r.Record.member_of <- None;
      r.Record.successor <- None;
      r.Record.phys <- None;
      r.Record.stamp <- c.Record.stamp;
      r.Record.alloc_owner <- c.Record.alloc_owner;
      r.Record.durable_seq <- max_int)
  | (Config.Concurrent | Config.Sequential), (`Simple | `In _) -> ());
  let seq =
    emit_entry t ~stream:Summary.Simple (Summary.Alloc { block = bid; list; stamp })
  in
  if concurrent t then set_durable_block c seq;
  (* insertion: shadow state inside a concurrent ARU, committed state
     otherwise *)
  (match (t.config.Config.mode, who) with
  | Config.Concurrent, `In a ->
    (match Splice.insert (shadow_ctx t a) ~list ~block:bid ~pred with
    | `Applied -> ()
    | `Skipped ->
      Errors.corrupt "new_block: validated insertion was skipped");
    Link_log.add a.Aru.log (Link_log.Insert { list; block = bid; pred });
    t.counters.Counters.link_log_appends <-
      t.counters.Counters.link_log_appends + 1;
    cpu t (cost t).Cost.link_log_append_ns
  | (Config.Concurrent | Config.Sequential), (`Simple | `In _) ->
    (match Splice.insert (committed_ctx t) ~list ~block:bid ~pred with
    | `Applied -> ()
    | `Skipped ->
      Errors.corrupt "new_block: validated insertion was skipped");
    let stream =
      match who with
      | `In a -> Summary.In_aru a.Aru.id (* sequential-mode ARU *)
      | `Simple -> Summary.Simple
    in
    let seq = emit_entry t ~stream (Summary.Link { list; block = bid; pred }) in
    if concurrent t then set_durable_block c seq);
  bid

let write_view t ?aru block data =
  if Blk.length data <> block_bytes t then
    invalid_arg "Lld.write: data must be exactly one block";
  dispatch t;
  t.counters.Counters.writes <- t.counters.Counters.writes + 1;
  let who = resolve_who t aru in
  let stamp = next_stamp t in
  match (t.config.Config.mode, who) with
  | Config.Concurrent, `In a ->
    let peek = shadow_peek t a block in
    require_visible_block t who peek;
    let r = shadow_get t a block in
    (* the one unavoidable copy: the shadow version must outlive the
       caller's buffer, so it moves into an arena slot *)
    set_data t r data;
    cpu t (cost t).Cost.block_copy_ns;
    r.Record.stamp <- stamp
  | (Config.Concurrent | Config.Sequential), (`Simple | `In _) ->
    let peek = committed_peek t block in
    require_visible_block t who peek;
    let stream, allow_cross_scope =
      match who with
      | `In a -> (Summary.In_aru a.Aru.id, false)
      | `Simple -> (Summary.Simple, true)
    in
    (* zero-copy into the open segment: [put_block] blits the caller's
       view straight into the slot *)
    elide t;
    let seq, phys = emit_write t ~allow_cross_scope ~stream ~block ~data ~stamp () in
    let r = committed_get t block in
    if not (concurrent t) then live_add t phys.Record.seg_index block
    else set_durable_block r seq;
    r.Record.phys <- Some phys;
    drop_data t r;
    r.Record.stamp <- stamp

let write t ?aru block data =
  copied t (Bytes.length data);
  write_view t ?aru block (Blk.of_bytes data)

let read_view t ?aru block =
  dispatch t;
  t.counters.Counters.reads <- t.counters.Counters.reads + 1;
  cpu t (cost t).Cost.block_read_cpu_ns;
  let who = resolve_who t aru in
  let r = visible_block t who block in
  require_visible_block t who r;
  match r.Record.data with
  | Some d ->
    elide t;
    d
  | None -> (
    match r.Record.phys with
    | Some p -> read_phys t p
    | None -> Blk.create (block_bytes t))

let read t ?aru block =
  let v = read_view t ?aru block in
  copied t (Blk.length v);
  Blk.to_bytes v

let release_block_id t ~deferred bid =
  match deferred with
  | Some (a : Aru.t) -> a.Aru.freed_blocks <- bid :: a.Aru.freed_blocks
  | None -> Block_map.release_id t.blocks bid

let release_list_id t ~deferred lid =
  match deferred with
  | Some (a : Aru.t) -> a.Aru.freed_lists <- lid :: a.Aru.freed_lists
  | None -> List_table.release_id t.lists lid

let delete_block t ?aru block =
  dispatch t;
  t.counters.Counters.delete_blocks <- t.counters.Counters.delete_blocks + 1;
  let who = resolve_who t aru in
  let stamp = next_stamp t in
  match (t.config.Config.mode, who) with
  | Config.Concurrent, `In a ->
    let peek = shadow_peek t a block in
    require_visible_block t who peek;
    (match peek.Record.member_of with
    | Some l -> (
      match Splice.unlink (shadow_ctx t a) ~list:l ~block with
      | `Applied -> ()
      | `Skipped -> raise (Errors.Block_not_on_list block))
    | None -> ());
    let r = shadow_get t a block in
    r.Record.alloc <- false;
    r.Record.member_of <- None;
    r.Record.successor <- None;
    drop_data t r;
    r.Record.phys <- None;
    r.Record.stamp <- stamp;
    Link_log.add a.Aru.log (Link_log.Delete_block { block });
    t.counters.Counters.link_log_appends <-
      t.counters.Counters.link_log_appends + 1;
    cpu t (cost t).Cost.link_log_append_ns
  | (Config.Concurrent | Config.Sequential), (`Simple | `In _) ->
    let peek = committed_peek t block in
    require_visible_block t who peek;
    let stream =
      match who with
      | `In a -> Summary.In_aru a.Aru.id
      | `Simple -> Summary.Simple
    in
    (match peek.Record.member_of with
    | Some l ->
      (match Splice.unlink (committed_ctx t) ~list:l ~block with
      | `Applied -> ()
      | `Skipped -> raise (Errors.Block_not_on_list block));
      ignore (emit_entry t ~stream (Summary.Unlink { list = l; block }))
    | None -> ());
    let r = committed_get t block in
    (if not (concurrent t) then
       match r.Record.phys with
       | Some _ -> live_remove t block
       | None -> ());
    r.Record.alloc <- false;
    r.Record.member_of <- None;
    r.Record.successor <- None;
    r.Record.phys <- None;
    drop_data t r;
    r.Record.stamp <- stamp;
    r.Record.alloc_owner <- None;
    let seq = emit_entry t ~stream (Summary.Dealloc { block; stamp }) in
    if concurrent t then set_durable_block r seq;
    let deferred = match who with `In a -> Some a | `Simple -> None in
    release_block_id t ~deferred block

let delete_list t ?aru list =
  dispatch t;
  t.counters.Counters.delete_lists <- t.counters.Counters.delete_lists + 1;
  let who = resolve_who t aru in
  match (t.config.Config.mode, who) with
  | Config.Concurrent, `In a ->
    let peek = shadow_peek_list t a list in
    require_visible_list t who peek;
    (* lazily mark the list deleted in the shadow state; its members
       are deallocated when the log replays at commit (this is what
       makes the improved deletion policy cheap, paper §5.3) *)
    let r = shadow_get_list t a list in
    r.Record.exists <- false;
    r.Record.first <- None;
    r.Record.last <- None;
    Link_log.add a.Aru.log (Link_log.Delete_list { list });
    t.counters.Counters.link_log_appends <-
      t.counters.Counters.link_log_appends + 1;
    cpu t (cost t).Cost.link_log_append_ns
  | (Config.Concurrent | Config.Sequential), (`Simple | `In _) ->
    let peek = committed_peek_list t list in
    require_visible_list t who peek;
    let deferred = match who with `In a -> Some a | `Simple -> None in
    (match
       Splice.delete_list (committed_ctx t) ~list ~dealloc:(fun br ->
           (if not (concurrent t) then
              match br.Record.phys with
              | Some _ -> live_remove t br.Record.id
              | None -> ());
           br.Record.phys <- None;
           drop_data t br;
           br.Record.alloc_owner <- None;
           release_block_id t ~deferred br.Record.id)
     with
    | `Applied -> ()
    | `Skipped -> raise (Errors.Unallocated_list list));
    let stream =
      match who with
      | `In a -> Summary.In_aru a.Aru.id
      | `Simple -> Summary.Simple
    in
    ignore (emit_entry t ~stream (Summary.Delete_list { list }));
    release_list_id t ~deferred list

(* ------------------------------------------------------------------ *)
(* Commit and abort                                                    *)

let replay_log_op t (a : Aru.t) ctx op =
  t.counters.Counters.link_log_replays <-
    t.counters.Counters.link_log_replays + 1;
  cpu t (cost t).Cost.link_log_replay_ns;
  let skipped () =
    t.counters.Counters.replay_skips <- t.counters.Counters.replay_skips + 1
  in
  let stream = Summary.In_aru a.Aru.id in
  match op with
  | Link_log.Insert { list; block; pred } -> (
    match Splice.insert ctx ~list ~block ~pred with
    | `Applied -> ignore (emit_entry t ~stream (Summary.Link { list; block; pred }))
    | `Skipped -> skipped ())
  | Link_log.Delete_block { block } ->
    let peek = committed_peek t block in
    if not peek.Record.alloc then skipped ()
    else begin
      (match peek.Record.member_of with
      | Some l -> (
        match Splice.unlink ctx ~list:l ~block with
        | `Applied ->
          ignore (emit_entry t ~stream (Summary.Unlink { list = l; block }))
        | `Skipped -> skipped ())
      | None -> ());
      let r = ctx.Splice.get_block block in
      r.Record.alloc <- false;
      r.Record.member_of <- None;
      r.Record.successor <- None;
      r.Record.phys <- None;
      drop_data t r;
      r.Record.alloc_owner <- None;
      let stamp = next_stamp t in
      r.Record.stamp <- stamp;
      ignore (emit_entry t ~stream (Summary.Dealloc { block; stamp }));
      Block_map.release_id t.blocks block
    end
  | Link_log.Delete_list { list } -> (
    match
      Splice.delete_list ctx ~list ~dealloc:(fun br ->
          br.Record.phys <- None;
          drop_data t br;
          br.Record.alloc_owner <- None;
          Block_map.release_id t.blocks br.Record.id)
    with
    | `Applied ->
      ignore (emit_entry t ~stream (Summary.Delete_list { list }));
      List_table.release_id t.lists list
    | `Skipped -> skipped ())

(* The commit makes this ARU's list allocations ordinary committed
   lists: clear the owner marks so scavengers leave them alone.  Shared
   by every commit path (immediate and group-commit flusher). *)
let clear_owner_marks t (a : Aru.t) aid =
  List.iter
    (fun (r : Record.list_r) ->
      dirty_list t r.Record.lid;
      (match r.Record.l_owner with
      | Some o when Types.Aru_id.equal o aid -> r.Record.l_owner <- None
      | Some _ | None -> ());
      let anchor = List_table.anchor t.lists r.Record.lid in
      (match anchor.Record.l_owner with
      | Some o when Types.Aru_id.equal o aid -> anchor.Record.l_owner <- None
      | Some _ | None -> ());
      (* the replay may have cloned a fresh committed alternative from a
         promoted anchor that still carried the mark; it would restore
         the stale owner at its own promotion unless cleared too *)
      match Record.find_list ~anchor Record.Committed with
      | Some c, _ -> (
        match c.Record.l_owner with
        | Some o when Types.Aru_id.equal o aid -> c.Record.l_owner <- None
        | Some _ | None -> ())
      | None, _ -> ())
    a.Aru.owned_lists

(* Reservation: the whole merge — replayed entries, shadow data and
   the commit record — must land in one segment, or the merge must
   start on a fresh segment it has to itself.  Either way no sealed
   segment can carry this ARU's slot overwrites without its commit
   record, which is what makes cross-scope slot coalescing sound
   (see Segment.scope).  [extra_entry_bytes] widens the margin for the
   group-commit flusher, whose batched commit record grows with the
   sub-batch. *)
let commit_room t (a : Aru.t) ~extra_entry_bytes =
  let data_bound = Aru.shadow_block_count a in
  let entry_bound =
    (32 * (Link_log.length a.Aru.log + data_bound)) + 64 + extra_entry_bytes
  in
  match t.open_seg with
  | Some s -> Segment.has_room s ~data_blocks:data_bound ~entry_bytes:entry_bound
  | None -> true

(* Phases 1–2 of a concurrent commit: replay the list-operation log
   and merge the shadow data versions into the committed state.
   Everything the merge touches is collected with [durable_seq =
   max_int] ("not yet durable"), so a seal between the merge and the
   commit record never promotes half-committed records; the caller
   stamps the collections once the (possibly batched) commit record
   has a segment. *)
let commit_merge ?(cross_scope = true) t (a : Aru.t) aid =
  let collected_b = ref [] in
  let collected_l = ref [] in
  let ctx = commit_ctx t collected_b collected_l in
  (* 1. replay the list-operation log in the committed state,
     generating the summary entries (paper §4) *)
  Obs.timed t.obs Tr.Aru "commit.replay_log"
    ~args:
      [
        ("aru", Tr.I (Types.Aru_id.to_int aid));
        ("ops", Tr.I (Link_log.length a.Aru.log));
      ]
    (fun () -> List.iter (replay_log_op t a ctx) (Link_log.to_list a.Aru.log));
  (* 2. merge shadow data versions into the committed state *)
  Obs.timed t.obs Tr.Aru "commit.merge_shadow"
    ~args:
      [
        ("aru", Tr.I (Types.Aru_id.to_int aid));
        ("shadow_blocks", Tr.I (Aru.shadow_block_count a));
      ]
    (fun () ->
  Aru.iter_shadow_blocks a (fun r ->
      let anchor = Block_map.anchor t.blocks r.Record.id in
      Record.remove_alt_block ~anchor r;
      t.counters.Counters.record_transitions <-
        t.counters.Counters.record_transitions + 1;
      cpu t (cost t).Cost.record_transition_ns;
      (match r.Record.data with
      | Some d when r.Record.alloc ->
        let cnow = committed_peek t r.Record.id in
        (* the shadow version replaces the committed version only if
           it is more recent (paper §3.1) *)
        if cnow.Record.alloc && r.Record.stamp >= cnow.Record.stamp then begin
          let seq, phys =
            emit_write t ~charge_copy:false ~allow_cross_scope:cross_scope
              ~stream:(Summary.In_aru aid) ~block:r.Record.id ~data:d
              ~stamp:r.Record.stamp ()
          in
          ignore seq;
          let c = ctx.Splice.get_block r.Record.id in
          c.Record.phys <- Some phys;
          drop_data t c;
          c.Record.stamp <- r.Record.stamp
        end
        else
          t.counters.Counters.replay_skips <-
            t.counters.Counters.replay_skips + 1
      | Some _ | None -> ());
      (* the shadow buffer was donated to the segment (or superseded):
         its arena slot recycles either way *)
      drop_data t r);
  Aru.iter_shadow_lists a (fun r ->
      let anchor = List_table.anchor t.lists r.Record.lid in
      Record.remove_alt_list ~anchor r;
      t.counters.Counters.record_transitions <-
        t.counters.Counters.record_transitions + 1;
      cpu t (cost t).Cost.record_transition_ns));
  (collected_b, collected_l)

(* Post-record bookkeeping of one committed ARU: everything the commit
   touched becomes durable together with the commit record. *)
let commit_finish t (a : Aru.t) aid ~commit_seq collected_b collected_l =
  Hashtbl.remove t.pending (Types.Aru_id.to_int aid);
  List.iter
    (fun (r : Record.block) -> r.Record.durable_seq <- commit_seq)
    !collected_b;
  List.iter
    (fun (r : Record.list_r) -> r.Record.l_durable_seq <- commit_seq)
    !collected_l;
  clear_owner_marks t a aid;
  Hashtbl.remove t.arus (Types.Aru_id.to_int aid);
  t.counters.Counters.arus_committed <- t.counters.Counters.arus_committed + 1

let end_aru t aid =
  dispatch t;
  if Hashtbl.mem t.commit_set (Types.Aru_id.to_int aid) then
    raise (Errors.Commit_pending aid);
  let a =
    match Hashtbl.find_opt t.arus (Types.Aru_id.to_int aid) with
    | Some a -> a
    | None -> raise (Errors.Unknown_aru aid)
  in
  match t.config.Config.mode with
  | Config.Sequential ->
    (* the old prototype: operations already ran in the single merged
       stream; the commit record makes them atomic *)
    cpu t ((cost t).Cost.aru_commit_ns / 4);
    ignore (emit_entry t ~stream:Summary.Simple (Summary.Commit { aru = aid }));
    Hashtbl.remove t.pending (Types.Aru_id.to_int aid);
    List.iter (Block_map.release_id t.blocks) a.Aru.freed_blocks;
    List.iter (List_table.release_id t.lists) a.Aru.freed_lists;
    t.seq_aru <- None;
    clear_owner_marks t a aid;
    Hashtbl.remove t.arus (Types.Aru_id.to_int aid);
    t.counters.Counters.arus_committed <- t.counters.Counters.arus_committed + 1
  | Config.Concurrent ->
    cpu t (cost t).Cost.aru_commit_ns;
    if not (commit_room t a ~extra_entry_bytes:0) then seal t;
    let collected_b, collected_l = commit_merge t a aid in
    (* 3. the commit record *)
    let commit_seq =
      Obs.timed t.obs Tr.Aru "commit.record"
        ~args:[ ("aru", Tr.I (Types.Aru_id.to_int aid)) ]
        (fun () ->
          emit_entry t ~stream:Summary.Simple (Summary.Commit { aru = aid }))
    in
    (* 4. *)
    commit_finish t a aid ~commit_seq collected_b collected_l

(* A queued commit intent is withdrawn, not rejected: the ARU leaves
   [commit_q] (and its mirrors) and aborts like any other.  The oldest
   remaining intent's enqueue time repairs the window clock. *)
let commit_dequeue t aid =
  let key = Types.Aru_id.to_int aid in
  Hashtbl.remove t.commit_set key;
  Hashtbl.remove t.commit_enq_ns key;
  let q = Queue.create () in
  Queue.iter (fun k -> if k <> key then Queue.push k q) t.commit_q;
  Queue.clear t.commit_q;
  Queue.transfer q t.commit_q;
  (match Queue.peek_opt t.commit_q with
  | Some head -> (
    match Hashtbl.find_opt t.commit_enq_ns head with
    | Some ns -> t.commit_first_ns <- ns
    | None -> ())
  | None -> ());
  t.counters.Counters.commit_queue_aborts <-
    t.counters.Counters.commit_queue_aborts + 1;
  Obs.event t.obs
    ~flow:(Tr.Flow_end, key)
    Tr.Aru "commit"
    [ ("aru", Tr.I key); ("stage", Tr.S "abort") ]

let abort_aru t aid =
  dispatch t;
  if t.config.Config.mode = Config.Sequential then
    invalid_arg "Lld.abort_aru: not supported by the sequential prototype";
  if Hashtbl.mem t.commit_set (Types.Aru_id.to_int aid) then
    commit_dequeue t aid;
  let a =
    match Hashtbl.find_opt t.arus (Types.Aru_id.to_int aid) with
    | Some a -> a
    | None -> raise (Errors.Unknown_aru aid)
  in
  Aru.iter_shadow_blocks a (fun r ->
      let anchor = Block_map.anchor t.blocks r.Record.id in
      Record.remove_alt_block ~anchor r;
      drop_data t r);
  Aru.iter_shadow_lists a (fun r ->
      let anchor = List_table.anchor t.lists r.Record.lid in
      Record.remove_alt_list ~anchor r);
  Hashtbl.remove t.arus (Types.Aru_id.to_int aid);
  t.counters.Counters.arus_aborted <- t.counters.Counters.arus_aborted + 1

(* ------------------------------------------------------------------ *)
(* Group commit (DESIGN.md §5.11).  [submit_commit] queues a commit
   intent instead of paying a seal per ARU; [flush_commits] drains the
   queue in FIFO order, merges every queued ARU into the committed
   state, packs the batch's commit records into one [Commit_group]
   summary entry and pays ONE seal — and therefore one barrier — for
   the whole batch.  With [group_commit_window = 0] (or in sequential
   mode) [submit_commit] degenerates to the immediate [end_aru] path,
   bit-identically. *)

let commit_pending t aid = Hashtbl.mem t.commit_set (Types.Aru_id.to_int aid)
let pending_commits t = Queue.length t.commit_q

let commit_due t =
  (not (Queue.is_empty t.commit_q))
  && (Queue.length t.commit_q >= t.config.Config.group_commit_batch
     || Clock.now_ns t.clock - t.commit_first_ns
        >= t.config.Config.group_commit_window)

let submit_commit t aid =
  if t.config.Config.group_commit_window <= 0 || not (concurrent t) then
    (* degenerate batches of one: the immediate commit path *)
    end_aru t aid
  else begin
    dispatch t;
    let key = Types.Aru_id.to_int aid in
    if Hashtbl.mem t.commit_set key then raise (Errors.Commit_pending aid);
    if not (Hashtbl.mem t.arus key) then raise (Errors.Unknown_aru aid);
    if Queue.is_empty t.commit_q then t.commit_first_ns <- Clock.now_ns t.clock;
    Queue.push key t.commit_q;
    Hashtbl.replace t.commit_set key ();
    Hashtbl.replace t.commit_enq_ns key (Clock.now_ns t.clock);
    t.counters.Counters.commits_submitted <-
      t.counters.Counters.commits_submitted + 1;
    Obs.event t.obs
      ~flow:(Tr.Flow_start, key)
      Tr.Aru "commit"
      [
        ("aru", Tr.I key);
        ("stage", Tr.S "submit");
        ("queued", Tr.I (Queue.length t.commit_q));
      ]
  end

let flush_commits t =
  if Queue.is_empty t.commit_q then 0
  else
    Obs.timed t.obs Tr.Aru "commit.group"
      ~args:[ ("queued", Tr.I (Queue.length t.commit_q)) ]
    @@ fun () ->
    (* sub-batch accumulated in reverse: (aid, aru, blocks, lists,
       merge time — feeds the batch-residency stage histogram) *)
    let subbatch = ref [] in
    let subbatch_n = ref 0 in
    let close_subbatch () =
      match List.rev !subbatch with
      | [] -> ()
      | batch ->
        let arus = List.map (fun (aid, _, _, _, _) -> aid) batch in
        let n = List.length arus in
        (* the batched commit record goes in BEFORE the seal: the
           reservation kept room for it, and the seal's auto-checkpoint
           must already see the batch as committed *)
        let commit_seq =
          Obs.timed t.obs Tr.Aru "commit.record"
            ~args:[ ("batch", Tr.I n) ]
            (fun () ->
              emit_entry t ~stream:Summary.Simple
                (Summary.Commit_group { arus }))
        in
        let record_ns = Clock.now_ns t.clock in
        List.iter
          (fun (aid, a, cb, cl, merge_ns) ->
            commit_finish t a aid ~commit_seq cb cl;
            t.counters.Counters.group_commits <-
              t.counters.Counters.group_commits + 1;
            Obs.observe t.obs "aru.commit.batch_residency"
              (max 0 (record_ns - merge_ns)))
          batch;
        (* one seal makes the whole batch durable *)
        Obs.timed t.obs Tr.Aru "commit.barrier"
          ~args:[ ("batch", Tr.I n) ]
          (fun () -> seal t);
        t.counters.Counters.commit_batches <-
          t.counters.Counters.commit_batches + 1;
        t.counters.Counters.commit_barriers <-
          t.counters.Counters.commit_barriers + 1;
        Obs.observe t.obs "commit.batch_size" n;
        List.iter
          (fun (aid, _, _, _, _) ->
            let key = Types.Aru_id.to_int aid in
            Obs.event t.obs
              ~flow:(Tr.Flow_step, key)
              Tr.Aru "commit"
              [ ("aru", Tr.I key); ("stage", Tr.S "sealed") ])
          batch;
        subbatch := [];
        subbatch_n := 0
    in
    let committed = ref 0 in
    while not (Queue.is_empty t.commit_q) do
      let key = Queue.pop t.commit_q in
      Hashtbl.remove t.commit_set key;
      let enq_ns = Hashtbl.find_opt t.commit_enq_ns key in
      Hashtbl.remove t.commit_enq_ns key;
      match Hashtbl.find_opt t.arus key with
      | None -> () (* unreachable: queued ARUs stay active until drained *)
      | Some a ->
        let aid = Types.Aru_id.of_int key in
        (match enq_ns with
        | Some enq when Obs.recording t.obs ->
          let wait = max 0 (Clock.now_ns t.clock - enq) in
          Obs.observe t.obs "aru.commit.queue_wait" wait;
          Obs.complete t.obs Tr.Aru "commit.queue_wait" ~ts_ns:enq
            ~dur_ns:wait
            [ ("aru", Tr.I key) ];
          Obs.event t.obs
            ~flow:(Tr.Flow_step, key)
            Tr.Aru "commit"
            [ ("aru", Tr.I key); ("stage", Tr.S "batch") ]
        | _ -> ());
        cpu t (cost t).Cost.aru_commit_ns;
        if !subbatch_n >= t.config.Config.group_commit_batch then
          close_subbatch ();
        (* group-record growth: stream byte + op tag + count + one u32
           per ARU already merged, plus this one *)
        let extra = 4 * (!subbatch_n + 2) in
        if not (commit_room t a ~extra_entry_bytes:extra) then begin
          (* no room for this ARU's whole merge: close what we have
             (its record still fits the margin the earlier reservations
             kept), then let the merge start on a fresh segment *)
          close_subbatch ();
          if not (commit_room t a ~extra_entry_bytes:extra) then seal t
        end;
        let merge_ns = Clock.now_ns t.clock in
        let cb, cl = commit_merge t a aid in
        subbatch := (aid, a, cb, cl, merge_ns) :: !subbatch;
        incr subbatch_n;
        incr committed
    done;
    close_subbatch ();
    !committed

(* ------------------------------------------------------------------ *)
(* Two-phase commit across shards (DESIGN.md §5.14).  The sharded
   front-end commits a multi-shard ARU with one [prepare_commit] per
   non-coordinator participant (merge + Prepare record + seal — the
   prepare barrier), then one [decide_commit] on the coordinator (merge
   + Decide record + seal — the transaction's single commit point), then
   lazy [commit_prepared] on each participant (Decide record, no
   barrier: durability rides on the next natural seal, and until then
   recovery resolves the dangling prepare against the coordinator's
   log).  Between prepare and decide the merged records stay at
   durable_seq = max_int, so seals and auto-checkpoints never promote a
   half-decided transaction; checkpoints carry the prepared marks and
   the cleaner pins the prepare segments instead. *)

let note_gid t gid = if gid >= t.next_gid then t.next_gid <- gid + 1

let require_commit_ready t aid =
  if not (concurrent t) then
    invalid_arg "Lld: two-phase commit requires concurrent mode";
  if Hashtbl.mem t.commit_set (Types.Aru_id.to_int aid) then
    raise (Errors.Commit_pending aid);
  if Hashtbl.mem t.prepared_commits (Types.Aru_id.to_int aid) then
    raise (Errors.Commit_pending aid);
  match Hashtbl.find_opt t.arus (Types.Aru_id.to_int aid) with
  | Some a -> a
  | None -> raise (Errors.Unknown_aru aid)

let prepare_commit t aid ~gid ~coordinator =
  dispatch t;
  let a = require_commit_ready t aid in
  cpu t (cost t).Cost.aru_commit_ns;
  note_gid t gid;
  if not (commit_room t a ~extra_entry_bytes:0) then seal t;
  (* [cross_scope:false]: the commit-room argument for cross-scope slot
     coalescing — "no sealed segment carries this ARU's slot overwrites
     without its commit record" — does not hold for a prepare, whose
     decision record lives on the COORDINATOR's log.  If this shard's
     merge reused the slot of a committed version and the transaction
     were then presumed aborted, the dropped In_aru entries would leave
     the committed Write pointing at a slot now holding the aborted
     data.  Fresh slots keep the committed versions intact under
     abort. *)
  let cb, cl = commit_merge ~cross_scope:false t a aid in
  let prepare_seq =
    Obs.timed t.obs Tr.Aru "commit.prepare"
      ~args:[ ("aru", Tr.I (Types.Aru_id.to_int aid)); ("gid", Tr.I gid) ]
      (fun () ->
        emit_entry t ~stream:Summary.Simple
          (Summary.Prepare { aru = aid; gid; coordinator }))
  in
  Hashtbl.replace t.prepared_commits (Types.Aru_id.to_int aid)
    {
      pc_gid = gid;
      pc_coordinator = coordinator;
      pc_seq = prepare_seq;
      pc_blocks = cb;
      pc_lists = cl;
    };
  (* the prepare barrier: this shard's slice (and the promise to honour
     the coordinator's decision) is durable before anyone may decide *)
  seal t;
  t.counters.Counters.prepare_barriers <-
    t.counters.Counters.prepare_barriers + 1

let decide_commit t aid ~gid =
  dispatch t;
  let a = require_commit_ready t aid in
  cpu t (cost t).Cost.aru_commit_ns;
  note_gid t gid;
  if not (commit_room t a ~extra_entry_bytes:0) then seal t;
  let cb, cl = commit_merge t a aid in
  let commit_seq =
    Obs.timed t.obs Tr.Aru "commit.decide"
      ~args:[ ("aru", Tr.I (Types.Aru_id.to_int aid)); ("gid", Tr.I gid) ]
      (fun () ->
        emit_entry t ~stream:Summary.Simple
          (Summary.Decide { aru = aid; gid; committed = true }))
  in
  commit_finish t a aid ~commit_seq cb cl;
  (* the decision barrier: once this seal returns, the transaction is
     committed on every shard regardless of later crashes *)
  seal t;
  t.counters.Counters.cross_shard_commits <-
    t.counters.Counters.cross_shard_commits + 1

let commit_prepared t aid =
  dispatch t;
  let key = Types.Aru_id.to_int aid in
  match Hashtbl.find_opt t.prepared_commits key with
  | None -> raise (Errors.Unknown_aru aid)
  | Some pc ->
    let a =
      match Hashtbl.find_opt t.arus key with
      | Some a -> a
      | None -> raise (Errors.Unknown_aru aid)
    in
    Hashtbl.remove t.prepared_commits key;
    let commit_seq =
      emit_entry t ~stream:Summary.Simple
        (Summary.Decide { aru = aid; gid = pc.pc_gid; committed = true })
    in
    commit_finish t a aid ~commit_seq pc.pc_blocks pc.pc_lists

let abort_prepared t aid =
  let key = Types.Aru_id.to_int aid in
  match Hashtbl.find_opt t.prepared_commits key with
  | None -> raise (Errors.Unknown_aru aid)
  | Some pc ->
    Hashtbl.remove t.prepared_commits key;
    ignore
      (emit_entry t ~stream:Summary.Simple
         (Summary.Decide { aru = aid; gid = pc.pc_gid; committed = false }));
    (* the merge already cloned committed records; drop them so they are
       never stamped durable, then abort the ARU like any other *)
    List.iter
      (fun (r : Record.block) ->
        let anchor = Block_map.anchor t.blocks r.Record.id in
        Record.remove_alt_block ~anchor r)
      !(pc.pc_blocks);
    List.iter
      (fun (r : Record.list_r) ->
        let anchor = List_table.anchor t.lists r.Record.lid in
        Record.remove_alt_list ~anchor r)
      !(pc.pc_lists);
    Hashtbl.remove t.pending key;
    (match Hashtbl.find_opt t.arus key with
    | Some a ->
      clear_owner_marks t a aid;
      Hashtbl.remove t.arus key
    | None -> ());
    t.counters.Counters.arus_aborted <- t.counters.Counters.arus_aborted + 1

let prepared_arus t =
  List.sort Int.compare
    (Hashtbl.fold (fun aru _ acc -> aru :: acc) t.prepared_commits [])

let next_gid t = t.next_gid

(* ------------------------------------------------------------------ *)
(* Observability wrappers.  Each public LD operation is timed on the
   virtual clock into an ["op.<name>"] histogram and recorded as an
   [op] trace span.  With {!Obs.null} attached (the default) a wrapper
   is one field read and a direct call — the cost model never sees it. *)

let begin_aru t =
  Obs.timed t.obs Tr.Op "begin_aru" (fun () ->
      warm t;
      begin_aru t)

let end_aru t aid = Obs.timed t.obs Tr.Op "end_aru" (fun () -> end_aru t aid)

let abort_aru t aid =
  Obs.timed t.obs Tr.Op "abort_aru" (fun () -> abort_aru t aid)

let submit_commit t aid =
  Obs.timed t.obs Tr.Op "submit_commit" (fun () -> submit_commit t aid)

let flush_commits t =
  Obs.timed t.obs Tr.Op "flush_commits" (fun () -> flush_commits t)

let prepare_commit t aid ~gid ~coordinator =
  Obs.timed t.obs Tr.Op "prepare_commit" (fun () ->
      prepare_commit t aid ~gid ~coordinator)

let decide_commit t aid ~gid =
  Obs.timed t.obs Tr.Op "decide_commit" (fun () -> decide_commit t aid ~gid)

let commit_prepared t aid =
  Obs.timed t.obs Tr.Op "commit_prepared" (fun () -> commit_prepared t aid)

let abort_prepared t aid =
  Obs.timed t.obs Tr.Op "abort_prepared" (fun () -> abort_prepared t aid)

let new_list t ?aru () =
  Obs.timed t.obs Tr.Op "new_list" (fun () ->
      warm t;
      new_list t ?aru ())

let new_block t ?aru ~list ~pred () =
  Obs.timed t.obs Tr.Op "new_block" (fun () ->
      warm t;
      new_block t ?aru ~list ~pred ())

let write t ?aru block data =
  Obs.timed t.obs Tr.Op "write" (fun () ->
      warm t;
      write t ?aru block data)

let write_view t ?aru block data =
  Obs.timed t.obs Tr.Op "write" (fun () ->
      warm t;
      write_view t ?aru block data)

let read t ?aru block =
  Obs.timed t.obs Tr.Op "read" (fun () ->
      touch_block t block;
      read t ?aru block)

let read_view t ?aru block =
  Obs.timed t.obs Tr.Op "read" (fun () ->
      touch_block t block;
      read_view t ?aru block)

let delete_block t ?aru block =
  Obs.timed t.obs Tr.Op "delete_block" (fun () ->
      warm t;
      delete_block t ?aru block)

let delete_list t ?aru list =
  Obs.timed t.obs Tr.Op "delete_list" (fun () ->
      warm t;
      delete_list t ?aru list)

let flush t =
  Obs.timed t.obs Tr.Op "flush" (fun () ->
      warm t;
      flush t)

let with_aru t f =
  let aru = begin_aru t in
  match f aru with
  | v ->
    end_aru t aru;
    v
  | exception e ->
    (match t.config.Config.mode with
    | Config.Concurrent -> abort_aru t aru
    | Config.Sequential -> end_aru t aru);
    raise e

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let list_exists t ?aru list =
  touch_list t list;
  let who = resolve_who t aru in
  let r = visible_list t who list in
  r.Record.exists && owner_visible t who r.Record.l_owner

let block_allocated t ?aru block =
  touch_block t block;
  let who = resolve_who t aru in
  if not (Block_map.in_range t.blocks block) then false
  else begin
    let r = visible_block t who block in
    r.Record.alloc && owner_visible t who r.Record.alloc_owner
  end

let block_phys t block =
  touch_block t block;
  if not (Block_map.in_range t.blocks block) then None
  else
    match (Block_map.anchor t.blocks block).Record.phys with
    | Some p -> Some (p.Record.seg_index, p.Record.slot)
    | None -> None

let block_member t ?aru block =
  touch_block t block;
  let who = resolve_who t aru in
  let r = visible_block t who block in
  if r.Record.alloc && owner_visible t who r.Record.alloc_owner then
    r.Record.member_of
  else None

let list_blocks t ?aru list =
  touch_list t list;
  let who = resolve_who t aru in
  let lrec = visible_list t who list in
  require_visible_list t who lrec;
  let rec walk acc = function
    | None -> List.rev acc
    | Some b ->
      let br = visible_block t who b in
      walk (b :: acc) br.Record.successor
  in
  walk [] lrec.Record.first

let lists t =
  warm t;
  let acc = ref [] in
  List_table.iter t.lists (fun anchor ->
      let r =
        if concurrent t then
          match Record.find_list ~anchor Record.Committed with
          | Some r, _ -> r
          | None, _ -> anchor
        else anchor
      in
      if r.Record.exists then acc := r.Record.lid :: !acc);
  List.rev !acc

let aru_active t aid = Hashtbl.mem t.arus (Types.Aru_id.to_int aid)

let active_arus t =
  Hashtbl.fold (fun k _ acc -> Types.Aru_id.of_int k :: acc) t.arus []
  |> List.sort Types.Aru_id.compare

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)

let checkpoint t =
  if t.config.Config.mode = Config.Sequential && t.seq_aru <> None then
    raise Errors.Aru_already_active;
  warm t;
  checkpoint_internal t

let clean t ~target_free =
  warm t;
  clean_internal t ~target_free

(* ------------------------------------------------------------------ *)
(* Scrub: walk the on-disk image, verify every checksum that protects
   live data, and repair what redundancy allows (DESIGN.md §5.13).

   Superblock: a slot that fails its CRC is rewritten from the
   in-memory generation mirror (or synthesised from the checkpoint
   counters — only the epoch matters for the mount gate; the region
   byte is a hint, {!Checkpoint.read_best} stays authoritative).

   Segments: only slots referenced by live persistent blocks are
   checked — reused or torn segments legitimately fail their old CRCs
   and carry no live data.  A bad slot is repaired by {e relocation}:
   the pristine copy still held by the LRU cache (segment seals park
   their blocks there) is rewritten through the ordinary log path, so
   the repair is crash-safe like any other write.  When the cache has
   no copy but only the segment's {e meta} region rotted (the image no
   longer parses), the raw slot bytes are salvaged unverified.  A slot
   whose own CRC fails with no cached copy is lost — reported, never
   silently re-written.  Fully evacuated unparsable segments rejoin the
   free queue behind a forced full checkpoint, exactly like cleaning
   victims. *)

type scrub_report = {
  scrub_segments : int;
  scrub_bad_slots : int;
  scrub_repaired : int;
  scrub_salvaged : int;
  scrub_lost : int;
  scrub_superblock_repaired : int;
}

let pp_scrub_report ppf r =
  Format.fprintf ppf
    "@[<v>segments scanned %d@,\
     bad slots %d (%d repaired, %d salvaged, %d lost)@,\
     superblock slots repaired %d@]"
    r.scrub_segments r.scrub_bad_slots r.scrub_repaired r.scrub_salvaged
    r.scrub_lost r.scrub_superblock_repaired

let scrub t =
  warm t;
  flush t;
  Obs.timed t.obs Tr.Checkpoint "scrub" @@ fun () ->
  (* 1. the generational superblock *)
  let sb_repaired = ref 0 in
  for k = 0 to 1 do
    match Superblock.read_slot t.disk k with
    | Some s -> t.sb_slots.(k) <- Some s
    | None ->
      let replacement =
        match t.sb_slots.(k) with
        | Some _ as s -> s
        | None ->
          let epoch =
            if t.ckpt_id mod 2 = k then t.ckpt_id else t.ckpt_id - 1
          in
          if epoch >= 1 then
            Some { Superblock.epoch; region = t.full_region }
          else None
      in
      (match replacement with
      | Some s ->
        Superblock.write_slot t.disk s;
        t.sb_slots.(k) <- Some s;
        incr sb_repaired
      | None -> ())
  done;
  (* 2. live log segments *)
  let segments = ref 0 in
  let bad = ref 0 in
  let repaired = ref 0 in
  let salvaged = ref 0 in
  let lost = ref 0 in
  let unparsable = ref [] in
  let bb = block_bytes t in
  for idx = Disk_layout.log_first t.geom to t.geom.Geometry.num_segments - 1 do
    if t.sealed.(idx) && live_count t idx > 0 then begin
      incr segments;
      let image =
        Disk.read_view t.disk
          ~offset:(Geometry.segment_offset t.geom idx)
          ~length:t.geom.Geometry.segment_bytes
      in
      let parsed = Segment.parse t.geom image in
      if parsed = None then unparsable := idx :: !unparsable;
      let base = idx * bps t in
      (* relocations below can seal and promote, mutating anchors
         mid-loop: snapshot the live list, re-check each anchor *)
      List.iter
        (fun bi ->
          let bid = Types.Block_id.of_int bi in
          let anchor = Block_map.anchor t.blocks bid in
          match anchor.Record.phys with
          | Some p when p.Record.seg_index = idx ->
            let slot = p.Record.slot in
            let ok =
              match parsed with
              | Some pr -> Segment.verify_slot t.geom pr ~slot
              | None -> false
            in
            if not ok then begin
              incr bad;
              let source =
                match Lru.find t.cache (base + slot) with
                | Some v -> Some (`Cache v)
                | None ->
                  if parsed = None then
                    (* only the meta region is known bad; the slot
                       bytes themselves may well be intact *)
                    Some (`Salvage (Blk.sub image (slot * bb) bb))
                  else None
              in
              match source with
              | Some src ->
                let data = match src with `Cache v | `Salvage v -> v in
                let seq, phys =
                  emit_write t ~allow_cross_scope:true
                    ~stream:Summary.Simple ~block:bid ~data
                    ~stamp:anchor.Record.stamp ()
                in
                (if concurrent t then begin
                   let r = committed_get t bid in
                   r.Record.phys <- Some phys;
                   r.Record.stamp <- anchor.Record.stamp;
                   set_durable_block r seq
                 end
                 else begin
                   live_add t phys.Record.seg_index bid;
                   anchor.Record.phys <- Some phys;
                   dirty_block t bid
                 end);
                (match src with
                | `Cache _ -> incr repaired
                | `Salvage _ -> incr salvaged)
              | None -> incr lost
            end
          | Some _ | None -> ())
        (Live_index.blocks t.live idx)
    end
  done;
  (* 3. make the repairs durable and retire evacuated carcasses *)
  if !repaired + !salvaged > 0 || !unparsable <> [] then begin
    flush t;
    let to_free =
      List.filter
        (fun idx -> t.sealed.(idx) && live_count t idx = 0)
        (List.rev !unparsable)
    in
    checkpoint_internal t ~extra_free:to_free ~force_full:true;
    List.iter
      (fun idx ->
        t.sealed.(idx) <- false;
        cache_invalidate_segment t idx;
        Queue.push idx t.free_segs)
      to_free
  end;
  {
    scrub_segments = !segments;
    scrub_bad_slots = !bad;
    scrub_repaired = !repaired;
    scrub_salvaged = !salvaged;
    scrub_lost = !lost;
    scrub_superblock_repaired = !sb_repaired;
  }

let orphan_blocks t =
  warm t;
  flush t;
  let acc = ref [] in
  Block_map.iter t.blocks (fun anchor ->
      let orphaned =
        anchor.Record.alloc
        && anchor.Record.member_of = None
        && (match anchor.Record.alloc_owner with
           | None -> true
           | Some o -> not (owner_active t o))
      in
      if orphaned then acc := anchor.Record.id :: !acc);
  List.rev !acc

(* Recovery invariant probes (crash-consistency checking).  The committed
   state is inspected through the persistent anchors, exactly like
   [orphan_blocks]/[scavenge]: meaningful right after [recover], before
   any new operations run. *)
let recovery_invariant_errors t =
  warm t;
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let n_arus = Hashtbl.length t.arus in
  if n_arus <> 0 then err "%d ARU(s) active immediately after recovery" n_arus;
  (* walk every committed list, recording which list each block is on *)
  let member = Hashtbl.create 256 in
  List.iter
    (fun l ->
      List.iter
        (fun b ->
          let bi = Types.Block_id.to_int b in
          match Hashtbl.find_opt member bi with
          | Some l0 ->
            err "block %d linked into lists %d and %d" bi
              (Types.List_id.to_int l0) (Types.List_id.to_int l)
          | None -> Hashtbl.replace member bi l)
        (list_blocks t l))
    (lists t);
  Block_map.iter t.blocks (fun anchor ->
      let bi = Types.Block_id.to_int anchor.Record.id in
      if anchor.Record.alloc then begin
        match Hashtbl.find_opt member bi with
        | Some l -> (
          match anchor.Record.member_of with
          | Some l' when Types.List_id.equal l' l -> ()
          | Some l' ->
            err "block %d reached from list %d but member_of says %d" bi
              (Types.List_id.to_int l) (Types.List_id.to_int l')
          | None ->
            err "block %d reached from list %d but member_of says none" bi
              (Types.List_id.to_int l))
        | None ->
          err "leaked allocation: block %d is allocated but on no list%s" bi
            (match anchor.Record.alloc_owner with
            | None -> ""
            | Some o ->
              Printf.sprintf " (allocated by ARU %d)" (Types.Aru_id.to_int o))
      end
      else if Hashtbl.mem member bi then
        err "unallocated block %d is linked into list %d" bi
          (Types.List_id.to_int (Hashtbl.find member bi)));
  List_table.iter t.lists (fun lr ->
      match lr.Record.l_owner with
      | Some o when lr.Record.exists && not (owner_active t o) ->
        err "leaked list: %d still owned by inactive ARU %d"
          (Types.List_id.to_int lr.Record.lid)
          (Types.Aru_id.to_int o)
      | Some _ | None -> ());
  List.rev !errs

let scavenge t =
  warm t;
  flush t;
  let freed = ref 0 in
  (* still-empty lists allocated by an ARU that is no longer active *)
  let dead_lists = ref [] in
  List_table.iter t.lists (fun anchor ->
      match anchor.Record.l_owner with
      | Some o
        when anchor.Record.exists && anchor.Record.first = None
             && not (owner_active t o) ->
        dead_lists := anchor.Record.lid :: !dead_lists
      | Some _ | None -> ());
  List.iter
    (fun lid ->
      delete_list t lid;
      incr freed)
    !dead_lists;
  Block_map.iter t.blocks (fun anchor ->
      let orphaned =
        anchor.Record.alloc
        && anchor.Record.member_of = None
        && (match anchor.Record.alloc_owner with
           | None -> true
           | Some o -> not (owner_active t o))
      in
      if orphaned then begin
        let stamp = next_stamp t in
        let r = committed_get t anchor.Record.id in
        (if not (concurrent t) then
           match r.Record.phys with
           | Some _ -> live_remove t r.Record.id
           | None -> ());
        r.Record.alloc <- false;
        r.Record.member_of <- None;
        r.Record.successor <- None;
        r.Record.phys <- None;
        drop_data t r;
        r.Record.alloc_owner <- None;
        r.Record.stamp <- stamp;
        let seq =
          emit_entry t ~stream:Summary.Simple
            (Summary.Dealloc { block = anchor.Record.id; stamp })
        in
        if concurrent t then set_durable_block r seq;
        Block_map.release_id t.blocks anchor.Record.id;
        incr freed
      end);
  !freed

(* ------------------------------------------------------------------ *)
(* Gauges and observability attachment                                 *)

let open_arus t = Hashtbl.length t.arus
let cache_blocks t = Lru.length t.cache
let cache_capacity t = Lru.capacity t.cache

let sealed_segments t =
  Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 t.sealed

let live_blocks t =
  let total = ref 0 in
  for i = 0 to t.geom.Geometry.num_segments - 1 do
    total := !total + live_count t i
  done;
  !total

let segment_utilization t =
  let acc = ref [] in
  for i = t.geom.Geometry.num_segments - 1 downto 0 do
    if t.sealed.(i) then acc := (i, live_count t i) :: !acc
  done;
  !acc

let shadow_versions t =
  Hashtbl.fold (fun _ a acc -> acc + Aru.shadow_block_count a) t.arus 0

let link_log_entries t =
  Hashtbl.fold (fun _ (a : Aru.t) acc -> acc + Link_log.length a.Aru.log) t.arus 0

let obs t = t.obs

let set_obs t obs =
  t.obs <- obs;
  Disk.set_obs t.disk obs;
  if Obs.active obs then begin
    Obs.register_gauge obs ~name:"free_segments"
      ~help:"segments on the free queue" (fun () -> Queue.length t.free_segs);
    Obs.register_gauge obs ~name:"sealed_segments"
      ~help:"segments written and not yet freed" (fun () -> sealed_segments t);
    Obs.register_gauge obs ~name:"allocated_blocks"
      ~help:"logical blocks currently allocated" (fun () ->
        allocated_blocks t);
    Obs.register_gauge obs ~name:"live_blocks"
      ~help:"persistent block slots referenced by the live index" (fun () ->
        live_blocks t);
    Obs.register_gauge obs ~name:"cache_blocks"
      ~help:"blocks resident in the LRU cache" (fun () -> cache_blocks t);
    Obs.register_gauge obs ~name:"cache_capacity"
      ~help:"LRU cache capacity in blocks" (fun () -> cache_capacity t);
    Obs.register_gauge obs ~name:"open_arus" ~help:"ARUs begun and not yet ended"
      (fun () -> open_arus t);
    Obs.register_gauge obs ~name:"shadow_versions"
      ~help:"shadow block versions held by open ARUs (mesh depth)" (fun () ->
        shadow_versions t);
    Obs.register_gauge obs ~name:"link_log_entries"
      ~help:"buffered list operations across open ARU link logs" (fun () ->
        link_log_entries t);
    Obs.register_gauge obs ~name:"pending_commits"
      ~help:"commit intents waiting in the group-commit queue" (fun () ->
        Queue.length t.commit_q);
    (* every operation counter becomes a registry counter, so the
       OpenMetrics exposition (and forensics bundles) carry them *)
    List.iter
      (fun (name, get, _) ->
        Obs.register_counter obs ~name ~help:"operation counter" (fun () ->
            get t.counters))
      Counters.fields
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let make ~config ~disk ~blocks ~lists ~next_seq ~stamp ~next_aru ~next_gid
    ~ckpt_id =
  let geom = Disk.geometry disk in
  let t =
    {
      config;
      disk;
      geom;
      clock = Disk.clock disk;
      blocks;
      lists;
      committed_blocks = None;
      committed_lists = None;
      arus = Hashtbl.create 16;
      next_aru;
      next_gid;
      prepared_commits = Hashtbl.create 4;
      seq_aru = None;
      stamp;
      open_seg = None;
      next_seq;
      free_segs = Queue.create ();
      sealed = Array.make geom.Geometry.num_segments false;
      seal_seq = Array.make geom.Geometry.num_segments 0;
      victim_flag = Array.make geom.Geometry.num_segments false;
      live =
        Live_index.create ~num_segments:geom.Geometry.num_segments
          ~capacity:(Block_map.capacity blocks);
      cache = Lru.create ~capacity:(max 16 config.Config.cache_blocks);
      arena = Arena.create ~slot_bytes:geom.Geometry.block_bytes ();
      meta_cache = Hashtbl.create 32;
      sb_slots = [| None; None |];
      last_read_gslot = min_int;
      seq_read_run = 0;
      counters = Counters.create ();
      ckpt_id;
      full_region = 1;
      (* so the first full checkpoint targets region 0 *)
      full_ckpt_id = 0;
      dirty_blocks = Hashtbl.create 256;
      dirty_lists = Hashtbl.create 64;
      sealed_since_ckpt = 0;
      pending = Hashtbl.create 16;
      commit_q = Queue.create ();
      commit_set = Hashtbl.create 16;
      commit_enq_ns = Hashtbl.create 16;
      commit_first_ns = 0;
      in_cleaning = false;
      in_checkpoint = false;
      warming = None;
      obs = Obs.null;
    }
  in
  t

let create ?(config = Config.default) ?(obs = Obs.null) disk =
  let obs = Obs.env_default ~clock:(Disk.clock disk) obs in
  let geom = Disk.geometry disk in
  (* a reused disk may hold stale segments with arbitrary sequence
     numbers; start above all of them so recovery never replays relics *)
  let max_stale = ref 0 in
  for i = Disk_layout.log_first geom to geom.Geometry.num_segments - 1 do
    let image =
      Disk.read_view disk
        ~offset:(Geometry.segment_offset geom i)
        ~length:geom.Geometry.segment_bytes
    in
    match Segment.parse geom image with
    | Some p when p.Segment.p_seq > !max_stale -> max_stale := p.Segment.p_seq
    | Some _ | None -> ()
  done;
  let blocks = Block_map.create ~capacity:(Disk_layout.block_capacity geom) in
  let lists = List_table.create ~max_lists:(Disk_layout.max_lists geom) in
  let t =
    make ~config ~disk ~blocks ~lists ~next_seq:(!max_stale + 1) ~stamp:1
      ~next_aru:1 ~next_gid:1 ~ckpt_id:0
  in
  (* the free queue must be populated before the first checkpoint: its
     order is what recovery follows to find the log tail *)
  for i = Disk_layout.log_first geom to geom.Geometry.num_segments - 1 do
    Queue.push i t.free_segs
  done;
  set_obs t obs;
  (* both regions get the empty state (as fulls) so no stale checkpoint
     survives *)
  checkpoint_internal t ~force_full:true;
  checkpoint_internal t ~force_full:true;
  t

let recover ?(config = Config.default) ?(obs = Obs.null) ?decisions disk =
  let obs = Obs.env_default ~clock:(Disk.clock disk) obs in
  Lld_disk.Fault.reset_after_recovery (Disk.fault disk);
  Disk.set_obs disk obs;
  let prepared =
    Recovery.prepare ~obs ~sweep:config.Config.recovery_sweep
      ~parallel:config.Config.recovery_parallel ?decisions disk
  in
  let blocks, lists = Recovery.tables prepared in
  let mirror_superblock t =
    let a, b = Superblock.read_slots disk in
    t.sb_slots.(0) <- a;
    t.sb_slots.(1) <- b;
    if config.Config.scrub_on_mount then ignore (scrub t)
  in
  if config.Config.recovery_early_open then begin
    (* open for reads immediately: blocks/lists recover on demand, the
       first mutating operation (or [complete_recovery]) finishes.  The
       report carries only the parse-phase facts so far. *)
    let report = Recovery.preliminary_report prepared in
    let t =
      make ~config ~disk ~blocks ~lists ~next_seq:0 ~stamp:0 ~next_aru:1
        ~next_gid:1 ~ckpt_id:report.Recovery.checkpoint_id
    in
    t.warming <- Some prepared;
    set_obs t obs;
    mirror_superblock t;
    (t, report)
  end
  else begin
    let restored = Recovery.finish prepared in
    let t =
      make ~config ~disk ~blocks ~lists ~next_seq:restored.Recovery.r_next_seq
        ~stamp:restored.Recovery.r_stamp ~next_aru:restored.Recovery.r_next_aru
        ~next_gid:restored.Recovery.r_next_gid
        ~ckpt_id:restored.Recovery.r_report.Recovery.checkpoint_id
    in
    set_obs t obs;
    finalize_recovery t restored;
    mirror_superblock t;
    (t, restored.Recovery.r_report)
  end
