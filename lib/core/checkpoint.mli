(** Checkpoints of the persistent state.

    A checkpoint bounds recovery: it captures the block-number-map and
    list-table as of a log position, so recovery restores it and replays
    only later segments.  It also enables cleaning — a log segment may
    be reused only once a checkpoint covers its summary (DESIGN.md
    §5.3).

    Checkpoints additionally capture the {e pending} ARU entries: the
    [In_aru] summary entries already emitted (in covered segments) whose
    commit record has not yet been written.  Recovery re-buffers them,
    so an ARU whose commit record lands after the checkpoint still
    commits atomically, and one that never commits is still discarded
    wholesale.

    Checkpoints come in two generations.  A {e full} checkpoint captures
    the complete block map and list table.  A {e delta} captures only
    the entries dirtied since the last full one (plus tombstones for
    entries that disappeared), and names that full's [ckpt_id] as its
    base; deltas are cumulative, so at most one full + one delta are
    ever live.  Two fixed regions at the front of the partition hold
    them: the full stays put while deltas overwrite the other region,
    and a new full takes the delta region over (the old full is the
    fallback while it is being written).  Each chunk carries a checksum,
    so a crash during any checkpoint write leaves the previous
    consistent generation intact, and {!read_best} performs the
    generation selection: newest consistent wins, a torn newest falls
    back. *)

type pending_entry = {
  pe_op : Summary.op;
  pe_seg : int;
      (** disk segment whose summary held the entry ([Write] slots are
          relative to it) *)
}

type block_entry = {
  b_id : int;
  b_member : int option;
  b_succ : int option;
  b_phys : (int * int) option;  (** (segment, slot) *)
  b_stamp : int;
}

type list_entry = {
  l_id : int;
  l_first : int option;
  l_last : int option;
  l_stamp : int;
  l_owner : int option;
      (** allocating ARU if it was still active at checkpoint time *)
}

type kind =
  | Full  (** complete block map + list table *)
  | Delta of { base_id : int }
      (** only entries dirtied since full checkpoint [base_id]
          (cumulative: each delta supersedes the previous one) *)

type snapshot = {
  ckpt_id : int;  (** monotonically increasing across checkpoints *)
  kind : kind;
  covered_seq : int;  (** all segments with seq <= this are captured *)
  next_seq : int;
  stamp : int;
  next_aru : int;
  next_gid : int;
      (** next cross-shard transaction id this shard will hand out or
          witness; persisting the watermark keeps gids globally unique
          across incarnations, so a stale [Decide] record in a
          not-yet-reused segment can never vouch for a new prepare *)
  blocks : block_entry list;  (** allocated blocks only (dirty only in a delta) *)
  lists : list_entry list;  (** existing lists only (dirty only in a delta) *)
  dead_blocks : int list;
      (** delta tombstones: blocks deallocated since the base full *)
  dead_lists : int list;
      (** delta tombstones: lists deleted since the base full *)
  pending : (int * pending_entry list) list;
      (** ARU id -> its buffered entries, in emission order *)
  free_order : int list;
      (** disk segment indices in the exact order the log will use them
          next; recovery reads only these (in order) to find the log
          tail instead of scanning the whole partition *)
  prepared : (int * int * int) list;
      (** [(aru, gid, coordinator)] for every ARU prepared under
          two-phase commit and not yet decided: a checkpoint may land
          between a shard's [Prepare] record and its (lazy) [Decide], so
          prepared status must survive the covered segments' retirement.
          The ARU's entries stay in [pending]; recovery resolves these
          against the coordinator shard's decisions (DESIGN.md §5.14). *)
}

val empty : snapshot
(** The snapshot written by [mkfs]: [ckpt_id = 1], nothing allocated. *)

val encode : snapshot -> Lld_util.Blk.t
val decode : Lld_util.Blk.t -> snapshot
(** Raises [Errors.Corrupt] on malformed input. *)

val write : Lld_disk.Disk.t -> region:int -> snapshot -> unit
(** Serialise into the region's segments.  Raises [Errors.Disk_full]
    when the payload exceeds the region (only possible with enormous
    pending-ARU state). *)

val read_region : Lld_disk.Disk.t -> region:int -> snapshot option
(** [None] when the region holds no complete, checksummed checkpoint. *)

val compose : full:snapshot -> delta:snapshot -> snapshot
(** The effective snapshot of a delta over its full base: delta entries
    replace or add base entries, tombstones remove them, scalars come
    from the delta.  Raises [Invalid_argument] when [delta] is not a
    delta against exactly [full]. *)

type best = {
  best_snap : snapshot;
      (** effective (composed when a delta won) snapshot to restore *)
  best_region : int;  (** region of the winning generation *)
  best_full_region : int;
      (** region of the full base the winner depends on (equal to
          [best_region] when a full won) — the next full checkpoint must
          target the {e other} region or a torn write could destroy both
          generations at once *)
}

val select : region0:snapshot option -> region1:snapshot option -> best option
(** Generation selection: every readable full is a candidate, a readable
    delta is a candidate only if its exact base full is also readable;
    the candidate with the highest [ckpt_id] wins.  [None] when neither
    region yields a candidate.  Callers that must survive media errors
    (recovery) read each region themselves and pass [None] for an
    unreadable one. *)

val read_best : Lld_disk.Disk.t -> best option
(** {!select} over {!read_region} of both regions. *)
