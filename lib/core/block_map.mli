(** The block-number-map: one persistent record per logical block
    (paper §2, Figure 3), plus the free-identifier pool.

    The persistent records are the anchors of the same-id chains of
    alternative versions. *)

type t

val create : capacity:int -> t
(** All blocks initially free. *)

val capacity : t -> int

val anchor : t -> Types.Block_id.t -> Record.block
(** The persistent record.  Raises [Invalid_argument] for an identifier
    outside the logical capacity. *)

val in_range : t -> Types.Block_id.t -> bool

val alloc_id : t -> Types.Block_id.t option
(** Pop a free identifier (lowest-numbered available); [None] when the
    logical block space is exhausted. *)

val release_id : t -> Types.Block_id.t -> unit
(** Return an identifier to the pool.  Callers guarantee it is not
    allocated in any state; releasing an already-free identifier is a
    no-op. *)

val rebuild_free : t -> unit
(** Reset the pool from the persistent records' allocation flags (used
    after recovery). *)

val iter : t -> (Record.block -> unit) -> unit
(** Over all persistent records, in increasing identifier order. *)

val allocated_count : t -> int
