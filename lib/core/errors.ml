exception Unallocated_block of Types.Block_id.t
exception Unallocated_list of Types.List_id.t
exception Unknown_aru of Types.Aru_id.t
exception Aru_already_active
exception Block_not_on_list of Types.Block_id.t
exception Disk_full
exception Corrupt of string
exception Commit_pending of Types.Aru_id.t

(* Media corruption detected by the checksum layer (segment slot CRCs,
   superblock generations) — distinct from [Corrupt], which means the
   logical structure is wrong.  The notafs-style split: checksum
   failures name what decayed and are the scrubber's work queue. *)
type corruption =
  | Invalid_checksum of { what : string; index : int }
      (* [what] names the structure ("segment slot", "segment meta",
         "superblock slot"), [index] which one *)
  | All_generations_corrupted
      (* both superblock generations failed their checksums on a disk
         that otherwise holds valid checkpoints — mount refuses;
         [lld scrub] can rebuild the slots from the surviving
         checkpoint generation *)

exception Corruption of corruption

let pp_corruption ppf = function
  | Invalid_checksum { what; index } ->
    Format.fprintf ppf "checksum mismatch: %s %d" what index
  | All_generations_corrupted ->
    Format.fprintf ppf "all superblock generations are corrupted"

let pp_exn ppf = function
  | Unallocated_block b ->
    Format.fprintf ppf "block %a is not allocated" Types.Block_id.pp b
  | Unallocated_list l ->
    Format.fprintf ppf "list %a is not allocated" Types.List_id.pp l
  | Unknown_aru a -> Format.fprintf ppf "ARU %a is not active" Types.Aru_id.pp a
  | Aru_already_active ->
    Format.fprintf ppf "an ARU is already active (sequential mode)"
  | Block_not_on_list b ->
    Format.fprintf ppf "block %a is not on the list" Types.Block_id.pp b
  | Disk_full -> Format.fprintf ppf "logical disk is full"
  | Corrupt msg -> Format.fprintf ppf "corrupt on-disk state: %s" msg
  | Commit_pending a ->
    Format.fprintf ppf "ARU %a has a commit pending in the group-commit queue"
      Types.Aru_id.pp a
  | Corruption c -> Format.fprintf ppf "media corruption: %a" pp_corruption c
  | e -> Format.fprintf ppf "%s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Panic hook: a last-chance observer fired just before an invariant
   violation propagates, so forensics (flight-recorder dumps) can run
   while the failing instance is still live.  Hooks are process-global
   and default to empty — codec-level [Corrupt] raises that recovery
   probes and catches on purpose go through plain [raise], not
   [panic]. *)

let panic_hooks : (exn -> unit) list ref = ref []
let on_panic f = panic_hooks := f :: !panic_hooks
let clear_panic_hooks () = panic_hooks := []

let panic e =
  List.iter (fun f -> try f e with _ -> ()) !panic_hooks;
  raise e

let corrupt msg = panic (Corrupt msg)
