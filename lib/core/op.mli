(** First-class Logical Disk operations.

    The differential tester (lib/model) drives the real implementation
    and the executable specification through the same operation values,
    so an observable result can be compared structurally.  Any
    implementation of {!Ld_intf.S} can be driven through {!Make} — the
    stable op-application hook the LD interface signature promises.

    Errors are part of the observable behaviour: {!Make.apply} catches
    the {!Errors} exceptions (and [Invalid_argument]) and returns them
    as [R_error] values rendered with {!Errors.pp_exn}, so a divergence
    in error behaviour is reported like any other result mismatch. *)

type t =
  | Begin_aru
  | End_aru of Types.Aru_id.t
  | Submit_commit of Types.Aru_id.t
      (** queue a commit intent for group commit; a no-op queue on
          implementations without one (they commit immediately) *)
  | Flush_commits  (** drain the commit queue; results in [R_int] *)
  | Abort_aru of Types.Aru_id.t
  | New_list of Types.Aru_id.t option
  | New_block of {
      aru : Types.Aru_id.t option;
      list : Types.List_id.t;
      pred : Summary.pred;
    }
  | Write of { aru : Types.Aru_id.t option; block : Types.Block_id.t; data : bytes }
  | Read of { aru : Types.Aru_id.t option; block : Types.Block_id.t }
  | Delete_block of { aru : Types.Aru_id.t option; block : Types.Block_id.t }
  | Delete_list of { aru : Types.Aru_id.t option; list : Types.List_id.t }
  | List_exists of { aru : Types.Aru_id.t option; list : Types.List_id.t }
  | Block_allocated of { aru : Types.Aru_id.t option; block : Types.Block_id.t }
  | Block_member of { aru : Types.Aru_id.t option; block : Types.Block_id.t }
  | List_blocks of { aru : Types.Aru_id.t option; list : Types.List_id.t }
  | Lists
  | Flush
  | Scavenge

type result =
  | R_unit
  | R_aru of Types.Aru_id.t
  | R_list of Types.List_id.t
  | R_block of Types.Block_id.t
  | R_data of bytes
  | R_bool of bool
  | R_member of Types.List_id.t option
  | R_blocks of Types.Block_id.t list
  | R_lists of Types.List_id.t list
  | R_int of int
  | R_error of string  (** rendered exception (see {!Errors.pp_exn}) *)

val equal_result : result -> result -> bool
val pp : Format.formatter -> t -> unit

val pp_result : Format.formatter -> result -> unit
(** Block payloads are abbreviated to a length + digest prefix. *)

module Make (L : Ld_intf.S) : sig
  val apply : L.t -> t -> result
end
