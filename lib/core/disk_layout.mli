(** Partition layout: superblock, checkpoint regions and the segment
    log.

    The partition starts with the generational superblock segment
    ({!Superblock}: two block-sized slots, epoch + checksum, highest
    valid wins), then two checkpoint regions (written alternately, so
    one valid checkpoint always survives a crash), followed by the log
    segments.  Region size is derived from the geometry alone so that
    the largest possible checkpoint fits; both the writer and recovery
    compute the same layout. *)

val superblock_segment : int
(** Always 0. *)

val region_count : int
(** Always 2. *)

val region_segments : Lld_disk.Geometry.t -> int
(** Segments per checkpoint region. *)

val region_first : Lld_disk.Geometry.t -> region:int -> int
(** First segment index of checkpoint region 0 or 1. *)

val log_first : Lld_disk.Geometry.t -> int
(** Index of the first log segment. *)

val log_count : Lld_disk.Geometry.t -> int

val block_capacity : Lld_disk.Geometry.t -> int
(** Logical blocks the partition exposes (one per log-segment slot). *)

val max_lists : Lld_disk.Geometry.t -> int
(** Cap on simultaneously existing lists (equal to the block capacity:
    every non-empty list holds at least one block). *)
