(** The log-structured Logical Disk with concurrent atomic recovery
    units — the system the paper builds and evaluates.

    The interface is the LD interface of the paper (§2–§3): logical
    blocks organised into ordered lists, with [Read] / [Write] /
    [NewBlock] / [DeleteBlock] / [NewList] / [DeleteList] / [Flush],
    extended with [BeginARU] / [EndARU].  Passing [?aru] to an operation
    executes it inside that atomic recovery unit; omitting it makes the
    operation {e simple} — an ARU by itself.

    Failure semantics: after a crash, {!recover} restores exactly the
    most recent persistent state — every ARU whose commit record reached
    the disk in full, and no operation of any other ARU (except
    identifier allocations, which recovery's consistency sweep releases
    again; paper §3.3).

    Concurrency control is the client's responsibility (paper §3):
    the implementation is single-threaded and ARUs are isolated only in
    the visibility sense of {!Config.visibility}. *)

type t

(** {1 Formatting, mounting, recovering} *)

val create : ?config:Config.t -> ?obs:Lld_obs.Obs.t -> Lld_disk.Disk.t -> t
(** Format the disk (mkfs): writes initial checkpoints and starts an
    empty logical disk.  Previous contents become unreachable.  [obs]
    (default {!Lld_obs.Obs.null}) is attached as by {!set_obs}. *)

val recover :
  ?config:Config.t -> ?obs:Lld_obs.Obs.t ->
  ?decisions:(int -> bool option) -> Lld_disk.Disk.t ->
  t * Recovery.report
(** Mount after a crash (or clean shutdown): restores the most recent
    persistent state, discards uncommitted ARUs, runs the consistency
    sweep, and writes a fresh checkpoint.  Raises [Errors.Corrupt] on an
    unformatted disk.  [obs] is attached before recovery runs, so the
    [recovery] phase spans and the disk reads of the log-tail replay
    appear in the trace.

    With {!Config.t.recovery_early_open} set, [recover] returns as soon
    as the checkpoint is restored and the log tail scanned ({e early
    open}): reads and introspection recover each logical block or list
    on demand, and the first mutating operation — or an explicit
    {!complete_recovery} — finishes the replay, the sweep and the
    post-recovery checkpoint.  The returned report then carries only the
    parse-phase facts (checkpoint identity, segments replayed / skipped
    / invalid, group count); replay and sweep tallies are zero. *)

val complete_recovery : t -> Recovery.report option
(** Finish an early-open recovery now: apply the remaining replay
    groups, run the consistency sweep, rebuild the free-segment queue
    and write the post-recovery checkpoint.  Returns the final report,
    or [None] when recovery was already complete.  Idempotent. *)

val recovery_pending : t -> int
(** Replay groups not yet applied by an early-open recovery (0 once
    warm). *)

(** {1 The LD interface} *)

val begin_aru : t -> Types.Aru_id.t
(** Open an atomic recovery unit.  In sequential mode raises
    [Errors.Aru_already_active] when one is already open. *)

val end_aru : t -> Types.Aru_id.t -> unit
(** Commit: replay the ARU's list-operation log in the committed state,
    merge its shadow data versions, and write the commit record (paper
    §4).  Raises [Errors.Unknown_aru] if not active,
    [Errors.Commit_pending] if queued by {!submit_commit}. *)

val abort_aru : t -> Types.Aru_id.t -> unit
(** Discard the ARU's shadow state.  Blocks and lists it allocated
    remain allocated (paper §3.3) until {!scavenge} or recovery frees
    them.  An ARU queued by {!submit_commit} is dequeued first (its
    commit intent is withdrawn — the batch it would have joined no
    longer contains it) and then aborts normally.  Concurrent mode
    only; raises [Invalid_argument] in sequential mode. *)

val submit_commit : t -> Types.Aru_id.t -> unit
(** Queue a commit intent for group commit (DESIGN.md §5.11): the ARU
    stops accepting operations and commits at the next
    {!flush_commits}, sharing one segment seal — one barrier — with
    every other ARU in the batch.  With
    {!Config.t.group_commit_window}[ = 0], or in sequential mode,
    degenerates to {!end_aru} (bit-identical log).  Raises
    [Errors.Unknown_aru] if not active, [Errors.Commit_pending] if
    already queued. *)

val flush_commits : t -> int
(** Drain the commit queue now, in FIFO order: merge every queued ARU
    into the committed state, write one batched [Commit_group] record
    per sub-batch (a sub-batch closes at
    {!Config.t.group_commit_batch} ARUs or when the open segment runs
    out of reserved room) and seal once per sub-batch.  Returns the
    number of ARUs committed (0 when the queue is empty — no seal is
    paid). *)

val commit_due : t -> bool
(** Whether the commit queue should be flushed now: it is non-empty
    and either {!Config.t.group_commit_batch} intents are queued or
    the oldest has waited {!Config.t.group_commit_window} virtual
    nanoseconds. *)

val commit_pending : t -> Types.Aru_id.t -> bool
(** Whether this ARU sits in the commit queue. *)

val pending_commits : t -> int
(** Commit intents currently queued. *)

(** {1 Two-phase commit across shards}

    The sharded front-end ({!Shard}) commits an ARU that touched
    several shards with one {!prepare_commit} per non-coordinator
    participant, one {!decide_commit} on the coordinator — the
    transaction's single commit point — and one lazy {!commit_prepared}
    per participant afterwards.  [gid] is the cross-shard transaction
    id (unique across incarnations, see {!next_gid}); [coordinator] is
    the coordinator's shard index, recorded in the [Prepare] record so
    recovery knows whose log to consult (DESIGN.md §5.14).  Concurrent
    mode only. *)

val prepare_commit :
  t -> Types.Aru_id.t -> gid:int -> coordinator:int -> unit
(** Phase 1 on a participant: merge the ARU into the committed state,
    write the [Prepare] record and seal (the prepare barrier).  The
    merged records stay un-promoted until the decision.  Raises
    [Errors.Unknown_aru] if not active, [Errors.Commit_pending] if
    queued or already prepared. *)

val decide_commit : t -> Types.Aru_id.t -> gid:int -> unit
(** The decision on the coordinator: merge its own slice, write the
    [Decide] record (commit) and seal.  The coordinator needs no
    prepare — its slice commits or dies with the decision record. *)

val commit_prepared : t -> Types.Aru_id.t -> unit
(** Phase 2 on a participant: write the lazy [Decide] record and stamp
    the prepared merge durable.  No seal — durability rides on the next
    natural barrier; until then recovery resolves the dangling prepare
    against the coordinator's log.  Raises [Errors.Unknown_aru] when the
    ARU is not prepared. *)

val abort_prepared : t -> Types.Aru_id.t -> unit
(** Abort a prepared ARU (coordinator refused or died before deciding,
    observed while still mounted): writes a [Decide] abort record,
    withdraws the merged records and aborts the ARU.  Raises
    [Errors.Unknown_aru] when the ARU is not prepared. *)

val prepared_arus : t -> int list
(** ARU ids currently sitting between [Prepare] and [Decide],
    ascending. *)

val next_gid : t -> int
(** The cross-shard transaction-id watermark (persisted in checkpoints,
    restored past every gid seen in the log). *)

val with_aru : t -> (Types.Aru_id.t -> 'a) -> 'a
(** [with_aru t f] brackets [f] in an ARU: commits on normal return,
    aborts (concurrent mode) and re-raises on exception.  In sequential
    mode an exception still commits the already-applied operations —
    the old prototype cannot undo (one more reason the paper built the
    new one). *)

val new_list : t -> ?aru:Types.Aru_id.t -> unit -> Types.List_id.t
(** Allocate a new, empty list.  Allocation always happens in the
    committed state, even inside an ARU.  Raises [Errors.Disk_full]. *)

val new_block :
  t ->
  ?aru:Types.Aru_id.t ->
  list:Types.List_id.t ->
  pred:Summary.pred ->
  unit ->
  Types.Block_id.t
(** Allocate a block and insert it into [list] at [pred].  The
    allocation is committed immediately; the insertion belongs to the
    ARU's shadow state when [?aru] is given (paper §3.3). *)

val write_view : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> Lld_util.Blk.t -> unit
(** Write one full block of data, zero-copy.  The committed path blits
    the caller's view straight into the open segment's write buffer; the
    shadow path (inside an ARU) copies it into the shadow arena — the
    version must outlive the caller's buffer until commit.  Either way
    the view is not retained: the caller may reuse its buffer as soon as
    the call returns.  Raises [Invalid_argument] on a wrong size,
    [Errors.Unallocated_block] when the block is not allocated in the
    addressed state. *)

val write : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> bytes -> unit
(** [bytes] compatibility wrapper over {!write_view}; counts one block
    of [Counters.t.bytes_copied] for the boundary conversion. *)

val read_view : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> Lld_util.Blk.t
(** Read a block according to the configured visibility (paper §3.3),
    zero-copy: the result aliases the LRU cache, the open segment's
    write buffer, or a shadow arena slot, and is valid only until the
    next mutating operation on [t] (write, commit, flush, clean,
    checkpoint, scrub).  Copy it ({!Lld_util.Blk.to_bytes} or
    [Blk.blit]) to keep it.  Never returns a short view.  A block that
    was never written reads as zeroes.  Raises
    [Errors.Corruption (Invalid_checksum _)] when the on-disk copy fails
    its CRC and no clean copy is cached — run {!scrub}. *)

val read : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> bytes
(** [bytes] compatibility wrapper over {!read_view}: a private copy,
    valid forever; counts one block of [Counters.t.bytes_copied]. *)

val delete_block : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> unit
(** Remove the block from its list (predecessor search!) and deallocate
    it. *)

val delete_list : t -> ?aru:Types.Aru_id.t -> Types.List_id.t -> unit
(** Deallocate every block still on the list (walking from the head — no
    predecessor searches), then the list.  The cheap deletion path of
    paper §5.3. *)

val flush : t -> unit
(** Ensure all committed data and meta-data are persistent: seals and
    writes the open segment (paper §2's [Flush]). *)

(** {1 Introspection} *)

val list_exists : t -> ?aru:Types.Aru_id.t -> Types.List_id.t -> bool
val block_allocated : t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> bool

val block_member :
  t -> ?aru:Types.Aru_id.t -> Types.Block_id.t -> Types.List_id.t option

val block_phys : t -> Types.Block_id.t -> (int * int) option
(** The committed anchor's on-disk location, [(segment, slot)] — [None]
    while the latest version only lives in the open segment's buffer or
    was never written.  Diagnostic (scrub tests, [lld info]). *)

val list_blocks :
  t -> ?aru:Types.Aru_id.t -> Types.List_id.t -> Types.Block_id.t list
(** Members in list order.  Raises [Errors.Unallocated_list]. *)

val lists : t -> Types.List_id.t list
(** All lists existing in the committed state, ascending. *)

val aru_active : t -> Types.Aru_id.t -> bool
val active_arus : t -> Types.Aru_id.t list

val capacity : t -> int
(** Logical blocks this disk exposes. *)

val allocated_blocks : t -> int
val block_bytes : t -> int

(** {1 Maintenance} *)

val checkpoint : t -> unit
(** Flush, then write a checkpoint, bounding recovery replay.  Written
    as an incremental delta while the set of anchors dirtied since the
    last full checkpoint is at most
    {!Config.t.checkpoint_dirty_threshold}, as a full image otherwise
    (see {!Checkpoint}).  Safe at any time in concurrent mode (pending
    ARU entries travel with the checkpoint); in sequential mode raises
    [Errors.Aru_already_active] while an ARU is open — the old prototype
    must quiesce (DESIGN.md §5.3). *)

val clean : t -> target_free:int -> unit
(** Run the segment cleaner until at least [target_free] segments are
    free.  Raises [Errors.Disk_full] when nothing can be reclaimed. *)

type scrub_report = {
  scrub_segments : int;  (** sealed segments holding live data scanned *)
  scrub_bad_slots : int;  (** live block slots that failed their CRC *)
  scrub_repaired : int;  (** rewritten from the pristine cached copy *)
  scrub_salvaged : int;
      (** slot CRC table itself was gone (unparsable segment meta) but
          the raw slot bytes were recovered unverified *)
  scrub_lost : int;  (** bad slot, no redundant copy — data loss *)
  scrub_superblock_repaired : int;  (** superblock slots rewritten *)
}

val pp_scrub_report : Format.formatter -> scrub_report -> unit

val scrub : t -> scrub_report
(** Verify every checksum protecting live data and repair what
    redundancy allows (DESIGN.md §5.13): both superblock generation
    slots (a corrupt one is rewritten from the in-memory mirror, or
    synthesised from the checkpoint counters), and the CRC of every
    sealed-segment slot a live block points at.  Bad slots are relocated
    through the ordinary log path from the LRU cache's pristine copy
    when present; repairs conclude with a forced full checkpoint so the
    healed image is durable before the report returns.  Runs at mount
    when {!Config.t.scrub_on_mount} is set, or on demand ([lld scrub]).
    Unrepairable damage is only {e reported} ([scrub_lost]) — reads of
    those blocks keep raising [Errors.Corruption]. *)

val scavenge : t -> int
(** Free blocks left allocated by aborted ARUs (allocated, on no list,
    owner no longer active); returns how many were freed. *)

val orphan_blocks : t -> Types.Block_id.t list
(** The blocks {!scavenge} would free, without freeing them (flushes
    first so the committed state is authoritative). *)

val recovery_invariant_errors : t -> string list
(** Recovery invariant probe (used by [lib/crashcheck]): structural
    violations of the post-recovery committed state — active ARUs,
    allocated blocks on no list (a failed consistency sweep, paper
    §3.3), blocks linked into two lists or into lists disagreeing with
    their membership record, unallocated blocks still linked, and
    surviving empty lists owned by dead ARUs.  Empty right after a
    correct {!recover}; call before performing new operations. *)

(** {1 Measurement} *)

val counters : t -> Counters.t
val clock : t -> Lld_sim.Clock.t
val config : t -> Config.t

val cost_model : t -> Lld_sim.Cost.t
(** Equal to [(config t).cost]; part of {!Ld_intf.S}. *)

val disk : t -> Lld_disk.Disk.t
val free_segments : t -> int

(** {1 Observability}

    Probes are no-ops against the default {!Lld_obs.Obs.null} handle:
    attaching observability is strictly opt-in and never charges the
    virtual clock, so throughput numbers are identical with and without
    it (the bench driver asserts this). *)

val set_obs : t -> Lld_obs.Obs.t -> unit
(** Attach an observability handle to this instance and its disk:
    every public operation records an ["op.<name>"] latency histogram
    and an [op] trace span, commits record [aru] phase spans, the
    cleaner and checkpointer record [clean]/[checkpoint] spans, and the
    gauges below are registered on the handle's metrics registry. *)

val obs : t -> Lld_obs.Obs.t

val open_arus : t -> int
(** ARUs begun and not yet committed or aborted. *)

val cache_blocks : t -> int
(** Blocks resident in the LRU cache. *)

val cache_capacity : t -> int

val live_blocks : t -> int
(** Persistent block slots referenced by the per-segment live index. *)

val sealed_segments : t -> int
(** Segments written and not yet freed. *)

val segment_utilization : t -> (int * int) list
(** [(segment, live blocks)] for every sealed segment, ascending. *)

val shadow_versions : t -> int
(** Shadow block versions held by open ARUs (the mesh depth). *)

val link_log_entries : t -> int
(** Buffered list operations across all open ARU link logs. *)
