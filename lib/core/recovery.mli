(** Crash recovery: REDO-only replay of the log tail over the newest
    consistent checkpoint generation (paper §3.3, DESIGN.md §5.10).

    Recovery runs in phases:

    + {e checkpoint restore} — {!Checkpoint.select} picks the newest
      consistent generation (a full, or a delta composed over its full
      base; a torn newest falls back), and the block-number map / list
      table are rebuilt from it.  A region that raises a media error is
      treated as empty.
    + {e tail scan} — segments sealed after the checkpoint are read
      along the checkpoint's recorded free order until the sequence
      numbers stop being contiguous (a torn or unwritten segment ends
      the stream).  Everything at or below [covered_seq] is {e skipped}
      — restart cost is proportional to the work since the last
      checkpoint, not to the log length.
    + {e partition} — the tail's summary entries are split into
      dependency-independent groups (union-find over the block, list and
      ARU identifiers each entry names, plus the relations the
      checkpoint itself carries), so replay order only matters within a
      group.  [Simple] entries apply at their position; [In_aru] entries
      are buffered per ARU and applied only when that ARU's commit
      record is reached — ARUs whose commit record never reached disk
      are discarded wholesale.
    + {e apply} — each group replays its entries in log order.  Groups
      touch disjoint records and read nothing from disk, so independent
      groups run on OCaml 5 domains when [parallel] is on; results and
      virtual-clock costs are identical to the sequential fallback.
    + {e sweep} — the consistency sweep frees blocks that are allocated
      but on no list — the remains of allocations performed inside ARUs
      that never committed (paper §3.3).

    The lazy handle ({!prepare} / {!touch_block} / {!touch_list} /
    {!finish}) additionally supports {e early open}: reads can be served
    as soon as {!prepare} returns, recovering a logical block or list on
    demand the first time it is touched; {!finish} completes the replay
    and the global sweep.  {!run} is the eager composition of the two. *)

type report = {
  checkpoint_id : int;
  checkpoint_region : int;
      (** region of the generation restored (the delta's region when a
          delta won) *)
  full_region : int;
      (** region of the full base that generation rests on; the next
          full checkpoint must target the {e other} region *)
  superblock_epoch : int;
      (** the newest valid superblock generation found at mount; a
          single corrupted slot is tolerated (the survivor carries the
          epoch and [lld scrub] rewrites the bad one), both slots
          invalid on a disk whose checkpoints still parse raises
          [Errors.Corruption All_generations_corrupted] *)
  covered_seq : int;  (** log position the checkpoint captured *)
  segments_replayed : int;
  segments_skipped : int;
      (** segments the checkpoint made it unnecessary to read
          (= [covered_seq]: every sealed segment at or below it) *)
  replay_groups : int;
      (** dependency-independent replay partitions in the tail *)
  parallel_replay : bool;  (** whether the apply phase used domains *)
  invalid_segments : int;  (** torn, unreadable, or stale *)
  entries_applied : int;
  arus_committed : int;  (** from buffered entries (incl. checkpoint-pending) *)
  arus_discarded : int;
  entries_discarded : int;
  replay_skips : int;  (** conflicting merge operations skipped, see {!Splice} *)
  blocks_scavenged : int;
  lists_scavenged : int;
      (** still-empty lists of ARUs that never committed *)
  disk_reads : int;
      (** [Disk.read] calls the tail scan issued: physically contiguous
          runs of the checkpoint's free order are fetched in one batched
          read each, so this is at most — and for a contiguous tail far
          below — [segments_replayed + 1] *)
  prepares_committed : int;
      (** dangling two-phase-commit prepares resolved as committed via
          the [decisions] lookup (a participant crash after the
          coordinator's decision but before the lazy [Decide]) *)
  prepares_aborted : int;
      (** dangling prepares resolved as aborted — no reachable commit
          decision, so presumed abort (DESIGN.md §5.14) *)
}

val pp_report : Format.formatter -> report -> unit

type restored = {
  r_blocks : Block_map.t;
  r_lists : List_table.t;
  r_next_seq : int;  (** sequence number for the next segment *)
  r_stamp : int;  (** operation timestamp to resume from *)
  r_next_aru : int;
  r_next_gid : int;
      (** cross-shard transaction-id watermark: max of the checkpoint's
          [next_gid] and every gid seen in the replayed tail, plus one *)
  r_report : report;
}

type pending
(** A recovery in progress: checkpoint restored, log tail scanned and
    partitioned, but not necessarily applied yet. *)

val prepare :
  ?obs:Lld_obs.Obs.t -> ?sweep:bool -> ?parallel:bool ->
  ?decisions:(int -> bool option) ->
  Lld_disk.Disk.t -> pending
(** Phases 1–3 (restore, tail scan, partition).  This is the only part
    of recovery that reads the disk; its virtual-clock cost is identical
    whether the rest happens eagerly, lazily or in parallel.  Raises
    [Errors.Corrupt] when nothing on the disk parses (never formatted),
    and [Errors.Corruption All_generations_corrupted] when the
    superblock and the checkpoint regions contradict each other — a
    formatted image whose generation pointers (or both checkpoint
    generations) were destroyed.  [sweep] (default [true])
    enables the consistency sweep; see {!Config.t.recovery_sweep} for
    the test-only reason to disable it.  [decisions] resolves an ARU
    left {e prepared} under two-phase commit with no [Decide] record in
    this log: [Some true] commits it, anything else aborts it (presumed
    abort).  The sharded front-end passes the union of every shard's
    {!scan_decisions}; the default resolves nothing, which is correct
    for a standalone disk.  [obs] (default {!Lld_obs.Obs.null}) records
    the [recovery] phase spans — [checkpoint_restore], [replay],
    [partition], [apply], [resolve_prepared], [sweep] — and their
    latency histograms. *)

val touch_block : pending -> Types.Block_id.t -> unit
(** Recover one logical block on demand: apply the replay group that
    owns it (if not yet applied) and sweep just that block.  Because a
    block's record is only ever mutated by its own group, the result is
    exactly the block's post-{!finish} state.  Out-of-range ids are
    ignored. *)

val touch_list : pending -> Types.List_id.t -> unit
(** Same, for a list (sweeping frees it if its owning ARU never
    committed and it is still empty). *)

val tables : pending -> Block_map.t * List_table.t
(** The tables being recovered — valid for reads of identifiers already
    touched (and for everything once {!finish} ran). *)

val pending_groups : pending -> int
(** Replay groups not yet applied (0 once {!finish} ran). *)

val preliminary_report : pending -> report
(** The facts known after {!prepare}: checkpoint identity, segments
    replayed / skipped / invalid, group count.  Replay tallies and sweep
    counts are zero until {!finish}. *)

val finish : pending -> restored
(** Apply all remaining groups (on domains when [parallel] — default
    [true] — and the group count warrants it), merge tallies, run the
    global consistency sweep and rebuild the free pools.  Identifiers
    already swept on demand are no-ops here, so the report's totals
    match an eager recovery exactly.  Idempotent. *)

val run :
  ?obs:Lld_obs.Obs.t -> ?sweep:bool -> ?parallel:bool ->
  ?decisions:(int -> bool option) ->
  Lld_disk.Disk.t -> restored
(** [finish (prepare disk)] — eager recovery. *)

val scan_decisions : Lld_disk.Disk.t -> (int, bool) Hashtbl.t * int
(** Raw scan of every parseable log segment for two-phase-commit
    [Decide] records, regardless of checkpoint coverage: gid -> verdict,
    plus the gid watermark (1 + highest gid seen in any [Prepare] or
    [Decide]).  The sharded front-end runs this over {e all} shards at
    mount and feeds the union to {!prepare}'s [decisions]; the watermark
    keeps transaction ids unique across incarnations.  Media errors on
    individual segments are tolerated (the segment contributes
    nothing — a torn decision is indistinguishable from an unwritten
    one, and presumed abort makes that safe). *)
