(** Crash recovery: checkpoint restore + segment-summary replay.

    Recovery is always to the most recent {e persistent} version (paper
    §3.1): the best checkpoint is restored, then the summaries of all
    later segments are replayed in log order.  [Simple] entries apply at
    their position; [In_aru] entries are buffered per ARU and applied
    only when that ARU's commit record is reached — ARUs whose commit
    record never reached disk are discarded wholesale.  Replay stops at
    the first gap in the sequence numbers (a torn or unwritten segment),
    preserving the order of the operation stream.

    Afterwards, the consistency sweep frees blocks that are allocated
    but on no list — the remains of allocations performed inside
    ARUs that never committed (paper §3.3). *)

type report = {
  checkpoint_id : int;
  checkpoint_region : int;
      (** which of the two regions held the checkpoint used *)
  covered_seq : int;  (** log position the checkpoint captured *)
  segments_replayed : int;
  invalid_segments : int;  (** torn, unreadable, or stale *)
  entries_applied : int;
  arus_committed : int;  (** from buffered entries (incl. checkpoint-pending) *)
  arus_discarded : int;
  entries_discarded : int;
  replay_skips : int;  (** conflicting merge operations skipped, see {!Splice} *)
  blocks_scavenged : int;
  lists_scavenged : int;
      (** still-empty lists of ARUs that never committed *)
}

val pp_report : Format.formatter -> report -> unit

type restored = {
  r_blocks : Block_map.t;
  r_lists : List_table.t;
  r_next_seq : int;  (** sequence number for the next segment *)
  r_stamp : int;  (** operation timestamp to resume from *)
  r_next_aru : int;
  r_report : report;
}

val run : ?obs:Lld_obs.Obs.t -> ?sweep:bool -> Lld_disk.Disk.t -> restored
(** Raises [Errors.Corrupt] when no valid checkpoint exists (the disk
    was never formatted).  [sweep] (default [true]) runs the consistency
    sweep; see {!Config.t.recovery_sweep} for the test-only reason to
    disable it.  [obs] (default {!Lld_obs.Obs.null}) records the
    [recovery] phase spans — [checkpoint_restore], [replay], [sweep] —
    and their latency histograms. *)
