type t = {
  mutable reads : int;
  mutable writes : int;
  mutable new_blocks : int;
  mutable delete_blocks : int;
  mutable new_lists : int;
  mutable delete_lists : int;
  mutable arus_begun : int;
  mutable arus_committed : int;
  mutable arus_aborted : int;
  mutable record_creates : int;
  mutable record_transitions : int;
  mutable mesh_hops : int;
  mutable pred_search_hops : int;
  mutable summary_entries : int;
  mutable link_log_appends : int;
  mutable link_log_replays : int;
  mutable replay_skips : int;
  mutable segments_written : int;
  mutable segments_cleaned : int;
  mutable blocks_copied_clean : int;
  mutable clean_disk_reads : int;
  mutable clean_cache_hits : int;
  mutable victim_scans : int;
  mutable clean_picks : int;
  mutable live_index_updates : int;
  mutable checkpoints : int;
  mutable commit_batches : int;
  mutable group_commits : int;
  mutable commit_barriers : int;
  mutable commits_submitted : int;
  mutable commit_queue_aborts : int;
  mutable commit_wakeups : int;
  mutable forced_flushes : int;
  mutable recovery_replayed_segments : int;
  mutable recovery_skipped_segments : int;
  mutable recovery_replay_disk_reads : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable readaheads : int;
  mutable flushes : int;
  mutable bytes_copied : int;
  mutable copy_elisions : int;
  mutable cross_shard_commits : int;
  mutable prepare_barriers : int;
}

(* Single source of truth for every field: name, getter, setter.  All
   derived operations (reset / copy / diff / pp / export) walk this
   list, so adding a field only requires extending the record, [create]
   and this list — and the coverage test in [test/test_counters.ml]
   fails if the list and the record ever disagree in length. *)
let fields : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("reads", (fun t -> t.reads), fun t v -> t.reads <- v);
    ("writes", (fun t -> t.writes), fun t v -> t.writes <- v);
    ("new_blocks", (fun t -> t.new_blocks), fun t v -> t.new_blocks <- v);
    ( "delete_blocks",
      (fun t -> t.delete_blocks),
      fun t v -> t.delete_blocks <- v );
    ("new_lists", (fun t -> t.new_lists), fun t v -> t.new_lists <- v);
    ("delete_lists", (fun t -> t.delete_lists), fun t v -> t.delete_lists <- v);
    ("arus_begun", (fun t -> t.arus_begun), fun t v -> t.arus_begun <- v);
    ( "arus_committed",
      (fun t -> t.arus_committed),
      fun t v -> t.arus_committed <- v );
    ("arus_aborted", (fun t -> t.arus_aborted), fun t v -> t.arus_aborted <- v);
    ( "record_creates",
      (fun t -> t.record_creates),
      fun t v -> t.record_creates <- v );
    ( "record_transitions",
      (fun t -> t.record_transitions),
      fun t v -> t.record_transitions <- v );
    ("mesh_hops", (fun t -> t.mesh_hops), fun t v -> t.mesh_hops <- v);
    ( "pred_search_hops",
      (fun t -> t.pred_search_hops),
      fun t v -> t.pred_search_hops <- v );
    ( "summary_entries",
      (fun t -> t.summary_entries),
      fun t v -> t.summary_entries <- v );
    ( "link_log_appends",
      (fun t -> t.link_log_appends),
      fun t v -> t.link_log_appends <- v );
    ( "link_log_replays",
      (fun t -> t.link_log_replays),
      fun t v -> t.link_log_replays <- v );
    ("replay_skips", (fun t -> t.replay_skips), fun t v -> t.replay_skips <- v);
    ( "segments_written",
      (fun t -> t.segments_written),
      fun t v -> t.segments_written <- v );
    ( "segments_cleaned",
      (fun t -> t.segments_cleaned),
      fun t v -> t.segments_cleaned <- v );
    ( "blocks_copied_clean",
      (fun t -> t.blocks_copied_clean),
      fun t v -> t.blocks_copied_clean <- v );
    ( "clean_disk_reads",
      (fun t -> t.clean_disk_reads),
      fun t v -> t.clean_disk_reads <- v );
    ( "clean_cache_hits",
      (fun t -> t.clean_cache_hits),
      fun t v -> t.clean_cache_hits <- v );
    ("victim_scans", (fun t -> t.victim_scans), fun t v -> t.victim_scans <- v);
    ("clean_picks", (fun t -> t.clean_picks), fun t v -> t.clean_picks <- v);
    ( "live_index_updates",
      (fun t -> t.live_index_updates),
      fun t v -> t.live_index_updates <- v );
    ("checkpoints", (fun t -> t.checkpoints), fun t v -> t.checkpoints <- v);
    ( "commit_batches",
      (fun t -> t.commit_batches),
      fun t v -> t.commit_batches <- v );
    ( "group_commits",
      (fun t -> t.group_commits),
      fun t v -> t.group_commits <- v );
    ( "commit_barriers",
      (fun t -> t.commit_barriers),
      fun t v -> t.commit_barriers <- v );
    ( "commits_submitted",
      (fun t -> t.commits_submitted),
      fun t v -> t.commits_submitted <- v );
    ( "commit_queue_aborts",
      (fun t -> t.commit_queue_aborts),
      fun t v -> t.commit_queue_aborts <- v );
    ( "commit_wakeups",
      (fun t -> t.commit_wakeups),
      fun t v -> t.commit_wakeups <- v );
    ( "forced_flushes",
      (fun t -> t.forced_flushes),
      fun t v -> t.forced_flushes <- v );
    ( "recovery_replayed_segments",
      (fun t -> t.recovery_replayed_segments),
      fun t v -> t.recovery_replayed_segments <- v );
    ( "recovery_skipped_segments",
      (fun t -> t.recovery_skipped_segments),
      fun t v -> t.recovery_skipped_segments <- v );
    ( "recovery_replay_disk_reads",
      (fun t -> t.recovery_replay_disk_reads),
      fun t v -> t.recovery_replay_disk_reads <- v );
    ("cache_hits", (fun t -> t.cache_hits), fun t v -> t.cache_hits <- v);
    ("cache_misses", (fun t -> t.cache_misses), fun t v -> t.cache_misses <- v);
    ("readaheads", (fun t -> t.readaheads), fun t v -> t.readaheads <- v);
    ("flushes", (fun t -> t.flushes), fun t v -> t.flushes <- v);
    ("bytes_copied", (fun t -> t.bytes_copied), fun t v -> t.bytes_copied <- v);
    ( "copy_elisions",
      (fun t -> t.copy_elisions),
      fun t v -> t.copy_elisions <- v );
    ( "cross_shard_commits",
      (fun t -> t.cross_shard_commits),
      fun t v -> t.cross_shard_commits <- v );
    ( "prepare_barriers",
      (fun t -> t.prepare_barriers),
      fun t v -> t.prepare_barriers <- v );
  ]

let create () =
  {
    reads = 0;
    writes = 0;
    new_blocks = 0;
    delete_blocks = 0;
    new_lists = 0;
    delete_lists = 0;
    arus_begun = 0;
    arus_committed = 0;
    arus_aborted = 0;
    record_creates = 0;
    record_transitions = 0;
    mesh_hops = 0;
    pred_search_hops = 0;
    summary_entries = 0;
    link_log_appends = 0;
    link_log_replays = 0;
    replay_skips = 0;
    segments_written = 0;
    segments_cleaned = 0;
    blocks_copied_clean = 0;
    clean_disk_reads = 0;
    clean_cache_hits = 0;
    victim_scans = 0;
    clean_picks = 0;
    live_index_updates = 0;
    checkpoints = 0;
    commit_batches = 0;
    group_commits = 0;
    commit_barriers = 0;
    commits_submitted = 0;
    commit_queue_aborts = 0;
    commit_wakeups = 0;
    forced_flushes = 0;
    recovery_replayed_segments = 0;
    recovery_skipped_segments = 0;
    recovery_replay_disk_reads = 0;
    cache_hits = 0;
    cache_misses = 0;
    readaheads = 0;
    flushes = 0;
    bytes_copied = 0;
    copy_elisions = 0;
    cross_shard_commits = 0;
    prepare_barriers = 0;
  }

let reset t = List.iter (fun (_, _, set) -> set t 0) fields

let copy t =
  let c = create () in
  List.iter (fun (_, get, set) -> set c (get t)) fields;
  c

let to_alist t = List.map (fun (name, get, _) -> (name, get t)) fields

let diff ~base t =
  List.map (fun (name, get, _) -> (name, get t - get base)) fields

let equal a b = List.for_all (fun (_, get, _) -> get a = get b) fields

let to_json_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name v))
    (to_alist t);
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-20s %d" name v)
    (to_alist t);
  Format.fprintf ppf "@]"
