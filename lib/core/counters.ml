type t = {
  mutable reads : int;
  mutable writes : int;
  mutable new_blocks : int;
  mutable delete_blocks : int;
  mutable new_lists : int;
  mutable delete_lists : int;
  mutable arus_begun : int;
  mutable arus_committed : int;
  mutable arus_aborted : int;
  mutable record_creates : int;
  mutable record_transitions : int;
  mutable mesh_hops : int;
  mutable pred_search_hops : int;
  mutable summary_entries : int;
  mutable link_log_appends : int;
  mutable link_log_replays : int;
  mutable replay_skips : int;
  mutable segments_written : int;
  mutable segments_cleaned : int;
  mutable blocks_copied_clean : int;
  mutable clean_disk_reads : int;
  mutable clean_cache_hits : int;
  mutable victim_scans : int;
  mutable clean_picks : int;
  mutable live_index_updates : int;
  mutable checkpoints : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable readaheads : int;
  mutable flushes : int;
}

let create () =
  {
    reads = 0;
    writes = 0;
    new_blocks = 0;
    delete_blocks = 0;
    new_lists = 0;
    delete_lists = 0;
    arus_begun = 0;
    arus_committed = 0;
    arus_aborted = 0;
    record_creates = 0;
    record_transitions = 0;
    mesh_hops = 0;
    pred_search_hops = 0;
    summary_entries = 0;
    link_log_appends = 0;
    link_log_replays = 0;
    replay_skips = 0;
    segments_written = 0;
    segments_cleaned = 0;
    blocks_copied_clean = 0;
    clean_disk_reads = 0;
    clean_cache_hits = 0;
    victim_scans = 0;
    clean_picks = 0;
    live_index_updates = 0;
    checkpoints = 0;
    cache_hits = 0;
    cache_misses = 0;
    readaheads = 0;
    flushes = 0;
  }

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.new_blocks <- 0;
  t.delete_blocks <- 0;
  t.new_lists <- 0;
  t.delete_lists <- 0;
  t.arus_begun <- 0;
  t.arus_committed <- 0;
  t.arus_aborted <- 0;
  t.record_creates <- 0;
  t.record_transitions <- 0;
  t.mesh_hops <- 0;
  t.pred_search_hops <- 0;
  t.summary_entries <- 0;
  t.link_log_appends <- 0;
  t.link_log_replays <- 0;
  t.replay_skips <- 0;
  t.segments_written <- 0;
  t.segments_cleaned <- 0;
  t.blocks_copied_clean <- 0;
  t.clean_disk_reads <- 0;
  t.clean_cache_hits <- 0;
  t.victim_scans <- 0;
  t.clean_picks <- 0;
  t.live_index_updates <- 0;
  t.checkpoints <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.readaheads <- 0;
  t.flushes <- 0

let copy t =
  {
    reads = t.reads;
    writes = t.writes;
    new_blocks = t.new_blocks;
    delete_blocks = t.delete_blocks;
    new_lists = t.new_lists;
    delete_lists = t.delete_lists;
    arus_begun = t.arus_begun;
    arus_committed = t.arus_committed;
    arus_aborted = t.arus_aborted;
    record_creates = t.record_creates;
    record_transitions = t.record_transitions;
    mesh_hops = t.mesh_hops;
    pred_search_hops = t.pred_search_hops;
    summary_entries = t.summary_entries;
    link_log_appends = t.link_log_appends;
    link_log_replays = t.link_log_replays;
    replay_skips = t.replay_skips;
    segments_written = t.segments_written;
    segments_cleaned = t.segments_cleaned;
    blocks_copied_clean = t.blocks_copied_clean;
    clean_disk_reads = t.clean_disk_reads;
    clean_cache_hits = t.clean_cache_hits;
    victim_scans = t.victim_scans;
    clean_picks = t.clean_picks;
    live_index_updates = t.live_index_updates;
    checkpoints = t.checkpoints;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    readaheads = t.readaheads;
    flushes = t.flushes;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>reads %d, writes %d, new-blocks %d, delete-blocks %d@,\
     new-lists %d, delete-lists %d@,\
     ARUs: begun %d, committed %d, aborted %d@,\
     records: created %d, transitions %d, mesh hops %d, pred-search hops %d@,\
     log: summary entries %d, link-log appends %d, replays %d (skipped %d)@,\
     segments written %d, cleaned %d (blocks copied %d), checkpoints %d@,\
     cleaner: disk reads %d, cache hits %d, victim scans %d, picks %d@,\
     live-index updates %d@,\
     cache: hits %d, misses %d, readaheads %d, flushes %d@]"
    t.reads t.writes t.new_blocks t.delete_blocks t.new_lists t.delete_lists
    t.arus_begun t.arus_committed t.arus_aborted t.record_creates
    t.record_transitions t.mesh_hops t.pred_search_hops t.summary_entries
    t.link_log_appends t.link_log_replays t.replay_skips t.segments_written
    t.segments_cleaned t.blocks_copied_clean t.checkpoints t.clean_disk_reads
    t.clean_cache_hits t.victim_scans t.clean_picks t.live_index_updates
    t.cache_hits t.cache_misses t.readaheads t.flushes
