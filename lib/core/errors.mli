(** Exceptions raised by the logical disk system.

    Client programming errors (operating on identifiers that are not
    allocated, or on a finished ARU) raise; environmental conditions the
    client must handle (a full disk) also raise, with a dedicated
    constructor.  Crash and media failures surface as the
    {!Lld_disk.Fault} exceptions of the underlying device. *)

exception Unallocated_block of Types.Block_id.t
(** The block is not allocated in the state the operation addresses. *)

exception Unallocated_list of Types.List_id.t
exception Unknown_aru of Types.Aru_id.t
(** The ARU identifier does not name an active ARU. *)

exception Aru_already_active
(** Sequential mode only: BeginARU while another ARU is open. *)

exception Block_not_on_list of Types.Block_id.t
(** A list operation named a block that is not a member of the list. *)

exception Disk_full
(** No free segment (after cleaning) or no free logical identifier. *)

exception Corrupt of string
(** Recovery found on-disk state it cannot interpret. *)

(** Media corruption detected by the checksum layer — the notafs-style
    typed family, distinct from {!Corrupt} (wrong logical structure).
    Checksum failures name exactly what decayed; they are the work
    queue of [lld scrub]. *)
type corruption =
  | Invalid_checksum of { what : string; index : int }
      (** [what] names the structure (["segment slot"],
          ["segment meta"], ["superblock slot"]), [index] which one. *)
  | All_generations_corrupted
      (** Both superblock generations failed their checksums on a disk
          that otherwise holds valid checkpoints.  Mount refuses;
          [lld scrub] rebuilds the slots from the surviving checkpoint
          generation. *)

exception Corruption of corruption

val pp_corruption : Format.formatter -> corruption -> unit

exception Commit_pending of Types.Aru_id.t
(** The ARU sits in the group-commit queue ({!Lld.submit_commit}):
    ending or aborting it again is a client error until
    {!Lld.flush_commits} drains the queue. *)

val pp_exn : Format.formatter -> exn -> unit
(** Human-readable rendering of the exceptions above (falls back to
    [Printexc.to_string]). *)

val on_panic : (exn -> unit) -> unit
(** Install a process-global hook fired by {!panic} just before the
    exception propagates.  Hooks run most-recently-installed first;
    exceptions they raise are swallowed.  Intended for forensics
    (dumping the flight recorder while the failing instance is live),
    not for control flow. *)

val clear_panic_hooks : unit -> unit

val panic : exn -> 'a
(** Fire every panic hook with [e], then [raise e]. *)

val corrupt : string -> 'a
(** [panic (Corrupt msg)] — for invariant violations in a live
    instance.  Codec-level probes that raise-and-catch [Corrupt] on
    purpose (e.g. checkpoint generation selection) use plain [raise]
    and never fire the hooks. *)
