(** Concurrent client engine over the group-commit queue.

    The implementation is single-threaded by design (paper §3:
    concurrency control is the client's problem), so "N concurrent
    clients" means N logical request streams multiplexed over one
    {!Lld} instance.  This engine is that multiplexer: an explicit
    run-to-completion event loop — deterministic, no scheduler
    randomness — that steps each client in round-robin order, one
    {!Op} per step, and drains the commit queue whenever a batch is
    due (DESIGN.md §5.11).

    A client is a generator closure: it receives the result of its
    previous operation ([None] on the first step) and returns the next
    operation, or [None] when it is finished.

    When group commit is enabled (concurrent mode and
    {!Config.t.group_commit_window}[ > 0]) a client's [End_aru] is
    translated to [Submit_commit] and the client {e parks} until the
    flusher commits its batch — so client code is written once,
    against the blocking interface, and the engine decides how commits
    are paid for.  Parked clients wake in FIFO submission order, each
    receiving the [R_unit] its commit produced.  When every live
    client is parked the queue is force-flushed (the drain close
    condition); the size and window close conditions are
    {!Lld.commit_due}, polled after every operation.  With the window
    at 0 nothing is translated or queued and the loop degenerates to
    sequential interleaving of immediate commits.

    A parked client whose queued ARU another client aborts
    ({!Lld.abort_aru} dequeues the commit intent) wakes like any other
    resolved commit, receiving [R_unit]: from the waiter's point of
    view its submission completed — as an abort.  The engine polls
    waiters after every [Abort_aru] so such wakes happen promptly.

    When the instance carries a live {!Lld_obs.Obs} handle, the engine
    closes each commit's causality chain (a [Flow_end] on the
    ["commit"] flow at wake) and feeds the ["aru.commit.wake"] and
    per-client ["aru.commit.latency.c<i>"] stage histograms; it also
    maintains the [commit_wakeups] and [forced_flushes] operation
    counters (always, traced or not).

    The loop is a functor, {!Make}, over any {!Ld_intf.S} that also
    exposes the group-commit introspection hooks ({!ENGINE_LD}) — the
    sharded front-end ({!Shard}) instantiates it to multiplex clients
    over S logical disks through one facade.  The toplevel [run] is
    [Make(Lld)]'s, for compatibility. *)

type client = Op.result option -> Op.t option
(** One request stream.  The closure owns its state (typically the ARU
    it is working in, captured mutably). *)

type stats = {
  ops : int;  (** operations applied, including translated submits *)
  commits : int;  (** ARUs committed (immediately or via a batch) *)
  flushes : int;  (** queue drains that committed at least one ARU *)
  forced_flushes : int;
      (** drains forced because every live client was parked *)
  max_batch : int;  (** largest single drain *)
}

module type ENGINE_LD = sig
  include Ld_intf.S

  val config : t -> Config.t
  (** The instance's configuration; the engine reads the group-commit
      window and mode to decide whether to translate [End_aru]. *)

  val commit_due : t -> bool
  (** Whether a queued batch's size or window close condition holds. *)

  val commit_pending : t -> Types.Aru_id.t -> bool
  (** Whether the ARU's commit intent is still queued (so its client
      must stay parked). *)

  val pending_commits : t -> int
  (** Queued commit intents (for the exit-time leftover drain). *)
end
(** What the engine needs from a logical disk: the LD interface plus
    group-commit introspection. *)

module Make (Ld : ENGINE_LD) : sig
  val run : Ld.t -> client list -> stats
end

val run : Lld.t -> client list -> stats
(** Run the clients to completion.  The commit queue is empty when
    [run] returns — trailing intents are force-flushed.  Equivalent to
    [Make(Lld)]'s [run]. *)
