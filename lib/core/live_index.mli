(** Per-segment live-block reverse index.

    Maps each log segment to the set of block identifiers whose
    persistent version lives in it, and each block identifier back to
    its segment.  All operations are O(1) (removal swaps with the last
    element of the segment's vector), so the cleaner can enumerate a
    victim's live blocks in O(live(victim)) instead of scanning the
    whole block map. *)

type t

val create : num_segments:int -> capacity:int -> t
(** [capacity] is the logical block capacity (block ids are
    [0 .. capacity-1]).  All blocks start unindexed. *)

val add : t -> seg:int -> block:int -> unit
(** Index [block] as live in [seg].  If the block was indexed
    elsewhere, it is moved. *)

val remove : t -> block:int -> unit
(** Drop [block] from the index; no-op when it is not indexed. *)

val live : t -> int -> int
(** Number of live blocks in a segment. *)

val seg_of : t -> int -> int option
(** The segment a block id is indexed in, if any. *)

val blocks : t -> int -> int list
(** Snapshot of a segment's live block ids (unspecified order). *)

val clear : t -> unit
