module Codec = Lld_util.Blk
module Blk = Lld_util.Blk
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk

type pending_entry = { pe_op : Summary.op; pe_seg : int }

type block_entry = {
  b_id : int;
  b_member : int option;
  b_succ : int option;
  b_phys : (int * int) option;
  b_stamp : int;
}

type list_entry = {
  l_id : int;
  l_first : int option;
  l_last : int option;
  l_stamp : int;
  l_owner : int option;
}

type kind = Full | Delta of { base_id : int }

type snapshot = {
  ckpt_id : int;
  kind : kind;
  covered_seq : int;
  next_seq : int;
  stamp : int;
  next_aru : int;
  next_gid : int;
  blocks : block_entry list;
  lists : list_entry list;
  dead_blocks : int list;
  dead_lists : int list;
  pending : (int * pending_entry list) list;
  free_order : int list;
  prepared : (int * int * int) list;
}

let empty =
  {
    ckpt_id = 1;
    kind = Full;
    covered_seq = 0;
    next_seq = 1;
    stamp = 1;
    next_aru = 1;
    next_gid = 1;
    blocks = [];
    lists = [];
    dead_blocks = [];
    dead_lists = [];
    pending = [];
    free_order = [];
    prepared = [];
  }

let payload_version = 3

let opt w = function
  | None -> Codec.Writer.u32 w 0
  | Some i -> Codec.Writer.u32 w (i + 1)

let read_opt r =
  match Codec.Reader.u32 r with 0 -> None | n -> Some (n - 1)

let encode snap =
  let w = Codec.Writer.create ~capacity:65536 () in
  let module W = Codec.Writer in
  W.u32 w payload_version;
  (match snap.kind with
  | Full -> W.u8 w 0
  | Delta { base_id } ->
    W.u8 w 1;
    W.u64 w (Int64.of_int base_id));
  W.u64 w (Int64.of_int snap.ckpt_id);
  W.u64 w (Int64.of_int snap.covered_seq);
  W.u64 w (Int64.of_int snap.next_seq);
  W.u64 w (Int64.of_int snap.stamp);
  W.u64 w (Int64.of_int snap.next_aru);
  W.u64 w (Int64.of_int snap.next_gid);
  W.u32 w (List.length snap.blocks);
  List.iter
    (fun b ->
      W.u32 w b.b_id;
      opt w b.b_member;
      opt w b.b_succ;
      (match b.b_phys with
      | None -> W.u8 w 0
      | Some (seg, slot) ->
        W.u8 w 1;
        W.u32 w seg;
        W.u32 w slot);
      W.u64 w (Int64.of_int b.b_stamp))
    snap.blocks;
  W.u32 w (List.length snap.lists);
  List.iter
    (fun l ->
      W.u32 w l.l_id;
      opt w l.l_first;
      opt w l.l_last;
      W.u64 w (Int64.of_int l.l_stamp);
      opt w l.l_owner)
    snap.lists;
  W.u32 w (List.length snap.dead_blocks);
  List.iter (W.u32 w) snap.dead_blocks;
  W.u32 w (List.length snap.dead_lists);
  List.iter (W.u32 w) snap.dead_lists;
  W.u32 w (List.length snap.pending);
  List.iter
    (fun (aru, entries) ->
      W.u32 w aru;
      W.u32 w (List.length entries);
      List.iter
        (fun pe ->
          Summary.encode w
            { Summary.stream = Summary.In_aru (Types.Aru_id.of_int aru);
              op = pe.pe_op };
          W.u32 w pe.pe_seg)
        entries)
    snap.pending;
  W.u32 w (List.length snap.free_order);
  List.iter (W.u32 w) snap.free_order;
  W.u32 w (List.length snap.prepared);
  List.iter
    (fun (aru, gid, coordinator) ->
      W.u32 w aru;
      W.u64 w (Int64.of_int gid);
      W.u16 w coordinator)
    snap.prepared;
  W.contents w

let decode buf =
  let r = Codec.Reader.of_view buf in
  let module R = Codec.Reader in
  try
    let version = R.u32 r in
    if version <> payload_version then
      raise (Errors.Corrupt (Printf.sprintf "checkpoint version %d" version));
    let kind =
      match R.u8 r with
      | 0 -> Full
      | 1 -> Delta { base_id = Int64.to_int (R.u64 r) }
      | n -> raise (Errors.Corrupt (Printf.sprintf "checkpoint kind %d" n))
    in
    let ckpt_id = Int64.to_int (R.u64 r) in
    let covered_seq = Int64.to_int (R.u64 r) in
    let next_seq = Int64.to_int (R.u64 r) in
    let stamp = Int64.to_int (R.u64 r) in
    let next_aru = Int64.to_int (R.u64 r) in
    let next_gid = Int64.to_int (R.u64 r) in
    let nblocks = R.u32 r in
    let blocks =
      List.init nblocks (fun _ ->
          let b_id = R.u32 r in
          let b_member = read_opt r in
          let b_succ = read_opt r in
          let b_phys =
            match R.u8 r with
            | 0 -> None
            | 1 ->
              let seg = R.u32 r in
              let slot = R.u32 r in
              Some (seg, slot)
            | n -> raise (Errors.Corrupt (Printf.sprintf "phys tag %d" n))
          in
          { b_id; b_member; b_succ; b_phys; b_stamp = Int64.to_int (R.u64 r) })
    in
    let nlists = R.u32 r in
    let lists =
      List.init nlists (fun _ ->
          let l_id = R.u32 r in
          let l_first = read_opt r in
          let l_last = read_opt r in
          let l_stamp = Int64.to_int (R.u64 r) in
          { l_id; l_first; l_last; l_stamp; l_owner = read_opt r })
    in
    let ndead_b = R.u32 r in
    let dead_blocks = List.init ndead_b (fun _ -> R.u32 r) in
    let ndead_l = R.u32 r in
    let dead_lists = List.init ndead_l (fun _ -> R.u32 r) in
    let npending = R.u32 r in
    let pending =
      List.init npending (fun _ ->
          let aru = R.u32 r in
          let n = R.u32 r in
          let entries =
            List.init n (fun _ ->
                let entry = Summary.decode r in
                let pe_seg = R.u32 r in
                { pe_op = entry.Summary.op; pe_seg })
          in
          (aru, entries))
    in
    let nfree = R.u32 r in
    let free_order = List.init nfree (fun _ -> R.u32 r) in
    let nprep = R.u32 r in
    let prepared =
      List.init nprep (fun _ ->
          let aru = R.u32 r in
          let gid = Int64.to_int (R.u64 r) in
          let coordinator = R.u16 r in
          (aru, gid, coordinator))
    in
    {
      ckpt_id; kind; covered_seq; next_seq; stamp; next_aru; next_gid; blocks;
      lists; dead_blocks; dead_lists; pending; free_order; prepared;
    }
  with Codec.Truncated -> raise (Errors.Corrupt "truncated checkpoint payload")

(* Chunk format (one chunk per region segment, only the used prefix is
   meaningful): magic u32, ckpt_id u64, chunk_index u32, chunk_count u32,
   payload_len u32 (this chunk), total_len u32, payload, checksum u64 at
   a fixed position right after the payload. *)
let chunk_magic = 0x4c4c4443 (* "LLDC" *)
let chunk_header_bytes = 28
let chunk_trailer_bytes = 8

let chunk_capacity geom =
  geom.Geometry.segment_bytes - chunk_header_bytes - chunk_trailer_bytes

let write disk ~region snap =
  let geom = Disk.geometry disk in
  let payload = encode snap in
  let total_len = Blk.length payload in
  let cap = chunk_capacity geom in
  let chunk_count = max 1 ((total_len + cap - 1) / cap) in
  if chunk_count > Disk_layout.region_segments geom then raise Errors.Disk_full;
  let first = Disk_layout.region_first geom ~region in
  let image = Blk.create geom.Geometry.segment_bytes in
  for i = 0 to chunk_count - 1 do
    let off = i * cap in
    let len = min cap (total_len - off) in
    if i > 0 then Blk.fill image '\000';
    Blk.set_u32 image 0 chunk_magic;
    Blk.set_u32 image 4 (snap.ckpt_id land 0xffffffff);
    Blk.set_u32 image 8 (snap.ckpt_id lsr 32);
    Blk.set_u32 image 12 i;
    Blk.set_u32 image 16 chunk_count;
    Blk.set_u32 image 20 len;
    Blk.set_u32 image 24 total_len;
    Blk.blit payload off image chunk_header_bytes len;
    (* hash64 trailer kept bit-identical to the pre-view format *)
    let sum = Blk.hash64 ~pos:0 ~len:(chunk_header_bytes + len) image in
    let cksum_off = chunk_header_bytes + len in
    Blk.set_u64 image cksum_off sum;
    Disk.write_view disk ~offset:(Geometry.segment_offset geom (first + i)) image
  done;
  (* The checkpoint must be durable before the caller flips its current
     region / resumes logging: recovery trusts the highest complete
     ckpt_id it can read (paper §4 ordering). *)
  Disk.barrier disk

let read_chunk geom image =
  if Blk.get_u32 image 0 <> chunk_magic then None
  else begin
    let ckpt_id = Blk.get_u32 image 4 lor (Blk.get_u32 image 8 lsl 32) in
    let index = Blk.get_u32 image 12 in
    let count = Blk.get_u32 image 16 in
    let len = Blk.get_u32 image 20 in
    let total_len = Blk.get_u32 image 24 in
    if len > chunk_capacity geom || count > Disk_layout.region_segments geom then
      None
    else begin
      let cksum_off = chunk_header_bytes + len in
      let stored = Blk.get_u64 image cksum_off in
      if not (Int64.equal stored (Blk.hash64 ~pos:0 ~len:cksum_off image)) then
        None
      else
        Some (ckpt_id, index, count, total_len, Blk.sub image chunk_header_bytes len)
    end
  end

let read_region disk ~region =
  let geom = Disk.geometry disk in
  let first = Disk_layout.region_first geom ~region in
  let read_seg i =
    Disk.read_view disk
      ~offset:(Geometry.segment_offset geom (first + i))
      ~length:geom.Geometry.segment_bytes
  in
  match read_chunk geom (read_seg 0) with
  | None -> None
  | Some (ckpt_id, 0, count, total_len, chunk0) ->
    let rec gather i acc =
      if i = count then Some (List.rev acc)
      else
        match read_chunk geom (read_seg i) with
        | Some (id, idx, cnt, tot, payload)
          when id = ckpt_id && idx = i && cnt = count && tot = total_len ->
          gather (i + 1) (payload :: acc)
        | Some _ | None -> None
    in
    (match gather 1 [ chunk0 ] with
    | None -> None
    | Some chunks ->
      let combined = List.fold_left (fun n c -> n + Blk.length c) 0 chunks in
      if combined <> total_len then None
      else begin
        (* chunk payloads are views into their segment reads; stitch
           them into one payload view for the decoder *)
        let payload = Blk.create total_len in
        let _ =
          List.fold_left
            (fun off c ->
              Blk.blit c 0 payload off (Blk.length c);
              off + Blk.length c)
            0 chunks
        in
        match decode payload with
        | snap -> Some snap
        | exception Errors.Corrupt _ -> None
      end)
  | Some (_, _, _, _, _) -> None

(* Overlay a cumulative delta on its full base: delta entries replace
   (or add) base entries, tombstones remove them, and every scalar —
   position, pending ARU state, free order — comes from the delta, which
   is the newer generation. *)
let compose ~full ~delta =
  let base_id =
    match delta.kind with
    | Delta { base_id } -> base_id
    | Full -> invalid_arg "Checkpoint.compose: delta is a full checkpoint"
  in
  if full.kind <> Full || full.ckpt_id <> base_id then
    invalid_arg "Checkpoint.compose: base mismatch";
  let dead_b = Hashtbl.create 64 and dead_l = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace dead_b i ()) delta.dead_blocks;
  List.iter (fun (b : block_entry) -> Hashtbl.replace dead_b b.b_id ())
    delta.blocks;
  List.iter (fun i -> Hashtbl.replace dead_l i ()) delta.dead_lists;
  List.iter (fun (l : list_entry) -> Hashtbl.replace dead_l l.l_id ())
    delta.lists;
  let blocks =
    List.filter (fun (b : block_entry) -> not (Hashtbl.mem dead_b b.b_id))
      full.blocks
    @ delta.blocks
  in
  let lists =
    List.filter (fun (l : list_entry) -> not (Hashtbl.mem dead_l l.l_id))
      full.lists
    @ delta.lists
  in
  {
    delta with
    blocks = List.sort (fun a b -> Int.compare a.b_id b.b_id) blocks;
    lists = List.sort (fun a b -> Int.compare a.l_id b.l_id) lists;
    dead_blocks = [];
    dead_lists = [];
  }

type best = {
  best_snap : snapshot;
      (* the effective (composed) snapshot; [kind] still names the
         newest generation it came from *)
  best_region : int;
  best_full_region : int;
}

(* Generation selection: a full checkpoint stands alone; a delta is
   consistent only when the other region still holds the exact full it
   was taken against.  Among consistent generations the highest ckpt_id
   wins — so a torn newest write (delta or full) falls back to the
   previous generation, and a delta orphaned by a later full (never
   produced by the writer, but conceivable after media errors) is
   ignored rather than composed against the wrong base. *)
let select ~region0 ~region1 =
  let r0 = region0 and r1 = region1 in
  let candidate region snap other =
    match snap with
    | None -> None
    | Some s -> (
      match s.kind with
      | Full ->
        Some { best_snap = s; best_region = region; best_full_region = region }
      | Delta { base_id } -> (
        match other with
        | Some f when f.kind = Full && f.ckpt_id = base_id && s.ckpt_id > base_id
          ->
          Some
            {
              best_snap = compose ~full:f ~delta:s;
              best_region = region;
              best_full_region = 1 - region;
            }
        | Some _ | None -> None))
  in
  match (candidate 0 r0 r1, candidate 1 r1 r0) with
  | None, None -> None
  | Some b, None | None, Some b -> Some b
  | Some a, Some b ->
    Some (if a.best_snap.ckpt_id >= b.best_snap.ckpt_id then a else b)

let read_best disk =
  select
    ~region0:(read_region disk ~region:0)
    ~region1:(read_region disk ~region:1)
