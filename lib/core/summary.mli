(** Segment-summary entries: LLD's on-disk operation log.

    Every meta-data mutation appends an entry to the summary of the open
    segment; crash recovery replays entries in log order to rebuild the
    block-number-map and the list-table (paper §2, §4).

    Entries are tagged with the stream they belong to.  [Simple] entries
    take effect at their log position.  [In_aru] entries are generated
    when the ARU commits (the list-operation log is re-executed in the
    committed state, paper §4) and therefore appear contiguously,
    terminated by the ARU's [Commit] entry; recovery buffers them and
    applies them only if the [Commit] entry made it to disk — this is
    what makes the ARU failure-atomic.

    Allocations are the deliberate exception: [Alloc] and [New_list]
    performed inside an ARU are emitted immediately with the [Simple]
    tag, because allocation always happens in the committed state
    (paper §3.3); blocks allocated by an ARU that never committed are
    freed by the recovery consistency sweep. *)

type stream = Simple | In_aru of Types.Aru_id.t

(** Insertion point of a block within a list. *)
type pred = Head | After of Types.Block_id.t

type op =
  | Alloc of { block : Types.Block_id.t; list : Types.List_id.t; stamp : int }
      (** block allocated (for insertion into [list]) *)
  | Write of { block : Types.Block_id.t; slot : int; stamp : int }
      (** block data written to data slot [slot] of the segment whose
          summary holds this entry *)
  | Link of { list : Types.List_id.t; block : Types.Block_id.t; pred : pred }
      (** block inserted into the list after [pred] *)
  | Unlink of { list : Types.List_id.t; block : Types.Block_id.t }
      (** block removed from the list *)
  | New_list of {
      list : Types.List_id.t;
      stamp : int;
      owner : Types.Aru_id.t option;
          (** the ARU that allocated the list, if any: lets recovery
              free still-empty lists of ARUs that never committed *)
    }
  | Delete_list of { list : Types.List_id.t }
      (** deallocate every block still on the list, then the list itself
          (the "improved deletion" path, paper §5.3) *)
  | Dealloc of { block : Types.Block_id.t; stamp : int }
  | Commit of { aru : Types.Aru_id.t }
      (** commit record: all earlier [In_aru] entries of this ARU take
          effect *)
  | Commit_group of { arus : Types.Aru_id.t list }
      (** batched commit record (group commit): equivalent to one
          [Commit] per listed ARU, in list order.  The record is a
          single summary entry in a single segment, so a torn batch is
          all-or-nothing as a unit — every contained ARU either has its
          buffered [In_aru] entries applied or none do, and each ARU
          individually remains failure-atomic *)
  | Prepare of { aru : Types.Aru_id.t; gid : int; coordinator : int }
      (** two-phase-commit prepare record (DESIGN.md §5.14): this
          shard's slice of cross-shard transaction [gid] is complete and
          durable up to here, but takes effect only when a [Decide]
          record with [committed = true] for [gid] exists — on this
          shard, or on shard [coordinator].  A prepare with no
          reachable decision resolves as aborted (presumed abort). *)
  | Decide of { aru : Types.Aru_id.t; gid : int; committed : bool }
      (** two-phase-commit decision record: transaction [gid]'s buffered
          [In_aru] entries (terminated by the [Prepare] record) take
          effect iff [committed].  Written eagerly on the coordinator
          shard — the transaction's single commit point — and lazily on
          participants to spare future recoveries the cross-shard
          lookup. *)

type t = { stream : stream; op : op }

val encoded_size : t -> int
(** Exact number of bytes {!encode} will append. *)

val encode : Lld_util.Blk.Writer.t -> t -> unit

val decode : Lld_util.Blk.Reader.t -> t
(** Raises [Errors.Corrupt] on an unknown tag,
    [Lld_util.Blk.Truncated] on short input. *)

val pp : Format.formatter -> t -> unit
