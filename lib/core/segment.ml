module Blk = Lld_util.Blk
module Geometry = Lld_disk.Geometry

(* On-disk segment format v3 (DESIGN.md §5.13).  Data slots grow from
   the front; at the back sit, in order:

     [summary entries][slot CRC table: u32 per slot][32 B header]

   Trailing header: magic u32, seq u64, summary_len u32, entry_count
   u32, slots_used u32, meta CRC32c u32 (over summary + CRC table +
   header prefix, i.e. [summary_off, header+24)), 4 B zero pad.

   v2 checksummed the whole image with one hash64 — every seal and
   every parse paid a full-segment pass.  v3 checksums each data slot
   separately (CRC32c), so parse touches only the meta region, torn
   writes are still detected (the meta region sits at the end, so a
   persisted prefix never carries a matching meta CRC for the new
   content), and single-slot media rot is pinpointed — and repaired —
   per block ([lld scrub]). *)
let header_bytes = 32
let magic = 0x4c4c5333 (* "LLS3" *)
let slot_crc_bytes = 4

type scope = Simple_scope | Aru_scope of Types.Aru_id.t

type t = {
  geom : Geometry.t;
  seq : int;
  disk_index : int;
  image : Blk.t; (* data slots are blitted here as they arrive *)
  slot_of : (int, int * scope) Hashtbl.t; (* block id -> current slot *)
  mutable slots_used : int;
  mutable entries_rev : Summary.t list;
  mutable entry_count : int;
  mutable summary_bytes : int;
}

let create geom ~seq ~disk_index =
  {
    geom;
    seq;
    disk_index;
    image = Blk.create geom.Geometry.segment_bytes;
    slot_of = Hashtbl.create 64;
    slots_used = 0;
    entries_rev = [];
    entry_count = 0;
    summary_bytes = 0;
  }

let seq t = t.seq
let disk_index t = t.disk_index
let is_empty t = t.slots_used = 0 && t.entry_count = 0
let slots_used t = t.slots_used
let summary_bytes t = t.summary_bytes
let entry_count t = t.entry_count

(* every slot costs its block plus one CRC-table entry *)
let has_room t ~data_blocks ~entry_bytes =
  let data =
    (t.slots_used + data_blocks) * (t.geom.Geometry.block_bytes + slot_crc_bytes)
  in
  data + t.summary_bytes + entry_bytes + header_bytes
  <= t.geom.Geometry.segment_bytes

let slot_of_block t block =
  Option.map fst (Hashtbl.find_opt t.slot_of (Types.Block_id.to_int block))

let scope_equal a b =
  match (a, b) with
  | Simple_scope, Simple_scope -> true
  | Aru_scope x, Aru_scope y -> Types.Aru_id.equal x y
  | (Simple_scope | Aru_scope _), _ -> false

let put_block t ~scope ~allow_cross_scope block data =
  let bb = t.geom.Geometry.block_bytes in
  if Blk.length data <> bb then
    invalid_arg "Segment.put_block: data must be exactly one block";
  let key = Types.Block_id.to_int block in
  let reusable =
    match Hashtbl.find_opt t.slot_of key with
    | Some (slot, prev) when allow_cross_scope || scope_equal prev scope ->
      Some slot
    | Some _ | None -> None
  in
  let slot =
    match reusable with
    | Some slot -> slot
    | None ->
      if not (has_room t ~data_blocks:1 ~entry_bytes:0) then
        invalid_arg "Segment.put_block: no room";
      let slot = t.slots_used in
      t.slots_used <- slot + 1;
      slot
  in
  Hashtbl.replace t.slot_of key (slot, scope);
  Blk.blit data 0 t.image (slot * bb) bb;
  slot

(* A view into the open segment's buffer — valid until the next
   [put_block] to the same slot or the segment is discarded. *)
let read_slot t ~slot =
  if slot < 0 || slot >= t.slots_used then invalid_arg "Segment.read_slot";
  let bb = t.geom.Geometry.block_bytes in
  Blk.sub t.image (slot * bb) bb

let add_entry t entry =
  let size = Summary.encoded_size entry in
  if not (has_room t ~data_blocks:0 ~entry_bytes:size) then
    invalid_arg "Segment.add_entry: no room";
  t.entries_rev <- entry :: t.entries_rev;
  t.entry_count <- t.entry_count + 1;
  t.summary_bytes <- t.summary_bytes + size

let entries t = List.rev t.entries_rev

let crc_table_off geom ~slots_used =
  geom.Geometry.segment_bytes - header_bytes - (slots_used * slot_crc_bytes)

let meta_off geom ~slots_used ~summary_len =
  crc_table_off geom ~slots_used - summary_len

(* One serialization pass straight into the image: the summary entries
   are encoded through a fixed writer over the meta region, then the
   slot CRCs and header are filled in place.  The returned view is the
   open buffer itself — it is immutable from here on (the caller seals
   exactly once and discards the builder). *)
let seal t =
  let total = t.geom.Geometry.segment_bytes in
  let bb = t.geom.Geometry.block_bytes in
  let table_off = crc_table_off t.geom ~slots_used:t.slots_used in
  let summary_off =
    meta_off t.geom ~slots_used:t.slots_used ~summary_len:t.summary_bytes
  in
  let w = Blk.Writer.of_view (Blk.sub t.image summary_off t.summary_bytes) in
  List.iter (Summary.encode w) (entries t);
  assert (Blk.Writer.length w = t.summary_bytes);
  for slot = 0 to t.slots_used - 1 do
    Blk.set_u32 t.image
      (table_off + (slot * slot_crc_bytes))
      (Blk.crc32c ~pos:(slot * bb) ~len:bb t.image)
  done;
  let h = total - header_bytes in
  Blk.set_u32 t.image h magic;
  Blk.set_u32 t.image (h + 4) (t.seq land 0xffffffff);
  Blk.set_u32 t.image (h + 8) (t.seq lsr 32);
  Blk.set_u32 t.image (h + 12) t.summary_bytes;
  Blk.set_u32 t.image (h + 16) t.entry_count;
  Blk.set_u32 t.image (h + 20) t.slots_used;
  Blk.set_u32 t.image (h + 24)
    (Blk.crc32c ~pos:summary_off ~len:(h + 24 - summary_off) t.image);
  t.image

type parsed = {
  p_seq : int;
  p_entries : Summary.t list;
  p_slots_used : int;
  p_image : Blk.t;
}

let parse geom image =
  let total = geom.Geometry.segment_bytes in
  if Blk.length image <> total then invalid_arg "Segment.parse: bad image size";
  let h = total - header_bytes in
  if Blk.get_u32 image h <> magic then None
  else begin
    let summary_len = Blk.get_u32 image (h + 12) in
    let entry_count = Blk.get_u32 image (h + 16) in
    let slots_used = Blk.get_u32 image (h + 20) in
    let max_meta = total - header_bytes in
    if
      slots_used < 0
      || slots_used > total / geom.Geometry.block_bytes
      || summary_len < 0
      || (slots_used * slot_crc_bytes) + summary_len > max_meta
    then None
    else begin
      let summary_off = meta_off geom ~slots_used ~summary_len in
      if slots_used * geom.Geometry.block_bytes > summary_off then None
      else if
        Blk.get_u32 image (h + 24)
        <> Blk.crc32c ~pos:summary_off ~len:(h + 24 - summary_off) image
      then None
      else begin
        let seq =
          Blk.get_u32 image (h + 4) lor (Blk.get_u32 image (h + 8) lsl 32)
        in
        let r = Blk.Reader.of_view ~pos:summary_off ~len:summary_len image in
        let rec decode_all n acc =
          if n = 0 then List.rev acc
          else decode_all (n - 1) (Summary.decode r :: acc)
        in
        match decode_all entry_count [] with
        | p_entries ->
          Some { p_seq = seq; p_entries; p_slots_used = slots_used; p_image = image }
        | exception (Blk.Truncated | Errors.Corrupt _) -> None
      end
    end
  end

let stored_slot_crc geom parsed ~slot =
  Blk.get_u32 parsed.p_image
    (crc_table_off geom ~slots_used:parsed.p_slots_used
    + (slot * slot_crc_bytes))

let verify_slot geom parsed ~slot =
  if slot < 0 || slot >= parsed.p_slots_used then
    invalid_arg "Segment.verify_slot";
  let bb = geom.Geometry.block_bytes in
  Blk.crc32c ~pos:(slot * bb) ~len:bb parsed.p_image
  = stored_slot_crc geom parsed ~slot

(* Checksum-verified zero-copy slot read: the per-slot CRC is checked
   on every access, so rot between the seal and this read surfaces as a
   typed [Errors.Corruption] instead of silently wrong data. *)
let parsed_slot geom parsed ~slot =
  let bb = geom.Geometry.block_bytes in
  if slot < 0 || slot >= parsed.p_slots_used then
    invalid_arg "Segment.parsed_slot";
  if not (verify_slot geom parsed ~slot) then
    raise (Errors.Corruption (Errors.Invalid_checksum { what = "segment slot"; index = slot }));
  Blk.sub parsed.p_image (slot * bb) bb

(* How many trailing bytes of a sealed image cover the header plus a
   maximal CRC table — what a single-block read must fetch (once per
   segment, then memoised) to verify slots without the whole image. *)
let tail_bytes geom =
  min geom.Geometry.segment_bytes
    (max geom.Geometry.block_bytes
       (header_bytes
       + (geom.Geometry.segment_bytes / geom.Geometry.block_bytes
         * slot_crc_bytes)))

let tail_slot_crc geom ~tail ~slot =
  let tlen = Blk.length tail in
  if tlen < header_bytes then None
  else begin
    let h = tlen - header_bytes in
    if Blk.get_u32 tail h <> magic then None
    else begin
      let slots_used = Blk.get_u32 tail (h + 20) in
      let total = geom.Geometry.segment_bytes in
      if
        slots_used < 0
        || slots_used > total / geom.Geometry.block_bytes
        || slot < 0 || slot >= slots_used
      then None
      else begin
        (* in-segment offset of the entry, rebased into the tail view *)
        let off =
          crc_table_off geom ~slots_used
          + (slot * slot_crc_bytes) - (total - tlen)
        in
        if off < 0 then None else Some (Blk.get_u32 tail off)
      end
    end
  end

(* For salvage paths that must look at a slot even though its checksum
   already failed. *)
let unverified_slot geom parsed ~slot =
  let bb = geom.Geometry.block_bytes in
  if slot < 0 || slot >= parsed.p_slots_used then
    invalid_arg "Segment.unverified_slot";
  Blk.sub parsed.p_image (slot * bb) bb
