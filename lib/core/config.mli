(** Configuration of a logical-disk instance. *)

(** Which LLD implementation to run (paper Table 1):
    [Sequential] is the original prototype — single stream, no shadow
    states, at most one open ARU; [Concurrent] is the paper's new
    prototype with full shadow/committed/persistent versioning. *)
type mode = Sequential | Concurrent

(** Read-visibility options for concurrent ARUs (paper §3.3, listed in
    increasing isolation): [Any_shadow] returns the most recent shadow
    version across all ARUs; [Committed_only] always returns the
    committed version; [Own_shadow] (the paper's choice, option 3)
    returns the reader's own shadow version inside an ARU and the
    committed version otherwise. *)
type visibility = Any_shadow | Committed_only | Own_shadow

(** Victim selection for the segment cleaner: [Greedy] picks the sealed
    segment with the fewest live blocks (the paper's behaviour, kept as
    an ablation); [Cost_benefit] maximises the Sprite-LFS benefit/cost
    ratio (1-u)*age/(1+u), where [u] is the victim's live fraction and
    [age] the number of segments sealed since it was written. *)
type clean_policy = Greedy | Cost_benefit

type t = {
  mode : mode;
  visibility : visibility;
  cost : Lld_sim.Cost.t;
  cache_blocks : int;  (** LRU capacity of the persistent-read cache *)
  readahead : bool;
      (** fetch the whole segment on a cache miss that continues a
          sequential physical read pattern *)
  auto_clean : bool;
  clean_policy : clean_policy;
  clean_reserve_segments : int;
      (** run the cleaner when free segments drop below this *)
  checkpoint_interval_segments : int;
      (** checkpoint after this many sealed segments (when no ARU is
          active); 0 disables periodic checkpoints (the cleaner still
          checkpoints) *)
  checkpoint_dirty_threshold : int;
      (** a periodic checkpoint is written as an incremental {e delta}
          (only the map/table entries dirtied since the last full
          checkpoint, plus tombstones) while the dirty-entry count stays
          at or below this; above it — or whenever a full image is
          required (mkfs, recovery, cleaning) — a full checkpoint is
          written instead.  0 forces every checkpoint to be full. *)
  recovery_sweep : bool;
      (** run recovery's consistency sweep (paper §3.3).  Test-only
          knob: disabling it deliberately breaks recovery — orphaned
          allocations of uncommitted ARUs survive — so the crash
          checker's violation reporting can be exercised.  Always [true]
          outside such tests. *)
  recovery_parallel : bool;
      (** replay dependency-independent summary partitions on OCaml 5
          domains.  The partitioned apply touches no disk and charges no
          virtual time, so results and the cost model are identical to
          the sequential fallback (used when this is [false] or the
          partition count makes domains pointless). *)
  recovery_early_open : bool;
      (** open for reads before the replay finishes: {!Lld.recover}
          returns after the checkpoint restore + log-tail scan, and a
          logical block or list is recovered on demand the first time a
          read touches it.  The first mutating operation (or
          {!Lld.complete_recovery}) finishes the sweep. *)
  group_commit_window : int;
      (** group-commit window in virtual nanoseconds: once the oldest
          queued commit intent ({!Lld.submit_commit}) has waited this
          long, {!Lld.commit_due} reports the batch ready.  0 disables
          group commit entirely — [submit_commit] degenerates to the
          immediate single-ARU commit path, bit-identical to
          {!Lld.end_aru} (the [LLD_GROUP_COMMIT_WINDOW=0] CI leg). *)
  group_commit_batch : int;
      (** close a commit batch as soon as this many ARUs are queued,
          even inside the window *)
  scrub_on_mount : bool;
      (** run {!Lld.scrub} right after recovery: verify every sealed
          segment's slot checksums and both superblock generations,
          repairing what redundancy allows.  Defaults to [false]
          (overridable with [LLD_SCRUB_ON_MOUNT=1]); [lld mount
          --scrub] and the corruption crashcheck workload switch it
          on. *)
}

val default : t
(** Concurrent mode, [Own_shadow] visibility, SPARC-5/70 cost model,
    8 MB cache, readahead on, auto-clean on.  The group-commit knobs
    default to a 100 µs window and batches of 32, overridable with the
    [LLD_GROUP_COMMIT_WINDOW] / [LLD_GROUP_COMMIT_BATCH] environment
    variables (integers; the window is virtual nanoseconds). *)

val old_lld : t
(** The "old" baseline: sequential mode; everything else as {!default}. *)

val pp_mode : Format.formatter -> mode -> unit
val pp_visibility : Format.formatter -> visibility -> unit
val pp_clean_policy : Format.formatter -> clean_policy -> unit
