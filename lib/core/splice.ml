type ctx = {
  peek_block : Types.Block_id.t -> Record.block;
  get_block : Types.Block_id.t -> Record.block;
  peek_list : Types.List_id.t -> Record.list_r;
  get_list : Types.List_id.t -> Record.list_r;
  on_pred_hop : unit -> unit;
}

type outcome = [ `Applied | `Skipped ]

let insert ctx ~list ~block ~pred =
  let lrec = ctx.peek_list list in
  let brec = ctx.peek_block block in
  if not lrec.Record.exists then `Skipped
  else if (not brec.Record.alloc) || brec.Record.member_of <> None then `Skipped
  else begin
    match pred with
    | Summary.Head ->
      let lrec = ctx.get_list list in
      let brec = ctx.get_block block in
      brec.Record.member_of <- Some list;
      brec.Record.successor <- lrec.Record.first;
      (match lrec.Record.first with
      | None -> lrec.Record.last <- Some block
      | Some _ -> ());
      lrec.Record.first <- Some block;
      `Applied
    | Summary.After p ->
      let prec_ = ctx.peek_block p in
      if prec_.Record.member_of <> Some list then `Skipped
      else begin
        let lrec = ctx.get_list list in
        let brec = ctx.get_block block in
        let prec_ = ctx.get_block p in
        brec.Record.member_of <- Some list;
        brec.Record.successor <- prec_.Record.successor;
        prec_.Record.successor <- Some block;
        (match lrec.Record.last with
        | Some l when Types.Block_id.equal l p -> lrec.Record.last <- Some block
        | Some _ | None -> ());
        `Applied
      end
  end

let unlink ctx ~list ~block =
  let lrec = ctx.peek_list list in
  let brec = ctx.peek_block block in
  if not lrec.Record.exists then `Skipped
  else if brec.Record.member_of <> Some list then `Skipped
  else begin
    let succ = brec.Record.successor in
    (match lrec.Record.first with
    | Some f when Types.Block_id.equal f block ->
      let lrec = ctx.get_list list in
      lrec.Record.first <- succ;
      (match lrec.Record.last with
      | Some l when Types.Block_id.equal l block -> lrec.Record.last <- None
      | Some _ | None -> ())
    | Some _ | None ->
      (* predecessor search from the head of the list *)
      let rec search cur =
        ctx.on_pred_hop ();
        let crec = ctx.peek_block cur in
        match crec.Record.successor with
        | Some s when Types.Block_id.equal s block -> cur
        | Some s -> search s
        | None ->
          (* member_of said the block is on this list; a broken chain is
             an internal invariant violation *)
          Errors.corrupt
            (Format.asprintf "list %a chain broken before %a" Types.List_id.pp
               list Types.Block_id.pp block)
      in
      let p =
        match lrec.Record.first with
        | Some f -> search f
        | None ->
          Errors.corrupt
            (Format.asprintf "list %a empty but %a claims membership"
               Types.List_id.pp list Types.Block_id.pp block)
      in
      let prec_ = ctx.get_block p in
      prec_.Record.successor <- succ;
      let lrec = ctx.get_list list in
      (match lrec.Record.last with
      | Some l when Types.Block_id.equal l block -> lrec.Record.last <- Some p
      | Some _ | None -> ()));
    let brec = ctx.get_block block in
    brec.Record.member_of <- None;
    brec.Record.successor <- None;
    `Applied
  end

let delete_list ctx ~list ~dealloc =
  let lrec = ctx.peek_list list in
  if not lrec.Record.exists then `Skipped
  else begin
    let rec walk cur =
      match cur with
      | None -> ()
      | Some b ->
        let brec = ctx.get_block b in
        let next = brec.Record.successor in
        brec.Record.member_of <- None;
        brec.Record.successor <- None;
        brec.Record.alloc <- false;
        dealloc brec;
        walk next
    in
    walk lrec.Record.first;
    let lrec = ctx.get_list list in
    lrec.Record.exists <- false;
    lrec.Record.first <- None;
    lrec.Record.last <- None;
    `Applied
  end
