module Geometry = Lld_disk.Geometry

let superblock_segment = 0
let region_count = 2

(* Worst-case checkpoint payload: every block allocated (31 B each) and
   the maximum number of lists existing (22 B each), plus fixed header
   fields; the bound uses the raw partition block count, which exceeds
   the exposed capacity. Two spare segments absorb pending-ARU entries
   (DESIGN.md §5.3). *)
let region_segments geom =
  let bound = Geometry.total_blocks geom in
  let worst = 4096 + (bound * (31 + 22)) in
  let usable = geom.Geometry.segment_bytes - 64 in
  ((worst + usable - 1) / usable) + 2

(* Segment 0 is the generational superblock (two block-sized slots,
   DESIGN.md §5.13); the checkpoint regions and the log follow it. *)
let region_first geom ~region =
  if region < 0 || region >= region_count then invalid_arg "Disk_layout.region_first";
  1 + (region * region_segments geom)

let log_first geom = 1 + (region_count * region_segments geom)

let log_count geom =
  let n = geom.Geometry.num_segments - log_first geom in
  if n < 4 then invalid_arg "Disk_layout: partition too small for a log";
  n

let block_capacity geom = log_count geom * Geometry.blocks_per_segment geom
let max_lists geom = block_capacity geom
