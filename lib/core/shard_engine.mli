(** {!Engine} instantiated over the sharded facade: the same
    deterministic N-client event loop, multiplexed over S shards
    through {!Shard}.  Single-shard ARUs park in their shard's
    group-commit queue; cross-shard ARUs commit synchronously at
    submission and their clients wake at the next drain poll. *)

val run : Shard.t -> Engine.client list -> Engine.stats
