(** The generational superblock (DESIGN.md §5.13).

    Segment 0 holds two block-sized slots.  Each valid slot records an
    [epoch] (the checkpoint generation counter) and the checkpoint
    [region] that generation was written to, protected by a CRC32c;
    epoch [g] always lands in slot [g mod 2], so the two newest
    generations coexist and the {e highest valid epoch wins} — a torn
    or rotten slot falls back to the surviving generation (notafs's
    generational-superblock idiom).

    Recovery uses the superblock as a validity gate and hint; the
    checkpoint regions themselves still carry generation numbers, so a
    superblock pointing at a checkpoint that failed its own checks
    degrades gracefully to the older generation. *)

type slot = { epoch : int; region : int }

val slot_count : int
(** Always 2. *)

val slot_for : epoch:int -> int
(** The slot index generation [epoch] is written to ([epoch mod 2]). *)

val slot_offset : Lld_disk.Geometry.t -> int -> int
(** Byte offset of slot 0 or 1 on the device. *)

val encode : Lld_disk.Geometry.t -> slot -> Lld_util.Blk.t
(** One logical block: magic, format version, epoch, region, CRC32c. *)

val decode : Lld_util.Blk.t -> slot option
(** [None] when the magic, version, CRC or field ranges are wrong. *)

val read_slot : Lld_disk.Disk.t -> int -> slot option

val write_slot : Lld_disk.Disk.t -> slot -> unit
(** Write the slot for the epoch's generation and barrier: the pointer
    must be durable before logging resumes on top of it. *)

val read_slots : Lld_disk.Disk.t -> slot option * slot option

val best : Lld_disk.Disk.t -> slot option
(** The highest valid epoch across both slots, if any. *)

val pp : Format.formatter -> slot -> unit
