module Codec = Lld_util.Blk

type stream = Simple | In_aru of Types.Aru_id.t
type pred = Head | After of Types.Block_id.t

type op =
  | Alloc of { block : Types.Block_id.t; list : Types.List_id.t; stamp : int }
  | Write of { block : Types.Block_id.t; slot : int; stamp : int }
  | Link of { list : Types.List_id.t; block : Types.Block_id.t; pred : pred }
  | Unlink of { list : Types.List_id.t; block : Types.Block_id.t }
  | New_list of {
      list : Types.List_id.t;
      stamp : int;
      owner : Types.Aru_id.t option;
    }
  | Delete_list of { list : Types.List_id.t }
  | Dealloc of { block : Types.Block_id.t; stamp : int }
  | Commit of { aru : Types.Aru_id.t }
  | Commit_group of { arus : Types.Aru_id.t list }
  | Prepare of { aru : Types.Aru_id.t; gid : int; coordinator : int }
  | Decide of { aru : Types.Aru_id.t; gid : int; committed : bool }

type t = { stream : stream; op : op }

(* Wire layout: [stream tag u8][aru u32 if tagged][op tag u8][fields].
   Stamps are u64 to survive long histories; ids and slots are u32. *)

let stream_size = function Simple -> 1 | In_aru _ -> 5

let op_size = function
  | Alloc _ -> 1 + 4 + 4 + 8
  | Write _ -> 1 + 4 + 4 + 8
  | Link { pred = Head; _ } -> 1 + 4 + 4 + 1
  | Link { pred = After _; _ } -> 1 + 4 + 4 + 1 + 4
  | Unlink _ -> 1 + 4 + 4
  | New_list { owner = None; _ } -> 1 + 4 + 8 + 1
  | New_list { owner = Some _; _ } -> 1 + 4 + 8 + 1 + 4
  | Delete_list _ -> 1 + 4
  | Dealloc _ -> 1 + 4 + 8
  | Commit _ -> 1 + 4
  | Commit_group { arus } -> 1 + 2 + (4 * List.length arus)
  | Prepare _ -> 1 + 4 + 8 + 2
  | Decide _ -> 1 + 4 + 8 + 1

let encoded_size t = stream_size t.stream + op_size t.op

let encode w t =
  let module W = Codec.Writer in
  (match t.stream with
  | Simple -> W.u8 w 0
  | In_aru a ->
    W.u8 w 1;
    W.u32 w (Types.Aru_id.to_int a));
  match t.op with
  | Alloc { block; list; stamp } ->
    W.u8 w 1;
    W.u32 w (Types.Block_id.to_int block);
    W.u32 w (Types.List_id.to_int list);
    W.u64 w (Int64.of_int stamp)
  | Write { block; slot; stamp } ->
    W.u8 w 2;
    W.u32 w (Types.Block_id.to_int block);
    W.u32 w slot;
    W.u64 w (Int64.of_int stamp)
  | Link { list; block; pred } -> (
    W.u8 w 3;
    W.u32 w (Types.List_id.to_int list);
    W.u32 w (Types.Block_id.to_int block);
    match pred with
    | Head -> W.u8 w 0
    | After p ->
      W.u8 w 1;
      W.u32 w (Types.Block_id.to_int p))
  | Unlink { list; block } ->
    W.u8 w 4;
    W.u32 w (Types.List_id.to_int list);
    W.u32 w (Types.Block_id.to_int block)
  | New_list { list; stamp; owner } -> (
    W.u8 w 5;
    W.u32 w (Types.List_id.to_int list);
    W.u64 w (Int64.of_int stamp);
    match owner with
    | None -> W.u8 w 0
    | Some a ->
      W.u8 w 1;
      W.u32 w (Types.Aru_id.to_int a))
  | Delete_list { list } ->
    W.u8 w 6;
    W.u32 w (Types.List_id.to_int list)
  | Dealloc { block; stamp } ->
    W.u8 w 7;
    W.u32 w (Types.Block_id.to_int block);
    W.u64 w (Int64.of_int stamp)
  | Commit { aru } ->
    W.u8 w 8;
    W.u32 w (Types.Aru_id.to_int aru)
  | Commit_group { arus } ->
    W.u8 w 9;
    W.u16 w (List.length arus);
    List.iter (fun a -> W.u32 w (Types.Aru_id.to_int a)) arus
  | Prepare { aru; gid; coordinator } ->
    W.u8 w 10;
    W.u32 w (Types.Aru_id.to_int aru);
    W.u64 w (Int64.of_int gid);
    W.u16 w coordinator
  | Decide { aru; gid; committed } ->
    W.u8 w 11;
    W.u32 w (Types.Aru_id.to_int aru);
    W.u64 w (Int64.of_int gid);
    W.u8 w (if committed then 1 else 0)

let decode r =
  let module R = Codec.Reader in
  let stream =
    match R.u8 r with
    | 0 -> Simple
    | 1 -> In_aru (Types.Aru_id.of_int (R.u32 r))
    | n -> raise (Errors.Corrupt (Printf.sprintf "summary stream tag %d" n))
  in
  let block () = Types.Block_id.of_int (R.u32 r) in
  let list () = Types.List_id.of_int (R.u32 r) in
  let stamp () = Int64.to_int (R.u64 r) in
  let op =
    match R.u8 r with
    | 1 ->
      let b = block () in
      let l = list () in
      Alloc { block = b; list = l; stamp = stamp () }
    | 2 ->
      let b = block () in
      let slot = R.u32 r in
      Write { block = b; slot; stamp = stamp () }
    | 3 -> (
      let l = list () in
      let b = block () in
      match R.u8 r with
      | 0 -> Link { list = l; block = b; pred = Head }
      | 1 -> Link { list = l; block = b; pred = After (block ()) }
      | n -> raise (Errors.Corrupt (Printf.sprintf "link pred tag %d" n)))
    | 4 ->
      let l = list () in
      Unlink { list = l; block = block () }
    | 5 ->
      let l = list () in
      let st = stamp () in
      let owner =
        match R.u8 r with
        | 0 -> None
        | 1 -> Some (Types.Aru_id.of_int (R.u32 r))
        | n -> raise (Errors.Corrupt (Printf.sprintf "new-list owner tag %d" n))
      in
      New_list { list = l; stamp = st; owner }
    | 6 -> Delete_list { list = list () }
    | 7 ->
      let b = block () in
      Dealloc { block = b; stamp = stamp () }
    | 8 -> Commit { aru = Types.Aru_id.of_int (R.u32 r) }
    | 9 ->
      let n = R.u16 r in
      let arus = List.init n (fun _ -> Types.Aru_id.of_int (R.u32 r)) in
      Commit_group { arus }
    | 10 ->
      let aru = Types.Aru_id.of_int (R.u32 r) in
      let gid = stamp () in
      Prepare { aru; gid; coordinator = R.u16 r }
    | 11 -> (
      let aru = Types.Aru_id.of_int (R.u32 r) in
      let gid = stamp () in
      match R.u8 r with
      | 0 -> Decide { aru; gid; committed = false }
      | 1 -> Decide { aru; gid; committed = true }
      | n -> raise (Errors.Corrupt (Printf.sprintf "decide verdict tag %d" n)))
    | n -> raise (Errors.Corrupt (Printf.sprintf "summary op tag %d" n))
  in
  { stream; op }

let pp_pred ppf = function
  | Head -> Format.fprintf ppf "head"
  | After b -> Format.fprintf ppf "after %a" Types.Block_id.pp b

let pp_op ppf = function
  | Alloc { block; list; stamp } ->
    Format.fprintf ppf "alloc %a in %a @%d" Types.Block_id.pp block
      Types.List_id.pp list stamp
  | Write { block; slot; stamp } ->
    Format.fprintf ppf "write %a slot %d @%d" Types.Block_id.pp block slot stamp
  | Link { list; block; pred } ->
    Format.fprintf ppf "link %a into %a %a" Types.Block_id.pp block
      Types.List_id.pp list pp_pred pred
  | Unlink { list; block } ->
    Format.fprintf ppf "unlink %a from %a" Types.Block_id.pp block
      Types.List_id.pp list
  | New_list { list; stamp; owner } ->
    Format.fprintf ppf "new-list %a @%d%a" Types.List_id.pp list stamp
      (fun ppf -> function
        | None -> ()
        | Some a -> Format.fprintf ppf " by %a" Types.Aru_id.pp a)
      owner
  | Delete_list { list } ->
    Format.fprintf ppf "delete-list %a" Types.List_id.pp list
  | Dealloc { block; stamp } ->
    Format.fprintf ppf "dealloc %a @%d" Types.Block_id.pp block stamp
  | Commit { aru } -> Format.fprintf ppf "commit %a" Types.Aru_id.pp aru
  | Commit_group { arus } ->
    Format.fprintf ppf "commit-group [%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Types.Aru_id.pp)
      arus
  | Prepare { aru; gid; coordinator } ->
    Format.fprintf ppf "prepare %a gid %d coord s%d" Types.Aru_id.pp aru gid
      coordinator
  | Decide { aru; gid; committed } ->
    Format.fprintf ppf "decide %a gid %d %s" Types.Aru_id.pp aru gid
      (if committed then "commit" else "abort")

let pp ppf t =
  match t.stream with
  | Simple -> pp_op ppf t.op
  | In_aru a -> Format.fprintf ppf "[%a] %a" Types.Aru_id.pp a pp_op t.op
