(** The per-experiment reproduction index (DESIGN.md §4).

    Each [figure*]/[table*] function runs the corresponding paper
    experiment on the simulated testbed and returns structured results;
    each [print_*] renders them the way the paper reports them
    (throughput bars of Figures 5 and 6 become throughput tables with
    percent differences against the "old" baseline).

    A {!scale} shrinks the workloads for quick runs; {!full} reproduces
    the paper's exact parameters. *)

type scale = {
  files : float;  (** multiplier on small-file counts *)
  bytes : float;  (** multiplier on the large-file size *)
  arus : float;  (** multiplier on the ARU-latency count *)
  geom : Lld_disk.Geometry.t;  (** partition used for the runs *)
}

val full : scale
(** The paper's parameters on the paper's 400 MB partition. *)

val quick : scale
(** ~5 % sized workloads on a 100 MB partition — seconds, not minutes. *)

(** {1 F5 — Figure 5: small-file throughput} *)

type fig5_row = {
  f5_variant : Lld_workload.Setup.variant;
  f5_result : Lld_workload.Smallfile.result;
}

val figure5 : scale -> fig5_row list
(** Three variants × two file sizes (10,000 × 1 KB, 1,000 × 10 KB). *)

val print_figure5 : Format.formatter -> fig5_row list -> unit

(** {1 F6 — Figure 6: large-file throughput} *)

type fig6_row = {
  f6_variant : Lld_workload.Setup.variant;
  f6_result : Lld_workload.Largefile.result;
}

val figure6 : scale -> fig6_row list
(** Variants old and new. *)

val print_figure6 : Format.formatter -> fig6_row list -> unit

(** {1 L1 — §5.3 ARU latency} *)

val aru_latency : scale -> Lld_workload.Aru_churn.result
val print_aru_latency : Format.formatter -> Lld_workload.Aru_churn.result -> unit

(** {1 A1 — §5.4 average-overhead summary} *)

val print_summary : Format.formatter -> fig5_row list -> unit
(** The paper's closing claim: average concurrent-ARU overhead roughly
    half-way between the create and delete overheads. *)

(** {1 X1 — ablation: read-visibility options}

    Runs the raw-LD concurrency workload under each of the paper's
    three read-visibility options (§3.3).  The Minix client itself
    requires option 3 — inside an ARU it must see its own meta-data
    writes — which is itself a finding: the weaker options restrict
    which clients can bracket multi-step updates. *)

type visibility_row = {
  x1_visibility : Lld_core.Config.visibility;
  x1_result : Lld_workload.Concurrent.result;
}

val visibility_ablation : scale -> visibility_row list
val print_visibility : Format.formatter -> visibility_row list -> unit

(** {1 X2 — ablation: deletion policy predecessor searches} *)

val print_delete_ablation : Format.formatter -> fig5_row list -> unit
(** Derived from the F5 runs: predecessor-search hops per deleted file. *)

(** {1 X3 — recovery cost} *)

type recovery_row = {
  x3_files_written : int;
  x3_crash_after_segments : int;
  x3_recovery_ns : int;
  x3_report : Lld_core.Recovery.report;
}

val recovery_cost : scale -> recovery_row list
val print_recovery : Format.formatter -> recovery_row list -> unit

(** {1 R1 — restart cost vs log length at fixed dirty-set size}

    The O(dirty) restart claim of the incremental-checkpoint +
    REDO-only recovery work: a fixed working set is overwritten 1, 2, 4
    and 8 rounds (the log grows 8x), then a checkpoint is taken and a
    fixed hot subset dirtied before the crash.  The recovery-time curve
    must stay flat (within 20 %) and replay must touch no more segments
    than the post-checkpoint dirty workload wrote, plus one for the
    gap probe — both are reproduction checks and CI gates. *)

type r1_row = {
  r1_churn_rounds : int;
  r1_log_segments : int;  (** segments written when the crash hits *)
  r1_dirty_segments : int;  (** of those, written after the checkpoint *)
  r1_recovery_ns : int;  (** virtual time of the recovery *)
  r1_replayed : int;  (** log-tail segments recovery replayed *)
  r1_skipped : int;  (** sealed segments the checkpoint let it skip *)
}

val restart_cost : scale -> r1_row list
val print_restart_cost : Format.formatter -> r1_row list -> unit

(** {1 G1 — group commit: throughput scaling with concurrent clients}

    N logical clients run synchronous-commit loops through the
    {!Lld_core.Engine} event loop: every commit is durable (its batch
    sealed and barriered) before the client's next operation.  With one
    client each commit pays a full seal; with N the flusher packs the
    in-flight commits into one batched commit record and one barrier.
    Throughput must scale (8 clients ≥ 3× one client) and the mean
    barriers-per-commit at 8 clients must drop below 0.5 — both are
    reproduction checks and CI gates over [BENCH_PR8.json]. *)

type g1_row = {
  g1_clients : int;
  g1_commits : int;  (** ARUs committed across all clients *)
  g1_elapsed_ns : int;  (** virtual time of the whole run *)
  g1_commits_per_sec : float;  (** commits per virtual second *)
  g1_barriers : int;  (** seals paid by the commit path *)
  g1_batches : int;  (** batched commit records written *)
  g1_barriers_per_commit : float;
  g1_mean_batch : float;  (** ARUs per batched commit record *)
}

val group_commit : ?clients:int list -> scale -> g1_row list
(** One run per client count (default {e 1, 2, 4, 8, 16}). *)

val print_group_commit : Format.formatter -> g1_row list -> unit

(** {1 X4 — concurrency: interleaved vs serial ARU streams} *)

(** {2 Z1: zero-copy data path}

    The identical single-client ARU commit loop driven once through the
    [bytes] compatibility API and once through the [Blk]-view API, on
    the virtual clock.  The view run must copy strictly fewer bytes per
    block write; the write/commit percentiles feed the CI bench gate. *)

type z1_row = {
  z1_api : string;  (** ["bytes"] or ["view"] *)
  z1_commits : int;
  z1_copied_per_op : float;  (** bytes_copied per block write *)
  z1_elisions_per_op : float;  (** copy_elisions per block write *)
  z1_write_p50_us : float;
  z1_write_p99_us : float;
  z1_commit_p50_us : float;
  z1_commit_p99_us : float;
}

val zero_copy : ?blocks_per_commit:int -> scale -> z1_row list
val print_zero_copy : Format.formatter -> z1_row list -> unit

(** {2 S1: sharded LLD — log-bandwidth scaling and cross-shard cost}

    Three artifacts of the sharded facade ({!Lld_core.Shard}).  First,
    8 clients of large (64-block) single-shard ARUs through the
    {!Lld_core.Shard_engine} event loop on 1, 2 and 4 shards: every
    commit is half a segment of payload, so throughput is bound by
    sequential log bandwidth, and S independent spindles whose seals
    overlap ({!Lld_sim.Clock.overlap}) must scale commits/s — 4 shards
    ≥ 2× one shard is a reproduction check and CI gate.  Second, the
    barrier cost of a P-participant cross-shard 2PC: P−1 prepares plus
    the coordinator's decide, gated at ≤ P+1 barriers per commit.
    Third, the S=1 pass-through: the same op stream through a
    one-shard facade and a plain {!Lld_core.Lld} must leave
    byte-identical disk images. *)

type s1_row = {
  s1_shards : int;
  s1_commits : int;
  s1_elapsed_ns : int;  (** virtual wall time of the run *)
  s1_commits_per_sec : float;
  s1_barriers : int;  (** seals paid across all shards *)
  s1_device_io_ns : int;
      (** summed device time: exceeds elapsed exactly when the shards'
          segment writes overlapped *)
}

type s1_cross_row = {
  s1_participants : int;  (** P: shards the ARU touched *)
  s1_cross_commits : int;
  s1_cross_barriers : int;
      (** seals the batch paid: prepares + decides + any batch seals *)
  s1_prepare_barriers : int;
  s1_barriers_per_cross : float;  (** gate: ≤ P+1 *)
}

type s1_result = {
  s1_rows : s1_row list;
  s1_cross : s1_cross_row list;
  s1_identical : bool;
}

val sharding :
  ?shards:int list -> ?clients:int -> ?blocks_per_aru:int -> scale ->
  s1_row list

val sharded_cross_cost :
  ?participants:int list -> ?arus:int -> unit -> s1_cross_row list

val sharded_identity : unit -> bool
val sharded : scale -> s1_result
val print_sharded : Format.formatter -> s1_result -> unit

type concurrency_result = {
  x4_interleaved : Lld_workload.Concurrent.result;
  x4_serial : Lld_workload.Concurrent.result;
}

val concurrency : scale -> concurrency_result
val print_concurrency : Format.formatter -> concurrency_result -> unit

(** {1 X5 — Andrew-style mixed workload}

    The general file-system benchmark complementing the
    micro-benchmarks, run on all three variants. *)

type mixed_row = {
  x5_variant : Lld_workload.Setup.variant;
  x5_result : Lld_workload.Mixed.result;
}

val mixed_workload : scale -> mixed_row list
val print_mixed : Format.formatter -> mixed_row list -> unit

(** {1 W0 — §2 bandwidth context: MinixLLD vs the conventional Minix}

    The paper's background quotes the original Logical Disk result:
    MinixLLD utilises ~85 % of the disk's write bandwidth where the
    Minix file system by itself reaches ~13 %.  This experiment writes
    one large file sequentially through three substrates — the raw
    device (the 100 % reference), MinixLLD, and the update-in-place
    classic Minix of {!Lld_minixdisk.Classic} — and reports each as a
    fraction of raw. *)

type bandwidth_row = {
  w0_label : string;
  w0_mb_per_sec : float;
  w0_fraction_of_raw : float;
}

val bandwidth_context : scale -> bandwidth_row list
val print_bandwidth : Format.formatter -> bandwidth_row list -> unit

(** {1 X6 — LLD vs JLD: two Logical Disk implementations}

    The paper's §5.4 closes by predicting that other LD implementations
    need "at least a meta-data update log" to support ARUs with similar
    performance.  [lib/jld] is such an implementation (update-in-place +
    write-ahead journal); this experiment runs the Minix file system —
    unchanged, via the {!Lld_minixfs.Fs_generic} functor — on both and
    compares the evaluation's workload phases. *)

type impl_row = { x6_impl : string; x6_phases : (string * float) list }

val implementation_comparison : scale -> impl_row list
val print_implementations : Format.formatter -> impl_row list -> unit

(** {1 C1 — segment cleaning: victim policies and relocation I/O}

    Overwrite churn over a hot set of raw LD blocks, sized to wrap the
    log twice so the auto-cleaner runs repeatedly.  Run once per
    {!Lld_core.Config.clean_policy}; the counters demonstrate the PR-2
    cleaner invariants (at most one relocation disk read per victim,
    victim selection scanning segments rather than the block map). *)

type clean_row = {
  c1_policy : Lld_core.Config.clean_policy;
  c1_elapsed_ns : int;  (** virtual time of the whole churn run *)
  c1_counters : Lld_core.Counters.t;  (** snapshot after the run *)
}

val cleaning : scale -> clean_row list
val print_cleaning : Format.formatter -> clean_row list -> unit

(** {1 O1/O2 — observability: observer effect and ARU commit breakdown}

    O1 runs the same deterministic small-file workload twice — once with
    {!Lld_obs.Obs.null}, once under a live tracer — and requires the
    counters JSON and the final virtual clock to be byte-identical:
    probes read the virtual clock but never charge it, so tracing must
    be invisible to the cost model.  O2 re-runs the §5.3 empty-ARU churn
    under tracing and decomposes the paper's 78.47 us commit latency
    into its instrumented phases (log replay, shadow merge, commit
    record). *)

type observability_result = {
  o1_counters_match : bool;
  o1_clock_match : bool;
  o1_plain_clock_ns : int;
  o1_traced_clock_ns : int;
  o1_trace_events : int;
  o1_metrics : Lld_obs.Metrics.t;
      (** gauges + histograms of the traced FS run *)
  o2_arus : int;
  o2_latency_us : float;
  o2_metrics : Lld_obs.Metrics.t;
      (** histograms including the [aru.commit.*] phases *)
}

val observability : scale -> observability_result
val print_observability : Format.formatter -> observability_result -> unit

(** {1 B1 — storage-backend transparency: mem vs file}

    The paper's §2 claim that Logical Disk implementations exchange
    transparently, checked one layer down at the storage backend: the
    same deterministic small-file workload on {!Lld_disk.Backend.mem}
    and on {!Lld_disk.Backend.temp_file} must produce an identical final
    virtual clock and identical logical-disk counters.  Host wall-clock
    is reported alongside — it is the real price of durability and the
    one quantity allowed to differ. *)

type backend_row = {
  b1_backend : string;  (** {!Lld_disk.Disk.backend_label} *)
  b1_wall_s : float;  (** host wall-clock seconds for the run *)
  b1_virtual_ns : int;  (** final virtual clock *)
  b1_counters_json : string;
  b1_files_per_sec : float;  (** create+write phase throughput *)
}

type backend_result = {
  b1_rows : backend_row list;  (** mem first, then file *)
  b1_clock_match : bool;
  b1_counters_match : bool;
}

val backend_comparison : scale -> backend_result
val print_backend : Format.formatter -> backend_result -> unit

(** {1 Everything} *)

(** One sanity gate over a reproduced artifact: not an exact number (the
    virtual clock is calibrated, not cycle-accurate) but the directional
    claim the table or figure exists to demonstrate. *)
type check = { ck_name : string; ck_ok : bool; ck_detail : string }

val run_all_checked : Format.formatter -> scale -> check list
(** Run and print every experiment above in order, then evaluate and
    print the reproduction checks.  The caller decides what a failed
    check means (the bench driver exits non-zero). *)

val run_all : Format.formatter -> scale -> unit
(** {!run_all_checked} with the checks printed but discarded. *)

val run_all_json : Format.formatter -> scale -> check list * Report.json
(** {!run_all_checked}, additionally returning the machine-readable
    projection of the main artifacts (the [BENCH_PR4.json] payload,
    minus the real-time micro-benchmark rows the bench driver adds),
    including the ["observability"] section with the traced runs'
    gauges and latency histograms and the ["backend"] section with the
    B1 mem-vs-file comparison rows. *)
