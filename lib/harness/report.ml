let widths header rows =
  let n = List.length header in
  let w = Array.make n 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if i < n then w.(i) <- max w.(i) (String.length cell)) row)
    (header :: rows);
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let table ppf ~title ~header rows =
  let w = widths header rows in
  let total = Array.fold_left ( + ) 0 w + (2 * (Array.length w - 1)) in
  Format.fprintf ppf "@.%s@.%s@." title (String.make (max total (String.length title)) '-');
  let print_row row =
    let cells = List.mapi (fun i cell -> pad w.(i) cell) row in
    Format.fprintf ppf "%s@." (String.concat "  " cells)
  in
  print_row header;
  List.iter print_row rows

(* ------------------------------------------------------------------ *)
(* Minimal JSON (no external dependency): enough for the bench
   trajectory files (BENCH_PR2.json).                                  *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec json_write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (json_escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        json_write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        json_write buf (String k);
        Buffer.add_char buf ':';
        json_write buf v)
      fields;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  json_write buf j;
  Buffer.contents buf

let pct ~baseline v =
  if baseline = 0. then "n/a"
  else Printf.sprintf "%+.1f%%" ((baseline -. v) /. baseline *. 100.)

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
