(** Plain-text table rendering for the experiment harness. *)

val table :
  Format.formatter ->
  title:string ->
  header:string list ->
  string list list ->
  unit
(** Render an aligned table with a title rule. *)

(** {1 Machine-readable output}

    A minimal JSON value (no external dependency), used by the bench
    driver's [BENCH_PR2.json] trajectory file.  Non-finite floats
    serialise as [null]. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact (single-line) rendering. *)

val pct : baseline:float -> float -> string
(** Percent difference of a throughput against the baseline, signed:
    ["+7.2%"] means 7.2 % slower than the baseline. *)

val f1 : float -> string
(** One decimal. *)

val f2 : float -> string
(** Two decimals. *)
