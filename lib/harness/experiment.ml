module Geometry = Lld_disk.Geometry
module Config = Lld_core.Config
module Counters = Lld_core.Counters
module Summary = Lld_core.Summary
module Lld = Lld_core.Lld
module Shard = Lld_core.Shard
module Shard_engine = Lld_core.Shard_engine
module Recovery = Lld_core.Recovery
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk
module Clock = Lld_sim.Clock
module Setup = Lld_workload.Setup
module Smallfile = Lld_workload.Smallfile
module Largefile = Lld_workload.Largefile
module Aru_churn = Lld_workload.Aru_churn
module Concurrent = Lld_workload.Concurrent
module Mixed = Lld_workload.Mixed
module Fs = Lld_minixfs.Fs
module Obs = Lld_obs.Obs
module Metrics = Lld_obs.Metrics
module Trace = Lld_obs.Trace
module Histogram = Lld_sim.Stats.Histogram

type scale = {
  files : float;
  bytes : float;
  arus : float;
  geom : Lld_disk.Geometry.t;
}

let full = { files = 1.0; bytes = 1.0; arus = 1.0; geom = Geometry.paper }

let quick =
  {
    files = 0.05;
    bytes = 0.05;
    arus = 0.02;
    geom = Geometry.v ~num_segments:200 ();
  }

(* ------------------------------------------------------------------ *)
(* F5                                                                  *)

type fig5_row = {
  f5_variant : Setup.variant;
  f5_result : Smallfile.result;
}

let small_params scale =
  [
    Smallfile.scaled Smallfile.paper_1k scale.files;
    Smallfile.scaled Smallfile.paper_10k scale.files;
  ]

let figure5 scale =
  List.concat_map
    (fun params ->
      List.map
        (fun variant ->
          let inst = Setup.make ~geom:scale.geom variant in
          { f5_variant = variant; f5_result = Smallfile.run inst params })
        Setup.all_variants)
    (small_params scale)

let size_label (p : Smallfile.params) =
  Printf.sprintf "%d x %dKB" p.Smallfile.file_count (p.Smallfile.file_bytes / 1024)

let find_old rows (p : Smallfile.params) =
  List.find
    (fun r -> r.f5_variant = Setup.Old && r.f5_result.Smallfile.params = p)
    rows

let print_figure5 ppf rows =
  let params =
    List.sort_uniq compare (List.map (fun r -> r.f5_result.Smallfile.params) rows)
  in
  let table_rows =
    List.concat_map
      (fun p ->
        let old = find_old rows p in
        let base ph = ph.Smallfile.files_per_sec in
        List.filter_map
          (fun r ->
            if r.f5_result.Smallfile.params <> p then None
            else begin
              let res = r.f5_result in
              let ph sel = sel res in
              let cell sel_new sel_old =
                let v = (sel_new : Smallfile.phase).Smallfile.files_per_sec in
                Printf.sprintf "%s (%s)" (Report.f1 v)
                  (Report.pct ~baseline:(base sel_old) v)
              in
              Some
                [
                  size_label p;
                  Setup.variant_label r.f5_variant;
                  cell
                    (ph (fun r -> r.Smallfile.create_write))
                    old.f5_result.Smallfile.create_write;
                  cell (ph (fun r -> r.Smallfile.read)) old.f5_result.Smallfile.read;
                  cell
                    (ph (fun r -> r.Smallfile.delete))
                    old.f5_result.Smallfile.delete;
                ]
            end)
          rows)
      params
  in
  Report.table ppf
    ~title:
      "Figure 5: small-file throughput in files/second (diff vs old; paper: \
       create 4.0-7.2%, delete 17.9-20.5% with improved deletion)"
    ~header:[ "workload"; "variant"; "create+write"; "read"; "delete" ]
    table_rows

(* ------------------------------------------------------------------ *)
(* F6                                                                  *)

type fig6_row = {
  f6_variant : Setup.variant;
  f6_result : Largefile.result;
}

let figure6 scale =
  let params = Largefile.scaled Largefile.paper scale.bytes in
  List.map
    (fun variant ->
      let inst = Setup.make ~geom:scale.geom variant in
      { f6_variant = variant; f6_result = Largefile.run inst params })
    [ Setup.Old; Setup.New ]

let print_figure6 ppf rows =
  let old =
    List.find (fun r -> r.f6_variant = Setup.Old) rows
  in
  let table_rows =
    List.map
      (fun r ->
        let cells =
          List.map2
            (fun (ph : Largefile.phase) (base : Largefile.phase) ->
              Printf.sprintf "%s (%s)"
                (Report.f2 ph.Largefile.mb_per_sec)
                (Report.pct ~baseline:base.Largefile.mb_per_sec
                   ph.Largefile.mb_per_sec))
            (Largefile.phases r.f6_result)
            (Largefile.phases old.f6_result)
        in
        Setup.variant_label r.f6_variant :: cells)
      rows
  in
  Report.table ppf
    ~title:
      "Figure 6: large-file throughput in MB/second (diff vs old; paper: \
       write1 2.9%, others 0.2-0.7%)"
    ~header:[ "variant"; "write1"; "read1"; "write2"; "read2"; "read3" ]
    table_rows

(* ------------------------------------------------------------------ *)
(* L1                                                                  *)

let aru_latency scale =
  let _, lld = Setup.make_raw ~geom:scale.geom Setup.New in
  let count =
    max 1000
      (int_of_float (float_of_int Aru_churn.paper.Aru_churn.count *. scale.arus))
  in
  Aru_churn.run lld { Aru_churn.count }

let print_aru_latency ppf (r : Aru_churn.result) =
  Report.table ppf
    ~title:
      "ARU latency (paper 5.3: 78.47 us/ARU, 24 segments for 500,000 ARUs)"
    ~header:[ "ARUs"; "latency (us)"; "segments written"; "segments/100k ARUs" ]
    [
      [
        string_of_int r.Aru_churn.count;
        Report.f2 r.Aru_churn.latency_us;
        string_of_int r.Aru_churn.segments_written;
        Report.f1
          (float_of_int r.Aru_churn.segments_written
          /. float_of_int r.Aru_churn.count *. 100_000.);
      ];
    ]

(* ------------------------------------------------------------------ *)
(* A1                                                                  *)

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let print_summary ppf rows =
  let overheads sel variant =
    List.filter_map
      (fun r ->
        if r.f5_variant <> variant then None
        else begin
          let p = r.f5_result.Smallfile.params in
          let old = find_old rows p in
          let v = (sel r.f5_result : Smallfile.phase).Smallfile.files_per_sec in
          let b = (sel old.f5_result).Smallfile.files_per_sec in
          Some ((b -. v) /. b *. 100.)
        end)
      rows
  in
  let create = overheads (fun r -> r.Smallfile.create_write) Setup.New in
  let delete_improved = overheads (fun r -> r.Smallfile.delete) Setup.New_delete in
  let avg = mean (create @ delete_improved) in
  Report.table ppf
    ~title:
      "Summary (paper 5.4: average overhead about half-way between create \
       4.0-7.2% and improved delete 17.9-20.5%)"
    ~header:[ "metric"; "measured" ]
    [
      [ "create overhead (new vs old)";
        Printf.sprintf "%.1f%% - %.1f%%"
          (List.fold_left min infinity create)
          (List.fold_left max neg_infinity create) ];
      [ "delete overhead (new,delete vs old)";
        Printf.sprintf "%.1f%% - %.1f%%"
          (List.fold_left min infinity delete_improved)
          (List.fold_left max neg_infinity delete_improved) ];
      [ "average overhead"; Printf.sprintf "%.1f%%" avg ];
    ]

(* ------------------------------------------------------------------ *)
(* X1: visibility ablation                                             *)

type visibility_row = {
  x1_visibility : Config.visibility;
  x1_result : Concurrent.result;
}

let visibility_ablation scale =
  List.map
    (fun visibility ->
      let clock = Clock.create () in
      let disk = Disk.create ~clock scale.geom in
      let lld =
        Lld.create ~config:{ Config.default with Config.visibility } disk
      in
      Lld.flush lld;
      Clock.reset clock;
      {
        x1_visibility = visibility;
        x1_result = Concurrent.run_interleaved lld Concurrent.default;
      })
    [ Config.Own_shadow; Config.Committed_only; Config.Any_shadow ]

let print_visibility ppf rows =
  let vis_label = function
    | Config.Own_shadow -> "own-shadow (option 3, paper)"
    | Config.Committed_only -> "committed-only (option 2)"
    | Config.Any_shadow -> "any-shadow (option 1)"
  in
  Report.table ppf
    ~title:
      "Ablation X1: read-visibility options (paper 3.3) on the interleaved \
       raw-LD workload (the Minix client itself requires option 3)"
    ~header:[ "visibility"; "ops"; "us/op"; "record creates"; "mesh hops" ]
    (List.map
       (fun r ->
         [
           vis_label r.x1_visibility;
           string_of_int r.x1_result.Concurrent.ops;
           Report.f2 r.x1_result.Concurrent.us_per_op;
           string_of_int r.x1_result.Concurrent.record_creates;
           string_of_int r.x1_result.Concurrent.mesh_hops;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* X2: deletion-policy ablation                                        *)

let print_delete_ablation ppf rows =
  let table_rows =
    List.filter_map
      (fun r ->
        match r.f5_variant with
        | Setup.Old -> None
        | Setup.New | Setup.New_delete ->
          let d = r.f5_result.Smallfile.delete in
          Some
            [
              size_label r.f5_result.Smallfile.params;
              Setup.variant_label r.f5_variant;
              string_of_int d.Smallfile.pred_search_hops;
              Report.f1
                (float_of_int d.Smallfile.pred_search_hops
                /. float_of_int d.Smallfile.files);
            ])
      rows
  in
  Report.table ppf
    ~title:
      "Ablation X2: predecessor-search cost of the deletion policies (paper \
       5.3: longer lists -> longer searches; improved deletion avoids them)"
    ~header:[ "workload"; "variant"; "pred-search hops"; "hops/file" ]
    table_rows

(* ------------------------------------------------------------------ *)
(* X3: recovery cost                                                   *)

type recovery_row = {
  x3_files_written : int;
  x3_crash_after_segments : int;
  x3_recovery_ns : int;
  x3_report : Recovery.report;
}

let recovery_cost scale =
  let params =
    Smallfile.scaled
      { Smallfile.paper_1k with Smallfile.file_count = 2_000 }
      scale.files
  in
  List.map
    (fun checkpointed ->
      let inst = Setup.make ~geom:scale.geom Setup.New in
      let fs = inst.Setup.fs in
      let body = Bytes.make 1024 'x' in
      for i = 0 to params.Smallfile.file_count - 1 do
        let path = Printf.sprintf "/f%06d" i in
        Fs.create fs path;
        Fs.write_file fs path ~off:0 body
      done;
      Fs.flush fs;
      if checkpointed then Lld.checkpoint inst.Setup.lld;
      let segments =
        (Lld.counters inst.Setup.lld).Counters.segments_written
      in
      Fault.schedule_crash (Disk.fault inst.Setup.disk) (Fault.After_writes 0);
      (try Disk.write inst.Setup.disk ~offset:0 (Bytes.make 1 'x')
       with Fault.Crashed -> ());
      let t0 = Clock.now_ns inst.Setup.clock in
      let _lld, report = Lld.recover inst.Setup.disk in
      {
        x3_files_written = params.Smallfile.file_count;
        x3_crash_after_segments = segments;
        x3_recovery_ns = Clock.now_ns inst.Setup.clock - t0;
        x3_report = report;
      })
    [ false; true ]

let print_recovery ppf rows =
  Report.table ppf
    ~title:
      "X3: recovery cost (checkpoints bound replay; the consistency sweep \
       adds 'very little overhead', paper 3.3)"
    ~header:
      [
        "files"; "segments"; "checkpointed"; "recovery (s)"; "replayed";
        "ARUs committed"; "scavenged";
      ]
    (List.mapi
       (fun i r ->
         [
           string_of_int r.x3_files_written;
           string_of_int r.x3_crash_after_segments;
           (if i = 0 then "no" else "yes");
           Report.f2 (float_of_int r.x3_recovery_ns /. 1e9);
           string_of_int r.x3_report.Recovery.segments_replayed;
           string_of_int r.x3_report.Recovery.arus_committed;
           string_of_int r.x3_report.Recovery.blocks_scavenged;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* R1: restart cost vs log length at fixed dirty-set size              *)

type r1_row = {
  r1_churn_rounds : int;
  r1_log_segments : int;
  r1_dirty_segments : int;
  r1_recovery_ns : int;
  r1_replayed : int;
  r1_skipped : int;
}

(* A fixed working set is overwritten [rounds] times (the log grows with
   [rounds]), then a checkpoint is taken and a fixed hot subset is
   dirtied.  Restart cost must depend on the dirty work after the
   checkpoint, not on how long the log has become: the recovery-time
   curve over an 8x log growth must stay flat, and replay must touch no
   more segments than the dirty workload wrote (+1 for the gap probe). *)
let restart_cost scale =
  let working_set = 64 and hot_set = 8 in
  List.map
    (fun rounds ->
      let disk, lld = Setup.make_raw ~geom:scale.geom Setup.New in
      let clock = Lld.clock lld in
      let block_bytes = Lld.block_bytes lld in
      let payload r i =
        Bytes.make block_bytes (Char.chr (((r * 31) + i) land 0xff))
      in
      let l = Lld.new_list lld () in
      let prev = ref Summary.Head in
      let blocks =
        Array.init working_set (fun _ ->
            let b = Lld.new_block lld ~list:l ~pred:!prev () in
            prev := Summary.After b;
            b)
      in
      for r = 1 to rounds do
        Array.iteri (fun i b -> Lld.write lld b (payload r i)) blocks;
        Lld.flush lld
      done;
      Lld.checkpoint lld;
      let after_ckpt = (Lld.counters lld).Counters.segments_written in
      for i = 0 to hot_set - 1 do
        Lld.write lld blocks.(i) (payload (rounds + 1) i)
      done;
      Lld.flush lld;
      let log_segments = (Lld.counters lld).Counters.segments_written in
      Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
      (try Disk.write disk ~offset:0 (Bytes.make 1 'x')
       with Fault.Crashed -> ());
      let t0 = Clock.now_ns clock in
      let lld2, _report = Lld.recover disk in
      let c2 = Lld.counters lld2 in
      {
        r1_churn_rounds = rounds;
        r1_log_segments = log_segments;
        r1_dirty_segments = log_segments - after_ckpt;
        r1_recovery_ns = Clock.now_ns clock - t0;
        r1_replayed = c2.Counters.recovery_replayed_segments;
        r1_skipped = c2.Counters.recovery_skipped_segments;
      })
    [ 1; 2; 4; 8 ]

let print_restart_cost ppf rows =
  Report.table ppf
    ~title:
      "R1: restart cost vs log length at fixed dirty-set size (incremental \
       checkpoint + REDO-only replay: O(dirty), not O(log))"
    ~header:
      [
        "churn rounds"; "log segments"; "dirty segments"; "recovery (ms)";
        "replayed"; "skipped";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.r1_churn_rounds;
           string_of_int r.r1_log_segments;
           string_of_int r.r1_dirty_segments;
           Report.f2 (float_of_int r.r1_recovery_ns /. 1e6);
           string_of_int r.r1_replayed;
           string_of_int r.r1_skipped;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* G1: group commit — throughput scaling with concurrent clients       *)

type g1_row = {
  g1_clients : int;
  g1_commits : int;
  g1_elapsed_ns : int;
  g1_commits_per_sec : float;
  g1_barriers : int;
  g1_batches : int;
  g1_barriers_per_commit : float;
  g1_mean_batch : float;
}

(* Synchronous-commit loops: each client's ARU appends one written
   block to its private list and the client blocks (parks) until the
   commit is durable.  The engine pays a seal per drain, so one client
   seals per commit while N clients share each seal across the batch
   the flusher packs — the barrier amortization the group-commit
   engine exists for (DESIGN.md §5.11). *)
let group_commit ?(clients = [ 1; 2; 4; 8; 16 ]) scale =
  let iters = max 20 (int_of_float (100. *. scale.arus)) in
  let config =
    {
      Config.default with
      Config.group_commit_window = 200_000;
      Config.group_commit_batch = 32;
    }
  in
  List.map
    (fun clients ->
      let clock = Clock.create () in
      let disk = Disk.create ~clock scale.geom in
      let lld = Lld.create ~config disk in
      let block_bytes = Lld.block_bytes lld in
      let client tag =
        let aru = ref None in
        let list = ref None in
        let block = ref None in
        let remaining = ref iters in
        let state = ref `Setup in
        fun (r : Lld_core.Op.result option) ->
          match (!state, r) with
          | `Setup, _ ->
            state := `Begin;
            Some (Lld_core.Op.New_list None)
          | `Begin, _ ->
            (match r with
            | Some (Lld_core.Op.R_list l) -> list := Some l
            | _ -> ());
            if !remaining = 0 then None
            else begin
              state := `Block;
              Some Lld_core.Op.Begin_aru
            end
          | `Block, Some (Lld_core.Op.R_aru a) ->
            aru := Some a;
            state := `Write;
            Some
              (Lld_core.Op.New_block
                 { aru = !aru; list = Option.get !list; pred = Summary.Head })
          | `Write, Some (Lld_core.Op.R_block b) ->
            block := Some b;
            state := `Commit;
            Some
              (Lld_core.Op.Write
                 {
                   aru = !aru;
                   block = b;
                   data = Bytes.make block_bytes (Char.chr (tag land 0xff));
                 })
          | `Commit, Some Lld_core.Op.R_unit ->
            state := `Committed;
            Some (Lld_core.Op.End_aru (Option.get !aru))
          | `Committed, Some Lld_core.Op.R_unit ->
            (* the commit is durable; start the next ARU *)
            decr remaining;
            if !remaining = 0 then None
            else begin
              state := `Block;
              Some Lld_core.Op.Begin_aru
            end
          | _ -> None
      in
      let t0 = Clock.now_ns clock in
      let stats =
        Lld_core.Engine.run lld (List.init clients (fun i -> client (i + 1)))
      in
      let elapsed = Clock.now_ns clock - t0 in
      let c = Lld.counters lld in
      let commits = stats.Lld_core.Engine.commits in
      {
        g1_clients = clients;
        g1_commits = commits;
        g1_elapsed_ns = elapsed;
        g1_commits_per_sec =
          (if elapsed = 0 then 0.
           else float_of_int commits /. (float_of_int elapsed /. 1e9));
        g1_barriers = c.Counters.commit_barriers;
        g1_batches = c.Counters.commit_batches;
        g1_barriers_per_commit =
          (if commits = 0 then 0.
           else float_of_int c.Counters.commit_barriers /. float_of_int commits);
        g1_mean_batch =
          (if c.Counters.commit_batches = 0 then 0.
           else
             float_of_int c.Counters.group_commits
             /. float_of_int c.Counters.commit_batches);
      })
    clients

let print_group_commit ppf rows =
  Report.table ppf
    ~title:
      "G1: group commit — synchronous-commit throughput vs concurrent \
       clients (one barrier per batch, not per commit)"
    ~header:
      [
        "clients"; "commits"; "elapsed (ms)"; "commits/s"; "barriers";
        "batches"; "barriers/commit"; "mean batch";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.g1_clients;
           string_of_int r.g1_commits;
           Report.f2 (float_of_int r.g1_elapsed_ns /. 1e6);
           Report.f1 r.g1_commits_per_sec;
           string_of_int r.g1_barriers;
           string_of_int r.g1_batches;
           Printf.sprintf "%.3f" r.g1_barriers_per_commit;
           Report.f2 r.g1_mean_batch;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* G2: per-stage commit latency under group commit                     *)

type g2_row = {
  g2_clients : int;
  g2_commits : int;
  g2_queue_wait_p50_us : float;
  g2_queue_wait_p99_us : float;
  g2_barrier_p50_us : float;
  g2_barrier_p99_us : float;
  g2_wake_p50_us : float;
  g2_wake_p99_us : float;
  g2_mean_batch : float;
}

(* The same synchronous-commit engine loops as G1, but run under a live
   observability handle so the per-stage commit histograms
   (queue-wait, seal barrier, wake latency) fill — attaching the handle
   is free on the virtual clock, so the schedule is identical to an
   untraced run.  A background churner issues simple (non-ARU) writes
   the whole time: someone is always runnable, so the engine never
   force-flushes and batches close on size or window only — with one
   client the queue drains on window expiry (queue-wait ~ the window),
   while with 8+ clients the batch-size close fires first and each
   member waits only for its peers to submit.  Queue-wait p99 shrinking
   as clients grow is exactly the latency side of the barrier
   amortization G1 measures on throughput. *)
let group_commit_stages ?(clients = [ 1; 8; 16 ]) scale =
  let iters = max 10 (int_of_float (50. *. scale.arus)) in
  (* The window must dwarf the virtual time 8 clients need to fill a
     batch (each Begin/Write/Commit charges the clock), otherwise
     window expiry closes every batch and the contrast disappears. *)
  let config =
    {
      Config.default with
      Config.group_commit_window = 5_000_000;
      Config.group_commit_batch = 8;
    }
  in
  List.map
    (fun n ->
      let clock = Clock.create () in
      let obs = Obs.create ~clock () in
      let disk = Disk.create ~clock scale.geom in
      let lld = Lld.create ~config ~obs disk in
      let block_bytes = Lld.block_bytes lld in
      let live = ref n in
      let client tag =
        let aru = ref None in
        let list = ref None in
        let remaining = ref iters in
        let state = ref `Setup in
        fun (r : Lld_core.Op.result option) ->
          match (!state, r) with
          | `Setup, _ ->
            state := `Begin;
            Some (Lld_core.Op.New_list None)
          | `Begin, _ ->
            (match r with
            | Some (Lld_core.Op.R_list l) -> list := Some l
            | _ -> ());
            state := `Block;
            Some Lld_core.Op.Begin_aru
          | `Block, Some (Lld_core.Op.R_aru a) ->
            aru := Some a;
            state := `Write;
            Some
              (Lld_core.Op.New_block
                 { aru = !aru; list = Option.get !list; pred = Summary.Head })
          | `Write, Some (Lld_core.Op.R_block b) ->
            state := `Commit;
            Some
              (Lld_core.Op.Write
                 {
                   aru = !aru;
                   block = b;
                   data = Bytes.make block_bytes (Char.chr (tag land 0xff));
                 })
          | `Commit, Some Lld_core.Op.R_unit ->
            state := `Committed;
            Some (Lld_core.Op.End_aru (Option.get !aru))
          | `Committed, Some Lld_core.Op.R_unit ->
            decr remaining;
            if !remaining = 0 then begin
              decr live;
              None
            end
            else begin
              state := `Block;
              Some Lld_core.Op.Begin_aru
            end
          | _ -> None
      in
      let churner () =
        let list = ref None in
        let block = ref None in
        let state = ref `List in
        fun (r : Lld_core.Op.result option) ->
          if !live = 0 then None
          else
            match (!state, r) with
            | `List, _ ->
              state := `Block;
              Some (Lld_core.Op.New_list None)
            | `Block, Some (Lld_core.Op.R_list l) ->
              list := Some l;
              state := `Write;
              Some
                (Lld_core.Op.New_block
                   { aru = None; list = Option.get !list; pred = Summary.Head })
            | `Write, Some (Lld_core.Op.R_block b) ->
              block := Some b;
              state := `Churn;
              Some
                (Lld_core.Op.Write
                   { aru = None; block = b; data = Bytes.make block_bytes 'c' })
            | `Churn, _ ->
              Some
                (Lld_core.Op.Write
                   {
                     aru = None;
                     block = Option.get !block;
                     data = Bytes.make block_bytes 'c';
                   })
            | _ -> None
      in
      let stats =
        Lld_core.Engine.run lld
          (List.init n (fun i -> client (i + 1)) @ [ churner () ])
      in
      let c = Lld.counters lld in
      let m = Obs.metrics obs in
      let pct key sel =
        match Metrics.find_histogram m key with
        | Some h when Histogram.count h > 0 -> float_of_int (sel h) /. 1e3
        | _ -> 0.
      in
      {
        g2_clients = n;
        g2_commits = stats.Lld_core.Engine.commits;
        g2_queue_wait_p50_us = pct "aru.commit.queue_wait" Histogram.p50;
        g2_queue_wait_p99_us = pct "aru.commit.queue_wait" Histogram.p99;
        g2_barrier_p50_us = pct "aru.commit.barrier" Histogram.p50;
        g2_barrier_p99_us = pct "aru.commit.barrier" Histogram.p99;
        g2_wake_p50_us = pct "aru.commit.wake" Histogram.p50;
        g2_wake_p99_us = pct "aru.commit.wake" Histogram.p99;
        g2_mean_batch =
          (if c.Counters.commit_batches = 0 then 0.
           else
             float_of_int c.Counters.group_commits
             /. float_of_int c.Counters.commit_batches);
      })
    clients

let print_group_commit_stages ppf rows =
  Report.table ppf
    ~title:
      "G2: per-stage commit latency under group commit — queue-wait p99 \
       shrinks as concurrent clients fill batches (the latency side of \
       barrier amortization)"
    ~header:
      [
        "clients"; "commits"; "queue-wait p50 (us)"; "queue-wait p99";
        "barrier p50"; "barrier p99"; "wake p50"; "wake p99"; "mean batch";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.g2_clients;
           string_of_int r.g2_commits;
           Report.f2 r.g2_queue_wait_p50_us;
           Report.f2 r.g2_queue_wait_p99_us;
           Report.f2 r.g2_barrier_p50_us;
           Report.f2 r.g2_barrier_p99_us;
           Report.f2 r.g2_wake_p50_us;
           Report.f2 r.g2_wake_p99_us;
           Report.f2 r.g2_mean_batch;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Z1: the zero-copy data path — bytes API vs Blk-view API             *)

type z1_row = {
  z1_api : string;  (** ["bytes"] or ["view"] *)
  z1_commits : int;
  z1_copied_per_op : float;  (** bytes_copied per block write *)
  z1_elisions_per_op : float;  (** copy_elisions per block write *)
  z1_write_p50_us : float;
  z1_write_p99_us : float;
  z1_commit_p50_us : float;
  z1_commit_p99_us : float;
}

(* The same single-client ARU commit loop — [blocks_per_commit] block
   writes per ARU over a fixed 16-block live set — driven once through
   the [bytes] compatibility API and once through the [Blk]-view API.
   On the virtual clock both runs follow the identical schedule, so the
   delta isolates the data path: the view run's bytes_copied per write
   must be strictly lower (each elided boundary copy is counted in
   copy_elisions), while the op.write / op.end_aru percentiles give the
   p99 commit breakdown the CI gate tracks across PRs. *)
let zero_copy ?(blocks_per_commit = 4) scale =
  let commits = max 20 (int_of_float (500. *. scale.arus)) in
  let ops = commits * blocks_per_commit in
  (* pin the group-commit knobs so the measurement ignores the
     LLD_GROUP_COMMIT_* environment: window 0 = synchronous commits *)
  let config =
    {
      Config.default with
      Config.group_commit_window = 0;
      Config.group_commit_batch = 32;
    }
  in
  let run api =
    let clock = Clock.create () in
    let obs = Obs.create ~clock () in
    let disk = Disk.create ~clock scale.geom in
    let lld = Lld.create ~config ~obs disk in
    let bb = Lld.block_bytes lld in
    let list = Lld.new_list lld () in
    let blocks =
      Array.init 16 (fun _ -> Lld.new_block lld ~list ~pred:Summary.Head ())
    in
    let view = Lld_util.Blk.create bb in
    Lld_util.Blk.fill view 'z';
    let payload = Bytes.make bb 'z' in
    let idx = ref 0 in
    for _ = 1 to commits do
      let aru = Lld.begin_aru lld in
      for _ = 1 to blocks_per_commit do
        let b = blocks.(!idx mod Array.length blocks) in
        incr idx;
        match api with
        | `Bytes -> Lld.write lld ~aru b payload
        | `View -> Lld.write_view lld ~aru b view
      done;
      Lld.end_aru lld aru
    done;
    Lld.flush lld;
    let c = Lld.counters lld in
    let m = Obs.metrics obs in
    let pct key sel =
      match Metrics.find_histogram m key with
      | Some h when Histogram.count h > 0 -> float_of_int (sel h) /. 1e3
      | _ -> 0.
    in
    {
      z1_api = (match api with `Bytes -> "bytes" | `View -> "view");
      z1_commits = commits;
      z1_copied_per_op = float_of_int c.Counters.bytes_copied /. float_of_int ops;
      z1_elisions_per_op =
        float_of_int c.Counters.copy_elisions /. float_of_int ops;
      z1_write_p50_us = pct "op.write" Histogram.p50;
      z1_write_p99_us = pct "op.write" Histogram.p99;
      z1_commit_p50_us = pct "op.end_aru" Histogram.p50;
      z1_commit_p99_us = pct "op.end_aru" Histogram.p99;
    }
  in
  [ run `Bytes; run `View ]

let print_zero_copy ppf rows =
  Report.table ppf
    ~title:
      "Z1: zero-copy data path — the identical ARU commit loop through the \
       bytes API vs the Blk-view API (copies per block write, and the \
       write/commit latency breakdown)"
    ~header:
      [
        "api"; "commits"; "copied B/op"; "elisions/op"; "write p50 (us)";
        "write p99"; "commit p50"; "commit p99";
      ]
    (List.map
       (fun r ->
         [
           r.z1_api;
           string_of_int r.z1_commits;
           Report.f2 r.z1_copied_per_op;
           Report.f2 r.z1_elisions_per_op;
           Report.f2 r.z1_write_p50_us;
           Report.f2 r.z1_write_p99_us;
           Report.f2 r.z1_commit_p50_us;
           Report.f2 r.z1_commit_p99_us;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* S1: sharded LLD — log-bandwidth scaling and cross-shard 2PC cost    *)

type s1_row = {
  s1_shards : int;
  s1_commits : int;
  s1_elapsed_ns : int;
  s1_commits_per_sec : float;
  s1_barriers : int;
  s1_device_io_ns : int;
      (* summed device time across spindles: exceeds elapsed wall time
         exactly when the shards' segment writes overlapped *)
}

type s1_cross_row = {
  s1_participants : int;
  s1_cross_commits : int;
  s1_cross_barriers : int;
  s1_prepare_barriers : int;
  s1_barriers_per_cross : float;
}

type s1_result = {
  s1_rows : s1_row list;
  s1_cross : s1_cross_row list;
  s1_identical : bool;
      (* S=1 facade leaves the same disk image as a plain Lld *)
}

let s1_geom = Geometry.v ~num_segments:200 ()

(* Large single-shard ARUs (64 blocks each) from 8 concurrent clients:
   every commit is half a segment of log payload, so throughput is
   bound by sequential log bandwidth.  One shard serialises the
   segment writes on one spindle; S shards stripe clients' lists
   across S independent logs whose seals overlap (Clock.overlap in the
   facade's drain), so commits/s scales with the spindle count even
   though total device time does not shrink. *)
let sharding ?(shards = [ 1; 2; 4 ]) ?(clients = 8) ?(blocks_per_aru = 64)
    scale =
  let iters = max 12 (min 24 (int_of_float (600. *. scale.arus))) in
  let config =
    {
      Config.default with
      Config.group_commit_window = 200_000;
      Config.group_commit_batch = 32;
    }
  in
  List.map
    (fun s ->
      let clock = Clock.create () in
      let disks = Array.init s (fun _ -> Disk.create ~clock s1_geom) in
      let t = Shard.create ~config disks in
      let block_bytes = s1_geom.Geometry.block_bytes in
      let client tag =
        let aru = ref None in
        let list = ref None in
        let remaining = ref iters in
        let blocks_left = ref 0 in
        let state = ref `Setup in
        fun (r : Lld_core.Op.result option) ->
          match (!state, r) with
          | `Setup, _ ->
            state := `Begin;
            Some (Lld_core.Op.New_list None)
          | `Begin, _ ->
            (match r with
            | Some (Lld_core.Op.R_list l) -> list := Some l
            | _ -> ());
            if !remaining = 0 then None
            else begin
              state := `Block;
              blocks_left := blocks_per_aru;
              Some Lld_core.Op.Begin_aru
            end
          | `Block, Some (Lld_core.Op.R_aru a) ->
            aru := Some a;
            state := `Write;
            Some
              (Lld_core.Op.New_block
                 { aru = !aru; list = Option.get !list; pred = Summary.Head })
          | `Write, Some (Lld_core.Op.R_block b) ->
            state := `Wrote;
            Some
              (Lld_core.Op.Write
                 {
                   aru = !aru;
                   block = b;
                   data = Bytes.make block_bytes (Char.chr (tag land 0xff));
                 })
          | `Wrote, Some Lld_core.Op.R_unit ->
            decr blocks_left;
            if !blocks_left > 0 then begin
              state := `Write;
              Some
                (Lld_core.Op.New_block
                   { aru = !aru; list = Option.get !list; pred = Summary.Head })
            end
            else begin
              state := `Committed;
              Some (Lld_core.Op.End_aru (Option.get !aru))
            end
          | `Committed, Some Lld_core.Op.R_unit ->
            decr remaining;
            if !remaining = 0 then None
            else begin
              state := `Block;
              blocks_left := blocks_per_aru;
              Some Lld_core.Op.Begin_aru
            end
          | _ -> None
      in
      let t0 = Clock.now_ns clock in
      let io0 = Clock.total_ns clock Clock.Io in
      let stats =
        Shard_engine.run t (List.init clients (fun i -> client (i + 1)))
      in
      let elapsed = Clock.now_ns clock - t0 in
      let c = Shard.total_counters t in
      let commits = stats.Lld_core.Engine.commits in
      Array.iter Disk.close disks;
      {
        s1_shards = s;
        s1_commits = commits;
        s1_elapsed_ns = elapsed;
        s1_commits_per_sec =
          (if elapsed = 0 then 0.
           else float_of_int commits /. (float_of_int elapsed /. 1e9));
        s1_barriers = c.Counters.commit_barriers;
        s1_device_io_ns = Clock.total_ns clock Clock.Io - io0;
      })
    shards

(* The price of a cross-shard commit: P-1 Prepare barriers plus the
   coordinator's Decide — at most P+1 even counting a trailing
   propagation flush.  Measured as the commit-barrier delta per 2PC
   over a batch of P-participant ARUs on a 4-shard facade. *)
let sharded_cross_cost ?(participants = [ 2; 3; 4 ]) ?(arus = 20) () =
  let clock = Clock.create () in
  let disks = Array.init 4 (fun _ -> Disk.create ~clock s1_geom) in
  let t = Shard.create disks in
  (* the first four lists stripe onto four distinct shards; order them
     by home shard so [P] participants always include the lowest
     shard as coordinator *)
  let lists =
    List.init 4 (fun _ -> Shard.new_list t ())
    |> List.sort (fun a b ->
           Int.compare
             (Shard.list_shard ~shards:4 (Lld_core.Types.List_id.to_int a))
             (Shard.list_shard ~shards:4 (Lld_core.Types.List_id.to_int b)))
  in
  let data = Bytes.make (s1_geom.Geometry.block_bytes) 's' in
  let rows =
    List.map
      (fun p ->
        let c0 = Shard.total_counters t in
        let barriers0 = c0.Counters.commit_barriers in
        let cross0 = c0.Counters.cross_shard_commits in
        let prep0 = c0.Counters.prepare_barriers in
        for _ = 1 to arus do
          let aru = Shard.begin_aru t in
          List.iteri
            (fun i list ->
              if i < p then begin
                let b = Shard.new_block t ~aru ~list ~pred:Summary.Head () in
                Shard.write t ~aru b data
              end)
            lists;
          Shard.end_aru t aru
        done;
        let c1 = Shard.total_counters t in
        let cross = c1.Counters.cross_shard_commits - cross0 in
        let prepares = c1.Counters.prepare_barriers - prep0 in
        (* each 2PC pays its prepare seals plus exactly one decide seal
           (1:1 with cross_shard_commits); single-shard batch seals
           would show up in commit_barriers, which must stay flat *)
        let barriers =
          prepares + cross + (c1.Counters.commit_barriers - barriers0)
        in
        {
          s1_participants = p;
          s1_cross_commits = cross;
          s1_cross_barriers = barriers;
          s1_prepare_barriers = prepares;
          s1_barriers_per_cross =
            (if cross = 0 then 0.
             else float_of_int barriers /. float_of_int cross);
        })
      participants
  in
  Array.iter Disk.close disks;
  rows

(* The same deterministic op stream through a plain Lld and through a
   one-shard facade: global ids are the identity at S=1 and every call
   passes straight through, so the final disk images must be
   byte-identical. *)
let sharded_identity () =
  let stream (type h) (module Ld : Lld_core.Ld_intf.S with type t = h) (t : h)
      ~block_bytes =
    let list = Ld.new_list t () in
    for i = 1 to 8 do
      let aru = Ld.begin_aru t in
      let b = Ld.new_block t ~aru ~list ~pred:Summary.Head () in
      Ld.write t ~aru b (Bytes.make block_bytes (Char.chr (i land 0xff)));
      Ld.end_aru t aru
    done
  in
  let plain =
    let clock = Clock.create () in
    let disk = Disk.create ~clock s1_geom in
    let lld = Lld.create disk in
    stream (module Lld) lld ~block_bytes:(Lld.block_bytes lld);
    let image = Disk.snapshot disk in
    Disk.close disk;
    image
  in
  let sharded =
    let clock = Clock.create () in
    let disk = Disk.create ~clock s1_geom in
    let t = Shard.create [| disk |] in
    stream (module Shard) t ~block_bytes:(s1_geom.Geometry.block_bytes);
    let image = Disk.snapshot disk in
    Disk.close disk;
    image
  in
  Bytes.equal plain sharded

let sharded scale =
  {
    s1_rows = sharding scale;
    s1_cross = sharded_cross_cost ();
    s1_identical = sharded_identity ();
  }

let print_sharded ppf r =
  Report.table ppf
    ~title:
      "S1: sharded LLD — 8 clients of 64-block ARUs over S independent \
       segment logs (commits/s scales with spindles; device time does not \
       shrink, it overlaps)"
    ~header:
      [
        "shards"; "commits"; "elapsed (ms)"; "commits/s"; "barriers";
        "device io (ms)";
      ]
    (List.map
       (fun row ->
         [
           string_of_int row.s1_shards;
           string_of_int row.s1_commits;
           Report.f2 (float_of_int row.s1_elapsed_ns /. 1e6);
           Report.f1 row.s1_commits_per_sec;
           string_of_int row.s1_barriers;
           Report.f2 (float_of_int row.s1_device_io_ns /. 1e6);
         ])
       r.s1_rows);
  Report.table ppf
    ~title:
      "S1: cross-shard commit cost — barriers per P-participant 2PC on 4 \
       shards (P-1 prepares + 1 decide; gate: <= P+1)"
    ~header:
      [
        "participants"; "cross commits"; "barriers"; "prepare barriers";
        "barriers/commit";
      ]
    (List.map
       (fun row ->
         [
           string_of_int row.s1_participants;
           string_of_int row.s1_cross_commits;
           string_of_int row.s1_cross_barriers;
           string_of_int row.s1_prepare_barriers;
           Report.f2 row.s1_barriers_per_cross;
         ])
       r.s1_cross);
  Report.table ppf
    ~title:"S1: single-shard facade vs plain LLD (same op stream)"
    ~header:[ "quantity"; "identical" ]
    [ [ "final disk image"; (if r.s1_identical then "yes" else "NO") ] ]

(* ------------------------------------------------------------------ *)
(* X4: concurrency                                                     *)

type concurrency_result = {
  x4_interleaved : Concurrent.result;
  x4_serial : Concurrent.result;
}

let concurrency scale =
  let params = Concurrent.default in
  let run f =
    let _, lld = Setup.make_raw ~geom:scale.geom Setup.New in
    f lld params
  in
  {
    x4_interleaved = run Concurrent.run_interleaved;
    x4_serial = run Concurrent.run_serial;
  }

let print_concurrency ppf r =
  let row label (c : Concurrent.result) =
    [
      label;
      string_of_int c.Concurrent.ops;
      Report.f2 c.Concurrent.us_per_op;
      string_of_int c.Concurrent.record_creates;
      string_of_int c.Concurrent.mesh_hops;
    ]
  in
  Report.table ppf
    ~title:
      "X4: concurrent ARU streams, interleaved vs serial (same operations; \
       isolation machinery cost)"
    ~header:[ "schedule"; "ops"; "us/op"; "record creates"; "mesh hops" ]
    [
      row "interleaved" r.x4_interleaved;
      row "serial" r.x4_serial;
    ]

(* ------------------------------------------------------------------ *)
(* X5: mixed workload                                                  *)

type mixed_row = {
  x5_variant : Setup.variant;
  x5_result : Mixed.result;
}

let mixed_workload scale =
  let params =
    {
      Mixed.default with
      Mixed.dirs = max 4 (int_of_float (20. *. sqrt scale.files));
      files_per_dir = max 5 (int_of_float (25. *. sqrt scale.files));
    }
  in
  List.map
    (fun variant ->
      let inst = Setup.make ~geom:scale.geom variant in
      { x5_variant = variant; x5_result = Mixed.run inst params })
    Setup.all_variants

let print_mixed ppf rows =
  let old = List.find (fun r -> r.x5_variant = Setup.Old) rows in
  let phase_of r label =
    List.find (fun (p : Mixed.phase) -> p.Mixed.label = label) r.x5_result.Mixed.phases
  in
  let labels =
    List.map (fun (p : Mixed.phase) -> p.Mixed.label) old.x5_result.Mixed.phases
  in
  Report.table ppf
    ~title:"X5: Andrew-style mixed workload, operations/second (diff vs old)"
    ~header:("variant" :: labels)
    (List.map
       (fun r ->
         Setup.variant_label r.x5_variant
         :: List.map
              (fun label ->
                let p = phase_of r label in
                let base = (phase_of old label).Mixed.ops_per_sec in
                Printf.sprintf "%s (%s)"
                  (Report.f1 p.Mixed.ops_per_sec)
                  (Report.pct ~baseline:base p.Mixed.ops_per_sec))
              labels)
       rows)

(* ------------------------------------------------------------------ *)
(* W0: bandwidth context                                               *)

type bandwidth_row = {
  w0_label : string;
  w0_mb_per_sec : float;
  w0_fraction_of_raw : float;
}

let bandwidth_context scale =
  let geom = scale.geom in
  let mbytes =
    max 4 (int_of_float (78.125 *. scale.bytes))
  in
  let total = mbytes * 1024 * 1024 in
  let chunk = 64 * 1024 in
  let body = Bytes.make chunk 'w' in
  let mbps elapsed_ns =
    float_of_int total /. (1024. *. 1024.) /. (float_of_int elapsed_ns /. 1e9)
  in
  (* 100 % reference: back-to-back segment-sized writes on the raw
     device *)
  let raw =
    let clock = Clock.create () in
    let disk = Disk.create ~clock geom in
    let seg = geom.Lld_disk.Geometry.segment_bytes in
    let image = Bytes.make seg 'r' in
    let n = (total + seg - 1) / seg in
    for i = 0 to n - 1 do
      Disk.write disk ~offset:(i mod geom.Lld_disk.Geometry.num_segments * seg) image
    done;
    float_of_int (n * seg) /. (1024. *. 1024.)
    /. (float_of_int (Clock.now_ns clock) /. 1e9)
  in
  let via_lld variant =
    let inst = Setup.make ~geom ~inode_count:1024 variant in
    Fs.create inst.Setup.fs "/big";
    Clock.reset inst.Setup.clock;
    let off = ref 0 in
    while !off < total do
      Fs.write_file inst.Setup.fs "/big" ~off:!off body;
      off := !off + chunk
    done;
    Fs.flush inst.Setup.fs;
    mbps (Clock.now_ns inst.Setup.clock)
  in
  let via_classic () =
    let clock = Clock.create () in
    let disk = Disk.create ~clock geom in
    let fs = Lld_minixdisk.Classic.mkfs disk in
    Lld_minixdisk.Classic.create fs "big";
    Clock.reset clock;
    let off = ref 0 in
    while !off < total do
      Lld_minixdisk.Classic.write_file fs "big" ~off:!off body;
      off := !off + chunk
    done;
    Lld_minixdisk.Classic.flush fs;
    mbps (Clock.now_ns clock)
  in
  let row label mb = { w0_label = label; w0_mb_per_sec = mb; w0_fraction_of_raw = mb /. raw } in
  [
    row "raw device (reference)" raw;
    row "MinixLLD (new)" (via_lld Setup.New);
    row "MinixLLD (old)" (via_lld Setup.Old);
    row "classic Minix (in-place, sync meta)" (via_classic ());
  ]

let print_bandwidth ppf rows =
  Report.table ppf
    ~title:
      "W0: sequential-write bandwidth context (paper 2: MinixLLD ~85% of \
       bandwidth vs ~13% for Minix by itself)"
    ~header:[ "substrate"; "MB/s"; "% of raw" ]
    (List.map
       (fun r ->
         [
           r.w0_label;
           Report.f2 r.w0_mb_per_sec;
           Printf.sprintf "%.0f%%" (r.w0_fraction_of_raw *. 100.);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* X6: two Logical Disk implementations under one file system          *)

module Minix_on_jld = Lld_minixfs.Fs_generic.Make (Lld_jld.Jld)

type impl_row = { x6_impl : string; x6_phases : (string * float) list }

(* The file-system operations each substrate exposes, as closures so one
   driver measures both. *)
type fsops = {
  fo_create : string -> unit;
  fo_write : string -> off:int -> bytes -> unit;
  fo_read : string -> off:int -> len:int -> bytes;
  fo_unlink : string -> unit;
  fo_flush : unit -> unit;
  fo_clock : Clock.t;
}

let implementation_driver scale ops =
  let files = max 20 (int_of_float (2000. *. scale.files)) in
  let body = Bytes.make 1024 'x' in
  let phase label f =
    let t0 = Clock.now_ns ops.fo_clock in
    let n = f () in
    ( label,
      float_of_int n /. (float_of_int (Clock.now_ns ops.fo_clock - t0) /. 1e9) )
  in
  let small_cw =
    phase "create+write (f/s)" (fun () ->
        for i = 0 to files - 1 do
          let p = Printf.sprintf "/f%06d" i in
          ops.fo_create p;
          ops.fo_write p ~off:0 body
        done;
        ops.fo_flush ();
        files)
  in
  let small_r =
    phase "read (f/s)" (fun () ->
        for i = 0 to files - 1 do
          ignore (ops.fo_read (Printf.sprintf "/f%06d" i) ~off:0 ~len:1024)
        done;
        files)
  in
  let small_d =
    phase "delete (f/s)" (fun () ->
        for i = 0 to files - 1 do
          ops.fo_unlink (Printf.sprintf "/f%06d" i)
        done;
        ops.fo_flush ();
        files)
  in
  (* one large file: sequential write, random rewrite, sequential read *)
  let large_mb = max 2 (int_of_float (16. *. scale.bytes /. 0.05 *. 0.05)) in
  let total = large_mb * 1024 * 1024 in
  let chunk = Bytes.make 65536 'y' in
  ops.fo_create "/big";
  let mbs label f =
    let t0 = Clock.now_ns ops.fo_clock in
    f ();
    ( label,
      float_of_int total /. (1024. *. 1024.)
      /. (float_of_int (Clock.now_ns ops.fo_clock - t0) /. 1e9) )
  in
  let w1 =
    mbs "seq write (MB/s)" (fun () ->
        let off = ref 0 in
        while !off < total do
          ops.fo_write "/big" ~off:!off chunk;
          off := !off + 65536
        done;
        ops.fo_flush ())
  in
  let rng = Lld_sim.Rng.create ~seed:3 in
  let order = Array.init (total / 4096) Fun.id in
  Lld_sim.Rng.shuffle rng order;
  let blockb = Bytes.make 4096 'z' in
  let w2 =
    mbs "random write (MB/s)" (fun () ->
        Array.iter (fun i -> ops.fo_write "/big" ~off:(i * 4096) blockb) order;
        ops.fo_flush ())
  in
  let r3 =
    mbs "seq read after random write (MB/s)" (fun () ->
        let off = ref 0 in
        while !off < total do
          ignore (ops.fo_read "/big" ~off:!off ~len:65536);
          off := !off + 65536
        done)
  in
  [ small_cw; small_r; small_d; w1; w2; r3 ]

let implementation_comparison scale =
  let lld_ops =
    let inst = Setup.make ~geom:scale.geom Setup.New in
    {
      fo_create = Fs.create inst.Setup.fs;
      fo_write = Fs.write_file inst.Setup.fs;
      fo_read = Fs.read_file inst.Setup.fs;
      fo_unlink = Fs.unlink inst.Setup.fs;
      fo_flush = (fun () -> Fs.flush inst.Setup.fs);
      fo_clock = inst.Setup.clock;
    }
  in
  let jld_ops =
    let module F = Minix_on_jld.Fs_impl in
    let clock = Clock.create () in
    let disk = Disk.create ~clock scale.geom in
    let jld = Lld_jld.Jld.create disk in
    let fs = F.mkfs jld in
    Clock.reset clock;
    {
      fo_create = F.create fs;
      fo_write = F.write_file fs;
      fo_read = F.read_file fs;
      fo_unlink = F.unlink fs;
      fo_flush = (fun () -> F.flush fs);
      fo_clock = clock;
    }
  in
  [
    { x6_impl = "LLD (log-structured)"; x6_phases = implementation_driver scale lld_ops };
    { x6_impl = "JLD (in-place + journal)"; x6_phases = implementation_driver scale jld_ops };
  ]

let print_implementations ppf rows =
  match rows with
  | [] -> ()
  | first :: _ ->
    let labels = List.map fst first.x6_phases in
    Report.table ppf
      ~title:
        "X6: the same Minix file system on two LD implementations (paper \
         5.4: alternatives need a meta-data update log; layout drives the \
         trade-offs)"
      ~header:("implementation" :: labels)
      (List.map
         (fun r ->
           r.x6_impl
           :: List.map (fun (_, v) -> Report.f1 v) r.x6_phases)
         rows)

(* ------------------------------------------------------------------ *)
(* C1 — segment cleaning: victim policies and relocation I/O *)

type clean_row = {
  c1_policy : Config.clean_policy;
  c1_elapsed_ns : int;
  c1_counters : Counters.t;
}

let cleaning scale =
  let run policy =
    let geom = scale.geom in
    let clock = Clock.create () in
    let disk = Disk.create ~clock geom in
    let config = { Config.default with Config.clean_policy = policy } in
    let lld = Lld.create ~config disk in
    Lld.flush lld;
    Clock.reset clock;
    Counters.reset (Lld.counters lld);
    let bb = geom.Geometry.block_bytes in
    let bps = Geometry.blocks_per_segment geom in
    let list = Lld.new_list lld () in
    let hot = 4 * bps in
    let blocks =
      Array.init hot (fun _ -> Lld.new_block lld ~list ~pred:Summary.Head ())
    in
    let cold = 8 * bps in
    let cold_blocks =
      Array.init cold (fun _ -> Lld.new_block lld ~list ~pred:Summary.Head ())
    in
    let payload i pass =
      Bytes.make bb (Char.chr (33 + ((i + (7 * pass)) land 63)))
    in
    Array.iteri (fun i b -> Lld.write lld b (payload i 0)) blocks;
    (* Overwrite churn: each pass rewrites a strided subset of the hot
       set, leaving every log segment partially dead.  Writing about two
       logs' worth of segments wraps the log and forces the auto-cleaner
       to run repeatedly under the chosen policy.  Cold blocks are
       written exactly once, smeared evenly across the run, so victims
       keep a few live blocks and relocation actually copies data. *)
    let target = 2 * geom.Geometry.num_segments in
    let cold_interval = max 1 (target * bps / cold) in
    let next_cold = ref 0 in
    let hot_writes = ref 0 in
    let write_hot i pass =
      Lld.write lld blocks.(i) (payload i pass);
      incr hot_writes;
      if !hot_writes mod cold_interval = 0 && !next_cold < cold then begin
        Lld.write lld cold_blocks.(!next_cold) (payload !next_cold (-1));
        incr next_cold
      end
    in
    let pass = ref 0 in
    while (Lld.counters lld).Counters.segments_written < target do
      incr pass;
      let stride = 1 + (!pass mod 4) in
      let i = ref (!pass mod stride) in
      while !i < hot do
        write_hot !i !pass;
        i := !i + stride
      done;
      Lld.flush lld
    done;
    {
      c1_policy = policy;
      c1_elapsed_ns = Clock.now_ns clock;
      c1_counters = Counters.copy (Lld.counters lld);
    }
  in
  [ run Config.Greedy; run Config.Cost_benefit ]

let print_cleaning ppf rows =
  Report.table ppf
    ~title:
      "C1: segment cleaning under overwrite churn (relocation batches at \
       most one disk read per victim; victim selection scans segments, \
       not the block map)"
    ~header:
      [
        "policy";
        "cleaned";
        "copied";
        "disk reads";
        "reads/victim";
        "cache hits";
        "victim scans";
        "picks";
        "live-idx upd";
        "ms";
      ]
    (List.map
       (fun r ->
         let c = r.c1_counters in
         [
           Format.asprintf "%a" Config.pp_clean_policy r.c1_policy;
           string_of_int c.Counters.segments_cleaned;
           string_of_int c.Counters.blocks_copied_clean;
           string_of_int c.Counters.clean_disk_reads;
           (if c.Counters.segments_cleaned = 0 then "n/a"
            else
              Report.f2
                (float_of_int c.Counters.clean_disk_reads
                /. float_of_int c.Counters.segments_cleaned));
           string_of_int c.Counters.clean_cache_hits;
           string_of_int c.Counters.victim_scans;
           string_of_int c.Counters.clean_picks;
           string_of_int c.Counters.live_index_updates;
           Report.f1 (float_of_int r.c1_elapsed_ns /. 1e6);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* O1/O2 — observability: observer effect and ARU commit breakdown *)

type observability_result = {
  o1_counters_match : bool;
  o1_clock_match : bool;
  o1_plain_clock_ns : int;
  o1_traced_clock_ns : int;
  o1_trace_events : int;
  o1_metrics : Metrics.t;  (* gauges + histograms of the traced FS run *)
  o2_arus : int;
  o2_latency_us : float;
  o2_metrics : Metrics.t;  (* histograms incl. the aru.commit.* phases *)
}

(* O1 is the no-observer-effect guard: the same deterministic
   small-file workload runs twice — once with Obs.null, once under a
   live tracer — and the counters JSON and the final virtual clock must
   be byte-identical, because probes read the clock but never charge
   it.  O2 re-runs the paper's §5.3 empty-ARU churn under tracing and
   decomposes the 78.47 us commit figure into its phases. *)
let observability scale =
  let params = Smallfile.scaled Smallfile.paper_1k (0.1 *. scale.files) in
  let run ?clock ?obs () =
    let inst = Setup.make ~geom:scale.geom ?clock ?obs Setup.New in
    ignore (Smallfile.run inst params);
    ( Counters.to_json_string (Lld.counters inst.Setup.lld),
      Clock.now_ns inst.Setup.clock )
  in
  let plain_counters, plain_clock = run () in
  let clock = Clock.create () in
  let obs = Obs.create ~clock () in
  let traced_counters, traced_clock = run ~clock ~obs () in
  let o2_count =
    max 1_000
      (int_of_float
         (float_of_int Aru_churn.paper.Aru_churn.count *. scale.arus *. 0.02))
  in
  let churn_clock = Clock.create () in
  let churn_obs = Obs.create ~clock:churn_clock () in
  let _, lld =
    Setup.make_raw ~geom:scale.geom ~clock:churn_clock ~obs:churn_obs
      Setup.New
  in
  let churn = Aru_churn.run lld { Aru_churn.count = o2_count } in
  {
    o1_counters_match = String.equal plain_counters traced_counters;
    o1_clock_match = plain_clock = traced_clock;
    o1_plain_clock_ns = plain_clock;
    o1_traced_clock_ns = traced_clock;
    o1_trace_events = Trace.count (Obs.trace obs);
    o1_metrics = Obs.metrics obs;
    o2_arus = churn.Aru_churn.count;
    o2_latency_us = churn.Aru_churn.latency_us;
    o2_metrics = Obs.metrics churn_obs;
  }

let commit_breakdown_keys =
  [
    "op.begin_aru";
    "op.end_aru";
    "aru.commit.replay_log";
    "aru.commit.merge_shadow";
    "aru.commit.record";
    "aru.commit.queue_wait";
    "aru.commit.batch_residency";
    "aru.commit.barrier";
    "aru.commit.wake";
    "disk.write";
  ]

let hist_table_rows metrics keys =
  List.filter_map
    (fun key ->
      match Metrics.find_histogram metrics key with
      | None -> None
      | Some h when Histogram.count h = 0 -> None
      | Some h ->
        let us ns = Report.f2 (float_of_int ns /. 1e3) in
        Some
          [
            key;
            string_of_int (Histogram.count h);
            Report.f2 (Histogram.mean h /. 1e3);
            us (Histogram.p50 h);
            us (Histogram.p95 h);
            us (Histogram.p99 h);
          ])
    keys

let print_observability ppf r =
  Report.table ppf
    ~title:
      "O1: observer effect — identical small-file run with tracing off vs \
       on (probes read the virtual clock, never charge it)"
    ~header:[ "quantity"; "untraced"; "traced"; "identical" ]
    [
      [
        "counters JSON";
        "(baseline)";
        "(compared)";
        (if r.o1_counters_match then "yes" else "NO");
      ];
      [
        "final virtual clock (ns)";
        string_of_int r.o1_plain_clock_ns;
        string_of_int r.o1_traced_clock_ns;
        (if r.o1_clock_match then "yes" else "NO");
      ];
      [ "trace events recorded"; "0"; string_of_int r.o1_trace_events; "-" ];
    ];
  Report.table ppf
    ~title:
      (Printf.sprintf
         "O2: ARU commit span breakdown over %d empty Begin/End pairs — \
          measured %.2f us/ARU (paper 5.3: 78.47 us)"
         r.o2_arus r.o2_latency_us)
    ~header:[ "span"; "count"; "mean (us)"; "p50"; "p95"; "p99" ]
    (hist_table_rows r.o2_metrics commit_breakdown_keys)

(* ------------------------------------------------------------------ *)
(* O3 — the always-on flight recorder has no observer effect either *)

type flight_effect_result = {
  o3_clock_match : bool;
  o3_counters_match : bool;
  o3_image_match : bool;
  o3_flight_events : int;
}

(* The black box must be safe to leave on in production (LLD_FLIGHT=1):
   the same deterministic small-file workload runs once against
   Obs.null and once with a flight-only handle, and the final disk
   image, the operation counters, and the virtual clock must be
   byte-identical — the ring records, it never charges. *)
let flight_effect scale =
  let params = Smallfile.scaled Smallfile.paper_1k (0.05 *. scale.files) in
  let run ?clock ?obs () =
    let backend =
      Lld_disk.Backend.mem ~size:(Geometry.total_bytes scale.geom)
    in
    let inst = Setup.make ~geom:scale.geom ?clock ?obs ~backend Setup.New in
    ignore (Smallfile.run inst params);
    Fs.flush inst.Setup.fs;
    let image = Disk.snapshot inst.Setup.disk in
    let counters = Counters.to_json_string (Lld.counters inst.Setup.lld) in
    let ns = Clock.now_ns inst.Setup.clock in
    Disk.close inst.Setup.disk;
    (image, counters, ns)
  in
  let p_image, p_counters, p_ns = run () in
  let clock = Clock.create () in
  let obs = Obs.flight_only ~clock () in
  let f_image, f_counters, f_ns = run ~clock ~obs () in
  {
    o3_clock_match = p_ns = f_ns;
    o3_counters_match = String.equal p_counters f_counters;
    o3_image_match = Bytes.equal p_image f_image;
    o3_flight_events = Lld_obs.Flight.count (Obs.flight obs);
  }

let print_flight_effect ppf r =
  Report.table ppf
    ~title:
      "O3: flight-recorder observer effect — identical run against Obs.null \
       vs the always-on black box (LLD_FLIGHT=1 semantics)"
    ~header:[ "quantity"; "identical" ]
    [
      [ "final disk image"; (if r.o3_image_match then "yes" else "NO") ];
      [ "counters JSON"; (if r.o3_counters_match then "yes" else "NO") ];
      [ "final virtual clock"; (if r.o3_clock_match then "yes" else "NO") ];
      [ "flight events recorded"; string_of_int r.o3_flight_events ];
    ]

(* ------------------------------------------------------------------ *)
(* B1 — backend transparency: Mem vs File at identical virtual cost *)

type backend_row = {
  b1_backend : string;
  b1_wall_s : float;  (* host wall-clock: the real price of durability *)
  b1_virtual_ns : int;  (* simulated time: must not depend on the store *)
  b1_counters_json : string;
  b1_files_per_sec : float;
}

type backend_result = {
  b1_rows : backend_row list;
  b1_clock_match : bool;
  b1_counters_match : bool;
}

(* The §2 transparency claim one layer down: the same deterministic
   small-file workload on the in-memory store and on a real file image.
   Wall-clock may differ (that is what the file backend buys and pays
   for); the virtual clock and the logical-disk counters must not. *)
let backend_comparison scale =
  let params = Smallfile.scaled Smallfile.paper_1k (0.1 *. scale.files) in
  let run make_backend =
    let backend = make_backend (Geometry.total_bytes scale.geom) in
    let t0 = Unix.gettimeofday () in
    let inst = Setup.make ~geom:scale.geom ~backend Setup.New in
    let result = Smallfile.run inst params in
    let wall = Unix.gettimeofday () -. t0 in
    let row =
      {
        b1_backend = Disk.backend_label inst.Setup.disk;
        b1_wall_s = wall;
        b1_virtual_ns = Clock.now_ns inst.Setup.clock;
        b1_counters_json = Counters.to_json_string (Lld.counters inst.Setup.lld);
        b1_files_per_sec =
          result.Smallfile.create_write.Smallfile.files_per_sec;
      }
    in
    Disk.close inst.Setup.disk;
    row
  in
  let mem = run (fun size -> Lld_disk.Backend.mem ~size) in
  let file = run (fun size -> Lld_disk.Backend.temp_file ~size ()) in
  {
    b1_rows = [ mem; file ];
    b1_clock_match = mem.b1_virtual_ns = file.b1_virtual_ns;
    b1_counters_match = String.equal mem.b1_counters_json file.b1_counters_json;
  }

let print_backend ppf r =
  Report.table ppf
    ~title:
      "B1: storage-backend transparency — same workload on mem vs file \
       (paper 2: implementations exchange without the client noticing; \
       wall-clock differs, virtual clock must not)"
    ~header:
      [ "backend"; "wall (s)"; "virtual (s)"; "create+write f/s"; "identical" ]
    (List.map
       (fun row ->
         [
           row.b1_backend;
           Report.f2 row.b1_wall_s;
           Report.f2 (float_of_int row.b1_virtual_ns /. 1e9);
           Report.f1 row.b1_files_per_sec;
           (if r.b1_clock_match && r.b1_counters_match then "yes" else "NO");
         ])
       r.b1_rows)

(* ------------------------------------------------------------------ *)

type check = { ck_name : string; ck_ok : bool; ck_detail : string }

let finite v = Float.is_finite v && v > 0.

(* Sanity gates over the reproduced artifacts: not exact numbers (the
   virtual clock is calibrated, not cycle-accurate) but the directional
   claims each table/figure exists to demonstrate.  A regression that
   silently zeroes a phase or inverts a trade-off fails the run. *)
let checks ~f5 ~f6 ~l1 ~x3 ~r1 ~g1 ~g2 ~z1 ~s1 ~w0 ~c1 ~ob ~o3 ~b1 =
  let all_f5_phases =
    List.concat_map
      (fun r ->
        let res = r.f5_result in
        [
          res.Smallfile.create_write.Smallfile.files_per_sec;
          res.Smallfile.read.Smallfile.files_per_sec;
          res.Smallfile.delete.Smallfile.files_per_sec;
        ])
      f5
  in
  let all_f6_phases =
    List.concat_map
      (fun r ->
        List.map
          (fun (p : Largefile.phase) -> p.Largefile.mb_per_sec)
          (Largefile.phases r.f6_result))
      f6
  in
  let x2_ok, x2_detail =
    (* improved deletion must not search more than standard deletion *)
    let hops variant p =
      let r =
        List.find
          (fun r ->
            r.f5_variant = variant && r.f5_result.Smallfile.params = p)
          f5
      in
      r.f5_result.Smallfile.delete.Smallfile.pred_search_hops
    in
    let params =
      List.sort_uniq compare
        (List.map (fun r -> r.f5_result.Smallfile.params) f5)
    in
    let pairs =
      List.map (fun p -> (hops Setup.New_delete p, hops Setup.New p)) params
    in
    ( List.for_all (fun (nd, n) -> nd <= n) pairs,
      String.concat "; "
        (List.map
           (fun (nd, n) -> Printf.sprintf "new-delete %d vs new %d hops" nd n)
           pairs) )
  in
  let x3_ok, x3_detail =
    match x3 with
    | [ uncheckpointed; checkpointed ] ->
      ( checkpointed.x3_report.Recovery.segments_replayed
        <= uncheckpointed.x3_report.Recovery.segments_replayed,
        Printf.sprintf "replayed %d (ckpt) vs %d (no ckpt)"
          checkpointed.x3_report.Recovery.segments_replayed
          uncheckpointed.x3_report.Recovery.segments_replayed )
    | _ -> (false, "expected exactly two recovery rows")
  in
  let r1_flat_ok, r1_flat_detail =
    let times = List.map (fun r -> float_of_int r.r1_recovery_ns) r1 in
    let mn = List.fold_left Float.min Float.infinity times in
    let mx = List.fold_left Float.max 0. times in
    let segs = List.map (fun r -> r.r1_log_segments) r1 in
    ( r1 <> [] && mx <= 1.2 *. mn,
      Printf.sprintf "recovery %.3f..%.3f ms over %d..%d log segments"
        (mn /. 1e6) (mx /. 1e6)
        (List.fold_left min max_int segs)
        (List.fold_left max 0 segs) )
  in
  let r1_replay_ok, r1_replay_detail =
    ( r1 <> []
      && List.for_all (fun r -> r.r1_replayed <= r.r1_dirty_segments + 1) r1,
      String.concat "; "
        (List.map
           (fun r ->
             Printf.sprintf "%d replayed / %d dirty (%d skipped)" r.r1_replayed
               r.r1_dirty_segments r.r1_skipped)
           r1) )
  in
  let g1_row n = List.find_opt (fun r -> r.g1_clients = n) g1 in
  let g1_scaling_ok, g1_scaling_detail =
    match (g1_row 1, g1_row 8) with
    | Some one, Some eight ->
      ( eight.g1_commits_per_sec >= 3.0 *. one.g1_commits_per_sec,
        Printf.sprintf "%.1f commits/s at 8 clients vs %.1f at 1 (%.2fx)"
          eight.g1_commits_per_sec one.g1_commits_per_sec
          (eight.g1_commits_per_sec /. one.g1_commits_per_sec) )
    | _ -> (false, "1- or 8-client row missing")
  in
  let g1_barrier_ok, g1_barrier_detail =
    match g1_row 8 with
    | Some eight ->
      ( eight.g1_barriers_per_commit < 0.5,
        Printf.sprintf "%.3f barriers/commit, mean batch %.2f"
          eight.g1_barriers_per_commit eight.g1_mean_batch )
    | None -> (false, "8-client row missing")
  in
  let g2_ok, g2_detail =
    (* with one client batches only close on the window; with 8+ the
       size close fires first, so every member's queue wait shrinks *)
    let row n = List.find_opt (fun r -> r.g2_clients = n) g2 in
    match (row 1, row 8, row 16) with
    | Some one, Some eight, Some sixteen ->
      ( eight.g2_queue_wait_p99_us < one.g2_queue_wait_p99_us
        && sixteen.g2_queue_wait_p99_us < one.g2_queue_wait_p99_us,
        Printf.sprintf "queue-wait p99: %.1f us @1, %.1f us @8, %.1f us @16"
          one.g2_queue_wait_p99_us eight.g2_queue_wait_p99_us
          sixteen.g2_queue_wait_p99_us )
    | _ -> (false, "1-, 8- or 16-client row missing")
  in
  let s1_row n = List.find_opt (fun r -> r.s1_shards = n) s1.s1_rows in
  let s1_scaling_ok, s1_scaling_detail =
    match (s1_row 1, s1_row 4) with
    | Some one, Some four ->
      ( four.s1_commits_per_sec >= 2.0 *. one.s1_commits_per_sec,
        Printf.sprintf "%.1f commits/s on 4 shards vs %.1f on 1 (%.2fx)"
          four.s1_commits_per_sec one.s1_commits_per_sec
          (four.s1_commits_per_sec /. one.s1_commits_per_sec) )
    | _ -> (false, "1- or 4-shard row missing")
  in
  let s1_cross_ok, s1_cross_detail =
    ( s1.s1_cross <> []
      && List.for_all
           (fun r ->
             r.s1_cross_commits > 0
             && r.s1_barriers_per_cross
                <= float_of_int (r.s1_participants + 1))
           s1.s1_cross,
      String.concat "; "
        (List.map
           (fun r ->
             Printf.sprintf "P=%d: %.2f barriers/commit" r.s1_participants
               r.s1_barriers_per_cross)
           s1.s1_cross) )
  in
  let w0_ok, w0_detail =
    let frac label =
      List.find_opt (fun r -> r.w0_label = label) w0
      |> Option.map (fun r -> r.w0_fraction_of_raw)
    in
    match (frac "MinixLLD (new)", frac "classic Minix (in-place, sync meta)") with
    | Some lld, Some classic ->
      ( lld > classic,
        Printf.sprintf "MinixLLD %.0f%% vs classic %.0f%% of raw" (lld *. 100.)
          (classic *. 100.) )
    | _ -> (false, "bandwidth rows missing")
  in
  [
    {
      ck_name = "F5: small-file throughputs positive and finite";
      ck_ok = List.for_all finite all_f5_phases;
      ck_detail = Printf.sprintf "%d phases" (List.length all_f5_phases);
    };
    {
      ck_name = "F6: large-file throughputs positive and finite";
      ck_ok = List.for_all finite all_f6_phases;
      ck_detail = Printf.sprintf "%d phases" (List.length all_f6_phases);
    };
    {
      ck_name = "L1: ARU latency measurable, log written";
      ck_ok = finite l1.Aru_churn.latency_us && l1.Aru_churn.segments_written > 0;
      ck_detail =
        Printf.sprintf "%.2f us/ARU, %d segments" l1.Aru_churn.latency_us
          l1.Aru_churn.segments_written;
    };
    {
      ck_name = "X2: improved deletion avoids predecessor searches";
      ck_ok = x2_ok;
      ck_detail = x2_detail;
    };
    {
      ck_name = "X3: checkpoints bound replay";
      ck_ok = x3_ok;
      ck_detail = x3_detail;
    };
    {
      ck_name = "R1: restart cost flat in log length (O(dirty), +-20%)";
      ck_ok = r1_flat_ok;
      ck_detail = r1_flat_detail;
    };
    {
      ck_name = "R1: checkpointed recovery replays at most dirty+1 segments";
      ck_ok = r1_replay_ok;
      ck_detail = r1_replay_detail;
    };
    {
      ck_name = "G1: group commit scales (8 clients >= 3x 1-client commits/s)";
      ck_ok = g1_scaling_ok;
      ck_detail = g1_scaling_detail;
    };
    {
      ck_name = "G1: barriers amortized (< 0.5 barriers/commit at 8 clients)";
      ck_ok = g1_barrier_ok;
      ck_detail = g1_barrier_detail;
    };
    {
      ck_name = "G2: queue-wait p99 shrinks as clients fill batches";
      ck_ok = g2_ok;
      ck_detail = g2_detail;
    };
    (let bytes_row = List.find_opt (fun r -> r.z1_api = "bytes") z1 in
     let view_row = List.find_opt (fun r -> r.z1_api = "view") z1 in
     match (bytes_row, view_row) with
     | Some b, Some v ->
       {
         ck_name = "Z1: view API copies strictly fewer bytes than bytes API";
         ck_ok =
           v.z1_copied_per_op < b.z1_copied_per_op
           && v.z1_elisions_per_op > 0.;
         ck_detail =
           Printf.sprintf
             "bytes %.0f B/op vs view %.0f B/op (%.2f elisions/op)"
             b.z1_copied_per_op v.z1_copied_per_op v.z1_elisions_per_op;
       }
     | _ ->
       {
         ck_name = "Z1: view API copies strictly fewer bytes than bytes API";
         ck_ok = false;
         ck_detail = "missing Z1 rows";
       });
    {
      ck_name = "S1: sharded throughput scales (4 shards >= 2x 1 shard at 8 clients)";
      ck_ok = s1_scaling_ok;
      ck_detail = s1_scaling_detail;
    };
    {
      ck_name = "S1: cross-shard commit costs at most P+1 barriers";
      ck_ok = s1_cross_ok;
      ck_detail = s1_cross_detail;
    };
    {
      ck_name = "S1: single-shard facade bit-identical to plain LLD";
      ck_ok = s1.s1_identical;
      ck_detail =
        (if s1.s1_identical then "disk images byte-equal"
         else "disk images DIFFER");
    };
    {
      ck_name = "W0: MinixLLD beats in-place Minix on write bandwidth";
      ck_ok = w0_ok;
      ck_detail = w0_detail;
    };
    {
      ck_name = "C1: cleaner ran and relocation batched reads (<=1/victim)";
      ck_ok =
        List.for_all
          (fun r ->
            let c = r.c1_counters in
            c.Counters.segments_cleaned > 0
            && c.Counters.clean_disk_reads <= c.Counters.segments_cleaned)
          c1;
      ck_detail =
        String.concat "; "
          (List.map
             (fun r ->
               Format.asprintf "%a: %d reads / %d cleaned"
                 Config.pp_clean_policy r.c1_policy
                 r.c1_counters.Counters.clean_disk_reads
                 r.c1_counters.Counters.segments_cleaned)
             c1);
    };
    {
      ck_name = "O1: tracing has no observer effect";
      ck_ok =
        ob.o1_counters_match && ob.o1_clock_match && ob.o1_trace_events > 0;
      ck_detail =
        Printf.sprintf
          "counters %s, clock %s (%d ns), %d events traced"
          (if ob.o1_counters_match then "identical" else "DIFFER")
          (if ob.o1_clock_match then "identical" else "DIFFERS")
          ob.o1_traced_clock_ns ob.o1_trace_events;
    };
    {
      ck_name = "B1: mem and file backends charge identical virtual time";
      ck_ok = b1.b1_clock_match && b1.b1_counters_match;
      ck_detail =
        String.concat "; "
          (List.map
             (fun row ->
               Printf.sprintf "%s: %d ns virtual, %.2f s wall"
                 (if String.length row.b1_backend >= 4
                     && String.sub row.b1_backend 0 4 = "file"
                  then "file"
                  else row.b1_backend)
                 row.b1_virtual_ns row.b1_wall_s)
             b1.b1_rows);
    };
    {
      ck_name = "O3: flight recorder has no observer effect";
      ck_ok =
        o3.o3_clock_match && o3.o3_counters_match && o3.o3_image_match
        && o3.o3_flight_events > 0;
      ck_detail =
        Printf.sprintf "image %s, counters %s, clock %s, %d flight events"
          (if o3.o3_image_match then "identical" else "DIFFERS")
          (if o3.o3_counters_match then "identical" else "DIFFER")
          (if o3.o3_clock_match then "identical" else "DIFFERS")
          o3.o3_flight_events;
    };
    {
      ck_name = "O2: commit phases instrumented for every ARU";
      ck_ok =
        (match Metrics.find_histogram ob.o2_metrics "aru.commit.record" with
        | Some h -> Histogram.count h = ob.o2_arus
        | None -> false);
      ck_detail =
        Printf.sprintf "%d commit-record spans for %d ARUs"
          (match Metrics.find_histogram ob.o2_metrics "aru.commit.record" with
          | Some h -> Histogram.count h
          | None -> 0)
          ob.o2_arus;
    };
  ]

let print_checks ppf cks =
  Report.table ppf ~title:"Reproduction checks"
    ~header:[ "check"; "status"; "detail" ]
    (List.map
       (fun c ->
         [ c.ck_name; (if c.ck_ok then "ok" else "FAIL"); c.ck_detail ])
       cks)

(* JSON projections of the main artifacts (the bench trajectory file). *)

let json_of_check c =
  Report.Obj
    [
      ("name", Report.String c.ck_name);
      ("ok", Report.Bool c.ck_ok);
      ("detail", Report.String c.ck_detail);
    ]

let json_of_f5 rows =
  Report.List
    (List.map
       (fun r ->
         let ph (p : Smallfile.phase) = Report.Float p.Smallfile.files_per_sec in
         Report.Obj
           [
             ("workload", Report.String (size_label r.f5_result.Smallfile.params));
             ("variant", Report.String (Setup.variant_label r.f5_variant));
             ("create_write_files_per_sec", ph r.f5_result.Smallfile.create_write);
             ("read_files_per_sec", ph r.f5_result.Smallfile.read);
             ("delete_files_per_sec", ph r.f5_result.Smallfile.delete);
           ])
       rows)

let json_of_f6 rows =
  let labels = [ "write1"; "read1"; "write2"; "read2"; "read3" ] in
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           (("variant", Report.String (Setup.variant_label r.f6_variant))
           :: List.map2
                (fun label (p : Largefile.phase) ->
                  (label ^ "_mb_per_sec", Report.Float p.Largefile.mb_per_sec))
                labels
                (Largefile.phases r.f6_result)))
       rows)

let json_of_l1 (r : Aru_churn.result) =
  Report.Obj
    [
      ("arus", Report.Int r.Aru_churn.count);
      ("latency_us", Report.Float r.Aru_churn.latency_us);
      ("segments_written", Report.Int r.Aru_churn.segments_written);
    ]

let json_of_x3 rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("files_written", Report.Int r.x3_files_written);
             ("crash_after_segments", Report.Int r.x3_crash_after_segments);
             ("recovery_ns", Report.Int r.x3_recovery_ns);
             ( "segments_replayed",
               Report.Int r.x3_report.Recovery.segments_replayed );
           ])
       rows)

let json_of_r1 rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("churn_rounds", Report.Int r.r1_churn_rounds);
             ("log_segments", Report.Int r.r1_log_segments);
             ("dirty_segments", Report.Int r.r1_dirty_segments);
             ("recovery_ns", Report.Int r.r1_recovery_ns);
             ("segments_replayed", Report.Int r.r1_replayed);
             ("segments_skipped", Report.Int r.r1_skipped);
           ])
       rows)

let json_of_g1 rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("clients", Report.Int r.g1_clients);
             ("commits", Report.Int r.g1_commits);
             ("elapsed_ns", Report.Int r.g1_elapsed_ns);
             ("commits_per_sec", Report.Float r.g1_commits_per_sec);
             ("commit_barriers", Report.Int r.g1_barriers);
             ("commit_batches", Report.Int r.g1_batches);
             ("barriers_per_commit", Report.Float r.g1_barriers_per_commit);
             ("mean_batch", Report.Float r.g1_mean_batch);
           ])
       rows)

let json_of_g2 rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("clients", Report.Int r.g2_clients);
             ("commits", Report.Int r.g2_commits);
             ("queue_wait_p50_us", Report.Float r.g2_queue_wait_p50_us);
             ("queue_wait_p99_us", Report.Float r.g2_queue_wait_p99_us);
             ("barrier_p50_us", Report.Float r.g2_barrier_p50_us);
             ("barrier_p99_us", Report.Float r.g2_barrier_p99_us);
             ("wake_p50_us", Report.Float r.g2_wake_p50_us);
             ("wake_p99_us", Report.Float r.g2_wake_p99_us);
             ("mean_batch", Report.Float r.g2_mean_batch);
           ])
       rows)

let json_of_z1 rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("api", Report.String r.z1_api);
             ("commits", Report.Int r.z1_commits);
             ("copied_bytes_per_op", Report.Float r.z1_copied_per_op);
             ("elisions_per_op", Report.Float r.z1_elisions_per_op);
             ("write_p50_us", Report.Float r.z1_write_p50_us);
             ("write_p99_us", Report.Float r.z1_write_p99_us);
             ("commit_p50_us", Report.Float r.z1_commit_p50_us);
             ("commit_p99_us", Report.Float r.z1_commit_p99_us);
           ])
       rows)

let json_of_s1 r =
  Report.Obj
    [
      ( "rows",
        Report.List
          (List.map
             (fun row ->
               Report.Obj
                 [
                   ("shards", Report.Int row.s1_shards);
                   ("commits", Report.Int row.s1_commits);
                   ("elapsed_ns", Report.Int row.s1_elapsed_ns);
                   ("commits_per_sec", Report.Float row.s1_commits_per_sec);
                   ("commit_barriers", Report.Int row.s1_barriers);
                   ("device_io_ns", Report.Int row.s1_device_io_ns);
                 ])
             r.s1_rows) );
      ( "cross",
        Report.List
          (List.map
             (fun row ->
               Report.Obj
                 [
                   ("participants", Report.Int row.s1_participants);
                   ("cross_commits", Report.Int row.s1_cross_commits);
                   ("commit_barriers", Report.Int row.s1_cross_barriers);
                   ("prepare_barriers", Report.Int row.s1_prepare_barriers);
                   ( "barriers_per_commit",
                     Report.Float row.s1_barriers_per_cross );
                 ])
             r.s1_cross) );
      ("single_shard_identical", Report.Bool r.s1_identical);
    ]

let json_of_flight_effect r =
  Report.Obj
    [
      ("clock_match", Report.Bool r.o3_clock_match);
      ("counters_match", Report.Bool r.o3_counters_match);
      ("image_match", Report.Bool r.o3_image_match);
      ("flight_events", Report.Int r.o3_flight_events);
    ]

let json_of_w0 rows =
  Report.List
    (List.map
       (fun r ->
         Report.Obj
           [
             ("substrate", Report.String r.w0_label);
             ("mb_per_sec", Report.Float r.w0_mb_per_sec);
             ("fraction_of_raw", Report.Float r.w0_fraction_of_raw);
           ])
       rows)

let json_of_c1 rows =
  Report.List
    (List.map
       (fun r ->
         let c = r.c1_counters in
         Report.Obj
           [
             ( "policy",
               Report.String
                 (Format.asprintf "%a" Config.pp_clean_policy r.c1_policy) );
             ("segments_cleaned", Report.Int c.Counters.segments_cleaned);
             ("blocks_copied", Report.Int c.Counters.blocks_copied_clean);
             ("relocation_disk_reads", Report.Int c.Counters.clean_disk_reads);
             ("relocation_cache_hits", Report.Int c.Counters.clean_cache_hits);
             ("victim_scans", Report.Int c.Counters.victim_scans);
             ("policy_picks", Report.Int c.Counters.clean_picks);
             ("live_index_updates", Report.Int c.Counters.live_index_updates);
             ("elapsed_ns", Report.Int r.c1_elapsed_ns);
           ])
       rows)

let json_of_histogram h =
  if Histogram.count h = 0 then Report.Obj [ ("count", Report.Int 0) ]
  else
    Report.Obj
      [
        ("count", Report.Int (Histogram.count h));
        ("sum_ns", Report.Int (Histogram.sum h));
        ("min_ns", Report.Int (Histogram.min_ns h));
        ("max_ns", Report.Int (Histogram.max_ns h));
        ("mean_ns", Report.Float (Histogram.mean h));
        ("p50_ns", Report.Int (Histogram.p50 h));
        ("p95_ns", Report.Int (Histogram.p95 h));
        ("p99_ns", Report.Int (Histogram.p99 h));
      ]

let json_of_metrics m =
  Report.Obj
    [
      ( "gauges",
        Report.Obj
          (List.map
             (fun (name, v, _help) -> (name, Report.Int v))
             (Metrics.sample_gauges m)) );
      ( "histograms",
        Report.Obj
          (List.map
             (fun (name, h) -> (name, json_of_histogram h))
             (Metrics.histograms m)) );
    ]

let json_of_backend r =
  Report.Obj
    [
      ("clock_match", Report.Bool r.b1_clock_match);
      ("counters_match", Report.Bool r.b1_counters_match);
      ( "rows",
        Report.List
          (List.map
             (fun row ->
               Report.Obj
                 [
                   ("backend", Report.String row.b1_backend);
                   ("wall_seconds", Report.Float row.b1_wall_s);
                   ("virtual_ns", Report.Int row.b1_virtual_ns);
                   ( "create_write_files_per_sec",
                     Report.Float row.b1_files_per_sec );
                 ])
             r.b1_rows) );
    ]

let json_of_observability r =
  Report.Obj
    [
      ( "observer_effect",
        Report.Obj
          [
            ("counters_match", Report.Bool r.o1_counters_match);
            ("clock_match", Report.Bool r.o1_clock_match);
            ("traced_clock_ns", Report.Int r.o1_traced_clock_ns);
            ("trace_events", Report.Int r.o1_trace_events);
          ] );
      ("smallfile", json_of_metrics r.o1_metrics);
      ( "aru_churn",
        Report.Obj
          [
            ("arus", Report.Int r.o2_arus);
            ("latency_us", Report.Float r.o2_latency_us);
            ( "histograms",
              Report.Obj
                (List.map
                   (fun (name, h) -> (name, json_of_histogram h))
                   (Metrics.histograms r.o2_metrics)) );
          ] );
    ]

let run_all_json ppf scale =
  Format.fprintf ppf
    "=== Atomic Recovery Units reproduction: %s scale ===@."
    (if scale.files >= 1.0 then "full (paper)" else "reduced");
  let f5 = figure5 scale in
  print_figure5 ppf f5;
  let f6 = figure6 scale in
  print_figure6 ppf f6;
  let l1 = aru_latency scale in
  print_aru_latency ppf l1;
  print_summary ppf f5;
  print_visibility ppf (visibility_ablation scale);
  print_delete_ablation ppf f5;
  let x3 = recovery_cost scale in
  print_recovery ppf x3;
  let r1 = restart_cost scale in
  print_restart_cost ppf r1;
  let g1 = group_commit scale in
  print_group_commit ppf g1;
  let g2 = group_commit_stages scale in
  print_group_commit_stages ppf g2;
  let z1 = zero_copy scale in
  print_zero_copy ppf z1;
  let s1 = sharded scale in
  print_sharded ppf s1;
  print_concurrency ppf (concurrency scale);
  print_mixed ppf (mixed_workload scale);
  print_implementations ppf (implementation_comparison scale);
  let w0 = bandwidth_context scale in
  print_bandwidth ppf w0;
  let c1 = cleaning scale in
  print_cleaning ppf c1;
  let ob = observability scale in
  print_observability ppf ob;
  let o3 = flight_effect scale in
  print_flight_effect ppf o3;
  let b1 = backend_comparison scale in
  print_backend ppf b1;
  let cks = checks ~f5 ~f6 ~l1 ~x3 ~r1 ~g1 ~g2 ~z1 ~s1 ~w0 ~c1 ~ob ~o3 ~b1 in
  print_checks ppf cks;
  Format.fprintf ppf "@.";
  let json =
    Report.Obj
      [
        ("schema", Report.String "lld-bench/1");
        ( "scale",
          Report.Obj
            [
              ("files", Report.Float scale.files);
              ("bytes", Report.Float scale.bytes);
              ("arus", Report.Float scale.arus);
              ("num_segments", Report.Int scale.geom.Geometry.num_segments);
              ("segment_bytes", Report.Int scale.geom.Geometry.segment_bytes);
            ] );
        ("figure5", json_of_f5 f5);
        ("figure6", json_of_f6 f6);
        ("aru_latency", json_of_l1 l1);
        ("recovery", json_of_x3 x3);
        ("r1", json_of_r1 r1);
        ("g1", json_of_g1 g1);
        ("g2", json_of_g2 g2);
        ("z1", json_of_z1 z1);
        ("s1", json_of_s1 s1);
        ("bandwidth", json_of_w0 w0);
        ("cleaning", json_of_c1 c1);
        ("observability", json_of_observability ob);
        ("o3", json_of_flight_effect o3);
        ("backend", json_of_backend b1);
        ("checks", Report.List (List.map json_of_check cks));
      ]
  in
  (cks, json)

let run_all_checked ppf scale = fst (run_all_json ppf scale)
let run_all ppf scale = ignore (run_all_checked ppf scale)
