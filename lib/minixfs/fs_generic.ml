(* The Minix-like file system and its consistency checker, as a functor
   over the Logical Disk signature: the same client runs unchanged on
   the log-structured implementation (Lld) and on any alternative
   implementation of Lld_core.Ld_intf.S — the interchangeability the
   paper claims for LD (2).  The user-facing modules Fs and Fsck are
   one shared application of this functor to Lld (see minix_make.ml);
   lib/jld applies it to the journaling implementation. *)

module Types = Lld_core.Types
module Vec = Lld_util.Vec
module Summary = Lld_core.Summary
module Errors = Lld_core.Errors

module Make (Ld : Lld_core.Ld_intf.S) = struct
  module Fs_impl = struct

    type aru_policy = No_arus | Per_operation
    type delete_policy = Blocks_first | List_direct
    type config = { aru_policy : aru_policy; delete_policy : delete_policy }

    let config_old = { aru_policy = No_arus; delete_policy = Blocks_first }
    let config_new = { aru_policy = Per_operation; delete_policy = Blocks_first }

    let config_new_delete =
      { aru_policy = Per_operation; delete_policy = List_direct }

    type stat = { ino : int; kind : Layout.kind; size : int; nlinks : int }

    exception Not_found_path of string
    exception Already_exists of string
    exception Not_a_directory of string
    exception Is_a_directory of string
    exception Directory_not_empty of string
    exception Invalid_name of string
    exception Out_of_inodes

    (* Per-directory in-memory state: name -> (ino, byte offset of the
       dirent), plus the free dirent slots within the current size. *)
    type dir_state = {
      entries : (string, int * int) Hashtbl.t;
      mutable free_slots : int list;
    }

    type t = {
      lld : Ld.t;
      config : config;
      sb : Superblock.t;
      sb_block : Types.Block_id.t;
      inode_blocks : Types.Block_id.t array;
      mutable free_inodes : int list;
      findex : (int, Types.Block_id.t Vec.t) Hashtbl.t;
      dcache : (int, dir_state) Hashtbl.t;
    }

    let lld t = t.lld
    let superblock t = t.sb
    let flush t = Ld.flush t.lld
    let bb = Layout.block_bytes

    (* The Minix file-system code path itself costs CPU (path resolution,
       dirent scanning) on the simulated testbed; it is charged once per
       public operation and is identical across LLD variants. *)
    let charge_op t =
      Lld_sim.Clock.charge (Ld.clock t.lld) Lld_sim.Clock.Cpu
        (Ld.cost_model t.lld).Lld_sim.Cost.fs_op_ns

    (* Public operation prologue: charge the FS CPU cost and, when an
       observability handle is attached to the logical disk, time the
       whole operation as an [fs] span / "fs.<name>" histogram. *)
    let fs_op t name f =
      Lld_obs.Obs.timed (Ld.obs t.lld) Lld_obs.Trace.Fs name (fun () ->
          charge_op t;
          f ())

    (* ------------------------------------------------------------------ *)
    (* ARU bracketing                                                      *)

    let with_aru t f =
      match t.config.aru_policy with
      | No_arus -> f None
      | Per_operation -> (
        let a = Ld.begin_aru t.lld in
        match f (Some a) with
        | v ->
          Ld.end_aru t.lld a;
          v
        | exception e ->
          (* undo what we can and drop caches that may reflect the ARU's
             shadow state *)
          (try Ld.abort_aru t.lld a with Invalid_argument _ -> ());
          Hashtbl.reset t.findex;
          Hashtbl.reset t.dcache;
          raise e)

    (* ------------------------------------------------------------------ *)
    (* Inodes                                                              *)

    let check_ino t ino =
      if ino < Layout.root_ino || ino >= t.sb.Superblock.inode_count then
        raise (Errors.Corrupt (Printf.sprintf "inode %d out of range" ino))

    let read_inode_aru t ?aru ino =
      check_ino t ino;
      let block = t.inode_blocks.(Inode.block_of_ino ino) in
      Inode.read (Ld.read t.lld ?aru block) ~index:(Inode.index_of_ino ino)

    let write_inode_aru t ?aru ino inode =
      check_ino t ino;
      let block = t.inode_blocks.(Inode.block_of_ino ino) in
      let data = Ld.read t.lld ?aru block in
      Inode.write data ~index:(Inode.index_of_ino ino) inode;
      Ld.write t.lld ?aru block data

    let read_inode t ino = read_inode_aru t ino

    let alloc_inode t =
      match t.free_inodes with
      | [] -> raise Out_of_inodes
      | ino :: rest ->
        t.free_inodes <- rest;
        ino

    let release_inode t ino = t.free_inodes <- ino :: t.free_inodes

    (* ------------------------------------------------------------------ *)
    (* File block index                                                    *)

    let file_blocks t ?aru (inode : Inode.t) ino =
      match Hashtbl.find_opt t.findex ino with
      | Some blocks -> blocks
      | None ->
        let blocks =
          match inode.Inode.list with
          | None -> Vec.create ()
          | Some l -> Vec.of_list (Ld.list_blocks t.lld ?aru l)
        in
        Hashtbl.replace t.findex ino blocks;
        blocks

    let invalidate_file t ino = Hashtbl.remove t.findex ino

    (* ------------------------------------------------------------------ *)
    (* File I/O by inode                                                   *)

    let file_read_ino t ?aru ino ~off ~len =
      let inode = read_inode_aru t ?aru ino in
      if off < 0 || len < 0 then invalid_arg "Fs.read_file: negative offset/length";
      let len = max 0 (min len (inode.Inode.size - off)) in
      if len = 0 then Bytes.empty
      else begin
        let blocks = file_blocks t ?aru inode ino in
        let out = Bytes.make len '\000' in
        let pos = ref off in
        while !pos < off + len do
          let bi = !pos / bb in
          let boff = !pos mod bb in
          let n = min (bb - boff) (off + len - !pos) in
          (if bi < Vec.length blocks then
             let data = Ld.read t.lld ?aru (Vec.get blocks bi) in
             Bytes.blit data boff out (!pos - off) n);
          pos := !pos + n
        done;
        out
      end

    (* Extend the file's list so it holds [needed] blocks (fresh blocks
       read as zeroes).  A block's index within the file is its position on
       the list, so even "holes" must be backed by allocated blocks. *)
    let ensure_blocks t ?aru (inode : Inode.t) ino needed =
      let list =
        match inode.Inode.list with
        | Some l -> l
        | None -> raise (Errors.Corrupt (Printf.sprintf "inode %d has no list" ino))
      in
      let blocks = file_blocks t ?aru inode ino in
      while Vec.length blocks < needed do
        let pred =
          match Vec.last blocks with
          | None -> Summary.Head
          | Some b -> Summary.After b
        in
        let b = Ld.new_block t.lld ?aru ~list ~pred () in
        Vec.push blocks b
      done;
      blocks

    let file_write_ino t ?aru ino ~off data =
      if off < 0 then invalid_arg "Fs.write_file: negative offset";
      let len = Bytes.length data in
      let inode = read_inode_aru t ?aru ino in
      let needed = (off + len + bb - 1) / bb in
      let blocks = ensure_blocks t ?aru inode ino needed in
      let pos = ref 0 in
      while !pos < len do
        let abs = off + !pos in
        let bi = abs / bb in
        let boff = abs mod bb in
        let n = min (bb - boff) (len - !pos) in
        let block = Vec.get blocks bi in
        if n = bb then begin
          (* full-block overwrite: no read-modify-write *)
          Ld.write t.lld ?aru block (Bytes.sub data !pos bb)
        end
        else begin
          let cur = Ld.read t.lld ?aru block in
          Bytes.blit data !pos cur boff n;
          Ld.write t.lld ?aru block cur
        end;
        pos := !pos + n
      done;
      if off + len > inode.Inode.size then
        write_inode_aru t ?aru ino { inode with Inode.size = off + len }

    (* ------------------------------------------------------------------ *)
    (* Directories                                                         *)

    let dir_state t ?aru dino =
      match Hashtbl.find_opt t.dcache dino with
      | Some st -> st
      | None ->
        let inode = read_inode_aru t ?aru dino in
        let data = file_read_ino t ?aru dino ~off:0 ~len:inode.Inode.size in
        let st = { entries = Hashtbl.create 64; free_slots = [] } in
        let off = ref 0 in
        while !off + Layout.dirent_bytes <= Bytes.length data do
          (match Dirent.read data ~off:!off with
          | Some e -> Hashtbl.replace st.entries e.Dirent.name (e.Dirent.ino, !off)
          | None -> st.free_slots <- !off :: st.free_slots);
          off := !off + Layout.dirent_bytes
        done;
        Hashtbl.replace t.dcache dino st;
        st

    let dir_lookup t ?aru dino name =
      let st = dir_state t ?aru dino in
      Hashtbl.find_opt st.entries name

    let dirent_bytes_of e =
      let b = Bytes.make Layout.dirent_bytes '\000' in
      Dirent.write b ~off:0 e;
      b

    let dir_add t ?aru dino name ino =
      let st = dir_state t ?aru dino in
      let off =
        match st.free_slots with
        | o :: rest ->
          st.free_slots <- rest;
          o
        | [] -> (read_inode_aru t ?aru dino).Inode.size
      in
      file_write_ino t ?aru dino ~off (dirent_bytes_of { Dirent.ino; name });
      Hashtbl.replace st.entries name (ino, off)

    let dir_remove t ?aru dino name =
      let st = dir_state t ?aru dino in
      match Hashtbl.find_opt st.entries name with
      | None -> raise (Not_found_path name)
      | Some (_, off) ->
        file_write_ino t ?aru dino ~off (Bytes.make Layout.dirent_bytes '\000');
        Hashtbl.remove st.entries name;
        st.free_slots <- off :: st.free_slots

    let dir_is_empty t ?aru dino =
      Hashtbl.length (dir_state t ?aru dino).entries = 0

    (* ------------------------------------------------------------------ *)
    (* Paths                                                               *)

    let split_path path =
      if String.length path = 0 || path.[0] <> '/' then
        raise (Invalid_name path);
      List.filter (fun s -> s <> "") (String.split_on_char '/' path)

    (* Resolve to the inode number, following directories. *)
    let resolve t ?aru path =
      let rec walk ino = function
        | [] -> ino
        | name :: rest -> (
          let inode = read_inode_aru t ?aru ino in
          if inode.Inode.kind <> Layout.Directory then raise (Not_a_directory path);
          match dir_lookup t ?aru ino name with
          | None -> raise (Not_found_path path)
          | Some (child, _) -> walk child rest)
      in
      walk Layout.root_ino (split_path path)

    (* Resolve to (parent directory inode, leaf name). *)
    let resolve_parent t ?aru path =
      match List.rev (split_path path) with
      | [] -> raise (Invalid_name path)
      | name :: rev_dirs ->
        if not (Dirent.valid_name name) then raise (Invalid_name path);
        let rec walk ino = function
          | [] -> ino
          | n :: rest -> (
            let inode = read_inode_aru t ?aru ino in
            if inode.Inode.kind <> Layout.Directory then
              raise (Not_a_directory path);
            match dir_lookup t ?aru ino n with
            | None -> raise (Not_found_path path)
            | Some (child, _) -> walk child rest)
        in
        let dino = walk Layout.root_ino (List.rev rev_dirs) in
        (* the leaf's parent itself must be a directory, not just the
           interior components *)
        if (read_inode_aru t ?aru dino).Inode.kind <> Layout.Directory then
          raise (Not_a_directory path);
        (dino, name)

    (* ------------------------------------------------------------------ *)
    (* Operations                                                          *)

    let create_node t op path kind =
      fs_op t op @@ fun () ->
      let dino, name = resolve_parent t path in
      if dir_lookup t dino name <> None then raise (Already_exists path);
      with_aru t (fun aru ->
          let ino = alloc_inode t in
          let list = Ld.new_list t.lld ?aru () in
          write_inode_aru t ?aru ino
            { Inode.kind; nlinks = 1; size = 0; list = Some list };
          dir_add t ?aru dino name ino)

    let create t path = create_node t "create" path Layout.Regular
    let mkdir t path = create_node t "mkdir" path Layout.Directory

    let delete_file_blocks t ?aru (inode : Inode.t) =
      match inode.Inode.list with
      | None -> ()
      | Some list -> (
        match t.config.delete_policy with
        | List_direct -> Ld.delete_list t.lld ?aru list
        | Blocks_first ->
          (* the naive MinixLLD policy: deallocate each block, then the
             emptied list.  Deallocating in reverse list order makes every
             deallocation search the remaining list for a predecessor —
             exactly the cost the paper's improved deletion avoids (§5.3). *)
          let blocks = Ld.list_blocks t.lld ?aru list in
          List.iter (fun b -> Ld.delete_block t.lld ?aru b) (List.rev blocks);
          Ld.delete_list t.lld ?aru list)

    (* Free the in-memory state of an inode that lost its last link. *)
    let forget_inode t ino =
      invalidate_file t ino;
      Hashtbl.remove t.dcache ino;
      release_inode t ino

    (* Remove one directory entry to the inode; deallocate the file only
       when this was its last link.  Returns whether the inode was freed. *)
    let drop_link t ?aru ~dino ~name ~ino (inode : Inode.t) =
      dir_remove t ?aru dino name;
      if inode.Inode.kind = Layout.Regular && inode.Inode.nlinks > 1 then begin
        write_inode_aru t ?aru ino
          { inode with Inode.nlinks = inode.Inode.nlinks - 1 };
        false
      end
      else begin
        delete_file_blocks t ?aru inode;
        write_inode_aru t ?aru ino Inode.free;
        true
      end

    let unlink_node t op path expect_dir =
      fs_op t op @@ fun () ->
      let dino, name = resolve_parent t path in
      let ino =
        match dir_lookup t dino name with
        | None -> raise (Not_found_path path)
        | Some (ino, _) -> ino
      in
      let inode = read_inode_aru t ino in
      (match (inode.Inode.kind, expect_dir) with
      | Layout.Directory, false -> raise (Is_a_directory path)
      | Layout.Regular, true -> raise (Not_a_directory path)
      | Layout.Free, _ ->
        raise (Errors.Corrupt (Printf.sprintf "dirent to free inode %d" ino))
      | Layout.Directory, true | Layout.Regular, false -> ());
      if expect_dir && not (dir_is_empty t ino) then
        raise (Directory_not_empty path);
      let freed = with_aru t (fun aru -> drop_link t ?aru ~dino ~name ~ino inode) in
      if freed then forget_inode t ino

    let unlink t path = unlink_node t "unlink" path false
    let rmdir t path = unlink_node t "rmdir" path true

    let rename t src dst =
      fs_op t "rename" @@ fun () ->
      let sdino, sname = resolve_parent t src in
      let sino =
        match dir_lookup t sdino sname with
        | None -> raise (Not_found_path src)
        | Some (ino, _) -> ino
      in
      let sinode = read_inode_aru t sino in
      let ddino, dname = resolve_parent t dst in
      if sdino = ddino && sname = dname then () (* rename to itself: no-op *)
      else begin
      let replaced =
        match dir_lookup t ddino dname with
        | None -> None
        | Some (rino, _) ->
          let rinode = read_inode_aru t rino in
          (match (rinode.Inode.kind, sinode.Inode.kind) with
          | Layout.Directory, (Layout.Regular | Layout.Directory | Layout.Free) ->
            raise (Is_a_directory dst)
          | (Layout.Regular | Layout.Free), Layout.Directory ->
            raise (Already_exists dst)
          | Layout.Free, (Layout.Regular | Layout.Free) ->
            raise (Errors.Corrupt (Printf.sprintf "dirent to free inode %d" rino))
          | Layout.Regular, (Layout.Regular | Layout.Free) -> Some (rino, rinode))
      in
      match replaced with
        | Some (rino, _) when rino = sino ->
          (* both names link the same file: POSIX says do nothing *)
          ()
        | _ ->
          (* a directory must not move into its own subtree *)
          (if sinode.Inode.kind = Layout.Directory then begin
             let rec is_strict_prefix a b =
               match (a, b) with
               | [], _ :: _ -> true
               | x :: a', y :: b' -> String.equal x y && is_strict_prefix a' b'
               | _, [] -> false
             in
             if is_strict_prefix (split_path src) (split_path dst) then
               raise (Invalid_name dst)
           end);
          let freed_replacement =
            with_aru t (fun aru ->
                dir_remove t ?aru sdino sname;
                let freed =
                  match replaced with
                  | Some (rino, rinode) ->
                    if drop_link t ?aru ~dino:ddino ~name:dname ~ino:rino rinode
                    then Some rino
                    else None
                  | None -> None
                in
                dir_add t ?aru ddino dname sino;
                freed)
          in
          (match freed_replacement with
          | Some rino -> forget_inode t rino
          | None -> ())
      end

    let link t existing fresh =
      fs_op t "link" @@ fun () ->
      let ino = resolve t existing in
      let inode = read_inode_aru t ino in
      (match inode.Inode.kind with
      | Layout.Directory -> raise (Is_a_directory existing)
      | Layout.Free ->
        raise (Errors.Corrupt (Printf.sprintf "resolved to free inode %d" ino))
      | Layout.Regular -> ());
      let dino, name = resolve_parent t fresh in
      if dir_lookup t dino name <> None then raise (Already_exists fresh);
      with_aru t (fun aru ->
          dir_add t ?aru dino name ino;
          write_inode_aru t ?aru ino
            { inode with Inode.nlinks = inode.Inode.nlinks + 1 })

    let truncate t path ~size =
      fs_op t "truncate" @@ fun () ->
      if size < 0 then invalid_arg "Fs.truncate: negative size";
      let ino = resolve t path in
      let inode = read_inode_aru t ino in
      if inode.Inode.kind = Layout.Directory then raise (Is_a_directory path);
      if size <> inode.Inode.size then
        with_aru t (fun aru ->
            let needed = (size + bb - 1) / bb in
            (if size < inode.Inode.size then begin
               let blocks = file_blocks t ?aru inode ino in
               for i = Vec.length blocks - 1 downto needed do
                 Ld.delete_block t.lld ?aru (Vec.get blocks i)
               done;
               Vec.truncate blocks needed;
               (* zero the cut tail so a later extension reads zeroes *)
               let tail = size mod bb in
               if tail <> 0 && needed > 0 then begin
                 let last = Vec.get blocks (needed - 1) in
                 let data = Ld.read t.lld ?aru last in
                 Bytes.fill data tail (bb - tail) '\000';
                 Ld.write t.lld ?aru last data
               end
             end
             else
               (* a block's file position is its list position: extensions
                  are backed by real (zero-reading) blocks *)
               ignore (ensure_blocks t ?aru inode ino needed));
            write_inode_aru t ?aru ino { inode with Inode.size = size })

    let write_file t path ~off data =
      fs_op t "write_file" @@ fun () ->
      let ino = resolve t path in
      let inode = read_inode_aru t ino in
      if inode.Inode.kind = Layout.Directory then raise (Is_a_directory path);
      file_write_ino t ino ~off data

    let read_file t path ~off ~len =
      fs_op t "read_file" @@ fun () ->
      let ino = resolve t path in
      let inode = read_inode_aru t ino in
      if inode.Inode.kind = Layout.Directory then raise (Is_a_directory path);
      file_read_ino t ino ~off ~len

    let readdir t path =
      fs_op t "readdir" @@ fun () ->
      let ino = resolve t path in
      let inode = read_inode_aru t ino in
      if inode.Inode.kind <> Layout.Directory then raise (Not_a_directory path);
      let st = dir_state t ino in
      Hashtbl.fold (fun name _ acc -> name :: acc) st.entries []
      |> List.sort String.compare

    let stat t path =
      fs_op t "stat" @@ fun () ->
      let ino = resolve t path in
      let inode = read_inode_aru t ino in
      {
        ino;
        kind = inode.Inode.kind;
        size = inode.Inode.size;
        nlinks = inode.Inode.nlinks;
      }

    let exists t path =
      match resolve t path with
      | _ -> true
      | exception (Not_found_path _ | Not_a_directory _) -> false

    (* ------------------------------------------------------------------ *)
    (* Formatting and mounting                                             *)

    let default_inode_count lld =
      min 65536 (max 1024 (Ld.capacity lld / 6))

    let scan_free_inodes t =
      let free = ref [] in
      let cached = Array.map (fun b -> lazy (Ld.read t.lld b)) t.inode_blocks in
      for ino = t.sb.Superblock.inode_count - 1 downto Layout.root_ino + 1 do
        let data = Lazy.force cached.(Inode.block_of_ino ino) in
        let inode = Inode.read data ~index:(Inode.index_of_ino ino) in
        if inode.Inode.kind = Layout.Free then free := ino :: !free
      done;
      t.free_inodes <- !free

    let mkfs ?(config = config_new) ?inode_count lld =
      let inode_count =
        match inode_count with Some n -> min n 65536 | None -> default_inode_count lld
      in
      (* list 1: the superblock; list 2: the inode table *)
      let sb_list = Ld.new_list lld () in
      let sb_block = Ld.new_block lld ~list:sb_list ~pred:Summary.Head () in
      let inode_list = Ld.new_list lld () in
      let inode_block_count =
        (inode_count + Layout.inodes_per_block - 1) / Layout.inodes_per_block
      in
      let inode_blocks = Array.make inode_block_count sb_block in
      let pred = ref Summary.Head in
      for i = 0 to inode_block_count - 1 do
        let b = Ld.new_block lld ~list:inode_list ~pred:!pred () in
        inode_blocks.(i) <- b;
        pred := Summary.After b
      done;
      let sb =
        { Superblock.inode_count; inode_list; root_ino = Layout.root_ino }
      in
      Ld.write lld sb_block (Superblock.encode sb);
      let t =
        {
          lld;
          config;
          sb;
          sb_block;
          inode_blocks;
          free_inodes = [];
          findex = Hashtbl.create 256;
          dcache = Hashtbl.create 64;
        }
      in
      (* the root directory *)
      let root_list = Ld.new_list lld () in
      write_inode_aru t Layout.root_ino
        { Inode.kind = Layout.Directory; nlinks = 1; size = 0; list = Some root_list };
      Ld.flush lld;
      t.free_inodes <-
        List.init (inode_count - Layout.root_ino - 1) (fun i -> i + Layout.root_ino + 1);
      t

    let mount ?(config = config_new) lld =
      let sb_list = Types.List_id.of_int 1 in
      if not (Ld.list_exists lld sb_list) then
        raise (Errors.Corrupt "no superblock list");
      let sb_block =
        match Ld.list_blocks lld sb_list with
        | b :: _ -> b
        | [] -> raise (Errors.Corrupt "superblock list is empty")
      in
      let sb = Superblock.decode (Ld.read lld sb_block) in
      let inode_blocks = Array.of_list (Ld.list_blocks lld sb.Superblock.inode_list) in
      let expected =
        (sb.Superblock.inode_count + Layout.inodes_per_block - 1)
        / Layout.inodes_per_block
      in
      if Array.length inode_blocks <> expected then
        raise
          (Errors.Corrupt
             (Printf.sprintf "inode table has %d blocks, expected %d"
                (Array.length inode_blocks) expected));
      let t =
        {
          lld;
          config;
          sb;
          sb_block;
          inode_blocks;
          free_inodes = [];
          findex = Hashtbl.create 256;
          dcache = Hashtbl.create 64;
        }
      in
      scan_free_inodes t;
      t

    (* ------------------------------------------------------------------ *)
    (* Interfaces for fsck                                                 *)

    let iter_inodes t f =
      let cached = Array.map (fun b -> lazy (Ld.read t.lld b)) t.inode_blocks in
      for ino = Layout.root_ino to t.sb.Superblock.inode_count - 1 do
        let data = Lazy.force cached.(Inode.block_of_ino ino) in
        f ino (Inode.read data ~index:(Inode.index_of_ino ino))
      done

    let dir_entries t dino =
      let inode = read_inode_aru t dino in
      let data = file_read_ino t dino ~off:0 ~len:inode.Inode.size in
      let acc = ref [] in
      let off = ref 0 in
      while !off + Layout.dirent_bytes <= Bytes.length data do
        (match Dirent.read data ~off:!off with
        | Some e -> acc := e :: !acc
        | None -> ());
        off := !off + Layout.dirent_bytes
      done;
      List.rev !acc

    (* ------------------------------------------------------------------ *)
    (* Repair hooks                                                        *)

    let repair_remove_dirent t ~dir name = dir_remove t dir name

    let repair_free_inode t ino =
      let inode = read_inode_aru t ino in
      if inode.Inode.kind <> Layout.Free then begin
        (match inode.Inode.list with
        | Some l when Ld.list_exists t.lld l -> Ld.delete_list t.lld l
        | Some _ | None -> ());
        write_inode_aru t ino Inode.free;
        invalidate_file t ino;
        Hashtbl.remove t.dcache ino;
        release_inode t ino
      end

    let repair_set_nlinks t ino n =
      let inode = read_inode_aru t ino in
      if inode.Inode.kind <> Layout.Free then
        write_inode_aru t ino { inode with Inode.nlinks = n }

  end

  module Fsck_impl = struct

    type problem =
      | Dangling_dirent of { dir : int; name : string; ino : int }
      | Inode_without_list of { ino : int }
      | Shared_list of { list : int; inos : int list }
      | Size_mismatch of { ino : int; size : int; blocks : int }
      | Unreachable_inode of { ino : int }
      | Bad_nlinks of { ino : int; nlinks : int; refs : int }
      | Orphan_list of { list : int }
      | Orphan_block of { block : int }

    let pp_problem ppf = function
      | Dangling_dirent { dir; name; ino } ->
        Format.fprintf ppf "dangling dirent %S in dir inode %d -> free inode %d"
          name dir ino
      | Inode_without_list { ino } ->
        Format.fprintf ppf "inode %d references a non-existent list" ino
      | Shared_list { list; inos } ->
        Format.fprintf ppf "list %d shared by inodes %a" list
          Fmt.(Dump.list int) inos
      | Size_mismatch { ino; size; blocks } ->
        Format.fprintf ppf "inode %d: size %d inconsistent with %d blocks" ino size
          blocks
      | Unreachable_inode { ino } ->
        Format.fprintf ppf "inode %d allocated but unreachable from /" ino
      | Bad_nlinks { ino; nlinks; refs } ->
        Format.fprintf ppf "inode %d: nlinks %d but %d directory entries" ino
          nlinks refs
      | Orphan_list { list } ->
        Format.fprintf ppf "list %d exists but no file references it" list
      | Orphan_block { block } ->
        Format.fprintf ppf "block %d allocated but on no list" block

    type report = {
      problems : problem list;
      checked_inodes : int;
      checked_lists : int;
      repaired : int;
    }

    let ok r = r.problems = []

    let pp_report ppf r =
      if ok r then
        Format.fprintf ppf "clean (%d inodes, %d lists checked)" r.checked_inodes
          r.checked_lists
      else
        Format.fprintf ppf "@[<v>%d problem(s) (%d repaired):@,%a@]"
          (List.length r.problems) r.repaired
          (Format.pp_print_list pp_problem)
          r.problems

    let run ?(repair = false) fs =
      let lld = Fs_impl.lld fs in
      let sb = Fs_impl.superblock fs in
      let problems = ref [] in
      let repaired = ref 0 in
      let note p = problems := p :: !problems in
      let fix f =
        if repair then begin
          f ();
          incr repaired
        end
      in
      (* 1. inode-level checks: lists exist, are unshared, sizes match *)
      let list_owner = Hashtbl.create 256 in
      let allocated = Hashtbl.create 256 in
      let checked_inodes = ref 0 in
      Fs_impl.iter_inodes fs (fun ino inode ->
          incr checked_inodes;
          match inode.Inode.kind with
          | Layout.Free -> ()
          | Layout.Regular | Layout.Directory -> (
            Hashtbl.replace allocated ino inode;
            match inode.Inode.list with
            | None -> note (Inode_without_list { ino })
            | Some l ->
              if not (Ld.list_exists lld l) then note (Inode_without_list { ino })
              else begin
                let key = Types.List_id.to_int l in
                (match Hashtbl.find_opt list_owner key with
                | Some prev ->
                  note (Shared_list { list = key; inos = [ prev; ino ] })
                | None -> Hashtbl.replace list_owner key ino);
                let blocks = List.length (Ld.list_blocks lld l) in
                let needed =
                  (inode.Inode.size + Layout.block_bytes - 1) / Layout.block_bytes
                in
                (* trailing blocks beyond the recorded size are benign:
                   plain writes are not bracketed in ARUs (paper §5.1), so a
                   crash between a block append and the inode-size update
                   leaves an extra block that reads never see and deletion
                   frees.  Fewer blocks than the size claims is data loss. *)
                if blocks < needed then
                  note (Size_mismatch { ino; size = inode.Inode.size; blocks })
              end));
      (* 2. directory walk: dirents valid, reachability, link counts *)
      let reachable = Hashtbl.create 256 in
      let refs = Hashtbl.create 256 in
      Hashtbl.replace reachable Layout.root_ino ();
      let rec walk dino =
        List.iter
          (fun (e : Dirent.t) ->
            let ino = e.Dirent.ino in
            match Hashtbl.find_opt allocated ino with
            | None ->
              note (Dangling_dirent { dir = dino; name = e.Dirent.name; ino })
            | Some inode ->
              Hashtbl.replace refs ino
                (1 + Option.value ~default:0 (Hashtbl.find_opt refs ino));
              if not (Hashtbl.mem reachable ino) then begin
                Hashtbl.replace reachable ino ();
                if inode.Inode.kind = Layout.Directory then walk ino
              end)
          (Fs_impl.dir_entries fs dino)
      in
      (match Hashtbl.find_opt allocated Layout.root_ino with
      | Some _ -> walk Layout.root_ino
      | None -> note (Unreachable_inode { ino = Layout.root_ino }));
      Hashtbl.iter
        (fun ino (inode : Inode.t) ->
          if not (Hashtbl.mem reachable ino) then note (Unreachable_inode { ino })
          else if inode.Inode.kind = Layout.Regular then begin
            let r = Option.value ~default:0 (Hashtbl.find_opt refs ino) in
            if r <> inode.Inode.nlinks then
              note (Bad_nlinks { ino; nlinks = inode.Inode.nlinks; refs = r })
          end)
        allocated;
      (* 3. LD-level checks: every list belongs to the fs, no orphan blocks *)
      let fs_lists = Hashtbl.create 256 in
      Hashtbl.replace fs_lists 1 () (* the superblock list *);
      Hashtbl.replace fs_lists (Types.List_id.to_int sb.Superblock.inode_list) ();
      Hashtbl.iter (fun l _ -> Hashtbl.replace fs_lists l ()) list_owner;
      let checked_lists = ref 0 in
      List.iter
        (fun l ->
          incr checked_lists;
          let key = Types.List_id.to_int l in
          if not (Hashtbl.mem fs_lists key) then begin
            note (Orphan_list { list = key });
            fix (fun () -> Ld.delete_list lld l)
          end)
        (Ld.lists lld);
      List.iter
        (fun b -> note (Orphan_block { block = Types.Block_id.to_int b }))
        (Ld.orphan_blocks lld);
      if repair then repaired := !repaired + Ld.scavenge lld;
      (* 4. repairs that need the full problem list *)
      if repair then
        List.iter
          (function
            | Dangling_dirent { dir; name; _ } ->
              Fs_impl.repair_remove_dirent fs ~dir name;
              incr repaired
            | Unreachable_inode { ino } when ino <> Layout.root_ino ->
              Fs_impl.repair_free_inode fs ino;
              incr repaired
            | Inode_without_list { ino } ->
              Fs_impl.repair_free_inode fs ino;
              incr repaired
            | Bad_nlinks { ino; refs; _ } ->
              Fs_impl.repair_set_nlinks fs ino refs;
              incr repaired
            | Unreachable_inode _ | Shared_list _ | Size_mismatch _
            | Orphan_list _ | Orphan_block _ ->
              ())
          !problems;
      {
        problems = List.rev !problems;
        checked_inodes = !checked_inodes;
        checked_lists = !checked_lists;
        repaired = !repaired;
      }

  end
end
