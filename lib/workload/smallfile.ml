module Clock = Lld_sim.Clock
module Stats = Lld_sim.Stats
module Lld = Lld_core.Lld
module Counters = Lld_core.Counters
module Fs = Lld_minixfs.Fs

type params = { file_count : int; file_bytes : int; dirs : int }

let paper_1k = { file_count = 10_000; file_bytes = 1_024; dirs = 1 }
let paper_10k = { file_count = 1_000; file_bytes = 10_240; dirs = 1 }

let scaled p f =
  { p with file_count = max 1 (int_of_float (float_of_int p.file_count *. f)) }

type phase = {
  files : int;
  elapsed_ns : int;
  files_per_sec : float;
  pred_search_hops : int;
}

type result = {
  params : params;
  create_write : phase;
  read : phase;
  delete : phase;
}

let path p i =
  if p.dirs <= 1 then Printf.sprintf "/f%06d" i
  else Printf.sprintf "/d%03d/f%06d" (i mod p.dirs) i

let measure_phase inst f =
  let clock = inst.Setup.clock in
  let counters = Lld.counters inst.Setup.lld in
  let t0 = Clock.now_ns clock in
  let hops0 = counters.Counters.pred_search_hops in
  let files = f () in
  let elapsed_ns = Clock.now_ns clock - t0 in
  {
    files;
    elapsed_ns;
    files_per_sec = Stats.throughput ~work:(float_of_int files) ~elapsed_ns;
    pred_search_hops = counters.Counters.pred_search_hops - hops0;
  }

let run inst p =
  let fs = inst.Setup.fs in
  if p.dirs > 1 then
    for d = 0 to p.dirs - 1 do
      Fs.mkdir fs (Printf.sprintf "/d%03d" d)
    done;
  let body = Bytes.init p.file_bytes (fun i -> Char.chr (i land 0xff)) in
  let create_write =
    measure_phase inst (fun () ->
        for i = 0 to p.file_count - 1 do
          let path = path p i in
          Fs.create fs path;
          Fs.write_file fs path ~off:0 body
        done;
        Fs.flush fs;
        p.file_count)
  in
  let read =
    measure_phase inst (fun () ->
        for i = 0 to p.file_count - 1 do
          let got = Fs.read_file fs (path p i) ~off:0 ~len:p.file_bytes in
          assert (Bytes.length got = p.file_bytes)
        done;
        p.file_count)
  in
  let delete =
    measure_phase inst (fun () ->
        for i = 0 to p.file_count - 1 do
          Fs.unlink fs (path p i)
        done;
        Fs.flush fs;
        p.file_count)
  in
  { params = p; create_write; read; delete }

(* ------------------------------------------------------------------ *)
(* Oracle-producing variant for the crash-consistency checker.  Every
   file gets content derived from its index, so a recovered file can be
   validated byte-for-byte; a third of the files are deleted again so
   crash points cover the deletion path too.  File units tolerate
   absence (not yet created, or already deleted) and emptiness (created
   but the unbracketed data write not yet persistent) — anything else
   violates atomicity. *)

let traced_body p i =
  let b = Bytes.make p.file_bytes '\000' in
  let tag = Printf.sprintf "file-%d:" i in
  Bytes.blit_string tag 0 b 0 (min (String.length tag) p.file_bytes);
  for k = String.length tag to p.file_bytes - 1 do
    Bytes.set b k (Char.chr ((i * 193 + k) land 0xff))
  done;
  b

let run_traced inst oracle p =
  let fs = inst.Setup.fs in
  if p.dirs > 1 then
    for d = 0 to p.dirs - 1 do
      Fs.mkdir fs (Printf.sprintf "/d%03d" d)
    done;
  for i = 0 to p.file_count - 1 do
    let path = path p i in
    let body = traced_body p i in
    Fs.create fs path;
    Fs.write_file fs path ~off:0 body;
    Oracle.add_file oracle ~path ~content:body;
    (* spread segment seals across the trace so crash points interleave
       with the workload rather than clustering at the final flush *)
    if i mod 2 = 1 then Fs.flush fs
  done;
  Fs.flush fs;
  let unlinked = ref 0 in
  for i = 0 to p.file_count - 1 do
    if i mod 3 = 0 then begin
      Fs.unlink fs (path p i);
      incr unlinked;
      if !unlinked mod 3 = 0 then Fs.flush fs
    end
  done;
  Fs.flush fs
