(** The small-file micro-benchmark of paper §5.2 / Figure 5.

    Creates and writes [file_count] files of [file_bytes] each, then
    reads them all, then deletes them all — reporting files/second for
    each phase on the virtual clock.  Paper parameters: 10,000 × 1 KB
    and 1,000 × 10 KB. *)

type params = {
  file_count : int;
  file_bytes : int;
  dirs : int;  (** files are spread across this many directories *)
}

val paper_1k : params
(** 10,000 × 1 KB, one directory. *)

val paper_10k : params
(** 1,000 × 10 KB, one directory. *)

val scaled : params -> float -> params
(** Scale the file count (for quick runs). *)

type phase = {
  files : int;
  elapsed_ns : int;
  files_per_sec : float;
  pred_search_hops : int;  (** during this phase *)
}

type result = {
  params : params;
  create_write : phase;
  read : phase;
  delete : phase;
}

val run : Setup.instance -> params -> result
(** Runs all three phases on a fresh instance (the instance's clock is
    assumed to be at the epoch). *)

(** {1 Traced variant (crash-consistency checking)} *)

val run_traced : Setup.instance -> Oracle.t -> params -> unit
(** Create and write every file with per-file recognisable content,
    registering a file unit for each, then delete a third of them.
    After recovery from any crash point each file must be absent, empty,
    or hold exactly its registered content. *)
