(** The ARU-latency experiment of paper §5.3: begin and end an empty
    ARU [count] times (paper: 500,000), measuring the latency per ARU
    and the number of segments written with the commit records (paper:
    78.47 µs and 24 segments). *)

type params = { count : int }

val paper : params

type result = {
  count : int;
  elapsed_ns : int;
  latency_us : float;  (** per Begin/End pair *)
  segments_written : int;
}

val run : Lld_core.Lld.t -> params -> result
(** The logical disk's clock is assumed to be at the epoch (use
    {!Setup.make_raw}). *)

(** {1 Traced variant (crash-consistency checking)} *)

type traced_params = {
  arus : int;  (** committed ARUs to run *)
  blocks_per_aru : int;  (** blocks each ARU allocates and writes *)
  flush_every : int;  (** [Lld.flush] after this many ARUs; 0 = only at the end *)
}

val traced_default : traced_params

val run_traced : Lld_core.Lld.t -> Oracle.t -> traced_params -> unit
(** Each ARU creates a list and [blocks_per_aru] blocks with
    recognisable payloads and registers its expected committed state as
    an oracle unit; a final ARU is left open (never committed) so the
    checker can assert it never surfaces.  Identifiers are never reused
    (nothing is deleted), so oracle units stay unambiguous at every
    crash point. *)
