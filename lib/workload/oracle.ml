type block_unit = {
  bu_label : string;
  bu_lists : Lld_core.Types.List_id.t list;
  bu_blocks : (Lld_core.Types.Block_id.t * bytes) list;
  bu_overwrites :
    (Lld_core.Types.Block_id.t * bytes * bytes) list;
  bu_must_not_commit : bool;
}

type file_unit = { fu_path : string; fu_content : bytes }
type unit_ = Blocks of block_unit | File of file_unit

let unit_label = function
  | Blocks u -> u.bu_label
  | File u -> u.fu_path

type t = { mutable rev_units : unit_ list; mutable count : int }

let create () = { rev_units = []; count = 0 }

let add t u =
  t.rev_units <- u :: t.rev_units;
  t.count <- t.count + 1

let add_blocks t ~label ?(must_not_commit = false) ?(overwrites = []) ~lists
    blocks =
  add t
    (Blocks
       {
         bu_label = label;
         bu_lists = lists;
         bu_blocks = blocks;
         bu_overwrites = overwrites;
         bu_must_not_commit = must_not_commit;
       })

let add_file t ~path ~content =
  add t (File { fu_path = path; fu_content = content })

let units t = List.rev t.rev_units
let size t = t.count
