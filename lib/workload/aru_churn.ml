module Clock = Lld_sim.Clock
module Lld = Lld_core.Lld
module Counters = Lld_core.Counters
module Summary = Lld_core.Summary

type params = { count : int }

let paper = { count = 500_000 }

type result = {
  count : int;
  elapsed_ns : int;
  latency_us : float;
  segments_written : int;
}

let run lld (p : params) =
  let clock = Lld.clock lld in
  let t0 = Clock.now_ns clock in
  let segs0 = (Lld.counters lld).Counters.segments_written in
  for _ = 1 to p.count do
    let a = Lld.begin_aru lld in
    Lld.end_aru lld a
  done;
  Lld.flush lld;
  let elapsed_ns = Clock.now_ns clock - t0 in
  {
    count = p.count;
    elapsed_ns;
    latency_us = float_of_int elapsed_ns /. 1e3 /. float_of_int p.count;
    segments_written = (Lld.counters lld).Counters.segments_written - segs0;
  }

(* ------------------------------------------------------------------ *)
(* Oracle-producing variant for the crash-consistency checker: each
   ARU creates one list and a few blocks with recognisable payloads,
   and registers its expected committed state with the oracle.  One
   final ARU is deliberately left open — at no crash point may any of
   its effects surface. *)

type traced_params = { arus : int; blocks_per_aru : int; flush_every : int }

let traced_default = { arus = 160; blocks_per_aru = 2; flush_every = 1 }

let payload ~block_bytes ~aru ~slot =
  let b = Bytes.make block_bytes '\000' in
  let tag = Printf.sprintf "churn-%d-%d:" aru slot in
  Bytes.blit_string tag 0 b 0 (String.length tag);
  for i = String.length tag to block_bytes - 1 do
    Bytes.set b i (Char.chr ((aru * 131 + slot * 31 + i) land 0xff))
  done;
  b

let one_aru lld oracle ~index ~blocks_per_aru ~must_not_commit =
  let block_bytes = Lld.block_bytes lld in
  let a = Lld.begin_aru lld in
  let l = Lld.new_list lld ~aru:a () in
  let blocks = ref [] in
  let prev = ref None in
  for j = 0 to blocks_per_aru - 1 do
    let pred =
      match !prev with None -> Summary.Head | Some b -> Summary.After b
    in
    let b = Lld.new_block lld ~aru:a ~list:l ~pred () in
    let data = payload ~block_bytes ~aru:index ~slot:j in
    Lld.write lld ~aru:a b data;
    blocks := (b, data) :: !blocks;
    prev := Some b
  done;
  if not must_not_commit then Lld.end_aru lld a;
  Oracle.add_blocks oracle
    ~label:
      (Printf.sprintf "aru-%d%s" index (if must_not_commit then "-open" else ""))
    ~must_not_commit ~lists:[ l ] (List.rev !blocks)

let run_traced lld oracle (p : traced_params) =
  for i = 0 to p.arus - 1 do
    one_aru lld oracle ~index:i ~blocks_per_aru:p.blocks_per_aru
      ~must_not_commit:false;
    if p.flush_every > 0 && (i + 1) mod p.flush_every = 0 then Lld.flush lld
  done;
  (* an ARU whose commit record is never written: recovery must discard
     it wholesale at every crash point, including the final image *)
  one_aru lld oracle ~index:p.arus ~blocks_per_aru:p.blocks_per_aru
    ~must_not_commit:true;
  Lld.flush lld
