(** Expected-outcome oracle populated by traced workloads and consumed
    by the crash-consistency checker ([lib/crashcheck]).

    A workload registers one {e unit} per atomic effect it performs:
    either a raw-LD unit (the lists and expected-committed block
    contents of one ARU) or a file-system unit (a path and its expected
    full content).  After recovering from an arbitrary crash point the
    checker verifies each unit is present {e in full} or absent {e in
    full} — the paper's failure-atomicity claim (§3). *)

type block_unit = {
  bu_label : string;
  bu_lists : Lld_core.Types.List_id.t list;
      (** lists the ARU created; they must exist exactly when the ARU
          committed (recovery scavenges the empty lists of uncommitted
          ARUs, paper §3.3) *)
  bu_blocks : (Lld_core.Types.Block_id.t * bytes) list;
      (** blocks in list order with their expected committed contents *)
  bu_overwrites : (Lld_core.Types.Block_id.t * bytes * bytes) list;
      (** preexisting committed blocks the ARU overwrote, as
          [(block, old, new)]: a recovered state must show [new] exactly
          when the unit committed and [old] exactly when it did not —
          an aborted (or presumed-aborted) ARU must leave the committed
          version untouched, even though the overwrite shares a log
          segment with it.  The block itself must survive either way. *)
  bu_must_not_commit : bool;
      (** the workload never wrote this unit's commit record (an ARU
          left open); any recovered state showing it committed is a
          violation *)
}

type file_unit = {
  fu_path : string;
  fu_content : bytes;
      (** under per-operation ARUs a recovered file is either absent,
          empty (created, data not yet persistent) or holds exactly this
          content — anything else is a violation *)
}

type unit_ = Blocks of block_unit | File of file_unit

val unit_label : unit_ -> string

type t

val create : unit -> t

val add_blocks :
  t ->
  label:string ->
  ?must_not_commit:bool ->
  ?overwrites:(Lld_core.Types.Block_id.t * bytes * bytes) list ->
  lists:Lld_core.Types.List_id.t list ->
  (Lld_core.Types.Block_id.t * bytes) list ->
  unit

val add_file : t -> path:string -> content:bytes -> unit

val units : t -> unit_ list
(** In registration order. *)

val size : t -> int
