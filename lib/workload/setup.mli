(** Shared experiment setup: build a fresh MinixLLD instance (disk +
    logical disk + file system) in one of the paper's three
    configurations (Table 1), with the virtual clock zeroed after
    formatting so measurements exclude setup. *)

(** Paper Table 1. *)
type variant = Old | New | New_delete

val variant_label : variant -> string
val all_variants : variant list

val lld_config : variant -> Lld_core.Config.t
val fs_config : variant -> Lld_minixfs.Fs.config

type instance = {
  disk : Lld_disk.Disk.t;
  lld : Lld_core.Lld.t;
  fs : Lld_minixfs.Fs.t;
  clock : Lld_sim.Clock.t;
}

val make :
  ?geom:Lld_disk.Geometry.t -> ?inode_count:int -> ?clock:Lld_sim.Clock.t ->
  ?obs:Lld_obs.Obs.t -> ?backend:Lld_disk.Backend.t ->
  ?visibility:Lld_core.Config.visibility -> variant -> instance
(** Default geometry is the paper's 400 MB partition.  [obs] (default
    {!Lld_obs.Obs.null}) is attached to the logical disk and the device;
    the clock reset after formatting keeps setup out of the trace
    timeline's origin.  Pass [clock] (reset after formatting, like the
    internally created one) when the caller needs the clock before
    construction — an {!Lld_obs.Obs.create} handle wraps it.  [backend]
    defaults to {!Lld_disk.Backend.of_env} (honouring [LLD_BACKEND=file])
    and then to an in-memory store.  [visibility] overrides the
    variant's read-visibility option (paper §3.3), e.g. to run a
    workload under [Committed_only] or [Any_shadow] semantics. *)

val make_raw :
  ?geom:Lld_disk.Geometry.t -> ?clock:Lld_sim.Clock.t ->
  ?obs:Lld_obs.Obs.t -> ?backend:Lld_disk.Backend.t ->
  ?visibility:Lld_core.Config.visibility -> variant ->
  Lld_disk.Disk.t * Lld_core.Lld.t
(** Logical disk only, no file system (for the ARU-latency experiment).
    [backend] defaults as in {!make}. *)
