module Clock = Lld_sim.Clock
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Config = Lld_core.Config
module Lld = Lld_core.Lld
module Fs = Lld_minixfs.Fs

type variant = Old | New | New_delete

(* Formatting happens before the clock reset, so its trace events would
   carry timestamps from a dead timeline: drop them along with the
   counters. *)
let reset_obs obs =
  match obs with
  | Some o when Lld_obs.Obs.active o ->
    Lld_obs.Trace.clear (Lld_obs.Obs.trace o);
    Lld_obs.Metrics.reset_histograms (Lld_obs.Obs.metrics o)
  | Some _ | None -> ()

let variant_label = function
  | Old -> "old"
  | New -> "new"
  | New_delete -> "new, delete"

let all_variants = [ Old; New; New_delete ]

let lld_config = function
  | Old -> Config.old_lld
  | New | New_delete -> Config.default

let fs_config = function
  | Old -> Fs.config_old
  | New -> Fs.config_new
  | New_delete -> Fs.config_new_delete

type instance = {
  disk : Lld_disk.Disk.t;
  lld : Lld_core.Lld.t;
  fs : Lld_minixfs.Fs.t;
  clock : Lld_sim.Clock.t;
}

(* [LLD_BACKEND=file] reruns every experiment against a real on-disk
   image; an explicit [?backend] always wins. *)
let resolve_backend geom backend =
  match backend with
  | Some b -> b
  | None -> (
    let size = Geometry.total_bytes geom in
    match Lld_disk.Backend.of_env ~size () with
    | Some b -> b
    | None -> Lld_disk.Backend.mem ~size)

let resolve_config variant visibility =
  let base = lld_config variant in
  match visibility with
  | None -> base
  | Some v -> { base with Config.visibility = v }

let make ?(geom = Geometry.paper) ?inode_count ?clock ?obs ?backend ?visibility
    variant =
  let clock = match clock with Some c -> c | None -> Clock.create () in
  let backend = resolve_backend geom backend in
  let disk = Disk.create ~backend ~clock geom in
  let lld = Lld.create ~config:(resolve_config variant visibility) ?obs disk in
  let fs = Fs.mkfs ~config:(fs_config variant) ?inode_count lld in
  Fs.flush fs;
  Clock.reset clock;
  Lld_core.Counters.reset (Lld.counters lld);
  reset_obs obs;
  { disk; lld; fs; clock }

let make_raw ?(geom = Geometry.paper) ?clock ?obs ?backend ?visibility variant =
  let clock = match clock with Some c -> c | None -> Clock.create () in
  let backend = resolve_backend geom backend in
  let disk = Disk.create ~backend ~clock geom in
  let lld = Lld.create ~config:(resolve_config variant visibility) ?obs disk in
  Lld.flush lld;
  Clock.reset clock;
  Lld_core.Counters.reset (Lld.counters lld);
  reset_obs obs;
  (disk, lld)
