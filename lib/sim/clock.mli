(** A virtual clock measuring simulated nanoseconds.

    All time in the reproduction is virtual: the disk model charges
    mechanical latencies and the cost model charges 1996-era CPU time to
    the same clock, so reported throughput has the CPU/disk balance of
    the paper's SPARC-5/70 testbed rather than of the machine running
    the simulation (see DESIGN.md §2). *)

type t

(** Accounting category for a charge; totals are queryable per
    category. *)
type category =
  | Cpu  (** meta-data manipulation, copies — the paper's "run-time overhead" *)
  | Io  (** simulated disk mechanics: seek, rotation, transfer *)

val create : unit -> t

val now_ns : t -> int
(** Total virtual nanoseconds elapsed since creation. *)

val charge : t -> category -> int -> unit
(** [charge t cat ns] advances the clock by [ns] (which must be
    non-negative) and attributes it to [cat]. *)

val total_ns : t -> category -> int
(** Cumulative nanoseconds charged to the category. *)

val overlap : t -> (unit -> unit) list -> unit
(** [overlap t thunks] runs the thunks in order but accounts their
    charges as if they executed concurrently on independent devices:
    every thunk's timeline starts at the same instant, and when all
    have run the clock stands at [start + max] of the per-thunk
    advances rather than their sum.  The category totals keep the full
    sum — they count device time (like CPU-seconds), while {!now_ns}
    counts wall time, so under overlap [cpu + io >= elapsed].

    This is how the sharded facade models S independent spindles: the
    per-shard group-commit drains (and the prepare barriers of a
    cross-shard commit) are requests to different disks, which a real
    array services in parallel.  Within a thunk, [now_ns] reads that
    device's own timeline; the clock never moves backwards as observed
    after [overlap] returns.  If a thunk raises, the clock is settled
    to [start + max] over the thunks run so far (including the partial
    one) and the exception propagates. *)

val reset : t -> unit
(** Zero the clock and all category totals. *)

val pp : Format.formatter -> t -> unit
