type category = Cpu | Io

type t = { mutable now : int; mutable cpu : int; mutable io : int }

let create () = { now = 0; cpu = 0; io = 0 }
let now_ns t = t.now

let charge t cat ns =
  if ns < 0 then invalid_arg "Clock.charge: negative duration";
  t.now <- t.now + ns;
  match cat with
  | Cpu -> t.cpu <- t.cpu + ns
  | Io -> t.io <- t.io + ns

let total_ns t = function Cpu -> t.cpu | Io -> t.io

let overlap t thunks =
  match thunks with
  | [] -> ()
  | [ f ] -> f ()
  | _ ->
    let n0 = t.now in
    let maxd = ref 0 in
    let run f =
      (* each device's timeline starts at the same instant *)
      t.now <- n0;
      match f () with
      | () -> if t.now - n0 > !maxd then maxd := t.now - n0
      | exception e ->
        if t.now - n0 > !maxd then maxd := t.now - n0;
        t.now <- n0 + !maxd;
        raise e
    in
    List.iter run thunks;
    t.now <- n0 + !maxd

let reset t =
  t.now <- 0;
  t.cpu <- 0;
  t.io <- 0

let pp ppf t =
  Format.fprintf ppf "t=%.3fs (cpu %.3fs, io %.3fs)"
    (float_of_int t.now /. 1e9)
    (float_of_int t.cpu /. 1e9)
    (float_of_int t.io /. 1e9)
