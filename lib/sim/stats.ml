type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | xs ->
    let n = List.length xs in
    let sum = List.fold_left ( +. ) 0. xs in
    let mean = sum /. float_of_int n in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs in
    let stddev = if n > 1 then sqrt (sq /. float_of_int (n - 1)) else 0. in
    {
      count = n;
      mean;
      stddev;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
    }

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | _ ->
    if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
    let sorted = List.sort compare xs in
    let a = Array.of_list sorted in
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

(* ------------------------------------------------------------------ *)
(* Log2-bucket latency histograms.

   Bucket 0 counts the value 0; bucket i (i >= 1) counts values in
   [2^(i-1), 2^i - 1].  Exact count/sum/min/max ride along, so the mean
   is exact and percentile estimates can be clamped to the observed
   range.  Designed for virtual-clock latencies in nanoseconds: 63
   buckets cover the whole non-negative [int] range. *)

module Histogram = struct
  let num_buckets = 63

  type t = {
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;
    mutable max_v : int;
    buckets : int array;
  }

  let create () =
    { count = 0; sum = 0; min_v = max_int; max_v = 0; buckets = Array.make num_buckets 0 }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let i = ref 0 in
      let v = ref v in
      while !v > 0 do
        incr i;
        v := !v lsr 1
      done;
      min !i (num_buckets - 1)
    end

  let bucket_lo i = if i = 0 then 0 else 1 lsl (i - 1)

  let bucket_hi i =
    if i = 0 then 0
    else if i >= num_buckets - 1 then max_int
    else (1 lsl i) - 1

  let add t v =
    if v < 0 then invalid_arg "Stats.Histogram.add: negative value";
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    let i = bucket_of v in
    t.buckets.(i) <- t.buckets.(i) + 1

  let count t = t.count
  let sum t = t.sum
  let min_ns t = if t.count = 0 then 0 else t.min_v
  let max_ns t = t.max_v
  let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

  let reset t =
    t.count <- 0;
    t.sum <- 0;
    t.min_v <- max_int;
    t.max_v <- 0;
    Array.fill t.buckets 0 num_buckets 0

  let merge ~into t =
    into.count <- into.count + t.count;
    into.sum <- into.sum + t.sum;
    if t.count > 0 then begin
      if t.min_v < into.min_v then into.min_v <- t.min_v;
      if t.max_v > into.max_v then into.max_v <- t.max_v
    end;
    Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) t.buckets

  (* Nearest-rank percentile, same rank rule as [Stats.percentile]:
     rank = ceil(p/100 * n), then the bucket holding the rank-th sample.
     The estimate is the bucket's inclusive upper bound clamped to the
     observed range, so it never under-reports and is within a factor of
     two of the exact nearest-rank value. *)
  let percentile t p =
    if t.count = 0 then invalid_arg "Stats.Histogram.percentile: empty histogram";
    if p < 0. || p > 100. then
      invalid_arg "Stats.Histogram.percentile: p out of range";
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.count)))
    in
    let rec find i acc =
      if i >= num_buckets then t.max_v
      else begin
        let acc = acc + t.buckets.(i) in
        if acc >= rank then max t.min_v (min (bucket_hi i) t.max_v)
        else find (i + 1) acc
      end
    in
    find 0 0

  let p50 t = percentile t 50.
  let p95 t = percentile t 95.
  let p99 t = percentile t 99.

  let nonzero_buckets t =
    let acc = ref [] in
    for i = num_buckets - 1 downto 0 do
      if t.buckets.(i) > 0 then acc := (bucket_lo i, bucket_hi i, t.buckets.(i)) :: !acc
    done;
    !acc

  let pp ppf t =
    if t.count = 0 then Format.fprintf ppf "(empty)"
    else
      Format.fprintf ppf "n=%d mean=%.0fns p50=%d p95=%d p99=%d max=%d" t.count
        (mean t) (p50 t) (p95 t) (p99 t) t.max_v
end

type histogram = Histogram.t

let percent_diff ~baseline v =
  if baseline = 0. then invalid_arg "Stats.percent_diff: zero baseline";
  (baseline -. v) /. baseline *. 100.

let throughput ~work ~elapsed_ns =
  if elapsed_ns <= 0 then invalid_arg "Stats.throughput: non-positive time";
  work /. (float_of_int elapsed_ns /. 1e9)
