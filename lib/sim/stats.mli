(** Small numeric summaries used by the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample; raises [Invalid_argument] on []. *)

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], nearest-rank on the sorted
    sample. Raises [Invalid_argument] on []. *)

(** Log2-bucket latency histograms on the virtual clock.

    Bucket 0 counts the value 0; bucket [i >= 1] counts values in
    [2^(i-1) .. 2^i - 1].  Count, sum, min and max are tracked exactly,
    so [mean] is exact and percentile estimates are clamped to the
    observed range: a percentile never under-reports the exact
    nearest-rank value and is within a factor of two of it. *)
module Histogram : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit
  (** Record one non-negative sample (nanoseconds by convention).
      Raises [Invalid_argument] on a negative sample. *)

  val count : t -> int
  val sum : t -> int
  val min_ns : t -> int
  val max_ns : t -> int
  val mean : t -> float

  val percentile : t -> float -> int
  (** Nearest-rank percentile (same rank rule as {!Stats.percentile}):
      the upper bound of the bucket holding the rank-th sample, clamped
      to [min_ns .. max_ns].  Raises [Invalid_argument] when empty or
      [p] is outside [0, 100]. *)

  val p50 : t -> int
  val p95 : t -> int
  val p99 : t -> int

  val nonzero_buckets : t -> (int * int * int) list
  (** [(lo, hi, count)] per populated bucket, ascending. *)

  val bucket_of : int -> int
  val bucket_lo : int -> int
  val bucket_hi : int -> int

  val reset : t -> unit
  val merge : into:t -> t -> unit
  val pp : Format.formatter -> t -> unit
end

type histogram = Histogram.t

val percent_diff : baseline:float -> float -> float
(** [(baseline - v) /. baseline * 100.]: how much slower [v] is than the
    baseline when both are throughputs (positive = [v] is worse). *)

val throughput : work:float -> elapsed_ns:int -> float
(** Units of work per second of virtual time. *)
