module Clock = Lld_sim.Clock
module Rng = Lld_sim.Rng
module Blk = Lld_util.Blk
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Fault = Lld_disk.Fault
module Config = Lld_core.Config
module Lld = Lld_core.Lld
module Shard = Lld_core.Shard
module Types = Lld_core.Types
module Layout = Lld_minixfs.Layout
module Fs = Lld_minixfs.Fs
module Fsck = Lld_minixfs.Fsck
module Summary = Lld_core.Summary
module Oracle = Lld_workload.Oracle
module Setup = Lld_workload.Setup
module Smallfile = Lld_workload.Smallfile
module Aru_churn = Lld_workload.Aru_churn

(* ------------------------------------------------------------------ *)
(* Workload specifications                                             *)

type ctx = {
  cx_clock : Clock.t;
  cx_disk : Disk.t;
  cx_lld : Lld.t;
  cx_fs : Fs.t option;
}

type spec = {
  sc_name : string;
  sc_geom : Geometry.t;
  sc_config : Config.t;
  sc_fs : Fs.config option;
  sc_inode_count : int option;
  sc_run : ctx -> Oracle.t -> unit;
}

(* Small segments so seals — the dominant crash granularity — happen
   every few operations, giving dense crash-point coverage. *)
let checker_geom = Geometry.v ~segment_bytes:(32 * 1024) ~num_segments:192 ()

let smallfile_spec ?(files = 200) () =
  {
    sc_name = "smallfile";
    sc_geom = checker_geom;
    sc_config = Config.default;
    sc_fs = Some Fs.config_new;
    sc_inode_count = Some 1024;
    sc_run =
      (fun cx oracle ->
        let inst =
          {
            Setup.disk = cx.cx_disk;
            lld = cx.cx_lld;
            fs = Option.get cx.cx_fs;
            clock = cx.cx_clock;
          }
        in
        Smallfile.run_traced inst oracle
          { Smallfile.file_count = files; file_bytes = 1024; dirs = 1 });
  }

let aru_churn_spec ?(arus = 160) ?(blocks_per_aru = 2) () =
  {
    sc_name = "aru-churn";
    sc_geom = checker_geom;
    sc_config = Config.default;
    sc_fs = None;
    sc_inode_count = None;
    sc_run =
      (fun cx oracle ->
        Aru_churn.run_traced cx.cx_lld oracle
          { Aru_churn.arus; blocks_per_aru; flush_every = 1 });
  }

(* Cleaning-heavy raw-LD workload: committed units, whole-unit
   deletions, same-content rewrites (dead space without changing the
   oracle's expected contents), then a forced cleaner run — so
   relocation, the live index and the checkpoint-with-extra-free path
   all land inside the recorded trace.  One ARU stays open across the
   cleaning.  Identifiers freed by the deletions are never reallocated
   (the open ARU allocates first), keeping oracle units unambiguous. *)
let cleaning_spec ?(units = 36) ?(blocks_per_unit = 2) () =
  {
    sc_name = "cleaning";
    sc_geom = checker_geom;
    sc_config = Config.default;
    sc_fs = None;
    sc_inode_count = None;
    sc_run =
      (fun cx oracle ->
        let lld = cx.cx_lld in
        let block_bytes = Lld.block_bytes lld in
        let payload u s =
          let b = Bytes.make block_bytes '\000' in
          let tag = Printf.sprintf "clean-%d-%d:" u s in
          Bytes.blit_string tag 0 b 0 (String.length tag);
          for i = String.length tag to block_bytes - 1 do
            Bytes.set b i (Char.chr ((u * 137 + s * 29 + i) land 0xff))
          done;
          b
        in
        let one_unit ~index ~must_not_commit =
          let a = Lld.begin_aru lld in
          let l = Lld.new_list lld ~aru:a () in
          let prev = ref None in
          let blocks = ref [] in
          for j = 0 to blocks_per_unit - 1 do
            let pred =
              match !prev with None -> Summary.Head | Some b -> Summary.After b
            in
            let b = Lld.new_block lld ~aru:a ~list:l ~pred () in
            let data = payload index j in
            Lld.write lld ~aru:a b data;
            prev := Some b;
            blocks := (b, data) :: !blocks
          done;
          if not must_not_commit then Lld.end_aru lld a;
          let blocks = List.rev !blocks in
          Oracle.add_blocks oracle
            ~label:
              (Printf.sprintf "clean-%d%s" index
                 (if must_not_commit then "-open" else ""))
            ~must_not_commit ~lists:[ l ] blocks;
          (l, blocks)
        in
        let made =
          Array.init units (fun i ->
              let u = one_unit ~index:i ~must_not_commit:false in
              if (i + 1) mod 4 = 0 then Lld.flush lld;
              u)
        in
        (* opened before any deletion so its allocations take fresh ids;
           never committed, spanning the deletions and the cleaning *)
        ignore (one_unit ~index:units ~must_not_commit:true);
        Lld.flush lld;
        (* delete every third unit, one ARU per unit (atomic) *)
        Array.iteri
          (fun i (l, _) ->
            if i mod 3 = 0 then begin
              let a = Lld.begin_aru lld in
              Lld.delete_list lld ~aru:a l;
              Lld.end_aru lld a;
              if i mod 6 = 0 then Lld.flush lld
            end)
          made;
        Lld.flush lld;
        (* same-content rewrites: survivors relocate to fresh segments,
           turning their old slots dead without changing what the oracle
           expects to read *)
        for _pass = 1 to 2 do
          Array.iteri
            (fun i (_, blocks) ->
              if i mod 3 <> 0 then
                List.iter (fun (b, data) -> Lld.write lld b data) blocks)
            made;
          Lld.flush lld
        done;
        Lld.clean lld ~target_free:(Lld.free_segments lld + 6);
        Lld.flush lld);
  }

(* Group-commit workload: rounds of concurrent ARUs submitted to the
   commit queue and drained with [flush_commits], so every batch's
   commit records travel in one [Commit_group] summary entry.  The
   batch's data blocks exceed one segment, so the flusher's
   close-on-room path splits sub-batches mid-drain as well.  Crash
   points falling on (or tearing) the batch seals demand per-ARU
   all-or-nothing inside torn batches; one ARU is submitted but never
   flushed — its commit intent lives only in memory, so no crash image
   may surface it as committed. *)
let group_commit_spec ?(rounds = 10) ?(arus_per_round = 4)
    ?(blocks_per_aru = 2) () =
  {
    sc_name = "group-commit";
    sc_geom = checker_geom;
    sc_config =
      {
        Config.default with
        (* pinned explicitly: never from the environment *)
        group_commit_window = 100_000;
        group_commit_batch = 64;
      };
    sc_fs = None;
    sc_inode_count = None;
    sc_run =
      (fun cx oracle ->
        let lld = cx.cx_lld in
        let block_bytes = Lld.block_bytes lld in
        let payload u s =
          let b = Bytes.make block_bytes '\000' in
          let tag = Printf.sprintf "group-%d-%d:" u s in
          Bytes.blit_string tag 0 b 0 (String.length tag);
          for i = String.length tag to block_bytes - 1 do
            Bytes.set b i (Char.chr ((u * 211 + s * 17 + i) land 0xff))
          done;
          b
        in
        let one_unit ~index ~must_not_commit =
          let a = Lld.begin_aru lld in
          let l = Lld.new_list lld ~aru:a () in
          let prev = ref None in
          let blocks = ref [] in
          for j = 0 to blocks_per_aru - 1 do
            let pred =
              match !prev with None -> Summary.Head | Some b -> Summary.After b
            in
            let b = Lld.new_block lld ~aru:a ~list:l ~pred () in
            let data = payload index j in
            Lld.write lld ~aru:a b data;
            prev := Some b;
            blocks := (b, data) :: !blocks
          done;
          Lld.submit_commit lld a;
          Oracle.add_blocks oracle
            ~label:
              (Printf.sprintf "group-%d%s" index
                 (if must_not_commit then "-queued" else ""))
            ~must_not_commit ~lists:[ l ] (List.rev !blocks)
        in
        for r = 0 to rounds - 1 do
          for i = 0 to arus_per_round - 1 do
            one_unit ~index:((r * arus_per_round) + i) ~must_not_commit:false
          done;
          ignore (Lld.flush_commits lld)
        done;
        (* submitted after the last drain: queued forever *)
        one_unit ~index:(rounds * arus_per_round) ~must_not_commit:true;
        Lld.flush lld);
  }

let specs =
  [
    ("smallfile", fun () -> smallfile_spec ());
    ("aru-churn", fun () -> aru_churn_spec ());
    ("cleaning", fun () -> cleaning_spec ());
    ("group-commit", fun () -> group_commit_spec ());
  ]

(* ------------------------------------------------------------------ *)
(* Trace recording                                                     *)

type trace = {
  tr_spec : spec;
  tr_base : bytes;  (* device image after format, before the workload *)
  tr_writes : (int * bytes) array;  (* (offset, data), in write order *)
  tr_oracle : Oracle.t;
}

let default_backend geom = function
  | Some b -> b
  | None -> (
    let size = Geometry.total_bytes geom in
    match Lld_disk.Backend.of_env ~size () with
    | Some b -> b
    | None -> Lld_disk.Backend.mem ~size)

(* One full traced run of the workload on the given backend.  The base
   image and every subsequent state come from the backend API
   ([Disk.snapshot] / the write observer), so the checker exercises
   whatever store it is pointed at. *)
let record_on backend spec =
  let clock = Clock.create () in
  let disk = Disk.create ~backend ~clock spec.sc_geom in
  let lld = Lld.create ~config:spec.sc_config disk in
  let fs =
    Option.map
      (fun config -> Fs.mkfs ~config ?inode_count:spec.sc_inode_count lld)
      spec.sc_fs
  in
  (match fs with Some fs -> Fs.flush fs | None -> Lld.flush lld);
  let base = Disk.snapshot disk in
  let writes = ref [] in
  Disk.set_observer disk
    (Some
       (fun ~index:_ ~offset ~data ->
         (* the observer's view aliases the writer's buffer: copy now *)
         writes := (offset, Blk.to_bytes data) :: !writes));
  let oracle = Oracle.create () in
  spec.sc_run { cx_clock = clock; cx_disk = disk; cx_lld = lld; cx_fs = fs }
    oracle;
  Disk.set_observer disk None;
  let trace =
    {
      tr_spec = spec;
      tr_base = base;
      tr_writes = Array.of_list (List.rev !writes);
      tr_oracle = oracle;
    }
  in
  let final = Disk.snapshot disk in
  let counters = Disk.counters disk in
  let label = Disk.backend_label disk in
  Disk.close disk;
  (trace, label, final, counters, Clock.now_ns clock)

let record ?backend spec =
  let backend = default_backend spec.sc_geom backend in
  let trace, _, _, _, _ = record_on backend spec in
  trace

let trace_writes t = Array.length t.tr_writes
let trace_oracle_units t = Oracle.size t.tr_oracle

(* ------------------------------------------------------------------ *)
(* Differential backend check                                          *)

type differential = {
  d_workload : string;
  d_mem_label : string;
  d_file_label : string;
  d_writes : int;
  d_images_equal : bool;
  d_counters_equal : bool;
  d_clocks_equal : bool;
  d_problems : string list;
}

let differential_ok d = d.d_problems = []

let differential ?dir spec =
  let size = Geometry.total_bytes spec.sc_geom in
  let m_trace, m_label, m_image, m_counters, m_ns =
    record_on (Lld_disk.Backend.mem ~size) spec
  in
  let f_trace, f_label, f_image, f_counters, f_ns =
    record_on (Lld_disk.Backend.temp_file ?dir ~size ()) spec
  in
  let problems = ref [] in
  let check cond msg = if not cond then problems := msg :: !problems in
  let images_equal = Bytes.equal m_image f_image in
  check images_equal
    "final device images differ byte-for-byte between mem and file backends";
  check
    (Bytes.equal m_trace.tr_base f_trace.tr_base)
    "post-format base images differ between mem and file backends";
  check
    (Array.length m_trace.tr_writes = Array.length f_trace.tr_writes)
    (Printf.sprintf "write traces differ in length: mem %d, file %d"
       (Array.length m_trace.tr_writes)
       (Array.length f_trace.tr_writes));
  let counters_equal = m_counters = f_counters in
  check counters_equal
    (Printf.sprintf
       "device counters differ: mem %d writes / %d reads, file %d writes / %d \
        reads"
       m_counters.Disk.writes m_counters.Disk.reads f_counters.Disk.writes
       f_counters.Disk.reads);
  let clocks_equal = m_ns = f_ns in
  check clocks_equal
    (Printf.sprintf "virtual clocks differ: mem %d ns, file %d ns" m_ns f_ns);
  {
    d_workload = spec.sc_name;
    d_mem_label = m_label;
    d_file_label = f_label;
    d_writes = Array.length m_trace.tr_writes;
    d_images_equal = images_equal;
    d_counters_equal = counters_equal;
    d_clocks_equal = clocks_equal;
    d_problems = List.rev !problems;
  }

let pp_differential ppf d =
  Format.fprintf ppf
    "@[<v>workload %s: %d disk writes on %s and %s@,\
     images byte-identical: %b; counters equal: %b; virtual clocks equal: %b@,"
    d.d_workload d.d_writes d.d_mem_label d.d_file_label d.d_images_equal
    d.d_counters_equal d.d_clocks_equal;
  if d.d_problems = [] then
    Format.fprintf ppf "backends are observably equivalent@]"
  else begin
    List.iter (fun p -> Format.fprintf ppf "  %s@," p) d.d_problems;
    Format.fprintf ppf "@]"
  end

(* ------------------------------------------------------------------ *)
(* Crash points                                                        *)

type point = { pt_index : int; pt_keep : int option }

let pp_point ppf = function
  | { pt_index; pt_keep = None } ->
    Format.fprintf ppf "after write %d" pt_index
  | { pt_index; pt_keep = Some k } ->
    Format.fprintf ppf "torn write %d (first %d bytes persisted)" pt_index k

let torn_boundaries ~granularity len =
  let rec multiples acc k =
    if k >= len then acc else multiples (k :: acc) (k + granularity)
  in
  let ks = multiples [] granularity in
  let ks = if len > 1 then 1 :: (len - 1) :: ks else ks in
  List.sort_uniq Int.compare (List.filter (fun k -> k > 0 && k < len) ks)

(* Crash-point machinery over a bare (base image, write trace) pair, so
   checkers with their own notion of correctness — the differential
   tester in lib/model composes the model's crash frontier with it —
   reuse the enumeration, sampling and image reconstruction without the
   oracle/spec superstructure. *)
module Raw = struct
  type raw = { base : bytes; writes : (int * bytes) array }
  type t = raw

  let v ~base ~writes = { base; writes }

  let enumerate ?(granularity = 512) t =
    let n = Array.length t.writes in
    let points = ref [] in
    for i = n - 1 downto 0 do
      let _, data = t.writes.(i) in
      let torn =
        List.rev_map
          (fun k -> { pt_index = i; pt_keep = Some k })
          (List.rev (torn_boundaries ~granularity (Bytes.length data)))
      in
      points := ({ pt_index = i; pt_keep = None } :: torn) @ !points
    done;
    !points @ [ { pt_index = n; pt_keep = None } ]

  (* Deterministic subsample: keep complete points in preference to torn
     variants, always keep the first and last point, and fill the rest
     by shuffling with the seeded generator. *)
  let sample ~budget ~seed points =
    let total = List.length points in
    if budget >= total then points
    else begin
      let rng = Rng.create ~seed in
      let arr = Array.of_list points in
      let last = total - 1 in
      let complete = ref [] and torn = ref [] in
      Array.iteri
        (fun i p ->
          if i = 0 || i = last then ()
          else if p.pt_keep = None then complete := i :: !complete
          else torn := i :: !torn)
        arr;
      let budget = max 2 budget in
      let take n l =
        let a = Array.of_list l in
        Rng.shuffle rng a;
        Array.to_list (Array.sub a 0 (min n (Array.length a)))
      in
      let n_mid = budget - 2 in
      let picked_complete = take n_mid (List.rev !complete) in
      let picked_torn =
        take (n_mid - List.length picked_complete) (List.rev !torn)
      in
      let chosen =
        List.sort_uniq Int.compare
          (0 :: last :: (picked_complete @ picked_torn))
      in
      List.map (fun i -> arr.(i)) chosen
    end

  let image_at t point =
    let image = Bytes.copy t.base in
    let apply i =
      let offset, data = t.writes.(i) in
      Bytes.blit data 0 image offset (Bytes.length data)
    in
    for i = 0 to point.pt_index - 1 do
      apply i
    done;
    (match point.pt_keep with
    | None -> ()
    | Some k ->
      let offset, data = t.writes.(point.pt_index) in
      Bytes.blit data 0 image offset (min k (Bytes.length data)));
    image
end

let raw_of_trace t = Raw.v ~base:t.tr_base ~writes:t.tr_writes
let enumerate ?granularity t = Raw.enumerate ?granularity (raw_of_trace t)

(* ------------------------------------------------------------------ *)
(* Judging one recovered state                                         *)

(* A unit's judged status; compared across the two recoveries of the
   idempotency check, so it must be a plain value. *)
type status = Present | Empty | Absent | Violated

(* The block-unit judge is a functor over the LD signature so the flat
   checker ({!Lld}) and the sharded checker ({!Lld_core.Shard}) apply
   the identical all-or-nothing verdict — for a cross-shard ARU "all"
   spans every participant shard, which is exactly the 2PC claim. *)
module Judge (Ld : Lld_core.Ld_intf.S) = struct
  let blocks ld (u : Oracle.block_unit) =
    let lists_exist = List.map (fun l -> Ld.list_exists ld l) u.Oracle.bu_lists in
    let block_states =
      List.map
        (fun (b, data) ->
          if not (Ld.block_allocated ld b) then `Absent
          else if Bytes.equal (Ld.read ld b) data then `Match
          else `Mismatch)
        u.Oracle.bu_blocks
    in
    (* Overwrite targets preexist the unit.  Committed ⇒ every target
       holds the new version; not committed ⇒ every target holds the
       old version (an aborted — or presumed-aborted — merge must not
       have clobbered the committed version's log slot), or is gone
       entirely because the crash point predates the target's own
       durability.  Any other content is torn. *)
    let over_states =
      List.map
        (fun (b, old_data, new_data) ->
          if not (Ld.block_allocated ld b) then `Gone
          else
            let got = Ld.read ld b in
            if Bytes.equal got new_data then `New
            else if Bytes.equal got old_data then `Old
            else `Bad)
        u.Oracle.bu_overwrites
    in
    let all p l = List.for_all p l in
    if
      all (( = ) `Match) block_states
      && all Fun.id lists_exist
      && all (( = ) `New) over_states
    then
      if u.Oracle.bu_must_not_commit then
        ( Violated,
          [
            Printf.sprintf
              "unit %s: ARU without a commit record surfaced as committed"
              u.Oracle.bu_label;
          ] )
      else begin
        (* fully present: the blocks must also sit on the unit's list in
           registration order *)
        match u.Oracle.bu_lists with
        | [ l ] ->
          let expect = List.map fst u.Oracle.bu_blocks in
          let got = Ld.list_blocks ld l in
          if List.equal Types.Block_id.equal expect got then (Present, [])
          else
            ( Violated,
              [
                Printf.sprintf "unit %s: committed but list %d holds %s"
                  u.Oracle.bu_label
                  (Types.List_id.to_int l)
                  (String.concat ","
                     (List.map
                        (fun b -> string_of_int (Types.Block_id.to_int b))
                        got));
              ] )
        | _ -> (Present, [])
      end
    else if
      all (( = ) `Absent) block_states
      && all not lists_exist
      && all (fun s -> s = `Old || s = `Gone) over_states
    then (Absent, [])
    else
      ( Violated,
        [
          Printf.sprintf
            "unit %s: partially recovered (blocks: %s; lists: %s; \
             overwrites: %s) — ARU not all-or-nothing"
            u.Oracle.bu_label
            (String.concat ","
               (List.map
                  (function
                    | `Match -> "ok" | `Absent -> "gone" | `Mismatch -> "BAD")
                  block_states))
            (String.concat ","
               (List.map (fun e -> if e then "ok" else "gone") lists_exist))
            (String.concat ","
               (List.map
                  (function
                    | `New -> "new" | `Old -> "old" | `Gone -> "GONE"
                    | `Bad -> "BAD")
                  over_states));
        ] )
end

module Lld_judge = Judge (Lld)

let judge_blocks = Lld_judge.blocks

let judge_file fs (u : Oracle.file_unit) =
  let len = Bytes.length u.Oracle.fu_content in
  if not (Fs.exists fs u.Oracle.fu_path) then (Absent, [])
  else
    match Fs.stat fs u.Oracle.fu_path with
    | { Fs.kind = Layout.Directory; _ } | { Fs.kind = Layout.Free; _ } ->
      ( Violated,
        [ Printf.sprintf "file %s: not a regular file" u.Oracle.fu_path ] )
    | { Fs.size = 0; _ } -> (Empty, [])
    | { Fs.size; _ } when size = len ->
      let got = Fs.read_file fs u.Oracle.fu_path ~off:0 ~len in
      if Bytes.equal got u.Oracle.fu_content then (Present, [])
      else
        ( Violated,
          [
            Printf.sprintf "file %s: present with corrupted content"
              u.Oracle.fu_path;
          ] )
    | { Fs.size; _ } ->
      ( Violated,
        [
          Printf.sprintf
            "file %s: partial size %d (expected 0 or %d) — operation not \
             all-or-nothing"
            u.Oracle.fu_path size len;
        ] )

(* Verify one freshly recovered logical disk: core invariant probe,
   oracle units, fsck.  Returns (violations, per-unit statuses). *)
let verify_recovered trace lld =
  let spec = trace.tr_spec in
  let problems = ref (Lld.recovery_invariant_errors lld) in
  let add ps = problems := !problems @ ps in
  let fs =
    match spec.sc_fs with
    | None -> None
    | Some config -> (
      match Fs.mount ~config lld with
      | fs -> Some fs
      | exception e ->
        add [ "mount after recovery failed: " ^ Printexc.to_string e ];
        None)
  in
  let statuses =
    List.map
      (fun unit_ ->
        let status, ps =
          match (unit_, fs) with
          | Oracle.Blocks u, _ -> judge_blocks lld u
          | Oracle.File u, Some fs -> judge_file fs u
          | Oracle.File u, None ->
            ( Violated,
              [
                Printf.sprintf "file unit %s but no mountable file system"
                  u.Oracle.fu_path;
              ] )
        in
        add ps;
        status)
      (Oracle.units trace.tr_oracle)
  in
  (match fs with
  | None -> ()
  | Some fs ->
    let report = Fsck.run fs in
    if not (Fsck.ok report) then
      add
        (List.map
           (fun p -> Format.asprintf "fsck: %a" Fsck.pp_problem p)
           report.Fsck.problems));
  (!problems, statuses)

let crash_now disk =
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
  try Disk.write disk ~offset:0 (Bytes.make 1 'x')
  with Fault.Crashed -> ()

(* Check a fully materialised crash image (consumed, not copied). *)
let check_image ?recover_config trace image =
  let spec = trace.tr_spec in
  let config = Option.value recover_config ~default:spec.sc_config in
  let clock = Clock.create () in
  let disk = Disk.load ~clock spec.sc_geom image in
  match Lld.recover ~config disk with
  | exception e -> [ "recovery raised: " ^ Printexc.to_string e ]
  | lld, _report -> (
    let problems, statuses = verify_recovered trace lld in
    (* idempotency: recovery ends with its own checkpoint write; crash
       right after it and recover again — the state must not change *)
    crash_now disk;
    match Lld.recover ~config disk with
    | exception e ->
      problems @ [ "recovery after recovery raised: " ^ Printexc.to_string e ]
    | lld2, _report2 ->
      let problems2, statuses2 = verify_recovered trace lld2 in
      let problems2 =
        List.map (fun p -> "after re-recovery: " ^ p) problems2
      in
      let idem =
        if statuses = statuses2 then []
        else [ "recovery is not idempotent: unit statuses changed" ]
      in
      problems @ problems2 @ idem)

let image_at trace point = Raw.image_at (raw_of_trace trace) point

(* Replay one crash point with live tracing attached to recovery (and
   to the verification reads), writing the Chrome trace next to the
   minimal reproducer so a failing point can be inspected in Perfetto
   without re-running the checker. *)
let replay_point_obs ?recover_config trace point =
  let spec = trace.tr_spec in
  let config = Option.value recover_config ~default:spec.sc_config in
  let clock = Clock.create () in
  let obs = Lld_obs.Obs.create ~clock () in
  let disk = Disk.load ~clock spec.sc_geom (image_at trace point) in
  (match Lld.recover ~config ~obs disk with
  | exception _ -> ()
  | lld, _report -> ignore (verify_recovered trace lld));
  obs

let dump_point_trace ?recover_config trace point ~path =
  let obs = replay_point_obs ?recover_config trace point in
  Lld_obs.Trace.write_chrome_file (Lld_obs.Obs.trace obs) path

(* The full black-box bundle for a failing point: the same replay, but
   everything the handle holds — flight ring, trace ring, metrics
   registry — written as a Forensics bundle sharing one stem. *)
let dump_point_bundle ?recover_config trace point ~dir ~label =
  let obs = replay_point_obs ?recover_config trace point in
  Lld_obs.Forensics.dump ~dir ~label obs

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  let digits = "0123456789abcdef" in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) digits.[c lsr 4];
    Bytes.set out ((2 * i) + 1) digits.[c land 0xf]
  done;
  Bytes.unsafe_to_string out

(* The pre-crash write trace as JSON: every disk write the crash image
   contains, with offset and full data (the torn write carries its kept
   prefix length).  Together with the deterministic post-format base
   image this reconstructs the crash image exactly, so a reproducer
   bundle can be inspected — or replayed against another implementation
   — without re-running the workload. *)
let dump_point_writes trace point ~path =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"workload\":\"%s\",\"base_bytes\":%d,\"point\":{\"index\":%d,\"keep\":%s},\"writes\":["
       trace.tr_spec.sc_name
       (Bytes.length trace.tr_base)
       point.pt_index
       (match point.pt_keep with
       | None -> "null"
       | Some k -> string_of_int k));
  let emit i ~keep =
    let offset, data = trace.tr_writes.(i) in
    if i > 0 then Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf "{\"i\":%d,\"offset\":%d,\"len\":%d%s,\"data\":\"%s\"}" i
         offset (Bytes.length data)
         (match keep with
         | None -> ""
         | Some k -> Printf.sprintf ",\"keep\":%d" k)
         (hex_of_bytes data))
  in
  for i = 0 to min point.pt_index (Array.length trace.tr_writes) - 1 do
    emit i ~keep:None
  done;
  (match point.pt_keep with
  | Some k when point.pt_index < Array.length trace.tr_writes ->
    emit point.pt_index ~keep:(Some k)
  | _ -> ());
  Buffer.add_string buf "]}";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

let check_point ?recover_config trace point =
  let n = Array.length trace.tr_writes in
  if point.pt_index < 0 || point.pt_index > n then
    invalid_arg "Crashcheck.check_point: write index outside the trace";
  if point.pt_keep <> None && point.pt_index = n then
    invalid_arg "Crashcheck.check_point: torn variant of a write not in trace";
  (match point.pt_keep with
  | Some k when point.pt_index < n ->
    let _, data = trace.tr_writes.(point.pt_index) in
    if k <= 0 || k >= Bytes.length data then
      invalid_arg
        (Printf.sprintf
           "Crashcheck.check_point: keep bytes must be within (0, %d), the \
            torn write's length"
           (Bytes.length data))
  | _ -> ());
  check_image ?recover_config trace (image_at trace point)

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)

type violation = { v_point : point; v_problems : string list }

type result = {
  r_workload : string;
  r_seed : int;
  r_writes : int;
  r_oracle_units : int;
  r_points_total : int;
  r_points_checked : int;
  r_torn_checked : int;
  r_violation_points : int;
  r_violations : violation list;
  r_minimal : violation option;
  r_trace_file : string option;
  r_writes_file : string option;
  r_forensics_files : string list;
}

let max_kept_violations = 50

let ok r = r.r_violation_points = 0

let sample = Raw.sample

(* Walk the selected points in enumeration order, materialising write
   prefixes incrementally: the rolling image always reflects writes
   [0 .. applied-1]; each point copies it and adds its torn prefix. *)
let check_ordered ?recover_config ?progress trace points ~on_violation =
  let selected = List.length points in
  let image = ref (Bytes.copy trace.tr_base) in
  let applied = ref 0 in
  let advance_to i =
    while !applied < i do
      let offset, data = trace.tr_writes.(!applied) in
      Bytes.blit data 0 !image offset (Bytes.length data);
      incr applied
    done
  in
  let checked = ref 0 in
  let torn = ref 0 in
  List.iter
    (fun p ->
      advance_to p.pt_index;
      let scratch = Bytes.copy !image in
      (match p.pt_keep with
      | None -> ()
      | Some k ->
        incr torn;
        let offset, data = trace.tr_writes.(p.pt_index) in
        Bytes.blit data 0 scratch offset (min k (Bytes.length data)));
      let problems = check_image ?recover_config trace scratch in
      incr checked;
      (match progress with
      | Some f -> f ~checked:!checked ~selected
      | None -> ());
      if problems <> [] then on_violation { v_point = p; v_problems = problems })
    points;
  (!checked, !torn)

let run ?(granularity = 512) ?budget ?(seed = 1) ?recover_config
    ?(shrink_limit = 4000) ?trace_dir ?progress trace =
  let all_points = enumerate ~granularity trace in
  let total = List.length all_points in
  let points =
    match budget with
    | None -> all_points
    | Some b -> sample ~budget:b ~seed all_points
  in
  let violation_points = ref 0 in
  let kept = ref [] in
  let on_violation v =
    incr violation_points;
    if !violation_points <= max_kept_violations then kept := v :: !kept
  in
  let checked, torn =
    check_ordered ?recover_config ?progress trace points ~on_violation
  in
  let violations = List.rev !kept in
  (* shrink: the minimal reproducer is the earliest failing point of the
     full enumeration; scan from the start (bounded), falling back to
     the earliest sampled failure *)
  let minimal =
    match violations with
    | [] -> None
    | first :: _ ->
      let found = ref None in
      let scanned = ref 0 in
      (try
         ignore
           (check_ordered ?recover_config trace
              (List.filter
                 (fun p ->
                   incr scanned;
                   !scanned <= shrink_limit
                   && (p.pt_index, p.pt_keep) < (first.v_point.pt_index, first.v_point.pt_keep))
                 all_points)
              ~on_violation:(fun v ->
                found := Some v;
                raise Exit))
       with Exit -> ());
      (match !found with Some v -> Some v | None -> Some first)
  in
  let trace_file, writes_file, forensics_files =
    match (minimal, trace_dir) with
    | Some v, Some dir ->
      let point_tag =
        match v.v_point.pt_keep with
        | None -> string_of_int v.v_point.pt_index
        | Some k -> Printf.sprintf "%d-torn%d" v.v_point.pt_index k
      in
      let label =
        Printf.sprintf "crash-%s-at-%s" trace.tr_spec.sc_name point_tag
      in
      let wpath = Filename.concat dir (label ^ ".writes.json") in
      (try
         if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
         (* the bundle's trace file is the recovery trace the reproducer
            always carried; flight ring + metrics ride alongside *)
         let bundle =
           dump_point_bundle ?recover_config trace v.v_point ~dir ~label
         in
         dump_point_writes trace v.v_point ~path:wpath;
         let tpath =
           List.find_opt
             (fun p -> Filename.check_suffix p ".trace.json")
             bundle
         in
         let extras = List.filter (fun p -> Some p <> tpath) bundle in
         (tpath, Some wpath, extras)
       with Sys_error _ -> (None, None, []))
    | _ -> (None, None, [])
  in
  {
    r_workload = trace.tr_spec.sc_name;
    r_seed = seed;
    r_writes = Array.length trace.tr_writes;
    r_oracle_units = Oracle.size trace.tr_oracle;
    r_points_total = total;
    r_points_checked = checked;
    r_torn_checked = torn;
    r_violation_points = !violation_points;
    r_violations = violations;
    r_minimal = minimal;
    r_trace_file = trace_file;
    r_writes_file = writes_file;
    r_forensics_files = forensics_files;
  }

let repro_hint ~workload point =
  match point.pt_keep with
  | None ->
    Printf.sprintf "lld crashcheck --workload %s --at %d" workload
      point.pt_index
  | Some k ->
    Printf.sprintf "lld crashcheck --workload %s --at %d:%d" workload
      point.pt_index k

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>workload %s: %d disk writes, %d oracle units@,\
     crash points: %d checked of %d enumerated (%d torn variants)@,"
    r.r_workload r.r_writes r.r_oracle_units r.r_points_checked r.r_points_total
    r.r_torn_checked;
  if r.r_violation_points = 0 then
    Format.fprintf ppf "no atomicity violations@]"
  else begin
    Format.fprintf ppf
      "%d crash point(s) VIOLATED atomicity (sampling seed %d; rerun with \
       --seed %d)@,"
      r.r_violation_points r.r_seed r.r_seed;
    (match r.r_minimal with
    | None -> ()
    | Some v ->
      Format.fprintf ppf "minimal reproducer: %a@,  %s@," pp_point v.v_point
        (repro_hint ~workload:r.r_workload v.v_point);
      List.iter (fun p -> Format.fprintf ppf "  %s@," p) v.v_problems;
      (match r.r_trace_file with
      | None -> ()
      | Some f -> Format.fprintf ppf "  recovery trace: %s@," f);
      (match r.r_writes_file with
      | None -> ()
      | Some f -> Format.fprintf ppf "  pre-crash writes: %s@," f);
      List.iter
        (fun f -> Format.fprintf ppf "  forensics: %s@," f)
        r.r_forensics_files);
    Format.fprintf ppf "@]"
  end

(* ------------------------------------------------------------------ *)
(* Crashing during recovery itself                                     *)

(* Judge the oracle units through reads alone — no invariant probe, no
   fsck — so an early-open recovery has to serve every unit on demand,
   while the replay of unrelated dependency groups is still pending. *)
let judge_units trace lld =
  let spec = trace.tr_spec in
  let problems = ref [] in
  let add ps = problems := !problems @ ps in
  let fs =
    match spec.sc_fs with
    | None -> None
    | Some config -> (
      match Fs.mount ~config lld with
      | fs -> Some fs
      | exception e ->
        add [ "mount during early-open recovery failed: " ^ Printexc.to_string e ];
        None)
  in
  let statuses =
    List.map
      (fun unit_ ->
        let status, ps =
          match (unit_, fs) with
          | Oracle.Blocks u, _ -> judge_blocks lld u
          | Oracle.File u, Some fs -> judge_file fs u
          | Oracle.File u, None ->
            ( Violated,
              [
                Printf.sprintf "file unit %s but no mountable file system"
                  u.Oracle.fu_path;
              ] )
        in
        add ps;
        status)
      (Oracle.units trace.tr_oracle)
  in
  (!problems, statuses)

type recovery_violation = {
  rv_outer : point;
  rv_inner : point option;
  rv_problems : string list;
}

type recovery_result = {
  rr_workload : string;
  rr_seed : int;
  rr_outer_checked : int;
  rr_inner_checked : int;
  rr_inner_torn : int;
  rr_recovery_writes : int;
  rr_ondemand_units : int;
  rr_violation_points : int;
  rr_violations : recovery_violation list;
  rr_writes_file : string option;
}

let recovery_ok r = r.rr_violation_points = 0

(* One outer workload crash point: recover with early open, verify the
   oracle through on-demand reads while the replay is still pending,
   complete the recovery (its post-recovery checkpoint lands in the
   recorded writes), verify again eagerly — then crash the recovery
   itself at every inner point of its own write sequence (including
   torn checkpoint chunks) and demand that a second recovery from each
   such image still satisfies the oracle. *)
let check_during_recovery ?recover_config ~granularity ~inner_budget ~seed
    trace outer ~on_violation =
  let spec = trace.tr_spec in
  let base_config = Option.value recover_config ~default:spec.sc_config in
  let config = { base_config with Config.recovery_early_open = true } in
  let base = image_at trace outer in
  let clock = Clock.create () in
  let disk = Disk.load ~clock spec.sc_geom (Bytes.copy base) in
  let rec_writes = ref [] in
  Disk.set_observer disk
    (Some
       (fun ~index:_ ~offset ~data ->
         rec_writes := (offset, Blk.to_bytes data) :: !rec_writes));
  match Lld.recover ~config disk with
  | exception e ->
    on_violation
      {
        rv_outer = outer;
        rv_inner = None;
        rv_problems = [ "early-open recovery raised: " ^ Printexc.to_string e ];
      };
    (0, 0, 0, 0)
  | lld, _preliminary ->
    let units_judged = Oracle.size trace.tr_oracle in
    let outcome =
      match judge_units trace lld with
      | exception e ->
        Error [ "on-demand verification raised: " ^ Printexc.to_string e ]
      | early_problems, early_statuses -> (
        match Lld.complete_recovery lld with
        | exception e ->
          Error
            (early_problems
            @ [ "completing recovery raised: " ^ Printexc.to_string e ])
        | _final_report ->
          let full_problems, full_statuses = verify_recovered trace lld in
          let drift =
            if early_statuses = full_statuses then []
            else
              [
                "on-demand recovery disagrees with completed recovery: unit \
                 statuses changed";
              ]
          in
          let probs = early_problems @ full_problems @ drift in
          if probs = [] then Ok () else Error probs)
    in
    Disk.set_observer disk None;
    (match outcome with
    | Ok () -> ()
    | Error probs ->
      on_violation { rv_outer = outer; rv_inner = None; rv_problems = probs });
    let writes = Array.of_list (List.rev !rec_writes) in
    let raw = Raw.v ~base ~writes in
    let inner_all = Raw.enumerate ~granularity raw in
    let inner =
      match inner_budget with
      | None -> inner_all
      | Some b -> Raw.sample ~budget:b ~seed inner_all
    in
    let checked = ref 0 and torn = ref 0 in
    List.iter
      (fun ip ->
        if ip.pt_keep <> None then incr torn;
        incr checked;
        let problems = check_image ?recover_config trace (Raw.image_at raw ip) in
        if problems <> [] then
          on_violation
            { rv_outer = outer; rv_inner = Some ip; rv_problems = problems })
      inner;
    (Array.length writes, !checked, !torn, units_judged)

let run_during_recovery ?(granularity = 512) ?(budget = 24) ?inner_budget
    ?(seed = 1) ?recover_config ?trace_dir ?progress trace =
  let outer_points =
    sample ~budget ~seed (enumerate ~granularity trace)
  in
  let total = List.length outer_points in
  let violation_points = ref 0 in
  let kept = ref [] in
  let on_violation v =
    incr violation_points;
    if !violation_points <= max_kept_violations then kept := v :: !kept
  in
  let outer_checked = ref 0 in
  let inner_checked = ref 0 in
  let inner_torn = ref 0 in
  let recovery_writes = ref 0 in
  let ondemand_units = ref 0 in
  List.iter
    (fun outer ->
      let writes, checked, torn, units =
        check_during_recovery ?recover_config ~granularity ~inner_budget ~seed
          trace outer ~on_violation
      in
      incr outer_checked;
      recovery_writes := !recovery_writes + writes;
      inner_checked := !inner_checked + checked;
      inner_torn := !inner_torn + torn;
      ondemand_units := !ondemand_units + units;
      match progress with
      | Some f -> f ~outer:!outer_checked ~total
      | None -> ())
    outer_points;
  let violations = List.rev !kept in
  let writes_file =
    match (violations, trace_dir) with
    | first :: _, Some dir ->
      let point_tag =
        match first.rv_outer.pt_keep with
        | None -> string_of_int first.rv_outer.pt_index
        | Some k -> Printf.sprintf "%d-torn%d" first.rv_outer.pt_index k
      in
      let path =
        Filename.concat dir
          (Printf.sprintf "crash-rec-%s-at-%s.writes.json"
             trace.tr_spec.sc_name point_tag)
      in
      (try
         if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
         dump_point_writes trace first.rv_outer ~path;
         Some path
       with Sys_error _ -> None)
    | _ -> None
  in
  {
    rr_workload = trace.tr_spec.sc_name;
    rr_seed = seed;
    rr_outer_checked = !outer_checked;
    rr_inner_checked = !inner_checked;
    rr_inner_torn = !inner_torn;
    rr_recovery_writes = !recovery_writes;
    rr_ondemand_units = !ondemand_units;
    rr_violation_points = !violation_points;
    rr_violations = violations;
    rr_writes_file = writes_file;
  }

let pp_recovery_violation ppf v =
  match v.rv_inner with
  | None ->
    Format.fprintf ppf "recovery from workload crash (%a)" pp_point v.rv_outer
  | Some ip ->
    Format.fprintf ppf
      "crash during recovery (workload %a; recovery %a)" pp_point v.rv_outer
      pp_point ip

let pp_recovery_result ppf r =
  Format.fprintf ppf
    "@[<v>workload %s, crash-during-recovery: %d workload crash points@,\
     %d recovery-internal crash points checked (%d torn) over %d recovery \
     writes; %d on-demand unit verifications@,"
    r.rr_workload r.rr_outer_checked r.rr_inner_checked r.rr_inner_torn
    r.rr_recovery_writes r.rr_ondemand_units;
  if r.rr_violation_points = 0 then
    Format.fprintf ppf "no atomicity violations@]"
  else begin
    Format.fprintf ppf
      "%d point(s) VIOLATED atomicity (sampling seed %d)@,"
      r.rr_violation_points r.rr_seed;
    (match r.rr_violations with
    | [] -> ()
    | v :: _ ->
      Format.fprintf ppf "first: %a@," pp_recovery_violation v;
      List.iter (fun p -> Format.fprintf ppf "  %s@," p) v.rv_problems);
    (match r.rr_writes_file with
    | None -> ()
    | Some f -> Format.fprintf ppf "  pre-crash writes: %s@," f);
    Format.fprintf ppf "@]"
  end

(* ------------------------------------------------------------------ *)
(* Silent corruption: inject media rot into an intact final image and
   demand the scrubber detects it, repairs everything redundancy
   allows, and the oracle still verifies in full (DESIGN.md §5.13). *)

module Superblock = Lld_core.Superblock

type corruption_result = {
  c_workload : string;
  c_rounds : int;  (** corruption scenarios actually exercised *)
  c_bad_slots : int;
  c_repaired : int;
  c_salvaged : int;
  c_lost : int;
  c_superblock_repaired : int;
  c_problems : string list;
}

let corruption_ok r = r.c_problems = []

(* The device image at the end of the recorded workload: base plus
   every traced write, replayed in order. *)
let final_image trace =
  let image = Bytes.copy trace.tr_base in
  Array.iter
    (fun (offset, data) -> Bytes.blit data 0 image offset (Bytes.length data))
    trace.tr_writes;
  image

let corruption_check ?backend spec =
  let backend = default_backend spec.sc_geom backend in
  let trace = record_on backend spec |> fun (t, _, _, _, _) -> t in
  let geom = spec.sc_geom in
  let config = spec.sc_config in
  let problems = ref [] in
  let rounds = ref 0 in
  let bad = ref 0 and repaired = ref 0 and salvaged = ref 0 and lost = ref 0 in
  let sb_repaired = ref 0 in
  let add ctx ps = problems := !problems @ List.map (fun p -> ctx ^ ": " ^ p) ps in
  let tally r =
    bad := !bad + r.Lld.scrub_bad_slots;
    repaired := !repaired + r.Lld.scrub_repaired;
    salvaged := !salvaged + r.Lld.scrub_salvaged;
    lost := !lost + r.Lld.scrub_lost;
    sb_repaired := !sb_repaired + r.Lld.scrub_superblock_repaired
  in
  (* every round mounts its own pristine copy of the final image *)
  let mount ctx image =
    let disk = Disk.load ~clock:(Clock.create ()) geom image in
    match Lld.recover ~config disk with
    | lld, _report -> Some (disk, lld)
    | exception e ->
      add ctx [ "recovery raised: " ^ Printexc.to_string e ];
      None
  in
  let verify ctx lld =
    let ps, _ = verify_recovered trace lld in
    add ctx ps
  in
  let remount_verify ctx disk =
    match mount ctx (Disk.snapshot disk) with
    | None -> ()
    | Some (_disk2, lld2) -> verify (ctx ^ " (remount)") lld2
  in
  let rot disk ~offset ~length =
    Fault.corrupt_sector (Disk.fault disk) ~offset ~length;
    Disk.apply_corruption disk
  in
  (* some committed block with a persistent location, to aim rot at *)
  let find_victim lld =
    let limit =
      geom.Geometry.segment_bytes / geom.Geometry.block_bytes
      * geom.Geometry.num_segments
    in
    let rec go i =
      if i >= limit then None
      else
        let b = Types.Block_id.of_int i in
        match Lld.block_phys lld b with
        | Some (seg, slot) -> Some (b, seg, slot)
        | None -> go (i + 1)
    in
    go 0
  in

  (* Round 1 — segment meta rot on a cold mount.  The slot bytes are
     intact, so scrub must recover every live block of the segment
     (salvage, or relocation when recovery happened to warm the cache)
     with zero loss. *)
  (match mount "meta-rot" (final_image trace) with
  | None -> ()
  | Some (disk, lld) -> (
    match find_victim lld with
    | None -> add "meta-rot" [ "workload left no locatable committed block" ]
    | Some (victim, seg, _slot) ->
      incr rounds;
      rot disk
        ~offset:
          (Geometry.segment_offset geom seg + geom.Geometry.segment_bytes - 32)
        ~length:8;
      let r = Lld.scrub lld in
      tally r;
      if r.Lld.scrub_bad_slots = 0 then
        add "meta-rot" [ "scrub failed to detect the rotted segment header" ];
      if r.Lld.scrub_lost > 0 then
        add "meta-rot"
          [
            Printf.sprintf "%d block(s) lost although all slot data was intact"
              r.Lld.scrub_lost;
          ];
      (match Lld.read lld victim with
      | _ -> ()
      | exception e ->
        add "meta-rot"
          [ "read after scrub still refuses: " ^ Printexc.to_string e ]);
      verify "meta-rot" lld;
      remount_verify "meta-rot" disk));

  (* Round 2 — generational superblock rot.  Mount rewrites one slot
     (the new checkpoint's parity); rot the other, older generation and
     demand scrub rewrites it so both survive a remount. *)
  (match mount "superblock-rot" (final_image trace) with
  | None -> ()
  | Some (disk, lld) -> (
    match Superblock.read_slots disk with
    | Some a, Some b ->
      incr rounds;
      let older = if a.Superblock.epoch < b.Superblock.epoch then 0 else 1 in
      rot disk ~offset:(Superblock.slot_offset geom older) ~length:16;
      let r = Lld.scrub lld in
      tally r;
      if r.Lld.scrub_superblock_repaired < 1 then
        add "superblock-rot"
          [ "scrub did not rewrite the rotted generation slot" ];
      (match Superblock.read_slots disk with
      | Some _, Some _ -> ()
      | _ ->
        add "superblock-rot"
          [ "a generation slot is still invalid after scrub" ]);
      verify "superblock-rot" lld;
      remount_verify "superblock-rot" disk
    | _ ->
      add "superblock-rot"
        [ "expected both generation slots valid after a mount" ]));

  (* Round 3 — slot-data rot on a warm instance.  The block was read
     (so the LRU cache holds a verified copy) before its on-disk slot
     rots; scrub must relocate the cached copy, losing nothing. *)
  (match mount "slot-rot" (final_image trace) with
  | None -> ()
  | Some (disk, lld) -> (
    verify "slot-rot (pre-corruption)" lld;
    match find_victim lld with
    | None -> add "slot-rot" [ "workload left no locatable committed block" ]
    | Some (victim, seg, slot) ->
      incr rounds;
      let before = Bytes.copy (Lld.read lld victim) in
      rot disk
        ~offset:
          (Geometry.segment_offset geom seg
          + (slot * geom.Geometry.block_bytes))
        ~length:16;
      let r = Lld.scrub lld in
      tally r;
      if r.Lld.scrub_repaired < 1 then
        add "slot-rot" [ "scrub did not repair the rotted slot from cache" ];
      if r.Lld.scrub_lost > 0 then
        add "slot-rot"
          [ Printf.sprintf "%d block(s) lost despite a cached copy" r.Lld.scrub_lost ];
      (match Lld.read lld victim with
      | after ->
        if not (Bytes.equal before after) then
          add "slot-rot" [ "repaired block's contents changed" ]
      | exception e ->
        add "slot-rot"
          [ "read after repair raised: " ^ Printexc.to_string e ]);
      verify "slot-rot" lld;
      remount_verify "slot-rot" disk));

  {
    c_workload = spec.sc_name;
    c_rounds = !rounds;
    c_bad_slots = !bad;
    c_repaired = !repaired;
    c_salvaged = !salvaged;
    c_lost = !lost;
    c_superblock_repaired = !sb_repaired;
    c_problems = !problems;
  }

(* ------------------------------------------------------------------ *)
(* Sharded crash-point checking: cross-shard ARUs under two-phase
   commit (DESIGN.md §5.14).  S disks, one virtual clock, one
   interleaved global write trace — the facade is single-threaded, so
   the order the per-disk observers fire in IS the global persistence
   order, and a crash point is a prefix of that order: the shards'
   media freeze together, exactly the whole-machine power-loss the 2PC
   protocol must survive.  Prepare and Decide seals are ordinary traced
   writes, so the enumeration lands complete AND torn crash points
   between prepare and decision and inside each. *)

module Shard_judge = Judge (Shard)

type sharded_spec = {
  ss_name : string;
  ss_geom : Geometry.t;
  ss_config : Config.t;
  ss_shards : int;
  ss_run : Shard.t -> Oracle.t -> unit;
}

type sharded_trace = {
  st_spec : sharded_spec;
  st_bases : bytes array;  (* per-shard image after format *)
  st_writes : (int * int * bytes) array;
      (* (shard, offset, data) in global write order *)
  st_oracle : Oracle.t;
}

(* The cross-shard workload.  Per shard: an "anchor" unit (own list,
   never touched again — keeps the strict list-order check alive) and a
   "rail" unit whose committed list later cross-shard ARUs append to —
   appending to a pre-placed rail pins each 2PC's participant set by
   construction instead of leaning on list placement.  Then:
   X0 spans rails 0,1 (committed, followed by a flush so its lazy
   Decide is durable); X1 spans rails 1,2 (committed, NO flush — the
   participant's Decide stays buffered, so crash points cover the
   decided-but-unpropagated window the recovery decision scan must
   close); X2 spans all three rails (P = 3: two prepares, one
   decision); and U appends to rails 0 and 2, is flushed but never
   committed — no crash image may surface it, even though every data
   block is durable on two shards.  Every cross-shard ARU additionally
   OVERWRITES one preexisting durably-committed target block per
   participant shard: a crash between a participant's prepare and the
   coordinator's decision presumed-aborts the transaction, and the
   target must then read back its old committed bytes — the prepare
   merge wrote the shadow data into the participant's log, so this is
   what catches a merge that reuses the committed version's slot. *)
let cross_shard_spec ?(shards = 3) () =
  if shards < 2 then
    invalid_arg "Crashcheck.cross_shard_spec: needs at least 2 shards";
  {
    ss_name = "cross-shard";
    ss_geom = checker_geom;
    ss_config = Config.default;
    ss_shards = shards;
    ss_run =
      (fun t oracle ->
        let block_bytes = Shard.block_bytes t in
        let payload u s =
          let b = Bytes.make block_bytes '\000' in
          let tag = Printf.sprintf "xshard-%d-%d:" u s in
          Bytes.blit_string tag 0 b 0 (String.length tag);
          for i = String.length tag to block_bytes - 1 do
            Bytes.set b i (Char.chr ((u * 173 + s * 31 + i) land 0xff))
          done;
          b
        in
        let unit_no = ref 0 in
        (* one committed single-shard unit; returns its list and block *)
        let seed () =
          let u = !unit_no in
          incr unit_no;
          let a = Shard.begin_aru t in
          let l = Shard.new_list t ~aru:a () in
          let b = Shard.new_block t ~aru:a ~list:l ~pred:Summary.Head () in
          let data = payload u 0 in
          Shard.write t ~aru:a b data;
          Shard.end_aru t a;
          (u, l, b, data)
        in
        (* anchors: full list-order oracle units, never appended to *)
        for _ = 1 to shards do
          let u, l, b, data = seed () in
          Oracle.add_blocks oracle
            ~label:(Printf.sprintf "anchor-%d" u)
            ~must_not_commit:false ~lists:[ l ]
            [ (b, data) ]
        done;
        (* rails: one committed list per shard, indexed by actual shard *)
        let rails = Array.make shards None in
        for _ = 1 to shards do
          let u, l, b, data = seed () in
          let s = Shard.list_shard ~shards (Types.List_id.to_int l) in
          if rails.(s) <> None then
            failwith "cross-shard spec: rail placement did not spread";
          rails.(s) <- Some (l, b);
          Oracle.add_blocks oracle
            ~label:(Printf.sprintf "rail-%d" u)
            ~must_not_commit:false ~lists:[]
            [ (b, data) ]
        done;
        let rails =
          Array.map
            (function
              | Some r -> ref r
              | None -> failwith "cross-shard spec: shard without a rail")
            rails
        in
        (* targets: preexisting committed single-shard blocks the
           cross-shard ARUs overwrite.  A presumed-aborted 2PC must
           leave each target's committed version byte-intact: the
           prepare merges the shadow data into the participant's log,
           but the decision lives on the coordinator, so the merge may
           never reuse a committed version's slot (the cross-scope
           coalescing hazard).  Each round is seeded IMMEDIATELY before
           its cross ARU — no flush in between — so the target's
           committed slot still sits in the open segment the prepare
           merge writes into, which is exactly when slot coalescing
           could strike.  Targets are not their own oracle units (their
           content legitimately changes when the overwriting ARU
           commits); the overwrite triples carry the expectation, and
           the judge accepts a target absent wholesale at crash points
           predating its own durability. *)
        let targets = Array.init shards (fun _ -> Queue.create ()) in
        let seed_targets () =
          let seen = Array.make shards false in
          for _ = 1 to shards do
            let _, _, b, data = seed () in
            let s = Shard.block_shard ~shards (Types.Block_id.to_int b) in
            if seen.(s) then
              failwith "cross-shard spec: target placement did not spread";
            seen.(s) <- true;
            Queue.push (b, data) targets.(s)
          done
        in
        let append a u s j =
          let l, tail = !(rails.(s)) in
          let b =
            Shard.new_block t ~aru:a ~list:l ~pred:(Summary.After tail) ()
          in
          let data = payload u (j + 1) in
          Shard.write t ~aru:a b data;
          rails.(s) := (l, b);
          (b, data)
        in
        let overwrite a u s j =
          let b, old_data = Queue.pop targets.(s) in
          let new_data = payload u (j + 1 + shards) in
          Shard.write t ~aru:a b new_data;
          (b, old_data, new_data)
        in
        let cross ~label ~must_not_commit shard_set =
          (* fresh targets per cross ARU, seeded in the current open
             segment; one round per repeat of a shard in the set (with
             two shards, x12's set degenerates to [1; 1]) *)
          Array.iter Queue.clear targets;
          let need = Array.make shards 0 in
          List.iter (fun s -> need.(s) <- need.(s) + 1) shard_set;
          for _ = 1 to Array.fold_left max 1 need do
            seed_targets ()
          done;
          let u = !unit_no in
          incr unit_no;
          let a = Shard.begin_aru t in
          let blocks = List.mapi (fun j s -> append a u s j) shard_set in
          let overwrites = List.mapi (fun j s -> overwrite a u s j) shard_set in
          if not must_not_commit then Shard.end_aru t a;
          Oracle.add_blocks oracle
            ~label:(Printf.sprintf "%s-%d" label u)
            ~must_not_commit ~overwrites ~lists:[] blocks
        in
        cross ~label:"x01" ~must_not_commit:false [ 0; 1 ];
        Shard.flush t;
        (* committed, but its participant Decide rides the NEXT barrier:
           crash points from here cover the unpropagated-decision window *)
        cross ~label:"x12" ~must_not_commit:false [ 1; shards - 1 ];
        if shards >= 3 then
          cross ~label:"xall" ~must_not_commit:false
            (List.init shards Fun.id);
        (* durable on two shards, never committed *)
        cross ~label:"undecided" ~must_not_commit:true [ 0; shards - 1 ];
        Shard.flush t);
  }

let record_sharded spec =
  let clock = Clock.create () in
  let disks =
    Array.init spec.ss_shards (fun _ ->
        Disk.create
          ~backend:(default_backend spec.ss_geom None)
          ~clock spec.ss_geom)
  in
  let t = Shard.create ~config:spec.ss_config disks in
  Shard.flush t;
  let bases = Array.map Disk.snapshot disks in
  let writes = ref [] in
  Array.iteri
    (fun s disk ->
      Disk.set_observer disk
        (Some
           (fun ~index:_ ~offset ~data ->
             writes := (s, offset, Blk.to_bytes data) :: !writes)))
    disks;
  let oracle = Oracle.create () in
  spec.ss_run t oracle;
  Array.iter (fun disk -> Disk.set_observer disk None) disks;
  Array.iter Disk.close disks;
  {
    st_spec = spec;
    st_bases = bases;
    st_writes = Array.of_list (List.rev !writes);
    st_oracle = oracle;
  }

let sharded_trace_writes t = Array.length t.st_writes
let sharded_trace_oracle_units t = Oracle.size t.st_oracle

(* Enumeration and sampling reuse {!Raw} verbatim: a crash point only
   cares about write count and lengths, not which shard a write went
   to. *)
let enumerate_sharded ?granularity t =
  Raw.enumerate ?granularity
    (Raw.v ~base:Bytes.empty
       ~writes:(Array.map (fun (_, o, d) -> (o, d)) t.st_writes))

let sharded_images_at t point =
  let images = Array.map Bytes.copy t.st_bases in
  for i = 0 to point.pt_index - 1 do
    let s, offset, data = t.st_writes.(i) in
    Bytes.blit data 0 images.(s) offset (Bytes.length data)
  done;
  (match point.pt_keep with
  | None -> ()
  | Some k ->
    let s, offset, data = t.st_writes.(point.pt_index) in
    Bytes.blit data 0 images.(s) offset (min k (Bytes.length data)));
  images

let verify_sharded_recovered trace t =
  let problems = ref (Shard.recovery_invariant_errors t) in
  let statuses =
    List.map
      (fun unit_ ->
        match unit_ with
        | Oracle.Blocks u ->
          let status, ps = Shard_judge.blocks t u in
          problems := !problems @ ps;
          status
        | Oracle.File u ->
          problems :=
            !problems
            @ [
                Printf.sprintf "file unit %s in a raw sharded trace"
                  u.Oracle.fu_path;
              ];
          Violated)
      (Oracle.units trace.st_oracle)
  in
  (!problems, statuses)

(* Check fully materialised per-shard crash images (consumed).  The
   idempotency leg re-mounts the post-recovery snapshots — recovery
   ends in a checkpoint on every shard it changed, and a second
   recovery from that state must reach the same verdicts. *)
let check_sharded_images ?recover_config trace images =
  let spec = trace.st_spec in
  let config = Option.value recover_config ~default:spec.ss_config in
  let mount images =
    let clock = Clock.create () in
    Array.map (fun image -> Disk.load ~clock spec.ss_geom image) images
  in
  let disks = mount images in
  match Shard.recover ~config disks with
  | exception e -> [ "sharded recovery raised: " ^ Printexc.to_string e ]
  | t, _reports -> (
    let problems, statuses = verify_sharded_recovered trace t in
    let disks2 = mount (Array.map Disk.snapshot disks) in
    match Shard.recover ~config disks2 with
    | exception e ->
      problems @ [ "recovery after recovery raised: " ^ Printexc.to_string e ]
    | t2, _reports2 ->
      let problems2, statuses2 = verify_sharded_recovered trace t2 in
      let problems2 =
        List.map (fun p -> "after re-recovery: " ^ p) problems2
      in
      let idem =
        if statuses = statuses2 then []
        else [ "sharded recovery is not idempotent: unit statuses changed" ]
      in
      problems @ problems2 @ idem)

let check_sharded_point ?recover_config trace point =
  let n = Array.length trace.st_writes in
  if point.pt_index < 0 || point.pt_index > n then
    invalid_arg "Crashcheck.check_sharded_point: write index outside the trace";
  if point.pt_keep <> None && point.pt_index = n then
    invalid_arg
      "Crashcheck.check_sharded_point: torn variant of a write not in trace";
  (match point.pt_keep with
  | Some k when point.pt_index < n ->
    let _, _, data = trace.st_writes.(point.pt_index) in
    if k <= 0 || k >= Bytes.length data then
      invalid_arg
        (Printf.sprintf
           "Crashcheck.check_sharded_point: keep bytes must be within (0, \
            %d), the torn write's length"
           (Bytes.length data))
  | _ -> ());
  check_sharded_images ?recover_config trace (sharded_images_at trace point)

(* Rolling per-shard prefix images, as in [check_ordered]. *)
let check_sharded_ordered ?recover_config ?progress trace points ~on_violation
    =
  let selected = List.length points in
  let images = Array.map Bytes.copy trace.st_bases in
  let applied = ref 0 in
  let advance_to i =
    while !applied < i do
      let s, offset, data = trace.st_writes.(!applied) in
      Bytes.blit data 0 images.(s) offset (Bytes.length data);
      incr applied
    done
  in
  let checked = ref 0 in
  let torn = ref 0 in
  List.iter
    (fun p ->
      advance_to p.pt_index;
      let scratch = Array.map Bytes.copy images in
      (match p.pt_keep with
      | None -> ()
      | Some k ->
        incr torn;
        let s, offset, data = trace.st_writes.(p.pt_index) in
        Bytes.blit data 0 scratch.(s) offset (min k (Bytes.length data)));
      let problems = check_sharded_images ?recover_config trace scratch in
      incr checked;
      (match progress with
      | Some f -> f ~checked:!checked ~selected
      | None -> ());
      if problems <> [] then on_violation { v_point = p; v_problems = problems })
    points;
  (!checked, !torn)

let run_sharded ?(granularity = 512) ?budget ?(seed = 1) ?recover_config
    ?(shrink_limit = 4000) ?progress trace =
  let all_points = enumerate_sharded ~granularity trace in
  let total = List.length all_points in
  let points =
    match budget with
    | None -> all_points
    | Some b -> sample ~budget:b ~seed all_points
  in
  let violation_points = ref 0 in
  let kept = ref [] in
  let on_violation v =
    incr violation_points;
    if !violation_points <= max_kept_violations then kept := v :: !kept
  in
  let checked, torn =
    check_sharded_ordered ?recover_config ?progress trace points ~on_violation
  in
  let violations = List.rev !kept in
  let minimal =
    match violations with
    | [] -> None
    | first :: _ ->
      let found = ref None in
      let scanned = ref 0 in
      (try
         ignore
           (check_sharded_ordered ?recover_config trace
              (List.filter
                 (fun p ->
                   incr scanned;
                   !scanned <= shrink_limit
                   && (p.pt_index, p.pt_keep)
                      < (first.v_point.pt_index, first.v_point.pt_keep))
                 all_points)
              ~on_violation:(fun v ->
                found := Some v;
                raise Exit))
       with Exit -> ());
      (match !found with Some v -> Some v | None -> Some first)
  in
  {
    r_workload = trace.st_spec.ss_name;
    r_seed = seed;
    r_writes = Array.length trace.st_writes;
    r_oracle_units = Oracle.size trace.st_oracle;
    r_points_total = total;
    r_points_checked = checked;
    r_torn_checked = torn;
    r_violation_points = !violation_points;
    r_violations = violations;
    r_minimal = minimal;
    r_trace_file = None;
    r_writes_file = None;
    r_forensics_files = [];
  }

let pp_corruption_result ppf r =
  Format.fprintf ppf
    "@[<v>workload %s, silent corruption: %d scenario(s)@,\
     %d bad slot(s): %d repaired, %d salvaged, %d lost; %d superblock slot(s) \
     rewritten@,"
    r.c_workload r.c_rounds r.c_bad_slots r.c_repaired r.c_salvaged r.c_lost
    r.c_superblock_repaired;
  if r.c_problems = [] then Format.fprintf ppf "all damage healed@]"
  else begin
    Format.fprintf ppf "%d problem(s):@," (List.length r.c_problems);
    List.iter (fun p -> Format.fprintf ppf "  %s@," p) r.c_problems;
    Format.fprintf ppf "@]"
  end
