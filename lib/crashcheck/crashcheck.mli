(** Exhaustive crash-point enumeration checker for ARU failure
    atomicity.

    The paper's claim (§3) is that after {e any} crash, recovery
    restores the most recent persistent state and every ARU is
    all-or-nothing.  The hand-picked crash points of the unit tests
    cannot establish that; this checker can, the way systematic recovery
    work validates itself (Lomet et al., arXiv:1105.4253; Sauer &
    Härder, arXiv:1409.3682):

    + {b record} the full disk-write trace of a workload (via the
      write-observer hook on {!Lld_disk.Disk}), together with an
      {!Lld_workload.Oracle} of expected atomic effects;
    + {b enumerate} every crash point — after each write index, and
      torn variants of each write at [keep_bytes] boundaries;
    + for each point, {b reconstruct} the disk image as of that crash,
      run {!Lld_core.Lld.recover}, and {b verify}:
      (a) every oracle unit is present in full or absent in full,
      (b) {!Lld_minixfs.Fsck} is clean on file-system workloads,
      (c) the consistency sweep leaked no allocations
          ({!Lld_core.Lld.recovery_invariant_errors}),
      (d) recovery is idempotent: crashing right after recovery's own
          checkpoint write and recovering again reproduces the same
          state.

    Exhaustive mode covers every point; budgeted mode samples a
    deterministic subset via {!Lld_sim.Rng} (for CI).  Failing points
    are shrunk to the earliest failing point — the minimal reproducer. *)

(** {1 Workload specifications} *)

(** Everything a traced workload may touch.  [cx_fs] is [Some] exactly
    for file-system specs. *)
type ctx = {
  cx_clock : Lld_sim.Clock.t;
  cx_disk : Lld_disk.Disk.t;
  cx_lld : Lld_core.Lld.t;
  cx_fs : Lld_minixfs.Fs.t option;
}

type spec = {
  sc_name : string;
  sc_geom : Lld_disk.Geometry.t;
  sc_config : Lld_core.Config.t;
  sc_fs : Lld_minixfs.Fs.config option;
      (** [Some]: build with [Fs.mkfs], re-mount and {!Lld_minixfs.Fsck}
          after every recovery *)
  sc_inode_count : int option;
  sc_run : ctx -> Lld_workload.Oracle.t -> unit;
      (** drive the workload and populate the oracle; must end with a
          flush so the trace closes on a persistent state *)
}

val smallfile_spec : ?files:int -> unit -> spec
(** {!Lld_workload.Smallfile.run_traced} through the Minix FS
    (default 200 files of 1 KB). *)

val aru_churn_spec : ?arus:int -> ?blocks_per_aru:int -> unit -> spec
(** {!Lld_workload.Aru_churn.run_traced} on the raw logical disk
    (default 160 ARUs of 2 blocks). *)

val cleaning_spec : ?units:int -> ?blocks_per_unit:int -> unit -> spec
(** Cleaning-heavy raw-LD workload: committed units, atomic whole-unit
    deletions, same-content rewrites, then a forced {!Lld_core.Lld.clean}
    with one ARU left open across it — segment relocation, the live
    index and the cleaner's checkpoint all inside the recorded trace. *)

val group_commit_spec :
  ?rounds:int -> ?arus_per_round:int -> ?blocks_per_aru:int -> unit -> spec
(** Group-commit workload: rounds of ARUs queued with
    {!Lld_core.Lld.submit_commit} and drained as batches whose commit
    records travel in single [Commit_group] entries (default 10 rounds
    of 4 ARUs x 2 blocks — big enough to split sub-batches on segment
    room).  Crash points tearing a batch seal must recover each
    contained ARU all-or-nothing; a final ARU is submitted but never
    flushed and must never surface as committed. *)

val specs : (string * (unit -> spec)) list
(** Name-indexed registry of the built-in specs (for the CLI). *)

(** {1 Traces and crash points} *)

type trace

val record : ?backend:Lld_disk.Backend.t -> spec -> trace
(** Run the workload once, recording the base image and every disk
    write.  [backend] defaults to {!Lld_disk.Backend.of_env} (honouring
    [LLD_BACKEND=file]) and then to an in-memory store; the base image
    and the write trace come from the backend API either way, so
    crash-point checking works identically on any store. *)

val trace_writes : trace -> int
val trace_oracle_units : trace -> int

(** {1 Differential backend check}

    The paper's §2 transparency claim, checked at the store layer: the
    same workload driven once on {!Lld_disk.Backend.mem} and once on
    {!Lld_disk.Backend.temp_file} must leave byte-identical device
    images, identical device counters and an identical virtual clock. *)

type differential = {
  d_workload : string;
  d_mem_label : string;
  d_file_label : string;
  d_writes : int;  (** disk writes in the (mem) trace *)
  d_images_equal : bool;
  d_counters_equal : bool;
  d_clocks_equal : bool;
  d_problems : string list;  (** [[]] = backends observably equivalent *)
}

val differential : ?dir:string -> spec -> differential
(** Run [spec]'s workload on both backends and compare.  [dir] is where
    the temporary file image lives while the run is in flight (default
    the system temp directory); it is unlinked eagerly either way. *)

val differential_ok : differential -> bool
val pp_differential : Format.formatter -> differential -> unit

type point = {
  pt_index : int;
      (** crash before write [pt_index]: writes [0 .. pt_index-1] are on
          the medium ([pt_index] = write count means no crash at all) *)
  pt_keep : int option;
      (** [Some k]: additionally the first [k] bytes of write [pt_index]
          reached the medium — a torn write *)
}

val pp_point : Format.formatter -> point -> unit

(** Crash-point machinery over a bare (base image, write trace) pair.

    The trace-level {!enumerate} / {!check_point} pipeline judges
    recovered states against an {!Lld_workload.Oracle}; a checker with
    its own notion of correctness — the differential tester in
    lib/model judges against the executable specification's crash
    frontier — reuses the enumeration, deterministic sampling and image
    reconstruction through this interface instead. *)
module Raw : sig
  type t

  val v : base:bytes -> writes:(int * bytes) array -> t
  (** [base] is the device image before the first write; [writes] are
      [(offset, data)] in write order, as delivered by the
      {!Lld_disk.Disk} write observer. *)

  val enumerate : ?granularity:int -> t -> point list
  (** Same canonical order as the trace-level {!enumerate}. *)

  val sample : budget:int -> seed:int -> point list -> point list
  (** Deterministic subsample of at most [budget] points: complete
      points preferred over torn variants, first and last always kept,
      the rest drawn via {!Lld_sim.Rng} seeded by [seed]. *)

  val image_at : t -> point -> bytes
  (** Materialise the device image as of the crash point. *)
end

val enumerate : ?granularity:int -> trace -> point list
(** Every crash point in canonical order: for each write index, the
    complete point then its torn variants at multiples of [granularity]
    bytes (default 512, the sector size) plus the 1- and [len-1]-byte
    extremes.  Ends with the no-crash point. *)

val check_point :
  ?recover_config:Lld_core.Config.t -> trace -> point -> string list
(** Reconstruct the disk as of the crash point, recover, verify all
    invariants.  Returns the violations ([[]] = consistent).
    [recover_config] overrides the config recovery runs with (used by
    tests to demonstrate that a deliberately broken recovery — e.g.
    [recovery_sweep = false] — is caught). *)

val dump_point_trace :
  ?recover_config:Lld_core.Config.t -> trace -> point -> path:string -> unit
(** Replay the crash point once more with a live {!Lld_obs.Obs} attached
    to recovery (and to the oracle-verification reads that follow) and
    write the resulting Chrome trace-event JSON to [path] — openable in
    Perfetto / [chrome://tracing].  A recovery that raises still leaves
    the spans recorded up to the failure in the file. *)

val dump_point_bundle :
  ?recover_config:Lld_core.Config.t ->
  trace -> point -> dir:string -> label:string -> string list
(** Same replay, full black box: write the {!Lld_obs.Forensics} bundle
    ([<label>.flight.jsonl], [<label>.trace.json],
    [<label>.metrics.json]) into [dir] and return the paths. *)

(** {1 The checker} *)

type violation = { v_point : point; v_problems : string list }

type result = {
  r_workload : string;
  r_seed : int;
      (** sampling seed the run used — printed on failure so a budgeted
          CI run reproduces bit-for-bit with [--seed] *)
  r_writes : int;  (** disk writes in the recorded trace *)
  r_oracle_units : int;
  r_points_total : int;  (** size of the full enumeration *)
  r_points_checked : int;
  r_torn_checked : int;  (** of the checked points, how many were torn *)
  r_violation_points : int;  (** checked points with >= 1 violation *)
  r_violations : violation list;  (** capped at {!max_kept_violations} *)
  r_minimal : violation option;
      (** earliest failing point after shrinking — the minimal
          reproducer *)
  r_trace_file : string option;
      (** Chrome trace of the minimal reproducer's recovery, written
          when [run ~trace_dir] was given and a violation was found *)
  r_writes_file : string option;
      (** JSON dump of the minimal reproducer's {e pre-crash} write
          trace (offsets, lengths, full data, the torn write's kept
          prefix), written alongside [r_trace_file] — the reproducer
          bundle is self-contained: the crash image can be rebuilt over
          the deterministic post-format base without re-running the
          workload *)
  r_forensics_files : string list;
      (** the rest of the minimal reproducer's {!dump_point_bundle}
          output — flight-recorder ring and metrics snapshot — written
          alongside [r_trace_file] (empty when no [trace_dir] or no
          violation) *)
}

val max_kept_violations : int

val ok : result -> bool

val run :
  ?granularity:int ->
  ?budget:int ->
  ?seed:int ->
  ?recover_config:Lld_core.Config.t ->
  ?shrink_limit:int ->
  ?trace_dir:string ->
  ?progress:(checked:int -> selected:int -> unit) ->
  trace ->
  result
(** Check crash points of [trace].  Without [budget], every enumerated
    point is checked (exhaustive mode).  With [budget], a deterministic
    sample of at most [budget] points is checked — complete points are
    preferred over torn variants, the first and last points are always
    kept, and the sample is drawn with {!Lld_sim.Rng} seeded by [seed]
    (default 1).  When violations are found, the earliest failing point
    is located by scanning the full enumeration from the start (at most
    [shrink_limit] extra checks, default 4000).  With [trace_dir], the
    minimal reproducer's recovery is replayed under live tracing and the
    Chrome trace written into that directory (see
    {!dump_point_trace}); the path lands in [r_trace_file] and in
    {!pp_result}'s output next to the reproducer command line. *)

val repro_hint : workload:string -> point -> string
(** A [lld crashcheck --workload ... --at ...] command line that replays
    exactly this crash point. *)

val pp_result : Format.formatter -> result -> unit

(** {1 Crashing during recovery itself}

    The checker above crashes the {e workload}; this one also crashes
    the {e recovery}.  For a sample of workload crash points it mounts
    the crash image with {!Lld_core.Config.t.recovery_early_open} set,
    verifies every oracle unit through on-demand reads {e while the
    replay is still pending}, completes the recovery (recording its
    writes — the post-recovery checkpoint included), verifies again
    eagerly and demands the two verdicts agree — then enumerates crash
    points over recovery's own write sequence (complete and torn, so
    mid-checkpoint torn chunks are covered) and checks that a second
    recovery from each such image still satisfies the oracle and is
    idempotent. *)

type recovery_violation = {
  rv_outer : point;  (** the workload crash point recovery started from *)
  rv_inner : point option;
      (** crash point within recovery's own writes; [None] means the
          early-open recovery itself (on-demand verification, completion
          or the eager re-verification) failed before any inner crash *)
  rv_problems : string list;
}

type recovery_result = {
  rr_workload : string;
  rr_seed : int;
  rr_outer_checked : int;  (** workload crash points examined *)
  rr_inner_checked : int;
      (** recovery-internal crash points checked, summed over all outer
          points *)
  rr_inner_torn : int;  (** of those, torn variants *)
  rr_recovery_writes : int;
      (** disk writes recovery performed, summed over all outer points *)
  rr_ondemand_units : int;
      (** oracle units verified through on-demand reads, summed *)
  rr_violation_points : int;
  rr_violations : recovery_violation list;
      (** capped at {!max_kept_violations} *)
  rr_writes_file : string option;
      (** pre-crash write trace of the first violation's outer point,
          written when [run_during_recovery ~trace_dir] was given *)
}

val recovery_ok : recovery_result -> bool

val run_during_recovery :
  ?granularity:int ->
  ?budget:int ->
  ?inner_budget:int ->
  ?seed:int ->
  ?recover_config:Lld_core.Config.t ->
  ?trace_dir:string ->
  ?progress:(outer:int -> total:int -> unit) ->
  trace ->
  recovery_result
(** Crash-during-recovery check of [trace].  [budget] (default 24)
    deterministically samples the workload crash points recovery starts
    from; [inner_budget] (default: exhaustive) optionally samples the
    crash points within each recovery's own write sequence.
    [recover_config] overrides the base config ([recovery_early_open]
    is forced on for the outer recovery; inner re-recoveries use it
    unchanged, exercising the eager path). *)

val pp_recovery_result : Format.formatter -> recovery_result -> unit

(** {1 Sharded crash points: cross-shard ARUs under two-phase commit}

    The sharded front-end ({!Lld_core.Shard}) commits an ARU spanning P
    shards with 2PC over the shards' summary records (DESIGN.md §5.14);
    the atomicity claim is then {e cross-device}: after a whole-machine
    crash, a multi-shard unit is visible on all its shards or none.
    This checker records the S disks' writes as one interleaved global
    trace — the facade is single-threaded, so observer firing order is
    the global persistence order — and crash points are prefixes of
    that order: all shards' media freeze together.  Prepare and Decide
    seals are ordinary traced writes, so the enumeration covers
    complete and torn crashes between a participant's prepare and the
    coordinator's decision, inside either record's seal, and in the
    decided-but-unpropagated window a lazy participant [Decide] leaves
    open.  Each point recovers with {!Lld_core.Shard.recover} (the
    cross-shard decision scan) and is judged by the same all-or-nothing
    oracle as the flat checker, plus
    {!Lld_core.Shard.recovery_invariant_errors} and the idempotent
    re-recovery check. *)

type sharded_spec = {
  ss_name : string;
  ss_geom : Lld_disk.Geometry.t;
  ss_config : Lld_core.Config.t;
  ss_shards : int;
  ss_run : Lld_core.Shard.t -> Lld_workload.Oracle.t -> unit;
      (** drive the workload and populate the oracle; must end with a
          flush so the trace closes on a persistent state *)
}

val cross_shard_spec : ?shards:int -> unit -> sharded_spec
(** The cross-shard traced workload (default 3 shards): per-shard
    anchor and rail units, two committed two-shard ARUs (one with its
    lazy participant [Decide] left buffered across later crash points),
    one ARU spanning all shards, and one multi-shard ARU whose data is
    flushed durable on two shards but never committed — no crash image
    may surface it. *)

type sharded_trace

val record_sharded : sharded_spec -> sharded_trace
(** Run the workload once on [ss_shards] fresh disks sharing one
    virtual clock, recording every shard's base image and the
    interleaved (shard, offset, data) write trace.  The per-shard
    backend honours [LLD_BACKEND=file] exactly as {!record}. *)

val sharded_trace_writes : sharded_trace -> int
val sharded_trace_oracle_units : sharded_trace -> int

val enumerate_sharded : ?granularity:int -> sharded_trace -> point list
(** Crash points over the global interleaved write order, complete and
    torn, in the same canonical order as {!enumerate}. *)

val check_sharded_point :
  ?recover_config:Lld_core.Config.t -> sharded_trace -> point -> string list
(** Materialise every shard's image as of the crash point, recover the
    whole array with {!Lld_core.Shard.recover}, verify all invariants
    (including a second recovery for idempotence).  Returns the
    violations ([[]] = consistent). *)

val run_sharded :
  ?granularity:int ->
  ?budget:int ->
  ?seed:int ->
  ?recover_config:Lld_core.Config.t ->
  ?shrink_limit:int ->
  ?progress:(checked:int -> selected:int -> unit) ->
  sharded_trace ->
  result
(** The sharded analogue of {!run}: exhaustive without [budget],
    deterministically sampled with it, failing points shrunk to the
    earliest failing point of the full enumeration.  The result reuses
    {!result} / {!ok} / {!pp_result}; the forensic-dump fields are
    [None] (per-shard bundles are a CLI affair). *)

(** {1 Silent corruption}

    Crash points test atomicity against power loss; this check tests
    the checksummed format against {e media rot}.  It records the
    workload once, then runs three scenarios against independent mounts
    of the final image: a rotted segment header on a cold mount (the
    slot data is intact — scrub must salvage every live block), a
    rotted generational-superblock slot (scrub rewrites it; both
    generations survive a remount), and slot-data rot under a warm
    instance (scrub relocates the cached pristine copy).  After each
    scrub the full oracle is re-verified and the healed image is
    remounted and verified again. *)

type corruption_result = {
  c_workload : string;
  c_rounds : int;  (** corruption scenarios actually exercised *)
  c_bad_slots : int;  (** live slots found failing their CRC *)
  c_repaired : int;  (** relocated from a cached pristine copy *)
  c_salvaged : int;  (** raw bytes rescued from a meta-rotted segment *)
  c_lost : int;  (** honestly reported unrepairable *)
  c_superblock_repaired : int;
  c_problems : string list;  (** empty iff every scenario healed fully *)
}

val corruption_check :
  ?backend:Lld_disk.Backend.t -> spec -> corruption_result

val corruption_ok : corruption_result -> bool
val pp_corruption_result : Format.formatter -> corruption_result -> unit
