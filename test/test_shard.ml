(* The sharded facade (lib/core/shard.ml): single-shard passthrough
   bit-identity, cross-shard two-phase commit, presumed abort after a
   coordinator loss, lazy-decide propagation at the next mount, and
   per-shard maintenance (scrub / info). *)

open Helpers
module Shard = Lld_core.Shard
module Op = Lld_core.Op
module Counters = Lld_core.Counters
module Recovery = Lld_core.Recovery

let fresh_sharded ?(s = 2) ?(config = Config.default) () =
  let clock = Clock.create () in
  let disks =
    Array.init s (fun _ ->
        let backend = default_backend small_geom in
        Disk.create ?backend ~clock small_geom)
  in
  let t = Shard.create ~config disks in
  (disks, t)

let remount ?config disks =
  let clock = Clock.create () in
  let disks' =
    Array.map
      (fun d -> Disk.load ~clock (Disk.geometry d) (Disk.snapshot d))
      disks
  in
  Shard.recover ?config disks'

let aid = Types.Aru_id.of_int
let lid = Types.List_id.of_int
let bid = Types.Block_id.of_int

(* ------------------------------------------------------------------ *)
(* Single-shard passthrough: the facade over one disk must be
   bit-identical to the bare Lld — same identifiers, same image, same
   virtual clock, same counters. *)

let passthrough_ops =
  (* identifiers are deterministic: ARUs from 1, lists from 1, blocks
     from 0 — identical on both sides iff the facade is a passthrough *)
  [
    Op.Begin_aru;
    Op.New_list (Some (aid 1));
    Op.New_block { aru = Some (aid 1); list = lid 1; pred = Summary.Head };
    Op.Write { aru = Some (aid 1); block = bid 0; data = block_data 10 };
    Op.End_aru (aid 1);
    Op.New_list None;
    Op.New_block { aru = None; list = lid 2; pred = Summary.Head };
    Op.Write { aru = None; block = bid 1; data = block_data 11 };
    Op.Begin_aru;
    Op.New_block
      { aru = Some (aid 2); list = lid 2; pred = Summary.After (bid 1) };
    Op.Submit_commit (aid 2);
    Op.Flush_commits;
    Op.Read { aru = None; block = bid 2 };
    Op.Delete_block { aru = None; block = bid 1 };
    Op.Lists;
    Op.Flush;
  ]

module Apply_lld = Op.Make (Lld)
module Apply_shard = Op.Make (Shard)

let test_single_shard_passthrough () =
  let _disk_l, lld = fresh_lld () in
  let disks_s, sharded = fresh_sharded ~s:1 () in
  List.iteri
    (fun i op ->
      let rl = Apply_lld.apply lld op in
      let rs = Apply_shard.apply sharded op in
      Alcotest.(check bool)
        (Format.asprintf "op %d (%a) results agree" i Op.pp op)
        true
        (Op.equal_result rl rs))
    passthrough_ops;
  Lld.checkpoint lld;
  Shard.checkpoint sharded;
  Alcotest.(check bool)
    "counters identical" true
    (Counters.equal (Lld.counters lld) (Shard.counters sharded));
  Alcotest.(check int)
    "virtual clock identical"
    (Clock.now_ns (Lld.clock lld))
    (Clock.now_ns (Shard.clock sharded));
  Alcotest.(check bool)
    "on-disk image identical" true
    (Bytes.equal (Disk.snapshot (Lld.disk lld)) (Disk.snapshot disks_s.(0)));
  (* and the facade mounts it back as a plain Lld would *)
  let sharded', reports = remount disks_s in
  Alcotest.(check int) "one report" 1 (Array.length reports);
  Alcotest.(check (list string))
    "no invariant violations" []
    (Shard.recovery_invariant_errors sharded');
  Alcotest.(check bool)
    "list 2 survived" true
    (Shard.list_exists sharded' (lid 2))

(* ------------------------------------------------------------------ *)
(* Placement: routing respects the pure maps, and a block always lands
   on its list's shard. *)

let test_placement_routing () =
  let _disks, t = fresh_sharded ~s:3 () in
  (* least-loaded placement spreads the first three lists over the
     three shards *)
  let l1 = Shard.new_list t () in
  let l2 = Shard.new_list t () in
  let l3 = Shard.new_list t () in
  let shard_of l = Shard.list_shard ~shards:3 (Types.List_id.to_int l) in
  Alcotest.(check (list int))
    "three lists on three distinct shards" [ 0; 1; 2 ]
    (List.sort Int.compare [ shard_of l1; shard_of l2; shard_of l3 ]);
  List.iter
    (fun l ->
      let b = Shard.new_block t ~list:l ~pred:Summary.Head () in
      Alcotest.(check int)
        "block lands on its list's shard" (shard_of l)
        (Shard.block_shard ~shards:3 (Types.Block_id.to_int b));
      Alcotest.(check bool)
        "member points back" true
        (Shard.block_member t b = Some l))
    [ l1; l2; l3 ]

(* ------------------------------------------------------------------ *)
(* Cross-shard commit: an ARU spanning three shards commits atomically
   with 2 prepare barriers + 1 decision — within the P+1 budget — and
   the whole transaction survives a remount even though the lazy
   Decide records were still buffered when the crash image was taken. *)

let cross_shard_tx t =
  let l1 = Shard.new_list t () in
  let l2 = Shard.new_list t () in
  let l3 = Shard.new_list t () in
  let a = Shard.begin_aru t in
  let bs =
    List.map
      (fun l ->
        let b = Shard.new_block t ~aru:a ~list:l ~pred:Summary.Head () in
        Shard.write t ~aru:a b (block_data (Types.List_id.to_int l));
        b)
      [ l1; l2; l3 ]
  in
  (a, [ l1; l2; l3 ], bs)

let test_cross_shard_commit () =
  let disks, t = fresh_sharded ~s:3 () in
  let a, ls, bs = cross_shard_tx t in
  Alcotest.(check (list int)) "spans all shards" [ 0; 1; 2 ] (Shard.aru_shards t a);
  Shard.end_aru t a;
  let c = Shard.total_counters t in
  Alcotest.(check int) "one cross-shard commit" 1 c.Counters.cross_shard_commits;
  Alcotest.(check int) "P-1 prepare barriers" 2 c.Counters.prepare_barriers;
  List.iter2
    (fun l b ->
      check_data "committed data readable"
        (block_data (Types.List_id.to_int l))
        (Shard.read t b))
    ls bs;
  (* crash now: the participants' lazy Decide records are still in
     their open segments — recovery must resolve the dangling prepares
     against the coordinator's durable Decide *)
  let t', reports = remount disks in
  let resolved =
    Array.fold_left
      (fun acc r -> acc + r.Recovery.prepares_committed)
      0 reports
  in
  Alcotest.(check int) "both dangling prepares resolved committed" 2 resolved;
  Alcotest.(check (list string))
    "no invariant violations" []
    (Shard.recovery_invariant_errors t');
  List.iter2
    (fun l b ->
      Alcotest.(check bool) "list survived" true (Shard.list_exists t' l);
      check_data "data survived the remount"
        (block_data (Types.List_id.to_int l))
        (Shard.read t' b))
    ls bs;
  Alcotest.(check bool)
    "gid watermark advanced past the transaction" true
    (Shard.next_gid t' > 1)

(* ------------------------------------------------------------------ *)
(* Presumed abort: a participant crashes holding a prepare whose
   coordinator never decided — recovery must abort it wholesale. *)

let test_presumed_abort () =
  let disks, t = fresh_sharded ~s:2 () in
  (* a committed survivor on shard 1, to prove the abort is surgical *)
  let keep = Shard.new_list t () in
  let keep2 = Shard.new_list t () in
  let survivor =
    Shard.new_block t ~list:keep2 ~pred:Summary.Head ()
  in
  Shard.write t survivor (block_data 7);
  Shard.flush t;
  ignore keep;
  (* drive shard 1 directly into the prepared state: the coordinator
     (shard 0) dies before writing any Decide for gid 9 *)
  let sh1 = (Shard.handles t).(1) in
  let a = Lld.begin_aru sh1 in
  let l = Lld.new_list sh1 ~aru:a () in
  let b = Lld.new_block sh1 ~aru:a ~list:l ~pred:Summary.Head () in
  Lld.write sh1 ~aru:a b (block_data 8);
  Lld.prepare_commit sh1 a ~gid:9 ~coordinator:0;
  Alcotest.(check (list int))
    "prepared on shard 1"
    [ Types.Aru_id.to_int a ]
    (Lld.prepared_arus sh1);
  let t', reports = remount disks in
  Alcotest.(check int)
    "dangling prepare aborted" 1
    reports.(1).Recovery.prepares_aborted;
  Alcotest.(check int)
    "nothing spuriously committed" 0
    (Array.fold_left
       (fun acc r -> acc + r.Recovery.prepares_committed)
       0 reports);
  Alcotest.(check (list string))
    "no invariant violations" []
    (Shard.recovery_invariant_errors t');
  (* the prepared ARU's list died with it; the committed survivor and
     the gid watermark are intact *)
  let sh1' = (Shard.handles t').(1) in
  Alcotest.(check bool)
    "prepared ARU's list swept" false
    (Lld.list_exists sh1' l);
  check_data "survivor intact" (block_data 7) (Shard.read t' survivor);
  Alcotest.(check bool)
    "gid watermark past the aborted prepare" true
    (Shard.next_gid t' >= 10)

(* ------------------------------------------------------------------ *)
(* A participant's disk dies during its prepare seal: the facade must
   presume abort in place — no slice left prepared, the entry gone, the
   surviving shards still live — rather than dangle until a remount. *)

let test_prepare_failure_aborts_in_place () =
  let disks, t = fresh_sharded ~s:2 () in
  let l1 = Shard.new_list t () in
  let l2 = Shard.new_list t () in
  (* a committed block on the shard that is about to fail, to prove the
     in-place abort doesn't disturb durable state *)
  let survivor = Shard.new_block t ~list:l2 ~pred:Summary.Head () in
  Shard.write t survivor (block_data 30);
  Shard.flush t;
  let a = Shard.begin_aru t in
  let b1 = Shard.new_block t ~aru:a ~list:l1 ~pred:Summary.Head () in
  let b2 = Shard.new_block t ~aru:a ~list:l2 ~pred:Summary.Head () in
  Shard.write t ~aru:a b1 (block_data 31);
  Shard.write t ~aru:a b2 (block_data 32);
  (* shard 1 is the sole non-coordinator: its prepare seal is the next
     write to its disk, and it dies there *)
  Fault.schedule_crash (Disk.fault disks.(1)) (Fault.After_writes 0);
  (match Shard.end_aru t a with
  | () -> Alcotest.fail "end_aru should have died in the prepare phase"
  | exception Fault.Crashed -> ());
  (* the transaction was presumed aborted in place: no prepared slice,
     no facade entry, nothing counted committed *)
  Alcotest.(check (list int))
    "no dangling prepare on the dead shard" []
    (Lld.prepared_arus (Shard.handles t).(1));
  (match Shard.abort_aru t a with
  | () -> Alcotest.fail "entry should already be gone"
  | exception Errors.Unknown_aru _ -> ());
  Alcotest.(check int)
    "no cross-shard commit recorded" 0
    (Shard.total_counters t).Counters.cross_shard_commits;
  (* the surviving shard is still fully live *)
  let a' = Shard.begin_aru t in
  let b' = Shard.new_block t ~aru:a' ~list:l1 ~pred:Summary.Head () in
  Shard.write t ~aru:a' b' (block_data 33);
  Shard.end_aru t a';
  check_data "survivor shard commits" (block_data 33) (Shard.read t b');
  (* remounting the crashed image finds nothing dangling — the prepare
     never reached shard 1's log — and durable state is intact *)
  let t', reports = remount disks in
  Alcotest.(check int)
    "nothing to resolve at recovery" 0
    (Array.fold_left
       (fun acc r ->
         acc + r.Recovery.prepares_committed + r.Recovery.prepares_aborted)
       0 reports);
  Alcotest.(check (list string))
    "no invariant violations" []
    (Shard.recovery_invariant_errors t');
  check_data "pre-crash durable block intact" (block_data 30)
    (Shard.read t' survivor)

(* ------------------------------------------------------------------ *)
(* The same dangling-prepare shape, but the coordinator's Decide is
   durable: the next mount must propagate the commit. *)

let test_decide_propagation_on_mount () =
  let disks, t = fresh_sharded ~s:2 () in
  let l1 = Shard.new_list t () in
  let l2 = Shard.new_list t () in
  let a = Shard.begin_aru t in
  let b1 = Shard.new_block t ~aru:a ~list:l1 ~pred:Summary.Head () in
  let b2 = Shard.new_block t ~aru:a ~list:l2 ~pred:Summary.Head () in
  Shard.write t ~aru:a b1 (block_data 21);
  Shard.write t ~aru:a b2 (block_data 22);
  (* end_aru seals the prepare (participant) and the decision
     (coordinator); the participant's lazy Decide stays buffered *)
  Shard.end_aru t a;
  let t', reports = remount disks in
  Alcotest.(check int)
    "participant's prepare resolved committed" 1
    (Array.fold_left
       (fun acc r -> acc + r.Recovery.prepares_committed)
       0 reports);
  check_data "coordinator slice visible" (block_data 21) (Shard.read t' b1);
  check_data "participant slice visible" (block_data 22) (Shard.read t' b2);
  (* and re-mounting the recovered state is quiescent: nothing dangles *)
  let _t'', reports2 = remount disks in
  Alcotest.(check int)
    "second mount of the same image resolves identically" 1
    (Array.fold_left
       (fun acc r ->
         acc + r.Recovery.prepares_committed + r.Recovery.prepares_aborted)
       0 reports2)

(* ------------------------------------------------------------------ *)
(* Maintenance fans out per shard: scrub reports and info-style gauges
   come back one per shard. *)

let test_scrub_and_info_per_shard () =
  let _disks, t = fresh_sharded ~s:3 () in
  let _a, _ls, _bs = cross_shard_tx t in
  (* leave the ARU open; scrub flushes committed state only *)
  let reports = Shard.scrub t in
  Alcotest.(check int) "one scrub report per shard" 3 (Array.length reports);
  Array.iter
    (fun r ->
      Alcotest.(check int) "no bad slots" 0 r.Lld.scrub_bad_slots;
      Alcotest.(check int) "no losses" 0 r.Lld.scrub_lost)
    reports;
  let per_shard =
    Array.map Lld.allocated_blocks (Shard.handles t) |> Array.to_list
  in
  Alcotest.(check int)
    "facade sums shard gauges"
    (List.fold_left ( + ) 0 per_shard)
    (Shard.allocated_blocks t);
  Alcotest.(check int)
    "capacity is the striped sum"
    (3 * Lld.capacity (Shard.handles t).(0))
    (Shard.capacity t)

let () =
  Alcotest.run "shard"
    [
      ( "passthrough",
        [
          Alcotest.test_case "single shard is bit-identical" `Quick
            test_single_shard_passthrough;
        ] );
      ( "placement",
        [ Alcotest.test_case "routing follows the maps" `Quick
            test_placement_routing ]
      );
      ( "two-phase commit",
        [
          Alcotest.test_case "cross-shard commit, barriers, remount" `Quick
            test_cross_shard_commit;
          Alcotest.test_case "presumed abort after coordinator loss" `Quick
            test_presumed_abort;
          Alcotest.test_case "mid-prepare failure aborts in place" `Quick
            test_prepare_failure_aborts_in_place;
          Alcotest.test_case "decide propagates on the next mount" `Quick
            test_decide_propagation_on_mount;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "scrub and gauges fan out per shard" `Quick
            test_scrub_and_info_per_shard;
        ] );
    ]
