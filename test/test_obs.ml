module Clock = Lld_sim.Clock
module Histogram = Lld_sim.Stats.Histogram
module Trace = Lld_obs.Trace
module Metrics = Lld_obs.Metrics
module Obs = Lld_obs.Obs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------- null *)

let test_null_is_inert () =
  Alcotest.(check bool) "inactive" false (Obs.active Obs.null);
  let r = Obs.timed Obs.null Trace.Op "write" (fun () -> 42) in
  Alcotest.(check int) "timed passes through" 42 r;
  Obs.instant Obs.null Trace.Disk "marker" [];
  Obs.observe Obs.null "op.write" 123;
  Alcotest.(check int) "nothing recorded" 0 (Trace.count (Obs.trace Obs.null));
  Alcotest.(check int)
    "no histograms" 0
    (List.length (Metrics.histograms (Obs.metrics Obs.null)))

(* ------------------------------------------------------------ timed *)

let test_timed_records_span_and_histogram () =
  let clock = Clock.create () in
  let obs = Obs.create ~clock () in
  Clock.charge clock Clock.Cpu 1_000;
  let r =
    Obs.timed obs Trace.Op "write" (fun () ->
        Clock.charge clock Clock.Io 500;
        "done")
  in
  Alcotest.(check string) "result" "done" r;
  (match Trace.events (Obs.trace obs) with
  | [ e ] ->
    Alcotest.(check string) "name" "write" e.Trace.ev_name;
    Alcotest.(check bool) "cat" true (e.Trace.ev_cat = Trace.Op);
    Alcotest.(check int) "ts" 1_000 e.Trace.ev_ts_ns;
    Alcotest.(check int) "dur" 500 e.Trace.ev_dur_ns
  | es -> Alcotest.failf "expected one event, got %d" (List.length es));
  match Metrics.find_histogram (Obs.metrics obs) "op.write" with
  | None -> Alcotest.fail "histogram op.write missing"
  | Some h ->
    Alcotest.(check int) "samples" 1 (Histogram.count h);
    Alcotest.(check int) "sum is virtual duration" 500 (Histogram.sum h)

let test_timed_exn_span_no_sample () =
  let clock = Clock.create () in
  let obs = Obs.create ~clock () in
  (try
     Obs.timed obs Trace.Op "boom" (fun () ->
         Clock.charge clock Clock.Cpu 100;
         failwith "crash")
   with Failure _ -> ());
  (match Trace.events (Obs.trace obs) with
  | [ e ] ->
    Alcotest.(check bool)
      "exn tag present" true
      (List.mem_assoc "exn" e.Trace.ev_args)
  | es -> Alcotest.failf "expected one event, got %d" (List.length es));
  (* an interrupted operation is not a completed-latency sample *)
  match Metrics.find_histogram (Obs.metrics obs) "op.boom" with
  | None -> ()
  | Some h -> Alcotest.(check int) "no sample" 0 (Histogram.count h)

let test_hist_key () =
  Alcotest.(check string) "op" "op.read" (Obs.hist_key Trace.Op "read");
  Alcotest.(check string) "recovery" "recovery.replay"
    (Obs.hist_key Trace.Recovery "replay")

(* -------------------------------------------------------- filtering *)

let test_category_filter () =
  let clock = Clock.create () in
  let t = Trace.create ~categories:[ Trace.Op ] ~clock () in
  Alcotest.(check bool) "op on" true (Trace.on t Trace.Op);
  Alcotest.(check bool) "disk off" false (Trace.on t Trace.Disk);
  Trace.instant t Trace.Op "kept" [];
  Trace.instant t Trace.Disk "dropped" [];
  Alcotest.(check int) "only op recorded" 1 (Trace.count t);
  match Trace.events t with
  | [ e ] -> Alcotest.(check string) "kept" "kept" e.Trace.ev_name
  | _ -> Alcotest.fail "expected exactly one event"

(* ------------------------------------------------------ ring buffer *)

let test_ring_overwrites_oldest () =
  let clock = Clock.create () in
  let t = Trace.create ~capacity:4 ~clock () in
  for i = 1 to 10 do
    Clock.charge clock Clock.Cpu 1;
    Trace.instant t Trace.Op (Printf.sprintf "e%d" i) []
  done;
  Alcotest.(check int) "total count" 10 (Trace.count t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let names = List.map (fun e -> e.Trace.ev_name) (Trace.events t) in
  Alcotest.(check (list string)) "last four, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ] names;
  let ts = List.map (fun e -> e.Trace.ev_ts_ns) (Trace.events t) in
  Alcotest.(check (list int)) "timestamps ascending" [ 7; 8; 9; 10 ] ts

(* ----------------------------------------------------------- export *)

let test_chrome_export_shape () =
  let clock = Clock.create () in
  let t = Trace.create ~clock () in
  Trace.span t Trace.Disk "write \"0\"\\" ~args:[ ("offset", Trace.I 512) ]
    (fun () -> Clock.charge clock Clock.Io 1500);
  Trace.instant t Trace.Clean "batch" [ ("gain", Trace.F 0.5) ];
  let s = Trace.to_chrome_string t in
  Alcotest.(check bool) "displayTimeUnit" true (contains s "\"displayTimeUnit\":\"ns\"");
  Alcotest.(check bool) "traceEvents" true (contains s "\"traceEvents\":[");
  Alcotest.(check bool) "escaped quote+backslash" true
    (contains s "write \\\"0\\\"\\\\");
  Alcotest.(check bool) "complete phase" true (contains s "\"ph\":\"X\"");
  Alcotest.(check bool) "instant phase" true (contains s "\"ph\":\"i\"");
  Alcotest.(check bool) "duration in us" true (contains s "\"dur\":1.500");
  let jsonl = Trace.to_jsonl_string t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one JSONL line per event" 2 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check bool) "line is an object" true (l.[0] = '{'))
    lines;
  Alcotest.(check bool) "exact ns in JSONL" true
    (contains jsonl "\"dur_ns\":1500")

(* ---------------------------------------------------------- metrics *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.observe m "op.read" 100;
  Metrics.observe m "op.read" 300;
  Metrics.observe m "op.write" 50;
  (match Metrics.find_histogram m "op.read" with
  | Some h -> Alcotest.(check int) "two samples" 2 (Histogram.count h)
  | None -> Alcotest.fail "op.read missing");
  Alcotest.(check (list string))
    "first-use order" [ "op.read"; "op.write" ]
    (List.map fst (Metrics.histograms m));
  let v = ref 1 in
  Metrics.register_gauge m ~name:"g" ~help:"old" (fun () -> !v);
  Metrics.register_gauge m ~name:"g" ~help:"new" (fun () -> !v * 2);
  v := 21;
  (match Metrics.sample_gauges m with
  | [ (name, value, help) ] ->
    Alcotest.(check string) "name" "g" name;
    Alcotest.(check int) "replaced closure sampled live" 42 value;
    Alcotest.(check string) "replaced help" "new" help
  | gs -> Alcotest.failf "expected one gauge, got %d" (List.length gs));
  let json = Metrics.to_json_string m in
  Alcotest.(check bool) "gauges key" true (contains json "\"gauges\":{");
  Alcotest.(check bool) "histograms key" true (contains json "\"histograms\":{");
  Alcotest.(check bool) "gauge value" true (contains json "\"g\":42");
  Alcotest.(check bool) "histogram count" true (contains json "\"count\":2")

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "null handle is inert" `Quick test_null_is_inert;
          Alcotest.test_case "timed records span + histogram" `Quick
            test_timed_records_span_and_histogram;
          Alcotest.test_case "timed on exception: span, no sample" `Quick
            test_timed_exn_span_no_sample;
          Alcotest.test_case "hist_key convention" `Quick test_hist_key;
        ] );
      ( "trace",
        [
          Alcotest.test_case "category filtering" `Quick test_category_filter;
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_ring_overwrites_oldest;
          Alcotest.test_case "chrome + JSONL export shape" `Quick
            test_chrome_export_shape;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
    ]
