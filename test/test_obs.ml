module Clock = Lld_sim.Clock
module Histogram = Lld_sim.Stats.Histogram
module Trace = Lld_obs.Trace
module Flight = Lld_obs.Flight
module Metrics = Lld_obs.Metrics
module Obs = Lld_obs.Obs
module Errors = Lld_core.Errors

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------- null *)

let test_null_is_inert () =
  Alcotest.(check bool) "inactive" false (Obs.active Obs.null);
  let r = Obs.timed Obs.null Trace.Op "write" (fun () -> 42) in
  Alcotest.(check int) "timed passes through" 42 r;
  Obs.instant Obs.null Trace.Disk "marker" [];
  Obs.observe Obs.null "op.write" 123;
  Alcotest.(check int) "nothing recorded" 0 (Trace.count (Obs.trace Obs.null));
  Alcotest.(check int)
    "no histograms" 0
    (List.length (Metrics.histograms (Obs.metrics Obs.null)))

(* ------------------------------------------------------------ timed *)

let test_timed_records_span_and_histogram () =
  let clock = Clock.create () in
  let obs = Obs.create ~clock () in
  Clock.charge clock Clock.Cpu 1_000;
  let r =
    Obs.timed obs Trace.Op "write" (fun () ->
        Clock.charge clock Clock.Io 500;
        "done")
  in
  Alcotest.(check string) "result" "done" r;
  (match Trace.events (Obs.trace obs) with
  | [ e ] ->
    Alcotest.(check string) "name" "write" e.Trace.ev_name;
    Alcotest.(check bool) "cat" true (e.Trace.ev_cat = Trace.Op);
    Alcotest.(check int) "ts" 1_000 e.Trace.ev_ts_ns;
    Alcotest.(check int) "dur" 500 e.Trace.ev_dur_ns
  | es -> Alcotest.failf "expected one event, got %d" (List.length es));
  match Metrics.find_histogram (Obs.metrics obs) "op.write" with
  | None -> Alcotest.fail "histogram op.write missing"
  | Some h ->
    Alcotest.(check int) "samples" 1 (Histogram.count h);
    Alcotest.(check int) "sum is virtual duration" 500 (Histogram.sum h)

let test_timed_exn_span_no_sample () =
  let clock = Clock.create () in
  let obs = Obs.create ~clock () in
  (try
     Obs.timed obs Trace.Op "boom" (fun () ->
         Clock.charge clock Clock.Cpu 100;
         failwith "crash")
   with Failure _ -> ());
  (match Trace.events (Obs.trace obs) with
  | [ e ] ->
    Alcotest.(check bool)
      "exn tag present" true
      (List.mem_assoc "exn" e.Trace.ev_args)
  | es -> Alcotest.failf "expected one event, got %d" (List.length es));
  (* an interrupted operation is not a completed-latency sample *)
  match Metrics.find_histogram (Obs.metrics obs) "op.boom" with
  | None -> ()
  | Some h -> Alcotest.(check int) "no sample" 0 (Histogram.count h)

let test_hist_key () =
  Alcotest.(check string) "op" "op.read" (Obs.hist_key Trace.Op "read");
  Alcotest.(check string) "recovery" "recovery.replay"
    (Obs.hist_key Trace.Recovery "replay")

(* -------------------------------------------------------- filtering *)

let test_category_filter () =
  let clock = Clock.create () in
  let t = Trace.create ~categories:[ Trace.Op ] ~clock () in
  Alcotest.(check bool) "op on" true (Trace.on t Trace.Op);
  Alcotest.(check bool) "disk off" false (Trace.on t Trace.Disk);
  Trace.instant t Trace.Op "kept" [];
  Trace.instant t Trace.Disk "dropped" [];
  Alcotest.(check int) "only op recorded" 1 (Trace.count t);
  match Trace.events t with
  | [ e ] -> Alcotest.(check string) "kept" "kept" e.Trace.ev_name
  | _ -> Alcotest.fail "expected exactly one event"

(* ------------------------------------------------------ ring buffer *)

let test_ring_overwrites_oldest () =
  let clock = Clock.create () in
  let t = Trace.create ~capacity:4 ~clock () in
  for i = 1 to 10 do
    Clock.charge clock Clock.Cpu 1;
    Trace.instant t Trace.Op (Printf.sprintf "e%d" i) []
  done;
  Alcotest.(check int) "total count" 10 (Trace.count t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let names = List.map (fun e -> e.Trace.ev_name) (Trace.events t) in
  Alcotest.(check (list string)) "last four, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ] names;
  let ts = List.map (fun e -> e.Trace.ev_ts_ns) (Trace.events t) in
  Alcotest.(check (list int)) "timestamps ascending" [ 7; 8; 9; 10 ] ts

(* ----------------------------------------------------------- export *)

let test_chrome_export_shape () =
  let clock = Clock.create () in
  let t = Trace.create ~clock () in
  Trace.span t Trace.Disk "write \"0\"\\" ~args:[ ("offset", Trace.I 512) ]
    (fun () -> Clock.charge clock Clock.Io 1500);
  Trace.instant t Trace.Clean "batch" [ ("gain", Trace.F 0.5) ];
  let s = Trace.to_chrome_string t in
  Alcotest.(check bool) "displayTimeUnit" true (contains s "\"displayTimeUnit\":\"ns\"");
  Alcotest.(check bool) "traceEvents" true (contains s "\"traceEvents\":[");
  Alcotest.(check bool) "escaped quote+backslash" true
    (contains s "write \\\"0\\\"\\\\");
  Alcotest.(check bool) "complete phase" true (contains s "\"ph\":\"X\"");
  Alcotest.(check bool) "instant phase" true (contains s "\"ph\":\"i\"");
  Alcotest.(check bool) "duration in us" true (contains s "\"dur\":1.500");
  let jsonl = Trace.to_jsonl_string t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one JSONL line per event" 2 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check bool) "line is an object" true (l.[0] = '{'))
    lines;
  Alcotest.(check bool) "exact ns in JSONL" true
    (contains jsonl "\"dur_ns\":1500")

(* ---------------------------------------------------------- metrics *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.observe m "op.read" 100;
  Metrics.observe m "op.read" 300;
  Metrics.observe m "op.write" 50;
  (match Metrics.find_histogram m "op.read" with
  | Some h -> Alcotest.(check int) "two samples" 2 (Histogram.count h)
  | None -> Alcotest.fail "op.read missing");
  Alcotest.(check (list string))
    "first-use order" [ "op.read"; "op.write" ]
    (List.map fst (Metrics.histograms m));
  let v = ref 1 in
  Metrics.register_gauge m ~name:"g" ~help:"old" (fun () -> !v);
  Metrics.register_gauge m ~name:"g" ~help:"new" (fun () -> !v * 2);
  v := 21;
  (match Metrics.sample_gauges m with
  | [ (name, value, help) ] ->
    Alcotest.(check string) "name" "g" name;
    Alcotest.(check int) "replaced closure sampled live" 42 value;
    Alcotest.(check string) "replaced help" "new" help
  | gs -> Alcotest.failf "expected one gauge, got %d" (List.length gs));
  let json = Metrics.to_json_string m in
  Alcotest.(check bool) "gauges key" true (contains json "\"gauges\":{");
  Alcotest.(check bool) "histograms key" true (contains json "\"histograms\":{");
  Alcotest.(check bool) "gauge value" true (contains json "\"g\":42");
  Alcotest.(check bool) "histogram count" true (contains json "\"count\":2")

(* ------------------------------------------------------------- flow *)

let test_flow_chrome_export () =
  let clock = Clock.create () in
  let t = Trace.create ~clock () in
  Trace.flow t Trace.Aru "commit" ~phase:Trace.Flow_start ~id:7
    [ ("stage", Trace.S "submit") ];
  Clock.charge clock Clock.Cpu 100;
  Trace.flow t Trace.Aru "commit" ~phase:Trace.Flow_step ~id:7
    [ ("stage", Trace.S "batch") ];
  Clock.charge clock Clock.Cpu 100;
  Trace.flow t Trace.Aru "commit" ~phase:Trace.Flow_end ~id:7
    [ ("stage", Trace.S "wake") ];
  Alcotest.(check int) "three links" 3 (Trace.count t);
  (match Trace.events t with
  | [ s; st; e ] ->
    Alcotest.(check bool) "start" true (s.Trace.ev_flow = Some (Trace.Flow_start, 7));
    Alcotest.(check bool) "step" true (st.Trace.ev_flow = Some (Trace.Flow_step, 7));
    Alcotest.(check bool) "end" true (e.Trace.ev_flow = Some (Trace.Flow_end, 7))
  | es -> Alcotest.failf "expected three events, got %d" (List.length es));
  let s = Trace.to_chrome_string t in
  Alcotest.(check bool) "flow start phase" true (contains s "\"ph\":\"s\"");
  Alcotest.(check bool) "flow step phase" true (contains s "\"ph\":\"t\"");
  Alcotest.(check bool) "flow end phase" true (contains s "\"ph\":\"f\"");
  Alcotest.(check bool) "bound by id" true (contains s "\"id\":7");
  Alcotest.(check bool) "end binds to enclosing slice" true
    (contains s "\"ph\":\"f\",\"id\":7,\"bp\":\"e\"")

(* --------------------------------------------------- flight recorder *)

let test_flight_ring_wrap () =
  Alcotest.(check bool) "disabled is off" false (Flight.enabled Flight.disabled);
  Flight.record Flight.disabled "op" "noop" [];
  Alcotest.(check int) "disabled records nothing" 0
    (Flight.count Flight.disabled);
  let clock = Clock.create () in
  let fl = Flight.create ~capacity:4 ~clock () in
  for i = 1 to 10 do
    Clock.charge clock Clock.Cpu 1;
    Flight.record fl "op" (Printf.sprintf "e%d" i) [ ("i", Trace.I i) ]
  done;
  Alcotest.(check int) "total count" 10 (Flight.count fl);
  Alcotest.(check int) "dropped" 6 (Flight.dropped fl);
  let names = List.map (fun e -> e.Flight.fl_name) (Flight.entries fl) in
  Alcotest.(check (list string)) "last four, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ] names;
  let ts = List.map (fun e -> e.Flight.fl_ns) (Flight.entries fl) in
  Alcotest.(check (list int)) "virtual timestamps ascending" [ 7; 8; 9; 10 ] ts;
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Flight.to_jsonl_string fl))
  in
  Alcotest.(check int) "one JSONL line per held entry" 4 (List.length lines);
  Flight.clear fl;
  Alcotest.(check int) "clear empties the ring" 0
    (List.length (Flight.entries fl))

let test_flight_only_handle () =
  let clock = Clock.create () in
  let obs = Obs.flight_only ~clock () in
  Alcotest.(check bool) "not active" false (Obs.active obs);
  Alcotest.(check bool) "still recording" true (Obs.recording obs);
  Obs.event obs ~flow:(Trace.Flow_start, 3) Trace.Aru "commit"
    [ ("stage", Trace.S "submit") ];
  Alcotest.(check int) "flight saw the event" 1 (Flight.count (Obs.flight obs));
  Alcotest.(check int) "tracer stayed dark" 0 (Trace.count (Obs.trace obs));
  (match Flight.entries (Obs.flight obs) with
  | [ e ] ->
    Alcotest.(check bool) "flow phase folded into args" true
      (List.mem_assoc "flow" e.Flight.fl_args);
    Alcotest.(check bool) "flow id folded into args" true
      (List.mem_assoc "flow_id" e.Flight.fl_args)
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es));
  let r =
    Obs.timed obs Trace.Op "write" (fun () ->
        Clock.charge clock Clock.Io 500;
        17)
  in
  Alcotest.(check int) "timed passes through" 17 r;
  Alcotest.(check int) "timed left a black-box record" 2
    (Flight.count (Obs.flight obs));
  Alcotest.(check int) "no histograms on the black box" 0
    (List.length (Metrics.histograms (Obs.metrics obs)))

let test_env_default () =
  let clock = Clock.create () in
  Unix.putenv "LLD_FLIGHT" "0";
  let o = Obs.env_default ~clock Obs.null in
  Alcotest.(check bool) "stays inert without LLD_FLIGHT" false
    (Obs.recording o);
  Unix.putenv "LLD_FLIGHT" "1";
  let o = Obs.env_default ~clock Obs.null in
  Alcotest.(check bool) "upgraded to the black box" true (Obs.recording o);
  Alcotest.(check bool) "but not active" false (Obs.active o);
  let live = Obs.create ~clock () in
  Alcotest.(check bool) "recording handles pass through" true
    (Obs.env_default ~clock live == live);
  Unix.putenv "LLD_FLIGHT" "0"

(* ------------------------------------------------------- panic hook *)

let test_panic_hook () =
  Errors.clear_panic_hooks ();
  let seen = ref [] in
  Errors.on_panic (fun e -> seen := Printexc.to_string e :: !seen);
  Errors.on_panic (fun _ -> failwith "hook blows up (swallowed)");
  (try Errors.corrupt "bad segment"
   with Errors.Corrupt m -> Alcotest.(check string) "message" "bad segment" m);
  Alcotest.(check int) "surviving hook fired exactly once" 1
    (List.length !seen);
  Errors.clear_panic_hooks ();
  (try Errors.corrupt "again" with Errors.Corrupt _ -> ());
  Alcotest.(check int) "cleared hooks stay silent" 1 (List.length !seen)

(* ------------------------------------------------------ openmetrics *)

let test_counter_replace_by_name () =
  let m = Metrics.create () in
  let v = ref 1 in
  Metrics.register_counter m ~name:"c" ~help:"old" (fun () -> !v);
  Metrics.register_counter m ~name:"c" ~help:"new" (fun () -> !v * 10);
  v := 4;
  (match Metrics.sample_counters m with
  | [ ("c", 40, "new") ] -> ()
  | [ (n, v, h) ] -> Alcotest.failf "got (%s, %d, %s)" n v h
  | cs -> Alcotest.failf "expected one counter, got %d" (List.length cs));
  let om = Metrics.to_openmetrics_string m in
  Alcotest.(check bool) "counter family typed" true
    (contains om "# TYPE lld_c counter");
  Alcotest.(check bool) "_total suffix" true (contains om "lld_c_total 40")

let test_histogram_bucket_boundaries () =
  (* log2 buckets: bucket 0 holds the value 0; bucket i >= 1 holds
     [2^(i-1) .. 2^i - 1], so an exact power of two opens a bucket. *)
  Alcotest.(check int) "zero" 0 (Histogram.bucket_of 0);
  Alcotest.(check int) "one" 1 (Histogram.bucket_of 1);
  Alcotest.(check int) "1023 closes bucket 10" 10 (Histogram.bucket_of 1023);
  Alcotest.(check int) "1024 opens bucket 11" 11 (Histogram.bucket_of 1024);
  Alcotest.(check int) "bucket 11 lower bound" 1024 (Histogram.bucket_lo 11);
  Alcotest.(check int) "bucket 10 upper bound" 1023 (Histogram.bucket_hi 10);
  let h = Histogram.create () in
  Histogram.add h 1023;
  Histogram.add h 1024;
  (match Histogram.nonzero_buckets h with
  | [ (lo1, hi1, n1); (lo2, hi2, n2) ] ->
    Alcotest.(check (list int)) "adjacent buckets split the boundary"
      [ 512; 1023; 1; 1024; 2047; 1 ]
      [ lo1; hi1; n1; lo2; hi2; n2 ]
  | bs -> Alcotest.failf "expected two buckets, got %d" (List.length bs));
  (* percentiles clamp to the observed range, never under-reporting *)
  Alcotest.(check int) "p99 clamps to max" 1024 (Histogram.p99 h);
  Alcotest.(check bool) "p50 within factor 2" true
    (Histogram.p50 h >= 1023 && Histogram.p50 h <= 2046)

let test_openmetrics_golden () =
  let m = Metrics.create () in
  let reads = ref 7 in
  Metrics.register_counter m ~name:"reads" ~help:"total reads" (fun () ->
      !reads);
  Metrics.register_gauge m ~name:"free.segments" ~help:"free\\seg\ncount"
    (fun () -> 3);
  Metrics.observe m "op.read" 0;
  Metrics.observe m "op.read" 7;
  Metrics.observe m "op.read" 8;
  let expected =
    String.concat "\n"
      [
        "# TYPE lld_reads counter";
        "# HELP lld_reads total reads";
        "lld_reads_total 7";
        "# TYPE lld_free_segments gauge";
        "# HELP lld_free_segments free\\\\seg\\ncount";
        "lld_free_segments 3";
        "# TYPE lld_op_read histogram";
        "# HELP lld_op_read latency histogram (virtual ns)";
        "lld_op_read_bucket{le=\"0\"} 1";
        "lld_op_read_bucket{le=\"7\"} 2";
        "lld_op_read_bucket{le=\"15\"} 3";
        "lld_op_read_bucket{le=\"+Inf\"} 3";
        "lld_op_read_sum 15";
        "lld_op_read_count 3";
        "# EOF";
        "";
      ]
  in
  Alcotest.(check string) "golden exposition" expected
    (Metrics.to_openmetrics_string m)

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "null handle is inert" `Quick test_null_is_inert;
          Alcotest.test_case "timed records span + histogram" `Quick
            test_timed_records_span_and_histogram;
          Alcotest.test_case "timed on exception: span, no sample" `Quick
            test_timed_exn_span_no_sample;
          Alcotest.test_case "hist_key convention" `Quick test_hist_key;
        ] );
      ( "trace",
        [
          Alcotest.test_case "category filtering" `Quick test_category_filter;
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_ring_overwrites_oldest;
          Alcotest.test_case "chrome + JSONL export shape" `Quick
            test_chrome_export_shape;
          Alcotest.test_case "flow events bind s/t/f by id" `Quick
            test_flow_chrome_export;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wrap + dropped accounting" `Quick
            test_flight_ring_wrap;
          Alcotest.test_case "flight-only black box" `Quick
            test_flight_only_handle;
          Alcotest.test_case "LLD_FLIGHT=1 upgrades inert handles" `Quick
            test_env_default;
          Alcotest.test_case "panic hook fires and clears" `Quick
            test_panic_hook;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "counter replace-by-name" `Quick
            test_counter_replace_by_name;
          Alcotest.test_case "bucket boundaries at powers of two" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "OpenMetrics golden exposition" `Quick
            test_openmetrics_golden;
        ] );
    ]
