open Helpers
module Engine = Lld_core.Engine
module Op = Lld_core.Op
module Counters = Lld_core.Counters
module Obs = Lld_obs.Obs
module Trace = Lld_obs.Trace
module Metrics = Lld_obs.Metrics
module Stats = Lld_sim.Stats

(* ------------------------------------------------------------------ *)
(* Group-commit queue: batch close conditions (size, window, drain),
   FIFO draining, result delivery through the engine, and the window=0
   degeneration to the immediate commit path (DESIGN.md §5.11). *)

let config ~window ~batch =
  {
    Config.default with
    Config.group_commit_window = window;
    Config.group_commit_batch = batch;
  }

(* One ARU that allocates a private list with one written block, then
   queues its commit. *)
let submit_one lld tag =
  let a = Lld.begin_aru lld in
  let l = Lld.new_list lld ~aru:a () in
  let b = Lld.new_block lld ~aru:a ~list:l ~pred:Summary.Head () in
  Lld.write lld ~aru:a b (block_data tag);
  Lld.submit_commit lld a;
  a

let test_close_on_size () =
  (* the window never expires; only the size condition can close *)
  let _disk, lld = fresh_lld ~config:(config ~window:max_int ~batch:3) () in
  let c = Lld.counters lld in
  let before = c.Counters.arus_committed in
  let _a1 = submit_one lld 1 in
  Alcotest.(check bool) "1 queued: not due" false (Lld.commit_due lld);
  let _a2 = submit_one lld 2 in
  Alcotest.(check bool) "2 queued: not due" false (Lld.commit_due lld);
  let _a3 = submit_one lld 3 in
  Alcotest.(check bool) "3 queued: batch-size due" true (Lld.commit_due lld);
  Alcotest.(check int) "pending" 3 (Lld.pending_commits lld);
  Alcotest.(check int) "flush drains all" 3 (Lld.flush_commits lld);
  Alcotest.(check int) "queue empty" 0 (Lld.pending_commits lld);
  Alcotest.(check int) "one batch" 1 c.Counters.commit_batches;
  Alcotest.(check int) "one barrier for three commits" 1
    c.Counters.commit_barriers;
  Alcotest.(check int) "group commits" 3 c.Counters.group_commits;
  Alcotest.(check int) "arus committed" (before + 3) c.Counters.arus_committed

let test_close_on_window () =
  (* the batch size is unreachable; only the window can close *)
  let _disk, lld = fresh_lld ~config:(config ~window:5_000 ~batch:1000) () in
  let l = Lld.new_list lld () in
  let b = Lld.new_block lld ~list:l ~pred:Summary.Head () in
  let _a = submit_one lld 1 in
  Alcotest.(check int) "queued" 1 (Lld.pending_commits lld);
  (* reads charge virtual time; the oldest intent ages past the window *)
  let guard = ref 0 in
  while (not (Lld.commit_due lld)) && !guard < 100_000 do
    ignore (Lld.read lld b);
    incr guard
  done;
  Alcotest.(check bool) "window expiry makes the batch due" true
    (Lld.commit_due lld);
  Alcotest.(check int) "flush commits it" 1 (Lld.flush_commits lld)

let test_flush_empty_is_free () =
  let _disk, lld = fresh_lld ~config:(config ~window:max_int ~batch:8) () in
  Lld.flush lld;
  let disk = Lld.disk lld in
  let image = Disk.snapshot disk in
  let c = Lld.counters lld in
  Alcotest.(check int) "nothing to commit" 0 (Lld.flush_commits lld);
  Alcotest.(check int) "no batch counted" 0 c.Counters.commit_batches;
  Alcotest.(check int) "no barrier paid" 0 c.Counters.commit_barriers;
  Alcotest.(check bool) "disk untouched" true
    (Bytes.equal image (Disk.snapshot disk))

let test_commit_pending_rejections () =
  let _disk, lld = fresh_lld ~config:(config ~window:max_int ~batch:8) () in
  let a = submit_one lld 9 in
  Alcotest.(check bool) "queued" true (Lld.commit_pending lld a);
  Alcotest.check_raises "end_aru on a queued ARU" (Errors.Commit_pending a)
    (fun () -> Lld.end_aru lld a);
  Alcotest.check_raises "double submit" (Errors.Commit_pending a) (fun () ->
      Lld.submit_commit lld a);
  Alcotest.(check int) "still exactly one intent" 1 (Lld.pending_commits lld);
  Alcotest.(check int) "flush commits it once" 1 (Lld.flush_commits lld);
  Alcotest.(check bool) "gone from the queue" false (Lld.commit_pending lld a);
  Alcotest.(check bool) "no longer active" false (Lld.aru_active lld a)

(* PR 8: aborting a queued ARU withdraws the intent and aborts cleanly
   instead of raising Commit_pending. *)
let test_queued_abort_dequeues () =
  let disk, lld = fresh_lld ~config:(config ~window:max_int ~batch:8) () in
  let c = Lld.counters lld in
  let a1 = submit_one lld 1 in
  let a2 = submit_one lld 2 in
  let a3 = submit_one lld 3 in
  Alcotest.(check int) "three intents" 3 (Lld.pending_commits lld);
  Lld.abort_aru lld a2;
  Alcotest.(check int) "intent withdrawn" 2 (Lld.pending_commits lld);
  Alcotest.(check bool) "no longer pending" false (Lld.commit_pending lld a2);
  Alcotest.(check bool) "no longer active" false (Lld.aru_active lld a2);
  Alcotest.(check int) "queue abort counted" 1 c.Counters.commit_queue_aborts;
  Alcotest.(check int) "abort counted" 1 c.Counters.arus_aborted;
  Alcotest.(check int) "submits counted" 3 c.Counters.commits_submitted;
  (* head abort too: the window clock must follow the new oldest *)
  Lld.abort_aru lld a1;
  Alcotest.(check int) "head withdrawn" 1 (Lld.pending_commits lld);
  Alcotest.(check int) "survivor commits" 1 (Lld.flush_commits lld);
  Alcotest.(check bool) "survivor committed" false (Lld.aru_active lld a3);
  Alcotest.(check int) "one group commit" 1 c.Counters.group_commits;
  (* the aborted ARUs' data must not resurface after recovery *)
  Lld.flush lld;
  let image = Disk.snapshot (Lld.disk lld) in
  let disk' =
    Disk.load ~clock:(Clock.create ()) (Disk.geometry disk) (Bytes.copy image)
  in
  let lld', _ = Lld.recover disk' in
  let blocks l = List.length (Lld.list_blocks lld' l) in
  Alcotest.(check int) "exactly the survivor's list recovered" 1
    (List.length (List.filter (fun l -> blocks l > 0) (Lld.lists lld')))

let test_subbatch_split () =
  (* more intents than the batch limit: one drain, two sub-batches,
     two barriers, FIFO grouping *)
  let _disk, lld = fresh_lld ~config:(config ~window:max_int ~batch:2) () in
  let c = Lld.counters lld in
  (* build up a queue without tripping the due-poll (no engine here) *)
  let _a1 = submit_one lld 1 in
  let _a2 = submit_one lld 2 in
  let _a3 = submit_one lld 3 in
  Alcotest.(check int) "one drain commits all three" 3 (Lld.flush_commits lld);
  Alcotest.(check int) "two sub-batches" 2 c.Counters.commit_batches;
  Alcotest.(check int) "a barrier per sub-batch" 2 c.Counters.commit_barriers;
  Alcotest.(check int) "every member counted" 3 c.Counters.group_commits

(* ------------------------------------------------------------------ *)
(* The engine: run-to-completion loop, End_aru translation, parking,
   forced drain, and per-client result delivery. *)

(* A client that opens an ARU, fills a private list with [writes]
   written blocks, commits, and records [tag] once the commit's result
   arrives — immediately, or on wake after its batch flushed. *)
let client_commits ~writes tag woken =
  let aru = ref None in
  let list = ref None in
  let last = ref None in
  let written = ref 0 in
  let state = ref `Begin in
  let expect what r =
    Alcotest.failf "client %d: expected %s, got %a" tag what
      Format.(pp_print_option Op.pp_result)
      r
  in
  fun (r : Op.result option) ->
    match !state with
    | `Begin ->
      state := `List;
      Some Op.Begin_aru
    | `List ->
      (match r with Some (Op.R_aru a) -> aru := Some a | r -> expect "aru" r);
      state := `Block;
      Some (Op.New_list !aru)
    | `Block -> (
      (match r with
      | Some (Op.R_list l) -> list := Some l
      | Some (Op.R_unit) -> () (* a write completed *)
      | r -> expect "list or unit" r);
      match (!written < writes, !last) with
      | true, None ->
        state := `Write;
        Some
          (Op.New_block
             { aru = !aru; list = Option.get !list; pred = Summary.Head })
      | true, Some b ->
        state := `Write;
        Some
          (Op.New_block
             { aru = !aru; list = Option.get !list; pred = Summary.After b })
      | false, _ ->
        state := `Done;
        Some (Op.End_aru (Option.get !aru)))
    | `Write ->
      (match r with
      | Some (Op.R_block b) ->
        last := Some b;
        incr written
      | r -> expect "block" r);
      state := `Block;
      Some
        (Op.Write
           { aru = !aru; block = Option.get !last; data = block_data tag })
    | `Done ->
      woken := tag :: !woken;
      None

let test_engine_forced_drain () =
  (* neither size nor window can close: the only way commits complete
     is the engine's all-parked forced flush *)
  let _disk, lld = fresh_lld ~config:(config ~window:max_int ~batch:1000) () in
  let woken = ref [] in
  let clients =
    [
      client_commits ~writes:1 1 woken;
      client_commits ~writes:2 2 woken;
      client_commits ~writes:3 3 woken;
    ]
  in
  let stats = Engine.run lld clients in
  Alcotest.(check int) "three commits" 3 stats.Engine.commits;
  Alcotest.(check bool) "at least one forced flush" true
    (stats.Engine.forced_flushes >= 1);
  Alcotest.(check int) "all three in one drain" 3 stats.Engine.max_batch;
  Alcotest.(check int) "queue drained" 0 (Lld.pending_commits lld);
  (* every client received exactly one commit result *)
  Alcotest.(check (list int)) "every client woken once" [ 1; 2; 3 ]
    (List.sort compare !woken);
  let c = Lld.counters lld in
  Alcotest.(check int) "one barrier for the whole batch" 1
    c.Counters.commit_barriers;
  Alcotest.(check int) "forced flushes counted" stats.Engine.forced_flushes
    c.Counters.forced_flushes;
  Alcotest.(check int) "every wake counted" 3 c.Counters.commit_wakeups

let test_engine_size_close () =
  (* batch limit 2 with 4 clients: drains happen inside the loop via
     the due-poll, not only at the end *)
  let _disk, lld = fresh_lld ~config:(config ~window:max_int ~batch:2) () in
  let woken = ref [] in
  let clients =
    List.init 4 (fun i -> client_commits ~writes:(1 + i) (i + 1) woken)
  in
  let stats = Engine.run lld clients in
  Alcotest.(check int) "four commits" 4 stats.Engine.commits;
  Alcotest.(check bool) "no drain exceeded the batch limit" true
    (stats.Engine.max_batch <= 2);
  Alcotest.(check bool) "several flushes" true (stats.Engine.flushes >= 2);
  Alcotest.(check (list int)) "every client woken once" [ 1; 2; 3; 4 ]
    (List.sort compare !woken)

(* Client A submits its commit and parks; client B then aborts A's ARU.
   A must wake promptly (its intent resolved — as an abort), the loop
   must terminate, and nothing commits. *)
let test_engine_cross_client_abort () =
  let _disk, lld = fresh_lld ~config:(config ~window:max_int ~batch:1000) () in
  let shared = ref None in
  let a_woken = ref false in
  let a_state = ref `Begin in
  let client_a r =
    match !a_state with
    | `Begin ->
      a_state := `Submit;
      Some Op.Begin_aru
    | `Submit ->
      (match r with
      | Some (Op.R_aru a) -> shared := Some a
      | _ -> Alcotest.fail "client A expected an ARU");
      a_state := `Done;
      (* translated to Submit_commit by the engine; A parks *)
      Some (Op.End_aru (Option.get !shared))
    | `Done ->
      a_woken := r = Some Op.R_unit;
      None
  in
  let b_state = ref `Idle in
  let client_b _r =
    match (!b_state, !shared) with
    | `Idle, None -> Some (Op.New_list None) (* harmless filler step *)
    | `Idle, Some a ->
      b_state := `Done;
      Some (Op.Abort_aru a)
    | `Done, _ -> None
  in
  let stats = Engine.run lld [ client_a; client_b ] in
  Alcotest.(check bool) "A woke with its result" true !a_woken;
  Alcotest.(check int) "nothing committed" 0 stats.Engine.commits;
  Alcotest.(check int) "queue empty" 0 (Lld.pending_commits lld);
  let c = Lld.counters lld in
  Alcotest.(check int) "queued intent withdrawn" 1
    c.Counters.commit_queue_aborts;
  Alcotest.(check int) "aborted" 1 c.Counters.arus_aborted;
  Alcotest.(check int) "no group commit" 0 c.Counters.group_commits;
  Alcotest.(check int) "A's wake counted" 1 c.Counters.commit_wakeups

(* With a live handle attached, an engine run feeds the per-stage and
   per-client commit histograms and closes every flow chain. *)
let test_engine_stage_histograms () =
  let disk, lld = fresh_lld ~config:(config ~window:max_int ~batch:2) () in
  let obs = Obs.create ~clock:(Disk.clock disk) () in
  Lld.set_obs lld obs;
  let woken = ref [] in
  let clients = List.init 4 (fun i -> client_commits ~writes:1 (i + 1) woken) in
  ignore (Engine.run lld clients);
  let m = Obs.metrics obs in
  let count name =
    match Metrics.find_histogram m name with
    | Some h -> Stats.Histogram.count h
    | None -> 0
  in
  Alcotest.(check int) "queue-wait sample per commit" 4
    (count "aru.commit.queue_wait");
  Alcotest.(check int) "residency sample per commit" 4
    (count "aru.commit.batch_residency");
  Alcotest.(check bool) "barrier samples" true (count "aru.commit.barrier" >= 1);
  Alcotest.(check int) "wake sample per commit" 4 (count "aru.commit.wake");
  List.iteri
    (fun i _ ->
      Alcotest.(check int)
        (Printf.sprintf "client %d latency sample" i)
        1
        (count (Printf.sprintf "aru.commit.latency.c%d" i)))
    clients;
  (* every started flow chain terminates *)
  let evs = Trace.events (Obs.trace obs) in
  let phases want =
    List.length
      (List.filter
         (fun (e : Trace.event) ->
           e.Trace.ev_name = "commit"
           &&
           match e.Trace.ev_flow with
           | Some (p, _) -> p = want
           | None -> false)
         evs)
  in
  Alcotest.(check int) "flow starts" 4 (phases Trace.Flow_start);
  Alcotest.(check int) "flow ends" 4 (phases Trace.Flow_end);
  Alcotest.(check bool) "flow steps" true (phases Trace.Flow_step >= 8)

(* Run the same single-client workload through the engine twice — once
   with group commit enabled, once with the window at 0 — plus once as
   plain blocking calls, and require the window=0 run to be
   bit-identical (disk image and virtual clock) to the blocking run. *)
let test_window_zero_identity () =
  let woken = ref [] in
  let run_engine window =
    let disk, lld = fresh_lld ~config:(config ~window ~batch:8) () in
    ignore (Engine.run lld [ client_commits ~writes:3 5 woken ]);
    Lld.flush lld;
    (Disk.snapshot disk, Clock.now_ns (Lld.clock lld))
  in
  let run_blocking () =
    let disk, lld = fresh_lld ~config:(config ~window:0 ~batch:8) () in
    let a = Lld.begin_aru lld in
    let l = Lld.new_list lld ~aru:a () in
    let b1 = Lld.new_block lld ~aru:a ~list:l ~pred:Summary.Head () in
    Lld.write lld ~aru:a b1 (block_data 5);
    let b2 = Lld.new_block lld ~aru:a ~list:l ~pred:(Summary.After b1) () in
    Lld.write lld ~aru:a b2 (block_data 5);
    let b3 = Lld.new_block lld ~aru:a ~list:l ~pred:(Summary.After b2) () in
    Lld.write lld ~aru:a b3 (block_data 5);
    Lld.end_aru lld a;
    Lld.flush lld;
    (Disk.snapshot disk, Clock.now_ns (Lld.clock lld))
  in
  let zero_img, zero_ns = run_engine 0 in
  let block_img, block_ns = run_blocking () in
  Alcotest.(check bool) "window=0 disk image bit-identical" true
    (Bytes.equal zero_img block_img);
  Alcotest.(check int) "window=0 virtual clock identical" block_ns zero_ns;
  (* group commit reaches the same committed state (the image may
     differ: commit records are batched) *)
  let grouped_img, _ = run_engine max_int in
  let reload img =
    let disk = Disk.load ~clock:(Clock.create ()) small_geom (Bytes.copy img) in
    let lld, _ = Lld.recover disk in
    List.map
      (fun l -> (Types.List_id.to_int l, List.length (Lld.list_blocks lld l)))
      (Lld.lists lld)
  in
  Alcotest.(check (list (pair int int)))
    "grouped and immediate commits recover the same logical state"
    (reload block_img) (reload grouped_img)

let () =
  Alcotest.run "lld_engine"
    [
      ( "queue",
        [
          Alcotest.test_case "batch closes on size" `Quick test_close_on_size;
          Alcotest.test_case "batch closes on window expiry" `Quick
            test_close_on_window;
          Alcotest.test_case "empty flush is free" `Quick
            test_flush_empty_is_free;
          Alcotest.test_case "queued ARUs reject end/resubmit" `Quick
            test_commit_pending_rejections;
          Alcotest.test_case "abort dequeues a queued ARU" `Quick
            test_queued_abort_dequeues;
          Alcotest.test_case "oversize drain splits into sub-batches" `Quick
            test_subbatch_split;
        ] );
      ( "engine",
        [
          Alcotest.test_case "all-parked forces the drain" `Quick
            test_engine_forced_drain;
          Alcotest.test_case "size-close drains mid-loop" `Quick
            test_engine_size_close;
          Alcotest.test_case "cross-client abort wakes the waiter" `Quick
            test_engine_cross_client_abort;
          Alcotest.test_case "stage histograms and flow chains" `Quick
            test_engine_stage_histograms;
          Alcotest.test_case "window=0 degenerates bit-identically" `Quick
            test_window_zero_identity;
        ] );
    ]
