open Helpers
module Crashcheck = Lld_crashcheck.Crashcheck
module Oracle = Lld_workload.Oracle

(* Small spec instances so each test records and replays in well under a
   second; the full-size defaults are exercised by the CLI (and CI). *)
let churn () = Crashcheck.aru_churn_spec ~arus:12 ()
let files () = Crashcheck.smallfile_spec ~files:24 ()
let cleaning () = Crashcheck.cleaning_spec ~units:12 ()

(* ------------------------------------------------------------------ *)
(* Enumeration shape. *)

let test_enumerate () =
  let trace = Crashcheck.record (churn ()) in
  let n = Crashcheck.trace_writes trace in
  Alcotest.(check bool) "trace has writes" true (n > 0);
  let points = Crashcheck.enumerate trace in
  (match points with
  | { Crashcheck.pt_index = 0; pt_keep = None } :: _ -> ()
  | _ -> Alcotest.fail "enumeration must start at the empty prefix");
  (match List.rev points with
  | { Crashcheck.pt_index; pt_keep = None } :: _ ->
    Alcotest.(check int) "ends with the no-crash point" n pt_index
  | _ -> Alcotest.fail "enumeration must end with the no-crash point");
  List.iter
    (fun p ->
      match p.Crashcheck.pt_keep with
      | None -> ()
      | Some k ->
        if p.Crashcheck.pt_index >= n then
          Alcotest.fail "torn variant of a write outside the trace";
        if k <= 0 then Alcotest.fail "torn variant keeps nothing")
    points;
  (* complete points: one per write prefix, each exactly once *)
  let complete =
    List.filter (fun p -> p.Crashcheck.pt_keep = None) points
  in
  Alcotest.(check int) "one complete point per prefix" (n + 1)
    (List.length complete)

(* ------------------------------------------------------------------ *)
(* The checker finds nothing wrong with the real recovery. *)

let test_clean_churn () =
  let trace = Crashcheck.record (churn ()) in
  let r = Crashcheck.run ~budget:80 trace in
  Alcotest.(check bool) "no violations" true (Crashcheck.ok r);
  Alcotest.(check int) "checked what was asked" 80 r.Crashcheck.r_points_checked

let test_clean_smallfile () =
  let trace = Crashcheck.record (files ()) in
  let r = Crashcheck.run ~budget:60 trace in
  Alcotest.(check bool) "no violations" true (Crashcheck.ok r);
  Alcotest.(check bool) "torn variants were sampled" true
    (r.Crashcheck.r_torn_checked > 0)

let test_clean_cleaning () =
  (* the cleaning-heavy workload: forced relocation, the live index and
     the cleaner's checkpoint are all inside the recorded trace *)
  let trace = Crashcheck.record (cleaning ()) in
  let r = Crashcheck.run ~budget:60 trace in
  Alcotest.(check bool) "no violations" true (Crashcheck.ok r);
  Alcotest.(check bool) "oracle units recorded" true
    (Crashcheck.trace_oracle_units trace > 0)

let test_budget_deterministic () =
  let trace = Crashcheck.record (churn ()) in
  let r1 = Crashcheck.run ~budget:40 ~seed:7 trace in
  let r2 = Crashcheck.run ~budget:40 ~seed:7 trace in
  Alcotest.(check bool) "same seed, same sample" true (r1 = r2)

(* The sampling seed rides along in the result, so a failure report can
   always be replayed: run, read [r_seed] back, rerun with it. *)
let test_seed_roundtrip () =
  let trace = Crashcheck.record (churn ()) in
  let r = Crashcheck.run ~budget:40 ~seed:13 trace in
  Alcotest.(check int) "result records the sampling seed" 13
    r.Crashcheck.r_seed;
  let r' = Crashcheck.run ~budget:40 ~seed:r.Crashcheck.r_seed trace in
  Alcotest.(check bool) "rerun with the recorded seed reproduces" true (r = r');
  (* a failing run prints the seed so the report alone is enough *)
  let spec = churn () in
  let broken =
    { spec.Crashcheck.sc_config with Config.recovery_sweep = false }
  in
  let bad = Crashcheck.run ~budget:60 ~seed:21 ~recover_config:broken trace in
  Alcotest.(check bool) "broken recovery still fails" false (Crashcheck.ok bad);
  let report = Format.asprintf "%a" Crashcheck.pp_result bad in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "failure report names the seed" true
    (contains ~needle:"--seed 21" report)

(* ------------------------------------------------------------------ *)
(* Crashing during recovery itself: early-open on-demand verification
   plus crash points inside recovery's own write sequence. *)

let test_during_recovery_clean () =
  let trace = Crashcheck.record (churn ()) in
  let r = Crashcheck.run_during_recovery ~budget:6 ~inner_budget:8 trace in
  Alcotest.(check bool) "no violations" true (Crashcheck.recovery_ok r);
  Alcotest.(check int) "outer points checked" 6 r.Crashcheck.rr_outer_checked;
  Alcotest.(check bool) "inner crash points checked" true
    (r.Crashcheck.rr_inner_checked > 0);
  Alcotest.(check bool) "recovery writes recorded" true
    (r.Crashcheck.rr_recovery_writes > 0);
  Alcotest.(check bool) "oracle units judged on demand" true
    (r.Crashcheck.rr_ondemand_units > 0)

let test_during_recovery_deterministic () =
  let trace = Crashcheck.record (churn ()) in
  let r1 = Crashcheck.run_during_recovery ~budget:4 ~inner_budget:6 ~seed:5 trace in
  let r2 = Crashcheck.run_during_recovery ~budget:4 ~inner_budget:6 ~seed:5 trace in
  Alcotest.(check bool) "same seed, same sample" true (r1 = r2)

(* ------------------------------------------------------------------ *)
(* A deliberately broken recovery — consistency sweep disabled — must be
   caught, with a minimal reproducer that replays. *)

let test_catches_broken_sweep () =
  let spec = churn () in
  let broken =
    { spec.Crashcheck.sc_config with Config.recovery_sweep = false }
  in
  let trace = Crashcheck.record spec in
  let r = Crashcheck.run ~budget:60 ~recover_config:broken trace in
  Alcotest.(check bool) "violations found" false (Crashcheck.ok r);
  match r.Crashcheck.r_minimal with
  | None -> Alcotest.fail "no minimal reproducer"
  | Some v ->
    (* the reproducer replays on its own ... *)
    let problems = Crashcheck.check_point ~recover_config:broken trace v.Crashcheck.v_point in
    Alcotest.(check bool) "minimal reproducer replays" true (problems <> []);
    (* ... and is genuinely minimal: it is the earliest failing point of
       the full enumeration *)
    let points = Crashcheck.enumerate trace in
    let earlier =
      List.filter
        (fun p ->
          (p.Crashcheck.pt_index, p.Crashcheck.pt_keep)
          < (v.Crashcheck.v_point.Crashcheck.pt_index, v.Crashcheck.v_point.Crashcheck.pt_keep))
        points
    in
    List.iter
      (fun p ->
        if Crashcheck.check_point ~recover_config:broken trace p <> [] then
          Alcotest.failf "point %a fails earlier than the reported minimum"
            Crashcheck.pp_point p)
      earlier;
    (* the same point is fine under the real recovery *)
    Alcotest.(check (list string)) "real recovery is consistent there" []
      (Crashcheck.check_point trace v.Crashcheck.v_point)

(* ------------------------------------------------------------------ *)
(* Sharded crash points: the cross-shard workload's 2PC must be
   all-or-nothing across shards at EVERY crash point of the interleaved
   global write trace — exhaustively, torn prepare/decide seals
   included (the trace is small enough that sampling would be a
   covered by the budgeted sample; the CLI/CI runs carry the larger
   budgets and the exhaustive mode). *)

let test_sharded_clean () =
  let trace = Crashcheck.record_sharded (Crashcheck.cross_shard_spec ()) in
  Alcotest.(check bool) "trace has writes" true
    (Crashcheck.sharded_trace_writes trace > 0);
  Alcotest.(check bool) "oracle units recorded" true
    (Crashcheck.sharded_trace_oracle_units trace >= 8);
  let r = Crashcheck.run_sharded ~budget:100 trace in
  Alcotest.(check bool)
    (Format.asprintf "%a" Crashcheck.pp_result r)
    true (Crashcheck.ok r);
  Alcotest.(check int) "checked what was asked" 100
    r.Crashcheck.r_points_checked;
  Alcotest.(check bool) "torn variants checked" true
    (r.Crashcheck.r_torn_checked > 0)

let test_sharded_two_shards () =
  let trace =
    Crashcheck.record_sharded (Crashcheck.cross_shard_spec ~shards:2 ())
  in
  let r = Crashcheck.run_sharded ~budget:80 trace in
  Alcotest.(check bool)
    (Format.asprintf "%a" Crashcheck.pp_result r)
    true (Crashcheck.ok r)

let test_sharded_deterministic () =
  let trace = Crashcheck.record_sharded (Crashcheck.cross_shard_spec ()) in
  let r1 = Crashcheck.run_sharded ~budget:24 ~seed:7 trace in
  let r2 = Crashcheck.run_sharded ~budget:24 ~seed:7 trace in
  Alcotest.(check bool) "same seed, same sample" true (r1 = r2)

(* A deliberately broken sharded recovery — consistency sweep disabled,
   so aborted prepares leak their allocations — must be caught, and the
   minimal reproducer must replay standalone via check_sharded_point. *)
let test_sharded_catches_broken_sweep () =
  let spec = Crashcheck.cross_shard_spec () in
  let broken =
    { spec.Crashcheck.ss_config with Config.recovery_sweep = false }
  in
  let trace = Crashcheck.record_sharded spec in
  let r = Crashcheck.run_sharded ~budget:100 ~recover_config:broken trace in
  Alcotest.(check bool) "violations found" false (Crashcheck.ok r);
  match r.Crashcheck.r_minimal with
  | None -> Alcotest.fail "no minimal reproducer"
  | Some v ->
    let problems =
      Crashcheck.check_sharded_point ~recover_config:broken trace
        v.Crashcheck.v_point
    in
    Alcotest.(check bool) "minimal reproducer replays" true (problems <> []);
    Alcotest.(check (list string)) "real recovery is consistent there" []
      (Crashcheck.check_sharded_point trace v.Crashcheck.v_point)

(* ------------------------------------------------------------------ *)
(* qcheck property: tearing the segment write that carries an ARU's
   commit record — at any keep_bytes boundary — must leave the ARU
   either fully committed or fully absent after recovery (paper §3.2:
   the commit record is the atomic commit point). *)

let commit_record_torn_scenario (seed, boundary_choice) =
  let geom = Geometry.v ~segment_bytes:(32 * 1024) ~num_segments:64 () in
  let clock = Clock.create () in
  let disk = Disk.create ~clock geom in
  let lld = Lld.create ~config:Config.default disk in
  (* some pre-existing committed state that must survive everything *)
  let stable_list = Lld.new_list lld () in
  let stable = append_block lld stable_list in
  Lld.write lld stable (block_data 9999);
  Lld.flush lld;
  let base = Disk.snapshot disk in
  let writes = ref [] in
  Disk.set_observer disk
    (Some
       (fun ~index:_ ~offset ~data ->
         writes := (offset, Lld_util.Blk.to_bytes data) :: !writes));
  (* one ARU, a few blocks, commit; the final flush writes the segment
     holding the commit record *)
  let aru = Lld.begin_aru lld in
  let l = Lld.new_list lld ~aru () in
  let blocks = ref [] in
  let prev = ref None in
  for j = 0 to 2 + (seed mod 3) do
    let pred =
      match !prev with None -> Summary.Head | Some b -> Summary.After b
    in
    let b = Lld.new_block lld ~aru ~list:l ~pred () in
    let data = block_data (seed + j) in
    Lld.write lld ~aru b data;
    blocks := (b, data) :: !blocks;
    prev := Some b
  done;
  Lld.end_aru lld aru;
  Lld.flush lld;
  Disk.set_observer disk None;
  let writes = Array.of_list (List.rev !writes) in
  let n = Array.length writes in
  if n = 0 then Alcotest.fail "flush produced no disk writes";
  (* the last write seals the segment whose summary holds the Commit
     entry; tear it at a keep_bytes boundary *)
  let last_offset, last_data = writes.(n - 1) in
  let len = Bytes.length last_data in
  let boundaries =
    List.filter
      (fun k -> k > 0 && k < len)
      (1 :: (len - 1)
      :: List.init (len / 512) (fun i -> (i + 1) * 512))
  in
  let keep = List.nth boundaries (boundary_choice mod List.length boundaries) in
  let image = Bytes.copy base in
  for i = 0 to n - 2 do
    let offset, data = writes.(i) in
    Bytes.blit data 0 image offset (Bytes.length data)
  done;
  Bytes.blit last_data 0 image last_offset keep;
  let disk2 = Disk.load ~clock:(Clock.create ()) geom image in
  let lld2, _report = Lld.recover disk2 in
  (* the stable block is untouched either way *)
  check_data "pre-existing block survives" (block_data 9999)
    (Lld.read lld2 stable);
  let blocks = List.rev !blocks in
  let states =
    List.map
      (fun (b, data) ->
        Lld.block_allocated lld2 b && Bytes.equal (Lld.read lld2 b) data)
      blocks
  in
  let all_present = List.for_all Fun.id states in
  let all_absent = List.for_all not states in
  if not (all_present || all_absent) then
    Alcotest.failf
      "ARU not atomic with commit-record write torn at %d/%d bytes: %s" keep
      len
      (String.concat ","
         (List.map (fun s -> if s then "ok" else "gone") states));
  if all_present && not (Lld.list_exists lld2 l) then
    Alcotest.fail "blocks committed but their list is gone";
  if all_absent && Lld.list_exists lld2 l then
    Alcotest.fail "ARU discarded but its list survived";
  true

let commit_record_torn =
  QCheck.Test.make
    ~name:"torn commit-record write commits the ARU fully or not at all"
    ~count:120
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    commit_record_torn_scenario

(* Exhaustive sweep of every 512-byte boundary for one fixed scenario,
   so no boundary of the commit-record write goes untested. *)
(* ------------------------------------------------------------------ *)
(* Silent corruption: every injected-rot scenario heals with zero
   oracle damage, on both a block workload and a file-system one. *)

let test_corruption_churn () =
  let r = Crashcheck.corruption_check (churn ()) in
  Alcotest.(check bool)
    (Format.asprintf "%a" Crashcheck.pp_corruption_result r)
    true
    (Crashcheck.corruption_ok r);
  Alcotest.(check int) "all three scenarios ran" 3 r.Crashcheck.c_rounds;
  Alcotest.(check bool) "rot was detected" true (r.Crashcheck.c_bad_slots > 0);
  Alcotest.(check int) "nothing lost" 0 r.Crashcheck.c_lost;
  Alcotest.(check bool) "superblock slot rewritten" true
    (r.Crashcheck.c_superblock_repaired >= 1)

let test_corruption_smallfile () =
  let r = Crashcheck.corruption_check (files ()) in
  Alcotest.(check bool)
    (Format.asprintf "%a" Crashcheck.pp_corruption_result r)
    true
    (Crashcheck.corruption_ok r);
  Alcotest.(check int) "all three scenarios ran" 3 r.Crashcheck.c_rounds;
  Alcotest.(check int) "nothing lost" 0 r.Crashcheck.c_lost

let test_commit_record_all_boundaries () =
  (* 32 KB segment => boundaries {1, 512, 1024, ..., len-1}: probe each
     via the choice index, which selects boundaries in order *)
  for choice = 0 to 65 do
    ignore (commit_record_torn_scenario (42, choice))
  done

let () =
  Alcotest.run "lld_crashcheck"
    [
      ( "engine",
        [
          Alcotest.test_case "enumeration shape" `Quick test_enumerate;
          Alcotest.test_case "aru-churn clean" `Quick test_clean_churn;
          Alcotest.test_case "smallfile clean" `Quick test_clean_smallfile;
          Alcotest.test_case "cleaning-workload clean" `Quick
            test_clean_cleaning;
          Alcotest.test_case "budgeted runs deterministic" `Quick
            test_budget_deterministic;
          Alcotest.test_case "sampling seed round-trips" `Quick
            test_seed_roundtrip;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "cross-shard clean" `Quick test_sharded_clean;
          Alcotest.test_case "two shards" `Quick test_sharded_two_shards;
          Alcotest.test_case "deterministic sampling" `Quick
            test_sharded_deterministic;
          Alcotest.test_case "broken sweep caught" `Quick
            test_sharded_catches_broken_sweep;
        ] );
      ( "during-recovery",
        [
          Alcotest.test_case "recovery crash points clean" `Quick
            test_during_recovery_clean;
          Alcotest.test_case "deterministic sampling" `Quick
            test_during_recovery_deterministic;
        ] );
      ( "detection",
        [
          Alcotest.test_case "broken sweep caught, minimal reproducer" `Quick
            test_catches_broken_sweep;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "aru-churn rot heals" `Quick
            test_corruption_churn;
          Alcotest.test_case "smallfile rot heals" `Quick
            test_corruption_smallfile;
        ] );
      ( "torn-commit",
        [
          QCheck_alcotest.to_alcotest commit_record_torn;
          Alcotest.test_case "every keep boundary" `Quick
            test_commit_record_all_boundaries;
        ] );
    ]
