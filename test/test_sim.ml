module Clock = Lld_sim.Clock
module Cost = Lld_sim.Cost
module Rng = Lld_sim.Rng
module Stats = Lld_sim.Stats

let test_clock_charges () =
  let c = Clock.create () in
  Clock.charge c Clock.Cpu 100;
  Clock.charge c Clock.Io 250;
  Clock.charge c Clock.Cpu 50;
  Alcotest.(check int) "now" 400 (Clock.now_ns c);
  Alcotest.(check int) "cpu" 150 (Clock.total_ns c Clock.Cpu);
  Alcotest.(check int) "io" 250 (Clock.total_ns c Clock.Io)

let test_clock_reset () =
  let c = Clock.create () in
  Clock.charge c Clock.Cpu 42;
  Clock.reset c;
  Alcotest.(check int) "now" 0 (Clock.now_ns c);
  Alcotest.(check int) "cpu" 0 (Clock.total_ns c Clock.Cpu)

let test_clock_negative () =
  let c = Clock.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Clock.charge: negative duration") (fun () ->
      Clock.charge c Clock.Cpu (-1))

let test_cost_calibration_anchor () =
  (* DESIGN.md §5.4: an empty Begin/End ARU pair should cost about
     76 us of CPU (78.47 us total minus its I/O share). *)
  let c = Cost.sparc5_70 in
  let begin_end =
    (2 * c.Cost.op_dispatch_ns)
    + (2 * c.Cost.record_lookup_ns)
    + c.Cost.aru_begin_ns + c.Cost.aru_commit_ns + c.Cost.summary_entry_ns
  in
  Alcotest.(check bool)
    (Printf.sprintf "begin/end pair ~76us (got %dns)" begin_end)
    true
    (begin_end > 70_000 && begin_end < 80_000)

let test_cost_free_is_zero () =
  let c = Cost.free in
  Alcotest.(check int) "dispatch" 0 c.Cost.op_dispatch_ns;
  Alcotest.(check int) "copy" 0 c.Cost.block_copy_ns;
  Alcotest.(check int) "commit" 0 c.Cost.aru_commit_ns

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 in
  let b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 in
  let b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (Int64.equal (Rng.next a) (Rng.next b))

let test_rng_bounds () =
  let r = Rng.create ~seed:42 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let r = Rng.create ~seed:9 in
  let child = Rng.split r in
  Alcotest.(check bool) "split differs" false
    (Int64.equal (Rng.next r) (Rng.next child))

let test_stats_summary () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4. s.Stats.max;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 s.Stats.stddev

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50. (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p1" 1. (Stats.percentile xs 1.)

let test_stats_percent_diff () =
  Alcotest.(check (float 1e-9)) "10% slower" 10.
    (Stats.percent_diff ~baseline:100. 90.);
  Alcotest.(check (float 1e-9)) "faster is negative" (-10.)
    (Stats.percent_diff ~baseline:100. 110.)

let test_stats_throughput () =
  Alcotest.(check (float 1e-9)) "files/s" 1000.
    (Stats.throughput ~work:1000. ~elapsed_ns:1_000_000_000)

let test_stats_empty () =
  Alcotest.check_raises "empty summarize"
    (Invalid_argument "Stats.summarize: empty sample") (fun () ->
      ignore (Stats.summarize []))

module H = Stats.Histogram

let test_hist_bucket_boundaries () =
  Alcotest.(check int) "0 -> bucket 0" 0 (H.bucket_of 0);
  Alcotest.(check int) "1 -> bucket 1" 1 (H.bucket_of 1);
  Alcotest.(check int) "2 -> bucket 2" 2 (H.bucket_of 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (H.bucket_of 3);
  Alcotest.(check int) "4 -> bucket 3" 3 (H.bucket_of 4);
  Alcotest.(check int) "bucket 0 lo" 0 (H.bucket_lo 0);
  Alcotest.(check int) "bucket 0 hi" 0 (H.bucket_hi 0);
  for i = 1 to 40 do
    let lo = 1 lsl (i - 1) and hi = (1 lsl i) - 1 in
    Alcotest.(check int) (Printf.sprintf "bucket %d lo" i) lo (H.bucket_lo i);
    Alcotest.(check int) (Printf.sprintf "bucket %d hi" i) hi (H.bucket_hi i);
    Alcotest.(check int) (Printf.sprintf "lo of bucket %d maps back" i) i
      (H.bucket_of lo);
    Alcotest.(check int) (Printf.sprintf "hi of bucket %d maps back" i) i
      (H.bucket_of hi)
  done

let test_hist_percentile_agreement () =
  (* the histogram estimate uses the same nearest-rank rule as
     Stats.percentile: it must never under-report the exact value and
     stay within a factor of two of it *)
  let rng = Rng.create ~seed:11 in
  for _trial = 1 to 20 do
    let n = 1 + Rng.int rng 200 in
    let xs = List.init n (fun _ -> 1 + Rng.int rng 1_000_000) in
    let h = H.create () in
    List.iter (H.add h) xs;
    let fxs = List.map float_of_int xs in
    List.iter
      (fun p ->
        let exact = int_of_float (Stats.percentile fxs p) in
        let est = H.percentile h p in
        if est < exact then
          Alcotest.failf "p%.0f under-reports: %d < exact %d" p est exact;
        if est > 2 * exact then
          Alcotest.failf "p%.0f beyond 2x: %d > 2 * exact %d" p est exact)
      [ 10.; 50.; 90.; 95.; 99.; 100. ]
  done

let test_hist_empty_and_singleton () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check int) "empty min" 0 (H.min_ns h);
  Alcotest.(check int) "empty max" 0 (H.max_ns h);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (H.mean h);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.Histogram.percentile: empty histogram")
    (fun () -> ignore (H.p50 h));
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Stats.Histogram.add: negative value") (fun () ->
      H.add h (-1));
  H.add h 5;
  (* clamping to the observed range makes singletons exact *)
  Alcotest.(check int) "singleton p50" 5 (H.p50 h);
  Alcotest.(check int) "singleton p99" 5 (H.p99 h);
  Alcotest.(check int) "singleton min" 5 (H.min_ns h);
  Alcotest.(check int) "singleton max" 5 (H.max_ns h);
  H.add h 0;
  Alcotest.(check int) "zero lands in bucket 0" 0 (H.percentile h 50.)

let test_hist_merge_reset () =
  let a = H.create () and b = H.create () in
  List.iter (H.add a) [ 1; 2; 3 ];
  List.iter (H.add b) [ 10; 20 ];
  H.merge ~into:a b;
  Alcotest.(check int) "merged count" 5 (H.count a);
  Alcotest.(check int) "merged sum" 36 (H.sum a);
  Alcotest.(check int) "merged min" 1 (H.min_ns a);
  Alcotest.(check int) "merged max" 20 (H.max_ns a);
  H.reset a;
  Alcotest.(check int) "reset count" 0 (H.count a);
  Alcotest.(check int) "reset sum" 0 (H.sum a)

let rng_int_uniform =
  QCheck.Test.make ~name:"rng int covers range" ~count:50
    QCheck.(int_range 2 64)
    (fun bound ->
      let r = Rng.create ~seed:bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 100 do
        seen.(Rng.int r bound) <- true
      done;
      Array.for_all Fun.id seen)

let () =
  Alcotest.run "lld_sim"
    [
      ( "clock",
        [
          Alcotest.test_case "charges accumulate by category" `Quick
            test_clock_charges;
          Alcotest.test_case "reset" `Quick test_clock_reset;
          Alcotest.test_case "negative charge rejected" `Quick
            test_clock_negative;
        ] );
      ( "cost",
        [
          Alcotest.test_case "calibration anchor" `Quick
            test_cost_calibration_anchor;
          Alcotest.test_case "free model is zero" `Quick test_cost_free_is_zero;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          QCheck_alcotest.to_alcotest rng_int_uniform;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percent diff" `Quick test_stats_percent_diff;
          Alcotest.test_case "throughput" `Quick test_stats_throughput;
          Alcotest.test_case "empty sample rejected" `Quick test_stats_empty;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "log2 bucket boundaries" `Quick
            test_hist_bucket_boundaries;
          Alcotest.test_case "percentile agrees with nearest-rank" `Quick
            test_hist_percentile_agreement;
          Alcotest.test_case "empty and singleton edge cases" `Quick
            test_hist_empty_and_singleton;
          Alcotest.test_case "merge and reset" `Quick test_hist_merge_reset;
        ] );
    ]
