module Geometry = Lld_disk.Geometry
module Blk = Lld_util.Blk
module Types = Lld_core.Types
module Summary = Lld_core.Summary
module Segment = Lld_core.Segment

let geom = Geometry.small
let bid = Types.Block_id.of_int

let entry ?(stream = Summary.Simple) op = { Summary.stream; op }

let write_entry b slot stamp =
  entry (Summary.Write { block = bid b; slot; stamp })

let data c = Blk.of_bytes (Bytes.make geom.Geometry.block_bytes c)

(* first byte of a view, for content checks *)
let first v = Char.chr (Blk.get_u8 v 0)

let fresh () = Segment.create geom ~seq:7 ~disk_index:3

let test_fresh_segment () =
  let s = fresh () in
  Alcotest.(check int) "seq" 7 (Segment.seq s);
  Alcotest.(check int) "disk index" 3 (Segment.disk_index s);
  Alcotest.(check bool) "empty" true (Segment.is_empty s);
  Alcotest.(check int) "no slots" 0 (Segment.slots_used s);
  Alcotest.(check int) "no entries" 0 (Segment.entry_count s)

let test_put_block_and_read_slot () =
  let s = fresh () in
  let slot0 = Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 10) (data 'a') in
  let slot1 = Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 11) (data 'b') in
  Alcotest.(check int) "first slot" 0 slot0;
  Alcotest.(check int) "second slot" 1 slot1;
  Alcotest.(check char) "slot 0 content" 'a' (first (Segment.read_slot s ~slot:0));
  Alcotest.(check char) "slot 1 content" 'b' (first (Segment.read_slot s ~slot:1))

let put ?(scope = Segment.Simple_scope) ?(cross = true) s b d =
  Segment.put_block s ~scope ~allow_cross_scope:cross b d

let test_scope_blocks_reuse () =
  (* a mid-ARU write (no same-segment commit guarantee) must not clobber
     a slot referenced by an earlier simple entry *)
  let s = fresh () in
  let slot0 = put ~scope:Segment.Simple_scope s (bid 10) (data 'a') in
  let aru = Segment.Aru_scope (Types.Aru_id.of_int 1) in
  let slot1 = put ~scope:aru ~cross:false s (bid 10) (data 'b') in
  Alcotest.(check bool) "fresh slot taken" true (slot0 <> slot1);
  Alcotest.(check char) "old bytes intact" 'a'
    (first (Segment.read_slot s ~slot:slot0));
  Alcotest.(check char) "new bytes in new slot" 'b'
    (first (Segment.read_slot s ~slot:slot1));
  (* the same ARU writing again reuses its own slot *)
  let slot2 = put ~scope:aru ~cross:false s (bid 10) (data 'c') in
  Alcotest.(check int) "own slot reused" slot1 slot2;
  (* cross-scope coalescing when explicitly allowed (commit path) *)
  let slot3 =
    put ~scope:(Segment.Aru_scope (Types.Aru_id.of_int 2)) ~cross:true s
      (bid 10) (data 'd')
  in
  Alcotest.(check int) "commit path coalesces" slot2 slot3

let test_slot_reuse_on_rewrite () =
  let s = fresh () in
  let slot0 = Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 10) (data 'a') in
  let slot0' = Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 10) (data 'z') in
  Alcotest.(check int) "same slot" slot0 slot0';
  Alcotest.(check int) "one slot used" 1 (Segment.slots_used s);
  Alcotest.(check char) "rewritten" 'z' (first (Segment.read_slot s ~slot:0));
  Alcotest.(check (option int)) "slot_of_block" (Some 0)
    (Segment.slot_of_block s (bid 10))

let test_entries_in_order () =
  let s = fresh () in
  Segment.add_entry s (write_entry 1 0 100);
  Segment.add_entry s (write_entry 2 1 101);
  Segment.add_entry s (entry (Summary.Commit { aru = Types.Aru_id.of_int 5 }));
  Alcotest.(check int) "count" 3 (Segment.entry_count s);
  match Segment.entries s with
  | [ e1; e2; e3 ] ->
    Alcotest.(check bool) "order preserved" true
      (e1 = write_entry 1 0 100 && e2 = write_entry 2 1 101
      && e3 = entry (Summary.Commit { aru = Types.Aru_id.of_int 5 }))
  | _ -> Alcotest.fail "wrong entry count"

let test_room_accounting_data () =
  let s = fresh () in
  let per_seg = Geometry.blocks_per_segment geom in
  (* the trailing header precludes using every slot *)
  let rec fill i =
    if Segment.has_room s ~data_blocks:1 ~entry_bytes:0 then begin
      ignore (Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid i) (data 'x'));
      fill (i + 1)
    end
    else i
  in
  let used = fill 0 in
  Alcotest.(check int) "one slot lost to the header" (per_seg - 1) used;
  Alcotest.check_raises "overfull rejected"
    (Invalid_argument "Segment.put_block: no room") (fun () ->
      ignore (Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 9999) (data 'x')))

let test_room_accounting_summary () =
  (* a segment can fill up with summary entries alone: the paper's
     ARU-churn workload produces such all-summary segments *)
  let s = fresh () in
  let e = entry (Summary.Commit { aru = Types.Aru_id.of_int 1 }) in
  let size = Summary.encoded_size e in
  let n = ref 0 in
  while Segment.has_room s ~data_blocks:0 ~entry_bytes:size do
    Segment.add_entry s e;
    incr n
  done;
  Alcotest.(check bool)
    (Printf.sprintf "tens of thousands of entries fit (%d)" !n)
    true
    (!n > 50_000);
  Alcotest.(check int) "no data room left either" 0
    (if Segment.has_room s ~data_blocks:1 ~entry_bytes:0 then 1 else 0)

let test_seal_parse_roundtrip () =
  let s = fresh () in
  ignore (Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 1) (data 'p'));
  ignore (Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 2) (data 'q'));
  Segment.add_entry s (write_entry 1 0 11);
  Segment.add_entry s (write_entry 2 1 12);
  let image = Segment.seal s in
  match Segment.parse geom image with
  | None -> Alcotest.fail "sealed segment must parse"
  | Some p ->
    Alcotest.(check int) "seq" 7 p.Segment.p_seq;
    Alcotest.(check int) "entries" 2 (List.length p.Segment.p_entries);
    Alcotest.(check char) "slot 0 via parsed image" 'p'
      (first (Segment.parsed_slot geom p ~slot:0));
    Alcotest.(check char) "slot 1 via parsed image" 'q'
      (first (Segment.parsed_slot geom p ~slot:1))

let test_parse_rejects_garbage () =
  Alcotest.(check bool) "zeroed image" true
    (Segment.parse geom (Blk.of_bytes (Bytes.make geom.Geometry.segment_bytes '\000')) = None);
  Alcotest.(check bool) "random-ish image" true
    (Segment.parse geom (Blk.of_bytes (Bytes.make geom.Geometry.segment_bytes 'U')) = None)

let test_parse_detects_corruption () =
  let s = fresh () in
  ignore (Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 1) (data 'p'));
  Segment.add_entry s (write_entry 1 0 11);
  let image = Blk.of_bytes (Blk.to_bytes (Segment.seal s)) in
  (* flip one bit in the data area: the segment still parses (meta is
     intact) but the slot's own CRC must catch it *)
  Blk.set_u8 image 100 (Blk.get_u8 image 100 lxor 1);
  (match Segment.parse geom image with
  | None -> Alcotest.fail "meta intact: image must still parse"
  | Some p ->
    Alcotest.(check bool) "slot CRC catches data flip" false
      (Segment.verify_slot geom p ~slot:0);
    Alcotest.check_raises "parsed_slot raises Corruption"
      (Lld_core.Errors.Corruption
         (Lld_core.Errors.Invalid_checksum { what = "segment slot"; index = 0 }))
      (fun () -> ignore (Segment.parsed_slot geom p ~slot:0)));
  (* flip one bit in the meta region: parse itself must fail *)
  let image2 = Blk.of_bytes (Blk.to_bytes (Segment.seal s)) in
  let meta_pos = geom.Geometry.segment_bytes - 40 in
  Blk.set_u8 image2 meta_pos (Blk.get_u8 image2 meta_pos lxor 1);
  Alcotest.(check bool) "meta flip detected" true
    (Segment.parse geom image2 = None)

let test_parse_detects_torn_prefix () =
  let s = fresh () in
  ignore (Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 1) (data 'p'));
  Segment.add_entry s (write_entry 1 0 11);
  let image = Segment.seal s in
  (* only a prefix reached the medium; the tail is stale bytes *)
  let torn = Blk.of_bytes (Bytes.make geom.Geometry.segment_bytes '\xAB') in
  Blk.blit image 0 torn 0 10_000;
  Alcotest.(check bool) "torn write detected" true (Segment.parse geom torn = None)

let test_wrong_block_size_rejected () =
  let s = fresh () in
  Alcotest.check_raises "short block"
    (Invalid_argument "Segment.put_block: data must be exactly one block")
    (fun () -> ignore (Segment.put_block s ~scope:Segment.Simple_scope
       ~allow_cross_scope:true (bid 1) (Blk.of_bytes (Bytes.make 100 'x'))))

let () =
  Alcotest.run "lld_segment"
    [
      ( "buffer",
        [
          Alcotest.test_case "fresh segment" `Quick test_fresh_segment;
          Alcotest.test_case "put and read slots" `Quick
            test_put_block_and_read_slot;
          Alcotest.test_case "slot reuse on rewrite" `Quick
            test_slot_reuse_on_rewrite;
          Alcotest.test_case "scopes gate slot reuse" `Quick
            test_scope_blocks_reuse;
          Alcotest.test_case "entries keep order" `Quick test_entries_in_order;
          Alcotest.test_case "wrong block size" `Quick
            test_wrong_block_size_rejected;
        ] );
      ( "room",
        [
          Alcotest.test_case "data-slot accounting" `Quick
            test_room_accounting_data;
          Alcotest.test_case "summary-only segments" `Quick
            test_room_accounting_summary;
        ] );
      ( "on-disk",
        [
          Alcotest.test_case "seal/parse roundtrip" `Quick
            test_seal_parse_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "detects corruption" `Quick
            test_parse_detects_corruption;
          Alcotest.test_case "detects torn prefix" `Quick
            test_parse_detects_torn_prefix;
        ] );
    ]
