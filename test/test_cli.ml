(* Exit-code matrix for the command-line tool: every user-facing command
   obeys the convention

     0  success
     1  the operation ran and found a real problem (corrupt image,
        failed verification, divergence)
     2  invalid usage or an unusable image (bad geometry, unknown flag
        values)

   driven as a table so adding a command means adding rows. *)

let cli =
  (* the test binary lives in _build/default/test next to _build/default/bin;
     resolve relative to the executable so the working directory (which
     differs between `dune runtest` and `dune exec`) does not matter.
     The dune rule depends on the executable so it is always built. *)
  let near_exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/lld_cli.exe"
  in
  let candidates = [ near_exe; "../bin/lld_cli.exe"; "bin/lld_cli.exe" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "lld_cli.exe not built (missing dune dependency?)"

let run args =
  Sys.command
    (Filename.quote_command cli ~stdout:"/dev/null" ~stderr:"/dev/null" args)

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "lld-cli-%d-%s" (Unix.getpid ()) name)

let segment_bytes = 512 * 1024

let write_file path bytes =
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

(* Fixture images: a properly formatted one, one whose size is not a
   whole number of segments, and one with valid geometry but zeroed
   content (nothing to recover). *)
let good_image = tmp "good.img"
let badsize_image = tmp "badsize.img"
let zeroed_image = tmp "zeroed.img"

let setup_images () =
  let rc =
    run [ "mkfs"; "--file"; good_image; "--segments"; "64"; "--files"; "3" ]
  in
  if rc <> 0 then Alcotest.failf "mkfs fixture failed with exit code %d" rc;
  write_file badsize_image (Bytes.create 1000);
  write_file zeroed_image (Bytes.create (32 * segment_bytes))

let cleanup_images () =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ good_image; badsize_image; zeroed_image ]

(* The matrix.  [trace]/[stats] run a real (small) workload; [model]
   runs a real (small) differential-fuzzing session. *)
let matrix () =
  [
    ("info, fresh geometry", [ "info"; "--segments"; "64" ], 0);
    ("info, formatted image", [ "info"; "--file"; good_image ], 0);
    ("info, truncated image", [ "info"; "--file"; badsize_image ], 2);
    ("info, zeroed image", [ "info"; "--file"; zeroed_image ], 1);
    ( "mkfs, fresh image",
      [ "mkfs"; "--file"; tmp "mkfs2.img"; "--segments"; "64"; "--files"; "2" ],
      0 );
    ("mount, formatted image", [ "mount"; "--file"; good_image ], 0);
    ("mount, truncated image", [ "mount"; "--file"; badsize_image ], 2);
    ("mount, zeroed image", [ "mount"; "--file"; zeroed_image ], 1);
    ( "trace, small workload",
      [
        "trace"; "--segments"; "64"; "--files"; "4"; "--out"; tmp "trace.json";
      ],
      0 );
    ("stats, small workload", [ "stats"; "--segments"; "64"; "--files"; "4" ], 0);
    ( "model, small clean fuzz",
      [ "model"; "--budget"; "2"; "--ops"; "10"; "--crash-every"; "0" ],
      0 );
    ("model, unknown visibility option", [ "model"; "--option"; "9" ], 2);
    ("model, unknown injected bug", [ "model"; "--inject"; "bogus" ], 2);
    ("model, zero budget", [ "model"; "--budget"; "0" ], 2);
    ( "model, expected divergence missing",
      [ "model"; "--budget"; "1"; "--ops"; "5"; "--expect-divergence" ],
      1 );
  ]

let test_matrix () =
  setup_images ();
  Fun.protect ~finally:cleanup_images (fun () ->
      let failures =
        List.filter_map
          (fun (name, args, expected) ->
            let got = run args in
            if got = expected then None
            else
              Some
                (Printf.sprintf "%s: expected exit %d, got %d (lld %s)" name
                   expected got (String.concat " " args)))
          (matrix ())
      in
      if failures <> [] then Alcotest.fail (String.concat "\n" failures))

let () =
  Alcotest.run "lld_cli"
    [
      ( "exit-codes",
        [ Alcotest.test_case "command exit-code matrix" `Slow test_matrix ] );
    ]
