open Helpers
module Model = Lld_model.Model
module Program = Lld_model.Program
module Differ = Lld_model.Differ
module Op = Lld_core.Op
module Setup = Lld_workload.Setup

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: the executable specification and the real
   implementation agree, the runs are bit-reproducible, and an injected
   specification bug is found and shrunk to a tiny program. *)

let small cfg = { cfg with Differ.crash_every = 3; Differ.crash_points = 6 }

let fuzz_clean ~seed ~budget cfg =
  let r = Differ.fuzz ~seed ~budget cfg in
  (match r.Differ.rp_failure with
  | None -> ()
  | Some f ->
    Alcotest.failf "unexpected divergence:@.%a" Differ.pp_divergence
      f.Differ.fl_shrunk_divergence);
  Alcotest.(check bool) "report ok" true (Differ.ok r);
  r

let test_own_shadow_clean () =
  let r = fuzz_clean ~seed:101 ~budget:8 (small Differ.default_config) in
  Alcotest.(check bool) "crash points were composed" true
    (r.Differ.rp_crash_points > 0)

let test_committed_only_clean () =
  ignore
    (fuzz_clean ~seed:102 ~budget:8
       (small
          { Differ.default_config with Differ.visibility = Config.Committed_only }))

let test_any_shadow_clean () =
  ignore
    (fuzz_clean ~seed:103 ~budget:8
       (small { Differ.default_config with Differ.visibility = Config.Any_shadow }))

let test_three_clients_clean () =
  ignore
    (fuzz_clean ~seed:104 ~budget:6
       (small { Differ.default_config with Differ.clients = 3 }))

let test_file_backend_clean () =
  ignore
    (fuzz_clean ~seed:105 ~budget:3
       (small { Differ.default_config with Differ.backend = Differ.File }))

let group_cfg =
  { Differ.default_config with Differ.group_commit = true; Differ.clients = 3 }

let test_group_commit_fuzz_clean () =
  (* concurrent clients scheduled through submit/flush, same seeds and
     structural comparison as the immediate-commit runs *)
  let r = fuzz_clean ~seed:106 ~budget:8 (small group_cfg) in
  Alcotest.(check bool) "crash points were composed" true
    (r.Differ.rp_crash_points > 0)

(* Pinned regression: a fixed four-client program whose commits queue
   up back-to-back, so the fourth submit closes the batch (the differ
   pins [group_commit_batch = 4]) and a single multi-ARU Commit_group
   record reaches the log.  Crash composition over this program covers
   torn variants of that batched record: recovery must deliver each
   member all-or-nothing. *)
let test_group_commit_pinned_batch () =
  let s client cmd = { Program.client; cmd } in
  let per_client c tag =
    [
      s c Program.Begin;
      s c Program.New_list;
      s c (Program.New_block { list_ref = 0; pred_ref = None });
      s c (Program.Write { block_ref = 0; tag });
    ]
  in
  let p =
    Array.of_list
      (List.concat
         [
           per_client 0 11;
           per_client 1 22;
           per_client 2 33;
           per_client 3 44;
           [
             s 0 Program.Commit;
             s 1 Program.Commit;
             s 2 Program.Commit;
             s 3 Program.Commit;
             s 0 Program.Lists;
           ];
         ])
  in
  let cfg = { group_cfg with Differ.clients = 4 } in
  match Differ.run_program ~crash:true cfg ~seed:9 p with
  | None -> ()
  | Some d ->
    Alcotest.failf "pinned group-commit batch diverged:@.%a"
      Differ.pp_divergence d

(* Pinned regression for the queued-abort path: client 0 submits, then
   aborts while its intent still sits in the queue (Abort with no
   active ARU resolves against the submitted intent).  The batch that
   eventually drains must not contain the withdrawn ARU, and crash
   composition over the run must stay on the model's frontier. *)
let test_group_commit_queued_abort () =
  let s client cmd = { Program.client; cmd } in
  let per_client c tag =
    [
      s c Program.Begin;
      s c Program.New_list;
      s c (Program.New_block { list_ref = 0; pred_ref = None });
      s c (Program.Write { block_ref = 0; tag });
    ]
  in
  let p =
    Array.of_list
      (List.concat
         [
           per_client 0 11;
           per_client 1 22;
           per_client 2 33;
           [
             s 0 Program.Commit;
             s 1 Program.Commit;
             s 0 Program.Abort (* withdraws the queued intent *);
             s 2 Program.Commit;
             s 2 Program.Lists;
           ];
         ])
  in
  match Differ.run_program ~crash:true group_cfg ~seed:17 p with
  | None -> ()
  | Some d ->
    Alcotest.failf "queued-abort program diverged:@.%a" Differ.pp_divergence d

(* the specification itself: abort on a queued ARU dequeues the intent
   and aborts — it does not raise, and the batch shrinks *)
let test_model_queued_abort () =
  let m = Model.create () in
  let a1 = Model.begin_aru m in
  let a2 = Model.begin_aru m in
  Model.submit_commit m a1;
  Model.submit_commit m a2;
  Alcotest.(check bool) "a1 queued" true (Model.commit_pending m a1);
  Model.abort_aru m a1;
  Alcotest.(check bool) "a1 dequeued" false (Model.commit_pending m a1);
  Alcotest.(check bool) "a1 no longer active" false (Model.aru_active m a1);
  Alcotest.(check bool) "a2 still queued" true (Model.commit_pending m a2);
  Alcotest.(check int) "flush commits only the survivor" 1
    (Model.flush_commit_steps m ignore)

(* ------------------------------------------------------------------ *)
(* Sharded facade under the differ: every client operation routes
   through [Shard] placement, multi-shard ARUs commit via two-phase
   commit, and crash composition checks each shard's recovered
   projection against that shard's own frontier chain. *)

(* Pinned regression for the prepare-merge coalescing hazard: the ARU
   overwrites a block committed earlier in the same open segment of a
   non-coordinator shard and also touches other shards, so its commit
   runs through prepare/decide.  Crash points between the participant's
   Prepare seal and the coordinator's Decide must presume abort without
   the aborted overwrite leaking into the committed version's slot
   (prepare merges must not reuse cross-scope slots — the decision
   lives on another shard's log). *)
(* The exact fuzz invocation that first exposed the prepare-merge
   coalescing leak.  Its minimal case: a committed block on shard 1
   whose bytes sit in the still-open segment, then a cross-shard ARU
   (fresh lists spread to other shards, so the coordinator — the
   lowest participant — is NOT the block's shard) overwrites it.  A
   crash after shard 1's Prepare seal but before the coordinator's
   Decide presumes abort: the aborted overwrite must not reach the
   block's committed slot, even though both share the open segment. *)
let test_sharded_pinned_cross () =
  let cfg =
    {
      Differ.default_config with
      Differ.shards = 4;
      Differ.group_commit = true;
      Differ.clients = 3;
      Differ.crash_every = 2;
      Differ.crash_points = 8;
    }
  in
  ignore (fuzz_clean ~seed:11 ~budget:40 cfg)

let test_sharded_fuzz_clean () =
  let cfg =
    {
      Differ.default_config with
      Differ.shards = 3;
      Differ.crash_every = 10;
      Differ.crash_points = 4;
    }
  in
  let r = fuzz_clean ~seed:107 ~budget:500 cfg in
  Alcotest.(check bool) "crash points were composed" true
    (r.Differ.rp_crash_points > 0)

let test_sharded_group_commit_clean () =
  (* concurrent clients over the sharded facade: cross-shard commits
     drain synchronously at submit, single-shard commits batch *)
  ignore
    (fuzz_clean ~seed:108 ~budget:8 (small { group_cfg with Differ.shards = 2 }))

let test_dump_forensics () =
  let dir = Filename.temp_file "lld-differ-forensics" "" in
  Sys.remove dir;
  let p = Program.generate ~seed:31 ~clients:3 ~ops:20 in
  let div, paths =
    Differ.dump_forensics ~crash:false ~dir ~label:"case" group_cfg ~seed:31 p
  in
  (match div with
  | None -> ()
  | Some d ->
    Alcotest.failf "clean program diverged under forensics re-run:@.%a"
      Differ.pp_divergence d);
  Alcotest.(check int) "three bundle files" 3 (List.length paths);
  List.iter
    (fun path ->
      Alcotest.(check bool)
        (Printf.sprintf "%s exists" (Filename.basename path))
        true (Sys.file_exists path);
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool)
        (Printf.sprintf "%s non-empty" (Filename.basename path))
        true (len > 0))
    paths;
  List.iter Sys.remove paths;
  Sys.rmdir dir

let test_bit_reproducible () =
  let cfg = small Differ.default_config in
  let render () =
    Format.asprintf "%a" Differ.pp_report (Differ.fuzz ~seed:77 ~budget:6 cfg)
  in
  let a = render () and b = render () in
  Alcotest.(check string) "same seed renders byte-identical reports" a b

let find_injected mutation seed =
  let cfg =
    {
      (small Differ.default_config) with
      Differ.mutation = Some mutation;
      Differ.crash_every = 0 (* crash frontier assumes correct commit *);
    }
  in
  let r = Differ.fuzz ~seed ~budget:200 cfg in
  match r.Differ.rp_failure with
  | None ->
    Alcotest.failf "injected bug %s not found in %d cases"
      (Model.mutation_label mutation)
      r.Differ.rp_cases
  | Some f ->
    let len = Array.length f.Differ.fl_shrunk in
    if len > 10 then
      Alcotest.failf "shrunk program has %d steps (want <= 10):@.%a" len
        Program.pp f.Differ.fl_shrunk;
    (* the shrunk program still diverges when replayed standalone *)
    (match
       Differ.run_program cfg ~seed:f.Differ.fl_case_seed f.Differ.fl_shrunk
     with
    | Some _ -> ()
    | None -> Alcotest.fail "shrunk program no longer diverges")

let test_injected_read_committed () = find_injected Model.Read_committed 201
let test_injected_commit_drops_data () =
  find_injected Model.Commit_drops_data 202

(* ------------------------------------------------------------------ *)
(* Program generation is deterministic and well-formed. *)

let test_program_deterministic () =
  let gen () = Program.generate ~seed:5 ~clients:3 ~ops:30 in
  let a = Format.asprintf "%a" Program.pp (gen ()) in
  let b = Format.asprintf "%a" Program.pp (gen ()) in
  Alcotest.(check string) "same seed, same program" a b;
  let p = gen () in
  Alcotest.(check int) "clients x ops steps" (3 * 30) (Array.length p);
  Array.iter
    (fun s ->
      if s.Program.client < 0 || s.Program.client >= 3 then
        Alcotest.fail "client index out of range")
    p

(* ------------------------------------------------------------------ *)
(* Read-visibility options end-to-end (paper §3.3), the model as the
   oracle: the same operation sequence runs on the real implementation
   (built through Setup with a visibility override) and on the model,
   through the shared Op hook, comparing every result. *)

module Mops = Op.Make (Model)
module Lops = Op.Make (Lld)

let visibility_pair visibility =
  let geom = Geometry.small in
  let _disk, lld = Setup.make_raw ~geom ~visibility New in
  let model =
    Model.create ~visibility ~capacity:(Lld.capacity lld)
      ~max_lists:(Lld_core.Disk_layout.max_lists geom)
      ~block_bytes:(Lld.block_bytes lld) ()
  in
  (lld, model)

let step (lld, model) op =
  let m = Mops.apply model op in
  let r = Lops.apply lld op in
  if not (Op.equal_result m r) then
    Alcotest.failf "divergence on %a: model %a, real %a" Op.pp op Op.pp_result
      m Op.pp_result r;
  m

let aru_of = function
  | Op.R_aru a -> a
  | r -> Alcotest.failf "expected an ARU, got %a" Op.pp_result r

let list_of = function
  | Op.R_list l -> l
  | r -> Alcotest.failf "expected a list, got %a" Op.pp_result r

let block_of = function
  | Op.R_block b -> b
  | r -> Alcotest.failf "expected a block, got %a" Op.pp_result r

(* One shared scenario.  A committed block [b] exists before the ARU
   starts; the ARU overwrites it and also allocates a fresh block [b2].
   What the mid-flight observations return is exactly what distinguishes
   the three options:

   - the shadow *write* to the pre-existing [b] is what option 1 leaks
     to other clients, option 3 confines to the writer, and option 2
     hides even from the writer;
   - the fresh allocation [b2] carries an owner mark on every version,
     so it stays invisible to other clients under {e all} options (the
     leak in option 1 is of content, not of allocation).

   The model/real comparison in [step] pins that the implementation
   matches the specification at every step; the explicit checks below
   pin the semantics themselves. *)
type observations = {
  own_read : Op.result;  (** the writer reading the overwritten block *)
  simple_read : Op.result;  (** another client reading it *)
  own_alloc2 : Op.result;  (** the writer probing its fresh block *)
  simple_alloc2 : Op.result;  (** another client probing it *)
}

let old_data = block_data 7
let new_data = block_data 42

let visibility_scenario visibility =
  let pair = visibility_pair visibility in
  (* committed setup, before any ARU *)
  let l = list_of (step pair (Op.New_list None)) in
  let b =
    block_of (step pair (Op.New_block { aru = None; list = l; pred = Summary.Head }))
  in
  ignore (step pair (Op.Write { aru = None; block = b; data = old_data }));
  (* the ARU overwrites [b] and allocates [b2] *)
  let aru = aru_of (step pair Op.Begin_aru) in
  ignore (step pair (Op.Write { aru = Some aru; block = b; data = new_data }));
  let b2 =
    block_of
      (step pair
         (Op.New_block { aru = Some aru; list = l; pred = Summary.After b }))
  in
  let obs =
    {
      own_read = step pair (Op.Read { aru = Some aru; block = b });
      simple_read = step pair (Op.Read { aru = None; block = b });
      own_alloc2 = step pair (Op.Block_allocated { aru = Some aru; block = b2 });
      simple_alloc2 = step pair (Op.Block_allocated { aru = None; block = b2 });
    }
  in
  ignore (step pair (Op.End_aru aru));
  (* after commit all options agree on the committed state *)
  let committed_read = step pair (Op.Read { aru = None; block = b }) in
  Alcotest.(check bool)
    "committed read returns the ARU's write" true
    (Op.equal_result committed_read (Op.R_data new_data));
  (match step pair (Op.Block_allocated { aru = None; block = b2 }) with
  | Op.R_bool true -> ()
  | r -> Alcotest.failf "fresh block not committed: %a" Op.pp_result r);
  ignore (step pair Op.Lists);
  obs

let check_bool msg expected = function
  | Op.R_bool b -> Alcotest.(check bool) msg expected b
  | r -> Alcotest.failf "%s: expected a boolean, got %a" msg Op.pp_result r

let check_data_result msg expected = function
  | Op.R_data d ->
    Alcotest.(check bool) msg true (Bytes.equal d expected)
  | r -> Alcotest.failf "%s: expected data, got %a" msg Op.pp_result r

let test_option1_end_to_end () =
  (* option 1, Any_shadow: uncommitted writes are visible to everyone *)
  let o = visibility_scenario Config.Any_shadow in
  check_data_result "own read sees the shadow write" new_data o.own_read;
  check_data_result "simple read sees the shadow write too" new_data
    o.simple_read;
  check_bool "own fresh allocation visible" true o.own_alloc2;
  check_bool "fresh allocation still owner-gated for others" false
    o.simple_alloc2

let test_option2_end_to_end () =
  (* option 2, Committed_only: nobody sees uncommitted effects, not even
     the ARU itself *)
  let o = visibility_scenario Config.Committed_only in
  check_data_result "own read still sees the committed data" old_data
    o.own_read;
  check_data_result "simple read sees the committed data" old_data
    o.simple_read;
  (* allocation happens in the committed state with an owner mark: the
     mark hides it from other clients, not from the allocating ARU, so
     even under committed-only reads the owner sees its own block *)
  check_bool "own fresh allocation visible to its owner" true o.own_alloc2;
  check_bool "fresh allocation hidden from others" false o.simple_alloc2

let test_option3_end_to_end () =
  (* option 3, Own_shadow: the ARU sees its own effects, others do not *)
  let o = visibility_scenario Config.Own_shadow in
  check_data_result "own read sees the shadow write" new_data o.own_read;
  check_data_result "simple read sees the committed data" old_data
    o.simple_read;
  check_bool "own fresh allocation visible" true o.own_alloc2;
  check_bool "fresh allocation hidden from others" false o.simple_alloc2

let () =
  Alcotest.run "lld_model"
    [
      ( "differ",
        [
          Alcotest.test_case "own-shadow fuzz clean" `Quick
            test_own_shadow_clean;
          Alcotest.test_case "committed-only fuzz clean" `Quick
            test_committed_only_clean;
          Alcotest.test_case "any-shadow fuzz clean" `Quick
            test_any_shadow_clean;
          Alcotest.test_case "three clients clean" `Quick
            test_three_clients_clean;
          Alcotest.test_case "file backend clean" `Slow test_file_backend_clean;
          Alcotest.test_case "group-commit fuzz clean" `Quick
            test_group_commit_fuzz_clean;
          Alcotest.test_case "group-commit queued abort" `Quick
            test_group_commit_queued_abort;
          Alcotest.test_case "model queued abort dequeues" `Quick
            test_model_queued_abort;
          Alcotest.test_case "forensics bundle dump" `Quick
            test_dump_forensics;
          Alcotest.test_case "group-commit pinned batch" `Quick
            test_group_commit_pinned_batch;
          Alcotest.test_case "bit-reproducible reports" `Quick
            test_bit_reproducible;
          Alcotest.test_case "sharded pinned cross-shard commit" `Slow
            test_sharded_pinned_cross;
          Alcotest.test_case "sharded fuzz clean" `Slow test_sharded_fuzz_clean;
          Alcotest.test_case "sharded group commit clean" `Quick
            test_sharded_group_commit_clean;
        ] );
      ( "self-test",
        [
          Alcotest.test_case "injected read-committed bug found" `Quick
            test_injected_read_committed;
          Alcotest.test_case "injected commit-drops-data bug found" `Quick
            test_injected_commit_drops_data;
        ] );
      ( "programs",
        [
          Alcotest.test_case "generation deterministic" `Quick
            test_program_deterministic;
        ] );
      ( "visibility",
        [
          Alcotest.test_case "option 1 (any shadow) end-to-end" `Quick
            test_option1_end_to_end;
          Alcotest.test_case "option 2 (committed only) end-to-end" `Quick
            test_option2_end_to_end;
          Alcotest.test_case "option 3 (own shadow) end-to-end" `Quick
            test_option3_end_to_end;
        ] );
    ]
