open Helpers
module Checkpoint = Lld_core.Checkpoint
module Disk_layout = Lld_core.Disk_layout
module Fault = Lld_disk.Fault

let snapshot ?(ckpt_id = 5) ?(kind = Checkpoint.Full) ?(covered_seq = 42)
    ?(blocks = []) ?(lists = []) ?(dead_blocks = []) ?(dead_lists = [])
    ?(pending = []) ?(free_order = []) ?(prepared = []) () =
  {
    Checkpoint.ckpt_id;
    kind;
    covered_seq;
    next_seq = covered_seq + 1;
    stamp = 1000;
    next_aru = 9;
    next_gid = 1;
    blocks;
    lists;
    dead_blocks;
    dead_lists;
    pending;
    free_order;
    prepared;
  }

let block_entry i =
  {
    Checkpoint.b_id = i;
    b_member = (if i mod 2 = 0 then Some (i / 2) else None);
    b_succ = (if i mod 3 = 0 then Some (i + 1) else None);
    b_phys = (if i mod 5 = 0 then None else Some (i mod 30, i mod 128));
    b_stamp = i * 17;
  }

let list_entry i =
  {
    Checkpoint.l_id = i;
    l_first = Some (i * 2);
    l_last = Some ((i * 2) + 9);
    l_stamp = i * 31;
    l_owner = (if i mod 4 = 0 then Some (i + 100) else None);
  }

let test_encode_decode_empty () =
  let s = snapshot () in
  Alcotest.(check bool) "roundtrip" true (Checkpoint.decode (Checkpoint.encode s) = s)

let test_encode_decode_populated () =
  let s =
    snapshot
      ~blocks:(List.init 50 block_entry)
      ~lists:(List.init 20 list_entry)
      ~pending:
        [
          ( 3,
            [
              {
                Checkpoint.pe_op =
                  Lld_core.Summary.Dealloc
                    { block = Types.Block_id.of_int 9; stamp = 77 };
                pe_seg = 12;
              };
            ] );
        ]
      ~free_order:[ 10; 11; 12; 13 ] ()
  in
  Alcotest.(check bool) "roundtrip" true (Checkpoint.decode (Checkpoint.encode s) = s)

let test_decode_rejects_garbage () =
  Alcotest.check_raises "truncated"
    (Errors.Corrupt "truncated checkpoint payload") (fun () ->
      ignore (Checkpoint.decode (Lld_util.Blk.of_bytes (Bytes.make 3 'x'))))

let test_region_write_read () =
  let disk = fresh_disk () in
  let s = snapshot ~blocks:(List.init 10 block_entry) () in
  Checkpoint.write disk ~region:0 s;
  Alcotest.(check bool) "region 0 readable" true
    (Checkpoint.read_region disk ~region:0 = Some s);
  Alcotest.(check bool) "region 1 still empty" true
    (Checkpoint.read_region disk ~region:1 = None)

let best_id disk =
  match Checkpoint.read_best disk with
  | Some b -> b.Checkpoint.best_snap.Checkpoint.ckpt_id
  | None -> Alcotest.fail "no checkpoint found"

let test_read_best_prefers_newer () =
  let disk = fresh_disk () in
  Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:5 ());
  Checkpoint.write disk ~region:1 (snapshot ~ckpt_id:9 ());
  Alcotest.(check int) "newest wins" 9 (best_id disk);
  Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:12 ());
  Alcotest.(check int) "alternation" 12 (best_id disk)

let test_torn_checkpoint_write_falls_back () =
  let disk = fresh_disk () in
  Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:5 ());
  Checkpoint.write disk ~region:1 (snapshot ~ckpt_id:6 ());
  (* region 0 is being rewritten with ckpt 7 when power fails *)
  Fault.schedule_crash (Disk.fault disk)
    (Fault.During_write { write_index = 0; keep_bytes = 64 });
  (try Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:7 ())
   with Fault.Crashed -> ());
  Fault.reset_after_recovery (Disk.fault disk);
  Alcotest.(check int) "survivor used" 6 (best_id disk)

(* --- generation selection: full + delta ------------------------------ *)

let delta ~base_id = Checkpoint.Delta { base_id }

let test_delta_composes_over_full () =
  let disk = fresh_disk () in
  let full =
    snapshot ~ckpt_id:5 ~covered_seq:10
      ~blocks:[ block_entry 1; block_entry 2; block_entry 4 ]
      ~lists:[ list_entry 1 ] ()
  in
  (* the delta rewrites block 2, adds block 6, tombstones block 4, and
     deletes list 1 *)
  let changed = { (block_entry 2) with Checkpoint.b_stamp = 999 } in
  let d =
    snapshot ~ckpt_id:6 ~kind:(delta ~base_id:5) ~covered_seq:20
      ~blocks:[ changed; block_entry 6 ]
      ~dead_blocks:[ 4 ] ~dead_lists:[ 1 ] ()
  in
  Checkpoint.write disk ~region:0 full;
  Checkpoint.write disk ~region:1 d;
  match Checkpoint.read_best disk with
  | None -> Alcotest.fail "no checkpoint found"
  | Some b ->
    let s = b.Checkpoint.best_snap in
    Alcotest.(check int) "delta generation wins" 6 s.Checkpoint.ckpt_id;
    Alcotest.(check int) "delta covered_seq" 20 s.Checkpoint.covered_seq;
    Alcotest.(check int) "delta region" 1 b.Checkpoint.best_region;
    Alcotest.(check int) "full region remembered" 0 b.Checkpoint.best_full_region;
    Alcotest.(check (list int)) "effective block set" [ 1; 2; 6 ]
      (List.map (fun (e : Checkpoint.block_entry) -> e.b_id) s.Checkpoint.blocks);
    Alcotest.(check int) "replacement entry wins" 999
      (List.find
         (fun (e : Checkpoint.block_entry) -> e.b_id = 2)
         s.Checkpoint.blocks)
        .Checkpoint.b_stamp;
    Alcotest.(check (list int)) "tombstoned list gone" []
      (List.map (fun (e : Checkpoint.list_entry) -> e.l_id) s.Checkpoint.lists)

let test_torn_delta_falls_back_to_full () =
  let disk = fresh_disk () in
  Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:5 ~covered_seq:10 ());
  Fault.schedule_crash (Disk.fault disk)
    (Fault.During_write { write_index = 0; keep_bytes = 100 });
  (try
     Checkpoint.write disk ~region:1
       (snapshot ~ckpt_id:6 ~kind:(delta ~base_id:5) ~covered_seq:20 ())
   with Fault.Crashed -> ());
  Fault.reset_after_recovery (Disk.fault disk);
  match Checkpoint.read_best disk with
  | None -> Alcotest.fail "lost both generations"
  | Some b ->
    Alcotest.(check int) "full base survives" 5
      b.Checkpoint.best_snap.Checkpoint.ckpt_id;
    Alcotest.(check int) "its region is the full region" 0
      b.Checkpoint.best_full_region

let test_orphaned_delta_ignored () =
  let disk = fresh_disk () in
  (* the delta names base 5, but the other region holds full 8 — a
     fresher full has superseded it, so composing would be wrong *)
  Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:8 ~covered_seq:30 ());
  Checkpoint.write disk ~region:1
    (snapshot ~ckpt_id:6 ~kind:(delta ~base_id:5) ~covered_seq:20 ());
  Alcotest.(check int) "orphaned delta ignored" 8 (best_id disk)

let test_delta_codec_roundtrip () =
  let s =
    snapshot ~ckpt_id:7 ~kind:(delta ~base_id:3)
      ~blocks:[ block_entry 1 ] ~dead_blocks:[ 9; 12 ] ~dead_lists:[ 2 ] ()
  in
  Alcotest.(check bool) "roundtrip" true
    (Checkpoint.decode (Checkpoint.encode s) = s)

let test_multi_chunk_checkpoint () =
  (* enough block entries to spill across several region segments *)
  let disk = fresh_disk () in
  let geom = Disk.geometry disk in
  let entries_needed = (2 * geom.Geometry.segment_bytes / 22) + 100 in
  let s = snapshot ~blocks:(List.init entries_needed block_entry) () in
  Checkpoint.write disk ~region:1 s;
  Alcotest.(check bool) "multi-chunk roundtrip" true
    (Checkpoint.read_region disk ~region:1 = Some s)

let test_oversized_checkpoint_rejected () =
  let disk = fresh_disk () in
  let geom = Disk.geometry disk in
  let region_bytes =
    Lld_core.Disk_layout.region_segments geom * geom.Geometry.segment_bytes
  in
  let entries = (region_bytes / 22) + 10_000 in
  let s = snapshot ~blocks:(List.init entries block_entry) () in
  Alcotest.check_raises "does not fit" Errors.Disk_full (fun () ->
      Checkpoint.write disk ~region:0 s)

let test_layout_properties () =
  List.iter
    (fun geom ->
      let r = Disk_layout.region_segments geom in
      Alcotest.(check bool) "regions positive" true (r > 0);
      Alcotest.(check int) "region 0 after superblock" 1
        (Disk_layout.region_first geom ~region:0);
      Alcotest.(check int) "region 1 after region 0" (1 + r)
        (Disk_layout.region_first geom ~region:1);
      Alcotest.(check int) "log after regions" (1 + (2 * r))
        (Disk_layout.log_first geom);
      Alcotest.(check int) "partition fully used"
        geom.Geometry.num_segments
        (Disk_layout.log_first geom + Disk_layout.log_count geom);
      Alcotest.(check int) "capacity matches log size"
        (Disk_layout.log_count geom * Geometry.blocks_per_segment geom)
        (Disk_layout.block_capacity geom))
    [ Geometry.small; Geometry.paper; Geometry.v ~num_segments:64 () ]

let test_layout_too_small_rejected () =
  Alcotest.check_raises "tiny partition"
    (Invalid_argument "Disk_layout: partition too small for a log") (fun () ->
      ignore (Disk_layout.log_count (Geometry.v ~num_segments:7 ())))

let () =
  Alcotest.run "lld_checkpoint"
    [
      ( "codec",
        [
          Alcotest.test_case "empty roundtrip" `Quick test_encode_decode_empty;
          Alcotest.test_case "populated roundtrip" `Quick
            test_encode_decode_populated;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
        ] );
      ( "regions",
        [
          Alcotest.test_case "write/read region" `Quick test_region_write_read;
          Alcotest.test_case "best prefers newest" `Quick
            test_read_best_prefers_newer;
          Alcotest.test_case "torn write falls back" `Quick
            test_torn_checkpoint_write_falls_back;
          Alcotest.test_case "delta composes over full" `Quick
            test_delta_composes_over_full;
          Alcotest.test_case "torn delta falls back to full" `Quick
            test_torn_delta_falls_back_to_full;
          Alcotest.test_case "orphaned delta ignored" `Quick
            test_orphaned_delta_ignored;
          Alcotest.test_case "delta codec roundtrip" `Quick
            test_delta_codec_roundtrip;
          Alcotest.test_case "multi-chunk payloads" `Quick
            test_multi_chunk_checkpoint;
          Alcotest.test_case "oversized rejected" `Quick
            test_oversized_checkpoint_rejected;
        ] );
      ( "layout",
        [
          Alcotest.test_case "layout properties" `Quick test_layout_properties;
          Alcotest.test_case "too-small partition rejected" `Quick
            test_layout_too_small_rejected;
        ] );
    ]
